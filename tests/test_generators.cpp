// Tests for the synthetic graph generators: structural invariants each
// generator must reproduce (the properties DESIGN.md's substitution table
// relies on), determinism, and connectivity.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"

namespace wasp {
namespace {

const WeightScheme kGap = WeightScheme::gap();

TEST(GridGenerator, StructureAndDiameter) {
  const Graph g = gen::grid(10, 20, kGap, 1);
  EXPECT_EQ(g.num_vertices(), 200u);
  // 10*19 horizontal + 9*20 vertical, doubled.
  EXPECT_EQ(g.num_edges(), 2u * (10 * 19 + 9 * 20));
  const DegreeStats s = degree_stats(g);
  EXPECT_EQ(s.min, 2u);  // corners
  EXPECT_EQ(s.max, 4u);
  // Hop diameter from a corner equals rows-1 + cols-1.
  const auto hops = bfs_hops(g, 0);
  EXPECT_EQ(*std::max_element(hops.begin(), hops.end()), 9u + 19u);
}

TEST(GridGenerator, IsConnected) {
  const Graph g = gen::grid(17, 13, kGap, 2);
  const auto info = connected_components(g);
  EXPECT_EQ(info.size.size(), 1u);
}

TEST(MeshGenerator, AddsDiagonals) {
  const Graph g = gen::mesh(10, 10, kGap, 1);
  const DegreeStats s = degree_stats(g);
  EXPECT_EQ(s.max, 8u);  // interior vertices: 4 axis + 4 diagonal
  EXPECT_EQ(connected_components(g).size.size(), 1u);
}

TEST(ChainForest, LongDiameterLowDegree) {
  const Graph g = gen::chain_forest(4, 100, kGap, 3);
  EXPECT_EQ(g.num_vertices(), 400u);
  const DegreeStats s = degree_stats(g);
  EXPECT_LE(s.max, 4u);  // chain interior = 2, plus rare cross-links
  EXPECT_EQ(connected_components(g).size.size(), 1u);
  // Diameter must be on the order of the chain length.
  const auto hops = bfs_hops(g, 0);
  std::uint32_t max_hop = 0;
  for (auto h : hops)
    if (h != kInfDist) max_hop = std::max(max_hop, h);
  EXPECT_GT(max_hop, 90u);
}

TEST(StarHub, ReproducesMawiStructure) {
  const Graph g = gen::star_hub(10000, 0.93, 0.01, kGap, 4);
  // The hub is adjacent to ~93% of vertices.
  EXPECT_GT(g.out_degree(0), 9000u);
  // The overwhelming majority of vertices are degree-1 leaves (Mawi: 99% of
  // hub neighbours).
  VertexId leaves = 0;
  for (VertexId v = 1; v < g.num_vertices(); ++v)
    if (g.out_degree(v) == 1) ++leaves;
  EXPECT_GT(leaves, g.num_vertices() * 8 / 10);
  EXPECT_EQ(connected_components(g).size.size(), 1u);
}

TEST(ErdosRenyi, UniformDegreesAroundMean) {
  const Graph g = gen::erdos_renyi(20000, 16.0, kGap, 5);
  const DegreeStats s = degree_stats(g);
  EXPECT_NEAR(s.avg, 16.0, 0.5);
  // ER tail is thin: max degree stays within a small factor of the mean.
  EXPECT_LT(s.max, 64u);
}

TEST(Rmat, SkewedDegreesWhenAsymmetric) {
  const Graph skewed = gen::rmat(14, 1 << 18, 0.57, 0.19, 0.19, kGap, 6, false);
  const Graph uniform = gen::erdos_renyi(1 << 14, 32.0, kGap, 6);
  const DegreeStats ss = degree_stats(skewed);
  const DegreeStats us = degree_stats(uniform);
  // The RMAT max degree dwarfs the ER max at comparable average degree.
  EXPECT_GT(ss.max, 4 * us.max);
}

TEST(Rmat, UndirectedFlagSymmetrizes) {
  const Graph g = gen::rmat(10, 1 << 12, 0.57, 0.19, 0.19, kGap, 7, true);
  EXPECT_TRUE(g.is_undirected());
  // Every edge has its reverse with equal weight.
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (const WEdge& e : g.out_neighbors(u)) {
      bool found = false;
      for (const WEdge& r : g.out_neighbors(e.dst))
        if (r.dst == u && r.w == e.w) found = true;
      ASSERT_TRUE(found) << "missing reverse of " << u << "->" << e.dst;
    }
  }
}

TEST(RandomRegular, DegreesNearK) {
  const Graph g = gen::random_regular(5000, 8, kGap, 8);
  const DegreeStats s = degree_stats(g);
  EXPECT_NEAR(s.avg, 8.0, 0.5);
  EXPECT_LE(s.max, 16u);  // matchings give at most 2 per round
}

TEST(Hypercube, ExactStructure) {
  const Graph g = gen::hypercube(8, kGap, 9);
  EXPECT_EQ(g.num_vertices(), 256u);
  EXPECT_EQ(g.num_edges(), 2u * 256 * 8 / 2);
  const DegreeStats s = degree_stats(g);
  EXPECT_EQ(s.min, 8u);
  EXPECT_EQ(s.max, 8u);
  // Hop distance equals Hamming distance from the source.
  const auto hops = bfs_hops(g, 0);
  EXPECT_EQ(hops[0b11111111], 8u);
  EXPECT_EQ(hops[0b00010001], 2u);
}

TEST(SmallWorld, ConnectedWithShortcuts) {
  const Graph g = gen::small_world(5000, 3, 0.05, kGap, 10);
  EXPECT_EQ(connected_components(g).size.size(), 1u);
  const DegreeStats s = degree_stats(g);
  EXPECT_NEAR(s.avg, 6.0, 0.5);
}

TEST(PreferentialAttachment, PowerLawHead) {
  const Graph g = gen::preferential_attachment(20000, 4, kGap, 11);
  const DegreeStats s = degree_stats(g);
  EXPECT_NEAR(s.avg, 8.0, 1.0);
  // Hubs exist: some vertex far above the mean.
  EXPECT_GT(s.max, 100u);
  EXPECT_EQ(connected_components(g).size.size(), 1u);
}

TEST(Generators, DeterministicInSeed) {
  const Graph a = gen::rmat(10, 4096, 0.57, 0.19, 0.19, kGap, 42, false);
  const Graph b = gen::rmat(10, 4096, 0.57, 0.19, 0.19, kGap, 42, false);
  EXPECT_EQ(a.offsets(), b.offsets());
  EXPECT_EQ(a.adjacency(), b.adjacency());
  const Graph c = gen::rmat(10, 4096, 0.57, 0.19, 0.19, kGap, 43, false);
  EXPECT_NE(a.adjacency(), c.adjacency());
}

TEST(Generators, RejectBadParameters) {
  EXPECT_THROW(gen::chain_forest(2, 1, kGap, 1), std::invalid_argument);
  EXPECT_THROW(gen::rmat(0, 10, 0.5, 0.2, 0.2, kGap, 1, false),
               std::invalid_argument);
  EXPECT_THROW(gen::hypercube(0, kGap, 1), std::invalid_argument);
  EXPECT_THROW(gen::random_regular(10, 0, kGap, 1), std::invalid_argument);
  EXPECT_THROW(gen::preferential_attachment(3, 4, kGap, 1),
               std::invalid_argument);
}

}  // namespace
}  // namespace wasp
