// Tests for the extension modules: shortest-path trees & path extraction,
// batched SSSP, pendant-tree contraction, the Stealing MultiQueue, and the
// delta-suggestion heuristic.
#include <gtest/gtest.h>

#include <set>

#include "graph/algorithms.hpp"
#include "graph/contraction.hpp"
#include "graph/generators.hpp"
#include "sssp/contracted.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/paths.hpp"
#include "sssp/sssp.hpp"
#include "sssp/tuning.hpp"
#include "sssp/validate.hpp"

namespace wasp {
namespace {

// --- shortest-path trees & paths -------------------------------------------

TEST(Paths, TreeParentsAreTight) {
  const Graph g = gen::rmat(10, 4096, 0.57, 0.19, 0.19, WeightScheme::gap(), 3,
                            true);
  const VertexId src = pick_source_in_largest_component(g, 1);
  const auto dist = dijkstra(g, src).dist;
  const auto parent = shortest_path_tree(g, src, dist);
  EXPECT_EQ(parent[src], kInvalidVertex);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (v == src) continue;
    if (dist[v] == kInfDist) {
      EXPECT_EQ(parent[v], kInvalidVertex);
      continue;
    }
    ASSERT_NE(parent[v], kInvalidVertex) << "reached vertex without parent";
    // The parent edge must be tight.
    bool tight = false;
    for (const WEdge& e : g.out_neighbors(parent[v]))
      if (e.dst == v && dist[parent[v]] + e.w == dist[v]) tight = true;
    EXPECT_TRUE(tight) << "parent edge of " << v << " not tight";
  }
}

TEST(Paths, ExtractPathEndsMatchAndSumsToDistance) {
  const Graph g = gen::grid(20, 20, WeightScheme::gap(), 4);
  const VertexId src = 0;
  const auto dist = dijkstra(g, src).dist;
  for (VertexId target : {VertexId{399}, VertexId{57}, VertexId{210}}) {
    const auto path = extract_path(g, src, target, dist);
    ASSERT_FALSE(path.empty());
    EXPECT_EQ(path.front(), src);
    EXPECT_EQ(path.back(), target);
    // Sum edge weights along the path.
    Distance sum = 0;
    for (std::size_t i = 0; i + 1 < path.size(); ++i) {
      Weight w = 0;
      bool found = false;
      for (const WEdge& e : g.out_neighbors(path[i]))
        if (e.dst == path[i + 1] && (!found || e.w < w)) {
          w = e.w;
          found = true;
        }
      ASSERT_TRUE(found) << "path uses a non-edge";
      sum += w;
    }
    EXPECT_EQ(sum, dist[target]);
  }
}

TEST(Paths, ExtractPathDirectedGraph) {
  const Graph g = Graph::from_edges(
      4, {{0, 1, 2}, {1, 2, 2}, {0, 2, 10}, {2, 3, 1}}, false);
  const auto dist = dijkstra(g, 0).dist;
  const auto path = extract_path(g, 0, 3, dist);
  EXPECT_EQ(path, (std::vector<VertexId>{0, 1, 2, 3}));
}

TEST(Paths, UnreachableTargetGivesEmptyPath) {
  const Graph g = Graph::from_edges(3, {{0, 1, 1}}, false);
  const auto dist = dijkstra(g, 0).dist;
  EXPECT_TRUE(extract_path(g, 0, 2, dist).empty());
}

TEST(Paths, BatchRunsMatchIndividualRuns) {
  const Graph g = gen::erdos_renyi(2000, 8.0, WeightScheme::gap(), 5);
  SsspOptions options;
  options.algo = Algorithm::kWasp;
  options.threads = 3;
  options.delta = 1;
  const std::vector<VertexId> sources = {1, 100, 999};
  const BatchResult batch = run_sssp_batch(g, sources, options);
  ASSERT_EQ(batch.runs.size(), 3u);
  for (std::size_t i = 0; i < sources.size(); ++i) {
    const auto expected = dijkstra(g, sources[i]).dist;
    EXPECT_EQ(batch.runs[i].dist, expected) << "source " << sources[i];
  }
}

TEST(Paths, CentralityHelpers) {
  // Star: center 0 with 4 unit spokes.
  const Graph g = Graph::from_edges(
      5, {{0, 1, 2}, {0, 2, 2}, {0, 3, 2}, {0, 4, 2}}, true);
  const auto dist = dijkstra(g, 0).dist;
  EXPECT_DOUBLE_EQ(closeness_centrality(dist, 0), 4.0 / 8.0);
  EXPECT_EQ(reach_within(dist, 0, 2), 4u);
  EXPECT_EQ(reach_within(dist, 0, 1), 0u);
}

// --- pendant-tree contraction ----------------------------------------------

TEST(Contraction, EliminatesStarLeavesAndStaysExact) {
  const Graph g = gen::star_hub(5000, 0.93, 0.01, WeightScheme::gap(), 9);
  const VertexId src = pick_source_in_largest_component(g, 2);
  const auto pc = PendantContraction::contract(g, src);
  // Most of the star graph is pendant.
  EXPECT_GT(pc.num_eliminated(), g.num_vertices() / 2);
  EXPECT_TRUE(pc.in_core(src));

  auto dist = dijkstra(pc.core(), src).dist;
  pc.expand(dist);
  EXPECT_EQ(dist, dijkstra(g, src).dist);
}

TEST(Contraction, EliminatesWholeTrees) {
  // A triangle core {0,1,2} with a 3-deep pendant path 2-3-4-5 and a
  // branching pendant tree at 0.
  const Graph g = Graph::from_edges(
      8,
      {{0, 1, 1}, {1, 2, 1}, {0, 2, 1},        // core
       {2, 3, 5}, {3, 4, 2}, {4, 5, 7},        // path
       {0, 6, 4}, {6, 7, 3}},                  // small tree
      true);
  const auto pc = PendantContraction::contract(g, 0);
  EXPECT_EQ(pc.num_eliminated(), 5u);  // vertices 3,4,5,6,7
  for (VertexId v : {3u, 4u, 5u, 6u, 7u}) EXPECT_FALSE(pc.in_core(v));
  for (VertexId v : {0u, 1u, 2u}) EXPECT_TRUE(pc.in_core(v));

  auto dist = dijkstra(pc.core(), 0).dist;
  pc.expand(dist);
  EXPECT_EQ(dist, dijkstra(g, 0).dist);
}

TEST(Contraction, SourceInsidePendantTreeIsPreserved) {
  // Path 0-1-2-3 attached to triangle {3,4,5}; source 0 is a leaf. The
  // whole chain 0-1-2 must survive so core SSSP from 0 is well-defined.
  const Graph g = Graph::from_edges(
      6, {{0, 1, 1}, {1, 2, 1}, {2, 3, 1}, {3, 4, 1}, {4, 5, 1}, {3, 5, 1}},
      true);
  const auto pc = PendantContraction::contract(g, 0);
  EXPECT_TRUE(pc.in_core(0));
  EXPECT_TRUE(pc.in_core(1));
  EXPECT_TRUE(pc.in_core(2));
  auto dist = dijkstra(pc.core(), 0).dist;
  pc.expand(dist);
  EXPECT_EQ(dist, dijkstra(g, 0).dist);
}

TEST(Contraction, PureTreeContractsToSource) {
  // A path graph is one big pendant tree: everything except the kept vertex
  // collapses.
  const Graph g = gen::chain_forest(1, 50, WeightScheme::gap(), 11);
  const auto pc = PendantContraction::contract(g, 10);
  EXPECT_EQ(pc.num_eliminated(), g.num_vertices() - 1);
  auto dist = dijkstra(pc.core(), 10).dist;
  pc.expand(dist);
  EXPECT_EQ(dist, dijkstra(g, 10).dist);
}

TEST(Contraction, RejectsDirectedGraphs) {
  const Graph g = Graph::from_edges(2, {{0, 1, 1}}, false);
  EXPECT_THROW(PendantContraction::contract(g, 0), std::invalid_argument);
}

TEST(Contraction, RunSsspContractedMatchesPlain) {
  for (const auto seed : {1, 2, 3}) {
    const Graph g = gen::star_hub(4000, 0.9, 0.02, WeightScheme::gap(),
                                  static_cast<std::uint64_t>(seed));
    const VertexId src = pick_source_in_largest_component(g, 7);
    SsspOptions options;
    options.algo = Algorithm::kWasp;
    options.threads = 4;
    options.delta = 4;
    const auto contracted = run_sssp_contracted(g, src, options);
    EXPECT_GT(contracted.eliminated_vertices, 0u);
    EXPECT_EQ(contracted.result.dist, dijkstra(g, src).dist);
  }
}

// --- Stealing MultiQueue ----------------------------------------------------

TEST(SmqDijkstra, MatchesDijkstraAcrossGraphs) {
  for (const int threads : {1, 4}) {
    const Graph g = gen::rmat(11, 16384, 0.57, 0.19, 0.19, WeightScheme::gap(),
                              15, true);
    const VertexId src = pick_source_in_largest_component(g, 3);
    SsspOptions options;
    options.algo = Algorithm::kSmqDijkstra;
    options.threads = threads;
    const SsspResult r = run_sssp(g, src, options);
    EXPECT_EQ(r.dist, dijkstra(g, src).dist) << "threads=" << threads;
  }
}

TEST(SmqDijkstra, GridAndStarStayCorrect) {
  for (const auto* kind : {"grid", "star"}) {
    const Graph g = std::string(kind) == "grid"
                        ? gen::grid(40, 40, WeightScheme::gap(), 21)
                        : gen::star_hub(3000, 0.93, 0.01, WeightScheme::gap(), 22);
    const VertexId src = pick_source_in_largest_component(g, 5);
    SsspOptions options;
    options.algo = Algorithm::kSmqDijkstra;
    options.threads = 6;
    options.smq.steal_batch = 4;
    const SsspResult r = run_sssp(g, src, options);
    std::string msg;
    EXPECT_TRUE(validate_sssp(g, src, r.dist, &msg)) << kind << ": " << msg;
    EXPECT_EQ(r.dist, dijkstra(g, src).dist) << kind;
  }
}

TEST(SmqDijkstra, ParsesAlgorithmName) {
  EXPECT_EQ(parse_algorithm("smq"), Algorithm::kSmqDijkstra);
  EXPECT_STREQ(algorithm_name(Algorithm::kSmqDijkstra), "smq");
}

// --- contraction + compressed interplay -------------------------------------

TEST(Contraction, GridHasNoPendantsButStaysExact) {
  // Grids are their own 2-core: contraction must be a no-op and still exact.
  const Graph g = gen::grid(20, 20, WeightScheme::gap(), 12);
  const auto pc = PendantContraction::contract(g, 0);
  EXPECT_EQ(pc.num_eliminated(), 0u);
  auto dist = dijkstra(pc.core(), 0).dist;
  pc.expand(dist);
  EXPECT_EQ(dist, dijkstra(g, 0).dist);
}

TEST(Contraction, UnreachablePendantTreesStayInfinite) {
  // Two components; the pendant path 3-4-5 hangs off the *other* component.
  const Graph g = Graph::from_edges(
      6, {{0, 1, 1}, {1, 2, 1}, {0, 2, 1}, {3, 4, 2}, {4, 5, 2}}, true);
  const auto pc = PendantContraction::contract(g, 0);
  auto dist = dijkstra(pc.core(), 0).dist;
  pc.expand(dist);
  EXPECT_EQ(dist[4], kInfDist);
  EXPECT_EQ(dist[5], kInfDist);
  EXPECT_EQ(dist, dijkstra(g, 0).dist);
}

// --- delta heuristics --------------------------------------------------------

TEST(Tuning, ProfileDetectsStructure) {
  const auto road = profile_graph(gen::grid(50, 50, WeightScheme::gap(), 1));
  EXPECT_TRUE(road.low_degree);
  EXPECT_FALSE(road.skewed);

  const auto social = profile_graph(
      gen::rmat(12, 1 << 16, 0.57, 0.19, 0.19, WeightScheme::gap(), 2, true));
  EXPECT_FALSE(social.low_degree);
  EXPECT_TRUE(social.skewed);
}

TEST(Tuning, WaspGetsDeltaOneOnSkewedGraphs) {
  const Graph g =
      gen::rmat(12, 1 << 16, 0.57, 0.19, 0.19, WeightScheme::gap(), 2, true);
  EXPECT_EQ(suggest_delta(Algorithm::kWasp, g), 1u);
  EXPECT_GT(suggest_delta(Algorithm::kDeltaStepping, g), 1u);
}

TEST(Tuning, CoarseDeltaOnRoadGraphs) {
  const Graph g = gen::grid(60, 60, WeightScheme::gap(), 1);
  EXPECT_GT(suggest_delta(Algorithm::kWasp, g), 255u);
  EXPECT_GT(suggest_delta(Algorithm::kDeltaStepping, g),
            suggest_delta(Algorithm::kObim, g) / 4);
  EXPECT_EQ(suggest_delta(Algorithm::kMqDijkstra, g), 1u);
}

TEST(Tuning, SuggestedDeltasProduceCorrectRuns) {
  const Graph g = gen::grid(40, 40, WeightScheme::gap(), 8);
  const VertexId src = 0;
  const auto expected = dijkstra(g, src).dist;
  for (const auto algo : {Algorithm::kWasp, Algorithm::kDeltaStepping,
                          Algorithm::kDeltaStar}) {
    SsspOptions options;
    options.algo = algo;
    options.threads = 4;
    options.delta = suggest_delta(algo, g);
    EXPECT_EQ(run_sssp(g, src, options).dist, expected) << algorithm_name(algo);
  }
}

}  // namespace
}  // namespace wasp
