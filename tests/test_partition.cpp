// Partitioned-execution correctness suite (ROADMAP item 4, docs/NUMA.md):
// fragment assembly round-trips the CSR bit-for-bit, boundary classification
// matches brute force, and the partitioned engine's distances are identical
// to flat Wasp across synthetic topologies and seeded chaos schedules.
//
// Every suite here is named Partition* so the TSan preset's test filter
// picks it up (CMakePresets.json).
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/partition.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/sssp.hpp"
#include "sssp/validate.hpp"
#include "sssp/wasp.hpp"
#include "support/chaos.hpp"
#include "support/numa.hpp"
#include "support/thread_team.hpp"

namespace wasp {
namespace {

struct Fixture {
  std::string name;
  Graph graph;
  VertexId source;
  std::vector<Distance> reference;
};

Fixture make_fixture(std::string name, Graph g) {
  Fixture f;
  f.name = std::move(name);
  f.graph = std::move(g);
  f.source = pick_source_in_largest_component(f.graph, 7);
  f.reference = dijkstra(f.graph, f.source).dist;
  return f;
}

const std::vector<Fixture>& fixtures() {
  static const std::vector<Fixture>* all = [] {
    auto* v = new std::vector<Fixture>;
    v->push_back(make_fixture("grid", gen::grid(40, 40, WeightScheme::gap(), 22)));
    v->push_back(make_fixture(
        "rmat", gen::rmat(12, 1 << 15, 0.57, 0.19, 0.19, WeightScheme::gap(),
                          23, true)));
    v->push_back(make_fixture(
        "star", gen::star_hub(4000, 0.93, 0.01, WeightScheme::gap(), 21)));
    return v;
  }();
  return *all;
}

std::vector<NumaTopology> suite_topologies() {
  return {
      NumaTopology::flat(8),            // 1 node (CI reality)
      NumaTopology::synthetic(1, 2, 4), // 2 nodes, one socket
      NumaTopology::synthetic(2, 2, 2), // 4 nodes across 2 sockets
      NumaTopology::synthetic(4, 1, 2), // 4 sockets, 1 node each
  };
}

// --- fragment assembly ------------------------------------------------------

TEST(PartitionBuild, FragmentAssemblyRoundTripsCsr) {
  for (const Fixture& f : fixtures()) {
    for (const NumaTopology& topo : suite_topologies()) {
      for (const int want : {0, 1, 3, 7}) {
        const GraphPartition part =
            GraphPartition::build(f.graph, topo, want);
        const Graph& g = f.graph;
        ASSERT_EQ(part.num_vertices(), g.num_vertices());
        ASSERT_EQ(part.starts().front(), 0u);
        ASSERT_EQ(part.starts().back(), g.num_vertices());

        // Reassemble the global CSR from the fragments and compare
        // bit-for-bit (offsets as deltas, adjacency as raw records).
        EdgeIndex edges_seen = 0;
        VertexId vertices_seen = 0;
        for (int fi = 0; fi < part.num_fragments(); ++fi) {
          const GraphPartition::Fragment& frag = part.fragment(fi);
          ASSERT_EQ(frag.index, fi);
          ASSERT_EQ(frag.begin, part.starts()[static_cast<std::size_t>(fi)]);
          ASSERT_EQ(frag.end, part.starts()[static_cast<std::size_t>(fi) + 1]);
          ASSERT_EQ(frag.offsets.size(),
                    static_cast<std::size_t>(frag.num_vertices()) + 1);
          ASSERT_EQ(frag.offsets.front(), 0u);
          ASSERT_EQ(frag.adjacency.size(),
                    static_cast<std::size_t>(frag.num_edges()));
          for (VertexId v = frag.begin; v < frag.end; ++v) {
            ASSERT_EQ(frag.out_degree(v), g.out_degree(v))
                << f.name << " fragment " << fi << " vertex " << v;
            const WEdge* mine = frag.edge_data() + frag.edge_offset(v);
            const WEdge* ref = g.adjacency().data() + g.edge_offset(v);
            for (std::uint32_t j = 0; j < frag.out_degree(v); ++j) {
              ASSERT_EQ(mine[j].dst, ref[j].dst);
              ASSERT_EQ(mine[j].w, ref[j].w);
            }
          }
          edges_seen += frag.num_edges();
          vertices_seen += frag.num_vertices();
        }
        ASSERT_EQ(vertices_seen, g.num_vertices());
        ASSERT_EQ(edges_seen, g.num_edges());
      }
    }
  }
}

TEST(PartitionBuild, ParallelFillMatchesSerial) {
  const Fixture& f = fixtures()[1];  // rmat
  const NumaTopology topo = NumaTopology::synthetic(2, 2, 2);
  ThreadTeam team(4);
  const GraphPartition serial = GraphPartition::build(f.graph, topo, 4);
  const GraphPartition parallel =
      GraphPartition::build(f.graph, topo, 4, &team);
  ASSERT_EQ(serial.num_fragments(), parallel.num_fragments());
  ASSERT_EQ(serial.num_cut_edges(), parallel.num_cut_edges());
  for (int fi = 0; fi < serial.num_fragments(); ++fi) {
    const auto& a = serial.fragment(fi);
    const auto& b = parallel.fragment(fi);
    EXPECT_EQ(a.begin, b.begin);
    EXPECT_EQ(a.end, b.end);
    EXPECT_EQ(a.offsets, b.offsets);
    EXPECT_EQ(a.boundary, b.boundary);
    EXPECT_EQ(a.cut_edges, b.cut_edges);
    ASSERT_EQ(a.adjacency.size(), b.adjacency.size());
    for (std::size_t i = 0; i < a.adjacency.size(); ++i) {
      EXPECT_EQ(a.adjacency[i].dst, b.adjacency[i].dst);
      EXPECT_EQ(a.adjacency[i].w, b.adjacency[i].w);
    }
  }
}

TEST(PartitionBuild, OwnerLookupAgreesWithRanges) {
  for (const Fixture& f : fixtures()) {
    const NumaTopology topo = NumaTopology::synthetic(2, 2, 2);
    for (const int want : {1, 2, 4, 16}) {
      const GraphPartition part = GraphPartition::build(f.graph, topo, want);
      for (int fi = 0; fi < part.num_fragments(); ++fi) {
        const auto& frag = part.fragment(fi);
        for (VertexId v = frag.begin; v < frag.end; ++v) {
          ASSERT_EQ(part.owner_of(v), fi) << f.name << " vertex " << v;
          ASSERT_TRUE(frag.owns(v));
        }
      }
    }
  }
}

TEST(PartitionBuild, BoundaryClassificationMatchesBruteForce) {
  for (const Fixture& f : fixtures()) {
    const Graph& g = f.graph;
    const NumaTopology topo = NumaTopology::synthetic(2, 1, 2);
    for (const int want : {2, 5}) {
      const GraphPartition part = GraphPartition::build(g, topo, want);
      EdgeIndex expected_cut_total = 0;
      for (int fi = 0; fi < part.num_fragments(); ++fi) {
        const auto& frag = part.fragment(fi);
        EdgeIndex expected_cut = 0;
        for (VertexId v = frag.begin; v < frag.end; ++v) {
          bool crosses = false;
          for (const WEdge& e : g.out_neighbors(v)) {
            if (e.dst < frag.begin || e.dst >= frag.end) {
              crosses = true;
              ++expected_cut;
            }
          }
          ASSERT_EQ(frag.is_boundary(v), crosses)
              << f.name << " fragment " << fi << " vertex " << v;
        }
        ASSERT_EQ(frag.cut_edges, expected_cut);
        expected_cut_total += expected_cut;
      }
      ASSERT_EQ(part.num_cut_edges(), expected_cut_total);
    }
  }
}

TEST(PartitionBuild, DegenerateGraphs) {
  const NumaTopology topo = NumaTopology::synthetic(2, 2, 2);
  // Single vertex, no edges: one usable fragment plus empty tail fragments.
  Graph one = Graph::from_csr({0, 0}, {}, /*undirected=*/false);
  const GraphPartition part = GraphPartition::build(one, topo, 4);
  ASSERT_GE(part.num_fragments(), 1);
  ASSERT_EQ(part.num_vertices(), 1u);
  ASSERT_EQ(part.owner_of(0), 0);
  ASSERT_EQ(part.num_cut_edges(), 0u);
  VertexId covered = 0;
  for (int fi = 0; fi < part.num_fragments(); ++fi)
    covered += part.fragment(fi).num_vertices();
  ASSERT_EQ(covered, 1u);
}

// --- partitioned solves are distance-identical to flat wasp -----------------

SsspOptions partitioned_options(int threads, int fragments,
                                std::shared_ptr<const NumaTopology> topo) {
  SsspOptions options;
  options.algo = Algorithm::kWasp;
  options.threads = threads;
  options.delta = 8;
  options.wasp.topology = std::move(topo);
  options.wasp.partition.enabled = true;
  options.wasp.partition.num_fragments = fragments;
  return options;
}

TEST(PartitionSolve, MatchesFlatWaspAcrossTopologies) {
  for (const Fixture& f : fixtures()) {
    for (const NumaTopology& topo : suite_topologies()) {
      auto shared_topo = std::make_shared<NumaTopology>(topo);
      SsspOptions flat;
      flat.algo = Algorithm::kWasp;
      flat.threads = 8;
      flat.delta = 8;
      flat.wasp.topology = shared_topo;
      const SsspResult base = run_sssp(f.graph, f.source, flat);

      SsspOptions part = partitioned_options(8, /*fragments=*/0, shared_topo);
      const SsspResult r = run_sssp(f.graph, f.source, part);

      std::string why;
      ASSERT_TRUE(distances_equal(f.reference, base.dist, &why))
          << "flat wasp wrong on " << f.name << " (" << topo.describe()
          << "): " << why;
      // Bit-identical to flat, not merely equal to Dijkstra: both engines
      // must land on the same exact-distance fixed point.
      ASSERT_EQ(base.dist, r.dist)
          << f.name << " on " << topo.describe()
          << ": partitioned diverged from flat";
    }
  }
}

TEST(PartitionSolve, FragmentAndThresholdKnobs) {
  const Fixture& f = fixtures()[1];  // rmat
  auto topo = std::make_shared<NumaTopology>(NumaTopology::synthetic(2, 2, 2));
  for (const int fragments : {1, 2, 3, 8}) {
    for (const std::uint32_t threshold : {1u, 64u, 256u}) {
      SsspOptions options = partitioned_options(6, fragments, topo);
      options.wasp.partition.flush_threshold = threshold;
      const SsspResult r = run_sssp(f.graph, f.source, options);
      std::string why;
      ASSERT_TRUE(distances_equal(f.reference, r.dist, &why))
          << "fragments=" << fragments << " threshold=" << threshold << ": "
          << why;
    }
  }
}

TEST(PartitionSolve, SingleThreadAndSingleFragment) {
  const Fixture& f = fixtures()[0];  // grid
  auto topo = std::make_shared<NumaTopology>(NumaTopology::synthetic(1, 2, 4));
  for (const int threads : {1, 2}) {
    SsspOptions options = partitioned_options(threads, /*fragments=*/0, topo);
    const SsspResult r = run_sssp(f.graph, f.source, options);
    std::string why;
    ASSERT_TRUE(distances_equal(f.reference, r.dist, &why))
        << "threads=" << threads << ": " << why;
  }
}

TEST(PartitionSolve, StealPolicies) {
  const Fixture& f = fixtures()[2];  // star
  auto topo = std::make_shared<NumaTopology>(NumaTopology::synthetic(2, 2, 2));
  for (const StealPolicy policy : {StealPolicy::kPriorityNuma,
                                   StealPolicy::kRandom,
                                   StealPolicy::kTwoChoice}) {
    SsspOptions options = partitioned_options(8, /*fragments=*/4, topo);
    options.wasp.steal_policy = policy;
    const SsspResult r = run_sssp(f.graph, f.source, options);
    std::string why;
    ASSERT_TRUE(distances_equal(f.reference, r.dist, &why)) << why;
  }
}

TEST(PartitionSolve, RemoteCountersAccountForCutTraffic) {
  const Fixture& f = fixtures()[1];  // rmat
  auto topo = std::make_shared<NumaTopology>(NumaTopology::synthetic(2, 1, 2));

  // Multi-fragment run: remote relaxations flow, and the share is a true
  // fraction of all relaxations (counting semantics in obs/metrics.hpp).
  SsspOptions multi = partitioned_options(4, /*fragments=*/4, topo);
  const SsspResult rm = run_sssp(f.graph, f.source, multi);
  const std::uint64_t relax =
      rm.metrics.counter(obs::CounterId::kRelaxations);
  const std::uint64_t remote =
      rm.metrics.counter(obs::CounterId::kRemoteRelaxations);
  const std::uint64_t batches =
      rm.metrics.counter(obs::CounterId::kRemoteBatches);
  EXPECT_GT(remote, 0u);
  EXPECT_GT(batches, 0u);
  EXPECT_LE(remote, relax);

  // Single fragment: no boundary, so no remote traffic at all.
  SsspOptions single = partitioned_options(4, /*fragments=*/1, topo);
  const SsspResult rs = run_sssp(f.graph, f.source, single);
  EXPECT_EQ(rs.metrics.counter(obs::CounterId::kRemoteRelaxations), 0u);
  EXPECT_EQ(rs.metrics.counter(obs::CounterId::kRemoteBatches), 0u);
}

// --- chaos / scheduler sweeps ----------------------------------------------

// >= 200 seeded runs across chaos policies, topologies, and graphs; every
// one must match the Dijkstra reference exactly (acceptance criterion).
TEST(PartitionChaos, SeededSchedulesConvergeToReference) {
  constexpr int kThreads = 4;
  const auto policies = chaos::standard_policies();
  const auto topologies = suite_topologies();
  ThreadTeam team(kThreads);

  int runs = 0;
  for (std::size_t pi = 0; pi < policies.size(); ++pi) {
    for (std::size_t ti = 0; ti < topologies.size(); ++ti) {
      auto topo = std::make_shared<NumaTopology>(topologies[ti]);
      const int seeds_per_cell =
          static_cast<int>(200 / (policies.size() * topologies.size())) + 1;
      for (int s = 0; s < seeds_per_cell; ++s) {
        const Fixture& f = fixtures()[static_cast<std::size_t>(runs) %
                                      fixtures().size()];
        chaos::Engine engine(
            static_cast<std::uint64_t>(10'000 * pi + 100 * ti + s),
            policies[pi], kThreads, /*record=*/true);
        SsspOptions options = partitioned_options(
            kThreads, /*fragments=*/static_cast<int>(runs % 4), topo);
        options.delta = (runs % 2 == 0) ? 2 : 32;
        options.chaos = &engine;
        const SsspResult r = run_sssp(f.graph, f.source, options, team);
        ++runs;
        std::string why;
        if (!distances_equal(f.reference, r.dist, &why)) {
          FAIL() << chaos::failure_report(
              engine, "partitioned wasp diverges on " + f.name + " (" +
                          topologies[ti].describe() + "): " + why);
        }
      }
    }
  }
  EXPECT_GE(runs, 200);
}

// Termination-fuzz focus: the publish->drain window is the novel blind spot
// (remote-flush-delay / remote-drain-delay chaos points stretch it).
TEST(PartitionChaos, TerminationFuzzOnRemoteWindow) {
  constexpr int kThreads = 6;
  const Fixture& f = fixtures()[0];  // grid: long chains cross fragments
  auto topo = std::make_shared<NumaTopology>(NumaTopology::synthetic(2, 1, 3));
  ThreadTeam team(kThreads);
  for (std::uint64_t seed = 0; seed < 32; ++seed) {
    chaos::Engine engine(seed, chaos::Policy::termination_fuzz(), kThreads,
                         /*record=*/true);
    SsspOptions options = partitioned_options(kThreads, /*fragments=*/2, topo);
    options.delta = 2;
    options.wasp.partition.flush_threshold = 4;  // many small batches
    options.chaos = &engine;
    const SsspResult r = run_sssp(f.graph, f.source, options, team);
    std::string why;
    if (!distances_equal(f.reference, r.dist, &why)) {
      FAIL() << chaos::failure_report(
          engine, "termination fuzz diverged (seed " + std::to_string(seed) +
                      "): " + why);
    }
  }
}

}  // namespace
}  // namespace wasp
