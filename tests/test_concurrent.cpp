// Unit tests for the concurrent substrate: chunks + pools, the Chase-Lev
// deque (sequential semantics here; concurrent stress in
// test_deque_stress.cpp), the d-ary heap, the spinlock, and the frontier
// bag.
#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <vector>

#include "concurrent/chase_lev_deque.hpp"
#include "concurrent/chunk.hpp"
#include "concurrent/dary_heap.hpp"
#include "concurrent/frontier_bag.hpp"
#include "concurrent/spinlock.hpp"
#include "support/thread_team.hpp"

namespace wasp {
namespace {

TEST(Chunk, PushPopLifo) {
  Chunk c;
  EXPECT_TRUE(c.empty());
  c.push(1);
  c.push(2);
  c.push(3);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.pop(), 3u);
  EXPECT_EQ(c.pop(), 2u);
  EXPECT_EQ(c.pop(), 1u);
  EXPECT_TRUE(c.empty());
}

TEST(Chunk, PopFrontFifo) {
  Chunk c;
  c.push(10);
  c.push(20);
  EXPECT_EQ(c.pop_front(), 10u);
  EXPECT_EQ(c.pop_front(), 20u);
}

TEST(Chunk, RingWrapsAroundCapacity) {
  Chunk c;
  // Interleave pushes and front-pops so head/tail wrap the ring repeatedly.
  VertexId next_in = 0;
  VertexId next_out = 0;
  for (int round = 0; round < 10; ++round) {
    while (!c.full()) c.push(next_in++);
    for (int i = 0; i < 40; ++i) EXPECT_EQ(c.pop_front(), next_out++);
  }
  while (!c.empty()) EXPECT_EQ(c.pop_front(), next_out++);
  EXPECT_EQ(next_in, next_out);
}

TEST(Chunk, FullAtCapacity) {
  Chunk c;
  for (std::uint32_t i = 0; i < Chunk::kCapacity; ++i) {
    EXPECT_FALSE(c.full());
    c.push(i);
  }
  EXPECT_TRUE(c.full());
}

TEST(Chunk, RangeMode) {
  Chunk c;
  EXPECT_FALSE(c.is_range());
  c.make_range(42, 100, 200);
  EXPECT_TRUE(c.is_range());
  EXPECT_EQ(c.range_begin(), 100u);
  EXPECT_EQ(c.range_end(), 200u);
  EXPECT_EQ(c.pop(), 42u);
  c.reset();
  EXPECT_FALSE(c.is_range());
  EXPECT_TRUE(c.empty());
}

TEST(Chunk, PeekReadsLifoOrderWithoutRemoving) {
  Chunk c;
  c.push(10);
  c.push(20);
  c.push(30);
  // depth 0 is what the next pop() returns; deeper entries follow LIFO.
  EXPECT_EQ(c.peek(0), 30u);
  EXPECT_EQ(c.peek(1), 20u);
  EXPECT_EQ(c.peek(2), 10u);
  EXPECT_EQ(c.size(), 3u) << "peek must not consume";
  EXPECT_EQ(c.pop(), 30u);
  EXPECT_EQ(c.peek(0), 20u);
}

TEST(Chunk, PeekTracksRingWraparound) {
  // Drive head/tail around the ring (the drain loops peek on chunks that
  // have been partially consumed from the front), then check every depth
  // against the equivalent pop() sequence.
  BasicChunk<4> c;
  for (VertexId v = 0; v < 4; ++v) c.push(v);
  EXPECT_EQ(c.pop_front(), 0u);
  EXPECT_EQ(c.pop_front(), 1u);
  c.push(4);  // tail wraps past kCapacity
  c.push(5);
  ASSERT_EQ(c.size(), 4u);
  EXPECT_EQ(c.peek(0), 5u);
  EXPECT_EQ(c.peek(1), 4u);
  EXPECT_EQ(c.peek(2), 3u);
  EXPECT_EQ(c.peek(3), 2u);
}

TEST(Chunk, PeekOnEmptyChunkAsserts) {
  // Precondition violation: peek on an empty chunk. Debug builds must trap
  // on the assert; in NDEBUG the masked ring index still lands in-bounds
  // (the read is garbage but not out-of-range), which is what
  // EXPECT_DEBUG_DEATH's release leg executes.
  Chunk c;
  c.push(1);
  (void)c.pop();
  EXPECT_DEBUG_DEATH((void)c.peek(0), "depth < size");
}

TEST(Chunk, PeekDepthPastTailAsserts) {
  // depth == size() is one past the oldest live entry: precondition
  // violation even on a non-empty chunk, and the masked read stays
  // in-bounds under NDEBUG as above.
  Chunk c;
  c.push(7);
  c.push(8);
  EXPECT_EQ(c.peek(1), 7u);
  EXPECT_DEBUG_DEATH((void)c.peek(2), "depth < size");
}

TEST(Chunk, PriorityField) {
  Chunk c;
  c.set_priority(17);
  EXPECT_EQ(c.priority(), 17u);
  c.reset();
  EXPECT_EQ(c.priority(), 0u);
}

TEST(ChunkPool, RecyclesChunks) {
  ChunkArena arena;
  ChunkPool pool(arena, 4);
  Chunk* a = pool.get();
  a->push(1);
  a->set_priority(9);
  pool.put(a);
  Chunk* b = pool.get();
  EXPECT_EQ(b, a);  // LIFO freelist reuses the chunk...
  EXPECT_TRUE(b->empty());  // ...in pristine state
  EXPECT_EQ(b->priority(), 0u);
}

TEST(ChunkPool, GrowsFromArenaInBlocks) {
  ChunkArena arena;
  ChunkPool pool(arena, 8);
  std::set<Chunk*> seen;
  for (int i = 0; i < 30; ++i) EXPECT_TRUE(seen.insert(pool.get()).second);
  EXPECT_EQ(arena.num_slabs(), 4u);  // ceil(30/8)
}

TEST(ChunkPool, CrossPoolRecycling) {
  // A chunk allocated via pool A may be recycled into pool B (stolen chunks
  // are recycled by the thief).
  ChunkArena arena;
  ChunkPool a(arena, 4);
  ChunkPool b(arena, 4);
  Chunk* c = a.get();
  b.put(c);
  EXPECT_EQ(b.get(), c);
}

TEST(ChaseLevDeque, OwnerLifoOrder) {
  ChaseLevDeque<Chunk*> dq(4);
  Chunk c1, c2, c3;
  dq.push_bottom(&c1);
  dq.push_bottom(&c2);
  dq.push_bottom(&c3);
  EXPECT_EQ(dq.pop_bottom(), &c3);
  EXPECT_EQ(dq.pop_bottom(), &c2);
  EXPECT_EQ(dq.pop_bottom(), &c1);
  EXPECT_EQ(dq.pop_bottom(), nullptr);
}

TEST(ChaseLevDeque, StealFifoOrder) {
  ChaseLevDeque<Chunk*> dq(4);
  Chunk c1, c2, c3;
  dq.push_bottom(&c1);
  dq.push_bottom(&c2);
  dq.push_bottom(&c3);
  EXPECT_EQ(dq.steal(), &c1);
  EXPECT_EQ(dq.steal(), &c2);
  EXPECT_EQ(dq.steal(), &c3);
  EXPECT_EQ(dq.steal(), nullptr);
}

TEST(ChaseLevDeque, GrowsPastInitialCapacity) {
  ChaseLevDeque<Chunk*> dq(2);
  std::vector<Chunk> chunks(100);
  for (auto& c : chunks) dq.push_bottom(&c);
  EXPECT_EQ(dq.size_estimate(), 100);
  for (int i = 99; i >= 0; --i) EXPECT_EQ(dq.pop_bottom(), &chunks[i]);
}

TEST(ChaseLevDeque, MixedOwnerThiefSequential) {
  ChaseLevDeque<Chunk*> dq;
  std::vector<Chunk> chunks(10);
  for (int i = 0; i < 10; ++i) dq.push_bottom(&chunks[i]);
  EXPECT_EQ(dq.steal(), &chunks[0]);
  EXPECT_EQ(dq.pop_bottom(), &chunks[9]);
  EXPECT_EQ(dq.steal(), &chunks[1]);
  EXPECT_EQ(dq.size_estimate(), 7);
}

TEST(ChaseLevDeque, EmptyAfterDrain) {
  ChaseLevDeque<Chunk*> dq;
  Chunk c;
  dq.push_bottom(&c);
  EXPECT_FALSE(dq.empty_estimate());
  dq.pop_bottom();
  EXPECT_TRUE(dq.empty_estimate());
  // Reusable after drain.
  dq.push_bottom(&c);
  EXPECT_EQ(dq.steal(), &c);
}

TEST(DaryHeap, SortsRandomInput) {
  DaryHeap<std::uint32_t, std::uint32_t, 8> heap;
  std::mt19937 rng(1);
  std::vector<std::uint32_t> keys(1000);
  for (auto& k : keys) k = rng() % 10000;
  for (auto k : keys) heap.push(k, k * 2);
  std::sort(keys.begin(), keys.end());
  for (auto k : keys) {
    const auto e = heap.pop();
    EXPECT_EQ(e.key, k);
    EXPECT_EQ(e.value, k * 2);
  }
  EXPECT_TRUE(heap.empty());
}

TEST(DaryHeap, TopPeeksMinimum) {
  DaryHeap<int, int, 4> heap;
  heap.push(5, 50);
  heap.push(2, 20);
  heap.push(8, 80);
  EXPECT_EQ(heap.top().key, 2);
  EXPECT_EQ(heap.size(), 3u);
}

TEST(DaryHeap, HandlesDuplicateKeys) {
  DaryHeap<int, int, 2> heap;
  heap.push(1, 10);
  heap.push(1, 11);
  heap.push(1, 12);
  std::set<int> values;
  for (int i = 0; i < 3; ++i) {
    const auto e = heap.pop();
    EXPECT_EQ(e.key, 1);
    values.insert(e.value);
  }
  EXPECT_EQ(values, std::set<int>({10, 11, 12}));
}

TEST(SpinLock, MutualExclusionUnderContention) {
  SpinLock lock;
  std::uint64_t counter = 0;
  ThreadTeam team(8);
  team.run([&](int) {
    for (int i = 0; i < 10000; ++i) {
      std::lock_guard<SpinLock> guard(lock);
      ++counter;
    }
  });
  EXPECT_EQ(counter, 80000u);
}

TEST(SpinLock, TryLock) {
  SpinLock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(FrontierBag, GathersAllSegmentsInThreadOrder) {
  FrontierBag bag(3);
  bag.insert(0, 1);
  bag.insert(2, 5);
  bag.insert(1, 3);
  bag.insert(0, 2);
  ASSERT_EQ(bag.compute_offsets(), 4u);
  std::vector<VertexId> out(4);
  for (int t = 0; t < 3; ++t) bag.copy_out_and_clear(t, out.data());
  EXPECT_EQ(out, (std::vector<VertexId>{1, 2, 3, 5}));
  EXPECT_EQ(bag.compute_offsets(), 0u);  // cleared
}

TEST(FrontierBag, ConcurrentInsertsDistinctTids) {
  FrontierBag bag(4);
  ThreadTeam team(4);
  team.run([&](int tid) {
    for (int i = 0; i < 1000; ++i)
      bag.insert(tid, static_cast<VertexId>(tid * 1000 + i));
  });
  ASSERT_EQ(bag.compute_offsets(), 4000u);
  std::vector<VertexId> out(4000);
  for (int t = 0; t < 4; ++t) bag.copy_out_and_clear(t, out.data());
  std::set<VertexId> unique(out.begin(), out.end());
  EXPECT_EQ(unique.size(), 4000u);
}

}  // namespace
}  // namespace wasp
