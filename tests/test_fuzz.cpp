// Randomized differential testing: many random graphs with varied size,
// density, directedness and weight ranges (including zero weights), every
// algorithm checked against Dijkstra. The single most effective net for
// concurrency and bucketing bugs — any divergence is a real defect because
// SSSP distances are a unique fixed point.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/graph.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/sssp.hpp"
#include "sssp/validate.hpp"
#include "support/random.hpp"

namespace wasp {
namespace {

/// A random multigraph with the given knobs; may be disconnected, may have
/// parallel edges, may have zero-weight edges.
Graph random_graph(Xoshiro256& rng, VertexId n, double avg_degree,
                   bool undirected, Weight max_w, bool zero_weights) {
  const auto m = static_cast<std::size_t>(avg_degree * n / (undirected ? 2 : 1));
  std::vector<Edge> edges;
  edges.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    const auto u = static_cast<VertexId>(rng.next_below(n));
    const auto v = static_cast<VertexId>(rng.next_below(n));
    const Weight lo = zero_weights ? 0 : 1;
    const auto w = static_cast<Weight>(rng.next_in(lo, max_w));
    if (u != v) edges.push_back({u, v, w});
  }
  return Graph::from_edges(n, edges, undirected);
}

class FuzzAllAlgorithms : public testing::TestWithParam<int> {};

TEST_P(FuzzAllAlgorithms, EveryAlgorithmMatchesDijkstra) {
  const int round = GetParam();
  Xoshiro256 rng(0xF002 + static_cast<std::uint64_t>(round) * 7919);

  const auto n = static_cast<VertexId>(rng.next_in(2, 400));
  const double avg_degree = 0.5 + rng.next_double() * 8.0;
  const bool undirected = rng.next() % 2 == 0;
  const auto max_w = static_cast<Weight>(rng.next_in(1, 1u << (rng.next() % 12)));
  const bool zero_weights = rng.next() % 4 == 0;
  const Graph g = random_graph(rng, n, avg_degree, undirected, max_w,
                               zero_weights);
  if (g.num_edges() == 0) return;
  const VertexId src = pick_source_in_largest_component(
      g, 17 + static_cast<std::uint64_t>(round));
  const auto expected = dijkstra(g, src).dist;

  const auto delta = static_cast<Weight>(rng.next_in(1, max_w * 4 + 1));
  const int threads = 1 + static_cast<int>(rng.next_below(6));

  for (const Algorithm algo :
       {Algorithm::kBellmanFord, Algorithm::kDeltaStepping, Algorithm::kJulienne,
        Algorithm::kDeltaStar, Algorithm::kRhoStepping,
        Algorithm::kRadiusStepping, Algorithm::kMqDijkstra,
        Algorithm::kSmqDijkstra, Algorithm::kObim, Algorithm::kWasp}) {
    SsspOptions options;
    options.algo = algo;
    options.threads = threads;
    options.delta = delta;
    options.stepping.rho = 1 + rng.next_below(1 << 12);
    options.wasp.theta = static_cast<std::uint32_t>(1 + rng.next_below(512));
    options.seed = static_cast<std::uint64_t>(round);
    const SsspResult r = run_sssp(g, src, options);
    std::string message;
    ASSERT_TRUE(distances_equal(expected, r.dist, &message))
        << algorithm_name(algo) << " diverged on round " << round << " (n=" << n
        << ", avg_deg=" << avg_degree << ", undirected=" << undirected
        << ", max_w=" << max_w << ", zero_w=" << zero_weights
        << ", delta=" << delta << ", threads=" << threads << "): " << message;
  }
}

INSTANTIATE_TEST_SUITE_P(Rounds, FuzzAllAlgorithms, testing::Range(0, 40));

class FuzzWaspConfigs : public testing::TestWithParam<int> {};

TEST_P(FuzzWaspConfigs, RandomConfigurationsMatchDijkstra) {
  const int round = GetParam();
  Xoshiro256 rng(0xA11CE + static_cast<std::uint64_t>(round) * 104729);

  const auto n = static_cast<VertexId>(rng.next_in(2, 800));
  const Graph g = random_graph(rng, n, 0.5 + rng.next_double() * 6.0,
                               rng.next() % 2 == 0,
                               static_cast<Weight>(rng.next_in(1, 4096)),
                               rng.next() % 5 == 0);
  if (g.num_edges() == 0) return;
  const VertexId src =
      pick_source_in_largest_component(g, static_cast<std::uint64_t>(round));
  const auto expected = dijkstra(g, src).dist;

  SsspOptions options;
  options.algo = Algorithm::kWasp;
  options.threads = 1 + static_cast<int>(rng.next_below(10));
  options.delta = static_cast<Weight>(rng.next_in(1, 1u << (1 + rng.next() % 16)));
  options.wasp.leaf_pruning = rng.next() % 2 == 0;
  options.wasp.bidirectional_relaxation = rng.next() % 2 == 0;
  options.wasp.neighborhood_decomposition = rng.next() % 2 == 0;
  options.wasp.theta = static_cast<std::uint32_t>(1 + rng.next_below(256));
  options.wasp.steal_policy =
      static_cast<StealPolicy>(rng.next_below(3));
  options.wasp.steal_retries = static_cast<int>(rng.next_below(8));
  if (rng.next() % 2 == 0) {
    options.wasp.topology = std::make_shared<NumaTopology>(NumaTopology::synthetic(
        1 + static_cast<int>(rng.next_below(2)),
        1 + static_cast<int>(rng.next_below(4)),
        1 + static_cast<int>(rng.next_below(4))));
  }
  const SsspResult r = run_sssp(g, src, options);
  std::string message;
  ASSERT_TRUE(distances_equal(expected, r.dist, &message))
      << "wasp fuzz round " << round << " (threads=" << options.threads
      << ", delta=" << options.delta << "): " << message;
}

INSTANTIATE_TEST_SUITE_P(Rounds, FuzzWaspConfigs, testing::Range(0, 40));

}  // namespace
}  // namespace wasp
