// Unit tests for the support substrate: RNG determinism and distribution,
// timers, padded wrappers, statistics, the CLI parser, the spin barrier, and
// the ThreadTeam runtime.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>
#include <vector>

#include "support/cli.hpp"
#include "support/padded.hpp"
#include "support/random.hpp"
#include "support/spin_barrier.hpp"
#include "support/stats.hpp"
#include "support/thread_team.hpp"
#include "support/timer.hpp"
#include "support/types.hpp"

namespace wasp {
namespace {

TEST(SaturatingAdd, ExactBelowInfinity) {
  EXPECT_EQ(saturating_add(0, 0), 0u);
  EXPECT_EQ(saturating_add(3, 4), 7u);
  EXPECT_EQ(saturating_add(kInfDist - 1, 0), kInfDist - 1);
}

TEST(SaturatingAdd, ClampsAtInfinity) {
  EXPECT_EQ(saturating_add(kInfDist, 0), kInfDist);
  EXPECT_EQ(saturating_add(kInfDist, 1), kInfDist);
  EXPECT_EQ(saturating_add(kInfDist - 1, 1), kInfDist);
  // The overflow case a naive 32-bit add would wrap to a tiny (and thus
  // corrupting) candidate distance.
  EXPECT_EQ(saturating_add(kInfDist - 1, kInfDist - 1), kInfDist);
  EXPECT_EQ(saturating_add(0xFFFFFFF0u, 0x20u), kInfDist);
}

TEST(SaturatingAdd, IsConstexpr) {
  static_assert(saturating_add(1, 2) == 3);
  static_assert(saturating_add(kInfDist, kInfDist) == kInfDist);
}

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(HashMix, InjectiveOnSmallRange) {
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < 10000; ++i) seen.insert(hash_mix(i));
  EXPECT_EQ(seen.size(), 10000u);
}

TEST(Xoshiro256, NextBelowStaysInRange) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Xoshiro256, NextInIsInclusive) {
  Xoshiro256 rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 20000; ++i) {
    const auto v = rng.next_in(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= v == 3;
    saw_hi |= v == 5;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Xoshiro256, NextDoubleInUnitInterval) {
  Xoshiro256 rng(3);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // mean of U(0,1)
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x = x + 1.0;
  EXPECT_GT(t.nanoseconds(), 0u);
}

TEST(TimeAccumulator, AccumulatesAcrossIntervals) {
  TimeAccumulator acc;
  acc.start();
  acc.stop();
  acc.start();
  acc.stop();
  EXPECT_GE(acc.total_ns(), 0u);
  acc.reset();
  EXPECT_EQ(acc.total_ns(), 0u);
}

TEST(CachePadded, SizeIsCacheLineMultiple) {
  EXPECT_EQ(sizeof(CachePadded<int>) % kCacheLineSize, 0u);
  EXPECT_EQ(sizeof(CachePadded<std::uint64_t>) % kCacheLineSize, 0u);
  struct Big {
    char data[100];
  };
  EXPECT_EQ(sizeof(CachePadded<Big>) % kCacheLineSize, 0u);
}

TEST(CachePadded, AlignmentIsCacheLine) {
  EXPECT_EQ(alignof(CachePadded<int>), kCacheLineSize);
}

TEST(Stats, GeometricMean) {
  EXPECT_DOUBLE_EQ(geometric_mean({4.0, 1.0}), 2.0);
  EXPECT_NEAR(geometric_mean({2.0, 2.0, 2.0}), 2.0, 1e-12);
  EXPECT_EQ(geometric_mean({}), 0.0);
}

TEST(Stats, ArithmeticMeanAndMedian) {
  EXPECT_DOUBLE_EQ(arithmetic_mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(median({5.0, 1.0, 3.0}), 3.0);
  EXPECT_DOUBLE_EQ(median({4.0, 1.0, 3.0, 2.0}), 2.5);
}

TEST(Stats, MinimumAndStddev) {
  EXPECT_DOUBLE_EQ(minimum({3.0, 1.0, 2.0}), 1.0);
  EXPECT_NEAR(stddev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}), 2.138, 0.01);
  EXPECT_EQ(stddev({1.0}), 0.0);
}

TEST(ArgParser, ParsesIntsStringsFlags) {
  ArgParser args("prog", "test");
  args.add_int("threads", 4, "threads");
  args.add_string("graph", "usa", "graph");
  args.add_flag("verbose", "verbose");
  args.add_double("scale", 1.0, "scale");
  const char* argv[] = {"prog", "--threads", "8", "--graph=road",
                        "--verbose", "--scale", "2.5"};
  args.parse(7, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("threads"), 8);
  EXPECT_EQ(args.get_string("graph"), "road");
  EXPECT_TRUE(args.get_flag("verbose"));
  EXPECT_DOUBLE_EQ(args.get_double("scale"), 2.5);
}

TEST(ArgParser, DefaultsSurviveWhenUnset) {
  ArgParser args("prog", "test");
  args.add_int("threads", 4, "threads");
  args.add_flag("verbose", "verbose");
  const char* argv[] = {"prog"};
  args.parse(1, const_cast<char**>(argv));
  EXPECT_EQ(args.get_int("threads"), 4);
  EXPECT_FALSE(args.get_flag("verbose"));
}

TEST(SpinBarrier, SynchronizesPhases) {
  constexpr int kThreads = 4;
  constexpr int kPhases = 50;
  SpinBarrier barrier(kThreads);
  std::atomic<int> phase_sum{0};
  std::vector<int> observed(kThreads, 0);
  ThreadTeam team(kThreads);
  team.run([&](int tid) {
    for (int phase = 0; phase < kPhases; ++phase) {
      phase_sum.fetch_add(1, std::memory_order_relaxed);
      barrier.wait(tid);
      // After the barrier, all kThreads increments of this phase are done.
      const int expected = (phase + 1) * kThreads;
      if (phase_sum.load(std::memory_order_relaxed) >= expected)
        ++observed[tid];
      barrier.wait(tid);
    }
  });
  for (int t = 0; t < kThreads; ++t) EXPECT_EQ(observed[t], kPhases);
}

TEST(SpinBarrier, TracksWaitTime) {
  SpinBarrier barrier(2);
  ThreadTeam team(2);
  team.run([&](int tid) {
    if (tid == 0) {
      volatile double x = 0;
      for (int i = 0; i < 2000000; ++i) x = x + 1.0;
    }
    barrier.wait(tid);
  });
  // Both threads have recorded some (possibly tiny) wait time; the total is
  // positive because thread 1 had to wait for thread 0's busy loop.
  EXPECT_GT(barrier.total_wait_ns(), 0u);
}

TEST(SpinBarrier, ReusableAcrossManyRounds) {
  // The synchronous baselines reuse one barrier for thousands of rounds;
  // the sense-reversing flip must stay consistent indefinitely.
  constexpr int kThreads = 3;
  SpinBarrier barrier(kThreads);
  std::vector<int> counters(kThreads, 0);
  ThreadTeam team(kThreads);
  team.run([&](int tid) {
    for (int round = 0; round < 2000; ++round) {
      ++counters[tid];
      barrier.wait(tid);
      // All counters equal after every barrier.
      for (int t = 0; t < kThreads; ++t)
        ASSERT_EQ(counters[t], round + 1) << "round " << round;
      barrier.wait(tid);
    }
  });
}

TEST(ThreadTeam, RunsAllParticipants) {
  ThreadTeam team(6);
  std::vector<std::atomic<int>> hits(6);
  for (auto& h : hits) h.store(0);
  team.run([&](int tid) { hits[tid].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadTeam, RunIsReusable) {
  ThreadTeam team(3);
  std::atomic<int> total{0};
  for (int i = 0; i < 20; ++i)
    team.run([&](int) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 60);
}

TEST(ThreadTeam, SingleThreadTeamRunsInline) {
  ThreadTeam team(1);
  int value = 0;
  team.run([&](int tid) {
    EXPECT_EQ(tid, 0);
    value = 42;
  });
  EXPECT_EQ(value, 42);
}

TEST(ThreadTeam, ParallelForCoversRangeExactlyOnce) {
  ThreadTeam team(4);
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h.store(0);
  team.parallel_for(0, 1000, 7, [&](std::uint64_t lo, std::uint64_t hi) {
    for (std::uint64_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadTeam, ParallelForEmptyRange) {
  ThreadTeam team(2);
  bool called = false;
  team.parallel_for(5, 5, 1, [&](std::uint64_t, std::uint64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadTeam, CpuAssignmentRoundRobins) {
  ThreadTeam team(4);
  const int ncpu = hardware_threads();
  for (int t = 0; t < 4; ++t) EXPECT_EQ(team.cpu_of(t), t % ncpu);
}

}  // namespace
}  // namespace wasp
