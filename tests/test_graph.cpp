// Tests for the CSR graph, weight schemes, and graph algorithms (connected
// components, leaf bitmap, transpose, BFS, degree stats).
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/algorithms.hpp"
#include "graph/graph.hpp"
#include "graph/weights.hpp"

namespace wasp {
namespace {

Graph triangle_plus_tail() {
  // 0-1-2 triangle, tail 2-3, isolated 4. Undirected.
  return Graph::from_edges(
      5, {{0, 1, 5}, {1, 2, 3}, {0, 2, 9}, {2, 3, 1}}, true);
}

TEST(Graph, EmptyGraph) {
  const Graph g = Graph::from_edges(0, {}, false);
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(Graph, DirectedFromEdges) {
  const Graph g = Graph::from_edges(3, {{0, 1, 7}, {0, 2, 2}, {2, 1, 4}}, false);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_FALSE(g.is_undirected());
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.out_degree(1), 0u);
  EXPECT_EQ(g.out_degree(2), 1u);
  const auto n0 = g.out_neighbors(0);
  ASSERT_EQ(n0.size(), 2u);
  EXPECT_EQ(n0[0], (WEdge{1, 7}));  // sorted by destination
  EXPECT_EQ(n0[1], (WEdge{2, 2}));
}

TEST(Graph, UndirectedStoresBothDirections) {
  const Graph g = triangle_plus_tail();
  EXPECT_TRUE(g.is_undirected());
  EXPECT_EQ(g.num_edges(), 8u);  // 4 input edges, both directions
  EXPECT_EQ(g.out_degree(2), 3u);
  EXPECT_EQ(g.out_degree(4), 0u);
  // Symmetry: (1,2,3) implies (2,1,3).
  bool found = false;
  for (const WEdge& e : g.out_neighbors(2))
    if (e.dst == 1 && e.w == 3) found = true;
  EXPECT_TRUE(found);
}

TEST(Graph, DropsSelfLoops) {
  const Graph g = Graph::from_edges(2, {{0, 0, 1}, {0, 1, 2}, {1, 1, 3}}, false);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(Graph, RejectsOutOfRangeVertices) {
  EXPECT_THROW(Graph::from_edges(2, {{0, 5, 1}}, false), std::out_of_range);
}

TEST(Graph, NeighborRangeSubspan) {
  const Graph g = Graph::from_edges(
      1 + 4, {{0, 1, 1}, {0, 2, 2}, {0, 3, 3}, {0, 4, 4}}, false);
  const auto mid = g.out_neighbors(0, 1, 3);
  ASSERT_EQ(mid.size(), 2u);
  EXPECT_EQ(mid[0].dst, 2u);
  EXPECT_EQ(mid[1].dst, 3u);
}

TEST(Graph, MaxWeight) {
  EXPECT_EQ(triangle_plus_tail().max_weight(), 9u);
  EXPECT_EQ(Graph::from_edges(1, {}, false).max_weight(), 0u);
}

TEST(Graph, FromCsrRejectsMalformedOffsets) {
  EXPECT_THROW(Graph::from_csr({}, {}, false), std::invalid_argument);
  EXPECT_THROW(Graph::from_csr({0, 2}, {WEdge{0, 1}}, false),
               std::invalid_argument);
}

TEST(WeightScheme, GapSchemeRange) {
  Xoshiro256 rng(1);
  const auto scheme = WeightScheme::gap();
  for (int i = 0; i < 10000; ++i) {
    const Weight w = scheme.sample(rng);
    ASSERT_GE(w, 1u);
    ASSERT_LE(w, 255u);
  }
}

TEST(WeightScheme, UnitScheme) {
  Xoshiro256 rng(1);
  const auto scheme = WeightScheme::unit();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(scheme.sample(rng), 1u);
}

TEST(WeightScheme, TruncatedNormalIsPositiveWithExpectedMean) {
  Xoshiro256 rng(1);
  const auto scheme = WeightScheme::truncated_normal(1.0, 0.25, 1000.0);
  double sum = 0;
  for (int i = 0; i < 20000; ++i) {
    const Weight w = scheme.sample(rng);
    ASSERT_GE(w, 1u);
    sum += w;
  }
  // Mean ~ 1.0 * scale (sigma small enough that truncation barely bites).
  EXPECT_NEAR(sum / 20000.0, 1000.0, 30.0);
}

TEST(AssignWeights, DeterministicInSeed) {
  std::vector<Edge> a = {{0, 1, 0}, {1, 2, 0}, {2, 3, 0}};
  std::vector<Edge> b = a;
  assign_weights(a, WeightScheme::gap(), 99);
  assign_weights(b, WeightScheme::gap(), 99);
  EXPECT_EQ(a, b);
  std::vector<Edge> c = {{0, 1, 0}, {1, 2, 0}, {2, 3, 0}};
  assign_weights(c, WeightScheme::gap(), 100);
  EXPECT_NE(a, c);
}

TEST(ConnectedComponents, FindsComponentsAndLargest) {
  const Graph g = triangle_plus_tail();
  const ComponentInfo info = connected_components(g);
  EXPECT_EQ(info.size.size(), 2u);  // {0,1,2,3} and {4}
  EXPECT_EQ(info.size[info.largest], 4u);
  EXPECT_EQ(info.label[0], info.label[3]);
  EXPECT_NE(info.label[0], info.label[4]);
}

TEST(ConnectedComponents, DirectedUsesWeakConnectivity) {
  const Graph g = Graph::from_edges(3, {{0, 1, 1}, {2, 1, 1}}, false);
  const ComponentInfo info = connected_components(g);
  EXPECT_EQ(info.size.size(), 1u);
}

TEST(PickSource, LandsInLargestComponentWithOutEdges) {
  const Graph g = triangle_plus_tail();
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const VertexId s = pick_source_in_largest_component(g, seed);
    EXPECT_LE(s, 3u);
    EXPECT_GT(g.out_degree(s), 0u);
  }
}

TEST(LeafBitmap, UndirectedDegreeOneAndIsolated) {
  const Graph g = triangle_plus_tail();
  const auto leaf = compute_leaf_bitmap(g);
  EXPECT_FALSE(leaf[0]);
  EXPECT_FALSE(leaf[1]);
  EXPECT_FALSE(leaf[2]);
  EXPECT_TRUE(leaf[3]);  // degree 1
  EXPECT_TRUE(leaf[4]);  // isolated
}

TEST(LeafBitmap, DirectedOnlyZeroOutDegree) {
  const Graph g = Graph::from_edges(3, {{0, 1, 1}, {1, 2, 1}}, false);
  const auto leaf = compute_leaf_bitmap(g);
  EXPECT_FALSE(leaf[0]);
  EXPECT_FALSE(leaf[1]);
  EXPECT_TRUE(leaf[2]);
}

TEST(Transpose, ReversesDirectedEdges) {
  const Graph g = Graph::from_edges(3, {{0, 1, 7}, {0, 2, 2}, {2, 1, 4}}, false);
  const Graph gt = transpose(g);
  EXPECT_EQ(gt.num_edges(), 3u);
  EXPECT_EQ(gt.out_degree(1), 2u);  // in-edges of 1
  EXPECT_EQ(gt.out_degree(0), 0u);
  bool found = false;
  for (const WEdge& e : gt.out_neighbors(1))
    if (e.dst == 0 && e.w == 7) found = true;
  EXPECT_TRUE(found);
}

TEST(Transpose, UndirectedIsInvariant) {
  const Graph g = triangle_plus_tail();
  const Graph gt = transpose(g);
  ASSERT_EQ(gt.num_edges(), g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    EXPECT_EQ(gt.out_degree(v), g.out_degree(v));
}

TEST(BfsHops, ComputesHopDistances) {
  const Graph g = triangle_plus_tail();
  const auto hops = bfs_hops(g, 0);
  EXPECT_EQ(hops[0], 0u);
  EXPECT_EQ(hops[1], 1u);
  EXPECT_EQ(hops[2], 1u);
  EXPECT_EQ(hops[3], 2u);
  EXPECT_EQ(hops[4], kInfDist);
}

TEST(DegreeStats, SummarizesDegrees) {
  const Graph g = triangle_plus_tail();
  const DegreeStats s = degree_stats(g);
  EXPECT_EQ(s.min, 0u);
  EXPECT_EQ(s.max, 3u);
  EXPECT_EQ(s.num_isolated, 1u);
  EXPECT_DOUBLE_EQ(s.avg, 8.0 / 5.0);
}

}  // namespace
}  // namespace wasp
