// Tests for the benchmark workload suite: every paper-dataset analogue must
// build, be deterministic, expose its defining structural property, and pick
// a valid source.
#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/suite.hpp"

namespace wasp {
namespace {

TEST(Suite, MainSuiteHasThirteenClasses) {
  EXPECT_EQ(suite::main_suite().size(), 13u);
}

TEST(Suite, AppendixSuiteHasNineClasses) {
  EXPECT_EQ(suite::appendix_suite().size(), 9u);
}

TEST(Suite, AbbreviationsRoundTrip) {
  for (const auto cls : suite::main_suite())
    EXPECT_EQ(suite::parse_abbr(suite::abbr(cls)), cls);
  for (const auto cls : suite::appendix_suite())
    EXPECT_EQ(suite::parse_abbr(suite::abbr(cls)), cls);
  EXPECT_THROW(suite::parse_abbr("NOPE"), std::invalid_argument);
}

TEST(Suite, EveryClassBuildsAtTinyScale) {
  for (const auto cls : suite::main_suite()) {
    const auto w = suite::make(cls, 0.1, 1);
    EXPECT_GT(w.graph.num_vertices(), 0u) << suite::abbr(cls);
    EXPECT_GT(w.graph.num_edges(), 0u) << suite::abbr(cls);
    EXPECT_LT(w.source, w.graph.num_vertices()) << suite::abbr(cls);
    EXPECT_GT(w.graph.out_degree(w.source), 0u) << suite::abbr(cls);
  }
  for (const auto cls : suite::appendix_suite()) {
    const auto w = suite::make(cls, 0.1, 1);
    EXPECT_GT(w.graph.num_edges(), 0u) << suite::abbr(cls);
  }
}

TEST(Suite, DeterministicInSeed) {
  const auto a = suite::make(suite::GraphClass::kTwitter, 0.1, 5);
  const auto b = suite::make(suite::GraphClass::kTwitter, 0.1, 5);
  EXPECT_EQ(a.source, b.source);
  EXPECT_EQ(a.graph.adjacency(), b.graph.adjacency());
}

TEST(Suite, RoadClassHasLowDegreeAndBigDiameter) {
  const auto w = suite::make(suite::GraphClass::kRoadUsa, 0.2, 1);
  const DegreeStats s = degree_stats(w.graph);
  EXPECT_LE(s.max, 4u);
  const auto hops = bfs_hops(w.graph, w.source);
  std::uint32_t max_hop = 0;
  for (auto h : hops)
    if (h != kInfDist) max_hop = std::max(max_hop, h);
  // Grid diameter ~ 2 * side; at scale 0.2 the side is ~143.
  EXPECT_GT(max_hop, 50u);
}

TEST(Suite, MawiClassHasDominantHubAndLeaves) {
  const auto w = suite::make(suite::GraphClass::kMawi, 0.2, 1);
  const DegreeStats s = degree_stats(w.graph);
  // Hub adjacent to most of the graph.
  EXPECT_GT(s.max, w.graph.num_vertices() / 2);
  const auto leaf = compute_leaf_bitmap(w.graph);
  VertexId leaves = 0;
  for (auto b : leaf) leaves += b;
  EXPECT_GT(leaves, w.graph.num_vertices() / 2);
}

TEST(Suite, SkewedClassesAreSkewed) {
  const auto tw = suite::make(suite::GraphClass::kTwitter, 0.2, 1);
  const auto ur = suite::make(suite::GraphClass::kUrand, 0.2, 1);
  EXPECT_GT(degree_stats(tw.graph).max, 4 * degree_stats(ur.graph).max);
}

TEST(Suite, DirectednessMatchesPaperTable) {
  EXPECT_FALSE(suite::make(suite::GraphClass::kTwitter, 0.1, 1).graph.is_undirected());
  EXPECT_FALSE(suite::make(suite::GraphClass::kWebSk, 0.1, 1).graph.is_undirected());
  EXPECT_TRUE(suite::make(suite::GraphClass::kRoadUsa, 0.1, 1).graph.is_undirected());
  EXPECT_TRUE(suite::make(suite::GraphClass::kKron, 0.1, 1).graph.is_undirected());
  EXPECT_TRUE(suite::make(suite::GraphClass::kMawi, 0.1, 1).graph.is_undirected());
}

TEST(Suite, ScaleGrowsTheGraph) {
  const auto small = suite::make(suite::GraphClass::kUrand, 0.1, 1);
  const auto large = suite::make(suite::GraphClass::kUrand, 0.4, 1);
  EXPECT_GT(large.graph.num_vertices(), 2 * small.graph.num_vertices());
}

}  // namespace
}  // namespace wasp
