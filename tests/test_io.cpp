// Round-trip and format tests for graph I/O (edge list, Matrix Market,
// binary CSR).
#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <sstream>

#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "support/errors.hpp"

namespace wasp {
namespace {

void expect_same_graph(const Graph& a, const Graph& b) {
  EXPECT_EQ(a.num_vertices(), b.num_vertices());
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.is_undirected(), b.is_undirected());
  EXPECT_EQ(a.offsets(), b.offsets());
  EXPECT_EQ(a.adjacency(), b.adjacency());
}

TEST(EdgeListIo, RoundTripsDirected) {
  const Graph g = gen::rmat(8, 500, 0.57, 0.19, 0.19, WeightScheme::gap(), 1,
                            /*undirected=*/false);
  std::stringstream ss;
  io::write_edge_list(g, ss);
  const Graph h = io::read_edge_list(ss, /*undirected=*/false);
  // The reader determines n from max id, which can be smaller than the
  // generator's 2^8 if trailing vertices are isolated; compare edges only.
  EXPECT_EQ(h.num_edges(), g.num_edges());
  for (VertexId u = 0; u < h.num_vertices(); ++u) {
    ASSERT_EQ(h.out_degree(u), g.out_degree(u));
    const auto ga = g.out_neighbors(u);
    const auto ha = h.out_neighbors(u);
    for (std::size_t i = 0; i < ga.size(); ++i) EXPECT_EQ(ga[i], ha[i]);
  }
}

TEST(EdgeListIo, RoundTripsUndirectedWithoutDuplicates) {
  const Graph g = gen::grid(6, 7, WeightScheme::gap(), 2);
  std::stringstream ss;
  io::write_edge_list(g, ss);
  const Graph h = io::read_edge_list(ss, /*undirected=*/true);
  expect_same_graph(g, h);
}

TEST(EdgeListIo, DefaultsMissingWeightToOne) {
  std::stringstream ss("0 1\n1 2 5\n");
  const Graph g = io::read_edge_list(ss, false);
  EXPECT_EQ(g.out_neighbors(0)[0].w, 1u);
  EXPECT_EQ(g.out_neighbors(1)[0].w, 5u);
}

TEST(EdgeListIo, SkipsComments) {
  std::stringstream ss("# a comment\n% another\n0 1 3\n");
  const Graph g = io::read_edge_list(ss, false);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(EdgeListIo, RejectsMalformedLine) {
  std::stringstream ss("0 x 3\n");
  EXPECT_THROW(io::read_edge_list(ss, false), std::runtime_error);
}

TEST(MatrixMarket, ReadsIntegerGeneral) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate integer general\n"
      "% comment\n"
      "3 3 2\n"
      "1 2 7\n"
      "3 1 4\n");
  const Graph g = io::read_matrix_market(ss);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_FALSE(g.is_undirected());
  EXPECT_EQ(g.out_neighbors(0)[0], (WEdge{1, 7}));
  EXPECT_EQ(g.out_neighbors(2)[0], (WEdge{0, 4}));
}

TEST(MatrixMarket, SymmetricBecomesUndirected) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "3 3 2\n"
      "2 1\n"
      "3 2\n");
  const Graph g = io::read_matrix_market(ss);
  EXPECT_TRUE(g.is_undirected());
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.out_neighbors(0)[0].w, 1u);  // pattern weights default to 1
}

TEST(MatrixMarket, RealWeightsScaledLikeMoliere) {
  // The paper scales Moliere's float weights to integers; reader applies
  // `real_scale` and clamps to >= 1.
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 2 0.0123\n"
      "2 1 0.0000001\n");
  const Graph g = io::read_matrix_market(ss, 1e4);
  EXPECT_EQ(g.out_neighbors(0)[0].w, 123u);
  EXPECT_EQ(g.out_neighbors(1)[0].w, 1u);  // clamped
}

TEST(MatrixMarket, RejectsBadBanner) {
  std::stringstream ss("garbage\n1 1 0\n");
  EXPECT_THROW(io::read_matrix_market(ss), std::runtime_error);
}

TEST(BinaryIo, RoundTripsExactly) {
  const Graph g = gen::rmat(9, 2000, 0.6, 0.15, 0.15, WeightScheme::gap(), 3,
                            /*undirected=*/true);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  io::write_binary(g, ss);
  const Graph h = io::read_binary(ss);
  expect_same_graph(g, h);
}

TEST(BinaryIo, RejectsBadMagic) {
  std::stringstream ss("not a graph", std::ios::in | std::ios::binary);
  EXPECT_THROW(io::read_binary(ss), std::runtime_error);
}

TEST(GapWsgIo, RoundTripsUndirected) {
  const Graph g = gen::grid(8, 9, WeightScheme::gap(), 6);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  io::write_gap_wsg(g, ss);
  const Graph h = io::read_gap_wsg(ss);
  expect_same_graph(g, h);
}

TEST(GapWsgIo, RoundTripsDirectedSkippingInverse) {
  const Graph g = gen::rmat(8, 1000, 0.6, 0.15, 0.15, WeightScheme::gap(), 7,
                            /*undirected=*/false);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  io::write_gap_wsg(g, ss);
  const Graph h = io::read_gap_wsg(ss);
  expect_same_graph(g, h);  // inverse arrays are written but skipped on read
}

TEST(GapWsgIo, HeaderLayoutMatchesGap) {
  // First 17 bytes: bool directed, int64 m, int64 n.
  const Graph g = Graph::from_edges(3, {{0, 1, 5}, {1, 2, 7}}, false);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  io::write_gap_wsg(g, ss);
  const std::string bytes = ss.str();
  ASSERT_GE(bytes.size(), 17u);
  EXPECT_EQ(bytes[0], 1);  // directed
  std::int64_t m = 0;
  std::int64_t n = 0;
  std::memcpy(&m, bytes.data() + 1, sizeof(m));
  std::memcpy(&n, bytes.data() + 9, sizeof(n));
  EXPECT_EQ(m, 2);
  EXPECT_EQ(n, 3);
}

TEST(GapWsgIo, RejectsGarbage) {
  std::stringstream ss("xx", std::ios::in | std::ios::binary);
  EXPECT_THROW(io::read_gap_wsg(ss), std::runtime_error);
}

// ---------------------------------------------------------------------------
// Corrupt-input hardening: every rejection must carry a precise message
// (byte offset / line number, expected vs actual) and a typed error.
// ---------------------------------------------------------------------------

/// Serialized bytes of a small valid binary graph, for corruption.
std::string valid_binary_bytes() {
  const Graph g = Graph::from_edges(4, {{0, 1, 2}, {1, 2, 3}, {2, 3, 4}}, false);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  io::write_binary(g, ss);
  return ss.str();
}

std::string throw_message(const std::function<void()>& fn) {
  try {
    fn();
  } catch (const std::exception& e) {
    return e.what();
  }
  return "";
}

TEST(BinaryIo, TruncatedHeaderReportsOffsetAndCounts) {
  const std::string bytes = valid_binary_bytes();
  // Cut inside the vertex-count field (bytes 12..20).
  std::stringstream ss(bytes.substr(0, 14), std::ios::in | std::ios::binary);
  const std::string msg = throw_message([&] { io::read_binary(ss); });
  EXPECT_NE(msg.find("truncated vertex count"), std::string::npos) << msg;
  EXPECT_NE(msg.find("byte offset 12"), std::string::npos) << msg;
  EXPECT_NE(msg.find("expected 8 bytes, got 2"), std::string::npos) << msg;
}

TEST(BinaryIo, TruncatedPayloadReportsArrayAndOffset) {
  const std::string bytes = valid_binary_bytes();
  // Keep the 28-byte header plus half the offset array.
  std::stringstream ss(bytes.substr(0, 28 + 12), std::ios::in | std::ios::binary);
  const std::string msg = throw_message([&] { io::read_binary(ss); });
  EXPECT_NE(msg.find("truncated offset array"), std::string::npos) << msg;
  EXPECT_NE(msg.find("byte offset 28"), std::string::npos) << msg;
}

TEST(BinaryIo, RejectsUnsupportedVersion) {
  std::string bytes = valid_binary_bytes();
  bytes[4] = 9;  // version field (little-endian u32 at offset 4)
  std::stringstream ss(bytes, std::ios::in | std::ios::binary);
  const std::string msg = throw_message([&] { io::read_binary(ss); });
  EXPECT_NE(msg.find("unsupported version 9 (expected 1)"), std::string::npos)
      << msg;
}

TEST(BinaryIo, RejectsBadUndirectedFlag) {
  std::string bytes = valid_binary_bytes();
  bytes[8] = 7;  // undirected flag at offset 8
  std::stringstream ss(bytes, std::ios::in | std::ios::binary);
  EXPECT_THROW(io::read_binary(ss), GraphFormatError);
}

TEST(BinaryIo, RejectsOversizedHeaderBeforeAllocating) {
  std::string bytes = valid_binary_bytes();
  // Edge count (u64 at offset 20) claiming ~2^56 edges: must be rejected by
  // the payload cap, not by an allocation attempt.
  const std::uint64_t huge = 1ULL << 56;
  std::memcpy(&bytes[20], &huge, sizeof(huge));
  std::stringstream ss(bytes, std::ios::in | std::ios::binary);
  const std::string msg = throw_message([&] { io::read_binary(ss); });
  EXPECT_NE(msg.find("oversized header"), std::string::npos) << msg;
  EXPECT_NE(msg.find("header is corrupt"), std::string::npos) << msg;
}

TEST(BinaryIo, RejectsVertexCountBeyond32BitIds) {
  std::string bytes = valid_binary_bytes();
  const std::uint64_t huge = 1ULL << 40;
  std::memcpy(&bytes[12], &huge, sizeof(huge));  // vertex count at offset 12
  std::stringstream ss(bytes, std::ios::in | std::ios::binary);
  const std::string msg = throw_message([&] { io::read_binary(ss); });
  EXPECT_NE(msg.find("32-bit id limit"), std::string::npos) << msg;
}

TEST(BinaryIo, TypedErrorIsAlsoRuntimeError) {
  std::stringstream ss("WXYZ", std::ios::in | std::ios::binary);
  EXPECT_THROW(io::read_binary(ss), GraphFormatError);
  std::stringstream ss2("WXYZ", std::ios::in | std::ios::binary);
  EXPECT_THROW(io::read_binary(ss2), std::runtime_error);  // base class
}

TEST(GapWsgIo, TruncatedPayloadReportsArray) {
  const Graph g = Graph::from_edges(3, {{0, 1, 5}, {1, 2, 7}}, false);
  std::stringstream full(std::ios::in | std::ios::out | std::ios::binary);
  io::write_gap_wsg(g, full);
  const std::string bytes = full.str();
  std::stringstream ss(bytes.substr(0, 17 + 8), std::ios::in | std::ios::binary);
  const std::string msg = throw_message([&] { io::read_gap_wsg(ss); });
  EXPECT_NE(msg.find("truncated wsg offset array"), std::string::npos) << msg;
  EXPECT_NE(msg.find("byte offset 17"), std::string::npos) << msg;
}

TEST(EdgeListIo, RejectsNegativeValuesWithLineNumber) {
  std::stringstream ss("0 1 3\n2 -7 1\n");
  const std::string msg =
      throw_message([&] { io::read_edge_list(ss, false); });
  EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("negative value"), std::string::npos) << msg;
}

TEST(EdgeListIo, RejectsIdsBeyond32Bits) {
  std::stringstream ss("0 99999999999 1\n");
  EXPECT_THROW(io::read_edge_list(ss, false), GraphFormatError);
}

TEST(MatrixMarket, RejectsOutOfRangeEntryWithPosition) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate integer general\n"
      "3 3 2\n"
      "1 2 7\n"
      "5 1 4\n");
  const std::string msg = throw_message([&] { io::read_matrix_market(ss); });
  EXPECT_NE(msg.find("entry 2 of 2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("out of range"), std::string::npos) << msg;
}

TEST(MatrixMarket, RejectsNegativeWeight) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate integer general\n"
      "3 3 1\n"
      "1 2 -7\n");
  const std::string msg = throw_message([&] { io::read_matrix_market(ss); });
  EXPECT_NE(msg.find("negative weight"), std::string::npos) << msg;
}

TEST(MatrixMarket, RejectsTruncatedEntries) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate integer general\n"
      "3 3 3\n"
      "1 2 7\n");
  const std::string msg = throw_message([&] { io::read_matrix_market(ss); });
  EXPECT_NE(msg.find("truncated entries"), std::string::npos) << msg;
}

TEST(BinaryIo, FileRoundTrip) {
  const Graph g = gen::grid(5, 5, WeightScheme::gap(), 4);
  const std::string path = testing::TempDir() + "/wasp_io_test.bin";
  io::write_binary_file(g, path);
  const Graph h = io::read_binary_file(path);
  expect_same_graph(g, h);
}

}  // namespace
}  // namespace wasp
