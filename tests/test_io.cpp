// Round-trip and format tests for graph I/O (edge list, Matrix Market,
// binary CSR).
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>

#include "graph/generators.hpp"
#include "graph/io.hpp"

namespace wasp {
namespace {

void expect_same_graph(const Graph& a, const Graph& b) {
  EXPECT_EQ(a.num_vertices(), b.num_vertices());
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.is_undirected(), b.is_undirected());
  EXPECT_EQ(a.offsets(), b.offsets());
  EXPECT_EQ(a.adjacency(), b.adjacency());
}

TEST(EdgeListIo, RoundTripsDirected) {
  const Graph g = gen::rmat(8, 500, 0.57, 0.19, 0.19, WeightScheme::gap(), 1,
                            /*undirected=*/false);
  std::stringstream ss;
  io::write_edge_list(g, ss);
  const Graph h = io::read_edge_list(ss, /*undirected=*/false);
  // The reader determines n from max id, which can be smaller than the
  // generator's 2^8 if trailing vertices are isolated; compare edges only.
  EXPECT_EQ(h.num_edges(), g.num_edges());
  for (VertexId u = 0; u < h.num_vertices(); ++u) {
    ASSERT_EQ(h.out_degree(u), g.out_degree(u));
    const auto ga = g.out_neighbors(u);
    const auto ha = h.out_neighbors(u);
    for (std::size_t i = 0; i < ga.size(); ++i) EXPECT_EQ(ga[i], ha[i]);
  }
}

TEST(EdgeListIo, RoundTripsUndirectedWithoutDuplicates) {
  const Graph g = gen::grid(6, 7, WeightScheme::gap(), 2);
  std::stringstream ss;
  io::write_edge_list(g, ss);
  const Graph h = io::read_edge_list(ss, /*undirected=*/true);
  expect_same_graph(g, h);
}

TEST(EdgeListIo, DefaultsMissingWeightToOne) {
  std::stringstream ss("0 1\n1 2 5\n");
  const Graph g = io::read_edge_list(ss, false);
  EXPECT_EQ(g.out_neighbors(0)[0].w, 1u);
  EXPECT_EQ(g.out_neighbors(1)[0].w, 5u);
}

TEST(EdgeListIo, SkipsComments) {
  std::stringstream ss("# a comment\n% another\n0 1 3\n");
  const Graph g = io::read_edge_list(ss, false);
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(EdgeListIo, RejectsMalformedLine) {
  std::stringstream ss("0 x 3\n");
  EXPECT_THROW(io::read_edge_list(ss, false), std::runtime_error);
}

TEST(MatrixMarket, ReadsIntegerGeneral) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate integer general\n"
      "% comment\n"
      "3 3 2\n"
      "1 2 7\n"
      "3 1 4\n");
  const Graph g = io::read_matrix_market(ss);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_FALSE(g.is_undirected());
  EXPECT_EQ(g.out_neighbors(0)[0], (WEdge{1, 7}));
  EXPECT_EQ(g.out_neighbors(2)[0], (WEdge{0, 4}));
}

TEST(MatrixMarket, SymmetricBecomesUndirected) {
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate pattern symmetric\n"
      "3 3 2\n"
      "2 1\n"
      "3 2\n");
  const Graph g = io::read_matrix_market(ss);
  EXPECT_TRUE(g.is_undirected());
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.out_neighbors(0)[0].w, 1u);  // pattern weights default to 1
}

TEST(MatrixMarket, RealWeightsScaledLikeMoliere) {
  // The paper scales Moliere's float weights to integers; reader applies
  // `real_scale` and clamps to >= 1.
  std::stringstream ss(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 2 0.0123\n"
      "2 1 0.0000001\n");
  const Graph g = io::read_matrix_market(ss, 1e4);
  EXPECT_EQ(g.out_neighbors(0)[0].w, 123u);
  EXPECT_EQ(g.out_neighbors(1)[0].w, 1u);  // clamped
}

TEST(MatrixMarket, RejectsBadBanner) {
  std::stringstream ss("garbage\n1 1 0\n");
  EXPECT_THROW(io::read_matrix_market(ss), std::runtime_error);
}

TEST(BinaryIo, RoundTripsExactly) {
  const Graph g = gen::rmat(9, 2000, 0.6, 0.15, 0.15, WeightScheme::gap(), 3,
                            /*undirected=*/true);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  io::write_binary(g, ss);
  const Graph h = io::read_binary(ss);
  expect_same_graph(g, h);
}

TEST(BinaryIo, RejectsBadMagic) {
  std::stringstream ss("not a graph", std::ios::in | std::ios::binary);
  EXPECT_THROW(io::read_binary(ss), std::runtime_error);
}

TEST(GapWsgIo, RoundTripsUndirected) {
  const Graph g = gen::grid(8, 9, WeightScheme::gap(), 6);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  io::write_gap_wsg(g, ss);
  const Graph h = io::read_gap_wsg(ss);
  expect_same_graph(g, h);
}

TEST(GapWsgIo, RoundTripsDirectedSkippingInverse) {
  const Graph g = gen::rmat(8, 1000, 0.6, 0.15, 0.15, WeightScheme::gap(), 7,
                            /*undirected=*/false);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  io::write_gap_wsg(g, ss);
  const Graph h = io::read_gap_wsg(ss);
  expect_same_graph(g, h);  // inverse arrays are written but skipped on read
}

TEST(GapWsgIo, HeaderLayoutMatchesGap) {
  // First 17 bytes: bool directed, int64 m, int64 n.
  const Graph g = Graph::from_edges(3, {{0, 1, 5}, {1, 2, 7}}, false);
  std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
  io::write_gap_wsg(g, ss);
  const std::string bytes = ss.str();
  ASSERT_GE(bytes.size(), 17u);
  EXPECT_EQ(bytes[0], 1);  // directed
  std::int64_t m = 0;
  std::int64_t n = 0;
  std::memcpy(&m, bytes.data() + 1, sizeof(m));
  std::memcpy(&n, bytes.data() + 9, sizeof(n));
  EXPECT_EQ(m, 2);
  EXPECT_EQ(n, 3);
}

TEST(GapWsgIo, RejectsGarbage) {
  std::stringstream ss("xx", std::ios::in | std::ios::binary);
  EXPECT_THROW(io::read_gap_wsg(ss), std::runtime_error);
}

TEST(BinaryIo, FileRoundTrip) {
  const Graph g = gen::grid(5, 5, WeightScheme::gap(), 4);
  const std::string path = testing::TempDir() + "/wasp_io_test.bin";
  io::write_binary_file(g, path);
  const Graph h = io::read_binary_file(path);
  expect_same_graph(g, h);
}

}  // namespace
}  // namespace wasp
