// Solver-reuse correctness: the query-throughput fast path (pooled
// epoch-versioned distances, prefetched relaxation) must be invisible in
// results. A reused Solver answering the same query twice, or a different
// query, must produce distances bit-identical to a fresh per-call solve —
// for every algorithm, across an epoch wrap, and under fault injection.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/solver.hpp"
#include "sssp/sssp.hpp"
#include "sssp/validate.hpp"
#include "support/chaos.hpp"
#include "support/errors.hpp"

namespace wasp {
namespace {

Graph make_test_graph() {
  return gen::erdos_renyi(1500, 6.0, WeightScheme::gap(), 17);
}

SsspOptions options_for(Algorithm algo) {
  SsspOptions options;
  options.algo = algo;
  options.threads = 3;
  options.delta = 32;
  return options;
}

class SolverReuse : public testing::TestWithParam<Algorithm> {};

TEST_P(SolverReuse, RepeatAndCrossSourceQueriesAreBitIdentical) {
  const Graph g = make_test_graph();
  const VertexId s1 = pick_source_in_largest_component(g, 11);
  const VertexId s2 = pick_source_in_largest_component(g, 12345);
  ASSERT_NE(s1, s2);

  const SsspOptions options = options_for(GetParam());
  // Fresh per-call solves: each pays the full distance initialization.
  const SsspResult fresh1 = run_sssp(g, s1, options);
  const SsspResult fresh2 = run_sssp(g, s2, options);

  Solver solver(options);
  const SsspResult r1 = solver.solve(g, s1);
  const SsspResult r2 = solver.solve(g, s1);  // repeat query: epoch bump only
  const SsspResult r3 = solver.solve(g, s2);  // different source, same pool

  EXPECT_EQ(r1.dist, fresh1.dist);
  EXPECT_EQ(r2.dist, fresh1.dist);
  EXPECT_EQ(r3.dist, fresh2.dist);

  // The pooled array is initialized once (the first acquire); repeat
  // queries re-use it with an O(1) epoch bump. Sequential Dijkstra bypasses
  // the pool entirely.
  const auto sweeps = [](const SsspResult& r) {
    return r.metrics.counter(obs::CounterId::kEpochSweeps);
  };
  if (GetParam() == Algorithm::kDijkstra) {
    EXPECT_EQ(sweeps(r1), 0u);
  } else {
    EXPECT_EQ(sweeps(r1), 1u);
  }
  EXPECT_EQ(sweeps(r2), 0u);
  EXPECT_EQ(sweeps(r3), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, SolverReuse,
    testing::Values(Algorithm::kDijkstra, Algorithm::kBellmanFord,
                    Algorithm::kDeltaStepping, Algorithm::kJulienne,
                    Algorithm::kDeltaStar, Algorithm::kRhoStepping,
                    Algorithm::kRadiusStepping, Algorithm::kMqDijkstra,
                    Algorithm::kSmqDijkstra, Algorithm::kObim,
                    Algorithm::kWasp),
    [](const testing::TestParamInfo<Algorithm>& param_info) {
      std::string name = algorithm_name(param_info.param);
      for (char& c : name)
        if (c == '-') c = '_';
      return name;
    });

TEST(SolverReuseEpochWrap, ForcedWrapSweepsAndStaysCorrect) {
  const Graph g = make_test_graph();
  const VertexId s = pick_source_in_largest_component(g, 11);
  const std::vector<Distance> reference = dijkstra(g, s).dist;

  Solver solver(options_for(Algorithm::kWasp));
  const SsspResult r1 = solver.solve(g, s);
  EXPECT_EQ(r1.metrics.counter(obs::CounterId::kEpochSweeps), 1u);
  EXPECT_EQ(r1.dist, reference);

  // Jump the tag to its maximum: the next acquire wraps to 0 and must run
  // the full O(V) re-stamp instead of the O(1) bump — entries stamped a full
  // tag-space ago would otherwise read as live.
  AtomicDistances* dist = solver.distances().current();
  ASSERT_NE(dist, nullptr);
  dist->debug_set_epoch(0xFFFFFFFFu);
  const SsspResult r2 = solver.solve(g, s);
  EXPECT_EQ(r2.metrics.counter(obs::CounterId::kEpochSweeps), 1u);
  EXPECT_EQ(dist->epoch(), 0u);
  EXPECT_EQ(r2.dist, reference);

  // And the bump fast path resumes afterwards.
  const SsspResult r3 = solver.solve(g, s);
  EXPECT_EQ(r3.metrics.counter(obs::CounterId::kEpochSweeps), 0u);
  EXPECT_EQ(r3.dist, reference);
}

TEST(SolverReuseChaos, SeededInjectionWithFastPathStaysExact) {
  const Graph g = make_test_graph();
  const VertexId s = pick_source_in_largest_component(g, 11);
  const std::vector<Distance> reference = dijkstra(g, s).dist;

  SsspOptions options = options_for(Algorithm::kWasp);
  options.delta = 1;
  options.prefetch_lookahead = 8;
  chaos::Engine engine(0xC0FFEEu, chaos::Policy::uniform(1 << 12),
                       options.threads);
  options.wasp.chaos = &engine;

  Solver solver(options);
  for (int i = 0; i < 3; ++i) {
    const SsspResult r = solver.solve(g, s);
    std::string message;
    ASSERT_TRUE(distances_equal(reference, r.dist, &message))
        << "iteration " << i << ": " << message;
  }
}

TEST(SolverReusePrefetch, LookaheadIsValidatedAndZeroDisables) {
  const Graph g = make_test_graph();
  const VertexId s = pick_source_in_largest_component(g, 11);
  const std::vector<Distance> reference = dijkstra(g, s).dist;

  SsspOptions options = options_for(Algorithm::kMqDijkstra);
  options.prefetch_lookahead = 257;
  EXPECT_THROW(Solver bad(std::move(options)), InvalidOptionsError);

  // Lookahead is purely a performance knob: off and on give identical
  // distances, and the prefetch_issued counter reports which ran.
  SsspOptions off = options_for(Algorithm::kMqDijkstra);
  off.prefetch_lookahead = 0;
  Solver solver_off(off);
  const SsspResult r_off = solver_off.solve(g, s);
  EXPECT_EQ(r_off.dist, reference);
  EXPECT_EQ(r_off.metrics.counter(obs::CounterId::kPrefetchIssued), 0u);

  SsspOptions on = options_for(Algorithm::kMqDijkstra);
  on.prefetch_lookahead = 2;
  Solver solver_on(on);
  const SsspResult r_on = solver_on.solve(g, s);
  EXPECT_EQ(r_on.dist, reference);
  EXPECT_GT(r_on.metrics.counter(obs::CounterId::kPrefetchIssued), 0u);
}

}  // namespace
}  // namespace wasp
