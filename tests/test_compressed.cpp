// Tests for the byte-compressed CSR: exact round-trips on every generator
// family, footprint reduction, iteration order, and SSSP directly over the
// compressed form.
#include <gtest/gtest.h>

#include "graph/algorithms.hpp"
#include "graph/compressed.hpp"
#include "graph/generators.hpp"
#include "sssp/dijkstra.hpp"

namespace wasp {
namespace {

void expect_roundtrip(const Graph& g) {
  const CompressedGraph cg = CompressedGraph::compress(g);
  EXPECT_EQ(cg.num_vertices(), g.num_vertices());
  EXPECT_EQ(cg.num_edges(), g.num_edges());
  EXPECT_EQ(cg.is_undirected(), g.is_undirected());
  const Graph back = cg.decompress();
  EXPECT_EQ(back.offsets(), g.offsets());
  EXPECT_EQ(back.adjacency(), g.adjacency());
}

TEST(CompressedGraph, RoundTripsAcrossFamilies) {
  expect_roundtrip(gen::grid(20, 20, WeightScheme::gap(), 1));
  expect_roundtrip(gen::rmat(10, 8192, 0.57, 0.19, 0.19, WeightScheme::gap(), 2,
                             /*undirected=*/false));
  expect_roundtrip(gen::rmat(10, 8192, 0.57, 0.19, 0.19, WeightScheme::gap(), 3,
                             /*undirected=*/true));
  expect_roundtrip(gen::star_hub(2000, 0.93, 0.01, WeightScheme::gap(), 4));
  expect_roundtrip(gen::chain_forest(3, 100, WeightScheme::gap(), 5));
  expect_roundtrip(Graph::from_edges(1, {}, false));  // edgeless
}

TEST(CompressedGraph, IterationMatchesUncompressed) {
  const Graph g = gen::erdos_renyi(500, 8.0, WeightScheme::gap(), 6);
  const CompressedGraph cg = CompressedGraph::compress(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(cg.out_degree(v), g.out_degree(v));
    const auto expected = g.out_neighbors(v);
    std::size_t i = 0;
    cg.for_each_out(v, [&](VertexId dst, Weight w) {
      ASSERT_LT(i, expected.size());
      EXPECT_EQ(dst, expected[i].dst);
      EXPECT_EQ(w, expected[i].w);
      ++i;
    });
    EXPECT_EQ(i, expected.size());
  }
}

TEST(CompressedGraph, CompressesTypicalGraphs) {
  // Grid: neighbours are +-1 and +-cols away — tiny deltas, big wins.
  const Graph grid = gen::grid(100, 100, WeightScheme::uniform(1, 100), 7);
  const CompressedGraph cgrid = CompressedGraph::compress(grid);
  EXPECT_LT(cgrid.adjacency_bytes(),
            grid.num_edges() * sizeof(WEdge) * 6 / 10);

  // Skewed RMAT with GAP weights still saves space.
  const Graph rmat =
      gen::rmat(12, 1 << 15, 0.57, 0.19, 0.19, WeightScheme::gap(), 8, true);
  const CompressedGraph crmat = CompressedGraph::compress(rmat);
  EXPECT_LT(crmat.byte_size(), crmat.uncompressed_bytes());
}

TEST(CompressedGraph, HandlesLargeWeightsAndBackwardEdges) {
  // First-destination deltas can be negative (dst < src) and weights can
  // need multi-byte varints.
  const Graph g = Graph::from_edges(
      10, {{9, 0, 1'000'000}, {9, 8, 3}, {0, 9, 42}}, false);
  expect_roundtrip(g);
}

TEST(CompressedGraph, DijkstraOverCompressedMatchesReference) {
  const Graph g = gen::rmat(11, 1 << 14, 0.57, 0.19, 0.19, WeightScheme::gap(),
                            9, true);
  const VertexId src = pick_source_in_largest_component(g, 1);
  const CompressedGraph cg = CompressedGraph::compress(g);
  EXPECT_EQ(dijkstra_compressed(cg, src), dijkstra(g, src).dist);
}

}  // namespace
}  // namespace wasp
