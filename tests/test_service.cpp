// Service-level robustness: cooperative cancellation leaves every parallel
// algorithm's Solver reusable (next solve bit-identical to a fresh run),
// deadlines are enforced by both the in-run polls and the QueryService
// watchdog, admission control sheds/rejects/coalesces as specified, the
// stale cache degrades gracefully, and the retry/backoff path replays
// deterministically from its seed (override with WASP_CHAOS_SEED).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "service/service.hpp"
#include "sssp/solver.hpp"
#include "sssp/sssp.hpp"
#include "support/cancel.hpp"
#include "support/errors.hpp"

namespace wasp {
namespace {

using service::Outcome;
using service::QueryOptions;
using service::QueryResult;
using service::QueryService;
using service::ServiceConfig;

Graph make_test_graph() {
  return gen::erdos_renyi(20000, 8.0, WeightScheme::gap(), 29);
}

Graph make_small_graph() {
  return gen::erdos_renyi(3000, 6.0, WeightScheme::gap(), 31);
}

SsspOptions options_for(Algorithm algo) {
  SsspOptions options;
  options.algo = algo;
  options.threads = 3;
  options.delta = 32;
  return options;
}

std::uint64_t test_seed() {
  if (const char* pin = std::getenv("WASP_CHAOS_SEED"))
    return std::strtoull(pin, nullptr, 10);
  return 0x5EEDULL;
}

/// Requests cancellation from the first run callback (worker thread), so the
/// cancel lands mid-solve if the run is big enough to fire one.
class CancelOnFirstCallback final : public obs::RunObserver {
 public:
  explicit CancelOnFirstCallback(CancelToken& token) : token_(&token) {}
  void on_round(std::uint64_t, std::uint64_t) override { fire(); }
  void on_progress(int, std::uint64_t) override { fire(); }

 private:
  void fire() { token_->request_cancel(CancelReason::kUser); }
  CancelToken* token_;
};

/// Blocks the first run callback after arm() until release(); callbacks
/// while unarmed (or after release) pass straight through. Lets a test hold
/// a solve in flight deterministically.
class BlockingObserver final : public obs::RunObserver {
 public:
  void on_round(std::uint64_t, std::uint64_t) override { maybe_block(); }
  void on_progress(int, std::uint64_t) override { maybe_block(); }

  void arm() {
    std::lock_guard<std::mutex> lock(mu_);
    armed_ = true;
    released_ = false;
    blocked_ = false;
  }
  void wait_until_blocked() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return blocked_; });
  }
  [[nodiscard]] bool wait_until_blocked_for(std::chrono::seconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, timeout, [&] { return blocked_; });
  }
  void release() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      released_ = true;
      armed_ = false;
    }
    cv_.notify_all();
  }

 private:
  void maybe_block() {
    std::unique_lock<std::mutex> lock(mu_);
    if (!armed_ || blocked_) return;
    blocked_ = true;
    cv_.notify_all();
    cv_.wait(lock, [&] { return released_; });
  }

  std::mutex mu_;
  std::condition_variable cv_;
  bool armed_ = false;
  bool blocked_ = false;
  bool released_ = false;
};

// --- Solver-level cancellation, every parallel algorithm -------------------

class ServiceCancel : public testing::TestWithParam<Algorithm> {};

TEST_P(ServiceCancel, CancelMidSolveLeavesSolverReusableAndBitIdentical) {
  const Graph g = make_test_graph();
  const VertexId source = pick_source_in_largest_component(g, 7);
  const SsspOptions options = options_for(GetParam());
  const SsspResult fresh = run_sssp(g, source, options);

  Solver solver(options);
  CancelToken token;
  CancelOnFirstCallback canceller(token);
  solver.set_observer(&canceller);
  solver.options().cancel = &token;

  bool cancelled = false;
  try {
    const SsspResult r = solver.solve(g, source);
    // The run finished before any callback fired (tiny runs may): the
    // result must then be a normal, correct solve.
    EXPECT_EQ(r.dist, fresh.dist);
  } catch (const SolveCancelledError& e) {
    cancelled = true;
    EXPECT_EQ(e.reason(), CancelReason::kUser);
  }

  // Whether or not the cancel landed, the Solver must be reusable and the
  // next (uncancelled) solve bit-identical to a fresh per-call run.
  solver.set_observer(nullptr);
  solver.options().cancel = nullptr;
  const SsspResult again = solver.solve(g, source);
  EXPECT_EQ(again.dist, fresh.dist)
      << "post-cancel solve diverged (cancelled=" << cancelled << ")";
}

TEST_P(ServiceCancel, PreExpiredDeadlineThrowsBeforeRunning) {
  const Graph g = make_small_graph();
  const VertexId source = pick_source_in_largest_component(g, 7);
  Solver solver(options_for(GetParam()));
  CancelToken token;
  token.set_deadline(CancelToken::Clock::now() - std::chrono::seconds(1));
  solver.options().cancel = &token;
  try {
    (void)solver.solve(g, source);
    FAIL() << "expected SolveCancelledError";
  } catch (const SolveCancelledError& e) {
    EXPECT_EQ(e.reason(), CancelReason::kDeadline);
  }
  // Reusable afterwards.
  solver.options().cancel = nullptr;
  const SsspResult r = solver.solve(g, source);
  EXPECT_EQ(r.dist, run_sssp(g, source, options_for(GetParam())).dist);
}

INSTANTIATE_TEST_SUITE_P(
    ServiceAlgos, ServiceCancel,
    testing::Values(Algorithm::kBellmanFord, Algorithm::kDeltaStepping,
                    Algorithm::kJulienne, Algorithm::kDeltaStar,
                    Algorithm::kRhoStepping, Algorithm::kRadiusStepping,
                    Algorithm::kMqDijkstra, Algorithm::kSmqDijkstra,
                    Algorithm::kObim, Algorithm::kWasp),
    [](const testing::TestParamInfo<Algorithm>& param) {
      return algorithm_name(param.param);
    });

// --- Solver re-entrancy guard ----------------------------------------------

TEST(ServiceSolverBusy, ConcurrentSolveThrowsTyped) {
  const Graph g = make_test_graph();
  const VertexId source = pick_source_in_largest_component(g, 7);
  Solver solver(options_for(Algorithm::kBellmanFord));
  BlockingObserver blocker;
  solver.set_observer(&blocker);
  blocker.arm();

  std::thread runner([&] { (void)solver.solve(g, source); });
  blocker.wait_until_blocked();  // a solve is now provably in flight
  EXPECT_THROW((void)solver.solve(g, source), SolverBusyError);
  blocker.release();
  runner.join();

  // The guard released: the solver accepts the next solve.
  solver.set_observer(nullptr);
  EXPECT_NO_THROW((void)solver.solve(g, source));
}

// --- QueryService ----------------------------------------------------------

TEST(ServiceQuery, ServesQueriesBitIdenticalToFreshSolves) {
  const Graph g = make_small_graph();
  const VertexId s1 = pick_source_in_largest_component(g, 11);
  const VertexId s2 = pick_source_in_largest_component(g, 12345);
  const SsspOptions opts = options_for(Algorithm::kWasp);

  ServiceConfig config;
  config.solver = opts;
  config.num_solvers = 2;
  QueryService svc(config);
  const QueryResult r1 = svc.solve(g, s1);
  const QueryResult r2 = svc.solve(g, s2);
  ASSERT_EQ(r1.outcome, Outcome::kServed);
  ASSERT_EQ(r2.outcome, Outcome::kServed);
  EXPECT_TRUE(r1.ok());
  EXPECT_EQ(r1.dist, run_sssp(g, s1, opts).dist);
  EXPECT_EQ(r2.dist, run_sssp(g, s2, opts).dist);
  EXPECT_EQ(r1.attempts, 1);

  const service::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.totals.submitted, 2u);
  EXPECT_EQ(stats.totals.served, 2u);
  EXPECT_EQ(stats.tenants.at("default").served, 2u);
  const obs::MetricsSnapshot snap = svc.metrics();
  EXPECT_EQ(snap.counter(obs::CounterId::kQueriesServed), 2u);
}

TEST(ServiceQuery, CoalescesQueuedSameSourceSubmits) {
  const Graph g = make_small_graph();
  const VertexId a = pick_source_in_largest_component(g, 11);
  const VertexId b = pick_source_in_largest_component(g, 12345);
  ASSERT_NE(a, b);

  BlockingObserver blocker;
  ServiceConfig config;
  config.solver = options_for(Algorithm::kBellmanFord);
  config.solver.observer = &blocker;
  config.num_solvers = 1;
  QueryService svc(config);

  blocker.arm();
  auto running = svc.submit(g, a);  // occupies the only solver
  blocker.wait_until_blocked();
  auto f1 = svc.submit(g, b);
  auto f2 = svc.submit(g, b);  // same (graph, source): coalesces onto f1
  EXPECT_EQ(svc.stats().totals.coalesced, 1u);
  EXPECT_EQ(svc.stats().totals.submitted, 2u);  // riders are not re-counted
  blocker.release();

  EXPECT_EQ(running.get().outcome, Outcome::kServed);
  const QueryResult rb1 = f1.get();
  const QueryResult rb2 = f2.get();
  EXPECT_EQ(rb1.outcome, Outcome::kServed);
  EXPECT_EQ(rb1.query_id, rb2.query_id);  // literally the same resolution
  EXPECT_EQ(rb1.dist, rb2.dist);
}

TEST(ServiceQuery, OverloadShedsLowPriorityAndRejectsNonOutranking) {
  const Graph g = make_small_graph();
  const VertexId source = pick_source_in_largest_component(g, 11);

  BlockingObserver blocker;
  ServiceConfig config;
  config.solver = options_for(Algorithm::kBellmanFord);
  config.solver.observer = &blocker;
  config.num_solvers = 1;
  config.queue_capacity = 2;
  config.coalesce = false;  // each submit must occupy its own slot here
  QueryService svc(config);

  blocker.arm();
  auto running = svc.submit(g, source);
  blocker.wait_until_blocked();
  auto q1 = svc.submit(g, source);
  auto q2 = svc.submit(g, source);  // queue now at capacity
  // Same priority outranks nothing: typed rejection.
  EXPECT_THROW((void)svc.submit(g, source), ServiceOverloadedError);
  // Higher priority evicts the youngest lowest-priority entry (q2).
  QueryOptions gold;
  gold.priority = 1;
  gold.tenant = "gold";
  auto q3 = svc.submit(g, source, gold);
  EXPECT_EQ(q2.get().outcome, Outcome::kShed);
  blocker.release();

  EXPECT_EQ(running.get().outcome, Outcome::kServed);
  EXPECT_EQ(q1.get().outcome, Outcome::kServed);
  EXPECT_EQ(q3.get().outcome, Outcome::kServed);
  const service::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.totals.rejected, 1u);
  EXPECT_EQ(stats.totals.shed, 1u);
  EXPECT_EQ(stats.tenants.at("gold").served, 1u);
}

TEST(ServiceQuery, QueueExpiryDegradesToStaleWhenAllowed) {
  const Graph g = make_small_graph();
  const VertexId a = pick_source_in_largest_component(g, 11);

  BlockingObserver blocker;
  ServiceConfig config;
  config.solver = options_for(Algorithm::kBellmanFord);
  config.solver.observer = &blocker;
  config.num_solvers = 1;
  config.coalesce = false;
  QueryService svc(config);

  // Prime the stale cache with a served answer for `a`.
  const QueryResult primed = svc.solve(g, a);
  ASSERT_EQ(primed.outcome, Outcome::kServed);

  blocker.arm();
  auto running = svc.submit(g, a);
  blocker.wait_until_blocked();

  QueryOptions stale_ok;
  stale_ok.allow_stale = true;
  stale_ok.budget = std::chrono::milliseconds(2);
  auto degraded = svc.submit(g, a, stale_ok);
  QueryOptions strict;
  strict.budget = std::chrono::milliseconds(2);
  auto expired = svc.submit(g, a, strict);

  // The watchdog expires both in the queue (the only solver is held).
  const QueryResult rd = degraded.get();
  EXPECT_EQ(rd.outcome, Outcome::kServedStale);
  EXPECT_EQ(rd.dist, primed.dist);
  EXPECT_EQ(expired.get().outcome, Outcome::kDeadlineExpired);
  blocker.release();
  EXPECT_EQ(running.get().outcome, Outcome::kServed);
}

TEST(ServiceQuery, ShedDowngradedToStaleCountsOnceAsServedStale) {
  const Graph g = make_small_graph();
  const VertexId source = pick_source_in_largest_component(g, 11);

  BlockingObserver blocker;
  ServiceConfig config;
  config.solver = options_for(Algorithm::kBellmanFord);
  config.solver.observer = &blocker;
  config.num_solvers = 1;
  config.queue_capacity = 1;
  config.coalesce = false;
  QueryService svc(config);

  // Prime the stale cache, then hold the only solver mid-run.
  const QueryResult primed = svc.solve(g, source);
  ASSERT_EQ(primed.outcome, Outcome::kServed);
  blocker.arm();
  auto running = svc.submit(g, source);
  blocker.wait_until_blocked();

  QueryOptions stale_ok;
  stale_ok.allow_stale = true;
  auto victim = svc.submit(g, source, stale_ok);  // fills the queue
  QueryOptions gold;
  gold.priority = 1;
  auto evictor = svc.submit(g, source, gold);  // sheds the victim

  const QueryResult rv = victim.get();
  EXPECT_EQ(rv.outcome, Outcome::kServedStale);
  EXPECT_EQ(rv.dist, primed.dist);
  blocker.release();
  EXPECT_EQ(running.get().outcome, Outcome::kServed);
  EXPECT_EQ(evictor.get().outcome, Outcome::kServed);

  // One outcome, one counter: the shed-then-downgraded query is
  // served_stale everywhere — tenant table and metrics must agree.
  const service::ServiceStats stats = svc.stats();
  EXPECT_EQ(stats.totals.shed, 0u);
  EXPECT_EQ(stats.totals.served_stale, 1u);
  const obs::MetricsSnapshot snap = svc.metrics();
  EXPECT_EQ(snap.counter(obs::CounterId::kQueriesShed), 0u);
  EXPECT_EQ(snap.counter(obs::CounterId::kQueriesServedStale), 1u);
}

TEST(ServiceQuery, WatchdogCancelsOverdueRunThenQuarantinesAndRebuilds) {
  const Graph g = make_small_graph();
  const VertexId source = pick_source_in_largest_component(g, 11);
  const SsspOptions opts = options_for(Algorithm::kBellmanFord);
  const SsspResult fresh = run_sssp(g, source, opts);

  BlockingObserver blocker;
  ServiceConfig config;
  // Bellman-Ford: only participant 0 polls the deadline (round top), and it
  // is the thread the observer blocks — so the in-run self-cancel cannot
  // fire and the watchdog is provably the one that cancels.
  config.solver = opts;
  config.solver.observer = &blocker;
  config.num_solvers = 1;
  QueryService svc(config);

  // Warm the worker and its solver so the overdue query's pop-to-first-round
  // latency is small against its budget even under sanitizer slowdown; a
  // budget that expires while still queued would be resolved by the watchdog
  // without ever starting the run (and the observer would never block).
  ASSERT_EQ(svc.solve(g, source).outcome, Outcome::kServed);

  blocker.arm();
  QueryOptions opt;
  opt.budget = std::chrono::milliseconds(300);
  auto overdue = svc.submit(g, source, opt);
  ASSERT_TRUE(blocker.wait_until_blocked_for(std::chrono::seconds(60)))
      << "solve never reached its first round; the deadline expired while "
         "the query was still queued";
  // Wait for the watchdog to notice the blown deadline.
  for (int i = 0; i < 5000 && svc.stats().watchdog_cancels == 0; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  ASSERT_GE(svc.stats().watchdog_cancels, 1u);
  blocker.release();

  EXPECT_EQ(overdue.get().outcome, Outcome::kDeadlineExpired);
  // The cancelled Solver was quarantined; the next query runs on a rebuilt
  // one and must be bit-identical to a fresh solve.
  const QueryResult next = svc.solve(g, source);
  EXPECT_EQ(next.outcome, Outcome::kServed);
  EXPECT_EQ(next.dist, fresh.dist);
  EXPECT_EQ(svc.stats().solver_rebuilds, 1u);
}

TEST(ServiceQuery, RetryBackoffIsDeterministicUnderSeedReplay) {
  const Graph g = make_small_graph();
  const VertexId source = pick_source_in_largest_component(g, 11);
  const std::uint64_t seed = test_seed();

  const auto run_once = [&](std::uint64_t s) {
    ServiceConfig config;
    config.solver = options_for(Algorithm::kWasp);
    config.num_solvers = 1;
    config.seed = s;
    config.max_retries = 2;
    config.inject_failure = [](int attempt) {
      if (attempt < 2) throw std::runtime_error("injected transient fault");
    };
    QueryService svc(config);
    return svc.solve(g, source);
  };

  const QueryResult first = run_once(seed);
  ASSERT_EQ(first.outcome, Outcome::kServed) << first.error;
  EXPECT_EQ(first.attempts, 3);
  ASSERT_EQ(first.backoff_ns.size(), 2u);
  // Exponential base with seeded jitter: attempt k sleeps in
  // [base << k, (base << k) + base).
  const std::uint64_t base = static_cast<std::uint64_t>(
      ServiceConfig{}.retry_backoff.count());
  EXPECT_GE(first.backoff_ns[0], base);
  EXPECT_LT(first.backoff_ns[0], base * 2);
  EXPECT_GE(first.backoff_ns[1], base * 2);
  EXPECT_LT(first.backoff_ns[1], base * 3);

  // Same seed => byte-identical backoff schedule (deterministic replay).
  const QueryResult replay = run_once(seed);
  ASSERT_EQ(replay.outcome, Outcome::kServed);
  EXPECT_EQ(replay.backoff_ns, first.backoff_ns);
}

TEST(ServiceQuery, RetryExhaustionAndPermanentErrorsFailTyped) {
  const Graph g = make_small_graph();
  const VertexId source = pick_source_in_largest_component(g, 11);

  ServiceConfig config;
  config.solver = options_for(Algorithm::kWasp);
  config.num_solvers = 1;
  config.max_retries = 1;
  config.inject_failure = [](int) {
    throw std::runtime_error("always failing");
  };
  QueryService svc(config);
  const QueryResult r = svc.solve(g, source);
  EXPECT_EQ(r.outcome, Outcome::kFailed);
  EXPECT_EQ(r.attempts, 2);  // first + one retry, then exhausted
  EXPECT_FALSE(r.error.empty());

  // Permanent input errors are caught upfront: an out-of-range source
  // throws at submit() instead of burning a worker on a doomed query.
  ServiceConfig plain;
  plain.solver = options_for(Algorithm::kWasp);
  plain.num_solvers = 1;
  QueryService svc2(plain);
  EXPECT_THROW((void)svc2.solve(g, g.num_vertices() + 7),
               InvalidSourceError);
}

TEST(ServiceQuery, ShutdownResolvesQueuedAsCancelledAndRejectsSubmits) {
  const Graph g = make_small_graph();
  const VertexId source = pick_source_in_largest_component(g, 11);

  BlockingObserver blocker;
  ServiceConfig config;
  config.solver = options_for(Algorithm::kBellmanFord);
  config.solver.observer = &blocker;
  config.num_solvers = 1;
  config.coalesce = false;
  QueryService svc(config);

  blocker.arm();
  auto running = svc.submit(g, source);
  blocker.wait_until_blocked();
  auto queued = svc.submit(g, source);

  std::thread closer([&] { svc.shutdown(); });
  // Queued entries resolve immediately (shutdown drains the queue before
  // joining the fleet); the running query is token-cancelled and resolves
  // once the observer lets it continue.
  EXPECT_EQ(queued.get().outcome, Outcome::kCancelled);
  blocker.release();
  const QueryResult ran = running.get();
  EXPECT_TRUE(ran.outcome == Outcome::kCancelled ||
              ran.outcome == Outcome::kServed)
      << to_string(ran.outcome);
  closer.join();

  EXPECT_THROW((void)svc.submit(g, source), std::logic_error);
  svc.shutdown();  // idempotent
}

TEST(ServiceQuery, ValidatesConfig) {
  ServiceConfig bad;
  bad.num_solvers = 0;
  EXPECT_THROW(QueryService{bad}, InvalidOptionsError);
  ServiceConfig bad2;
  bad2.queue_capacity = 0;
  EXPECT_THROW(QueryService{bad2}, InvalidOptionsError);
}

}  // namespace
}  // namespace wasp
