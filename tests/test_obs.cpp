// Tests for the run-lifecycle observability layer (src/obs/): observer
// callbacks fire with the documented counts, the trace recorder round-trips
// through the Chrome trace_event schema, the MetricsRegistry sharding
// discipline holds under the verify preset's happens-before model, and the
// SsspStats compatibility view matches the registry totals bit-for-bit.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/trace.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/solver.hpp"
#include "sssp/sssp.hpp"
#include "sssp/validate.hpp"
#include "support/errors.hpp"
#include "verify/checked_atomic.hpp"
#include "verify/context.hpp"

namespace wasp {
namespace {

using obs::CounterId;
using obs::EventKind;
using obs::EventPhase;
using obs::GaugeId;
using obs::HistId;

/// Counts every hook invocation; thread-safe as the interface requires.
class CountingObserver final : public obs::RunObserver {
 public:
  void on_round(std::uint64_t /*round*/, std::uint64_t frontier) override {
    rounds.fetch_add(1, std::memory_order_relaxed);
    frontier_sum.fetch_add(frontier, std::memory_order_relaxed);
  }
  void on_steal(int /*thief*/, int /*victim*/, bool success) override {
    steals.fetch_add(1, std::memory_order_relaxed);
    if (success) steal_hits.fetch_add(1, std::memory_order_relaxed);
  }
  void on_termination(int /*tid*/) override {
    terminations.fetch_add(1, std::memory_order_relaxed);
  }
  void on_progress(int /*tid*/, std::uint64_t /*vertices*/) override {
    progress.fetch_add(1, std::memory_order_relaxed);
  }

  std::atomic<std::uint64_t> rounds{0};
  std::atomic<std::uint64_t> frontier_sum{0};
  std::atomic<std::uint64_t> steals{0};
  std::atomic<std::uint64_t> steal_hits{0};
  std::atomic<std::uint64_t> terminations{0};
  std::atomic<std::uint64_t> progress{0};
};

Graph tiny_grid() { return gen::grid(30, 30, WeightScheme::gap(), 22); }

// --- observer callback counts ---------------------------------------------

TEST(RunObserver, WaspFiresTerminationOncePerWorkerAndStealPerAttempt) {
  const Graph g = tiny_grid();
  const VertexId src = pick_source_in_largest_component(g, 7);

  CountingObserver observer;
  SsspOptions options;
  options.algo = Algorithm::kWasp;
  options.threads = 4;
  options.delta = 8;
  options.observer = &observer;
  const SsspResult r = run_sssp(g, src, options);

  // Each worker's termination scan confirms quiescence exactly once.
  EXPECT_EQ(observer.terminations.load(), 4u);
  // on_steal fires per steal() attempt: the call count matches the
  // steal_attempts counter (the invariant wasp.cpp documents).
  EXPECT_EQ(observer.steals.load(), r.metrics.counter(CounterId::kStealAttempts));
  EXPECT_EQ(observer.steal_hits.load(), r.metrics.counter(CounterId::kSteals));
  // Wasp is asynchronous: no rounds.
  EXPECT_EQ(observer.rounds.load(), 0u);
  EXPECT_EQ(r.stats.rounds, 0u);

  // The run still computed correct distances with hooks installed.
  const auto expected = dijkstra(g, src).dist;
  std::string message;
  EXPECT_TRUE(distances_equal(expected, r.dist, &message)) << message;
}

TEST(RunObserver, DeltaSteppingFiresOnRoundOncePerRound) {
  const Graph g = tiny_grid();
  const VertexId src = pick_source_in_largest_component(g, 7);

  CountingObserver observer;
  SsspOptions options;
  options.algo = Algorithm::kDeltaStepping;
  options.threads = 3;
  options.delta = 8;
  options.observer = &observer;
  const SsspResult r = run_sssp(g, src, options);

  // Participant 0 fires on_round once per synchronous round (the invariant
  // delta_stepping.cpp documents), and barrier algorithms never steal.
  EXPECT_GT(r.stats.rounds, 0u);
  EXPECT_EQ(observer.rounds.load(), r.stats.rounds);
  EXPECT_EQ(observer.steals.load(), 0u);
  // Frontier sizes flow into the kRoundFrontier histogram: one observation
  // per round.
  std::uint64_t hist_total = 0;
  for (std::size_t b = 0; b < obs::kHistBuckets; ++b)
    hist_total += r.metrics.hist_count(HistId::kRoundFrontier, b);
  EXPECT_EQ(hist_total, r.stats.rounds);
}

TEST(RunObserver, AsyncQueueAlgorithmsTerminateOncePerWorker) {
  const Graph g = tiny_grid();
  const VertexId src = pick_source_in_largest_component(g, 7);
  for (const Algorithm algo :
       {Algorithm::kMqDijkstra, Algorithm::kSmqDijkstra, Algorithm::kObim}) {
    CountingObserver observer;
    SsspOptions options;
    options.algo = algo;
    options.threads = 3;
    options.delta = 8;
    options.observer = &observer;
    run_sssp(g, src, options);
    EXPECT_EQ(observer.terminations.load(), 3u) << algorithm_name(algo);
  }
}

// --- trace recorder ---------------------------------------------------------

/// Minimal structural check of Chrome trace_event JSON: object with a
/// traceEvents array, balanced braces/brackets, no trailing comma.
void expect_chrome_trace_shape(const std::string& json) {
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{') << json.substr(0, 80);
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos)
      << json.substr(0, 80);
  long braces = 0, brackets = 0;
  for (const char c : json) {
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_EQ(json.find(",]"), std::string::npos);
}

TEST(TraceRecorder, ManualEventsRoundTripThroughChromeSchema) {
  obs::TraceRecorder trace(2, 64);
  trace.begin(0, EventKind::kStealSweep, 1);
  trace.instant(0, EventKind::kStealAttempt, 1);
  trace.end(0, EventKind::kStealSweep, 0);
  trace.begin(1, EventKind::kTerminationScan);
  trace.end(1, EventKind::kTerminationScan, 1);

  std::ostringstream os;
  trace.write_chrome_trace(os);
  const std::string json = os.str();
  expect_chrome_trace_shape(json);

  if (obs::TraceRecorder::kEnabled) {
    const auto t0 = trace.events(0);
    ASSERT_EQ(t0.size(), 3u);
    EXPECT_EQ(t0[0].phase, EventPhase::kBegin);
    EXPECT_EQ(t0[2].phase, EventPhase::kEnd);
    // Timestamps are monotonic within a ring.
    EXPECT_LE(t0[0].ts_ns, t0[1].ts_ns);
    EXPECT_LE(t0[1].ts_ns, t0[2].ts_ns);
    EXPECT_EQ(trace.dropped(), 0u);
    EXPECT_NE(json.find("\"steal_sweep\""), std::string::npos);
    EXPECT_NE(json.find("\"termination_scan\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  } else {
    EXPECT_EQ(json, "{\"traceEvents\":[]}\n");
    EXPECT_TRUE(trace.events(0).empty());
  }
}

TEST(TraceRecorder, RingOverflowDropsOldestAndStillExportsCleanly) {
  if (!obs::TraceRecorder::kEnabled) GTEST_SKIP() << "WASP_OBS=OFF stub";
  obs::TraceRecorder trace(1, 8);
  for (int i = 0; i < 40; ++i)
    trace.instant(0, EventKind::kChunkAlloc, static_cast<std::uint64_t>(i));
  EXPECT_EQ(trace.events(0).size(), 8u);
  EXPECT_EQ(trace.dropped(), 32u);
  // The retained window is the newest events, oldest first.
  const auto evs = trace.events(0);
  EXPECT_EQ(evs.front().arg, 32u);
  EXPECT_EQ(evs.back().arg, 39u);

  std::ostringstream os;
  trace.write_chrome_trace(os);
  expect_chrome_trace_shape(os.str());

  trace.clear();
  EXPECT_TRUE(trace.events(0).empty());
  EXPECT_EQ(trace.dropped(), 0u);
}

TEST(TraceRecorder, SolverRecordsWaspLifecycleEvents) {
  const Graph g = tiny_grid();
  const VertexId src = pick_source_in_largest_component(g, 7);

  SsspOptions options;
  options.algo = Algorithm::kWasp;
  options.threads = 4;
  options.delta = 8;
  Solver solver(options);
  obs::TraceRecorder& trace = solver.enable_trace();
  solver.solve(g, src);

  std::ostringstream os;
  trace.write_chrome_trace(os);
  expect_chrome_trace_shape(os.str());

  if (obs::TraceRecorder::kEnabled) {
    // Every worker records at least its termination scan.
    for (int t = 0; t < 4; ++t)
      EXPECT_FALSE(trace.events(t).empty()) << "tid " << t;
    // Spans nest: per thread, depth never goes negative and ends at zero
    // after export re-balancing isn't needed for raw well-formed runs.
    for (int t = 0; t < 4; ++t) {
      long depth = 0;
      for (const auto& e : trace.events(t)) {
        if (e.phase == EventPhase::kBegin) ++depth;
        if (e.phase == EventPhase::kEnd) --depth;
      }
      EXPECT_GE(depth, 0) << "tid " << t;
    }
  }
}

// --- metrics registry --------------------------------------------------------

TEST(MetricsRegistry, PerThreadCountersSumToTotals) {
  const Graph g = tiny_grid();
  const VertexId src = pick_source_in_largest_component(g, 7);

  SsspOptions options;
  options.algo = Algorithm::kWasp;
  options.threads = 4;
  options.delta = 8;
  options.seed = 0x5EED;
  const SsspResult r = run_sssp(g, src, options);

  ASSERT_EQ(r.metrics.threads, 4);
  ASSERT_EQ(r.metrics.per_thread.size(), 4u);
  for (std::size_t c = 0; c < obs::kNumCounters; ++c) {
    std::uint64_t sum = 0;
    for (const auto& shard : r.metrics.per_thread) sum += shard[c];
    EXPECT_EQ(sum, r.metrics.totals[c])
        << obs::counter_name(static_cast<CounterId>(c));
  }
}

TEST(MetricsRegistry, StatsCompatibilityViewMatchesSnapshotBitForBit) {
  const Graph g = tiny_grid();
  const VertexId src = pick_source_in_largest_component(g, 7);

  for (const Algorithm algo : {Algorithm::kWasp, Algorithm::kDeltaStepping,
                               Algorithm::kMqDijkstra}) {
    SsspOptions options;
    options.algo = algo;
    options.threads = 3;
    options.delta = 8;
    options.seed = 0x5EED;
    const SsspResult r = run_sssp(g, src, options);

    const SsspStats recomputed = stats_from_snapshot(r.metrics);
    EXPECT_EQ(r.stats.seconds, recomputed.seconds);
    EXPECT_EQ(r.stats.relaxations, r.metrics.counter(CounterId::kRelaxations));
    EXPECT_EQ(r.stats.updates, r.metrics.counter(CounterId::kUpdates));
    EXPECT_EQ(r.stats.steals, r.metrics.counter(CounterId::kSteals));
    EXPECT_EQ(r.stats.steal_attempts,
              r.metrics.counter(CounterId::kStealAttempts));
    EXPECT_EQ(r.stats.stale_skips, r.metrics.counter(CounterId::kStaleSkips));
    EXPECT_EQ(r.stats.rounds, r.metrics.counter(CounterId::kRounds));
    EXPECT_EQ(r.stats.barrier_ns, r.metrics.counter(CounterId::kBarrierNs));
    EXPECT_EQ(r.stats.queue_op_ns, r.metrics.counter(CounterId::kQueueOpNs));
    EXPECT_EQ(r.stats.steal_ns, r.metrics.counter(CounterId::kStealNs));
    EXPECT_EQ(r.stats.idle_ns, r.metrics.counter(CounterId::kIdleNs));
    // A successful relaxation is a subset of attempts; the source settles.
    EXPECT_LE(r.stats.updates, r.stats.relaxations);
    EXPECT_GT(r.stats.relaxations, 0u) << algorithm_name(algo);
  }
}

TEST(MetricsRegistry, SolverReusesRegistryAcrossSolvesWithoutAccumulation) {
  const Graph g = tiny_grid();
  const VertexId src = pick_source_in_largest_component(g, 7);

  SsspOptions options;
  options.algo = Algorithm::kDeltaStepping;
  options.threads = 2;
  options.delta = 8;
  options.seed = 42;
  Solver solver(options);
  const SsspResult first = solver.solve(g, src);
  const SsspResult second = solver.solve(g, src);
  // Each solve resets the registry, so deterministic counters match exactly
  // instead of doubling.
  EXPECT_EQ(first.stats.rounds, second.stats.rounds);
  EXPECT_EQ(first.stats.relaxations, second.stats.relaxations);
  EXPECT_EQ(solver.last_metrics().counter(CounterId::kRounds),
            second.stats.rounds);
}

TEST(MetricsRegistry, SnapshotExportsJsonAndCsv) {
  obs::MetricsRegistry registry(2);
  registry.shard(0).inc(CounterId::kRelaxations, 10);
  registry.shard(1).inc(CounterId::kRelaxations, 5);
  registry.shard(0).set_gauge(GaugeId::kMaxFrontier, 99);
  registry.shard(1).observe(HistId::kRoundFrontier, 7);
  registry.set_elapsed_seconds(0.5);
  const obs::MetricsSnapshot snap = registry.snapshot();

  EXPECT_EQ(snap.counter(CounterId::kRelaxations), 15u);
  EXPECT_EQ(snap.gauge(GaugeId::kMaxFrontier), 99u);
  EXPECT_EQ(snap.hist_count(HistId::kRoundFrontier, obs::hist_bucket(7)), 1u);

  std::ostringstream json;
  snap.write_json(json);
  EXPECT_NE(json.str().find("\"relaxations\""), std::string::npos);
  EXPECT_NE(json.str().find("15"), std::string::npos);

  std::ostringstream csv;
  snap.write_csv(csv);
  EXPECT_NE(csv.str().find("relaxations"), std::string::npos);
  EXPECT_NE(csv.str().find("total"), std::string::npos);
}

TEST(MetricsRegistry, HistogramBucketingIsLog2) {
  EXPECT_EQ(obs::hist_bucket(0), 0u);
  EXPECT_EQ(obs::hist_bucket(1), 1u);
  EXPECT_EQ(obs::hist_bucket(2), 2u);
  EXPECT_EQ(obs::hist_bucket(3), 2u);
  EXPECT_EQ(obs::hist_bucket(4), 3u);
  EXPECT_EQ(obs::hist_bucket(1024), 11u);
  EXPECT_EQ(obs::hist_bucket(~std::uint64_t{0}), obs::kHistBuckets - 1);
  EXPECT_EQ(obs::hist_bucket_floor(0), 0u);
  EXPECT_EQ(obs::hist_bucket_floor(1), 1u);
  EXPECT_EQ(obs::hist_bucket_floor(11), 1024u);
}

// --- verify-model race checking over the sharding discipline -----------------

#if defined(WASP_VERIFY_ENABLED) && WASP_VERIFY_ENABLED

verify::Session::Options verify_options(int threads) {
  verify::Session::Options o;
  o.threads = threads;
  o.seed = 7;
  return o;
}

TEST(MetricsRegistryVerify, DisciplinedShardingReportsNoRaces) {
  verify::Session session(verify_options(3));
  obs::MetricsRegistry registry(2);
  verify::atomic<int> done{0};

  // Workers 0/1 write only their own shard, then publish with a release
  // fetch_add; thread 2 acquires both publications before reading the
  // shards — the happens-before edges the real dispatcher gets from the
  // team join.
  std::vector<std::thread> pool;
  for (int t = 0; t < 2; ++t) {
    pool.emplace_back([&, t] {
      verify::ScopedBind bind(&session, t);
      for (int i = 0; i < 100; ++i)
        registry.shard(t).inc(CounterId::kRelaxations);
      registry.shard(t).observe(HistId::kIdleScanNs, 42);
      done.fetch_add(1, std::memory_order_release);
    });
  }
  pool.emplace_back([&] {
    verify::ScopedBind bind(&session, 2);
    while (done.load(std::memory_order_acquire) != 2) std::this_thread::yield();
    std::uint64_t sum = 0;
    for (int t = 0; t < 2; ++t)
      sum += registry.shard(t).counter(CounterId::kRelaxations);
    EXPECT_EQ(sum, 200u);
  });
  for (auto& th : pool) th.join();

  EXPECT_TRUE(session.ok()) << session.report_text();
}

TEST(MetricsRegistryVerify, CrossShardWriteWithoutOrderingIsReported) {
  verify::Session session(verify_options(2));
  obs::MetricsRegistry registry(1);

  // Both threads hammer the SAME shard with no synchronization: the plain
  // counter slots conflict and the checker must flag it.
  std::vector<std::thread> pool;
  for (int t = 0; t < 2; ++t) {
    pool.emplace_back([&, t] {
      verify::ScopedBind bind(&session, t);
      for (int i = 0; i < 50; ++i) registry.shard(0).inc(CounterId::kUpdates);
    });
  }
  for (auto& th : pool) th.join();

  EXPECT_FALSE(session.ok());
  EXPECT_NE(session.report_text().find("metrics"), std::string::npos);
}

TEST(MetricsRegistryVerify, FullWaspRunUnderModelReportsNoRaces) {
  // End-to-end: the dispatcher's RunContext threads the registry to real
  // workers; a session bound inside them must stay clean.
  const Graph g = gen::grid(12, 12, WeightScheme::gap(), 5);
  const VertexId src = pick_source_in_largest_component(g, 3);

  verify::Session session(verify_options(2));
  SsspOptions options;
  options.algo = Algorithm::kWasp;
  options.threads = 2;
  options.delta = 8;
  // The sssp drivers bind chaos engines per worker, not verify sessions, so
  // model coverage here comes from the checked atomics inside the concurrent
  // containers plus the unbound-thread passthrough; the run must not trip
  // the session installed around it.
  const SsspResult r = run_sssp(g, src, options);
  EXPECT_FALSE(r.dist.empty());
  EXPECT_TRUE(session.ok()) << session.report_text();
}

#endif  // WASP_VERIFY_ENABLED

// --- options validation -------------------------------------------------------

TEST(SsspOptionsValidate, DefaultsAreValid) {
  SsspOptions options;
  EXPECT_NO_THROW(options.validate());
}

TEST(SsspOptionsValidate, RejectsEveryOutOfRangeKnob) {
  const auto expect_invalid = [](auto mutate, const char* label) {
    SsspOptions options;
    mutate(options);
    EXPECT_THROW(options.validate(), InvalidOptionsError) << label;
  };
  expect_invalid([](SsspOptions& o) { o.threads = 0; }, "threads=0");
  expect_invalid([](SsspOptions& o) { o.threads = -3; }, "threads=-3");
  expect_invalid([](SsspOptions& o) { o.delta = 0; }, "delta=0");
  expect_invalid([](SsspOptions& o) { o.wasp.theta = 0; }, "theta=0");
  expect_invalid([](SsspOptions& o) { o.wasp.steal_retries = -1; },
                 "steal_retries=-1");
  expect_invalid([](SsspOptions& o) { o.wasp.chunk_capacity = 77; },
                 "chunk_capacity=77");
  expect_invalid([](SsspOptions& o) { o.wasp.chunk_capacity = 0; },
                 "chunk_capacity=0");
  expect_invalid([](SsspOptions& o) { o.stepping.rho = 0; }, "rho=0");
  expect_invalid([](SsspOptions& o) { o.stepping.radius_k = 0; }, "radius_k=0");
  expect_invalid([](SsspOptions& o) { o.mq.c = 0; }, "mq.c=0");
  expect_invalid([](SsspOptions& o) { o.mq.stickiness = 0; }, "stickiness=0");
  expect_invalid([](SsspOptions& o) { o.mq.buffer = 0; }, "buffer=0");
  expect_invalid([](SsspOptions& o) { o.smq.steal_batch = -1; },
                 "steal_batch=-1");
  expect_invalid([](SsspOptions& o) { o.obim.chunk_size = 0; }, "chunk_size=0");
}

TEST(SsspOptionsValidate, FrontDoorRejectsBeforeSpawningWorkers) {
  const Graph g = tiny_grid();
  SsspOptions options;
  options.algo = Algorithm::kWasp;
  options.threads = 2;
  options.delta = 0;
  EXPECT_THROW(run_sssp(g, 0, options), InvalidOptionsError);

  options.delta = 1;
  options.wasp.chunk_capacity = 77;
  EXPECT_THROW(run_sssp(g, 0, options), InvalidOptionsError);

  options.wasp.chunk_capacity = 64;
  options.threads = 0;
  EXPECT_THROW(Solver{options}, InvalidOptionsError);
}

// --- algorithm <-> name table -------------------------------------------------

TEST(AlgorithmTable, RoundTripsEveryCanonicalName) {
  const Algorithm all[] = {
      Algorithm::kDijkstra,    Algorithm::kBellmanFord,
      Algorithm::kDeltaStepping, Algorithm::kJulienne,
      Algorithm::kDeltaStar,   Algorithm::kRhoStepping,
      Algorithm::kRadiusStepping, Algorithm::kMqDijkstra,
      Algorithm::kSmqDijkstra, Algorithm::kObim,
      Algorithm::kWasp,
  };
  for (const Algorithm a : all) {
    const std::string name = to_string(a);
    EXPECT_NE(name, "?");
    EXPECT_EQ(parse_algorithm(name), a) << name;
    EXPECT_STREQ(algorithm_name(a), name.c_str());
  }
}

TEST(AlgorithmTable, AcceptsDocumentedAliases) {
  EXPECT_EQ(parse_algorithm("bellman-ford"), Algorithm::kBellmanFord);
  EXPECT_EQ(parse_algorithm("delta"), Algorithm::kDeltaStepping);
  EXPECT_EQ(parse_algorithm("julienne"), Algorithm::kJulienne);
  EXPECT_EQ(parse_algorithm("delta-star"), Algorithm::kDeltaStar);
  EXPECT_EQ(parse_algorithm("rho-stepping"), Algorithm::kRhoStepping);
  EXPECT_EQ(parse_algorithm("radius-stepping"), Algorithm::kRadiusStepping);
  EXPECT_EQ(parse_algorithm("multiqueue"), Algorithm::kMqDijkstra);
  EXPECT_EQ(parse_algorithm("stealing-multiqueue"), Algorithm::kSmqDijkstra);
  EXPECT_EQ(parse_algorithm("obim"), Algorithm::kObim);
}

TEST(AlgorithmTable, RejectsUnknownNamesListingTheTable) {
  try {
    parse_algorithm("quantum-annealing");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("quantum-annealing"), std::string::npos);
    EXPECT_NE(what.find("wasp"), std::string::npos);
  }
}

TEST(AlgorithmTable, ListEnumeratesElevenCanonicalNames) {
  const std::string list = algorithm_list();
  EXPECT_NE(list.find("dijkstra"), std::string::npos);
  EXPECT_NE(list.find("wasp"), std::string::npos);
  std::size_t bars = 0;
  for (const char c : list) bars += c == '|' ? 1 : 0;
  EXPECT_EQ(bars, 10u);  // 11 names, 10 separators
}

}  // namespace
}  // namespace wasp
