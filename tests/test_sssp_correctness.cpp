// Correctness of every SSSP implementation against the sequential Dijkstra
// reference, swept over graph families, delta values, and thread counts
// (parameterized property tests). All implementations must produce exactly
// the same distance vector — SSSP has a unique fixed point.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/sssp.hpp"
#include "sssp/validate.hpp"

namespace wasp {
namespace {

struct TestGraph {
  const char* name;
  Graph graph;
  VertexId source;
};

/// Small but structurally diverse instances; each exercises a different
/// code path (deep buckets, hub decomposition, leaves, skew, cycles).
const TestGraph& test_graph(int index) {
  static const std::vector<TestGraph> graphs = [] {
    std::vector<TestGraph> gs;
    const auto add = [&gs](const char* name, Graph g) {
      const VertexId src = pick_source_in_largest_component(g, 123);
      gs.push_back(TestGraph{name, std::move(g), src});
    };
    add("grid", gen::grid(40, 40, WeightScheme::gap(), 11));
    add("chain", gen::chain_forest(4, 300, WeightScheme::gap(), 12));
    add("star", gen::star_hub(3000, 0.93, 0.01, WeightScheme::gap(), 13));
    add("rmat_directed",
        gen::rmat(11, 16384, 0.57, 0.19, 0.19, WeightScheme::gap(), 14, false));
    add("rmat_undirected",
        gen::rmat(11, 16384, 0.57, 0.19, 0.19, WeightScheme::gap(), 15, true));
    add("er", gen::erdos_renyi(3000, 8.0, WeightScheme::gap(), 16));
    add("unit_weights", gen::grid(30, 30, WeightScheme::unit(), 17));
    add("normal_weights",
        gen::random_regular(2000, 6, WeightScheme::truncated_normal(1.0, 0.5),
                            18));
    return gs;
  }();
  return graphs[static_cast<std::size_t>(index)];
}
constexpr int kNumTestGraphs = 8;

using Param = std::tuple<Algorithm, int /*graph index*/, Weight /*delta*/,
                         int /*threads*/>;

std::string param_name(const testing::TestParamInfo<Param>& info) {
  const auto [algo, graph_index, delta, threads] = info.param;
  return std::string(algorithm_name(algo)) + "_" +
         test_graph(graph_index).name + "_d" + std::to_string(delta) + "_t" +
         std::to_string(threads);
}

class SsspCorrectness : public testing::TestWithParam<Param> {};

TEST_P(SsspCorrectness, MatchesDijkstra) {
  const auto [algo, graph_index, delta, threads] = GetParam();
  const TestGraph& tg = test_graph(graph_index);

  const SsspResult reference = dijkstra(tg.graph, tg.source);

  SsspOptions options;
  options.algo = algo;
  options.threads = threads;
  options.delta = delta;
  options.seed = 99;
  // Small theta so neighborhood decomposition actually triggers on the
  // star graph's hub at test scale.
  options.wasp.theta = 256;
  const SsspResult result = run_sssp(tg.graph, tg.source, options);

  std::string message;
  ASSERT_TRUE(distances_equal(reference.dist, result.dist, &message))
      << algorithm_name(algo) << " on " << tg.name << " (delta=" << delta
      << ", threads=" << threads << "): " << message;
}

// Every parallel algorithm on every graph family, single- and multi-threaded,
// at a fine and a coarse delta.
INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, SsspCorrectness,
    testing::Combine(
        testing::Values(Algorithm::kBellmanFord, Algorithm::kDeltaStepping,
                        Algorithm::kJulienne, Algorithm::kDeltaStar,
                        Algorithm::kRhoStepping, Algorithm::kRadiusStepping,
                        Algorithm::kMqDijkstra, Algorithm::kSmqDijkstra,
                        Algorithm::kObim, Algorithm::kWasp),
        testing::Range(0, kNumTestGraphs),
        testing::Values(Weight{1}, Weight{64}),
        testing::Values(1, 4)),
    param_name);

// Deltas beyond max weight and at extreme coarsening.
class SsspDeltaSweep : public testing::TestWithParam<Weight> {};

TEST_P(SsspDeltaSweep, WaspAnyDeltaMatchesDijkstra) {
  const Weight delta = GetParam();
  const TestGraph& tg = test_graph(0);
  const SsspResult reference = dijkstra(tg.graph, tg.source);
  SsspOptions options;
  options.algo = Algorithm::kWasp;
  options.threads = 3;
  options.delta = delta;
  const SsspResult result = run_sssp(tg.graph, tg.source, options);
  std::string message;
  ASSERT_TRUE(distances_equal(reference.dist, result.dist, &message)) << message;
}

INSTANTIATE_TEST_SUITE_P(DeltaValues, SsspDeltaSweep,
                         testing::Values(Weight{1}, Weight{2}, Weight{16},
                                         Weight{255}, Weight{1024},
                                         Weight{1u << 20}));

TEST(SsspEdgeCases, SingleVertexGraph) {
  const Graph g = Graph::from_edges(1, {}, false);
  SsspOptions options;
  options.algo = Algorithm::kWasp;
  options.threads = 2;
  const SsspResult r = run_sssp(g, 0, options);
  ASSERT_EQ(r.dist.size(), 1u);
  EXPECT_EQ(r.dist[0], 0u);
}

TEST(SsspEdgeCases, DisconnectedVerticesStayInfinite) {
  // Two components; sources in the first leave the second at infinity.
  const Graph g = Graph::from_edges(5, {{0, 1, 2}, {1, 2, 2}, {3, 4, 2}}, true);
  for (const Algorithm algo :
       {Algorithm::kDeltaStepping, Algorithm::kMqDijkstra, Algorithm::kWasp}) {
    SsspOptions options;
    options.algo = algo;
    options.threads = 2;
    options.delta = 1;
    const SsspResult r = run_sssp(g, 0, options);
    EXPECT_EQ(r.dist[0], 0u) << algorithm_name(algo);
    EXPECT_EQ(r.dist[1], 2u) << algorithm_name(algo);
    EXPECT_EQ(r.dist[2], 4u) << algorithm_name(algo);
    EXPECT_EQ(r.dist[3], kInfDist) << algorithm_name(algo);
    EXPECT_EQ(r.dist[4], kInfDist) << algorithm_name(algo);
  }
}

TEST(SsspEdgeCases, ZeroWeightEdgesSupported) {
  const Graph g = Graph::from_edges(
      4, {{0, 1, 0}, {1, 2, 0}, {2, 3, 5}, {0, 3, 6}}, false);
  const SsspResult reference = dijkstra(g, 0);
  EXPECT_EQ(reference.dist[3], 5u);
  for (const Algorithm algo :
       {Algorithm::kDeltaStepping, Algorithm::kDeltaStar, Algorithm::kWasp}) {
    SsspOptions options;
    options.algo = algo;
    options.threads = 2;
    options.delta = 3;
    const SsspResult r = run_sssp(g, 0, options);
    std::string message;
    EXPECT_TRUE(distances_equal(reference.dist, r.dist, &message))
        << algorithm_name(algo) << ": " << message;
  }
}

TEST(SsspEdgeCases, SourceWithNoOutEdges) {
  const Graph g = Graph::from_edges(3, {{1, 2, 4}}, false);
  SsspOptions options;
  options.algo = Algorithm::kWasp;
  options.threads = 2;
  const SsspResult r = run_sssp(g, 0, options);
  EXPECT_EQ(r.dist[0], 0u);
  EXPECT_EQ(r.dist[1], kInfDist);
  EXPECT_EQ(r.dist[2], kInfDist);
}

TEST(SsspEdgeCases, ParallelEdgesKeepMinimum) {
  const Graph g = Graph::from_edges(2, {{0, 1, 9}, {0, 1, 3}, {0, 1, 7}}, false);
  SsspOptions options;
  options.algo = Algorithm::kWasp;
  options.threads = 2;
  const SsspResult r = run_sssp(g, 0, options);
  EXPECT_EQ(r.dist[1], 3u);
}

TEST(SsspStats, RelaxationCountsArePlausible) {
  const TestGraph& tg = test_graph(4);  // undirected rmat
  const SsspResult reference = dijkstra(tg.graph, tg.source);
  EXPECT_GT(reference.stats.relaxations, 0u);

  SsspOptions options;
  options.algo = Algorithm::kWasp;
  options.threads = 1;
  options.delta = 1;
  options.wasp.bidirectional_relaxation = false;  // adds pull relaxations
  const SsspResult wasp_run = run_sssp(tg.graph, tg.source, options);
  // A parallel run cannot beat Dijkstra's relaxation count (the theoretical
  // minimum modulo leaf pruning, which only removes relaxations Dijkstra
  // performs; allow small slack for that).
  EXPECT_GE(wasp_run.stats.relaxations + tg.graph.num_vertices(),
            reference.stats.relaxations / 2);
  EXPECT_GT(wasp_run.stats.updates, 0u);
}

}  // namespace
}  // namespace wasp
