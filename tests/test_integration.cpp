// End-to-end integration tests: every workload class of the benchmark suite
// (main + appendix) solved by Wasp and spot-checked baselines against
// Dijkstra at a small scale, plus an adversarial termination stress
// (many tiny runs at high thread counts — the configuration most likely to
// expose a premature-termination race).
#include <gtest/gtest.h>

#include "graph/suite.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/sssp.hpp"
#include "sssp/validate.hpp"

namespace wasp {
namespace {

class SuiteIntegration : public testing::TestWithParam<suite::GraphClass> {};

TEST_P(SuiteIntegration, WaspMatchesDijkstraOnEveryClass) {
  const auto w = suite::make(GetParam(), 0.1, 5);
  const auto reference = dijkstra(w.graph, w.source);

  SsspOptions options;
  options.algo = Algorithm::kWasp;
  options.threads = 4;
  options.delta = 1;
  options.wasp.theta = 512;  // make decomposition fire at this scale
  const SsspResult r = run_sssp(w.graph, w.source, options);
  std::string message;
  ASSERT_TRUE(distances_equal(reference.dist, r.dist, &message))
      << suite::abbr(GetParam()) << ": " << message;
}

TEST_P(SuiteIntegration, GapAndDeltaStarMatchDijkstra) {
  const auto w = suite::make(GetParam(), 0.1, 5);
  const auto reference = dijkstra(w.graph, w.source);
  for (const Algorithm algo : {Algorithm::kDeltaStepping, Algorithm::kDeltaStar}) {
    SsspOptions options;
    options.algo = algo;
    options.threads = 3;
    options.delta = 128;
    const SsspResult r = run_sssp(w.graph, w.source, options);
    std::string message;
    ASSERT_TRUE(distances_equal(reference.dist, r.dist, &message))
        << suite::abbr(GetParam()) << "/" << algorithm_name(algo) << ": "
        << message;
  }
}

std::string class_name(const testing::TestParamInfo<suite::GraphClass>& info) {
  return suite::abbr(info.param);
}

INSTANTIATE_TEST_SUITE_P(MainSuite, SuiteIntegration,
                         testing::ValuesIn(suite::main_suite()), class_name);
INSTANTIATE_TEST_SUITE_P(AppendixSuite, SuiteIntegration,
                         testing::ValuesIn(suite::appendix_suite()), class_name);

TEST(TerminationStress, ManyTinyRunsAtHighThreadCounts) {
  // Tiny graphs with many threads maximize the window for the
  // steal/terminate race: most workers never receive real work and spend
  // the whole run inside the termination protocol. A premature termination
  // shows up as an unreached vertex.
  const auto w = suite::make(suite::GraphClass::kUrand, 0.05, 9);
  const auto reference = dijkstra(w.graph, w.source);
  for (int run = 0; run < 30; ++run) {
    SsspOptions options;
    options.algo = Algorithm::kWasp;
    options.threads = 12;
    options.delta = 1 + (run % 7) * 9;
    options.seed = static_cast<std::uint64_t>(run);
    const SsspResult r = run_sssp(w.graph, w.source, options);
    std::string message;
    ASSERT_TRUE(distances_equal(reference.dist, r.dist, &message))
        << "run " << run << ": " << message;
  }
}

TEST(TerminationStress, ImmediateTerminationOnEdgelessGraph) {
  // All workers enter the termination protocol instantly; the run must end
  // (no livelock) with only the source settled.
  const Graph g = Graph::from_edges(64, {}, false);
  SsspOptions options;
  options.algo = Algorithm::kWasp;
  options.threads = 8;
  const SsspResult r = run_sssp(g, 7, options);
  EXPECT_EQ(r.dist[7], 0u);
  for (VertexId v = 0; v < 64; ++v) {
    if (v != 7) {
      EXPECT_EQ(r.dist[v], kInfDist);
    }
  }
}

}  // namespace
}  // namespace wasp
