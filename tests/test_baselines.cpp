// Behaviour-focused tests for the baseline implementations: each test
// forces a specific internal mechanism (Julienne's overflow re-bucketing,
// the steppers' super-sparse and pull rounds, GAP's bucket fusion, OBIM's
// global-bag migration, MultiQueue parameterizations) and checks exactness.
#include <gtest/gtest.h>

#include <string>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "sssp/bellman_ford.hpp"
#include "sssp/delta_stepping.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/julienne.hpp"
#include "sssp/mq_dijkstra.hpp"
#include "sssp/obim.hpp"
#include "sssp/sssp.hpp"
#include "sssp/stepping.hpp"
#include "sssp/validate.hpp"
#include "support/errors.hpp"

namespace wasp {
namespace {

struct Ref {
  Graph graph;
  VertexId source;
  std::vector<Distance> dist;
};

Ref make_ref(Graph g, std::uint64_t seed = 3) {
  Ref r;
  r.graph = std::move(g);
  r.source = pick_source_in_largest_component(r.graph, seed);
  r.dist = dijkstra(r.graph, r.source).dist;
  return r;
}

/// Direct algorithm calls bypass the run_sssp front door, so each call
/// brings its own team + registry (the registry is only reset by the
/// dispatcher; reusing one across calls would accumulate counters).
struct Ctx {
  ThreadTeam team;
  obs::MetricsRegistry metrics;
  RunContext ctx;

  explicit Ctx(int threads)
      : team(threads), metrics(threads), ctx{team, metrics} {}
};

// --- Julienne: bounded window + overflow -----------------------------------

TEST(Julienne, OverflowRebucketingOnDeepGraphs) {
  // Long chain with delta=1: distances reach ~250*2048 so the 32-bucket
  // window overflows thousands of times.
  const Ref ref = make_ref(gen::chain_forest(1, 2048, WeightScheme::gap(), 5));
  Ctx c(3);
  const auto r = julienne_sssp(ref.graph, ref.source, /*delta=*/1,
                               /*direction_optimize=*/false, c.ctx);
  EXPECT_EQ(r.dist, ref.dist);
  // Many more rounds than buckets in one window.
  EXPECT_GT(r.stats.rounds, 32u);
}

TEST(Julienne, PullRoundsFireOnStarAndStayExact) {
  const Ref ref = make_ref(gen::star_hub(4000, 0.93, 0.01, WeightScheme::gap(), 6));
  Ctx with(4);
  Ctx without(4);
  const auto with_pull = julienne_sssp(ref.graph, ref.source, 64,
                                       /*direction_optimize=*/true, with.ctx);
  const auto without_pull =
      julienne_sssp(ref.graph, ref.source, 64, /*direction_optimize=*/false,
                    without.ctx);
  EXPECT_EQ(with_pull.dist, ref.dist);
  EXPECT_EQ(without_pull.dist, ref.dist);
}

TEST(Julienne, WideDeltaCollapsesToFewRounds) {
  const Ref ref = make_ref(gen::erdos_renyi(2000, 8.0, WeightScheme::gap(), 7));
  Ctx c(2);
  const auto r = julienne_sssp(ref.graph, ref.source, 1u << 20, false, c.ctx);
  EXPECT_EQ(r.dist, ref.dist);
  EXPECT_LE(r.stats.rounds, 16u);  // everything lands in bucket 0
}

// --- Delta* / rho stepping ---------------------------------------------------

TEST(Stepping, SuperSparseRoundsHandleChains) {
  // A bare chain keeps the frontier at ~1 vertex: the entire run goes
  // through the sequential super-sparse path.
  const Ref ref = make_ref(gen::chain_forest(1, 500, WeightScheme::gap(), 8));
  for (const auto kind : {SteppingKind::kDeltaStar, SteppingKind::kRho}) {
    Ctx c(4);
    const auto r = stepping_sssp(ref.graph, ref.source, kind, 64, 1 << 14,
                                 true, c.ctx);
    EXPECT_EQ(r.dist, ref.dist);
  }
}

TEST(Stepping, PullRoundsOnStarStayExact) {
  const Ref ref = make_ref(gen::star_hub(6000, 0.93, 0.01, WeightScheme::gap(), 9));
  for (const bool pull : {true, false}) {
    Ctx c(4);
    const auto r = stepping_sssp(ref.graph, ref.source, SteppingKind::kDeltaStar,
                                 32, 1 << 14, pull, c.ctx);
    EXPECT_EQ(r.dist, ref.dist) << "pull=" << pull;
  }
}

TEST(Stepping, RegressionSettledBoundIsFrontierMinNotThreshold) {
  // Regression: rho-stepping with a small frontier sets threshold = inf
  // ("take everything"); an earlier version advanced the settled bound to
  // the *threshold*, so the following pull round skipped every vertex and
  // the run terminated with unreached vertices. The settled bound must be
  // the frontier minimum. This configuration (undirected, dense enough to
  // trigger pulls, frontier below rho) reproduced the bug deterministically.
  const Ref ref = make_ref(gen::erdos_renyi(3000, 8.0, WeightScheme::gap(), 16));
  Ctx c(1);
  const auto r = stepping_sssp(ref.graph, ref.source, SteppingKind::kRho,
                               1, /*rho=*/1 << 14, /*pull=*/true, c.ctx);
  EXPECT_EQ(r.dist, ref.dist);
  // Every vertex in the source's component must be reached.
  VertexId reached = 0;
  for (const Distance d : r.dist) reached += d != kInfDist;
  EXPECT_GT(reached, ref.graph.num_vertices() * 9 / 10);
}

TEST(Stepping, TinyRhoStillTerminates) {
  // rho=1 processes ~one vertex per threshold round: maximal round count,
  // exercises the deferral path heavily.
  const Ref ref = make_ref(gen::erdos_renyi(500, 6.0, WeightScheme::gap(), 10));
  Ctx c(3);
  const auto r = stepping_sssp(ref.graph, ref.source, SteppingKind::kRho, 1, 1,
                               true, c.ctx);
  EXPECT_EQ(r.dist, ref.dist);
}

TEST(Stepping, HugeDeltaStarBecomesBellmanFordLike) {
  const Ref ref = make_ref(gen::grid(30, 30, WeightScheme::gap(), 11));
  Ctx c(4);
  const auto r = stepping_sssp(ref.graph, ref.source, SteppingKind::kDeltaStar,
                               kInfDist / 2, 1 << 14, false, c.ctx);
  EXPECT_EQ(r.dist, ref.dist);
}

// --- GAP delta-stepping -------------------------------------------------------

TEST(DeltaStepping, BucketFusionPreservesResultsAndCutsRounds) {
  const Ref ref = make_ref(gen::grid(60, 60, WeightScheme::gap(), 12));
  Ctx fused_ctx(4);
  Ctx plain_ctx(4);
  const auto fused =
      delta_stepping(ref.graph, ref.source, 64, true, fused_ctx.ctx);
  const auto plain =
      delta_stepping(ref.graph, ref.source, 64, false, plain_ctx.ctx);
  EXPECT_EQ(fused.dist, ref.dist);
  EXPECT_EQ(plain.dist, ref.dist);
  // Fusion's whole point: fewer synchronous steps on road-like graphs.
  EXPECT_LT(fused.stats.rounds, plain.stats.rounds);
}

TEST(DeltaStepping, BarrierTimeIsRecorded) {
  const Ref ref = make_ref(gen::grid(40, 40, WeightScheme::gap(), 13));
  Ctx c(4);
  const auto r = delta_stepping(ref.graph, ref.source, 32, true, c.ctx);
  EXPECT_GT(r.stats.barrier_ns, 0u);
  EXPECT_GT(r.stats.rounds, 0u);
}

TEST(DeltaStepping, DeltaZeroIsRejectedAtTheFrontDoor) {
  // delta==0 used to be silently coerced to 1 inside each algorithm; the
  // nested-options redesign rejects it once, up front, for all of them.
  const Ref ref = make_ref(gen::erdos_renyi(500, 4.0, WeightScheme::gap(), 14));
  SsspOptions options;
  options.algo = Algorithm::kDeltaStepping;
  options.threads = 2;
  options.delta = 0;
  EXPECT_THROW(run_sssp(ref.graph, ref.source, options), InvalidOptionsError);
}

// --- OBIM / Galois-style -----------------------------------------------------

TEST(Obim, TinyChunksForceGlobalBagTraffic) {
  // chunk_size=2 overflows local chunks constantly; all coordination goes
  // through the global bags.
  const Ref ref = make_ref(gen::rmat(10, 8192, 0.57, 0.19, 0.19,
                                     WeightScheme::gap(), 15, true));
  Ctx c(6);
  const auto r = obim_sssp(ref.graph, ref.source, 8, /*chunk_size=*/2, c.ctx);
  EXPECT_EQ(r.dist, ref.dist);
}

TEST(Obim, HugeChunksKeepWorkLocal) {
  const Ref ref = make_ref(gen::rmat(10, 8192, 0.57, 0.19, 0.19,
                                     WeightScheme::gap(), 16, true));
  Ctx c(4);
  const auto r =
      obim_sssp(ref.graph, ref.source, 8, /*chunk_size=*/4096, c.ctx);
  EXPECT_EQ(r.dist, ref.dist);
}

TEST(Obim, DeepPriorityLevelsOnChains) {
  const Ref ref = make_ref(gen::chain_forest(2, 400, WeightScheme::gap(), 17));
  Ctx c(3);
  const auto r = obim_sssp(ref.graph, ref.source, 1, 128, c.ctx);
  EXPECT_EQ(r.dist, ref.dist);
}

// --- radius-stepping (extension baseline) ------------------------------------

TEST(RadiusStepping, RadiiAreKNearestDistances) {
  // Path 0-1-2-3 with weights 2,3,4: r_2(0) = dist to 2nd nearest = 5.
  const Graph g =
      Graph::from_edges(4, {{0, 1, 2}, {1, 2, 3}, {2, 3, 4}}, true);
  ThreadTeam team(2);
  const auto r1 = compute_radii(g, 1, team);
  EXPECT_EQ(r1[0], 2u);   // nearest neighbour of 0 is 1 at distance 2
  EXPECT_EQ(r1[1], 2u);   // nearest of 1 is 0
  const auto r2 = compute_radii(g, 2, team);
  EXPECT_EQ(r2[0], 5u);   // 2nd nearest of 0 is 2 at distance 5
  EXPECT_EQ(r2[3], 7u);   // 2nd nearest of 3 is 1 at 4+3=7
}

TEST(RadiusStepping, MatchesDijkstraAcrossK) {
  const Ref ref = make_ref(gen::erdos_renyi(2000, 8.0, WeightScheme::gap(), 22));
  for (const std::uint32_t k : {1u, 4u, 64u}) {
    Ctx c(4);
    const auto radii = compute_radii(ref.graph, k, c.team);
    const auto r = stepping_sssp(ref.graph, ref.source, SteppingKind::kRadius,
                                 1, 1, true, c.ctx, &radii);
    EXPECT_EQ(r.dist, ref.dist) << "k=" << k;
  }
}

TEST(RadiusStepping, FrontEndDispatch) {
  const Ref ref = make_ref(gen::grid(30, 30, WeightScheme::gap(), 23));
  SsspOptions options;
  options.algo = Algorithm::kRadiusStepping;
  options.threads = 3;
  options.stepping.radius_k = 8;
  EXPECT_EQ(run_sssp(ref.graph, ref.source, options).dist, ref.dist);
  EXPECT_EQ(parse_algorithm("radius"), Algorithm::kRadiusStepping);
}

TEST(RadiusStepping, RequiresRadii) {
  const Ref ref = make_ref(gen::grid(5, 5, WeightScheme::gap(), 24));
  Ctx c(1);
  EXPECT_THROW(stepping_sssp(ref.graph, ref.source, SteppingKind::kRadius, 1,
                             1, false, c.ctx, nullptr),
               std::invalid_argument);
}

// --- MultiQueue Dijkstra ------------------------------------------------------

TEST(MqDijkstra, ParameterMatrixStaysExact) {
  const Ref ref = make_ref(gen::erdos_renyi(2000, 8.0, WeightScheme::gap(), 18));
  for (const int c : {1, 4}) {
    for (const int stickiness : {1, 16}) {
      for (const int buffer : {1, 32}) {
        Ctx run(4);
        const auto r = mq_dijkstra(ref.graph, ref.source, c, stickiness, buffer,
                                   1, run.ctx);
        EXPECT_EQ(r.dist, ref.dist)
            << "c=" << c << " s=" << stickiness << " b=" << buffer;
      }
    }
  }
}

TEST(MqDijkstra, QueueOpTimeIsRecorded) {
  const Ref ref = make_ref(gen::erdos_renyi(2000, 8.0, WeightScheme::gap(), 19));
  Ctx c(2);
  const auto r = mq_dijkstra(ref.graph, ref.source, 2, 8, 16, 1, c.ctx);
  EXPECT_GT(r.stats.queue_op_ns, 0u);
}

// --- Bellman-Ford --------------------------------------------------------------

TEST(BellmanFord, NegativeFreeCyclesConverge) {
  // Dense cyclic graph: many re-insertions per round.
  const Ref ref = make_ref(gen::rmat(9, 8192, 0.5, 0.2, 0.2,
                                     WeightScheme::uniform(1, 8), 20, true));
  Ctx c(4);
  const auto r = bellman_ford(ref.graph, ref.source, c.ctx);
  EXPECT_EQ(r.dist, ref.dist);
  EXPECT_GT(r.stats.rounds, 1u);
}

}  // namespace
}  // namespace wasp
