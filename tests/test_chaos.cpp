// Fault-injection tests: the chaos engine itself (seeded determinism,
// replayable traces, failure reports), the Chase-Lev deque under forced-
// yield/steal-fail schedules, and the headline grid — Wasp, SMQ-Dijkstra
// and delta-stepping across >= 1000 seeded (seed, policy) combinations,
// every run validated against sequential Dijkstra. In WASP_CHAOS=OFF builds
// the injection points are compiled out and the grid degenerates to a plain
// repeated-run soak; the WASP_CHAOS=ON CI job runs the same binary with the
// faults live.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "concurrent/chase_lev_deque.hpp"
#include "graph/algorithms.hpp"
#include "obs/observer.hpp"
#include "graph/generators.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/sssp.hpp"
#include "sssp/validate.hpp"
#include "support/chaos.hpp"
#include "support/thread_team.hpp"

namespace wasp {
namespace {

// ---------------------------------------------------------------------------
// Engine unit tests (the Engine class is compiled in every configuration;
// only the in-tree injection hooks are build-gated).
// ---------------------------------------------------------------------------

std::vector<chaos::Event> drive_engine(std::uint64_t seed,
                                       const chaos::Policy& policy,
                                       int visits) {
  chaos::Engine engine(seed, policy, 2);
  for (int i = 0; i < visits; ++i) {
    engine.fire(0, chaos::Point::kStealFail);
    engine.fire(0, chaos::Point::kYieldBeforeCas);
    engine.fire(1, chaos::Point::kSpuriousWakeup);
  }
  return engine.trace();
}

TEST(ChaosEngine, SameSeedSameTrace) {
  const auto a = drive_engine(42, chaos::Policy::uniform(8192), 500);
  const auto b = drive_engine(42, chaos::Policy::uniform(8192), 500);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a.empty());  // 1500 visits at 1/8 each: empty is impossible
}

TEST(ChaosEngine, DifferentSeedsDiverge) {
  const auto a = drive_engine(1, chaos::Policy::uniform(8192), 500);
  const auto b = drive_engine(2, chaos::Policy::uniform(8192), 500);
  EXPECT_NE(a, b);
}

TEST(ChaosEngine, OffPolicyNeverFires) {
  chaos::Engine engine(7, chaos::Policy::off(), 4);
  for (int i = 0; i < 10000; ++i)
    EXPECT_FALSE(engine.fire(i % 4, chaos::Point::kStealFail));
  EXPECT_EQ(engine.fired_count(), 0u);
}

TEST(ChaosEngine, RatesAreRoughlyHonored) {
  chaos::Policy p = chaos::Policy::uniform(16384);  // 1/4
  chaos::Engine engine(99, p, 1);
  int fired = 0;
  constexpr int kVisits = 20000;
  for (int i = 0; i < kVisits; ++i)
    fired += engine.fire(0, chaos::Point::kYieldAfterCas) ? 1 : 0;
  EXPECT_GT(fired, kVisits / 5);
  EXPECT_LT(fired, kVisits / 3);
}

TEST(ChaosEngine, TraceSeqIdentifiesVisitNotFiring) {
  // With rate 65535/65536 nearly every visit fires; seq must track visits,
  // so consecutive events on one thread have strictly increasing seq.
  chaos::Engine engine(5, chaos::Policy::uniform(65535), 1);
  for (int i = 0; i < 64; ++i) engine.fire(0, chaos::Point::kChunkAllocFail);
  const auto trace = engine.trace();
  ASSERT_GT(trace.size(), 32u);
  for (std::size_t i = 1; i < trace.size(); ++i)
    EXPECT_GT(trace[i].seq, trace[i - 1].seq);
}

TEST(ChaosEngine, FailureReportNamesSeedPolicyAndSchedule) {
  chaos::Engine engine(0xDEADBEEFu, chaos::Policy::steal_storm(), 3);
  for (int i = 0; i < 200; ++i) engine.fire(1, chaos::Point::kStealFail);
  const std::string report =
      chaos::failure_report(engine, "distance mismatch at vertex 17");
  EXPECT_NE(report.find(std::to_string(0xDEADBEEFu)), std::string::npos);
  EXPECT_NE(report.find("steal-storm"), std::string::npos);
  EXPECT_NE(report.find("distance mismatch at vertex 17"), std::string::npos);
  EXPECT_NE(report.find("steal-fail"), std::string::npos);
}

TEST(ChaosEngine, ScopedInstallRoutesAndRestores) {
  chaos::Engine engine(3, chaos::Policy::uniform(65535), 1);
  EXPECT_FALSE(chaos::active());
  EXPECT_FALSE(chaos::fire(chaos::Point::kStealFail));  // nothing installed
  {
    chaos::ScopedInstall guard(&engine, 0);
    EXPECT_TRUE(chaos::active());
    int fired = 0;
    for (int i = 0; i < 64; ++i)
      fired += chaos::fire(chaos::Point::kStealFail) ? 1 : 0;
    EXPECT_GT(fired, 0);
  }
  EXPECT_FALSE(chaos::active());
  EXPECT_EQ(engine.fired_count(), engine.trace().size());
}

TEST(ChaosEngine, NullInstallIsNoop) {
  chaos::ScopedInstall guard(nullptr, 0);
  EXPECT_FALSE(chaos::active());
  EXPECT_FALSE(chaos::fire(chaos::Point::kYieldBeforeCas));
}

TEST(ChaosEngine, KillSwitchSilencesInstalledEngine) {
  chaos::Engine engine(3, chaos::Policy::uniform(65535), 1);
  chaos::ScopedInstall guard(&engine, 0);
  chaos::disable_all();
  EXPECT_FALSE(chaos::globally_enabled());
  EXPECT_FALSE(chaos::active());
  for (int i = 0; i < 64; ++i)
    EXPECT_FALSE(chaos::fire(chaos::Point::kStealFail));
  chaos::enable_all();
  EXPECT_TRUE(chaos::globally_enabled());
  EXPECT_TRUE(chaos::fire(chaos::Point::kStealFail));  // rate 65535/65536
}

TEST(ChaosEngine, StandardPoliciesShape) {
  const auto policies = chaos::standard_policies();
  ASSERT_GE(policies.size(), 5u);
  EXPECT_STREQ(policies.front().name, "off");
  for (const auto& p : policies) EXPECT_NE(p.name, nullptr);
}

// ---------------------------------------------------------------------------
// Deque safety under seeded chaos schedules: >= 1000 forced-yield/steal-fail
// schedules, each checking exactly-once consumption.
// ---------------------------------------------------------------------------

struct Item {
  std::atomic<int> consumed{0};
};

TEST(ChaosDeque, ThousandSeededSchedulesExactlyOnce) {
  constexpr int kSchedules = 1000;
  constexpr int kItems = 192;
  chaos::Policy policy;
  policy.name = "deque-fuzz";
  policy.rate[static_cast<std::size_t>(chaos::Point::kStealFail)] = 16384;
  policy.rate[static_cast<std::size_t>(chaos::Point::kYieldBeforeCas)] = 8192;
  policy.rate[static_cast<std::size_t>(chaos::Point::kYieldAfterCas)] = 8192;

  ThreadTeam team(3);  // owner + two thieves
  std::vector<Item> items(kItems);
  for (int s = 0; s < kSchedules; ++s) {
    chaos::Engine engine(static_cast<std::uint64_t>(s), policy, team.size());
    ChaseLevDeque<Item*> dq(2);
    for (auto& it : items) it.consumed.store(0, std::memory_order_relaxed);
    std::atomic<bool> done{false};
    std::atomic<int> consumed{0};

    team.run([&](int tid) {
      chaos::ScopedInstall guard(&engine, tid);
      if (tid == 0) {
        for (int i = 0; i < kItems; ++i) {
          dq.push_bottom(&items[static_cast<std::size_t>(i)]);
          if (i % 4 == 0) {
            if (Item* it = dq.pop_bottom()) {
              it->consumed.fetch_add(1, std::memory_order_acq_rel);
              consumed.fetch_add(1, std::memory_order_acq_rel);
            }
          }
        }
        while (consumed.load(std::memory_order_acquire) < kItems) {
          if (Item* it = dq.pop_bottom()) {
            it->consumed.fetch_add(1, std::memory_order_acq_rel);
            consumed.fetch_add(1, std::memory_order_acq_rel);
          } else {
            std::this_thread::yield();
          }
        }
        done.store(true, std::memory_order_release);
      } else {
        while (!done.load(std::memory_order_acquire)) {
          if (Item* it = dq.steal()) {
            it->consumed.fetch_add(1, std::memory_order_acq_rel);
            consumed.fetch_add(1, std::memory_order_acq_rel);
          } else {
            std::this_thread::yield();
          }
        }
      }
    });

    ASSERT_EQ(consumed.load(), kItems)
        << chaos::failure_report(engine, "lost or duplicated deque items");
    for (auto& it : items)
      ASSERT_EQ(it.consumed.load(), 1)
          << chaos::failure_report(engine, "item consumed != 1 time");
    ASSERT_EQ(dq.pop_bottom(), nullptr);
    ASSERT_EQ(dq.steal(), nullptr);
  }
}

// ---------------------------------------------------------------------------
// The headline grid: algorithms x policies x seeds, every run validated
// against sequential Dijkstra; failures print the replayable schedule.
// ---------------------------------------------------------------------------

TEST(ChaosGrid, ThousandSeededRunsMatchDijkstra) {
  // Two structurally different small graphs: a skewed RMAT (steal-heavy,
  // hub decomposition) and a grid (deep buckets, long chains).
  const Graph rmat =
      gen::rmat(9, 4096, 0.57, 0.19, 0.19, WeightScheme::gap(), 21, false);
  const Graph mesh = gen::grid(24, 24, WeightScheme::gap(), 22);
  const VertexId rmat_src = pick_source_in_largest_component(rmat, 21);
  const VertexId mesh_src = pick_source_in_largest_component(mesh, 22);
  const std::vector<Distance> rmat_ref = dijkstra(rmat, rmat_src).dist;
  const std::vector<Distance> mesh_ref = dijkstra(mesh, mesh_src).dist;

  constexpr int kThreads = 4;
  constexpr int kSeedsPerCell = 67;  // 3 algos x 5 policies x 67 = 1005
  ThreadTeam team(kThreads);
  const auto policies = chaos::standard_policies();
  const Algorithm algos[] = {Algorithm::kWasp, Algorithm::kSmqDijkstra,
                             Algorithm::kDeltaStepping};

  int combos = 0;
  for (const Algorithm algo : algos) {
    for (const auto& policy : policies) {
      for (int s = 0; s < kSeedsPerCell; ++s) {
        const bool on_rmat = (s % 2 == 0);
        const Graph& g = on_rmat ? rmat : mesh;
        const VertexId src = on_rmat ? rmat_src : mesh_src;
        const auto& ref = on_rmat ? rmat_ref : mesh_ref;

        chaos::Engine engine(static_cast<std::uint64_t>(1000 * combos + s),
                             policy, kThreads, /*record=*/true);
        SsspOptions options;
        options.algo = algo;
        options.threads = kThreads;
        options.delta = on_rmat ? 2 : 32;
        options.chaos = &engine;
        const SsspResult r = run_sssp(g, src, options, team);
        ++combos;
        std::string why;
        if (!distances_equal(ref, r.dist, &why)) {
          FAIL() << chaos::failure_report(
              engine, std::string(algorithm_name(algo)) +
                          " diverges from Dijkstra on " +
                          (on_rmat ? "rmat" : "grid") + ": " + why);
        }
      }
    }
  }
  EXPECT_GE(combos, 1000);
}

// ---------------------------------------------------------------------------
// Replay determinism through a real scheduler run: with one worker thread
// the whole injection schedule is a pure function of the seed, so two runs
// record identical traces.
// ---------------------------------------------------------------------------

TEST(ChaosReplay, SingleThreadRunsReproduceIdenticalTraces) {
  const Graph g =
      gen::rmat(9, 4096, 0.57, 0.19, 0.19, WeightScheme::gap(), 31, false);
  const VertexId src = pick_source_in_largest_component(g, 31);
  const std::vector<Distance> ref = dijkstra(g, src).dist;

  ThreadTeam team(1);
  for (const std::uint64_t seed : {7ull, 1234ull, 0xFACEull}) {
    std::vector<chaos::Event> traces[2];
    for (int rep = 0; rep < 2; ++rep) {
      chaos::Engine engine(seed, chaos::Policy::termination_fuzz(), 1);
      SsspOptions options;
      options.algo = Algorithm::kWasp;
      options.threads = 1;
      options.delta = 2;
      options.chaos = &engine;
      const SsspResult r = run_sssp(g, src, options, team);
      std::string why;
      EXPECT_TRUE(distances_equal(ref, r.dist, &why))
          << chaos::failure_report(engine, "single-thread run diverged: " + why);
      traces[rep] = engine.trace();
    }
    EXPECT_EQ(traces[0], traces[1]) << "seed " << seed
                                    << ": replay produced a different schedule";
#if defined(WASP_CHAOS_ENABLED) && WASP_CHAOS_ENABLED
    // With injection compiled in, termination_fuzz must actually have fired
    // (thousands of visits at >= 1/16 rates).
    EXPECT_FALSE(traces[0].empty());
#endif
  }
}

// ---------------------------------------------------------------------------
// Run-lifecycle invariants under fault injection: the observer contract
// (obs/observer.hpp) must hold on chaotic schedules too — termination fires
// exactly once per worker and steal callbacks track the attempts counter
// even when steals are being force-failed.
// ---------------------------------------------------------------------------

TEST(ChaosObserver, LifecycleInvariantsHoldUnderInjection) {
  class Hooks final : public obs::RunObserver {
   public:
    void on_steal(int, int, bool) override {
      steals.fetch_add(1, std::memory_order_relaxed);
    }
    void on_termination(int) override {
      terminations.fetch_add(1, std::memory_order_relaxed);
    }
    std::atomic<std::uint64_t> steals{0};
    std::atomic<std::uint64_t> terminations{0};
  };

  const Graph g = gen::grid(24, 24, WeightScheme::gap(), 22);
  const VertexId src = pick_source_in_largest_component(g, 22);
  const std::vector<Distance> ref = dijkstra(g, src).dist;

  constexpr int kThreads = 4;
  ThreadTeam team(kThreads);
  for (const std::uint64_t seed : {3ull, 99ull, 0xBEEFull}) {
    chaos::Engine engine(seed, chaos::Policy::steal_storm(), kThreads);
    Hooks hooks;
    SsspOptions options;
    options.algo = Algorithm::kWasp;
    options.threads = kThreads;
    options.delta = 8;
    options.chaos = &engine;
    options.observer = &hooks;
    const SsspResult r = run_sssp(g, src, options, team);

    std::string why;
    ASSERT_TRUE(distances_equal(ref, r.dist, &why))
        << chaos::failure_report(engine, "observed run diverged: " + why);
    EXPECT_EQ(hooks.terminations.load(), static_cast<std::uint64_t>(kThreads))
        << chaos::failure_report(engine, "termination hook count drifted");
    EXPECT_EQ(hooks.steals.load(), r.stats.steal_attempts)
        << chaos::failure_report(engine, "steal hook count drifted");
  }
}

}  // namespace
}  // namespace wasp
