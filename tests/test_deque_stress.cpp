// Concurrent stress tests for the Chase-Lev deque: the lock-free structure
// at the heart of Wasp's current bucket. Each test checks the fundamental
// safety property — every pushed element is consumed exactly once, by owner
// pop or by a thief — under owner/thief races, growth during steals, and
// many-thief contention.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "concurrent/chase_lev_deque.hpp"
#include "support/thread_team.hpp"

namespace wasp {
namespace {

struct Item {
  std::atomic<int> consumed{0};
};

/// Owner pushes `total` items (interleaving pops); `num_thieves` steal
/// concurrently. Verifies exactly-once consumption.
void run_stress(int num_thieves, int total, bool owner_pops) {
  ChaseLevDeque<Item*> dq(2);  // tiny initial capacity to force growth
  std::vector<Item> items(static_cast<std::size_t>(total));
  std::atomic<bool> done{false};
  std::atomic<int> consumed_count{0};

  ThreadTeam team(1 + num_thieves);
  team.run([&](int tid) {
    if (tid == 0) {
      for (int i = 0; i < total; ++i) {
        dq.push_bottom(&items[static_cast<std::size_t>(i)]);
        if (owner_pops && (i % 3 == 0)) {
          if (Item* it = dq.pop_bottom()) {
            EXPECT_EQ(it->consumed.fetch_add(1, std::memory_order_acq_rel), 0);
            consumed_count.fetch_add(1, std::memory_order_acq_rel);
          }
        }
      }
      // Drain the remainder cooperatively with the thieves.
      while (consumed_count.load(std::memory_order_acquire) < total) {
        if (Item* it = dq.pop_bottom()) {
          EXPECT_EQ(it->consumed.fetch_add(1, std::memory_order_acq_rel), 0);
          consumed_count.fetch_add(1, std::memory_order_acq_rel);
        } else {
          std::this_thread::yield();
        }
      }
      done.store(true, std::memory_order_release);
    } else {
      while (!done.load(std::memory_order_acquire)) {
        if (Item* it = dq.steal()) {
          EXPECT_EQ(it->consumed.fetch_add(1, std::memory_order_acq_rel), 0);
          consumed_count.fetch_add(1, std::memory_order_acq_rel);
        } else {
          std::this_thread::yield();
        }
      }
    }
  });

  EXPECT_EQ(consumed_count.load(), total);
  for (auto& it : items) EXPECT_EQ(it.consumed.load(), 1);
  EXPECT_EQ(dq.pop_bottom(), nullptr);
  EXPECT_EQ(dq.steal(), nullptr);
}

TEST(DequeStress, OneThiefNoOwnerPops) { run_stress(1, 20000, false); }

TEST(DequeStress, OneThiefWithOwnerPops) { run_stress(1, 20000, true); }

TEST(DequeStress, ManyThieves) { run_stress(7, 20000, true); }

TEST(DequeStress, SingleElementContention) {
  // The hard case: owner pop and thief steal racing for the last element.
  ChaseLevDeque<Item*> dq;
  constexpr int kRounds = 5000;
  std::vector<Item> items(kRounds);
  std::atomic<int> round{0};
  std::atomic<int> consumed{0};

  ThreadTeam team(2);
  team.run([&](int tid) {
    for (int r = 0; r < kRounds; ++r) {
      if (tid == 0) {
        dq.push_bottom(&items[static_cast<std::size_t>(r)]);
        round.store(r + 1, std::memory_order_release);
        if (Item* it = dq.pop_bottom()) {
          EXPECT_EQ(it->consumed.fetch_add(1, std::memory_order_acq_rel), 0);
          consumed.fetch_add(1, std::memory_order_acq_rel);
        }
        // Wait until this round's element is consumed by someone.
        while (consumed.load(std::memory_order_acquire) < r + 1)
          std::this_thread::yield();
      } else {
        while (round.load(std::memory_order_acquire) < r + 1)
          std::this_thread::yield();
        if (Item* it = dq.steal()) {
          EXPECT_EQ(it->consumed.fetch_add(1, std::memory_order_acq_rel), 0);
          consumed.fetch_add(1, std::memory_order_acq_rel);
        }
        while (consumed.load(std::memory_order_acquire) < r + 1)
          std::this_thread::yield();
      }
    }
  });
  EXPECT_EQ(consumed.load(), kRounds);
  for (auto& it : items) EXPECT_EQ(it.consumed.load(), 1);
}

TEST(DequeStress, GrowthDuringSteals) {
  // Owner pushes a large burst (forcing repeated ring growth) while thieves
  // hammer steal(); retired rings must stay readable.
  ChaseLevDeque<Item*> dq(2);
  constexpr int kTotal = 50000;
  std::vector<Item> items(kTotal);
  std::atomic<bool> done{false};
  std::atomic<int> consumed{0};

  ThreadTeam team(4);
  team.run([&](int tid) {
    if (tid == 0) {
      for (int i = 0; i < kTotal; ++i)
        dq.push_bottom(&items[static_cast<std::size_t>(i)]);
      while (Item* it = dq.pop_bottom()) {
        EXPECT_EQ(it->consumed.fetch_add(1, std::memory_order_acq_rel), 0);
        consumed.fetch_add(1, std::memory_order_acq_rel);
      }
      while (consumed.load(std::memory_order_acquire) < kTotal)
        std::this_thread::yield();
      done.store(true, std::memory_order_release);
    } else {
      while (!done.load(std::memory_order_acquire)) {
        if (Item* it = dq.steal()) {
          EXPECT_EQ(it->consumed.fetch_add(1, std::memory_order_acq_rel), 0);
          consumed.fetch_add(1, std::memory_order_acq_rel);
        }
      }
    }
  });
  EXPECT_EQ(consumed.load(), kTotal);
}

}  // namespace
}  // namespace wasp
