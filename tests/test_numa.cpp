// Tests for NUMA topology discovery, synthetic topologies, and the
// victim-tier computation driving Wasp's stealing protocol (Algorithm 2).
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>

#include "support/numa.hpp"

namespace wasp {
namespace {

TEST(NumaTopology, FlatHasOneNode) {
  const auto topo = NumaTopology::flat(8);
  EXPECT_EQ(topo.num_nodes(), 1);
  EXPECT_EQ(topo.num_cpus(), 8);
  for (int c = 0; c < 8; ++c) EXPECT_EQ(topo.node_of_cpu(c), 0);
  EXPECT_EQ(topo.distance(0, 0), 10);
}

TEST(NumaTopology, DetectReturnsSaneTopology) {
  const auto topo = NumaTopology::detect();
  EXPECT_GE(topo.num_nodes(), 1);
  EXPECT_GE(topo.num_cpus(), 1);
  for (int n = 0; n < topo.num_nodes(); ++n) {
    EXPECT_EQ(topo.distance(n, n), 10);
    for (int c : topo.cpus_of_node(n)) EXPECT_EQ(topo.node_of_cpu(c), n);
  }
}

TEST(NumaTopology, SyntheticEpycShape) {
  // The paper's EPYC: 2 sockets x 4 NUMA nodes x 16 CPUs = 128 CPUs.
  const auto topo = NumaTopology::synthetic(2, 4, 16);
  EXPECT_EQ(topo.num_nodes(), 8);
  EXPECT_EQ(topo.num_cpus(), 128);
  EXPECT_EQ(topo.distance(0, 0), 10);   // same node
  EXPECT_EQ(topo.distance(0, 3), 12);   // same socket
  EXPECT_EQ(topo.distance(0, 4), 32);   // cross socket
  EXPECT_EQ(topo.distance(3, 4), 32);
  EXPECT_EQ(topo.node_of_cpu(0), 0);
  EXPECT_EQ(topo.node_of_cpu(16), 1);
  EXPECT_EQ(topo.node_of_cpu(127), 7);
}

namespace fs = std::filesystem;

/// Builds a sysfs-shaped tree for detect_from(). The root is unique per
/// process: gtest_discover_tests runs every TEST as its own ctest entry, so
/// parallel ctest would otherwise race two FakeSysfs instances on one path
/// (observed as sporadic "Subprocess aborted" under `ctest -j`).
class FakeSysfs {
 public:
  FakeSysfs()
      : root_(fs::path(testing::TempDir()) /
              ("wasp_numa_test_" + std::to_string(::getpid()))) {
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  ~FakeSysfs() { fs::remove_all(root_); }

  void add_node(int id, const std::string& cpulist,
                const std::string& distance) {
    const fs::path dir = root_ / ("node" + std::to_string(id));
    fs::create_directories(dir);
    std::ofstream(dir / "cpulist") << cpulist << "\n";
    std::ofstream(dir / "distance") << distance << "\n";
  }

  [[nodiscard]] std::string path() const { return root_.string(); }

 private:
  fs::path root_;
};

TEST(NumaDetectFrom, ParsesTwoNodeTree) {
  FakeSysfs sysfs;
  sysfs.add_node(0, "0-3", "10 21");
  sysfs.add_node(1, "4-7", "21 10");
  const auto topo = NumaTopology::detect_from(sysfs.path());
  ASSERT_EQ(topo.num_nodes(), 2);
  EXPECT_EQ(topo.num_cpus(), 8);
  EXPECT_EQ(topo.node_of_cpu(2), 0);
  EXPECT_EQ(topo.node_of_cpu(5), 1);
  EXPECT_EQ(topo.distance(0, 1), 21);
  EXPECT_EQ(topo.distance(1, 1), 10);
}

TEST(NumaDetectFrom, ParsesMixedCpulistSyntax) {
  FakeSysfs sysfs;
  sysfs.add_node(0, "0,2-3,7", "10");
  const auto topo = NumaTopology::detect_from(sysfs.path());
  ASSERT_EQ(topo.num_nodes(), 1);
  EXPECT_EQ(topo.num_cpus(), 8);  // max id 7 -> 8 cpus
  EXPECT_EQ(topo.cpus_of_node(0), (std::vector<int>{0, 2, 3, 7}));
}

TEST(NumaDetectFrom, MissingTreeFallsBackToFlat) {
  const auto topo = NumaTopology::detect_from("/nonexistent/definitely");
  EXPECT_EQ(topo.num_nodes(), 1);
  EXPECT_GE(topo.num_cpus(), 1);
}

TEST(NumaDetectFrom, MissingDistanceFileDefaultsToLocal) {
  FakeSysfs sysfs;
  sysfs.add_node(0, "0-1", "10 15");
  sysfs.add_node(1, "2-3", "15 10");
  // Remove node1's distance file.
  fs::remove(fs::path(sysfs.path()) / "node1" / "distance");
  const auto topo = NumaTopology::detect_from(sysfs.path());
  EXPECT_EQ(topo.distance(0, 1), 15);
  EXPECT_EQ(topo.distance(1, 0), 10);  // default fill
}

TEST(VictimTiers, FlatTopologyGivesOneTier) {
  const auto topo = NumaTopology::flat(4);
  const std::vector<int> cpu_of = {0, 1, 2, 3};
  const VictimTiers tiers(topo, cpu_of);
  for (int t = 0; t < 4; ++t) {
    ASSERT_EQ(tiers.tiers(t).size(), 1u);
    EXPECT_EQ(tiers.tiers(t)[0].size(), 3u);
  }
}

TEST(VictimTiers, ExcludesSelfAndCoversAllOthers) {
  const auto topo = NumaTopology::synthetic(2, 2, 2);  // 4 nodes, 8 cpus
  std::vector<int> cpu_of(8);
  for (int t = 0; t < 8; ++t) cpu_of[t] = t;
  const VictimTiers tiers(topo, cpu_of);
  for (int t = 0; t < 8; ++t) {
    std::set<int> seen;
    for (const auto& tier : tiers.tiers(t))
      for (int v : tier) {
        EXPECT_NE(v, t);
        EXPECT_TRUE(seen.insert(v).second) << "victim listed twice";
      }
    EXPECT_EQ(seen.size(), 7u);
  }
}

TEST(VictimTiers, TiersOrderedByDistance) {
  // 2 sockets x 2 nodes x 2 cpus: thread 0 (node 0) should see tiers
  // same-node < same-socket < cross-socket.
  const auto topo = NumaTopology::synthetic(2, 2, 2);
  std::vector<int> cpu_of(8);
  for (int t = 0; t < 8; ++t) cpu_of[t] = t;
  const VictimTiers tiers(topo, cpu_of);
  const auto& t0 = tiers.tiers(0);
  ASSERT_EQ(t0.size(), 3u);
  // Tier 0: thread 1 (same node).
  EXPECT_EQ(t0[0], std::vector<int>({1}));
  // Tier 1: threads 2, 3 (node 1, same socket).
  EXPECT_EQ(std::set<int>(t0[1].begin(), t0[1].end()), std::set<int>({2, 3}));
  // Tier 2: threads 4..7 (other socket).
  EXPECT_EQ(std::set<int>(t0[2].begin(), t0[2].end()),
            std::set<int>({4, 5, 6, 7}));
}

TEST(VictimTiers, RotationVariesFirstVictim) {
  // Two thieves on the same node must not probe the same first victim in
  // the shared remote tier.
  const auto topo = NumaTopology::synthetic(1, 2, 4);
  std::vector<int> cpu_of(8);
  for (int t = 0; t < 8; ++t) cpu_of[t] = t;
  const VictimTiers tiers(topo, cpu_of);
  // Threads 0 and 1 are on node 0; their remote tier is {4,5,6,7} rotated
  // differently.
  const auto& remote0 = tiers.tiers(0).back();
  const auto& remote1 = tiers.tiers(1).back();
  ASSERT_EQ(remote0.size(), 4u);
  ASSERT_EQ(remote1.size(), 4u);
  EXPECT_NE(remote0.front(), remote1.front());
}

TEST(VictimTiers, TierDistancesAreStrictlyIncreasing) {
  const auto topo = NumaTopology::synthetic(2, 2, 2);
  std::vector<int> cpu_of(8);
  for (int t = 0; t < 8; ++t) cpu_of[t] = t;
  const VictimTiers tiers(topo, cpu_of);
  for (int t = 0; t < 8; ++t) {
    const auto& my_tiers = tiers.tiers(t);
    for (std::size_t k = 0; k < my_tiers.size(); ++k) {
      if (k > 0) {
        EXPECT_LT(tiers.tier_distance(t, static_cast<int>(k - 1)),
                  tiers.tier_distance(t, static_cast<int>(k)));
      }
    }
    // Synthetic matrix values: 10 intra-node, 12 intra-socket, 32 cross.
    ASSERT_EQ(my_tiers.size(), 3u);
    EXPECT_EQ(tiers.tier_distance(t, 0), 10);
    EXPECT_EQ(tiers.tier_distance(t, 1), 12);
    EXPECT_EQ(tiers.tier_distance(t, 2), 32);
  }
}

TEST(VictimTiers, VictimOrderPinnedNearestFirstGroupedByNode) {
  // Pins the full victim ordering on a 2x2x2 synthetic box: tiers walk
  // strictly by ascending distance, and equal-distance victims come out
  // grouped node by node (not interleaved in raw thread-id order).
  const auto topo = NumaTopology::synthetic(2, 2, 2);  // 4 nodes, 8 cpus
  std::vector<int> cpu_of(8);
  for (int t = 0; t < 8; ++t) cpu_of[t] = t;
  const VictimTiers tiers(topo, cpu_of);

  // Thread 0 (node 0): rotation shift is 0 everywhere, so the order is the
  // canonical (node, thread) sort.
  const auto& t0 = tiers.tiers(0);
  ASSERT_EQ(t0.size(), 3u);
  EXPECT_EQ(t0[0], std::vector<int>({1}));
  EXPECT_EQ(t0[1], std::vector<int>({2, 3}));
  EXPECT_EQ(t0[2], std::vector<int>({4, 5, 6, 7}));

  // Thread 5 (node 2): same grouped order, rotated by thread id per tier.
  const auto& t5 = tiers.tiers(5);
  ASSERT_EQ(t5.size(), 3u);
  EXPECT_EQ(t5[0], std::vector<int>({4}));
  EXPECT_EQ(t5[1], std::vector<int>({7, 6}));  // {6,7} rotated by 5 % 2
  EXPECT_EQ(t5[2], std::vector<int>({1, 2, 3, 0}));  // {0,1,2,3} by 5 % 4

  // Rotation aside, every tier must remain a contiguous node grouping.
  // Walking the tier as a circle, the number of node changes equals the
  // number of distinct nodes — interleaving would add extra changes.
  for (int t = 0; t < 8; ++t) {
    for (const auto& tier : tiers.tiers(t)) {
      std::set<int> distinct;
      std::size_t changes = 0;
      for (std::size_t i = 0; i < tier.size(); ++i) {
        const int node =
            topo.node_of_cpu(cpu_of[static_cast<std::size_t>(tier[i])]);
        const int next = topo.node_of_cpu(cpu_of[static_cast<std::size_t>(
            tier[(i + 1) % tier.size()])]);
        distinct.insert(node);
        if (node != next) ++changes;
      }
      EXPECT_EQ(changes, distinct.size() > 1 ? distinct.size() : 0u)
          << "tier interleaves nodes for thread " << t;
    }
  }
}

TEST(VictimTiers, ThreadsShareCpusWhenOversubscribed) {
  // More threads than CPUs: the mapping wraps and tiers still cover all.
  const auto topo = NumaTopology::flat(2);
  std::vector<int> cpu_of = {0, 1, 0, 1, 0, 1};
  const VictimTiers tiers(topo, cpu_of);
  for (int t = 0; t < 6; ++t) {
    std::size_t total = 0;
    for (const auto& tier : tiers.tiers(t)) total += tier.size();
    EXPECT_EQ(total, 5u);
  }
}

}  // namespace
}  // namespace wasp
