// Wasp-specific tests: each §4.4 optimization individually (the Figure 7
// ablation space), each §4.2 steal policy, synthetic NUMA topologies,
// stress runs under heavy oversubscription, and instrumentation.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/sssp.hpp"
#include "sssp/validate.hpp"
#include "sssp/wasp.hpp"

namespace wasp {
namespace {

struct Fixture {
  Graph graph;
  VertexId source;
  std::vector<Distance> reference;
};

Fixture make_fixture(const Graph& g) {
  Fixture f;
  f.graph = g;
  f.source = pick_source_in_largest_component(f.graph, 7);
  f.reference = dijkstra(f.graph, f.source).dist;
  return f;
}

const Fixture& star_fixture() {
  static const Fixture f =
      make_fixture(gen::star_hub(5000, 0.93, 0.01, WeightScheme::gap(), 21));
  return f;
}

const Fixture& grid_fixture() {
  static const Fixture f = make_fixture(gen::grid(50, 50, WeightScheme::gap(), 22));
  return f;
}

const Fixture& rmat_fixture() {
  static const Fixture f = make_fixture(
      gen::rmat(12, 1 << 15, 0.57, 0.19, 0.19, WeightScheme::gap(), 23, true));
  return f;
}

void expect_correct(const Fixture& f, const SsspOptions& options,
                    const std::string& label) {
  const SsspResult r = run_sssp(f.graph, f.source, options);
  std::string message;
  ASSERT_TRUE(distances_equal(f.reference, r.dist, &message))
      << label << ": " << message;
}

// --- optimization toggles (all 8 combinations, the Fig. 7 space) ----------

using OptParam = std::tuple<bool, bool, bool>;  // LP, BR, ND

std::string opt_param_name(const testing::TestParamInfo<OptParam>& info) {
  const auto [lp, br, nd] = info.param;
  std::string name;
  name += lp ? "LP" : "lp";
  name += br ? "BR" : "br";
  name += nd ? "ND" : "nd";
  return name;
}

class WaspOptimizations : public testing::TestWithParam<OptParam> {};

TEST_P(WaspOptimizations, CorrectOnStarGraph) {
  const auto [lp, br, nd] = GetParam();
  SsspOptions options;
  options.algo = Algorithm::kWasp;
  options.threads = 4;
  options.delta = 8;
  options.wasp.leaf_pruning = lp;
  options.wasp.bidirectional_relaxation = br;
  options.wasp.neighborhood_decomposition = nd;
  options.wasp.theta = 128;  // hub degree ~4650 >> theta: decomposition fires
  expect_correct(star_fixture(), options, "star");
}

TEST_P(WaspOptimizations, CorrectOnGrid) {
  const auto [lp, br, nd] = GetParam();
  SsspOptions options;
  options.algo = Algorithm::kWasp;
  options.threads = 4;
  options.delta = 32;
  options.wasp.leaf_pruning = lp;
  options.wasp.bidirectional_relaxation = br;
  options.wasp.neighborhood_decomposition = nd;
  expect_correct(grid_fixture(), options, "grid");
}

INSTANTIATE_TEST_SUITE_P(
    AllCombinations, WaspOptimizations,
    testing::Combine(testing::Bool(), testing::Bool(), testing::Bool()),
    opt_param_name);

// --- steal policies (§4.2 ablation) ---------------------------------------

class WaspStealPolicies : public testing::TestWithParam<StealPolicy> {};

TEST_P(WaspStealPolicies, CorrectOnRmat) {
  SsspOptions options;
  options.algo = Algorithm::kWasp;
  options.threads = 6;
  options.delta = 1;
  options.wasp.steal_policy = GetParam();
  options.wasp.steal_retries = 4;
  expect_correct(rmat_fixture(), options, "rmat");
}

TEST_P(WaspStealPolicies, CorrectOnGridManyThreads) {
  SsspOptions options;
  options.algo = Algorithm::kWasp;
  options.threads = 12;  // heavy oversubscription on small machines
  options.delta = 64;
  options.wasp.steal_policy = GetParam();
  options.wasp.steal_retries = 0;  // no retries: maximally racy termination
  expect_correct(grid_fixture(), options, "grid");
}

INSTANTIATE_TEST_SUITE_P(Policies, WaspStealPolicies,
                         testing::Values(StealPolicy::kPriorityNuma,
                                         StealPolicy::kRandom,
                                         StealPolicy::kTwoChoice),
                         [](const testing::TestParamInfo<StealPolicy>& pinfo) {
                           switch (pinfo.param) {
                             case StealPolicy::kPriorityNuma: return "priority";
                             case StealPolicy::kRandom: return "random";
                             case StealPolicy::kTwoChoice: return "twochoice";
                           }
                           return "unknown";
                         });

// --- chunk capacities (compile-time instantiations) ------------------------

class WaspChunkCapacity : public testing::TestWithParam<std::uint32_t> {};

TEST_P(WaspChunkCapacity, AllInstantiationsCorrect) {
  SsspOptions options;
  options.algo = Algorithm::kWasp;
  options.threads = 4;
  options.delta = 1;
  options.wasp.chunk_capacity = GetParam();
  expect_correct(rmat_fixture(),
                 options, "chunk capacity " + std::to_string(GetParam()));
}

INSTANTIATE_TEST_SUITE_P(Capacities, WaspChunkCapacity,
                         testing::Values(16u, 32u, 64u, 128u, 256u));

TEST(WaspChunkCapacityErrors, RejectsUnsupportedCapacity) {
  SsspOptions options;
  options.algo = Algorithm::kWasp;
  options.threads = 1;
  options.wasp.chunk_capacity = 77;
  const Fixture& f = grid_fixture();
  EXPECT_THROW(run_sssp(f.graph, f.source, options), std::invalid_argument);
}

// --- synthetic NUMA topologies ---------------------------------------------

TEST(WaspNuma, SyntheticTwoSocketTopology) {
  SsspOptions options;
  options.algo = Algorithm::kWasp;
  options.threads = 8;
  options.delta = 1;
  options.wasp.topology = std::make_shared<NumaTopology>(
      NumaTopology::synthetic(2, 2, 2));  // 8 CPUs = 8 threads, 4 nodes
  expect_correct(rmat_fixture(), options, "rmat on synthetic NUMA");
}

TEST(WaspNuma, MoreThreadsThanSyntheticCpus) {
  SsspOptions options;
  options.algo = Algorithm::kWasp;
  options.threads = 10;
  options.delta = 16;
  options.wasp.topology =
      std::make_shared<NumaTopology>(NumaTopology::synthetic(2, 1, 2));
  expect_correct(grid_fixture(), options, "grid oversubscribed NUMA");
}

// --- repeated stress: racy termination must never drop work ---------------

TEST(WaspStress, RepeatedRunsStayCorrect) {
  const Fixture& f = rmat_fixture();
  for (int run = 0; run < 10; ++run) {
    SsspOptions options;
    options.algo = Algorithm::kWasp;
    options.threads = 8;
    options.delta = 1;
    options.seed = static_cast<std::uint64_t>(run);
    expect_correct(f, options, "stress run " + std::to_string(run));
  }
}

TEST(WaspStress, ChainGraphDeepBuckets) {
  // Long chains with delta=1 create ~75k consecutive priority levels —
  // stresses bucket-list growth and pour.
  const Fixture f =
      make_fixture(gen::chain_forest(2, 500, WeightScheme::gap(), 29));
  SsspOptions options;
  options.algo = Algorithm::kWasp;
  options.threads = 4;
  options.delta = 1;
  expect_correct(f, options, "chain delta=1");
}

TEST(WaspStress, LargeWeightOutlierGrowsBucketsGeometrically) {
  // One edge orders of magnitude heavier than the rest: with delta=1 its
  // relaxation lands in a sparse level ~200k buckets above everything else,
  // exercising BucketList::at's grow-straight-to-bit_ceil(level+1) path (a
  // doubling-from-current-size loop re-copies the list once per step).
  Graph g = gen::grid(40, 40, WeightScheme::uniform(1, 16), 31);
  std::vector<Edge> edges;
  for (VertexId u = 0; u < g.num_vertices(); ++u)
    for (const WEdge& e : g.out_neighbors(u)) edges.push_back({u, e.dst, e.w});
  // Attach an outlier vertex reachable only over the heavy edge.
  const VertexId outlier = g.num_vertices();
  edges.push_back({0, outlier, 200'000});
  edges.push_back({outlier, 0, 200'000});
  const Fixture f =
      make_fixture(Graph::from_edges(outlier + 1, edges, /*undirected=*/false));

  SsspOptions options;
  options.algo = Algorithm::kWasp;
  options.threads = 4;
  options.delta = 1;
  expect_correct(f, options, "weight outlier delta=1");
}

// --- instrumentation -------------------------------------------------------

TEST(WaspStats, StealsHappenWithManyThreads) {
  // A star hub with neighborhood decomposition: the hub's ~120k-edge
  // adjacency is split into ~120 range chunks that sit in the owner's deque
  // while it processes them one by one — a wide window in which other
  // workers can steal, even on a single-core machine where threads only
  // interleave via preemption.
  const Fixture f =
      make_fixture(gen::star_hub(1 << 17, 0.93, 0.01, WeightScheme::gap(), 31));
  SsspOptions options;
  options.algo = Algorithm::kWasp;
  options.threads = 8;
  options.delta = 16;
  options.wasp.theta = 1024;
  // On a single-core machine a successful steal depends on the owner being
  // preempted mid-bucket; retry several runs before concluding anything.
  std::uint64_t steals = 0;
  std::uint64_t attempts = 0;
  for (int attempt = 0; attempt < 15 && steals == 0; ++attempt) {
    const SsspResult r = run_sssp(f.graph, f.source, options);
    steals = r.stats.steals;
    attempts = r.stats.steal_attempts;
    EXPECT_GT(r.stats.relaxations, 0u);
    std::string message;
    ASSERT_TRUE(distances_equal(f.reference, r.dist, &message)) << message;
  }
  EXPECT_GT(attempts, 0u);
  if (steals == 0 && hardware_threads() == 1) {
    // With one hardware thread, a run short enough to fit in a scheduler
    // timeslice can legitimately complete before any worker wakes. The
    // stealing machinery itself is covered deterministically by
    // DequeStress.* and WaspStealPolicies.*.
    GTEST_SKIP() << "no preemption observed on a single-core machine";
  }
  EXPECT_GT(steals, 0u);
}

TEST(WaspStats, SingleThreadNeverSteals) {
  SsspOptions options;
  options.algo = Algorithm::kWasp;
  options.threads = 1;
  options.delta = 16;
  const Fixture& f = grid_fixture();
  const SsspResult r = run_sssp(f.graph, f.source, options);
  EXPECT_EQ(r.stats.steals, 0u);
  std::string message;
  EXPECT_TRUE(distances_equal(f.reference, r.dist, &message)) << message;
}

TEST(WaspLeafPruning, LeavesGetFinalDistances) {
  // Leaf pruning must still produce exact distances for the leaves
  // themselves (they are relaxed, just never scheduled).
  const Fixture& f = star_fixture();
  SsspOptions options;
  options.algo = Algorithm::kWasp;
  options.threads = 4;
  options.delta = 4;
  options.wasp.leaf_pruning = true;
  const SsspResult r = run_sssp(f.graph, f.source, options);
  const auto leaf = compute_leaf_bitmap(f.graph);
  for (VertexId v = 0; v < f.graph.num_vertices(); ++v) {
    if (leaf[v]) {
      ASSERT_EQ(r.dist[v], f.reference[v]) << "leaf " << v;
    }
  }
}

TEST(WaspStats, OccupancyCountersPopulated) {
  // With several workers and a sparse graph there is always some stealing
  // and some terminal idling; both phase timers must be non-zero and the
  // stale-skip counter must register the redundant entries delta
  // coarsening creates.
  const Fixture& f = grid_fixture();
  SsspOptions options;
  options.algo = Algorithm::kWasp;
  options.threads = 6;
  options.delta = 1024;
  const SsspResult r = run_sssp(f.graph, f.source, options);
  EXPECT_GT(r.stats.steal_ns + r.stats.idle_ns, 0u);
  std::string message;
  EXPECT_TRUE(distances_equal(f.reference, r.dist, &message)) << message;
}

TEST(WaspValidate, PassesFixedPointValidation) {
  const Fixture& f = rmat_fixture();
  SsspOptions options;
  options.algo = Algorithm::kWasp;
  options.threads = 4;
  options.delta = 2;
  const SsspResult r = run_sssp(f.graph, f.source, options);
  std::string message;
  EXPECT_TRUE(validate_sssp(f.graph, f.source, r.dist, &message)) << message;
}

}  // namespace
}  // namespace wasp
