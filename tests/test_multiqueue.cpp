// Tests for the MultiQueue relaxed priority queue: sequential semantics,
// buffering, rank relaxation bounds, instrumentation, and concurrent
// exactly-once consumption.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <vector>

#include "concurrent/multiqueue.hpp"
#include "support/thread_team.hpp"

namespace wasp {
namespace {

MultiQueue::Config config_for(int threads, int buffer = 4) {
  MultiQueue::Config c;
  c.threads = threads;
  c.c = 2;
  c.stickiness = 4;
  c.buffer_size = buffer;
  c.seed = 7;
  return c;
}

TEST(MultiQueue, SingleThreadPopsEverything) {
  MultiQueue mq(config_for(1));
  for (VertexId v = 0; v < 100; ++v) mq.push(0, 1000 - v, v);
  std::set<VertexId> seen;
  Distance d;
  VertexId v;
  while (mq.try_pop(0, d, v)) {
    EXPECT_EQ(d, 1000 - v);
    EXPECT_TRUE(seen.insert(v).second);
  }
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(mq.size_estimate(), 0);
}

TEST(MultiQueue, PopOrderIsApproximatelySorted) {
  // With a single thread and c=2 there are 2 internal queues; the two-choice
  // rule bounds how far pops stray from the global minimum.
  MultiQueue mq(config_for(1, /*buffer=*/1));
  for (VertexId v = 0; v < 1000; ++v) mq.push(0, v, v);
  Distance prev_max = 0;
  Distance d;
  VertexId v;
  std::vector<Distance> popped;
  while (mq.try_pop(0, d, v)) popped.push_back(d);
  ASSERT_EQ(popped.size(), 1000u);
  // Relaxed, not sorted — but the sequence must trend upward: the max
  // rank error for 2 queues is small, so the i-th pop is near i.
  for (std::size_t i = 0; i < popped.size(); ++i) {
    EXPECT_LE(popped[i], i + 600) << "pop " << i << " strayed too far";
    prev_max = std::max(prev_max, popped[i]);
  }
  EXPECT_EQ(prev_max, 999u);
}

TEST(MultiQueue, FlushMakesBufferedElementsVisible) {
  MultiQueue mq(config_for(2, /*buffer=*/16));
  mq.push(0, 5, 50);  // sits in thread 0's insertion buffer
  EXPECT_EQ(mq.size_estimate(), 1);
  mq.flush(0);
  Distance d;
  VertexId v;
  // Thread 1 can now pop it.
  ASSERT_TRUE(mq.try_pop(1, d, v));
  EXPECT_EQ(d, 5u);
  EXPECT_EQ(v, 50u);
}

TEST(MultiQueue, TryPopFlushesOwnBuffer) {
  MultiQueue mq(config_for(1, /*buffer=*/16));
  mq.push(0, 9, 90);  // buffered, never explicitly flushed
  Distance d;
  VertexId v;
  ASSERT_TRUE(mq.try_pop(0, d, v));
  EXPECT_EQ(v, 90u);
  EXPECT_FALSE(mq.try_pop(0, d, v));
}

TEST(MultiQueue, QueueOpTimeAccumulates) {
  MultiQueue mq(config_for(1, /*buffer=*/2));
  for (VertexId v = 0; v < 1000; ++v) mq.push(0, v, v);
  Distance d;
  VertexId v;
  while (mq.try_pop(0, d, v)) {
  }
  EXPECT_GT(mq.queue_op_ns(0), 0u);
}

TEST(MultiQueue, InternalQueueCount) {
  MultiQueue mq(config_for(4));
  EXPECT_EQ(mq.num_internal_queues(), 8);  // c * p
}

TEST(MultiQueue, ConcurrentExactlyOnce) {
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  MultiQueue mq(config_for(kThreads));
  std::vector<std::atomic<int>> consumed(kThreads * kPerThread);
  for (auto& c : consumed) c.store(0);
  std::atomic<std::int64_t> popped_total{0};

  ThreadTeam team(kThreads);
  team.run([&](int tid) {
    // Each thread pushes its own block, then everyone drains.
    for (int i = 0; i < kPerThread; ++i) {
      const auto v = static_cast<VertexId>(tid * kPerThread + i);
      mq.push(tid, v % 1024, v);
    }
    mq.flush(tid);
    Distance d;
    VertexId v;
    for (;;) {
      if (mq.try_pop(tid, d, v)) {
        EXPECT_EQ(consumed[v].fetch_add(1, std::memory_order_acq_rel), 0);
        popped_total.fetch_add(1, std::memory_order_acq_rel);
      } else if (mq.size_estimate() == 0) {
        break;
      }
    }
  });

  EXPECT_EQ(popped_total.load(), kThreads * kPerThread);
  for (auto& c : consumed) EXPECT_EQ(c.load(), 1);
}

}  // namespace
}  // namespace wasp
