// Incremental SSSP repair over versioned graphs (graph/delta.hpp +
// sssp/incremental.hpp): the correctness anchor is bit-identical distances
// vs a from-scratch solve after every batch, across seeded randomized batch
// streams (decrease-only, increase-only, mixed, structural insert/erase) on
// the four ISSUE graph shapes plus a directed R-MAT (which exercises the
// cached-transpose boundary walk). Also pins the VersionedGraph contract
// (atomic validation, journal semantics, compaction on demand), every
// warm-state fallback path, and the QueryService update gate: concurrent
// update-vs-query streams where every served answer must match the
// reference distances of exactly the graph version it reports.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "graph/builder.hpp"
#include "graph/delta.hpp"
#include "graph/generators.hpp"
#include "service/service.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/incremental.hpp"
#include "support/cancel.hpp"
#include "support/errors.hpp"
#include "support/random.hpp"

namespace wasp {
namespace {

SsspOptions test_options() {
  SsspOptions options;
  options.algo = Algorithm::kWasp;
  options.threads = 2;
  options.delta = 16;
  return options;
}

/// The four ISSUE shapes (all undirected) plus a directed R-MAT, small
/// enough for a per-batch Dijkstra cross-check under TSan.
Graph make_shape(const std::string& name) {
  const WeightScheme ws = WeightScheme::uniform(1, 100);
  if (name == "grid") return gen::grid(28, 28, ws, 11);
  if (name == "chain") return gen::chain_forest(6, 250, ws, 13);
  if (name == "er") return gen::erdos_renyi(1600, 6.0, ws, 17);
  if (name == "star") return gen::star_hub(1600, 0.3, 0.3, ws, 19);
  if (name == "rmat_dir")
    return gen::rmat(10, 8192, 0.57, 0.19, 0.19, ws, 23, /*undirected=*/false);
  ADD_FAILURE() << "unknown shape " << name;
  return gen::grid(2, 2, ws, 1);
}

VertexId pick_source(const VersionedGraph& vg) {
  for (VertexId u = 0; u < vg.num_vertices(); ++u)
    if (!vg.out_neighbors(u).empty()) return u;
  return 0;
}

enum class Mode { kDecrease, kIncrease, kMixed, kStructural };

const char* to_name(Mode m) {
  switch (m) {
    case Mode::kDecrease: return "decrease";
    case Mode::kIncrease: return "increase";
    case Mode::kMixed: return "mixed";
    case Mode::kStructural: return "structural";
  }
  return "?";
}

struct ArcSample {
  VertexId u = 0;
  WEdge e{};
};

bool sample_arc(const VersionedGraph& vg, Xoshiro256& rng, ArcSample* out) {
  for (int tries = 0; tries < 256; ++tries) {
    const auto u = static_cast<VertexId>(rng.next_below(vg.num_vertices()));
    const auto adj = vg.out_neighbors(u);
    if (adj.empty()) continue;
    out->u = u;
    out->e = adj[rng.next_below(adj.size())];
    return true;
  }
  return false;
}

/// Logical-edge key: undirected graphs store both arcs, so normalize to one
/// orientation — each batch touches a logical edge at most once (apply()
/// would otherwise see a set_weight or erase racing its own staged erase).
std::pair<VertexId, VertexId> edge_key(const VersionedGraph& vg, VertexId u,
                                       VertexId v) {
  if (vg.is_undirected() && v < u) std::swap(u, v);
  return {u, v};
}

GraphDelta random_batch(const VersionedGraph& vg, Mode mode, Xoshiro256& rng,
                        int ops) {
  GraphDelta delta;
  std::set<std::pair<VertexId, VertexId>> used;
  const VertexId n = vg.num_vertices();
  for (int op = 0; op < ops; ++op) {
    if (mode == Mode::kStructural && op % 2 == 1) {
      // Insert a fresh arc between random distinct vertices (parallel arcs
      // are allowed, so only intra-batch key reuse needs avoiding).
      for (int tries = 0; tries < 64; ++tries) {
        const auto u = static_cast<VertexId>(rng.next_below(n));
        const auto v = static_cast<VertexId>(rng.next_below(n));
        if (u == v || !used.insert(edge_key(vg, u, v)).second) continue;
        delta.insert(u, v, static_cast<Weight>(1 + rng.next_below(100)));
        break;
      }
      continue;
    }
    ArcSample s;
    if (!sample_arc(vg, rng, &s)) continue;
    if (!used.insert(edge_key(vg, s.u, s.e.dst)).second) continue;
    const bool decrease = mode == Mode::kDecrease ||
                          (mode == Mode::kMixed && op % 2 == 0);
    if (mode == Mode::kStructural) {
      delta.erase(s.u, s.e.dst);
    } else if (decrease) {
      const auto cap = std::max<Weight>(1, s.e.w);
      delta.set_weight(s.u, s.e.dst,
                       static_cast<Weight>(1 + rng.next_below(cap)));
    } else {
      delta.set_weight(
          s.u, s.e.dst,
          static_cast<Weight>(s.e.w + 1 + rng.next_below(100)));
    }
  }
  return delta;
}

// --- randomized batch streams: bit-identical repair on every shape --------

struct StreamCase {
  const char* shape;
  Mode mode;
};

std::string stream_name(const testing::TestParamInfo<StreamCase>& info) {
  return std::string(info.param.shape) + "_" + to_name(info.param.mode);
}

class IncrementalStream : public testing::TestWithParam<StreamCase> {};

TEST_P(IncrementalStream, BitIdenticalToFromScratchAfterEveryBatch) {
  const StreamCase& p = GetParam();
  VersionedGraph vg(make_shape(p.shape));
  const VertexId source = pick_source(vg);

  IncrementalSolver inc(test_options());
  const std::vector<Distance>& first = inc.solve(vg, source);
  EXPECT_TRUE(inc.last_repair().full_solve);
  ASSERT_EQ(dijkstra(vg.graph(), source).dist, first);

  Xoshiro256 rng(0xD17AULL * (1 + static_cast<std::uint64_t>(p.mode)) +
                 std::string(p.shape).size());
  int incremental = 0;
  const int batches = 8;
  for (int b = 0; b < batches; ++b) {
    const GraphDelta delta = random_batch(vg, p.mode, rng, 12);
    if (delta.empty()) continue;
    (void)vg.apply(delta);

    const std::vector<Distance>& repaired = inc.solve(vg, source);
    if (!inc.last_repair().full_solve) ++incremental;
    const SsspResult reference = dijkstra(vg.graph(), source);
    ASSERT_EQ(reference.dist, repaired)
        << p.shape << "/" << to_name(p.mode) << " batch " << b;
  }
  // The warm path must actually be the one under test, not a silent
  // full-solve fallback on every batch.
  EXPECT_GT(incremental, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, IncrementalStream,
    testing::Values(StreamCase{"grid", Mode::kDecrease},
                    StreamCase{"grid", Mode::kIncrease},
                    StreamCase{"grid", Mode::kMixed},
                    StreamCase{"grid", Mode::kStructural},
                    StreamCase{"chain", Mode::kDecrease},
                    StreamCase{"chain", Mode::kIncrease},
                    StreamCase{"chain", Mode::kMixed},
                    StreamCase{"chain", Mode::kStructural},
                    StreamCase{"er", Mode::kDecrease},
                    StreamCase{"er", Mode::kIncrease},
                    StreamCase{"er", Mode::kMixed},
                    StreamCase{"er", Mode::kStructural},
                    StreamCase{"star", Mode::kDecrease},
                    StreamCase{"star", Mode::kIncrease},
                    StreamCase{"star", Mode::kMixed},
                    StreamCase{"star", Mode::kStructural},
                    StreamCase{"rmat_dir", Mode::kDecrease},
                    StreamCase{"rmat_dir", Mode::kIncrease},
                    StreamCase{"rmat_dir", Mode::kMixed},
                    StreamCase{"rmat_dir", Mode::kStructural}),
    stream_name);

// --- VersionedGraph / GraphDelta contract ---------------------------------

Graph tiny_graph() {
  // 0-1-2-3 path plus a 0-3 chord; undirected.
  return GraphBuilder()
      .edges(4, {{0, 1, 4}, {1, 2, 3}, {2, 3, 2}, {0, 3, 20}})
      .undirected(true)
      .build();
}

TEST(IncrementalDelta, ApplyBumpsVersionAndJournalsBothArcs) {
  VersionedGraph vg(tiny_graph());
  EXPECT_EQ(vg.version(), 1u);

  GraphDelta delta;
  delta.set_weight(1, 2, 9);
  EXPECT_EQ(vg.apply(delta), 2u);
  EXPECT_FALSE(vg.dirty());  // weight-only never stages an overlay

  const auto jv = vg.journal_since(1);
  ASSERT_TRUE(jv.ok);
  ASSERT_EQ(jv.effects.size(), 2u);  // undirected: both stored arcs
  for (const ArcEffect& e : jv.effects) {
    EXPECT_EQ(e.old_w, 3u);
    EXPECT_EQ(e.new_w, 9u);
    EXPECT_TRUE(e.is_increase());
    EXPECT_FALSE(e.is_decrease());
  }
  for (const WEdge& e : vg.out_neighbors(1)) {
    if (e.dst == 2) {
      EXPECT_EQ(e.w, 9u);
    }
  }
}

TEST(IncrementalDelta, EmptyBatchIsANoOp) {
  VersionedGraph vg(tiny_graph());
  EXPECT_EQ(vg.apply(GraphDelta{}), 1u);
  const auto jv = vg.journal_since(1);
  EXPECT_TRUE(jv.ok);
  EXPECT_TRUE(jv.effects.empty());
}

TEST(IncrementalDelta, ValidationRejectsTheWholeBatchBeforeMutating) {
  VersionedGraph vg(tiny_graph());

  GraphDelta bad_range;
  bad_range.set_weight(1, 2, 7).set_weight(0, 99, 1);
  EXPECT_THROW(vg.apply(bad_range), InvalidGraphError);
  // The valid leading op must not have leaked through.
  EXPECT_EQ(vg.version(), 1u);
  for (const WEdge& e : vg.out_neighbors(1)) {
    if (e.dst == 2) {
      EXPECT_EQ(e.w, 3u);
    }
  }

  GraphDelta self_loop;
  self_loop.insert(2, 2, 1);
  EXPECT_THROW(vg.apply(self_loop), InvalidGraphError);

  GraphDelta missing;
  missing.set_weight(0, 2, 5);  // no (0, 2) edge
  EXPECT_THROW(vg.apply(missing), InvalidGraphError);

  GraphDelta gone;
  gone.erase(0, 2);
  EXPECT_THROW(vg.apply(gone), InvalidGraphError);

  // Erasing an edge staged by the same batch's insert is legal (validation
  // tracks the batch's own structural changes)...
  GraphDelta insert_then_erase;
  insert_then_erase.insert(0, 2, 5).erase(0, 2);
  EXPECT_EQ(vg.apply(insert_then_erase), 2u);
  // ...but touching an edge the batch already erased is not.
  GraphDelta erase_then_touch;
  erase_then_touch.erase(0, 1).set_weight(0, 1, 9);
  EXPECT_THROW(vg.apply(erase_then_touch), InvalidGraphError);
  EXPECT_EQ(vg.version(), 2u);
}

TEST(IncrementalDelta, StructuralOverlayCompactsOnDemand) {
  VersionedGraph vg(tiny_graph());
  const EdgeIndex base_edges = vg.num_edges();

  GraphDelta add;
  add.insert(0, 2, 6);
  (void)vg.apply(add);
  EXPECT_TRUE(vg.dirty());
  EXPECT_EQ(vg.num_edges(), base_edges + 2);  // both stored arcs
  bool found = false;
  for (const WEdge& e : vg.out_neighbors(0))
    if (e.dst == 2 && e.w == 6) found = true;
  EXPECT_TRUE(found);

  EXPECT_EQ(vg.compactions(), 0u);
  const Graph& flat = vg.graph();  // compacts
  EXPECT_FALSE(vg.dirty());
  EXPECT_EQ(vg.compactions(), 1u);
  EXPECT_EQ(flat.num_edges(), base_edges + 2);

  GraphDelta remove;
  remove.erase(0, 2);
  (void)vg.apply(remove);
  EXPECT_TRUE(vg.dirty());
  vg.compact();
  EXPECT_EQ(vg.compactions(), 2u);
  EXPECT_EQ(vg.num_edges(), base_edges);
}

TEST(IncrementalDelta, JournalTrimRaisesTheFloor) {
  VersionedGraph vg(tiny_graph());
  vg.set_journal_limit(2);  // roughly one undirected weight change
  for (int i = 0; i < 3; ++i) {
    GraphDelta d;
    d.set_weight(1, 2, static_cast<Weight>(5 + i));
    (void)vg.apply(d);
  }
  EXPECT_EQ(vg.version(), 4u);
  EXPECT_GT(vg.journal_floor(), 1u);
  EXPECT_FALSE(vg.journal_since(1).ok);
  EXPECT_TRUE(vg.journal_since(vg.version()).ok);
  EXPECT_FALSE(vg.journal_since(vg.version() + 1).ok);
}

// --- warm-state fallback paths --------------------------------------------

TEST(IncrementalWarm, UnchangedVersionIsServedWithoutResolving) {
  VersionedGraph vg(make_shape("er"));
  IncrementalSolver inc(test_options());
  const std::vector<Distance> first = inc.solve(vg, 3);
  EXPECT_TRUE(inc.last_repair().full_solve);

  const std::vector<Distance>& again = inc.solve(vg, 3);
  EXPECT_FALSE(inc.last_repair().full_solve);
  EXPECT_EQ(inc.last_repair().batches, 0u);
  EXPECT_EQ(first, again);
}

TEST(IncrementalWarm, SourceChangeFallsBackToFullSolve) {
  VersionedGraph vg(make_shape("er"));
  IncrementalSolver inc(test_options());
  (void)inc.solve(vg, 3);
  const std::vector<Distance>& other = inc.solve(vg, 7);
  EXPECT_TRUE(inc.last_repair().full_solve);
  EXPECT_EQ(dijkstra(vg.graph(), 7).dist, other);
}

TEST(IncrementalWarm, JournalTrimForcesFullSolve) {
  VersionedGraph vg(make_shape("grid"));
  vg.set_journal_limit(0);  // every batch is immediately unreachable
  IncrementalSolver inc(test_options());
  const VertexId source = pick_source(vg);
  (void)inc.solve(vg, source);

  GraphDelta d;
  d.set_weight(0, 1, 77);
  (void)vg.apply(d);
  const std::vector<Distance>& dist = inc.solve(vg, source);
  EXPECT_TRUE(inc.last_repair().full_solve);
  EXPECT_EQ(dijkstra(vg.graph(), source).dist, dist);
}

TEST(IncrementalWarm, ForeignSolverUseColdsTheWarmState) {
  VersionedGraph vg(make_shape("er"));
  IncrementalSolver inc(test_options());
  const VertexId source = pick_source(vg);
  (void)inc.solve(vg, source);

  // Using the owned Solver directly bumps the pool epoch: the warm contract
  // is broken and the next solve must detect it instead of repairing on top
  // of someone else's distances.
  Graph other = make_shape("grid");
  (void)inc.solver().solve(other, 0);

  Xoshiro256 rng(5);
  GraphDelta batch;
  while (batch.empty()) batch = random_batch(vg, Mode::kMixed, rng, 4);
  (void)vg.apply(batch);

  const std::vector<Distance>& dist = inc.solve(vg, source);
  EXPECT_TRUE(inc.last_repair().full_solve);
  EXPECT_EQ(dijkstra(vg.graph(), source).dist, dist);
}

TEST(IncrementalWarm, CancelledRepairThrowsAndLeavesSolverReusable) {
  VersionedGraph vg(make_shape("er"));
  IncrementalSolver inc(test_options());
  const VertexId source = pick_source(vg);
  (void)inc.solve(vg, source);

  Xoshiro256 rng(9);
  (void)vg.apply(random_batch(vg, Mode::kMixed, rng, 8));

  CancelToken token;
  token.request_cancel(CancelReason::kUser);
  inc.options().cancel = &token;
  EXPECT_THROW((void)inc.solve(vg, source), SolveCancelledError);

  inc.options().cancel = nullptr;
  const std::vector<Distance>& dist = inc.solve(vg, source);
  EXPECT_TRUE(inc.last_repair().full_solve);  // warm state was discarded
  EXPECT_EQ(dijkstra(vg.graph(), source).dist, dist);
}

TEST(IncrementalWarm, UidIsProcessUniqueAndMoveAware) {
  VersionedGraph a(make_shape("grid"));
  VersionedGraph b(make_shape("grid"));
  EXPECT_NE(a.uid(), b.uid());
  const std::uint64_t a_uid = a.uid();
  VersionedGraph c = std::move(a);
  EXPECT_EQ(c.uid(), a_uid);  // identity travels with the content
  EXPECT_NE(a.uid(), a_uid);  // the moved-from husk is re-stamped
  EXPECT_NE(a.uid(), c.uid());
}

TEST(IncrementalWarm, GraphRebuiltAtSameAddressFallsBackToFullSolve) {
  VersionedGraph vg(make_shape("er"));
  IncrementalSolver inc(test_options());
  const VertexId source = pick_source(vg);
  (void)inc.solve(vg, source);

  // Allocator-reuse ABA: a *different* graph takes over the bound object's
  // address (move-assignment re-stamps vg in place) with the same vertex
  // count, an untouched pool epoch, and a version no older than the bound
  // one — everything an address + version heuristic would mistake for warm
  // state. Only the uid tells them apart.
  VersionedGraph other(
      gen::erdos_renyi(1600, 6.0, WeightScheme::uniform(1, 100), 99));
  Xoshiro256 rng(5);
  (void)other.apply(random_batch(other, Mode::kMixed, rng, 6));
  ASSERT_GE(other.version(), vg.version());
  vg = std::move(other);

  const std::vector<Distance>& dist = inc.solve(vg, source);
  EXPECT_TRUE(inc.last_repair().full_solve);  // uid mismatch forces cold
  EXPECT_EQ(dijkstra(vg.graph(), source).dist, dist);
}

// --- QueryService update gate: concurrent update-vs-query ------------------

service::ServiceConfig service_config() {
  service::ServiceConfig cfg;
  cfg.solver = test_options();
  cfg.num_solvers = 2;
  cfg.queue_capacity = 32;
  cfg.stale_cache_entries = 8;
  return cfg;
}

TEST(IncrementalService, ConcurrentUpdatesAndQueriesStayVersionConsistent) {
  VersionedGraph vg(
      gen::erdos_renyi(1200, 5.0, WeightScheme::uniform(1, 64), 41));
  service::QueryService svc(service_config());

  const std::vector<VertexId> sources = {3, 57, 211};
  // Reference distances per (version, source), computed by the updater
  // thread while it alone may mutate the graph (queries only read).
  std::map<std::pair<std::uint64_t, VertexId>, std::vector<Distance>> refs;
  for (const VertexId s : sources)
    refs[{vg.version(), s}] = dijkstra(vg.graph(), s).dist;

  std::thread updater([&] {
    Xoshiro256 rng(77);
    for (int k = 0; k < 5; ++k) {
      const GraphDelta delta = random_batch(vg, Mode::kMixed, rng, 10);
      if (delta.empty()) continue;
      const std::uint64_t v = svc.update(vg, delta);
      for (const VertexId s : sources)
        refs[{v, s}] = dijkstra(vg.graph(), s).dist;
    }
  });

  struct Observed {
    VertexId source;
    service::QueryResult result;
  };
  std::vector<std::vector<Observed>> observed(2);
  std::vector<std::thread> clients;
  for (int t = 0; t < 2; ++t) {
    clients.emplace_back([&, t] {
      for (int q = 0; q < 12; ++q) {
        const VertexId s = sources[static_cast<std::size_t>(q + t) %
                                   sources.size()];
        observed[static_cast<std::size_t>(t)].push_back(
            {s, svc.solve(vg, {.source = s})});
      }
    });
  }
  for (std::thread& c : clients) c.join();
  updater.join();
  svc.shutdown();

  // Every served answer must be exactly the reference of the version it
  // claims to reflect — the update gate guarantees no run straddles a batch.
  int served = 0;
  for (const auto& per_thread : observed) {
    for (const Observed& o : per_thread) {
      ASSERT_EQ(o.result.outcome, service::Outcome::kServed);
      ++served;
      const auto it = refs.find({o.result.graph_version, o.source});
      ASSERT_NE(it, refs.end())
          << "answer at unknown version " << o.result.graph_version;
      EXPECT_EQ(it->second, o.result.dist)
          << "source " << o.source << " version " << o.result.graph_version;
    }
  }
  EXPECT_EQ(served, 24);
}

TEST(IncrementalService, MinGraphVersionGatesSubmitsAndStampsResults) {
  VersionedGraph vg(
      gen::erdos_renyi(800, 5.0, WeightScheme::uniform(1, 64), 43));
  service::QueryService svc(service_config());

  EXPECT_THROW(
      (void)svc.submit(vg, {.source = 1, .min_graph_version = vg.version() + 5}),
      InvalidOptionsError);

  const service::QueryResult r =
      svc.solve(vg, {.source = 1, .min_graph_version = vg.version()});
  ASSERT_EQ(r.outcome, service::Outcome::kServed);
  EXPECT_GE(r.graph_version, vg.version());
  EXPECT_EQ(dijkstra(vg.graph(), 1).dist, r.dist);
}

TEST(IncrementalService, UpdateRepairsCachedAnswersInsteadOfDroppingThem) {
  VersionedGraph vg(
      gen::erdos_renyi(1000, 5.0, WeightScheme::uniform(1, 64), 47));
  service::QueryService svc(service_config());

  // Seed the stale cache with a served answer at version 1.
  ASSERT_EQ(svc.solve(vg, {.source = 5}).outcome, service::Outcome::kServed);

  Xoshiro256 rng(51);
  // First update: the service repairer full-solves the cached entry to bind
  // its warm state; second update repairs the bound entry incrementally.
  (void)svc.update(vg, random_batch(vg, Mode::kMixed, rng, 8));
  (void)svc.update(vg, random_batch(vg, Mode::kMixed, rng, 8));
  EXPECT_GE(svc.metrics().counter(obs::CounterId::kRepairBatches), 1u);

  // A structural batch through the service compacts inside the gate.
  (void)svc.update(vg, random_batch(vg, Mode::kStructural, rng, 6));
  EXPECT_GE(svc.metrics().counter(obs::CounterId::kGraphCompactions), 1u);

  const service::QueryResult fresh = svc.solve(vg, {.source = 5});
  ASSERT_EQ(fresh.outcome, service::Outcome::kServed);
  EXPECT_EQ(fresh.graph_version, vg.version());
  EXPECT_EQ(dijkstra(vg.graph(), 5).dist, fresh.dist);
}

}  // namespace
}  // namespace wasp
