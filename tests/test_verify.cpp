// Tests for the concurrency verification suite (src/verify/): the
// happens-before / weak-memory model, the plain-access race checker, and
// the Wing–Gong linearizability harness over Wasp's concurrent containers.
//
// The harness tests double as the kill mechanism for the memory-order
// mutation tester (tools/lint/atomics_audit.py): under WASP_VERIFY they
// drive each structure through hundreds of seeded sessions in which loads
// may legally return stale values, so a weakened release/acquire/seq_cst
// annotation surfaces as a linearizability violation, a reported data race,
// or broken conservation. In default builds the same harnesses still run as
// plain-hardware stress tests with linearizability checking (the model
// layer folds away); tests that *require* weak behaviors to be observable
// are compiled only under WASP_VERIFY_ENABLED.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "concurrent/chase_lev_deque.hpp"
#include "concurrent/chunk.hpp"
#include "concurrent/frontier_bag.hpp"
#include "concurrent/multiqueue.hpp"
#include "concurrent/spinlock.hpp"
#include "concurrent/stealing_multiqueue.hpp"
#include "support/chaos.hpp"
#include "support/random.hpp"
#include "verify/checked_atomic.hpp"
#include "verify/context.hpp"
#include "verify/linearize.hpp"

namespace wasp {
namespace {

#if defined(WASP_VERIFY_ENABLED) && WASP_VERIFY_ENABLED
constexpr bool kModelOn = true;
constexpr int kHarnessSeeds = 500;  // seeded histories per structure
#else
constexpr bool kModelOn = false;
constexpr int kHarnessSeeds = 60;  // plain stress flavor: keep tier-1 fast
#endif

using verify::BagSpec;
using verify::DequeSpec;
using verify::HistoryRecorder;
using verify::linearize;
using verify::Op;
using verify::PoolSpec;
using verify::Session;

/// Runs `fn(tid)` on `threads` std::threads, each bound to `session` and to
/// a chaos engine stream, mirroring how sssp drivers install both.
template <typename Fn>
void run_bound(Session& session, chaos::Engine* engine, int threads, Fn fn) {
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      chaos::ScopedInstall chaos_guard(engine, t);
      verify::ScopedBind bind(&session, t);
      fn(t);
    });
  }
  for (auto& th : pool) th.join();
}

/// Spin barrier built from checked atomics, so phase separation is visible
/// to the happens-before model (a pthread barrier would order the real
/// execution but leave no edge in the model).
class ModelBarrier {
 public:
  explicit ModelBarrier(int n) : n_(n) {}

  void wait() {
    const int ph = phase_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) == n_ - 1) {
      arrived_.store(0, std::memory_order_relaxed);
      phase_.store(ph + 1, std::memory_order_release);
    } else {
      while (phase_.load(std::memory_order_acquire) == ph) {
        std::this_thread::yield();
      }
    }
  }

 private:
  const int n_;
  verify::atomic<int> arrived_{0};
  verify::atomic<int> phase_{0};
};

/// Seed range for the harness loops: all of [0, kHarnessSeeds) normally, or
/// exactly the one seed named by WASP_VERIFY_SEED=<n> — every harness
/// failure message prints the seed, so a reported failure replays with that
/// seed pinned here (schedules and stale-load choices are deterministic per
/// seed).
struct SeedRange {
  std::uint64_t first = 0;
  std::uint64_t last = kHarnessSeeds;  ///< exclusive
};

SeedRange harness_seeds() {
  SeedRange r;
  if (const char* pin = std::getenv("WASP_VERIFY_SEED")) {
    r.first = std::strtoull(pin, nullptr, 10);
    r.last = r.first + 1;
  }
  return r;
}

Session::Options session_options(int threads, std::uint64_t seed) {
  Session::Options o;
  o.threads = threads;
  o.seed = seed;
  return o;
}

// --- linearizability checker self-tests (flavor independent) --------------

Op mk(int tid, int kind, std::uint64_t a, std::uint64_t r, bool ok,
      std::uint64_t inv, std::uint64_t res) {
  Op op;
  op.tid = tid;
  op.kind = kind;
  op.a = a;
  op.r = r;
  op.ok = ok;
  op.inv = inv;
  op.res = res;
  return op;
}

TEST(Linearize, AcceptsSequentialDequeHistory) {
  std::vector<std::vector<Op>> h(2);
  h[0] = {mk(0, DequeSpec::kPush, 1, 0, true, 0, 1),
          mk(0, DequeSpec::kPush, 2, 0, true, 2, 3)};
  h[1] = {mk(1, DequeSpec::kSteal, 0, 1, true, 4, 5)};
  EXPECT_TRUE(linearize<DequeSpec>(h).ok);
}

TEST(Linearize, RejectsStealFromWrongEnd) {
  // push(1); push(2); then a steal that returns 2: FIFO order violated, and
  // the operations do not overlap, so no reordering can save it.
  std::vector<std::vector<Op>> h(2);
  h[0] = {mk(0, DequeSpec::kPush, 1, 0, true, 0, 1),
          mk(0, DequeSpec::kPush, 2, 0, true, 2, 3)};
  h[1] = {mk(1, DequeSpec::kSteal, 0, 2, true, 4, 5)};
  const auto r = linearize<DequeSpec>(h);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.explanation.find("not linearizable"), std::string::npos);
}

TEST(Linearize, RejectsNullPopOnNonEmptyDeque) {
  std::vector<std::vector<Op>> h(1);
  h[0] = {mk(0, DequeSpec::kPush, 7, 0, true, 0, 1),
          mk(0, DequeSpec::kPopBottom, 0, 0, false, 2, 3)};
  EXPECT_FALSE(linearize<DequeSpec>(h).ok);
}

TEST(Linearize, AllowsOverlappingReorder) {
  // pop_bottom -> 2 responds before push(2) "happened" in program-text
  // order of the other thread, but the ops overlap, so a valid
  // linearization (push(1); push(2); pop->2) exists.
  std::vector<std::vector<Op>> h(2);
  h[0] = {mk(0, DequeSpec::kPush, 1, 0, true, 0, 1),
          mk(0, DequeSpec::kPush, 2, 0, true, 2, 6)};
  h[1] = {mk(1, DequeSpec::kPopBottom, 0, 2, true, 3, 5)};
  EXPECT_TRUE(linearize<DequeSpec>(h).ok);
}

TEST(Linearize, BagRejectsInventedElement) {
  std::vector<std::vector<Op>> h(1);
  Op pop = mk(0, BagSpec::kPop, 0, 9, true, 0, 1);
  pop.b = 9;
  h[0] = {pop};
  EXPECT_FALSE(linearize<BagSpec>(h).ok);
}

TEST(Linearize, BagRejectsDuplicatedPop) {
  std::vector<std::vector<Op>> h(2);
  Op push = mk(0, BagSpec::kPush, 5, 0, true, 0, 1);
  push.b = 77;
  Op pop1 = mk(0, BagSpec::kPop, 0, 5, true, 2, 3);
  pop1.b = 77;
  Op pop2 = mk(1, BagSpec::kPop, 0, 5, true, 4, 5);
  pop2.b = 77;
  h[0] = {push, pop1};
  h[1] = {pop2};
  EXPECT_FALSE(linearize<BagSpec>(h).ok);
}

TEST(Linearize, BagAllowsSpuriousEmpty) {
  std::vector<std::vector<Op>> h(2);
  Op push = mk(0, BagSpec::kPush, 5, 0, true, 0, 1);
  push.b = 1;
  h[0] = {push};
  h[1] = {mk(1, BagSpec::kPop, 0, 0, false, 0, 1)};
  EXPECT_TRUE(linearize<BagSpec>(h).ok);
}

TEST(Linearize, PoolRejectsDoubleAllocation) {
  std::vector<std::vector<Op>> h(2);
  h[0] = {mk(0, PoolSpec::kGet, 0, 0xA, true, 0, 1)};
  h[1] = {mk(1, PoolSpec::kGet, 0, 0xA, true, 2, 3)};
  EXPECT_FALSE(linearize<PoolSpec>(h).ok);
}

// --- weak-memory model litmus tests (need the model) ----------------------

#if defined(WASP_VERIFY_ENABLED) && WASP_VERIFY_ENABLED

TEST(VerifyModel, MessagePassingRelaxedObservesStaleData) {
  // MP litmus: with relaxed publication the reader may see flag==1 yet
  // data==0. The model must exhibit this on x86, where hardware never
  // would — this is the property the whole mutation tester rests on.
  int stale_runs = 0;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    verify::atomic<int> data{0};
    verify::atomic<int> flag{0};
    int seen = -1;
    Session session(session_options(2, seed));
    run_bound(session, nullptr, 2, [&](int tid) {
      if (tid == 0) {
        data.store(42, std::memory_order_relaxed);
        flag.store(1, std::memory_order_relaxed);
      } else {
        while (flag.load(std::memory_order_relaxed) != 1) {
        }
        seen = data.load(std::memory_order_relaxed);
      }
    });
    ASSERT_TRUE(session.ok()) << session.report_text();
    if (seen == 0) ++stale_runs;
  }
  EXPECT_GT(stale_runs, 0)
      << "the model never produced a stale read; weakened release/acquire "
         "mutants would be unkillable";
}

TEST(VerifyModel, MessagePassingReleaseAcquireNeverStale) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    verify::atomic<int> data{0};
    verify::atomic<int> flag{0};
    int seen = -1;
    Session session(session_options(2, seed));
    run_bound(session, nullptr, 2, [&](int tid) {
      if (tid == 0) {
        data.store(42, std::memory_order_relaxed);
        flag.store(1, std::memory_order_release);
      } else {
        while (flag.load(std::memory_order_acquire) != 1) {
        }
        seen = data.load(std::memory_order_relaxed);
      }
    });
    ASSERT_TRUE(session.ok()) << session.report_text();
    ASSERT_EQ(seen, 42) << "release/acquire edge ignored at seed " << seed;
  }
}

TEST(VerifyModel, ReleaseFenceArmsSubsequentRelaxedStore) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    verify::atomic<int> data{0};
    verify::atomic<int> flag{0};
    int seen = -1;
    Session session(session_options(2, seed));
    run_bound(session, nullptr, 2, [&](int tid) {
      if (tid == 0) {
        data.store(42, std::memory_order_relaxed);
        verify::thread_fence(std::memory_order_release);
        flag.store(1, std::memory_order_relaxed);
      } else {
        while (flag.load(std::memory_order_relaxed) != 1) {
        }
        verify::thread_fence(std::memory_order_acquire);
        seen = data.load(std::memory_order_relaxed);
      }
    });
    ASSERT_TRUE(session.ok()) << session.report_text();
    ASSERT_EQ(seen, 42) << "fence pair ignored at seed " << seed;
  }
}

TEST(VerifyModel, SeqCstFencesForbidStoreBufferingBothZero) {
  // SB litmus: r0 == r1 == 0 is forbidden with seq_cst fences. This is the
  // edge pop_bottom/steal rely on; its mutant must be observable.
  int both_zero_unfenced = 0;
  for (int fenced = 1; fenced >= 0; --fenced) {
    for (std::uint64_t seed = 0; seed < 200; ++seed) {
      verify::atomic<int> x{0};
      verify::atomic<int> y{0};
      int r0 = -1, r1 = -1;
      Session session(session_options(2, seed));
      run_bound(session, nullptr, 2, [&](int tid) {
        if (tid == 0) {
          x.store(1, std::memory_order_relaxed);
          if (fenced) verify::thread_fence(std::memory_order_seq_cst);
          r0 = y.load(std::memory_order_relaxed);
        } else {
          y.store(1, std::memory_order_relaxed);
          if (fenced) verify::thread_fence(std::memory_order_seq_cst);
          r1 = x.load(std::memory_order_relaxed);
        }
      });
      ASSERT_TRUE(session.ok()) << session.report_text();
      if (fenced) {
        ASSERT_FALSE(r0 == 0 && r1 == 0)
            << "seq_cst fences failed to forbid both-zero at seed " << seed;
      } else if (r0 == 0 && r1 == 0) {
        ++both_zero_unfenced;
      }
    }
  }
  EXPECT_GT(both_zero_unfenced, 0)
      << "the model never exhibited store buffering; seq_cst-fence mutants "
         "would be unkillable";
}

TEST(VerifyModel, RmwAtomicityIsExact) {
  verify::atomic<std::int64_t> counter{0};
  Session session(session_options(3, 7));
  run_bound(session, nullptr, 3, [&](int) {
    for (int i = 0; i < 200; ++i)
      counter.fetch_add(1, std::memory_order_relaxed);
  });
  ASSERT_TRUE(session.ok()) << session.report_text();
  EXPECT_EQ(counter.load(std::memory_order_relaxed), 600)
      << "RMWs must read the latest store (C11 atomicity), never stale";
}

TEST(VerifySession, PlainRaceDetected) {
  int cell = 0;
  Session session(session_options(2, 3));
  run_bound(session, nullptr, 2, [&](int tid) {
    if (tid == 0) {
      WASP_VERIFY_WR(&cell);
      cell = 1;
    } else {
      WASP_VERIFY_RD(&cell);
      (void)cell;
    }
  });
  EXPECT_FALSE(session.ok());
  const std::string report = session.report_text();
  EXPECT_NE(report.find("data race"), std::string::npos) << report;
  EXPECT_NE(report.find("test_verify.cpp"), std::string::npos)
      << "diagnostics must carry the access sites: " << report;
  EXPECT_NE(report.find("seed"), std::string::npos)
      << "diagnostics must name the seed for replay: " << report;
}

TEST(VerifySession, PlainAccessOrderedByReleaseAcquireIsClean) {
  int cell = 0;
  verify::atomic<int> flag{0};
  Session session(session_options(2, 3));
  run_bound(session, nullptr, 2, [&](int tid) {
    if (tid == 0) {
      WASP_VERIFY_WR(&cell);
      cell = 1;
      flag.store(1, std::memory_order_release);
    } else {
      while (flag.load(std::memory_order_acquire) != 1) {
      }
      WASP_VERIFY_RD(&cell);
      (void)cell;
    }
  });
  EXPECT_TRUE(session.ok()) << session.report_text();
}

// --- a deliberately buggy structure the checker must reject ---------------

/// Treiber stack with every ordering deliberately relaxed: the node payload
/// is published without a release edge. The checker must catch it.
template <std::memory_order kCasOrder>
class ToyStack {
 public:
  struct Node {
    std::uint64_t value = 0;
    Node* next = nullptr;
  };

  void push(Node* n, std::uint64_t v) {
    WASP_VERIFY_WR(n);
    n->value = v;
    Node* h = head_.load(std::memory_order_relaxed);
    do {
      n->next = h;
    } while (!head_.compare_exchange_weak(h, n, kCasOrder,
                                          std::memory_order_relaxed));
  }

  bool pop(std::uint64_t& v) {
    Node* h = head_.load(std::memory_order_relaxed);
    while (h != nullptr) {
      if (head_.compare_exchange_weak(h, h->next, kCasOrder,
                                      std::memory_order_relaxed)) {
        WASP_VERIFY_RD(h);
        v = h->value;
        return true;
      }
    }
    return false;
  }

 private:
  verify::atomic<Node*> head_{nullptr};
};

template <std::memory_order kCasOrder>
bool toy_stack_run_clean(std::uint64_t seed) {
  ToyStack<kCasOrder> stack;
  std::vector<typename ToyStack<kCasOrder>::Node> nodes(50);
  verify::atomic<int> done{0};
  Session session(session_options(2, seed));
  run_bound(session, nullptr, 2, [&](int tid) {
    if (tid == 0) {
      for (std::size_t i = 0; i < nodes.size(); ++i)
        stack.push(&nodes[i], 100 + i);
      done.store(1, std::memory_order_relaxed);
    } else {
      std::uint64_t v;
      for (;;) {
        const bool got = stack.pop(v);
        if (!got && done.load(std::memory_order_relaxed) == 1) break;
      }
    }
  });
  return session.ok();
}

TEST(ToyStack, CheckerRejectsRelaxedPublication) {
  EXPECT_FALSE(toy_stack_run_clean<std::memory_order_relaxed>(11))
      << "the buggy toy stack was not flagged: the race checker is blind";
}

TEST(ToyStack, CheckerAcceptsAcqRelPublication) {
  for (std::uint64_t seed = 0; seed < 20; ++seed)
    EXPECT_TRUE(toy_stack_run_clean<std::memory_order_acq_rel>(seed));
}

#endif  // WASP_VERIFY_ENABLED

// --- seeded linearizability harnesses over the real structures ------------
//
// Each harness runs kHarnessSeeds independent sessions. Under WASP_VERIFY
// the session's weak-memory model and the chaos engine perturb the run; the
// recorded history must stay linearizable, the session race-free, and the
// element multiset conserved.

using HarnessChunk = BasicChunk<4>;

struct DequeRunStats {
  std::uint64_t budget_exhausted = 0;
};

void deque_harness_one_seed(std::uint64_t seed, DequeRunStats& stats) {
  constexpr int kThreads = 3;  // owner + 2 thieves
  constexpr int kOwnerOps = 30;
  constexpr int kThiefOps = 12;

  // Initial capacity 2 forces ring growth mid-run, so the grow/publish
  // protocol is exercised in every history.
  ChaseLevDeque<HarnessChunk*> deque(2);
  std::vector<HarnessChunk> chunks(kOwnerOps);
  HistoryRecorder rec(kThreads);
  chaos::Engine engine(seed, chaos::Policy::uniform(4096), kThreads);
  std::vector<std::uint64_t> drained_sum(kThreads, 0);
  std::uint64_t pushed_sum = 0;

  auto drain = [](HarnessChunk* c) {
    std::uint64_t sum = 0;
    while (!c->empty()) sum += c->pop();
    return sum;
  };

  Session session(session_options(kThreads, seed));
  run_bound(session, &engine, kThreads, [&](int tid) {
    Xoshiro256 rng(hash_mix(seed * 31 + static_cast<std::uint64_t>(tid)));
    if (tid == 0) {
      int next_chunk = 0;
      for (int i = 0; i < kOwnerOps; ++i) {
        if (next_chunk < kOwnerOps && (rng.next_below(100) < 55 ||
                                       deque.empty_estimate())) {
          HarnessChunk* c = &chunks[next_chunk++];
          const auto fill = 1 + static_cast<std::uint32_t>(rng.next_below(3));
          std::uint64_t sum = 0;
          for (std::uint32_t k = 0; k < fill; ++k) {
            const auto v = static_cast<VertexId>(rng.next_below(1000) + 1);
            c->push(v);
            sum += v;
          }
          pushed_sum += sum;
          Op op = rec.begin(tid, DequeSpec::kPush,
                            reinterpret_cast<std::uint64_t>(c));
          deque.push_bottom(c);
          rec.end(op);
        } else {
          Op op = rec.begin(tid, DequeSpec::kPopBottom);
          HarnessChunk* c = deque.pop_bottom();
          op.ok = c != nullptr;
          op.r = reinterpret_cast<std::uint64_t>(c);
          rec.end(op);
          if (c != nullptr) drained_sum[0] += drain(c);
        }
      }
    } else {
      for (int i = 0; i < kThiefOps; ++i) {
        Op op = rec.begin(tid, DequeSpec::kSteal);
        HarnessChunk* c = deque.steal();
        op.ok = c != nullptr;
        op.r = reinterpret_cast<std::uint64_t>(c);
        rec.end(op);
        if (c != nullptr) {
          drained_sum[static_cast<std::size_t>(tid)] += drain(c);
        } else {
          std::this_thread::yield();
        }
      }
    }
  });

  ASSERT_TRUE(session.ok()) << "seed " << seed << ":\n"
                            << session.report_text();

  // Quiescent drain (unbound: plain hardware reads see the latest values).
  std::uint64_t remaining_sum = 0;
  std::set<HarnessChunk*> seen;
  auto by_thread = rec.collect();
  for (HarnessChunk* c = deque.pop_bottom(); c != nullptr;
       c = deque.pop_bottom()) {
    remaining_sum += drain(c);
    ASSERT_TRUE(seen.insert(c).second)
        << "seed " << seed << ": chunk drained twice at quiescence";
  }

  // Conservation: every vertex pushed into a chunk is drained exactly once.
  std::uint64_t drained_total = remaining_sum;
  for (int t = 0; t < kThreads; ++t)
    drained_total += drained_sum[static_cast<std::size_t>(t)];
  ASSERT_EQ(drained_total, pushed_sum)
      << "seed " << seed << ": elements lost or duplicated";

  // No chunk may be handed to two consumers.
  for (const auto& ops : by_thread)
    for (const Op& op : ops)
      if (op.kind != DequeSpec::kPush && op.ok) {
        ASSERT_TRUE(seen.insert(reinterpret_cast<HarnessChunk*>(op.r)).second)
            << "seed " << seed << ": chunk consumed twice";
      }

  const auto lin = linearize<DequeSpec>(by_thread);
  if (lin.budget_exhausted) ++stats.budget_exhausted;
  ASSERT_TRUE(lin.ok) << "seed " << seed << ":\n" << lin.explanation;
}

TEST(DequeHarness, SeededHistoriesLinearizeAndConserve) {
  DequeRunStats stats;
  const SeedRange seeds = harness_seeds();
  for (std::uint64_t seed = seeds.first; seed < seeds.last; ++seed) {
    deque_harness_one_seed(seed, stats);
    if (::testing::Test::HasFatalFailure()) return;
  }
  // If the search gives up too often the harness proves nothing.
  EXPECT_LT(stats.budget_exhausted, kHarnessSeeds / 10U);
}

template <typename Queue>
void bag_harness_one_seed(std::uint64_t seed, Queue& queue, int threads,
                          int pushes_per_thread) {
  HistoryRecorder rec(threads);
  chaos::Engine engine(seed, chaos::Policy::uniform(4096), threads);
  Session session(session_options(threads, seed));
  run_bound(session, &engine, threads, [&](int tid) {
    Xoshiro256 rng(hash_mix(seed * 131 + static_cast<std::uint64_t>(tid)));
    int pushed = 0;
    const int ops = pushes_per_thread * 2;
    for (int i = 0; i < ops; ++i) {
      if (pushed < pushes_per_thread && rng.next_below(100) < 60) {
        const auto key = static_cast<Distance>(rng.next_below(8));
        const auto value = static_cast<VertexId>(
            (static_cast<std::uint64_t>(tid) << 20) |
            static_cast<std::uint64_t>(pushed));
        Op op = rec.begin(tid, BagSpec::kPush, key, value);
        queue.push(tid, key, value);
        rec.end(op);
        ++pushed;
      } else {
        Distance key;
        VertexId value;
        Op op = rec.begin(tid, BagSpec::kPop);
        op.ok = queue.try_pop(tid, key, value);
        if (op.ok) {
          op.r = key;
          op.b = value;
        }
        rec.end(op);
      }
    }
  });

  ASSERT_TRUE(session.ok()) << "seed " << seed << ":\n"
                            << session.report_text();

  // Conservation at quiescence: pushed == popped + drained, as multisets.
  std::map<std::pair<Distance, VertexId>, int> balance;
  const auto by_thread = rec.collect();
  for (const auto& ops : by_thread) {
    for (const Op& op : ops) {
      if (op.kind == BagSpec::kPush) {
        ++balance[{static_cast<Distance>(op.a),
                   static_cast<VertexId>(op.b)}];
      } else if (op.ok) {
        --balance[{static_cast<Distance>(op.r),
                   static_cast<VertexId>(op.b)}];
      }
    }
  }
  bool drained_any = true;
  while (drained_any) {
    drained_any = false;
    for (int t = 0; t < threads; ++t) {
      Distance key;
      VertexId value;
      while (queue.try_pop(t, key, value)) {
        --balance[{key, value}];
        drained_any = true;
      }
    }
  }
  for (const auto& [elem, count] : balance)
    ASSERT_EQ(count, 0) << "seed " << seed << ": element (" << elem.first
                        << "," << elem.second
                        << ") lost or duplicated (balance " << count << ")";

  const auto lin = linearize<BagSpec>(by_thread);
  ASSERT_TRUE(lin.ok) << "seed " << seed << ":\n" << lin.explanation;
}

TEST(MultiQueueHarness, SeededHistoriesLinearizeAndConserve) {
  const SeedRange seeds = harness_seeds();
  for (std::uint64_t seed = seeds.first; seed < seeds.last; ++seed) {
    MultiQueue::Config cfg;
    cfg.threads = 3;
    cfg.c = 2;
    cfg.buffer_size = 4;
    cfg.stickiness = 2;
    cfg.seed = seed + 1;
    MultiQueue mq(cfg);
    bag_harness_one_seed(seed, mq, cfg.threads, 10);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(StealingMultiQueueHarness, SeededHistoriesLinearizeAndConserve) {
  const SeedRange seeds = harness_seeds();
  for (std::uint64_t seed = seeds.first; seed < seeds.last; ++seed) {
    StealingMultiQueue::Config cfg;
    cfg.threads = 3;
    cfg.steal_batch = 2;
    cfg.seed = seed + 1;
    StealingMultiQueue smq(cfg);
    bag_harness_one_seed(seed, smq, cfg.threads, 10);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(ChunkPoolHarness, SeededHistoriesKeepOwnershipExclusive) {
  const SeedRange seeds = harness_seeds();
  for (std::uint64_t seed = seeds.first; seed < seeds.last; ++seed) {
    constexpr int kThreads = 3;
    BasicChunkArena<HarnessChunk> arena;
    HistoryRecorder rec(kThreads);
    chaos::Engine engine(seed, chaos::Policy::alloc_pressure(), kThreads);
    Session session(session_options(kThreads, seed));
    run_bound(session, &engine, kThreads, [&](int tid) {
      BasicChunkPool<HarnessChunk> pool(arena, /*block_size=*/4);
      Xoshiro256 rng(hash_mix(seed * 17 + static_cast<std::uint64_t>(tid)));
      std::vector<HarnessChunk*> held;
      for (int i = 0; i < 24; ++i) {
        if (held.empty() || rng.next_below(100) < 60) {
          Op op = rec.begin(tid, PoolSpec::kGet);
          HarnessChunk* c = pool.get();
          op.r = reinterpret_cast<std::uint64_t>(c);
          rec.end(op);
          c->push(static_cast<VertexId>(i));  // touch: ownership must hold
          held.push_back(c);
        } else {
          HarnessChunk* c = held.back();
          held.pop_back();
          c->reset();
          Op op = rec.begin(tid, PoolSpec::kPut,
                            reinterpret_cast<std::uint64_t>(c));
          pool.put(c);
          rec.end(op);
        }
      }
    });
    ASSERT_TRUE(session.ok()) << "seed " << seed << ":\n"
                              << session.report_text();
    const auto lin = linearize<PoolSpec>(rec.collect());
    ASSERT_TRUE(lin.ok) << "seed " << seed << ":\n" << lin.explanation;
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(SpinLockHarness, LockAndTryLockOrderPlainWrites) {
  // Exercises both acquisition paths (lock and try_lock spin) against the
  // race checker: a weakened exchange-acquire or unlock-release makes the
  // next holder's clock miss the previous holder's plain write.
  const SeedRange seeds = harness_seeds();
  for (std::uint64_t seed = seeds.first; seed < seeds.last; ++seed) {
    SpinLock lock;
    std::uint64_t counter = 0;
    Session session(session_options(3, seed));
    run_bound(session, nullptr, 3, [&](int tid) {
      for (int i = 0; i < 40; ++i) {
        if (tid == 2) {
          while (!lock.try_lock()) std::this_thread::yield();
        } else {
          lock.lock();
        }
        WASP_VERIFY_WR(&counter);
        ++counter;
        lock.unlock();
      }
    });
    ASSERT_TRUE(session.ok()) << "seed " << seed << ":\n"
                              << session.report_text();
    ASSERT_EQ(counter, 120U) << "seed " << seed << ": lost increment";
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(FrontierBagHarness, PhasedDisciplineIsRaceFree) {
  const SeedRange seeds = harness_seeds();
  for (std::uint64_t seed = seeds.first; seed < seeds.last; ++seed) {
    constexpr int kThreads = 3;
    FrontierBag bag(kThreads);
    ModelBarrier barrier(kThreads);
    std::vector<VertexId> out(kThreads * 8);
    std::size_t total = 0;
    Session session(session_options(kThreads, seed));
    run_bound(session, nullptr, kThreads, [&](int tid) {
      for (int i = 0; i < 8; ++i)
        bag.insert(tid, static_cast<VertexId>(tid * 100 + i));
      barrier.wait();
      if (tid == 0) total = bag.compute_offsets();
      barrier.wait();
      bag.copy_out_and_clear(tid, out.data());
    });
    ASSERT_TRUE(session.ok()) << "seed " << seed << ":\n"
                              << session.report_text();
    ASSERT_EQ(total, out.size());
    std::vector<VertexId> sorted = out;
    std::sort(sorted.begin(), sorted.end());
    for (int t = 0; t < kThreads; ++t)
      for (int i = 0; i < 8; ++i)
        ASSERT_TRUE(std::binary_search(sorted.begin(), sorted.end(),
                                       static_cast<VertexId>(t * 100 + i)));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

#if defined(WASP_VERIFY_ENABLED) && WASP_VERIFY_ENABLED
TEST(FrontierBagHarness, UnorderedScanIsReportedAsRace) {
  // compute_offsets concurrent with another thread's insert, no barrier:
  // the phase discipline is violated and the checker must say so.
  FrontierBag bag(2);
  Session session(session_options(2, 5));
  run_bound(session, nullptr, 2, [&](int tid) {
    if (tid == 0) {
      (void)bag.compute_offsets();
    } else {
      bag.insert(1, 42);
    }
  });
  EXPECT_FALSE(session.ok())
      << "an unsynchronized offset scan over live segments must be flagged";
}
#endif  // WASP_VERIFY_ENABLED

}  // namespace
}  // namespace wasp
