// Tests for the concurrency verification suite (src/verify/): the
// happens-before / weak-memory model, the plain-access race checker, and
// the Wing–Gong linearizability harness over Wasp's concurrent containers.
//
// The harness tests double as the kill mechanism for the memory-order
// mutation tester (tools/lint/atomics_audit.py): under WASP_VERIFY they
// drive each structure through hundreds of seeded sessions in which loads
// may legally return stale values, so a weakened release/acquire/seq_cst
// annotation surfaces as a linearizability violation, a reported data race,
// or broken conservation. In default builds the same harnesses still run as
// plain-hardware stress tests with linearizability checking (the model
// layer folds away); tests that *require* weak behaviors to be observable
// are compiled only under WASP_VERIFY_ENABLED.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "concurrent/chase_lev_deque.hpp"
#include "concurrent/chunk.hpp"
#include "concurrent/frontier_bag.hpp"
#include "concurrent/multiqueue.hpp"
#include "concurrent/spinlock.hpp"
#include "concurrent/stealing_multiqueue.hpp"
#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "sssp/curr_board.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/sssp.hpp"
#include "sssp/validate.hpp"
#include "support/chaos.hpp"
#include "support/numa.hpp"
#include "support/random.hpp"
#include "verify/checked_atomic.hpp"
#include "verify/context.hpp"
#include "verify/linearize.hpp"
#include "verify/model_barrier.hpp"
#include "verify/scheduler.hpp"

namespace wasp {
namespace {

#if defined(WASP_VERIFY_ENABLED) && WASP_VERIFY_ENABLED
constexpr bool kModelOn = true;
constexpr int kHarnessSeeds = 500;  // seeded histories per structure
#else
constexpr bool kModelOn = false;
constexpr int kHarnessSeeds = 60;  // plain stress flavor: keep tier-1 fast
#endif

using verify::BagSpec;
using verify::DequeSpec;
using verify::HistoryRecorder;
using verify::linearize;
using verify::Op;
using verify::PoolSpec;
using verify::Session;

/// Runs `fn(tid)` on `threads` std::threads, each bound to `session` and to
/// a chaos engine stream, mirroring how sssp drivers install both.
template <typename Fn>
void run_bound(Session& session, chaos::Engine* engine, int threads, Fn fn) {
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      chaos::ScopedInstall chaos_guard(engine, t);
      verify::ScopedBind bind(&session, t);
      fn(t);
    });
  }
  for (auto& th : pool) th.join();
}

using verify::ModelBarrier;
using verify::Scheduler;

/// Seed range for the harness loops: all of [0, count) normally, or exactly
/// the one seed named by WASP_VERIFY_SEED=<n> — every harness failure
/// message prints the seed and a replay command line (replay_hint), so a
/// reported failure replays with that seed pinned here (schedules and
/// stale-load choices are deterministic per seed).
struct SeedRange {
  std::uint64_t first = 0;
  std::uint64_t last = 0;  ///< exclusive
};

SeedRange harness_seeds(std::uint64_t count = kHarnessSeeds) {
  SeedRange r;
  r.last = count;
  if (const char* pin = std::getenv("WASP_VERIFY_SEED")) {
    r.first = std::strtoull(pin, nullptr, 10);
    r.last = r.first + 1;
  }
  return r;
}

/// "seed N (replay: WASP_VERIFY_SEED=N ./tests/test_verify
/// --gtest_filter=Suite.Test)" — stitched into every harness assertion so a
/// red run is replayable by copy-paste. The seed pins both the session's
/// stale-load streams and the scheduler's interleaving decisions, so the
/// replay executes the same schedule bit-for-bit.
std::string replay_hint(std::uint64_t seed) {
  const ::testing::TestInfo* info =
      ::testing::UnitTest::GetInstance()->current_test_info();
  std::ostringstream out;
  out << "seed " << seed << " (replay: WASP_VERIFY_SEED=" << seed
      << " ./tests/test_verify --gtest_filter="
      << (info != nullptr ? info->test_suite_name() : "?") << "."
      << (info != nullptr ? info->name() : "?") << ")";
  return out.str();
}

Session::Options session_options(int threads, std::uint64_t seed) {
  Session::Options o;
  o.threads = threads;
  o.seed = seed;
  return o;
}

// --- linearizability checker self-tests (flavor independent) --------------

Op mk(int tid, int kind, std::uint64_t a, std::uint64_t r, bool ok,
      std::uint64_t inv, std::uint64_t res) {
  Op op;
  op.tid = tid;
  op.kind = kind;
  op.a = a;
  op.r = r;
  op.ok = ok;
  op.inv = inv;
  op.res = res;
  return op;
}

TEST(Linearize, AcceptsSequentialDequeHistory) {
  std::vector<std::vector<Op>> h(2);
  h[0] = {mk(0, DequeSpec::kPush, 1, 0, true, 0, 1),
          mk(0, DequeSpec::kPush, 2, 0, true, 2, 3)};
  h[1] = {mk(1, DequeSpec::kSteal, 0, 1, true, 4, 5)};
  EXPECT_TRUE(linearize<DequeSpec>(h).ok);
}

TEST(Linearize, RejectsStealFromWrongEnd) {
  // push(1); push(2); then a steal that returns 2: FIFO order violated, and
  // the operations do not overlap, so no reordering can save it.
  std::vector<std::vector<Op>> h(2);
  h[0] = {mk(0, DequeSpec::kPush, 1, 0, true, 0, 1),
          mk(0, DequeSpec::kPush, 2, 0, true, 2, 3)};
  h[1] = {mk(1, DequeSpec::kSteal, 0, 2, true, 4, 5)};
  const auto r = linearize<DequeSpec>(h);
  EXPECT_FALSE(r.ok);
  EXPECT_NE(r.explanation.find("not linearizable"), std::string::npos);
}

TEST(Linearize, RejectsNullPopOnNonEmptyDeque) {
  std::vector<std::vector<Op>> h(1);
  h[0] = {mk(0, DequeSpec::kPush, 7, 0, true, 0, 1),
          mk(0, DequeSpec::kPopBottom, 0, 0, false, 2, 3)};
  EXPECT_FALSE(linearize<DequeSpec>(h).ok);
}

TEST(Linearize, AllowsOverlappingReorder) {
  // pop_bottom -> 2 responds before push(2) "happened" in program-text
  // order of the other thread, but the ops overlap, so a valid
  // linearization (push(1); push(2); pop->2) exists.
  std::vector<std::vector<Op>> h(2);
  h[0] = {mk(0, DequeSpec::kPush, 1, 0, true, 0, 1),
          mk(0, DequeSpec::kPush, 2, 0, true, 2, 6)};
  h[1] = {mk(1, DequeSpec::kPopBottom, 0, 2, true, 3, 5)};
  EXPECT_TRUE(linearize<DequeSpec>(h).ok);
}

TEST(Linearize, BagRejectsInventedElement) {
  std::vector<std::vector<Op>> h(1);
  Op pop = mk(0, BagSpec::kPop, 0, 9, true, 0, 1);
  pop.b = 9;
  h[0] = {pop};
  EXPECT_FALSE(linearize<BagSpec>(h).ok);
}

TEST(Linearize, BagRejectsDuplicatedPop) {
  std::vector<std::vector<Op>> h(2);
  Op push = mk(0, BagSpec::kPush, 5, 0, true, 0, 1);
  push.b = 77;
  Op pop1 = mk(0, BagSpec::kPop, 0, 5, true, 2, 3);
  pop1.b = 77;
  Op pop2 = mk(1, BagSpec::kPop, 0, 5, true, 4, 5);
  pop2.b = 77;
  h[0] = {push, pop1};
  h[1] = {pop2};
  EXPECT_FALSE(linearize<BagSpec>(h).ok);
}

TEST(Linearize, BagAllowsSpuriousEmpty) {
  std::vector<std::vector<Op>> h(2);
  Op push = mk(0, BagSpec::kPush, 5, 0, true, 0, 1);
  push.b = 1;
  h[0] = {push};
  h[1] = {mk(1, BagSpec::kPop, 0, 0, false, 0, 1)};
  EXPECT_TRUE(linearize<BagSpec>(h).ok);
}

TEST(Linearize, PoolRejectsDoubleAllocation) {
  std::vector<std::vector<Op>> h(2);
  h[0] = {mk(0, PoolSpec::kGet, 0, 0xA, true, 0, 1)};
  h[1] = {mk(1, PoolSpec::kGet, 0, 0xA, true, 2, 3)};
  EXPECT_FALSE(linearize<PoolSpec>(h).ok);
}

// --- weak-memory model litmus tests (need the model) ----------------------

#if defined(WASP_VERIFY_ENABLED) && WASP_VERIFY_ENABLED

TEST(VerifyModel, MessagePassingRelaxedObservesStaleData) {
  // MP litmus: with relaxed publication the reader may see flag==1 yet
  // data==0. The model must exhibit this on x86, where hardware never
  // would — this is the property the whole mutation tester rests on.
  int stale_runs = 0;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    verify::atomic<int> data{0};
    verify::atomic<int> flag{0};
    int seen = -1;
    Session session(session_options(2, seed));
    run_bound(session, nullptr, 2, [&](int tid) {
      if (tid == 0) {
        data.store(42, std::memory_order_relaxed);
        flag.store(1, std::memory_order_relaxed);
      } else {
        while (flag.load(std::memory_order_relaxed) != 1) {
        }
        seen = data.load(std::memory_order_relaxed);
      }
    });
    ASSERT_TRUE(session.ok()) << session.report_text();
    if (seen == 0) ++stale_runs;
  }
  EXPECT_GT(stale_runs, 0)
      << "the model never produced a stale read; weakened release/acquire "
         "mutants would be unkillable";
}

TEST(VerifyModel, MessagePassingReleaseAcquireNeverStale) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    verify::atomic<int> data{0};
    verify::atomic<int> flag{0};
    int seen = -1;
    Session session(session_options(2, seed));
    run_bound(session, nullptr, 2, [&](int tid) {
      if (tid == 0) {
        data.store(42, std::memory_order_relaxed);
        flag.store(1, std::memory_order_release);
      } else {
        while (flag.load(std::memory_order_acquire) != 1) {
        }
        seen = data.load(std::memory_order_relaxed);
      }
    });
    ASSERT_TRUE(session.ok()) << session.report_text();
    ASSERT_EQ(seen, 42) << "release/acquire edge ignored at seed " << seed;
  }
}

TEST(VerifyModel, ReleaseFenceArmsSubsequentRelaxedStore) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    verify::atomic<int> data{0};
    verify::atomic<int> flag{0};
    int seen = -1;
    Session session(session_options(2, seed));
    run_bound(session, nullptr, 2, [&](int tid) {
      if (tid == 0) {
        data.store(42, std::memory_order_relaxed);
        verify::thread_fence(std::memory_order_release);
        flag.store(1, std::memory_order_relaxed);
      } else {
        while (flag.load(std::memory_order_relaxed) != 1) {
        }
        verify::thread_fence(std::memory_order_acquire);
        seen = data.load(std::memory_order_relaxed);
      }
    });
    ASSERT_TRUE(session.ok()) << session.report_text();
    ASSERT_EQ(seen, 42) << "fence pair ignored at seed " << seed;
  }
}

TEST(VerifyModel, SeqCstFencesForbidStoreBufferingBothZero) {
  // SB litmus: r0 == r1 == 0 is forbidden with seq_cst fences. This is the
  // edge pop_bottom/steal rely on; its mutant must be observable.
  int both_zero_unfenced = 0;
  for (int fenced = 1; fenced >= 0; --fenced) {
    for (std::uint64_t seed = 0; seed < 200; ++seed) {
      verify::atomic<int> x{0};
      verify::atomic<int> y{0};
      int r0 = -1, r1 = -1;
      Session session(session_options(2, seed));
      run_bound(session, nullptr, 2, [&](int tid) {
        if (tid == 0) {
          x.store(1, std::memory_order_relaxed);
          if (fenced) verify::thread_fence(std::memory_order_seq_cst);
          r0 = y.load(std::memory_order_relaxed);
        } else {
          y.store(1, std::memory_order_relaxed);
          if (fenced) verify::thread_fence(std::memory_order_seq_cst);
          r1 = x.load(std::memory_order_relaxed);
        }
      });
      ASSERT_TRUE(session.ok()) << session.report_text();
      if (fenced) {
        ASSERT_FALSE(r0 == 0 && r1 == 0)
            << "seq_cst fences failed to forbid both-zero at seed " << seed;
      } else if (r0 == 0 && r1 == 0) {
        ++both_zero_unfenced;
      }
    }
  }
  EXPECT_GT(both_zero_unfenced, 0)
      << "the model never exhibited store buffering; seq_cst-fence mutants "
         "would be unkillable";
}

TEST(VerifyModel, RmwAtomicityIsExact) {
  verify::atomic<std::int64_t> counter{0};
  Session session(session_options(3, 7));
  run_bound(session, nullptr, 3, [&](int) {
    for (int i = 0; i < 200; ++i)
      counter.fetch_add(1, std::memory_order_relaxed);
  });
  ASSERT_TRUE(session.ok()) << session.report_text();
  EXPECT_EQ(counter.load(std::memory_order_relaxed), 600)
      << "RMWs must read the latest store (C11 atomicity), never stale";
}

// --- SC-order (total order S) litmus tests --------------------------------
//
// The model tracks the single total order S over seq_cst operations
// explicitly (context.hpp next_sc_time / sc_publish_time): seq_cst stores
// are stamped with their S-position, seq_cst fences record theirs per
// thread, and admissible_pick floors every load at the newest store
// published in S before the reader's horizon. These tests pin the floor
// rules at maximum staleness pressure, where only the SC floor (not luck)
// can force a fresh value.

/// Session options with the stale-value bias pinned to the maximum: a load
/// picks uniformly among its admissible window essentially always, so any
/// store the floors fail to exclude *will* be observed across a seed sweep.
Session::Options always_stale(int threads, std::uint64_t seed) {
  Session::Options o = session_options(threads, seed);
  o.stale_rate = 65535;
  return o;
}

TEST(VerifyModel, SeqCstStoreFloorsPostFenceLoads) {
  // [atomics.order] store->fence rule: a relaxed load sequenced after a
  // seq_cst fence may not read a value older than a seq_cst store that
  // precedes the fence in S. The raw std::atomic handoff orders the two
  // threads in real time (and hence in S, which the model fixes to the
  // execution order under its lock) without contributing any model edge,
  // so only the SC floor makes the outcome deterministic.
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    verify::atomic<int> x{0};
    std::atomic<int> handoff{0};
    int seen = -1;
    Session session(always_stale(2, seed));
    run_bound(session, nullptr, 2, [&](int tid) {
      if (tid == 0) {
        x.store(1, std::memory_order_seq_cst);
        handoff.store(1, std::memory_order_release);
      } else {
        while (handoff.load(std::memory_order_acquire) != 1) {
        }
        verify::thread_fence(std::memory_order_seq_cst);
        seen = x.load(std::memory_order_relaxed);
      }
    });
    ASSERT_TRUE(session.ok()) << session.report_text();
    ASSERT_EQ(seen, 1) << "SC store->fence floor ignored at seed " << seed;
  }
}

TEST(VerifyModel, SeqCstLoadFloorsAtNewestScStore) {
  // [atomics.order] store->load rule: a seq_cst load reads no older than
  // the newest seq_cst store before it in S, fence or no fence.
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    verify::atomic<int> x{0};
    std::atomic<int> handoff{0};
    int seen = -1;
    Session session(always_stale(2, seed));
    run_bound(session, nullptr, 2, [&](int tid) {
      if (tid == 0) {
        x.store(1, std::memory_order_seq_cst);
        handoff.store(1, std::memory_order_release);
      } else {
        while (handoff.load(std::memory_order_acquire) != 1) {
        }
        seen = x.load(std::memory_order_seq_cst);
      }
    });
    ASSERT_TRUE(session.ok()) << session.report_text();
    ASSERT_EQ(seen, 1) << "SC store->load floor ignored at seed " << seed;
  }
}

TEST(VerifyModel, FenceFencePublishesEarlierRelaxedStore) {
  // [atomics.order] fence->fence rule: a *relaxed* store sequenced before
  // the writer's seq_cst fence X is visible to any load sequenced after a
  // seq_cst fence later than X in S (sc_publish_time). This rule is
  // load-bearing for the intact Chase-Lev deque: pop_bottom's relaxed
  // bottom decrement is published to fenced thieves only by the owner's
  // CLD-5f7729 fence — without the rule the serialized scheduler would observe
  // "impossible" stale bottoms on correct code.
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    verify::atomic<int> x{0};
    std::atomic<int> handoff{0};
    int seen = -1;
    Session session(always_stale(2, seed));
    run_bound(session, nullptr, 2, [&](int tid) {
      if (tid == 0) {
        x.store(1, std::memory_order_relaxed);
        verify::thread_fence(std::memory_order_seq_cst);
        handoff.store(1, std::memory_order_release);
      } else {
        while (handoff.load(std::memory_order_acquire) != 1) {
        }
        verify::thread_fence(std::memory_order_seq_cst);
        seen = x.load(std::memory_order_relaxed);
      }
    });
    ASSERT_TRUE(session.ok()) << session.report_text();
    ASSERT_EQ(seen, 1) << "SC fence->fence publication ignored at seed "
                       << seed;
  }
}

TEST(VerifyModel, UnfencedLoadMayStillMissSeqCstStore) {
  // Negative control for the three floors above: drop the reader's fence
  // (and load relaxed) and the store's S-position no longer binds the
  // reader, so staleness must reappear — otherwise the floors are
  // over-approximating and seq_cst weakenings would be masked rather than
  // detected.
  int stale_runs = 0;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    verify::atomic<int> x{0};
    std::atomic<int> handoff{0};
    int seen = -1;
    Session session(always_stale(2, seed));
    run_bound(session, nullptr, 2, [&](int tid) {
      if (tid == 0) {
        x.store(1, std::memory_order_seq_cst);
        handoff.store(1, std::memory_order_release);
      } else {
        while (handoff.load(std::memory_order_acquire) != 1) {
        }
        seen = x.load(std::memory_order_relaxed);
      }
    });
    ASSERT_TRUE(session.ok()) << session.report_text();
    if (seen == 0) ++stale_runs;
  }
  EXPECT_GT(stale_runs, 0)
      << "an unfenced relaxed load never went stale; the SC floor is "
         "over-approximating and would mask seq_cst weakenings";
}

// --- seq_cst fences: pure S-membership, no happens-before -----------------
//
// C11 seq_cst fences only take a slot in the total order S; they floor the
// *values* later loads may return but never synchronize by themselves —
// happens-before still needs an atomic store/load mediator. The model used
// to over-approximate here (every fence joined a global clock), which hid
// fence-reliant protocols' missing edges from the race checker. These
// litmus tests fail under that old semantics and pin the faithful one.

TEST(VerifyModel, ScFencesAloneDoNotSynchronizePlainAccesses) {
  // T0: plain write, seq_cst fence. T1 (later in real time, so later in
  // S): seq_cst fence, plain read. The raw std::atomic handoff orders the
  // threads in real time without a model edge. C11: the two fences are in
  // S but create no happens-before, so the plain accesses race.
  std::uint32_t cell = 0;
  std::atomic<int> handoff{0};
  Session session(session_options(2, 7));
  run_bound(session, nullptr, 2, [&](int tid) {
    if (tid == 0) {
      verify::plain_store(cell, std::uint32_t{7});
      verify::thread_fence(std::memory_order_seq_cst);
      handoff.store(1, std::memory_order_release);
    } else {
      while (handoff.load(std::memory_order_acquire) != 1) {
      }
      verify::thread_fence(std::memory_order_seq_cst);
      (void)verify::plain_load(cell);
    }
  });
  EXPECT_FALSE(session.ok())
      << "fence-fence alone must not order plain accesses: a seq_cst "
         "fence is S-membership only, not a synchronization edge";
  EXPECT_NE(session.report_text().find("race"), std::string::npos)
      << session.report_text();
}

TEST(VerifyModel, FenceFenceForcesValueWithoutHappensBefore) {
  // The two sides of the decoupling in one history: the fence-fence
  // [atomics.order] rule forces the relaxed load fresh (value floor), yet
  // the plain cell written before the store still races — visibility of a
  // value is not ordering. Under the old clock-joining fences this test
  // fails on the second expectation.
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    std::uint32_t cell = 0;
    verify::atomic<int> x{0};
    std::atomic<int> handoff{0};
    int seen = -1;
    Session session(always_stale(2, seed));
    run_bound(session, nullptr, 2, [&](int tid) {
      if (tid == 0) {
        verify::plain_store(cell, std::uint32_t{7});
        x.store(1, std::memory_order_relaxed);
        verify::thread_fence(std::memory_order_seq_cst);
        handoff.store(1, std::memory_order_release);
      } else {
        while (handoff.load(std::memory_order_acquire) != 1) {
        }
        verify::thread_fence(std::memory_order_seq_cst);
        seen = x.load(std::memory_order_relaxed);
        (void)verify::plain_load(cell);
      }
    });
    ASSERT_EQ(seen, 1) << "fence-fence value floor lost at seed " << seed;
    ASSERT_FALSE(session.ok())
        << "value forced fresh must still leave the plain cell racy "
           "(seed " << seed << ")";
  }
}

// --- release sequences (C++11 pre-P0982 rules) ----------------------------

TEST(VerifyModel, ReleaseSequenceContinuesThroughOwnRelaxedStore) {
  // C++11 [intro.races]: a release sequence headed by a release store
  // continues through *same-thread* subsequent stores, so an acquire load
  // that reads the later relaxed store still synchronizes with the head.
  // The Chase-Lev bottom_ protocol depends on this: pop_bottom's relaxed
  // bottom stores must keep carrying the owner's last release.
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    std::uint32_t cell = 0;
    verify::atomic<int> x{0};
    std::atomic<int> handoff{0};
    Session session(always_stale(2, seed));
    run_bound(session, nullptr, 2, [&](int tid) {
      if (tid == 0) {
        verify::plain_store(cell, std::uint32_t{7});
        x.store(1, std::memory_order_release);
        x.store(2, std::memory_order_relaxed);
        handoff.store(1, std::memory_order_release);
      } else {
        while (handoff.load(std::memory_order_acquire) != 1) {
        }
        int r = 0;
        for (int i = 0; i < 400 && r != 2; ++i)
          r = x.load(std::memory_order_acquire);
        ASSERT_EQ(r, 2) << "coherence never converged at seed " << seed;
        ASSERT_EQ(verify::plain_load(cell), 7U);
      }
    });
    ASSERT_TRUE(session.ok())
        << "same-thread continuation ignored at seed " << seed << ":\n"
        << session.report_text();
  }
}

TEST(VerifyModel, ReleaseSequenceBrokenByForeignRelaxedStore) {
  // ...but a relaxed store by *another* thread (not an RMW) breaks the
  // sequence: an acquire load of that store gets no edge to the head.
  std::uint32_t cell = 0;
  verify::atomic<int> x{0};
  std::atomic<int> h1{0};
  std::atomic<int> h2{0};
  Session session(session_options(3, 11));
  run_bound(session, nullptr, 3, [&](int tid) {
    if (tid == 0) {
      verify::plain_store(cell, std::uint32_t{7});
      x.store(1, std::memory_order_release);
      h1.store(1, std::memory_order_release);
    } else if (tid == 1) {
      while (h1.load(std::memory_order_acquire) != 1) {
      }
      x.store(2, std::memory_order_relaxed);
      h2.store(1, std::memory_order_release);
    } else {
      while (h2.load(std::memory_order_acquire) != 1) {
      }
      // Relaxed spin keeps the clock clean of store 1's payload (its
      // release clock lands in pending_acquire, never joined); the final
      // acquire re-reads store 2 by coherence and gets no edge from it.
      int r = 0;
      for (int i = 0; i < 400 && r != 2; ++i)
        r = x.load(std::memory_order_relaxed);
      ASSERT_EQ(r, 2);
      (void)x.load(std::memory_order_acquire);
      (void)verify::plain_load(cell);
    }
  });
  EXPECT_FALSE(session.ok())
      << "a foreign relaxed store must break the release sequence";
}

TEST(VerifyModel, RmwContinuesForeignReleaseSequence) {
  // An RMW by any thread continues the sequence (C++11 and C++20 agree):
  // the acquire load of the fetch_add's result synchronizes with the
  // original release head.
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    std::uint32_t cell = 0;
    verify::atomic<int> x{0};
    std::atomic<int> h1{0};
    std::atomic<int> h2{0};
    Session session(always_stale(3, seed));
    run_bound(session, nullptr, 3, [&](int tid) {
      if (tid == 0) {
        verify::plain_store(cell, std::uint32_t{7});
        x.store(1, std::memory_order_release);
        h1.store(1, std::memory_order_release);
      } else if (tid == 1) {
        while (h1.load(std::memory_order_acquire) != 1) {
        }
        x.fetch_add(1, std::memory_order_relaxed);
        h2.store(1, std::memory_order_release);
      } else {
        while (h2.load(std::memory_order_acquire) != 1) {
        }
        int r = 0;
        for (int i = 0; i < 400 && r != 2; ++i)
          r = x.load(std::memory_order_acquire);
        ASSERT_EQ(r, 2) << "coherence never converged at seed " << seed;
        ASSERT_EQ(verify::plain_load(cell), 7U);
      }
    });
    ASSERT_TRUE(session.ok())
        << "RMW continuation ignored at seed " << seed << ":\n"
        << session.report_text();
  }
}

// --- SC-order exploration (Options::sc_reorder_window) --------------------
//
// With a nonzero window the session *searches* over admissible SC total
// orders instead of fixing S to the execution lock order: a publication
// floor whose publisher is unordered (by happens-before and coherence)
// with every event up to the reader's horizon may be dropped, re-seating
// the publisher after the horizon. Each drop is a commitment, re-validated
// against every later freshness window (Session::sc_before /
// sc_note_horizon), so the explored history is always some single valid S.

/// always_stale plus an exploration window: every legal S reordering is
/// taken whenever the coin allows.
Session::Options exploring(int threads, std::uint64_t seed, int window) {
  Session::Options o = always_stale(threads, seed);
  o.sc_reorder_window = window;
  return o;
}

TEST(VerifyModel, ScExplorationUnpinsUnorderedStoreFenceWindow) {
  // A seq_cst store and a later (real-time) seq_cst fence with no
  // happens-before between them may appear in either order in S; only the
  // store->fence floor of the lock order forces the fresh value. Window 0
  // keeps the floor bit-for-bit; a nonzero window must explore the other
  // admissible order and let the load go stale.
  for (int window : {0, 4}) {
    int stale_runs = 0;
    for (std::uint64_t seed = 0; seed < 200; ++seed) {
      verify::atomic<int> x{0};
      std::atomic<int> handoff{0};
      int seen = -1;
      Session session(exploring(2, seed, window));
      run_bound(session, nullptr, 2, [&](int tid) {
        if (tid == 0) {
          x.store(1, std::memory_order_seq_cst);
          handoff.store(1, std::memory_order_release);
        } else {
          while (handoff.load(std::memory_order_acquire) != 1) {
          }
          verify::thread_fence(std::memory_order_seq_cst);
          seen = x.load(std::memory_order_relaxed);
        }
      });
      ASSERT_TRUE(session.ok()) << session.report_text();
      if (seen == 0) ++stale_runs;
    }
    if (window == 0) {
      EXPECT_EQ(stale_runs, 0)
          << "window 0 must preserve the lock-order floors exactly";
    } else {
      EXPECT_GT(stale_runs, 0)
          << "exploration never took the admissible S reordering";
    }
  }
}

TEST(VerifyModel, ScExplorationKeepsSeqCstLoadFloorsFirm) {
  // Store buffering with seq_cst accesses: both-zero contradicts every
  // total order, window or no window — a seq_cst load's horizon is all of
  // S, which exploration must never slide anything past.
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    verify::atomic<int> x{0};
    verify::atomic<int> y{0};
    int r0 = -1;
    int r1 = -1;
    Session session(exploring(2, seed, 8));
    run_bound(session, nullptr, 2, [&](int tid) {
      if (tid == 0) {
        x.store(1, std::memory_order_seq_cst);
        r0 = y.load(std::memory_order_seq_cst);
      } else {
        y.store(1, std::memory_order_seq_cst);
        r1 = x.load(std::memory_order_seq_cst);
      }
    });
    ASSERT_TRUE(session.ok()) << session.report_text();
    ASSERT_FALSE(r0 == 0 && r1 == 0)
        << "seq_cst store buffering reached both-zero at seed " << seed;
  }
}

TEST(VerifyModel, ScExplorationHorizonAnchorsForbidFenceBothZero) {
  // Store buffering with relaxed accesses and seq_cst fences: C11 forbids
  // both-zero for *every* choice of S (whichever fence is later floors
  // that side's load). With T0 completing first, T0's load already ran
  // under its fence's horizon, so exploration may not slide that fence
  // past T1's — without the horizon-anchor commitment the two floors
  // would be dropped against contradictory orders and both-zero appears.
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    verify::atomic<int> x{0};
    verify::atomic<int> y{0};
    std::atomic<int> handoff{0};
    int r0 = -1;
    int r1 = -1;
    Session session(exploring(2, seed, 8));
    run_bound(session, nullptr, 2, [&](int tid) {
      if (tid == 0) {
        x.store(1, std::memory_order_relaxed);
        verify::thread_fence(std::memory_order_seq_cst);
        r0 = y.load(std::memory_order_relaxed);
        handoff.store(1, std::memory_order_release);
      } else {
        while (handoff.load(std::memory_order_acquire) != 1) {
        }
        y.store(1, std::memory_order_relaxed);
        verify::thread_fence(std::memory_order_seq_cst);
        r1 = x.load(std::memory_order_relaxed);
      }
    });
    ASSERT_TRUE(session.ok()) << session.report_text();
    ASSERT_EQ(r0, 0) << "T0 ran first; y cannot be set yet";
    ASSERT_EQ(r1, 1)
        << "T0's fence is anchored by its own load's horizon; T1's "
           "post-fence load must stay floored (seed " << seed << ")";
  }
}

// --- plain-cell value modeling (verify::plain_load / plain_store) ---------

TEST(VerifyModel, PlainValueModelAdmitsStaleValueWithoutHb) {
  // An unsynchronized plain read is both *reported* (race diagnostic) and
  // *simulated* (it may return any admissible value, not just the latest),
  // so value-sensitive assertions downstream of a protocol hole fail in
  // the simulation instead of silently reading fresh hardware values.
  int stale_runs = 0;
  int fresh_runs = 0;
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    std::uint32_t cell = 1;
    std::atomic<int> handoff{0};
    std::uint32_t seen = 0;
    Session session(always_stale(2, seed));
    run_bound(session, nullptr, 2, [&](int tid) {
      if (tid == 0) {
        verify::plain_store(cell, std::uint32_t{7});
        handoff.store(1, std::memory_order_release);
      } else {
        while (handoff.load(std::memory_order_acquire) != 1) {
        }
        seen = verify::plain_load(cell);
      }
    });
    EXPECT_FALSE(session.ok()) << "unsynchronized plain read not reported";
    ASSERT_TRUE(seen == 1 || seen == 7) << "invented value " << seen;
    (seen == 1 ? stale_runs : fresh_runs) += 1;
  }
  EXPECT_GT(stale_runs, 0) << "stale plain value never simulated";
  EXPECT_GT(fresh_runs, 0) << "fresh plain value never simulated";
}

TEST(VerifyModel, PlainValueModelFreshUnderReleaseAcquire) {
  // With a correct handoff the value floor follows the clock: the reader
  // must see the pre-release store, and no race is reported.
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    std::uint32_t cell = 1;
    verify::atomic<int> flag{0};
    Session session(always_stale(2, seed));
    run_bound(session, nullptr, 2, [&](int tid) {
      if (tid == 0) {
        verify::plain_store(cell, std::uint32_t{7});
        flag.store(1, std::memory_order_release);
      } else {
        // Unbounded spin: the writer runs on a real OS thread, so any fixed
        // retry bound turns writer starvation into a spurious failure (it
        // fired once in a mutation campaign under build load, mis-crediting
        // a kill). The model floors staleness, so the loop terminates once
        // the store lands; a genuine model bug surfaces as a test timeout.
        int r = 0;
        while (r != 1) r = flag.load(std::memory_order_acquire);
        ASSERT_EQ(verify::plain_load(cell), 7U)
            << "synchronized plain read went stale at seed " << seed;
      }
    });
    ASSERT_TRUE(session.ok()) << session.report_text();
  }
}

// --- SC-order kill tests for the Chase-Lev seq_cst CAS sites --------------
//
// CLD-86f63b (pop_bottom last-element CAS) and CLD-c4227a (steal CAS) need seq_cst
// for a *freshness* guarantee, not for element flow: element transfer is
// CAS-certified (an RMW always reads the latest top, so hardware never
// duplicates), which is why no element-conservation harness can kill a
// seq_cst->acq_rel weakening there. What seq_cst adds is a position in S:
// any observer that executes a seq_cst fence after the CAS (in S) is
// guaranteed to see top at least as new as the CAS. These tests pin
// exactly that contract via size_estimate() after a fence, with staleness
// pressure at maximum. Intact, the floors make the outcome deterministic;
// weakened to acq_rel the CAS leaves no trace in S (neither CAS is covered
// by a *later* same-thread fence: pop_bottom's CLD-5f7729 fence and steal's
// CLD-18faf2 fence both precede their CAS), so the observer legally reads the
// pre-CAS top and the assertion trips within a few seeds.

TEST(DequeScOrder, PopBottomCasIsPublishedToFencedThief) {
  const SeedRange seeds = harness_seeds();
  for (std::uint64_t seed = seeds.first; seed < seeds.last; ++seed) {
    ChaseLevDeque<int*> deque(2);
    int cell = 0;
    std::atomic<int> stage{0};  // raw: real-time order, no model edge
    std::int64_t size_seen = -1;
    Session session(always_stale(2, seed));
    run_bound(session, nullptr, 2, [&](int tid) {
      if (tid == 0) {
        deque.push_bottom(&cell);
        // Last-element pop: t == b path, decided by the CLD-86f63b seq_cst
        // CAS on top (0 -> 1). No owner fence follows it.
        int* got = deque.pop_bottom();
        EXPECT_EQ(got, &cell);
        stage.store(1, std::memory_order_release);
      } else {
        while (stage.load(std::memory_order_acquire) != 1) {
          std::this_thread::yield();
        }
        verify::thread_fence(std::memory_order_seq_cst);
        size_seen = deque.size_estimate();
      }
    });
    ASSERT_TRUE(session.ok()) << replay_hint(seed) << ":\n"
                              << session.report_text();
    ASSERT_EQ(size_seen, 0)
        << replay_hint(seed)
        << ": a fenced observer saw a pre-CAS top after the owner's "
           "last-element pop - the CLD-86f63b CAS lost its seq_cst publication";
  }
}

TEST(DequeScOrder, StealCasIsPublishedToFencedOwner) {
  const SeedRange seeds = harness_seeds();
  for (std::uint64_t seed = seeds.first; seed < seeds.last; ++seed) {
    ChaseLevDeque<int*> deque(2);
    int cell = 0;
    std::atomic<int> stage{0};  // raw: real-time order, no model edge
    std::int64_t size_seen = -1;
    Session session(always_stale(2, seed));
    run_bound(session, nullptr, 2, [&](int tid) {
      if (tid == 0) {
        deque.push_bottom(&cell);
        stage.store(1, std::memory_order_release);
        while (stage.load(std::memory_order_acquire) != 2) {
          std::this_thread::yield();
        }
        verify::thread_fence(std::memory_order_seq_cst);
        size_seen = deque.size_estimate();
      } else {
        while (stage.load(std::memory_order_acquire) != 1) {
          std::this_thread::yield();
        }
        // Under maximum staleness the CLD-e3247c bottom load may legally read
        // the pre-push bottom and return empty; retry until the one
        // element is taken. Every attempt's CLD-18faf2 fence still precedes
        // the CLD-c4227a CAS, so no retry ever publishes it.
        int* got = nullptr;
        while ((got = deque.steal()) == nullptr) {
        }
        EXPECT_EQ(got, &cell);
        stage.store(2, std::memory_order_release);
      }
    });
    ASSERT_TRUE(session.ok()) << replay_hint(seed) << ":\n"
                              << session.report_text();
    ASSERT_EQ(size_seen, 0)
        << replay_hint(seed)
        << ": a fenced owner saw a pre-CAS top after the thief emptied the "
           "deque - the CLD-c4227a CAS lost its seq_cst publication";
  }
}

// --- Wasp curr-board publication protocol (src/sssp/curr_board.hpp) -------
//
// The probe-then-steal freshness contract: a thief whose probe() observed a
// published level is synchronized with everything the owner pushed before
// publish(), so its very first steal() must succeed and the stolen chunk's
// plain payload (priority, vertices) must read fresh. These are the kill
// tests for the CURR publish-site mutants: weaken publish() to relaxed and
// the implication breaks at pinned seeds (stale bottom -> null steal, or a
// stale priority value), while the intact protocol satisfies it on every
// seed. The conditional shape matters: probe() reading the level is itself
// permitted to go stale, so the tests assert the implication, not
// unconditional success, and check the sweep was not vacuous.

using HarnessChunk = BasicChunk<4>;  // also used by the harnesses below

TEST(WaspCurrProtocol, ProbedLevelGuaranteesStealableChunk) {
  const SeedRange seeds = harness_seeds();
  int observed_runs = 0;
  for (std::uint64_t seed = seeds.first; seed < seeds.last; ++seed) {
    CurrBoard board(2);
    ChaseLevDeque<HarnessChunk*> deque(4);
    HarnessChunk chunk;  // filled bound by the owner
    std::atomic<int> ready{0};  // raw: real-time order, no model edge
    Session session(always_stale(2, seed));
    run_bound(session, nullptr, 2, [&](int tid) {
      if (tid == 0) {
        chunk.set_priority(5);
        chunk.push(VertexId{7});
        deque.push_bottom(&chunk);
        board.publish(0, 5);
        ready.store(1, std::memory_order_release);
      } else {
        while (ready.load(std::memory_order_acquire) != 1) {
          std::this_thread::yield();
        }
        if (board.probe(0) == 5) {
          ++observed_runs;
          HarnessChunk* got = deque.steal();
          ASSERT_NE(got, nullptr)
              << replay_hint(seed)
              << ": probe observed the published level but the first steal "
                 "missed the chunk pushed before publish() - the "
                 "release/acquire freshness contract is broken";
          EXPECT_EQ(got->priority(), 5U)
              << replay_hint(seed) << ": stolen chunk's plain priority "
                                      "field read stale";
          EXPECT_EQ(got->pop(), VertexId{7})
              << replay_hint(seed) << ": stolen chunk's payload read stale";
        }
      }
    });
    ASSERT_TRUE(session.ok()) << replay_hint(seed) << ":\n"
                              << session.report_text();
  }
  // Staleness may legitimately hide the published level on some seeds, but
  // a sweep in which the thief never observes it would make the kill
  // assertions above vacuous.
  EXPECT_GT(observed_runs, 0) << "probe never observed the published level";
}

TEST(WaspCurrProtocol, IdlePublishOrdersPriorChunkMutations) {
  // Termination-side contract: a scanner that observes a worker's idle
  // publish (kInfPriority) is ordered after every chunk mutation the
  // worker made before it, so a post-scan inspection of leftover chunks
  // cannot race with the worker's last writes.
  const SeedRange seeds = harness_seeds(100);
  int observed_runs = 0;
  for (std::uint64_t seed = seeds.first; seed < seeds.last; ++seed) {
    CurrBoard board(2);
    HarnessChunk chunk;
    std::atomic<int> ready{0};
    Session session(always_stale(2, seed));
    run_bound(session, nullptr, 2, [&](int tid) {
      if (tid == 0) {
        board.publish(0, 3);  // working at level 3
        chunk.push(VertexId{9});
        board.publish(0, kInfPriority);  // idle
        ready.store(1, std::memory_order_release);
      } else {
        while (ready.load(std::memory_order_acquire) != 1) {
          std::this_thread::yield();
        }
        // The board starts at kInfPriority, so a bare idle observation
        // could be a stale read of the initial value, which carries no
        // edge (the double-scan epoch check covers that in the engine).
        // The ordering contract applies to a scanner that saw the worker
        // *active* first: coherence then pins the later idle read to the
        // worker's publish, whose release payload covers the push.
        std::uint64_t lvl = 0;
        for (int i = 0; i < 400 && lvl != 3; ++i) lvl = board.scan(0);
        if (lvl == 3) {
          for (int i = 0; i < 400 && lvl != kInfPriority; ++i)
            lvl = board.scan(0);
          if (lvl == kInfPriority) {
            ++observed_runs;
            EXPECT_EQ(chunk.peek(0), VertexId{9})
                << replay_hint(seed) << ": idle observed after activity, "
                                        "but the worker's chunk mutation "
                                        "was not ordered";
          }
        }
      }
    });
    ASSERT_TRUE(session.ok()) << replay_hint(seed) << ":\n"
                              << session.report_text();
  }
  EXPECT_GT(observed_runs, 0) << "scan never observed the idle level";
}

// --- Chase-Lev ring handoff (CLD-da1296 consume / CLD-69c545 release) -------------

TEST(DequeGrow, ConsumeCarriesRingConstructionToThief) {
  // The thief reaches a grown ring only through the CLD-da1296 consume load of
  // buffer_; grow's CLD-69c545 release store carries the new Ring's plain
  // construction (capacity/mask/slots pointer, declared via the ctor's
  // WASP_VERIFY_WR). This is the kill test for the CLD-da1296 consume->relaxed
  // mutant: without the edge, the thief's Ring::get() races with the
  // constructor at pinned seeds. The intact deque must stay race-free
  // under maximum staleness on every seed.
  const SeedRange seeds = harness_seeds();
  for (std::uint64_t seed = seeds.first; seed < seeds.last; ++seed) {
    ChaseLevDeque<HarnessChunk*> deque(2);  // capacity 2: third push grows
    std::vector<HarnessChunk> chunks(3);
    std::atomic<int> ready{0};
    Session session(always_stale(2, seed));
    run_bound(session, nullptr, 2, [&](int tid) {
      if (tid == 0) {
        for (auto& c : chunks) deque.push_bottom(&c);  // grows while bound
        ready.store(1, std::memory_order_release);
      } else {
        while (ready.load(std::memory_order_acquire) != 1) {
          std::this_thread::yield();
        }
        for (int i = 0; i < 4; ++i) (void)deque.steal();
      }
    });
    ASSERT_TRUE(session.ok())
        << replay_hint(seed)
        << ": intact consume/release ring handoff reported a race:\n"
        << session.report_text();
  }
}

TEST(VerifySession, PlainRaceDetected) {
  int cell = 0;
  Session session(session_options(2, 3));
  run_bound(session, nullptr, 2, [&](int tid) {
    if (tid == 0) {
      WASP_VERIFY_WR(&cell);
      cell = 1;
    } else {
      WASP_VERIFY_RD(&cell);
      (void)cell;
    }
  });
  EXPECT_FALSE(session.ok());
  const std::string report = session.report_text();
  EXPECT_NE(report.find("data race"), std::string::npos) << report;
  EXPECT_NE(report.find("test_verify.cpp"), std::string::npos)
      << "diagnostics must carry the access sites: " << report;
  EXPECT_NE(report.find("seed"), std::string::npos)
      << "diagnostics must name the seed for replay: " << report;
}

TEST(VerifySession, PlainAccessOrderedByReleaseAcquireIsClean) {
  int cell = 0;
  verify::atomic<int> flag{0};
  Session session(session_options(2, 3));
  run_bound(session, nullptr, 2, [&](int tid) {
    if (tid == 0) {
      WASP_VERIFY_WR(&cell);
      cell = 1;
      flag.store(1, std::memory_order_release);
    } else {
      while (flag.load(std::memory_order_acquire) != 1) {
      }
      WASP_VERIFY_RD(&cell);
      (void)cell;
    }
  });
  EXPECT_TRUE(session.ok()) << session.report_text();
}

// --- a deliberately buggy structure the checker must reject ---------------

/// Treiber stack with every ordering deliberately relaxed: the node payload
/// is published without a release edge. The checker must catch it.
template <std::memory_order kCasOrder>
class ToyStack {
 public:
  struct Node {
    std::uint64_t value = 0;
    Node* next = nullptr;
  };

  void push(Node* n, std::uint64_t v) {
    WASP_VERIFY_WR(n);
    n->value = v;
    Node* h = head_.load(std::memory_order_relaxed);
    do {
      n->next = h;
    } while (!head_.compare_exchange_weak(h, n, kCasOrder,
                                          std::memory_order_relaxed));
  }

  bool pop(std::uint64_t& v) {
    Node* h = head_.load(std::memory_order_relaxed);
    while (h != nullptr) {
      if (head_.compare_exchange_weak(h, h->next, kCasOrder,
                                      std::memory_order_relaxed)) {
        WASP_VERIFY_RD(h);
        v = h->value;
        return true;
      }
    }
    return false;
  }

 private:
  verify::atomic<Node*> head_{nullptr};
};

template <std::memory_order kCasOrder>
bool toy_stack_run_clean(std::uint64_t seed) {
  ToyStack<kCasOrder> stack;
  std::vector<typename ToyStack<kCasOrder>::Node> nodes(50);
  verify::atomic<int> done{0};
  Session session(session_options(2, seed));
  run_bound(session, nullptr, 2, [&](int tid) {
    if (tid == 0) {
      for (std::size_t i = 0; i < nodes.size(); ++i)
        stack.push(&nodes[i], 100 + i);
      done.store(1, std::memory_order_relaxed);
    } else {
      std::uint64_t v;
      for (;;) {
        const bool got = stack.pop(v);
        if (!got && done.load(std::memory_order_relaxed) == 1) break;
      }
    }
  });
  return session.ok();
}

TEST(ToyStack, CheckerRejectsRelaxedPublication) {
  EXPECT_FALSE(toy_stack_run_clean<std::memory_order_relaxed>(11))
      << "the buggy toy stack was not flagged: the race checker is blind";
}

TEST(ToyStack, CheckerAcceptsAcqRelPublication) {
  for (std::uint64_t seed = 0; seed < 20; ++seed)
    EXPECT_TRUE(toy_stack_run_clean<std::memory_order_acq_rel>(seed));
}

#endif  // WASP_VERIFY_ENABLED

// --- seeded linearizability harnesses over the real structures ------------
//
// Each harness runs kHarnessSeeds independent sessions. Under WASP_VERIFY
// the session's weak-memory model and the chaos engine perturb the run; the
// recorded history must stay linearizable, the session race-free, and the
// element multiset conserved.

using HarnessChunk = BasicChunk<4>;

struct DequeRunStats {
  std::uint64_t budget_exhausted = 0;
};

void deque_harness_one_seed(std::uint64_t seed, DequeRunStats& stats) {
  constexpr int kThreads = 3;  // owner + 2 thieves
  constexpr int kOwnerOps = 30;
  constexpr int kThiefOps = 12;

  // Initial capacity 2 forces ring growth mid-run, so the grow/publish
  // protocol is exercised in every history.
  ChaseLevDeque<HarnessChunk*> deque(2);
  std::vector<HarnessChunk> chunks(kOwnerOps);
  HistoryRecorder rec(kThreads);
  chaos::Engine engine(seed, chaos::Policy::uniform(4096), kThreads);
  std::vector<std::uint64_t> drained_sum(kThreads, 0);
  std::uint64_t pushed_sum = 0;

  auto drain = [](HarnessChunk* c) {
    std::uint64_t sum = 0;
    while (!c->empty()) sum += c->pop();
    return sum;
  };

  Session session(session_options(kThreads, seed));
  run_bound(session, &engine, kThreads, [&](int tid) {
    Xoshiro256 rng(hash_mix(seed * 31 + static_cast<std::uint64_t>(tid)));
    if (tid == 0) {
      int next_chunk = 0;
      for (int i = 0; i < kOwnerOps; ++i) {
        if (next_chunk < kOwnerOps && (rng.next_below(100) < 55 ||
                                       deque.empty_estimate())) {
          HarnessChunk* c = &chunks[next_chunk++];
          const auto fill = 1 + static_cast<std::uint32_t>(rng.next_below(3));
          std::uint64_t sum = 0;
          for (std::uint32_t k = 0; k < fill; ++k) {
            const auto v = static_cast<VertexId>(rng.next_below(1000) + 1);
            c->push(v);
            sum += v;
          }
          pushed_sum += sum;
          Op op = rec.begin(tid, DequeSpec::kPush,
                            reinterpret_cast<std::uint64_t>(c));
          deque.push_bottom(c);
          rec.end(op);
        } else {
          Op op = rec.begin(tid, DequeSpec::kPopBottom);
          HarnessChunk* c = deque.pop_bottom();
          op.ok = c != nullptr;
          op.r = reinterpret_cast<std::uint64_t>(c);
          rec.end(op);
          if (c != nullptr) drained_sum[0] += drain(c);
        }
      }
    } else {
      for (int i = 0; i < kThiefOps; ++i) {
        Op op = rec.begin(tid, DequeSpec::kSteal);
        HarnessChunk* c = deque.steal();
        op.ok = c != nullptr;
        op.r = reinterpret_cast<std::uint64_t>(c);
        rec.end(op);
        if (c != nullptr) {
          drained_sum[static_cast<std::size_t>(tid)] += drain(c);
        } else {
          std::this_thread::yield();
        }
      }
    }
  });

  ASSERT_TRUE(session.ok()) << replay_hint(seed) << ":\n"
                            << session.report_text();

  // Quiescent drain (unbound: plain hardware reads see the latest values).
  std::uint64_t remaining_sum = 0;
  std::set<HarnessChunk*> seen;
  auto by_thread = rec.collect();
  for (HarnessChunk* c = deque.pop_bottom(); c != nullptr;
       c = deque.pop_bottom()) {
    remaining_sum += drain(c);
    ASSERT_TRUE(seen.insert(c).second)
        << replay_hint(seed) << ": chunk drained twice at quiescence";
  }

  // Conservation: every vertex pushed into a chunk is drained exactly once.
  std::uint64_t drained_total = remaining_sum;
  for (int t = 0; t < kThreads; ++t)
    drained_total += drained_sum[static_cast<std::size_t>(t)];
  ASSERT_EQ(drained_total, pushed_sum)
      << replay_hint(seed) << ": elements lost or duplicated";

  // No chunk may be handed to two consumers.
  for (const auto& ops : by_thread)
    for (const Op& op : ops)
      if (op.kind != DequeSpec::kPush && op.ok) {
        ASSERT_TRUE(seen.insert(reinterpret_cast<HarnessChunk*>(op.r)).second)
            << replay_hint(seed) << ": chunk consumed twice";
      }

  const auto lin = linearize<DequeSpec>(by_thread);
  if (lin.budget_exhausted) ++stats.budget_exhausted;
  ASSERT_TRUE(lin.ok) << replay_hint(seed) << ":\n" << lin.explanation;
}

TEST(DequeHarness, SeededHistoriesLinearizeAndConserve) {
  DequeRunStats stats;
  const SeedRange seeds = harness_seeds();
  for (std::uint64_t seed = seeds.first; seed < seeds.last; ++seed) {
    deque_harness_one_seed(seed, stats);
    if (::testing::Test::HasFatalFailure()) return;
  }
  // If the search gives up too often the harness proves nothing.
  EXPECT_LT(stats.budget_exhausted, kHarnessSeeds / 10U);
}

template <typename Queue>
void bag_harness_one_seed(std::uint64_t seed, Queue& queue, int threads,
                          int pushes_per_thread) {
  HistoryRecorder rec(threads);
  chaos::Engine engine(seed, chaos::Policy::uniform(4096), threads);
  Session session(session_options(threads, seed));
  run_bound(session, &engine, threads, [&](int tid) {
    Xoshiro256 rng(hash_mix(seed * 131 + static_cast<std::uint64_t>(tid)));
    int pushed = 0;
    const int ops = pushes_per_thread * 2;
    for (int i = 0; i < ops; ++i) {
      if (pushed < pushes_per_thread && rng.next_below(100) < 60) {
        const auto key = static_cast<Distance>(rng.next_below(8));
        const auto value = static_cast<VertexId>(
            (static_cast<std::uint64_t>(tid) << 20) |
            static_cast<std::uint64_t>(pushed));
        Op op = rec.begin(tid, BagSpec::kPush, key, value);
        queue.push(tid, key, value);
        rec.end(op);
        ++pushed;
      } else {
        Distance key;
        VertexId value;
        Op op = rec.begin(tid, BagSpec::kPop);
        op.ok = queue.try_pop(tid, key, value);
        if (op.ok) {
          op.r = key;
          op.b = value;
        }
        rec.end(op);
      }
    }
  });

  ASSERT_TRUE(session.ok()) << replay_hint(seed) << ":\n"
                            << session.report_text();

  // Conservation at quiescence: pushed == popped + drained, as multisets.
  std::map<std::pair<Distance, VertexId>, int> balance;
  const auto by_thread = rec.collect();
  for (const auto& ops : by_thread) {
    for (const Op& op : ops) {
      if (op.kind == BagSpec::kPush) {
        ++balance[{static_cast<Distance>(op.a),
                   static_cast<VertexId>(op.b)}];
      } else if (op.ok) {
        --balance[{static_cast<Distance>(op.r),
                   static_cast<VertexId>(op.b)}];
      }
    }
  }
  bool drained_any = true;
  while (drained_any) {
    drained_any = false;
    for (int t = 0; t < threads; ++t) {
      Distance key;
      VertexId value;
      while (queue.try_pop(t, key, value)) {
        --balance[{key, value}];
        drained_any = true;
      }
    }
  }
  for (const auto& [elem, count] : balance)
    ASSERT_EQ(count, 0) << replay_hint(seed) << ": element (" << elem.first
                        << "," << elem.second
                        << ") lost or duplicated (balance " << count << ")";

  const auto lin = linearize<BagSpec>(by_thread);
  ASSERT_TRUE(lin.ok) << replay_hint(seed) << ":\n" << lin.explanation;
}

TEST(MultiQueueHarness, SeededHistoriesLinearizeAndConserve) {
  const SeedRange seeds = harness_seeds();
  for (std::uint64_t seed = seeds.first; seed < seeds.last; ++seed) {
    MultiQueue::Config cfg;
    cfg.threads = 3;
    cfg.c = 2;
    cfg.buffer_size = 4;
    cfg.stickiness = 2;
    cfg.seed = seed + 1;
    MultiQueue mq(cfg);
    bag_harness_one_seed(seed, mq, cfg.threads, 10);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(StealingMultiQueueHarness, SeededHistoriesLinearizeAndConserve) {
  const SeedRange seeds = harness_seeds();
  for (std::uint64_t seed = seeds.first; seed < seeds.last; ++seed) {
    StealingMultiQueue::Config cfg;
    cfg.threads = 3;
    cfg.steal_batch = 2;
    cfg.seed = seed + 1;
    StealingMultiQueue smq(cfg);
    bag_harness_one_seed(seed, smq, cfg.threads, 10);
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(ChunkPoolHarness, SeededHistoriesKeepOwnershipExclusive) {
  const SeedRange seeds = harness_seeds();
  for (std::uint64_t seed = seeds.first; seed < seeds.last; ++seed) {
    constexpr int kThreads = 3;
    BasicChunkArena<HarnessChunk> arena;
    HistoryRecorder rec(kThreads);
    chaos::Engine engine(seed, chaos::Policy::alloc_pressure(), kThreads);
    Session session(session_options(kThreads, seed));
    run_bound(session, &engine, kThreads, [&](int tid) {
      BasicChunkPool<HarnessChunk> pool(arena, /*block_size=*/4);
      Xoshiro256 rng(hash_mix(seed * 17 + static_cast<std::uint64_t>(tid)));
      std::vector<HarnessChunk*> held;
      for (int i = 0; i < 24; ++i) {
        if (held.empty() || rng.next_below(100) < 60) {
          Op op = rec.begin(tid, PoolSpec::kGet);
          HarnessChunk* c = pool.get();
          op.r = reinterpret_cast<std::uint64_t>(c);
          rec.end(op);
          c->push(static_cast<VertexId>(i));  // touch: ownership must hold
          held.push_back(c);
        } else {
          HarnessChunk* c = held.back();
          held.pop_back();
          c->reset();
          Op op = rec.begin(tid, PoolSpec::kPut,
                            reinterpret_cast<std::uint64_t>(c));
          pool.put(c);
          rec.end(op);
        }
      }
    });
    ASSERT_TRUE(session.ok()) << replay_hint(seed) << ":\n"
                              << session.report_text();
    const auto lin = linearize<PoolSpec>(rec.collect());
    ASSERT_TRUE(lin.ok) << replay_hint(seed) << ":\n" << lin.explanation;
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(SpinLockHarness, LockAndTryLockOrderPlainWrites) {
  // Exercises both acquisition paths (lock and try_lock spin) against the
  // race checker: a weakened exchange-acquire or unlock-release makes the
  // next holder's clock miss the previous holder's plain write.
  const SeedRange seeds = harness_seeds();
  for (std::uint64_t seed = seeds.first; seed < seeds.last; ++seed) {
    SpinLock lock;
    std::uint64_t counter = 0;
    Session session(session_options(3, seed));
    run_bound(session, nullptr, 3, [&](int tid) {
      for (int i = 0; i < 40; ++i) {
        if (tid == 2) {
          while (!lock.try_lock()) std::this_thread::yield();
        } else {
          lock.lock();
        }
        WASP_VERIFY_WR(&counter);
        ++counter;
        lock.unlock();
      }
    });
    ASSERT_TRUE(session.ok()) << replay_hint(seed) << ":\n"
                              << session.report_text();
    ASSERT_EQ(counter, 120U) << replay_hint(seed) << ": lost increment";
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(FrontierBagHarness, PhasedDisciplineIsRaceFree) {
  const SeedRange seeds = harness_seeds();
  for (std::uint64_t seed = seeds.first; seed < seeds.last; ++seed) {
    constexpr int kThreads = 3;
    FrontierBag bag(kThreads);
    ModelBarrier barrier(kThreads);
    std::vector<VertexId> out(kThreads * 8);
    std::size_t total = 0;
    Session session(session_options(kThreads, seed));
    run_bound(session, nullptr, kThreads, [&](int tid) {
      for (int i = 0; i < 8; ++i)
        bag.insert(tid, static_cast<VertexId>(tid * 100 + i));
      barrier.wait();
      if (tid == 0) total = bag.compute_offsets();
      barrier.wait();
      bag.copy_out_and_clear(tid, out.data());
    });
    ASSERT_TRUE(session.ok()) << replay_hint(seed) << ":\n"
                              << session.report_text();
    ASSERT_EQ(total, out.size());
    std::vector<VertexId> sorted = out;
    std::sort(sorted.begin(), sorted.end());
    for (int t = 0; t < kThreads; ++t)
      for (int i = 0; i < 8; ++i)
        ASSERT_TRUE(std::binary_search(sorted.begin(), sorted.end(),
                                       static_cast<VertexId>(t * 100 + i)));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

#if defined(WASP_VERIFY_ENABLED) && WASP_VERIFY_ENABLED
TEST(FrontierBagHarness, UnorderedScanIsReportedAsRace) {
  // compute_offsets concurrent with another thread's insert, no barrier:
  // the phase discipline is violated and the checker must say so.
  FrontierBag bag(2);
  Session session(session_options(2, 5));
  run_bound(session, nullptr, 2, [&](int tid) {
    if (tid == 0) {
      (void)bag.compute_offsets();
    } else {
      bag.insert(1, 42);
    }
  });
  EXPECT_FALSE(session.ok())
      << "an unsynchronized offset scan over live segments must be flagged";
}
#endif  // WASP_VERIFY_ENABLED

// --- seeded end-to-end scheduler harness ----------------------------------
//
// The real solvers (wasp.cpp, delta_stepping.cpp, stepping.cpp) construct a
// verify::ScopedSchedule at the top of their team lambdas. With a Session
// and a Scheduler installed, every solve below therefore runs the *actual*
// production protocol — Chase-Lev deques, termination scan, barriers — as
// one deterministic virtual schedule: the scheduler serializes the team
// onto a single token and moves it between threads at instrumented
// operations, driven by a seeded PRNG, while the happens-before model
// feeds stale-but-admissible values to weakly-ordered loads. Distances are
// checked against sequential Dijkstra for every schedule; any model
// violation (race, impossible value) fails with a replayable seed. Without
// WASP_VERIFY the same tests run as plain multi-threaded stress.

#if defined(WASP_VERIFY_ENABLED) && WASP_VERIFY_ENABLED
constexpr std::uint64_t kE2eSeeds = 500;  // acceptance floor for the sweep
#else
constexpr std::uint64_t kE2eSeeds = 60;
#endif

/// The pinned schedule: seed 17 runs 4 model threads on the star graph
/// with two-choice stealing — a schedule-rich configuration (preemptions
/// at deque, termination-scan, and steal sites) kept as a regression
/// anchor. If scheduler decisions are ever renumbered or the instrumented
/// op set changes, this seed's fingerprint (asserted reproducible below)
/// and outcome flag it immediately.
constexpr std::uint64_t kPinnedSeed = 17;

Scheduler::Options scheduler_options(int threads, std::uint64_t seed) {
  Scheduler::Options o;
  o.threads = threads;
  o.seed = seed;
  return o;
}

struct E2eCase {
  Graph graph;
  VertexId source;
};

/// Tiny on purpose: under the serialized scheduler the budget is schedule
/// points, not vertices. Shapes chosen so steals, leaf pruning, bucket
/// churn, and disconnected vertices all occur across the sweep.
const std::vector<E2eCase>& e2e_cases() {
  static const std::vector<E2eCase> cases = [] {
    std::vector<E2eCase> cs;
    const auto add = [&cs](Graph g) {
      const VertexId src = pick_source_in_largest_component(g, 7);
      cs.push_back(E2eCase{std::move(g), src});
    };
    add(gen::grid(4, 4, WeightScheme::gap(), 21));
    add(gen::chain_forest(2, 12, WeightScheme::gap(), 22));
    add(gen::erdos_renyi(32, 3.0, WeightScheme::gap(), 23));
    add(gen::star_hub(24, 0.5, 0.1, WeightScheme::gap(), 24));
    return cs;
  }();
  return cases;
}

struct E2eOutcome {
  std::uint64_t schedule_hash = 0;
  std::uint64_t schedule_points = 0;
  std::uint64_t switches = 0;
};

/// One seeded end-to-end schedule of the real solver. The seed fans out
/// into the thread count (2-4), the graph, the steal policy, the session's
/// stale-value streams, and every scheduling decision.
E2eOutcome e2e_one_seed(Algorithm algo, std::uint64_t seed,
                        bool partitioned = false) {
  const int threads = 2 + static_cast<int>(seed % 3);
  const auto& cases = e2e_cases();
  const E2eCase& c = cases[static_cast<std::size_t>(seed % cases.size())];
  const SsspResult reference = dijkstra(c.graph, c.source);

  SsspOptions options;
  options.algo = algo;
  options.threads = threads;
  options.delta = 8;
  options.seed = seed + 1;
  options.wasp.theta = 64;
  options.wasp.chunk_capacity = 16;  // small chunks: more deque traffic
  options.wasp.steal_policy = seed % 2 == 0 ? StealPolicy::kPriorityNuma
                                            : StealPolicy::kTwoChoice;
  if (partitioned) {
    // Partitioned engine under the serialized scheduler: a multi-node
    // synthetic topology so fragments and remote queues actually form, and
    // a tiny flush threshold so the publish/grab/in-flight protocol of
    // remote_queue.hpp fires every few relaxations (its memory-order
    // mutants must die here).
    options.wasp.topology =
        std::make_shared<NumaTopology>(NumaTopology::synthetic(2, 1, 2));
    options.wasp.partition.enabled = true;
    options.wasp.partition.num_fragments = 2 + static_cast<int>(seed % 2);
    options.wasp.partition.flush_threshold = 1 + (seed % 4);
  }

  E2eOutcome out;
  Session session(session_options(threads, seed));
  {
    Scheduler scheduler(scheduler_options(threads, seed));
    const SsspResult result = run_sssp(c.graph, c.source, options);
    out.schedule_hash = scheduler.schedule_hash();
    out.schedule_points = scheduler.schedule_points();
    out.switches = scheduler.switches();

    EXPECT_TRUE(session.ok()) << replay_hint(seed) << ":\n"
                              << session.report_text();
    std::string message;
    EXPECT_TRUE(distances_equal(reference.dist, result.dist, &message))
        << replay_hint(seed) << " (" << to_string(algo)
        << ", threads=" << threads << "): " << message;
  }
  return out;
}

TEST(SchedulerHarness, WaspEndToEndSchedulesMatchDijkstra) {
  const SeedRange seeds = harness_seeds(kE2eSeeds);
  for (std::uint64_t seed = seeds.first; seed < seeds.last; ++seed) {
    e2e_one_seed(Algorithm::kWasp, seed);
    if (::testing::Test::HasFailure()) return;
  }
}

TEST(SchedulerHarness, PartitionedWaspEndToEndSchedulesMatchDijkstra) {
  const SeedRange seeds = harness_seeds(kE2eSeeds / 2);
  for (std::uint64_t seed = seeds.first; seed < seeds.last; ++seed) {
    e2e_one_seed(Algorithm::kWasp, seed, /*partitioned=*/true);
    if (::testing::Test::HasFailure()) return;
  }
}

TEST(SchedulerHarness, DeltaSteppingEndToEndSchedulesMatchDijkstra) {
  const SeedRange seeds = harness_seeds(kE2eSeeds / 4);
  for (std::uint64_t seed = seeds.first; seed < seeds.last; ++seed) {
    e2e_one_seed(Algorithm::kDeltaStepping, seed);
    if (::testing::Test::HasFailure()) return;
  }
}

TEST(SchedulerHarness, PinnedSeedReplaysScheduleBitForBit) {
  // Replay contract: the schedule is a pure function of the seed. Two runs
  // of the pinned seed must execute the identical decision sequence
  // (FNV-1a fingerprint over every token grant, schedule point, and switch
  // target), and a different seed must diverge — otherwise the replay
  // command printed by replay_hint() would not reproduce failures.
  const E2eOutcome first = e2e_one_seed(Algorithm::kWasp, kPinnedSeed);
  const E2eOutcome second = e2e_one_seed(Algorithm::kWasp, kPinnedSeed);
  EXPECT_EQ(first.schedule_hash, second.schedule_hash)
      << "same seed, different schedule: replay is broken";
  EXPECT_EQ(first.schedule_points, second.schedule_points);
  EXPECT_EQ(first.switches, second.switches);
  if (kModelOn) {
    // The pinned schedule must actually exercise the scheduler: solver
    // threads reach instrumented operations and get preempted there.
    EXPECT_GT(first.schedule_points, 100u)
        << "the pinned schedule barely entered the instrumented solver";
    EXPECT_GT(first.switches, 0u)
        << "the pinned schedule never preempted: switch_rate plumbing lost";
    // Same thread count (kPinnedSeed + 3 keeps seed % 3), different
    // decision stream.
    const E2eOutcome other = e2e_one_seed(Algorithm::kWasp, kPinnedSeed + 3);
    EXPECT_NE(first.schedule_hash, other.schedule_hash)
        << "different seeds produced identical schedules";
  }
}

TEST(SchedulerHarness, ModelBarrierDeltaSteppingRoundInSitu) {
  // One hand-rolled delta-stepping round under the scheduler, with the
  // phase discipline carried by ModelBarrier: every thread relaxes its
  // share of the source's out-edges (CAS loops on checked distances),
  // inserts the improved vertices into the FrontierBag, and the bag's
  // insert -> compute_offsets -> copy_out_and_clear contract is checked in
  // situ against the model — the same contract stepping.cpp's rounds rely
  // on, here with real relaxation between the barriers instead of a
  // synthetic fill.
  const Graph g = gen::grid(5, 5, WeightScheme::gap(), 31);
  const VertexId src = pick_source_in_largest_component(g, 7);
  const auto edges = g.out_neighbors(src);
  ASSERT_GT(edges.size(), 1u);

  const SeedRange seeds = harness_seeds(kE2eSeeds / 4);
  for (std::uint64_t seed = seeds.first; seed < seeds.last; ++seed) {
    constexpr int kThreads = 3;
    FrontierBag bag(kThreads);
    ModelBarrier barrier(kThreads);
    std::unique_ptr<verify::atomic<Distance>[]> dist(
        new verify::atomic<Distance>[g.num_vertices()]);
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      dist[v].store(v == src ? 0 : kInfDist, std::memory_order_relaxed);
    std::vector<VertexId> frontier(edges.size(), kInvalidVertex);
    std::size_t total = 0;

    Session session(session_options(kThreads, seed));
    {
      Scheduler scheduler(scheduler_options(kThreads, seed));
      run_bound(session, nullptr, kThreads, [&](int tid) {
        verify::ScopedSchedule schedule_guard(tid);
        for (std::size_t i = static_cast<std::size_t>(tid); i < edges.size();
             i += kThreads) {
          const VertexId v = edges[i].dst;
          const Distance cand = edges[i].w;  // dist[src] == 0
          Distance cur = dist[v].load(std::memory_order_relaxed);
          while (cand < cur &&
                 !dist[v].compare_exchange_weak(cur, cand,
                                                std::memory_order_acq_rel,
                                                std::memory_order_relaxed)) {
          }
          if (cand < cur) bag.insert(tid, v);
        }
        barrier.wait();
        if (tid == 0) total = bag.compute_offsets();
        barrier.wait();
        bag.copy_out_and_clear(tid, frontier.data());
      });
    }
    ASSERT_TRUE(session.ok()) << replay_hint(seed) << ":\n"
                              << session.report_text();

    // The grid source's neighbors are distinct, all previously unreached:
    // the round must put each of them in the frontier exactly once with
    // its edge weight as the settled tentative distance.
    ASSERT_EQ(total, edges.size()) << replay_hint(seed);
    std::vector<VertexId> sorted(frontier.begin(), frontier.end());
    std::sort(sorted.begin(), sorted.end());
    for (const auto& e : edges) {
      ASSERT_TRUE(std::binary_search(sorted.begin(), sorted.end(), e.dst))
          << replay_hint(seed) << ": vertex " << e.dst
          << " missing from the copied-out frontier";
      ASSERT_EQ(dist[e.dst].load(std::memory_order_relaxed), e.w)
          << replay_hint(seed) << ": wrong settled distance for " << e.dst;
    }
    if (::testing::Test::HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace wasp
