// Tests for the validation helpers themselves: they must accept correct
// distance vectors and reject each class of corruption.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/validate.hpp"

namespace wasp {
namespace {

Graph small_graph() {
  return Graph::from_edges(5, {{0, 1, 2}, {0, 2, 7}, {1, 2, 3}, {2, 3, 1}},
                           false);
}

TEST(DistancesEqual, AcceptsIdentical) {
  std::string msg;
  EXPECT_TRUE(distances_equal({1, 2, 3}, {1, 2, 3}, &msg));
}

TEST(DistancesEqual, RejectsMismatchWithLocation) {
  std::string msg;
  EXPECT_FALSE(distances_equal({1, 2, 3}, {1, 9, 3}, &msg));
  EXPECT_NE(msg.find("vertex 1"), std::string::npos);
}

TEST(DistancesEqual, RejectsSizeMismatch) {
  std::string msg;
  EXPECT_FALSE(distances_equal({1, 2}, {1, 2, 3}, &msg));
  EXPECT_NE(msg.find("size"), std::string::npos);
}

TEST(ValidateSssp, AcceptsDijkstraOutput) {
  const Graph g = small_graph();
  const auto r = dijkstra(g, 0);
  std::string msg;
  EXPECT_TRUE(validate_sssp(g, 0, r.dist, &msg)) << msg;
}

TEST(ValidateSssp, AcceptsOnGeneratedGraphs) {
  const Graph g = gen::rmat(10, 4096, 0.57, 0.19, 0.19, WeightScheme::gap(), 5,
                            true);
  const auto r = dijkstra(g, 0);
  std::string msg;
  EXPECT_TRUE(validate_sssp(g, 0, r.dist, &msg)) << msg;
}

TEST(ValidateSssp, RejectsNonZeroSource) {
  const Graph g = small_graph();
  auto dist = dijkstra(g, 0).dist;
  dist[0] = 1;
  std::string msg;
  EXPECT_FALSE(validate_sssp(g, 0, dist, &msg));
}

TEST(ValidateSssp, RejectsRelaxableEdge) {
  const Graph g = small_graph();
  auto dist = dijkstra(g, 0).dist;
  dist[3] = 100;  // edge (2,3,1) becomes relaxable: 5 + 1 < 100
  std::string msg;
  EXPECT_FALSE(validate_sssp(g, 0, dist, &msg));
  EXPECT_NE(msg.find("relaxable"), std::string::npos);
}

TEST(ValidateSssp, RejectsUnwitnessedDistance) {
  const Graph g = small_graph();
  auto dist = dijkstra(g, 0).dist;
  dist[4] = 1;  // vertex 4 has no in-edges at all
  std::string msg;
  EXPECT_FALSE(validate_sssp(g, 0, dist, &msg));
  EXPECT_NE(msg.find("no in-edge"), std::string::npos);
}

TEST(ValidateSssp, RejectsTooSmallDistance) {
  const Graph g = small_graph();
  auto dist = dijkstra(g, 0).dist;
  dist[2] = 4;  // true distance is 5; no in-edge achieves 4
  std::string msg;
  EXPECT_FALSE(validate_sssp(g, 0, dist, &msg));
}

TEST(ValidateSssp, RejectsWrongSize) {
  const Graph g = small_graph();
  std::string msg;
  EXPECT_FALSE(validate_sssp(g, 0, {0, 1}, &msg));
}

}  // namespace
}  // namespace wasp
