// Betweenness-centrality sampling — the application the paper's introduction
// cites (Brandes' algorithm): repeated SSSP is the inner loop, so a faster
// SSSP directly accelerates centrality analytics.
//
// Runs Brandes' dependency accumulation from k sampled sources: Wasp
// computes the distances in parallel; the shortest-path DAG counting and the
// backward dependency sweep run per source over the tight edges.
//
//   ./betweenness [--scale 13] [--threads 4] [--samples 8] [--top 10]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "sssp/solver.hpp"
#include "support/cli.hpp"
#include "support/random.hpp"
#include "support/timer.hpp"

namespace {

/// One Brandes iteration: given SSSP distances from `s`, accumulate the
/// pair-dependency of every vertex into `centrality`.
void accumulate_dependencies(const wasp::Graph& g, wasp::VertexId s,
                             const std::vector<wasp::Distance>& dist,
                             std::vector<double>& centrality) {
  const wasp::VertexId n = g.num_vertices();
  // Order reached vertices by distance: a topological order of the
  // shortest-path DAG (tight edges only go from smaller to larger distance;
  // zero-weight ties are broken by the stable sort on distance which is
  // sufficient for positively weighted graphs).
  std::vector<wasp::VertexId> order;
  order.reserve(n);
  for (wasp::VertexId v = 0; v < n; ++v)
    if (dist[v] != wasp::kInfDist) order.push_back(v);
  std::sort(order.begin(), order.end(),
            [&](wasp::VertexId a, wasp::VertexId b) { return dist[a] < dist[b]; });

  // Forward sweep: sigma[v] = number of shortest s-v paths.
  std::vector<double> sigma(n, 0.0);
  sigma[s] = 1.0;
  for (const wasp::VertexId u : order) {
    for (const wasp::WEdge& e : g.out_neighbors(u)) {
      if (dist[e.dst] != wasp::kInfDist && dist[u] + e.w == dist[e.dst])
        sigma[e.dst] += sigma[u];
    }
  }
  // Backward sweep: delta[u] += sigma[u]/sigma[v] * (1 + delta[v]).
  std::vector<double> delta(n, 0.0);
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const wasp::VertexId u = *it;
    for (const wasp::WEdge& e : g.out_neighbors(u)) {
      if (dist[e.dst] != wasp::kInfDist && dist[u] + e.w == dist[e.dst] &&
          sigma[e.dst] > 0.0) {
        delta[u] += sigma[u] / sigma[e.dst] * (1.0 + delta[e.dst]);
      }
    }
    if (u != s) centrality[u] += delta[u];
  }
}

}  // namespace

int main(int argc, char** argv) {
  wasp::ArgParser args("betweenness",
                       "sampled betweenness centrality via repeated SSSP");
  args.add_int("scale", 13, "log2 of the number of vertices");
  args.add_int("threads", 4, "worker threads for each SSSP");
  args.add_int("samples", 8, "number of sampled sources");
  args.add_int("top", 10, "how many top-central vertices to print");
  args.parse(argc, argv);

  const int scale = static_cast<int>(args.get_int("scale"));
  const wasp::Graph g = wasp::gen::rmat(
      scale, static_cast<wasp::EdgeIndex>(8) << scale, 0.57, 0.19, 0.19,
      wasp::WeightScheme::uniform(1, 64), 77, /*undirected=*/true);
  std::printf("graph: 2^%d vertices, %llu edges\n", scale,
              static_cast<unsigned long long>(g.num_edges()));

  wasp::SsspOptions options;
  options.algo = wasp::Algorithm::kWasp;
  options.threads = static_cast<int>(args.get_int("threads"));
  options.delta = 1;

  const auto samples = static_cast<int>(args.get_int("samples"));
  std::vector<double> centrality(g.num_vertices(), 0.0);
  wasp::Xoshiro256 rng(9);
  // The Brandes inner loop is exactly the repeat-query shape Solver is for:
  // one team + pooled distances across all sampled sources.
  wasp::Solver solver(options);
  wasp::Timer timer;
  double sssp_seconds = 0.0;
  for (int i = 0; i < samples; ++i) {
    const auto s = wasp::pick_source_in_largest_component(
        g, 100 + static_cast<std::uint64_t>(i));
    const wasp::SsspResult r = solver.solve(g, s);
    sssp_seconds += r.stats.seconds;
    accumulate_dependencies(g, s, r.dist, centrality);
  }
  std::printf("%d samples in %.1f ms total (%.1f ms inside SSSP)\n", samples,
              timer.seconds() * 1e3, sssp_seconds * 1e3);

  std::vector<wasp::VertexId> ranked(g.num_vertices());
  for (wasp::VertexId v = 0; v < g.num_vertices(); ++v) ranked[v] = v;
  const auto top = static_cast<std::size_t>(args.get_int("top"));
  std::partial_sort(ranked.begin(), ranked.begin() + static_cast<std::ptrdiff_t>(top),
                    ranked.end(), [&](wasp::VertexId a, wasp::VertexId b) {
                      return centrality[a] > centrality[b];
                    });
  std::printf("\ntop-%zu betweenness (sampled, unnormalized):\n", top);
  for (std::size_t i = 0; i < top; ++i) {
    std::printf("  %8u  score %.1f  degree %u\n", ranked[i],
                centrality[ranked[i]], g.out_degree(ranked[i]));
  }
  return 0;
}
