// Quickstart: build a small weighted graph, run Wasp, print distances.
//
//   ./quickstart
//
// Demonstrates the two core public entry points: Graph::from_edges and
// run_sssp with the Wasp algorithm.
#include <cstdio>

#include "graph/graph.hpp"
#include "sssp/sssp.hpp"

int main() {
  // The sample graph of the paper's Figure 1: a small weighted digraph.
  //        1        3
  //   0 ------> 1 -----> 3
  //   |         |        ^
  //   | 4       | 2      | 1
  //   v         v        |
  //   2 ------> 4 -------+
  //        5        (4,3,1)
  const wasp::Graph graph = wasp::Graph::from_edges(
      5,
      {{0, 1, 1}, {0, 2, 4}, {1, 3, 3}, {1, 4, 2}, {2, 4, 5}, {4, 3, 1}},
      /*undirected=*/false);

  wasp::SsspOptions options;
  options.algo = wasp::Algorithm::kWasp;
  options.threads = 4;
  options.delta = 1;  // fine-grained priorities: Wasp's recommended default

  const wasp::SsspResult result = wasp::run_sssp(graph, /*source=*/0, options);

  std::printf("shortest distances from vertex 0:\n");
  for (wasp::VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (result.dist[v] == wasp::kInfDist) {
      std::printf("  %u: unreachable\n", v);
    } else {
      std::printf("  %u: %u\n", v, result.dist[v]);
    }
  }
  std::printf("edge relaxations: %llu, wall time: %.3f ms\n",
              static_cast<unsigned long long>(result.stats.relaxations),
              result.stats.seconds * 1e3);
  return 0;
}
