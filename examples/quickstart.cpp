// Quickstart: build a small weighted graph, run Wasp, print distances.
//
//   ./quickstart
//
// Demonstrates the two core public entry points: GraphBuilder for
// construction and wasp::Solver for queries (the Solver owns the thread
// team and the epoch-versioned distance pool, so repeat queries skip the
// O(V) reinitialization).
#include <cstdio>

#include "graph/builder.hpp"
#include "sssp/solver.hpp"

int main() {
  // The sample graph of the paper's Figure 1: a small weighted digraph.
  //        1        3
  //   0 ------> 1 -----> 3
  //   |         |        ^
  //   | 4       | 2      | 1
  //   v         v        |
  //   2 ------> 4 -------+
  //        5        (4,3,1)
  const wasp::Graph graph =
      wasp::GraphBuilder()
          .edges(5, {{0, 1, 1}, {0, 2, 4}, {1, 3, 3}, {1, 4, 2}, {2, 4, 5},
                     {4, 3, 1}})
          .undirected(false)
          .build();

  wasp::SsspOptions options;
  options.algo = wasp::Algorithm::kWasp;
  options.threads = 4;
  options.delta = 1;  // fine-grained priorities: Wasp's recommended default

  wasp::Solver solver(options);
  const wasp::SsspResult result = solver.solve(graph, /*source=*/0);

  std::printf("shortest distances from vertex 0:\n");
  for (wasp::VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (result.dist[v] == wasp::kInfDist) {
      std::printf("  %u: unreachable\n", v);
    } else {
      std::printf("  %u: %u\n", v, result.dist[v]);
    }
  }
  std::printf("edge relaxations: %llu, wall time: %.3f ms\n",
              static_cast<unsigned long long>(result.stats.relaxations),
              result.stats.seconds * 1e3);
  return 0;
}
