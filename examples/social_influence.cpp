// Social-network influence scenario: skewed-degree graphs, the other
// workload family of the paper's evaluation (Twitter/Friendster/Orkut).
//
// Builds an RMAT social graph where edge weights model interaction cost,
// then uses repeated SSSP to (a) measure each candidate seed's "reach"
// within an influence budget and (b) rank seeds by closeness centrality.
//
//   ./social_influence [--scale 14] [--threads 4] [--seeds 4] [--budget 40]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "sssp/solver.hpp"
#include "support/cli.hpp"

int main(int argc, char** argv) {
  wasp::ArgParser args("social_influence",
                       "influence reach + closeness ranking via repeated SSSP");
  args.add_int("scale", 14, "log2 of the number of users");
  args.add_int("threads", 4, "worker threads");
  args.add_int("seeds", 4, "candidate seed users to evaluate");
  args.add_int("budget", 40, "influence budget (max path cost)");
  args.parse(argc, argv);

  const int scale = static_cast<int>(args.get_int("scale"));
  const auto edges = static_cast<wasp::EdgeIndex>(16) << scale;
  std::printf("building RMAT social network (2^%d users, ~%llu links)...\n",
              scale, static_cast<unsigned long long>(edges));
  const wasp::Graph network =
      wasp::gen::rmat(scale, edges, 0.57, 0.19, 0.19,
                      wasp::WeightScheme::uniform(1, 16), 2024, /*undirected=*/true);

  // Candidate seeds: the highest-degree users (hubs spread fastest).
  std::vector<wasp::VertexId> by_degree(network.num_vertices());
  for (wasp::VertexId v = 0; v < network.num_vertices(); ++v) by_degree[v] = v;
  std::sort(by_degree.begin(), by_degree.end(),
            [&](wasp::VertexId a, wasp::VertexId b) {
              return network.out_degree(a) > network.out_degree(b);
            });

  wasp::SsspOptions options;
  options.algo = wasp::Algorithm::kWasp;
  options.threads = static_cast<int>(args.get_int("threads"));
  options.delta = 1;  // skewed graphs: delta=1 is Wasp's sweet spot (§5)

  const auto budget = static_cast<wasp::Distance>(args.get_int("budget"));
  const auto num_seeds = static_cast<int>(args.get_int("seeds"));

  // One Solver for all seeds: repeat queries reuse the team and the pooled
  // distance array (epoch reset instead of an O(V) sweep per query).
  wasp::Solver solver(options);

  std::printf("\n%-10s %-8s %-12s %-14s %-10s\n", "seed", "degree",
              "reach<=budget", "closeness", "time(ms)");
  for (int s = 0; s < num_seeds; ++s) {
    const wasp::VertexId seed = by_degree[static_cast<std::size_t>(s)];
    const wasp::SsspResult r = solver.solve(network, seed);

    std::uint64_t reach = 0;
    double closeness_sum = 0.0;
    for (wasp::VertexId v = 0; v < network.num_vertices(); ++v) {
      if (v == seed || r.dist[v] == wasp::kInfDist) continue;
      if (r.dist[v] <= budget) ++reach;
      closeness_sum += r.dist[v];
    }
    const double closeness =
        closeness_sum > 0 ? static_cast<double>(network.num_vertices() - 1) /
                                closeness_sum
                          : 0.0;
    std::printf("%-10u %-8u %-12llu %-14.6f %-10.1f\n", seed,
                network.out_degree(seed), static_cast<unsigned long long>(reach),
                closeness, r.stats.seconds * 1e3);
  }
  return 0;
}
