// Road-network navigation under live traffic: the dynamic workload class
// from ROADMAP item 2 (road weights change between queries; link churn
// closes and reopens segments).
//
// Generates a grid road network wrapped in a VersionedGraph, computes
// one-to-all travel times from a depot, then replays traffic ticks: each
// tick applies a GraphDelta batch (congestion spikes, clearing roads, and
// periodic closures/reopenings), and the IncrementalSolver repairs only the
// affected cone instead of re-solving the whole network. Every tick is
// cross-checked against sequential Dijkstra on the current graph.
//
//   ./road_navigation [--side 400] [--threads 4] [--ticks 12] [--spikes 24]
//                     [--delta 64]
#include <algorithm>
#include <cstdio>

#include "graph/delta.hpp"
#include "graph/generators.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/incremental.hpp"
#include "support/cli.hpp"
#include "support/random.hpp"

namespace {

/// One existing road segment, sampled uniformly-ish from the current graph.
struct Segment {
  wasp::VertexId u = 0;
  wasp::VertexId v = 0;
  wasp::Weight w = 0;
};

Segment sample_segment(const wasp::VersionedGraph& roads,
                       wasp::Xoshiro256& rng) {
  for (;;) {
    const auto u = static_cast<wasp::VertexId>(
        rng.next_below(roads.num_vertices()));
    const auto adj = roads.out_neighbors(u);
    if (adj.empty()) continue;
    const wasp::WEdge e = adj[rng.next_below(adj.size())];
    return {u, e.dst, e.w};
  }
}

}  // namespace

int main(int argc, char** argv) {
  wasp::ArgParser args("road_navigation",
                       "live-traffic travel times on a grid road network");
  args.add_int("side", 400, "grid side length (side^2 intersections)");
  args.add_int("threads", 4, "worker threads");
  args.add_int("ticks", 12, "traffic update batches to replay");
  args.add_int("spikes", 24, "congestion / clearing events per tick");
  args.add_int("delta", 64, "bucket width (road graphs favour larger delta)");
  args.parse(argc, argv);

  const auto side = static_cast<std::uint32_t>(args.get_int("side"));
  std::printf("building %ux%u road grid...\n", side, side);
  wasp::VersionedGraph roads(
      wasp::gen::grid(side, side, wasp::WeightScheme::uniform(1, 100), 42));
  std::printf("  %u intersections, %llu road segments\n", roads.num_vertices(),
              static_cast<unsigned long long>(roads.num_edges() / 2));

  const wasp::VertexId depot = roads.num_vertices() / 2 + side / 2;  // center

  wasp::SsspOptions options;
  options.algo = wasp::Algorithm::kWasp;
  options.threads = static_cast<int>(args.get_int("threads"));
  options.delta = static_cast<wasp::Weight>(args.get_int("delta"));

  wasp::IncrementalSolver nav(options);
  const std::vector<wasp::Distance>& dist = nav.solve(roads, depot);
  std::printf("one-to-all from depot %u: %.1f ms with %d threads (full solve)\n",
              depot, nav.last_repair().seconds * 1e3, options.threads);
  (void)dist;  // refreshed in place by every nav.solve below

  const auto ticks = static_cast<int>(args.get_int("ticks"));
  const auto spikes = static_cast<int>(args.get_int("spikes"));
  wasp::Xoshiro256 rng(7);
  Segment closed;  // the currently closed segment, reopened next closure tick
  bool have_closed = false;

  std::printf("\n%-5s %-4s %-5s %-9s %-8s %-8s %-11s %-11s %s\n", "tick",
              "ver", "ops", "mode", "cone", "seeds", "repair(ms)",
              "dijk(ms)", "check");
  bool all_ok = true;
  for (int tick = 0; tick < ticks; ++tick) {
    wasp::GraphDelta delta;

    // Congestion spikes (weights jump) and clearing roads (weights settle
    // back into the base range).
    for (int s = 0; s < spikes; ++s) {
      const Segment seg = sample_segment(roads, rng);
      if (s % 2 == 0) {
        const auto jam = static_cast<wasp::Weight>(
            std::min<std::uint64_t>(std::uint64_t{seg.w} * 4, 800));
        delta.set_weight(seg.u, seg.v, jam);
      } else {
        delta.set_weight(
            seg.u, seg.v,
            static_cast<wasp::Weight>(1 + rng.next_below(100)));
      }
    }

    // Every fourth tick: reopen the previously closed segment and close a
    // fresh one (structural churn — exercises insert/erase + compaction).
    if (tick % 4 == 3) {
      if (have_closed) delta.insert(closed.u, closed.v, closed.w);
      closed = sample_segment(roads, rng);
      delta.erase(closed.u, closed.v);
      have_closed = true;
    }

    const std::uint64_t version = roads.apply(delta);
    const std::vector<wasp::Distance>& repaired = nav.solve(roads, depot);
    const wasp::RepairStats& rs = nav.last_repair();

    const wasp::SsspResult reference = wasp::dijkstra(roads.graph(), depot);
    const bool ok = reference.dist == repaired;
    all_ok = all_ok && ok;
    std::printf("%-5d %-4llu %-5zu %-9s %-8llu %-8llu %-11.2f %-11.2f %s\n",
                tick, static_cast<unsigned long long>(version), delta.size(),
                rs.full_solve ? "full" : "repair",
                static_cast<unsigned long long>(rs.cone_vertices),
                static_cast<unsigned long long>(rs.seed_vertices),
                rs.seconds * 1e3, reference.stats.seconds * 1e3,
                ok ? "exact" : "MISMATCH (bug!)");
  }

  std::printf("\ncross-check vs sequential Dijkstra after every batch: %s\n",
              all_ok ? "EXACT MATCH" : "MISMATCH (bug!)");
  return all_ok ? 0 : 1;
}
