// Road-network navigation scenario: the workload class where the paper's
// asynchronous design shines (large diameter, no barrier overhead).
//
// Generates a grid road network, computes one-to-all travel times from a
// depot with Wasp, answers a batch of point-to-point queries, and
// cross-checks a few of them against sequential Dijkstra.
//
//   ./road_navigation [--side 400] [--threads 4] [--queries 8] [--delta 64]
#include <cstdio>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/sssp.hpp"
#include "support/cli.hpp"
#include "support/random.hpp"

int main(int argc, char** argv) {
  wasp::ArgParser args("road_navigation",
                       "one-to-all travel times on a grid road network");
  args.add_int("side", 400, "grid side length (side^2 intersections)");
  args.add_int("threads", 4, "worker threads");
  args.add_int("queries", 8, "number of point-to-point queries");
  args.add_int("delta", 64, "bucket width (road graphs favour larger delta)");
  args.parse(argc, argv);

  const auto side = static_cast<std::uint32_t>(args.get_int("side"));
  std::printf("building %ux%u road grid...\n", side, side);
  const wasp::Graph roads =
      wasp::gen::grid(side, side, wasp::WeightScheme::uniform(1, 100), 42);
  std::printf("  %u intersections, %llu road segments\n", roads.num_vertices(),
              static_cast<unsigned long long>(roads.num_edges() / 2));

  const wasp::VertexId depot = roads.num_vertices() / 2 + side / 2;  // center

  wasp::SsspOptions options;
  options.algo = wasp::Algorithm::kWasp;
  options.threads = static_cast<int>(args.get_int("threads"));
  options.delta = static_cast<wasp::Weight>(args.get_int("delta"));

  const wasp::SsspResult from_depot = wasp::run_sssp(roads, depot, options);
  std::printf("one-to-all from depot %u: %.1f ms with %d threads\n", depot,
              from_depot.stats.seconds * 1e3, options.threads);

  // Answer point-to-point queries straight from the distance table.
  wasp::Xoshiro256 rng(7);
  const auto num_queries = static_cast<int>(args.get_int("queries"));
  std::printf("\n%d delivery queries from the depot:\n", num_queries);
  for (int q = 0; q < num_queries; ++q) {
    const auto dst = static_cast<wasp::VertexId>(rng.next_below(roads.num_vertices()));
    std::printf("  depot -> %7u : travel time %u\n", dst, from_depot.dist[dst]);
  }

  // Cross-check against the sequential reference.
  const wasp::SsspResult reference = wasp::dijkstra(roads, depot);
  bool ok = reference.dist == from_depot.dist;
  std::printf("\ncross-check vs sequential Dijkstra: %s\n",
              ok ? "EXACT MATCH" : "MISMATCH (bug!)");
  std::printf("Dijkstra: %.1f ms, %llu relaxations; Wasp: %.1f ms, %llu relaxations\n",
              reference.stats.seconds * 1e3,
              static_cast<unsigned long long>(reference.stats.relaxations),
              from_depot.stats.seconds * 1e3,
              static_cast<unsigned long long>(from_depot.stats.relaxations));
  return ok ? 0 : 1;
}
