// Graph format converter — the analogue of the paper artifact's
// convert_mtx.sh / convert_gap.sh utilities: reads any supported format and
// writes any other, optionally assigning weights with the GAP or
// truncated-normal scheme along the way.
//
//   ./graph_convert --in graph.mtx --out graph.wsg
//   ./graph_convert --in edges.el --in-format edgelist --undirected
//                   --out graph.wsp --weights gap
//   ./graph_convert --class TW --scale 0.5 --out tw.wsg   # generate + save
#include <cstdio>
#include <string>

#include "graph/io.hpp"
#include "graph/suite.hpp"
#include "graph/weights.hpp"
#include "support/cli.hpp"

namespace {

std::string infer_format(const std::string& path, const std::string& flag) {
  if (flag != "auto") return flag;
  if (path.ends_with(".mtx")) return "mtx";
  if (path.ends_with(".el") || path.ends_with(".txt")) return "edgelist";
  if (path.ends_with(".wsg") || path.ends_with(".sg")) return "wsg";
  return "binary";
}

int run(int argc, char** argv) {
  wasp::ArgParser args("graph_convert", "convert graphs between formats");
  args.add_string("in", "", "input path (omit when using --class)");
  args.add_string("in-format", "auto", "auto|binary|wsg|edgelist|mtx");
  args.add_flag("undirected", "treat input edge list as undirected");
  args.add_string("class", "", "generate a workload class instead of loading");
  args.add_double("scale", 1.0, "workload scale for --class");
  args.add_string("out", "", "output path (required)");
  args.add_string("out-format", "auto", "auto|binary|wsg|edgelist");
  args.add_string("weights", "keep",
                  "keep | gap | unit | tnormal — reassign edge weights");
  args.add_int("seed", 1, "seed for generation / weight assignment");
  args.parse(argc, argv);

  const std::string out = args.get_string("out");
  if (out.empty()) {
    std::fprintf(stderr, "graph_convert: --out is required\n");
    return 2;
  }

  // --- load or generate -----------------------------------------------------
  wasp::Graph graph;
  const std::string in = args.get_string("in");
  if (!in.empty()) {
    const std::string format = infer_format(in, args.get_string("in-format"));
    if (format == "binary") graph = wasp::io::read_binary_file(in);
    else if (format == "wsg") graph = wasp::io::read_gap_wsg_file(in);
    else if (format == "mtx") graph = wasp::io::read_matrix_market_file(in);
    else graph = wasp::io::read_edge_list_file(in, args.get_flag("undirected"));
  } else if (!args.get_string("class").empty()) {
    graph = wasp::suite::make(wasp::suite::parse_abbr(args.get_string("class")),
                              args.get_double("scale"),
                              static_cast<std::uint64_t>(args.get_int("seed")))
                .graph;
  } else {
    std::fprintf(stderr, "graph_convert: need --in or --class\n");
    return 2;
  }

  // --- optional weight reassignment ------------------------------------------
  const std::string weights = args.get_string("weights");
  if (weights != "keep") {
    wasp::WeightScheme scheme = wasp::WeightScheme::gap();
    if (weights == "unit") scheme = wasp::WeightScheme::unit();
    else if (weights == "tnormal")
      scheme = wasp::WeightScheme::truncated_normal(1.0, 0.5, 64.0);
    else if (weights != "gap") {
      std::fprintf(stderr, "graph_convert: unknown weight scheme %s\n",
                   weights.c_str());
      return 2;
    }
    // Re-derive the edge list, reassign, rebuild (keeps symmetry for
    // undirected graphs because each edge is emitted once).
    std::vector<wasp::Edge> edges;
    edges.reserve(static_cast<std::size_t>(graph.num_edges()));
    for (wasp::VertexId u = 0; u < graph.num_vertices(); ++u)
      for (const wasp::WEdge& e : graph.out_neighbors(u))
        if (!graph.is_undirected() || e.dst >= u)
          edges.push_back({u, e.dst, e.w});
    wasp::assign_weights(edges, scheme,
                         static_cast<std::uint64_t>(args.get_int("seed")));
    graph = wasp::Graph::from_edges(graph.num_vertices(), edges,
                                    graph.is_undirected());
  }

  // --- save -------------------------------------------------------------------
  const std::string out_format = infer_format(out, args.get_string("out-format"));
  if (out_format == "binary") wasp::io::write_binary_file(graph, out);
  else if (out_format == "wsg") wasp::io::write_gap_wsg_file(graph, out);
  else wasp::io::write_edge_list_file(graph, out);

  std::printf("%u vertices, %llu directed edges (%s) -> %s [%s]\n",
              graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()),
              graph.is_undirected() ? "undirected" : "directed", out.c_str(),
              out_format.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Corrupt or truncated inputs surface as typed errors with byte-precise
  // messages; report them instead of aborting.
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "graph_convert: error: %s\n", e.what());
    return 1;
  }
}
