// General-purpose SSSP command-line tool — the analogue of the GAP suite's
// `sssp` binary the paper builds on. Loads a graph (binary/edge-list/Matrix
// Market) or generates a named workload class, runs any of the nine
// implementations, validates the result, and reports timing + work stats.
//
//   ./sssp_cli --class USA --algo wasp --threads 8 --delta 16 --trials 3
//   ./sssp_cli --load graph.wsp --algo gap --delta 32
//   ./sssp_cli --class TW --algo mq --save tw.wsp
#include <cstdio>
#include <string>

#include "graph/algorithms.hpp"
#include "graph/io.hpp"
#include "graph/suite.hpp"
#include "sssp/contracted.hpp"
#include "sssp/solver.hpp"
#include "sssp/sssp.hpp"
#include "sssp/validate.hpp"
#include "support/cli.hpp"
#include "support/stats.hpp"

namespace {

int run(int argc, char** argv) {
  wasp::ArgParser args("sssp_cli", "run any SSSP implementation on any graph");
  args.add_string("class", "USA",
                  "workload class abbreviation (USA, EU, KV, MW, TW, ...)");
  args.add_double("scale", 1.0, "workload scale factor");
  args.add_string("load", "", "load a graph instead: path to .wsp/.el/.mtx");
  args.add_string("format", "auto", "load format: auto|binary|edgelist|mtx");
  args.add_flag("undirected", "treat a loaded edge list as undirected");
  args.add_string("save", "", "save the graph in binary format and exit");
  args.add_string("algo", "wasp", wasp::algorithm_list());
  args.add_int("threads", 4, "worker threads");
  args.add_int("delta", 1, "bucket width");
  args.add_int("trials", 1, "repetitions (best time reported)");
  args.add_int("source", -1, "source vertex (-1: random in largest component)");
  args.add_flag("contract", "pendant-tree contraction preprocessing (undirected)");
  args.add_flag("no-validate", "skip fixed-point validation");
  args.parse(argc, argv);

  // --- acquire the graph --------------------------------------------------
  wasp::Graph graph;
  wasp::VertexId source = 0;
  std::string name;
  const std::string load = args.get_string("load");
  if (!load.empty()) {
    std::string format = args.get_string("format");
    if (format == "auto") {
      if (load.ends_with(".mtx")) format = "mtx";
      else if (load.ends_with(".el") || load.ends_with(".txt")) format = "edgelist";
      else format = "binary";
    }
    if (format == "binary") graph = wasp::io::read_binary_file(load);
    else if (format == "mtx") graph = wasp::io::read_matrix_market_file(load);
    else graph = wasp::io::read_edge_list_file(load, args.get_flag("undirected"));
    name = load;
    source = wasp::pick_source_in_largest_component(graph, 1);
  } else {
    const auto cls = wasp::suite::parse_abbr(args.get_string("class"));
    auto workload = wasp::suite::make(cls, args.get_double("scale"), 1);
    graph = std::move(workload.graph);
    source = workload.source;
    name = wasp::suite::describe(cls);
  }
  if (args.get_int("source") >= 0)
    source = static_cast<wasp::VertexId>(args.get_int("source"));

  std::printf("graph: %s — %u vertices, %llu directed edges (%s)\n",
              name.c_str(), graph.num_vertices(),
              static_cast<unsigned long long>(graph.num_edges()),
              graph.is_undirected() ? "undirected" : "directed");

  const std::string save = args.get_string("save");
  if (!save.empty()) {
    wasp::io::write_binary_file(graph, save);
    std::printf("saved binary graph to %s\n", save.c_str());
    return 0;
  }

  // --- run ------------------------------------------------------------------
  wasp::SsspOptions options;
  options.algo = wasp::parse_algorithm(args.get_string("algo"));
  options.threads = static_cast<int>(args.get_int("threads"));
  options.delta = static_cast<wasp::Weight>(args.get_int("delta"));

  std::vector<double> times;
  wasp::SsspResult result;
  const auto trials = static_cast<int>(args.get_int("trials"));
  // Trials share one Solver, so repeat timings measure the algorithm (epoch
  // reset), not repeated team spawns and distance-array initializations.
  // The contracted pipeline keeps its own entry point (it solves a reduced
  // graph and re-expands).
  wasp::Solver solver(options);
  for (int t = 0; t < trials; ++t) {
    if (args.get_flag("contract")) {
      wasp::ContractedResult cr =
          wasp::run_sssp_contracted(graph, source, options);
      if (t == 0)
        std::printf("contraction eliminated %llu pendant vertices "
                    "(preprocess %.3f ms)\n",
                    static_cast<unsigned long long>(cr.eliminated_vertices),
                    cr.preprocess_seconds * 1e3);
      result = std::move(cr.result);
    } else {
      result = solver.solve(graph, source);
    }
    times.push_back(result.stats.seconds);
  }

  std::printf("algo=%s threads=%d delta=%u source=%u\n",
              wasp::algorithm_name(options.algo), options.threads,
              options.delta, source);
  std::printf("time: best %.3f ms (median %.3f ms over %d trials)\n",
              wasp::minimum(times) * 1e3, wasp::median(times) * 1e3, trials);
  std::printf("relaxations=%llu updates=%llu steals=%llu rounds=%llu\n",
              static_cast<unsigned long long>(result.stats.relaxations),
              static_cast<unsigned long long>(result.stats.updates),
              static_cast<unsigned long long>(result.stats.steals),
              static_cast<unsigned long long>(result.stats.rounds));

  std::uint64_t reached = 0;
  for (const auto d : result.dist)
    if (d != wasp::kInfDist) ++reached;
  std::printf("reached %llu / %u vertices\n",
              static_cast<unsigned long long>(reached), graph.num_vertices());

  if (!args.get_flag("no-validate")) {
    std::string message;
    if (wasp::validate_sssp(graph, source, result.dist, &message)) {
      std::printf("validation: OK (fixed-point conditions hold)\n");
    } else {
      std::printf("validation: FAILED — %s\n", message.c_str());
      return 1;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Bad inputs (corrupt graph files, out-of-range sources, invalid options)
  // surface as typed errors; report them instead of aborting.
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "sssp_cli: error: %s\n", e.what());
    return 1;
  }
}
