// Deterministic cooperative scheduler for end-to-end model checking.
//
// A Scheduler serializes a team of bound threads onto one execution token
// and hands the token around at schedule points — the entry of every
// instrumented operation (checked atomic load/store/RMW/CAS, thread_fence,
// WASP_VERIFY_RD/WR). Because the token only ever moves at events the
// happens-before model observes, the interleaving of *model* events is a
// pure function of the seed: the harness replays a failing schedule
// bit-for-bit by re-running with the same seed (WASP_VERIFY_SEED pins it),
// and `schedule_hash()` fingerprints the schedule so replay tests can
// assert bitwise equality.
//
// Protocol:
//  * Each participant of a ThreadTeam job constructs a ScopedSchedule at
//    the top of its lambda. If a Scheduler is installed this binds the
//    thread to the current Session and parks it in attach(), which doubles
//    as a start barrier: scheduling decisions begin only once all
//    `Options::threads` participants are present, so the decision sequence
//    does not depend on OS thread startup order.
//  * Exactly one thread (`current_`) runs at a time. At every schedule
//    point it flips a seeded coin (switch_rate/65536) and may pass the
//    token to another runnable thread, chosen uniformly by the same PRNG.
//  * When a thread's lambda returns, ~ScopedSchedule detaches it: the token
//    moves on, and when the last participant detaches the scheduler resets
//    so the next team.run round can reuse it.
//
// Liveness: every spin-wait in the instrumented code (Chase-Lev top/bottom,
// Wasp's termination scan, SpinBarrier) spins *through* instrumented loads,
// so a parked thread's waiters always reach schedule points and the token
// can always make progress; real mutexes in scope (the chunk arena) contain
// no instrumented operations, so the token never blocks on a held lock.
// Switch decisions are probabilistic, not fair, but every runnable thread
// is picked with positive probability, so schedules terminate almost
// surely.
//
// The class compiles in every flavor (context.cpp references it
// unconditionally) but only does useful work under WASP_VERIFY builds,
// where instrumented code actually reaches schedule_point().
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "support/random.hpp"
#include "verify/context.hpp"
#include "verify/vector_clock.hpp"

namespace wasp::verify {

class Scheduler {
 public:
  struct Options {
    int threads = 2;          ///< participants per team round (== team size)
    std::uint64_t seed = 1;   ///< drives every scheduling decision
    std::uint16_t switch_rate = 16384;  ///< P(preempt)/65536 per point
  };

  explicit Scheduler(const Options& options)
      : options_(options),
        attached_(static_cast<std::size_t>(options.threads), 0),
        runnable_(static_cast<std::size_t>(options.threads), 0),
        rng_(hash_mix(options.seed ^ 0x5C7EDD1CEULL)) {
    if (options.threads < 1 || options.threads > kMaxVerifyThreads)
      throw std::invalid_argument("verify::Scheduler: bad thread count");
    void* expected = nullptr;
    if (!detail::g_scheduler.compare_exchange_strong(
            expected, this, std::memory_order_acq_rel))
      throw std::logic_error(
          "verify::Scheduler: a scheduler is already installed");
  }

  ~Scheduler() {
    detail::g_scheduler.store(nullptr, std::memory_order_release);
  }

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// The installed scheduler, or nullptr. At most one exists at a time.
  static Scheduler* current() {
    return static_cast<Scheduler*>(
        detail::g_scheduler.load(std::memory_order_acquire));
  }

  /// Joins the current round as participant `tid` and blocks until all
  /// participants have joined *and* this thread holds the token.
  void attach(int tid) {
    std::unique_lock<std::mutex> lk(mu_);
    if (tid < 0 || tid >= options_.threads)
      throw std::invalid_argument("verify::Scheduler: tid out of range");
    const auto i = static_cast<std::size_t>(tid);
    attached_[i] = 1;
    runnable_[i] = 1;
    ++n_attached_;
    ++n_runnable_;
    if (n_attached_ == options_.threads) {
      running_ = true;
      current_ = pick_runnable_locked();
      mix(static_cast<std::uint64_t>(current_));
      cv_.notify_all();
    }
    cv_.wait(lk, [&] { return running_ && current_ == tid; });
  }

  /// Leaves the round; the token moves on. The last leaver resets the
  /// scheduler for the next round.
  void detach(int tid) {
    std::unique_lock<std::mutex> lk(mu_);
    runnable_[static_cast<std::size_t>(tid)] = 0;
    --n_runnable_;
    if (n_runnable_ == 0) {
      std::fill(attached_.begin(), attached_.end(), 0);
      n_attached_ = 0;
      running_ = false;
      current_ = -1;
      ++rounds_;
    } else if (current_ == tid) {
      current_ = pick_runnable_locked();
      mix(static_cast<std::uint64_t>(current_));
    }
    cv_.notify_all();
  }

  /// Schedule point: called by instrumented operations (via
  /// schedule_point in context.hpp). May pass the token and block until it
  /// comes back.
  void yield(int tid) {
    std::unique_lock<std::mutex> lk(mu_);
    if (!running_ || current_ != tid) return;  // bound but unattached thread
    mix(static_cast<std::uint64_t>(tid) | (1ULL << 32));
    ++points_;
    if (n_runnable_ > 1 && rng_.next_below(65536) < options_.switch_rate) {
      current_ = pick_runnable_locked(tid);
      mix(static_cast<std::uint64_t>(current_));
      ++switches_;
      cv_.notify_all();
      cv_.wait(lk, [&] { return current_ == tid; });
    }
  }

  /// FNV-1a fingerprint of every decision made so far: token grants at
  /// attach/detach, every schedule point, and every switch target. Two runs
  /// with equal hashes executed the same schedule bit-for-bit.
  [[nodiscard]] std::uint64_t schedule_hash() const {
    std::lock_guard<std::mutex> lk(mu_);
    return hash_;
  }

  [[nodiscard]] std::uint64_t schedule_points() const {
    std::lock_guard<std::mutex> lk(mu_);
    return points_;
  }

  [[nodiscard]] std::uint64_t switches() const {
    std::lock_guard<std::mutex> lk(mu_);
    return switches_;
  }

  [[nodiscard]] std::uint64_t rounds() const {
    std::lock_guard<std::mutex> lk(mu_);
    return rounds_;
  }

  [[nodiscard]] const Options& options() const { return options_; }

 private:
  /// Uniform pick among runnable participants, excluding `exclude` (the
  /// yielding thread); caller holds mu_ and guarantees one exists.
  int pick_runnable_locked(int exclude = -1) {
    int count = 0;
    for (int t = 0; t < options_.threads; ++t)
      if (runnable_[static_cast<std::size_t>(t)] != 0 && t != exclude) ++count;
    auto r = static_cast<int>(
        rng_.next_below(static_cast<std::uint64_t>(count)));
    for (int t = 0; t < options_.threads; ++t) {
      if (runnable_[static_cast<std::size_t>(t)] == 0 || t == exclude)
        continue;
      if (r-- == 0) return t;
    }
    return -1;  // unreachable: caller guarantees a runnable thread
  }

  void mix(std::uint64_t v) {
    hash_ = (hash_ ^ v) * 1099511628211ULL;  // FNV-1a step
  }

  Options options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::vector<char> attached_;
  std::vector<char> runnable_;
  int n_attached_ = 0;
  int n_runnable_ = 0;
  int current_ = -1;
  bool running_ = false;
  Xoshiro256 rng_;
  std::uint64_t hash_ = 1469598103934665603ULL;  // FNV-1a offset basis
  std::uint64_t points_ = 0;
  std::uint64_t switches_ = 0;
  std::uint64_t rounds_ = 0;
};

#if defined(WASP_VERIFY_ENABLED) && WASP_VERIFY_ENABLED

/// Per-participant hook for ThreadTeam lambdas: when a Scheduler is
/// installed, binds the thread to the current Session and joins the round;
/// otherwise does nothing, so instrumented algorithms run unchanged outside
/// the harness. Place it first in the team lambda.
class ScopedSchedule {
 public:
  explicit ScopedSchedule(int tid)
      : sched_(Scheduler::current()),
        bind_(sched_ != nullptr ? Session::current() : nullptr, tid),
        tid_(tid) {
    if (sched_ != nullptr) sched_->attach(tid_);
  }

  ~ScopedSchedule() {
    if (sched_ != nullptr) sched_->detach(tid_);
  }

  ScopedSchedule(const ScopedSchedule&) = delete;
  ScopedSchedule& operator=(const ScopedSchedule&) = delete;

 private:
  Scheduler* sched_;
  ScopedBind bind_;
  int tid_;
};

#else  // !WASP_VERIFY_ENABLED

/// Zero-cost stub: the instrumentation-free build has no model events, so
/// there is nothing to schedule.
class ScopedSchedule {
 public:
  explicit ScopedSchedule(int) {}
};

#endif  // WASP_VERIFY_ENABLED

}  // namespace wasp::verify
