// Vector clocks for the happens-before model of the verification subsystem
// (docs/CONCURRENCY.md). One component per logical verification thread; the
// component of thread t counts t's instrumented events, so "clock A knows
// event (t, e)" is the usual componentwise test A[t] >= e.
//
// Capacity is a small compile-time constant: verification sessions model a
// handful of worker threads, not production thread counts, and a fixed-size
// array keeps join/compare loops branch-free and allocation-free.
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>

namespace wasp::verify {

/// Most logical threads a verification session can bind at once.
inline constexpr int kMaxVerifyThreads = 32;

struct VectorClock {
  std::array<std::uint32_t, kMaxVerifyThreads> c{};

  /// Componentwise maximum (the happens-before join).
  void join(const VectorClock& o) {
    for (int i = 0; i < kMaxVerifyThreads; ++i) c[static_cast<std::size_t>(i)] =
        std::max(c[static_cast<std::size_t>(i)], o.c[static_cast<std::size_t>(i)]);
  }

  /// True when this clock has observed event number `epoch` of thread `tid`.
  [[nodiscard]] bool knows(int tid, std::uint32_t epoch) const {
    return c[static_cast<std::size_t>(tid)] >= epoch;
  }

  [[nodiscard]] std::uint32_t of(int tid) const {
    return c[static_cast<std::size_t>(tid)];
  }

  void bump(int tid) { ++c[static_cast<std::size_t>(tid)]; }

  void clear() { c.fill(0); }
};

}  // namespace wasp::verify
