// Verification session: the happens-before model behind checked_atomic.
//
// A Session models the C11 memory model for every instrumented operation
// (see checked_atomic.hpp) issued by a bound thread:
//
//  * Each bound thread carries a vector clock; release stores snapshot it,
//    acquire loads join it, and fences arm pending release/acquire clocks
//    per the C11 fence rules. seq_cst *operations* additionally synchronize
//    through a global SC clock (a sound strengthening of C11's S order);
//    seq_cst *fences* deliberately do not — they get pure S-membership
//    semantics (a slot in S plus the fence-publication value floors below),
//    which is exactly what C11 grants them. Two seq_cst fences alone do not
//    create happens-before without an atomic mediator.
//  * Each checked atomic keeps a bounded history of stores. A load may
//    return any store not superseded by one the loading thread already
//    "knows" (per its clock) — a seeded PRNG picks among the admissible
//    stale values. This is what lets the mutation tester kill weakened
//    orderings on x86, where the hardware would otherwise hide them: drop a
//    release edge and the reader's clock stops excluding stale values, so
//    the linearizability harness observes the resulting lost/duplicated
//    elements. RMW operations always read the latest store (C11 atomicity)
//    and continue release sequences.
//  * The SC total order S defaults to the execution order of seq_cst events
//    under the model lock — one admissible choice of S. With
//    Options::sc_reorder_window > 0 the session *searches* over admissible
//    alternatives: each seq_cst freshness window is re-validated against
//    seeded local reorderings of the recent S suffix (bounded by the
//    window), dropping a value floor only when moving the publishing event
//    past the reader's horizon violates neither happens-before nor
//    same-object coherence — i.e. only when some valid S admits the stale
//    read. Replayable via the session seed (WASP_VERIFY_SEED).
//  * Plain (non-atomic) cells annotated with WASP_VERIFY_RD/WR are checked
//    for data races: an access that is not ordered after the previous
//    conflicting access by happens-before is reported with both sites
//    (file:line, thread, epoch). Cells accessed through
//    verify::plain_load/plain_store are additionally *value-modeled*: a
//    read may return any admissible stale value from the cell's recorded
//    store history (same clock/coherence floors as atomics), so a missing
//    hb edge shows up as wrong data, not just a race verdict.
//
// Sessions are scoped and exclusive (one at a time, enforced). Threads bind
// with ScopedBind, mirroring chaos::ScopedInstall; unbound threads fall
// through to plain std::atomic behavior, so code under instrumentation runs
// unchanged outside a session.
#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <source_location>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "support/random.hpp"
#include "verify/vector_clock.hpp"

namespace wasp::verify {

/// A stable code location (source_location::file_name has static storage).
struct Site {
  const char* file = "?";
  std::uint32_t line = 0;
};

inline Site site_of(const std::source_location& loc) {
  return Site{loc.file_name(), loc.line()};
}

/// Short "file.hpp:123" form (basename only) for diagnostics.
std::string site_str(const Site& s);

class Session {
 public:
  struct Options {
    int threads = 2;               ///< logical threads the run will bind
    std::uint64_t seed = 1;        ///< drives the stale-value PRNG streams
    int history_window = 12;       ///< per-object store history bound
    std::uint16_t stale_rate = 32768;  ///< P(prefer stale)/65536 per load
    std::size_t max_diagnostics = 64;
    /// SC-order exploration: how many positions a seq_cst event may slide
    /// past a reader's horizon when re-validating a freshness window under
    /// an alternative admissible S (0 = S pinned to model-lock order, the
    /// historical behavior). Sliding is refused when the interval contains
    /// an event ordered after the publisher by happens-before or a seq_cst
    /// access to the same object, so every drop corresponds to a valid S.
    int sc_reorder_window = 0;
  };

  explicit Session(const Options& options);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// The installed session, or nullptr. At most one exists at a time.
  static Session* current();

  /// The session the calling thread is bound to (via ScopedBind), with its
  /// logical tid; nullptr when unbound or the session is gone.
  static Session* bound(int& tid);

  [[nodiscard]] const Options& options() const { return options_; }
  [[nodiscard]] std::uint64_t generation() const { return generation_; }

  /// The model lock. Every instrumented operation runs under it, so model
  /// state needs no further synchronization (and the lock doubles as the
  /// real-hardware ordering that keeps the *actual* execution well-defined
  /// while the model tracks the weak behaviors).
  [[nodiscard]] std::mutex& mu() { return mu_; }

  // --- per-thread model state (call with mu_ held) -----------------------
  struct ThreadState {
    VectorClock clock;
    VectorClock pending_release;   ///< armed by a release fence
    bool has_pending_release = false;
    VectorClock pending_acquire;   ///< accumulated by relaxed loads
    std::uint64_t sc_fence_time = 0;  ///< S-position of the last seq_cst fence
    /// Every seq_cst fence this thread executed: (S-position, the thread's
    /// own event counter at the fence). Monotone in both components; lets
    /// sc_publish_time() answer "when did this thread's store at epoch e
    /// become published by one of its later seq_cst fences".
    std::vector<std::pair<std::uint64_t, std::uint32_t>> fence_log;
    Xoshiro256 rng{1};
  };

  ThreadState& thread_state(int tid) {
    return threads_[static_cast<std::size_t>(tid)];
  }
  VectorClock& sc_clock() { return sc_clock_; }

  /// Advances the SC total order S and returns the new position. Every
  /// seq_cst store/RMW/fence occupies one slot; stores stamp it on their
  /// history entry, fences record it per thread, and loads use the two as
  /// value floors (see checked_atomic.hpp admissible_pick). When SC
  /// exploration is on, the event (issuer, epoch, object, clock) is also
  /// recorded in a bounded ring so sc_floor_is_firm can check whether a
  /// later reordering of S would be admissible. `addr` is the stored-to
  /// object, or nullptr for a fence. Call with mu_ held.
  std::uint64_t take_sc_slot(int tid, const void* addr);

  /// SC-order exploration hook (see Options::sc_reorder_window): asked by
  /// admissible_pick before it applies an S-order value floor from the
  /// event at S-position `published` against a reader whose horizon is
  /// `horizon`. Returns true when the floor must stand — either
  /// exploration is off, the publisher cannot legally slide past the
  /// horizon in any admissible S (happens-before or same-object coherence
  /// pins it, or the interval outruns the window/ring), or the seeded coin
  /// declines to explore this window. `obj` is the object being loaded.
  /// Call with mu_ held.
  bool sc_floor_is_firm(int tid, const void* obj, std::uint64_t published,
                        std::uint64_t horizon);

  /// Position-aware strict order on S slots. Dropping a floor *commits* an
  /// S reordering: the publisher is re-seated just after the horizon it
  /// slid past (sc_deferred_), and every later publication comparison must
  /// honor that commitment or the explored history would be built from
  /// mutually contradictory total orders (e.g. store-buffering could reach
  /// the both-zero outcome C11 forbids by inverting two fences both ways).
  /// Call with mu_ held.
  [[nodiscard]] bool sc_before(std::uint64_t a, std::uint64_t b) const;

  /// Records that slot `h` (a seq_cst fence) served as some load's
  /// freshness horizon. A used horizon anchors S around it: publishers
  /// before it can no longer slide past it, because loads that already ran
  /// under that horizon skipped floors assuming the slot-order positions.
  /// Call with mu_ held.
  void sc_note_horizon(std::uint64_t h);

  /// S-position at which a store by thread `tid` at event `epoch` was
  /// published by that thread's earliest *later* seq_cst fence, or 0 if no
  /// such fence exists (yet). Implements the [atomics.order] fence-fence
  /// rule: a store sequenced before a seq_cst fence X must be visible to
  /// any load sequenced after a seq_cst fence (or seq_cst load) later than
  /// X in S. Call with mu_ held.
  [[nodiscard]] std::uint64_t sc_publish_time(int tid,
                                              std::uint32_t epoch) const {
    const auto& log = threads_[static_cast<std::size_t>(tid)].fence_log;
    const auto it = std::lower_bound(
        log.begin(), log.end(), epoch,
        [](const std::pair<std::uint64_t, std::uint32_t>& e,
           std::uint32_t ep) { return e.second < ep; });
    return it == log.end() ? 0 : it->first;
  }

  /// Advances thread `tid`'s event counter; returns the new epoch.
  std::uint32_t bump_epoch(int tid) {
    auto& st = threads_[static_cast<std::size_t>(tid)];
    st.clock.bump(tid);
    return st.clock.of(tid);
  }

  /// Picks a store index in [lo, hi] (hi = latest): latest with probability
  /// 1 - stale_rate/65536, otherwise uniform over the admissible window.
  std::size_t pick_index(int tid, std::size_t lo, std::size_t hi);

  /// C11 fence semantics for a bound thread (takes mu_ itself).
  void fence(int tid, std::memory_order order);

  // --- plain-access race checker -----------------------------------------
  void on_plain_read(int tid, const void* addr, Site site);
  void on_plain_write(int tid, const void* addr, Site site);
  /// Drops all tracking state (race history and value model) for cells in
  /// [base, base + bytes): the block is being returned to the allocator,
  /// whose internal synchronization hands it to the next owner with a real
  /// happens-before edge the model cannot otherwise see. Without this, a
  /// recycled heap address reports a false race between the previous
  /// owner's accesses and the next owner's first write.
  void on_plain_retire(const void* base, std::size_t bytes);

  // --- plain-access value model (verify::plain_load / plain_store) -------
  /// Race-checks like on_plain_read, then returns an admissible value for
  /// the cell: any recorded store not superseded by one the reader's clock
  /// knows (same floors as atomic loads, minus SC — plain cells are not in
  /// S). `fresh_bits` is the cell's live value, returned verbatim when the
  /// cell has no recorded history.
  std::uint64_t on_plain_read_value(int tid, const void* addr, Site site,
                                    std::uint64_t fresh_bits);
  /// Race-checks like on_plain_write, then appends {new_bits} to the cell's
  /// history. On first contact the pre-write live value `old_bits` seeds
  /// the history as an initial store visible to every thread.
  void on_plain_write_value(int tid, const void* addr, Site site,
                            std::uint64_t old_bits, std::uint64_t new_bits);

  // --- diagnostics -------------------------------------------------------
  /// Records a model violation (takes mu_ unless already held — use the
  /// _locked variant from instrumented code).
  void report(const std::string& message);
  void report_locked(const std::string& message);

  [[nodiscard]] bool ok() const;
  [[nodiscard]] std::vector<std::string> diagnostics() const;
  /// Multi-line report naming the seed so a failure replays.
  [[nodiscard]] std::string report_text() const;

 private:
  /// One recorded store to a value-modeled plain cell.
  struct PlainRec {
    std::uint64_t bits = 0;
    int tid = 0;
    std::uint32_t epoch = 0;  ///< writer's event counter (0 = initial seed)
  };

  struct PlainVar {
    int writer_tid = -1;
    std::uint32_t writer_epoch = 0;
    Site writer_site{};
    std::array<std::uint32_t, kMaxVerifyThreads> read_epoch{};
    std::array<Site, kMaxVerifyThreads> read_site{};
    // Value model (plain_load/plain_store cells only; empty for cells that
    // carry bare WASP_VERIFY_RD/WR annotations). Mirrors the atomic Model:
    // back() = latest in modification order, base = absolute index of
    // hist[0], last_read = per-thread coherence floors (absolute indices).
    std::vector<PlainRec> hist;
    std::uint64_t base = 0;
    std::array<std::uint64_t, kMaxVerifyThreads> last_read{};
  };

  /// One seq_cst event in the bounded exploration ring (positions are
  /// contiguous, so ring[i].pos == ring.front().pos + i).
  struct ScEvent {
    std::uint64_t pos = 0;
    int tid = 0;
    std::uint32_t epoch = 0;    ///< issuer's event counter at the event
    const void* addr = nullptr; ///< stored-to object; nullptr for a fence
    VectorClock clock;          ///< issuer's clock at the event
  };

  /// Shared race bookkeeping for the four on_plain_* entry points (mu_
  /// held). Returns the access epoch.
  std::uint32_t plain_read_check_locked(int tid, const void* addr,
                                        PlainVar& var, Site site);
  std::uint32_t plain_write_check_locked(int tid, const void* addr,
                                         PlainVar& var, Site site);

  Options options_;
  std::uint64_t generation_;
  mutable std::mutex mu_;
  std::vector<ThreadState> threads_;
  VectorClock sc_clock_;
  std::uint64_t sc_seq_ = 0;  ///< length of the SC total order S so far
  std::deque<ScEvent> sc_events_;  ///< recent S suffix (exploration only)
  /// Exploration commitments (all keyed by original slot; sessions are
  /// per-test and short-lived, so these are not pruned):
  /// slot -> re-seated position "just after sc_deferred_[slot].first, with
  /// tie-break sc_deferred_[slot].second" for publishers whose floor was
  /// dropped.
  std::unordered_map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>>
      sc_deferred_;
  /// publisher slot -> smallest horizon whose floor was *applied* via the
  /// exploration coin; the publisher may never slide past it.
  std::unordered_map<std::uint64_t, std::uint64_t> sc_pinned_;
  /// fence slots already used as a load horizon (see sc_note_horizon).
  std::unordered_map<std::uint64_t, bool> sc_used_;
  std::uint64_t sc_defer_sub_ = 0;  ///< tie-break for same-base deferrals
  std::unordered_map<const void*, PlainVar> plain_;
  std::vector<std::string> diagnostics_;
  std::size_t dropped_diagnostics_ = 0;
};

/// Binds the calling thread to `session` as logical thread `tid` for the
/// guard's lifetime. A null session is a no-op, so callers can thread an
/// optional session through unconditionally (chaos::ScopedInstall idiom).
class ScopedBind {
 public:
  ScopedBind(Session* session, int tid);
  ~ScopedBind();

  ScopedBind(const ScopedBind&) = delete;
  ScopedBind& operator=(const ScopedBind&) = delete;

 private:
  Session* saved_session_;
  int saved_tid_;
};

namespace detail {
struct Binding {
  Session* session = nullptr;
  int tid = -1;
};
// constinit: no TLS init-guard on the instrumentation hot path (same
// rationale as chaos::detail::tls_binding).
inline constinit thread_local Binding tls_binding{};
inline constinit std::atomic<Session*> g_session{nullptr};
inline constinit std::atomic<std::uint64_t> g_generation{0};
// The installed Scheduler (scheduler.hpp), type-erased so this header does
// not depend on it. Instrumented operations peek at it via schedule_point.
inline constinit std::atomic<void*> g_scheduler{nullptr};
}  // namespace detail

/// Out-of-line hop into scheduler.hpp (defined in context.cpp): hands the
/// execution token to the installed Scheduler's yield().
void scheduler_yield(int tid);

/// Preemption point. Every instrumented operation of a bound thread calls
/// this before touching the model, so an installed Scheduler (see
/// scheduler.hpp) can deterministically interleave threads at exactly the
/// events the memory model sees. Without a scheduler this is one relaxed
/// load.
inline void schedule_point(int tid) {
  if (detail::g_scheduler.load(std::memory_order_acquire) != nullptr)
    scheduler_yield(tid);
}

inline Session* Session::current() {
  return detail::g_session.load(std::memory_order_acquire);
}

inline Session* Session::bound(int& tid) {
  const detail::Binding& b = detail::tls_binding;
  if (b.session == nullptr ||
      b.session != detail::g_session.load(std::memory_order_acquire))
    return nullptr;
  tid = b.tid;
  return b.session;
}

/// Plain-access annotation entry points (used via WASP_VERIFY_RD/WR).
inline void plain_read(
    const void* addr,
    std::source_location loc = std::source_location::current()) {
  int tid;
  if (Session* s = Session::bound(tid)) {
    schedule_point(tid);
    s->on_plain_read(tid, addr, site_of(loc));
  }
}

inline void plain_write(
    const void* addr,
    std::source_location loc = std::source_location::current()) {
  int tid;
  if (Session* s = Session::bound(tid)) {
    schedule_point(tid);
    s->on_plain_write(tid, addr, site_of(loc));
  }
}

/// Allocator hand-off annotation (used via WASP_VERIFY_RETIRE): call
/// immediately before operator delete on a block whose cells carry
/// WASP_VERIFY_RD/WR annotations and whose storage may be recycled by a
/// subsequent operator new on another thread (e.g. drained RemoteBatch
/// blocks). See Session::on_plain_retire.
inline void plain_retire(const void* base, std::size_t bytes) {
  int tid;
  if (Session* s = Session::bound(tid)) {
    schedule_point(tid);
    s->on_plain_retire(base, bytes);
  }
}

}  // namespace wasp::verify
