#include "verify/context.hpp"

#include <cstring>
#include <sstream>
#include <stdexcept>

#include "verify/scheduler.hpp"

namespace wasp::verify {

void scheduler_yield(int tid) {
  if (Scheduler* sched = Scheduler::current()) sched->yield(tid);
}

std::string site_str(const Site& s) {
  const char* base = s.file;
  for (const char* p = s.file; *p != '\0'; ++p)
    if (*p == '/' || *p == '\\') base = p + 1;
  std::ostringstream out;
  out << base << ":" << s.line;
  return out.str();
}

Session::Session(const Options& options)
    : options_(options),
      generation_(detail::g_generation.fetch_add(1, std::memory_order_acq_rel) +
                  1),
      threads_(static_cast<std::size_t>(
          options.threads > kMaxVerifyThreads ? kMaxVerifyThreads
                                              : options.threads)) {
  if (options.threads < 1 || options.threads > kMaxVerifyThreads)
    throw std::invalid_argument("verify::Session: bad thread count");
  for (int t = 0; t < options.threads; ++t) {
    threads_[static_cast<std::size_t>(t)].rng = Xoshiro256(
        hash_mix(options.seed + 0x5EEDULL * static_cast<std::uint64_t>(t + 1)));
  }
  Session* expected = nullptr;
  if (!detail::g_session.compare_exchange_strong(expected, this,
                                                 std::memory_order_acq_rel))
    throw std::logic_error("verify::Session: a session is already installed");
}

Session::~Session() {
  detail::g_session.store(nullptr, std::memory_order_release);
}

std::size_t Session::pick_index(int tid, std::size_t lo, std::size_t hi) {
  if (lo >= hi) return hi;
  auto& rng = threads_[static_cast<std::size_t>(tid)].rng;
  if (rng.next_below(65536) >= options_.stale_rate) return hi;
  return lo + static_cast<std::size_t>(
                  rng.next_below(static_cast<std::uint64_t>(hi - lo + 1)));
}

void Session::fence(int tid, std::memory_order order) {
  std::lock_guard<std::mutex> guard(mu_);
  ThreadState& st = threads_[static_cast<std::size_t>(tid)];
  const bool acq = order == std::memory_order_acquire ||
                   order == std::memory_order_acq_rel ||
                   order == std::memory_order_seq_cst;
  const bool rel = order == std::memory_order_release ||
                   order == std::memory_order_acq_rel ||
                   order == std::memory_order_seq_cst;
  // C11 29.8: an acquire fence turns the thread's earlier relaxed loads
  // into synchronization edges; a release fence arms later relaxed stores.
  if (acq) st.clock.join(st.pending_acquire);
  if (order == std::memory_order_seq_cst) st.clock.join(sc_clock_);
  if (rel) {
    st.pending_release = st.clock;
    st.has_pending_release = true;
  }
  if (order == std::memory_order_seq_cst) {
    sc_clock_.join(st.clock);
    // The fence takes a slot in S. Loads sequenced after it must not read
    // values older than stores ordered before it in S (seq_cst stores
    // directly; plain stores via the writer's own later seq_cst fence —
    // the fence_log records which of this thread's stores this fence
    // publishes).
    st.sc_fence_time = next_sc_time();
    st.fence_log.emplace_back(st.sc_fence_time, st.clock.of(tid));
  }
}

void Session::on_plain_read(int tid, const void* addr, Site site) {
  std::lock_guard<std::mutex> guard(mu_);
  ThreadState& st = threads_[static_cast<std::size_t>(tid)];
  PlainVar& var = plain_[addr];
  const std::uint32_t epoch = bump_epoch(tid);
  if (var.writer_tid >= 0 && var.writer_tid != tid &&
      !st.clock.knows(var.writer_tid, var.writer_epoch)) {
    std::ostringstream msg;
    msg << "data race on plain cell " << addr << ": write at "
        << site_str(var.writer_site) << " (t" << var.writer_tid << "#"
        << var.writer_epoch << ") is unordered with read at " << site_str(site)
        << " (t" << tid << "#" << epoch << ")";
    report_locked(msg.str());
  }
  var.read_epoch[static_cast<std::size_t>(tid)] = epoch;
  var.read_site[static_cast<std::size_t>(tid)] = site;
}

void Session::on_plain_write(int tid, const void* addr, Site site) {
  std::lock_guard<std::mutex> guard(mu_);
  ThreadState& st = threads_[static_cast<std::size_t>(tid)];
  PlainVar& var = plain_[addr];
  const std::uint32_t epoch = bump_epoch(tid);
  if (var.writer_tid >= 0 && var.writer_tid != tid &&
      !st.clock.knows(var.writer_tid, var.writer_epoch)) {
    std::ostringstream msg;
    msg << "data race on plain cell " << addr << ": write at "
        << site_str(var.writer_site) << " (t" << var.writer_tid << "#"
        << var.writer_epoch << ") is unordered with write at "
        << site_str(site) << " (t" << tid << "#" << epoch << ")";
    report_locked(msg.str());
  }
  for (int r = 0; r < options_.threads; ++r) {
    const std::uint32_t re = var.read_epoch[static_cast<std::size_t>(r)];
    if (r == tid || re == 0 || st.clock.knows(r, re)) continue;
    std::ostringstream msg;
    msg << "data race on plain cell " << addr << ": read at "
        << site_str(var.read_site[static_cast<std::size_t>(r)]) << " (t" << r
        << "#" << re << ") is unordered with write at " << site_str(site)
        << " (t" << tid << "#" << epoch << ")";
    report_locked(msg.str());
  }
  var.writer_tid = tid;
  var.writer_epoch = epoch;
  var.writer_site = site;
  var.read_epoch.fill(0);
}

void Session::report(const std::string& message) {
  std::lock_guard<std::mutex> guard(mu_);
  report_locked(message);
}

void Session::report_locked(const std::string& message) {
  if (diagnostics_.size() >= options_.max_diagnostics) {
    ++dropped_diagnostics_;
    return;
  }
  for (const std::string& d : diagnostics_)
    if (d == message) return;  // dedup exact repeats
  diagnostics_.push_back(message);
}

bool Session::ok() const {
  std::lock_guard<std::mutex> guard(mu_);
  return diagnostics_.empty() && dropped_diagnostics_ == 0;
}

std::vector<std::string> Session::diagnostics() const {
  std::lock_guard<std::mutex> guard(mu_);
  return diagnostics_;
}

std::string Session::report_text() const {
  std::lock_guard<std::mutex> guard(mu_);
  std::ostringstream out;
  out << "verify session (seed=" << options_.seed
      << ", threads=" << options_.threads << "): ";
  if (diagnostics_.empty()) {
    out << "no violations\n";
    return out.str();
  }
  out << diagnostics_.size() + dropped_diagnostics_ << " violation(s)\n";
  for (const std::string& d : diagnostics_) out << "  * " << d << "\n";
  if (dropped_diagnostics_ > 0)
    out << "  (+" << dropped_diagnostics_ << " more dropped)\n";
  out << "replay: rerun with the same seed; stale-value choices and chaos "
         "schedules are pure functions of (seed, tid)\n";
  return out.str();
}

ScopedBind::ScopedBind(Session* session, int tid)
    : saved_session_(detail::tls_binding.session),
      saved_tid_(detail::tls_binding.tid) {
  if (session != nullptr) detail::tls_binding = {session, tid};
}

ScopedBind::~ScopedBind() {
  detail::tls_binding = {saved_session_, saved_tid_};
}

}  // namespace wasp::verify
