#include "verify/context.hpp"

#include <cstring>
#include <sstream>
#include <stdexcept>

#include "verify/scheduler.hpp"

namespace wasp::verify {

void scheduler_yield(int tid) {
  if (Scheduler* sched = Scheduler::current()) sched->yield(tid);
}

std::string site_str(const Site& s) {
  const char* base = s.file;
  for (const char* p = s.file; *p != '\0'; ++p)
    if (*p == '/' || *p == '\\') base = p + 1;
  std::ostringstream out;
  out << base << ":" << s.line;
  return out.str();
}

Session::Session(const Options& options)
    : options_(options),
      generation_(detail::g_generation.fetch_add(1, std::memory_order_acq_rel) +
                  1),
      threads_(static_cast<std::size_t>(
          options.threads > kMaxVerifyThreads ? kMaxVerifyThreads
                                              : options.threads)) {
  if (options.threads < 1 || options.threads > kMaxVerifyThreads)
    throw std::invalid_argument("verify::Session: bad thread count");
  for (int t = 0; t < options.threads; ++t) {
    threads_[static_cast<std::size_t>(t)].rng = Xoshiro256(
        hash_mix(options.seed + 0x5EEDULL * static_cast<std::uint64_t>(t + 1)));
  }
  Session* expected = nullptr;
  if (!detail::g_session.compare_exchange_strong(expected, this,
                                                 std::memory_order_acq_rel))
    throw std::logic_error("verify::Session: a session is already installed");
}

Session::~Session() {
  detail::g_session.store(nullptr, std::memory_order_release);
}

std::size_t Session::pick_index(int tid, std::size_t lo, std::size_t hi) {
  if (lo >= hi) return hi;
  auto& rng = threads_[static_cast<std::size_t>(tid)].rng;
  if (rng.next_below(65536) >= options_.stale_rate) return hi;
  return lo + static_cast<std::size_t>(
                  rng.next_below(static_cast<std::uint64_t>(hi - lo + 1)));
}

void Session::fence(int tid, std::memory_order order) {
  std::lock_guard<std::mutex> guard(mu_);
  ThreadState& st = threads_[static_cast<std::size_t>(tid)];
  const bool acq = order == std::memory_order_acquire ||
                   order == std::memory_order_acq_rel ||
                   order == std::memory_order_seq_cst;
  const bool rel = order == std::memory_order_release ||
                   order == std::memory_order_acq_rel ||
                   order == std::memory_order_seq_cst;
  // C11 29.8: an acquire fence turns the thread's earlier relaxed loads
  // into synchronization edges; a release fence arms later relaxed stores.
  if (acq) st.clock.join(st.pending_acquire);
  if (rel) {
    st.pending_release = st.clock;
    st.has_pending_release = true;
  }
  if (order == std::memory_order_seq_cst) {
    // Pure S-membership semantics: the fence takes a slot in S, nothing
    // more. Loads sequenced after it must not read values older than
    // stores ordered before it in S (seq_cst stores directly; earlier
    // plain-order stores via the writer's own later seq_cst fence — the
    // fence_log records which of this thread's stores this fence
    // publishes). A seq_cst fence does NOT join the global sc_clock: two
    // fences alone never create happens-before in C11 — synchronization
    // still needs an atomic mediator (store/load pair), which the
    // acq/rel pending-clock rules above provide. The value floors below
    // mean a post-fence load can be *forced fresh* while remaining
    // *unordered* — so a plain access guarded only by fence-fence value
    // visibility is correctly reported as a race.
    st.sc_fence_time = take_sc_slot(tid, nullptr);
    st.fence_log.emplace_back(st.sc_fence_time, st.clock.of(tid));
  }
}

std::uint64_t Session::take_sc_slot(int tid, const void* addr) {
  const std::uint64_t pos = ++sc_seq_;
  if (options_.sc_reorder_window > 0) {
    ThreadState& st = threads_[static_cast<std::size_t>(tid)];
    sc_events_.push_back(
        ScEvent{pos, tid, st.clock.of(tid), addr, st.clock});
    // Keep enough of the S suffix to cover any (published, horizon]
    // interval the window allows, with slack for events between the two.
    const auto cap =
        static_cast<std::size_t>(options_.sc_reorder_window) * 2 + 8;
    while (sc_events_.size() > cap) sc_events_.pop_front();
  }
  return pos;
}

bool Session::sc_before(std::uint64_t a, std::uint64_t b) const {
  // Effective position: (slot, 0) normally; a deferred slot sits just
  // after its new base, so (base, sub>0). Lexicographic compare.
  auto pos = [this](std::uint64_t s) -> std::pair<std::uint64_t, std::uint64_t> {
    const auto it = sc_deferred_.find(s);
    if (it == sc_deferred_.end()) return {s, 0};
    return it->second;
  };
  return pos(a) < pos(b);
}

void Session::sc_note_horizon(std::uint64_t h) {
  if (options_.sc_reorder_window <= 0) return;
  sc_used_.emplace(h, true);
}

bool Session::sc_floor_is_firm(int tid, const void* obj,
                               std::uint64_t published,
                               std::uint64_t horizon) {
  if (options_.sc_reorder_window <= 0) return true;
  if (horizon == ~std::uint64_t{0}) return true;  // seq_cst load: all of S
  if (horizon <= published) return true;
  if (horizon - published >
      static_cast<std::uint64_t>(options_.sc_reorder_window))
    return true;  // too far to slide within the window
  if (sc_events_.empty() || sc_events_.front().pos > published)
    return true;  // publisher evicted from the ring: refuse, stay sound
  const std::uint64_t front = sc_events_.front().pos;
  const ScEvent& pub = sc_events_[static_cast<std::size_t>(published - front)];
  // Sliding pub past the horizon is admissible only if no event in
  // (published, horizon] is ordered after it: happens-before must embed
  // into every valid S, and seq_cst accesses to the same objects must keep
  // their coherence order.
  for (std::uint64_t p = published + 1; p <= horizon; ++p) {
    if (p - front >= sc_events_.size()) return true;  // ring gap: refuse
    const ScEvent& e = sc_events_[static_cast<std::size_t>(p - front)];
    if (e.clock.knows(pub.tid, pub.epoch)) return true;   // hb pins S
    if (e.addr != nullptr && (e.addr == pub.addr || e.addr == obj))
      return true;  // same-object SC access pins coherence
  }
  // Commitment re-validation: dropping this floor re-seats the publisher
  // after the horizon, which must not contradict what the explored history
  // already relied on.
  //  * A horizon some load already ran under anchors S at its slot-order
  //    position: that load skipped floors assuming everything then-after
  //    it stays after it, so a publisher that is itself a used horizon
  //    cannot move.
  //  * A floor applied by the coin below pinned the publisher before that
  //    horizon; it may never slide past it afterwards.
  if (sc_used_.count(published) != 0) return true;
  const auto pin = sc_pinned_.find(published);
  if (pin != sc_pinned_.end() && horizon >= pin->second) return true;
  // Some valid S orders pub after the horizon. Seeded coin: explore (drop
  // the floor) with the session's stale probability, replayable by seed.
  // Either outcome is a commitment (see sc_before): record it.
  auto& rng = threads_[static_cast<std::size_t>(tid)].rng;
  if (rng.next_below(65536) >= options_.stale_rate) {
    if (pin == sc_pinned_.end() || horizon < pin->second)
      sc_pinned_[published] = horizon;
    return true;
  }
  sc_deferred_[published] = {horizon, ++sc_defer_sub_};
  return false;
}

std::uint32_t Session::plain_read_check_locked(int tid, const void* addr,
                                               PlainVar& var, Site site) {
  ThreadState& st = threads_[static_cast<std::size_t>(tid)];
  const std::uint32_t epoch = bump_epoch(tid);
  if (var.writer_tid >= 0 && var.writer_tid != tid &&
      !st.clock.knows(var.writer_tid, var.writer_epoch)) {
    std::ostringstream msg;
    msg << "data race on plain cell " << addr << ": write at "
        << site_str(var.writer_site) << " (t" << var.writer_tid << "#"
        << var.writer_epoch << ") is unordered with read at " << site_str(site)
        << " (t" << tid << "#" << epoch << ")";
    report_locked(msg.str());
  }
  var.read_epoch[static_cast<std::size_t>(tid)] = epoch;
  var.read_site[static_cast<std::size_t>(tid)] = site;
  return epoch;
}

std::uint32_t Session::plain_write_check_locked(int tid, const void* addr,
                                                PlainVar& var, Site site) {
  ThreadState& st = threads_[static_cast<std::size_t>(tid)];
  const std::uint32_t epoch = bump_epoch(tid);
  if (var.writer_tid >= 0 && var.writer_tid != tid &&
      !st.clock.knows(var.writer_tid, var.writer_epoch)) {
    std::ostringstream msg;
    msg << "data race on plain cell " << addr << ": write at "
        << site_str(var.writer_site) << " (t" << var.writer_tid << "#"
        << var.writer_epoch << ") is unordered with write at "
        << site_str(site) << " (t" << tid << "#" << epoch << ")";
    report_locked(msg.str());
  }
  for (int r = 0; r < options_.threads; ++r) {
    const std::uint32_t re = var.read_epoch[static_cast<std::size_t>(r)];
    if (r == tid || re == 0 || st.clock.knows(r, re)) continue;
    std::ostringstream msg;
    msg << "data race on plain cell " << addr << ": read at "
        << site_str(var.read_site[static_cast<std::size_t>(r)]) << " (t" << r
        << "#" << re << ") is unordered with write at " << site_str(site)
        << " (t" << tid << "#" << epoch << ")";
    report_locked(msg.str());
  }
  var.writer_tid = tid;
  var.writer_epoch = epoch;
  var.writer_site = site;
  var.read_epoch.fill(0);
  return epoch;
}

void Session::on_plain_read(int tid, const void* addr, Site site) {
  std::lock_guard<std::mutex> guard(mu_);
  plain_read_check_locked(tid, addr, plain_[addr], site);
}

void Session::on_plain_write(int tid, const void* addr, Site site) {
  std::lock_guard<std::mutex> guard(mu_);
  plain_write_check_locked(tid, addr, plain_[addr], site);
}

void Session::on_plain_retire(const void* base, std::size_t bytes) {
  std::lock_guard<std::mutex> guard(mu_);
  const char* lo = static_cast<const char*>(base);
  const char* hi = lo + bytes;
  for (auto it = plain_.begin(); it != plain_.end();) {
    const char* p = static_cast<const char*>(it->first);
    if (p >= lo && p < hi)
      it = plain_.erase(it);
    else
      ++it;
  }
}

std::uint64_t Session::on_plain_read_value(int tid, const void* addr,
                                           Site site,
                                           std::uint64_t fresh_bits) {
  std::lock_guard<std::mutex> guard(mu_);
  PlainVar& var = plain_[addr];
  plain_read_check_locked(tid, addr, var, site);
  if (var.hist.empty()) return fresh_bits;  // never recorded: live value
  ThreadState& st = threads_[static_cast<std::size_t>(tid)];
  const std::size_t n = var.hist.size();
  // Same admissibility as atomic loads (minus S — plain cells are not in
  // S): nothing older than the newest recorded store the reader's clock
  // knows, nothing older than what it read here before (coherence).
  std::uint64_t lo_abs = var.last_read[static_cast<std::size_t>(tid)];
  for (std::size_t i = n; i-- > 0;) {
    const PlainRec& rec = var.hist[i];
    if (rec.epoch == 0 || st.clock.knows(rec.tid, rec.epoch)) {
      lo_abs = std::max(lo_abs, var.base + i);
      break;
    }
  }
  const std::size_t lo =
      lo_abs > var.base ? static_cast<std::size_t>(lo_abs - var.base) : 0;
  const std::size_t idx = pick_index(tid, lo, n - 1);
  var.last_read[static_cast<std::size_t>(tid)] = var.base + idx;
  return var.hist[idx].bits;
}

void Session::on_plain_write_value(int tid, const void* addr, Site site,
                                   std::uint64_t old_bits,
                                   std::uint64_t new_bits) {
  std::lock_guard<std::mutex> guard(mu_);
  PlainVar& var = plain_[addr];
  const std::uint32_t epoch = plain_write_check_locked(tid, addr, var, site);
  if (var.hist.empty()) {
    // First contact: seed with the pre-write live value as an initial
    // store visible to every thread (epoch 0 = always admissible floor).
    var.hist.push_back(PlainRec{old_bits, 0, 0});
  }
  var.hist.push_back(PlainRec{new_bits, tid, epoch});
  var.last_read[static_cast<std::size_t>(tid)] =
      var.base + var.hist.size() - 1;
  const auto cap = static_cast<std::size_t>(options_.history_window);
  if (var.hist.size() > cap) {
    var.hist.erase(var.hist.begin());
    ++var.base;
  }
}

void Session::report(const std::string& message) {
  std::lock_guard<std::mutex> guard(mu_);
  report_locked(message);
}

void Session::report_locked(const std::string& message) {
  if (diagnostics_.size() >= options_.max_diagnostics) {
    ++dropped_diagnostics_;
    return;
  }
  for (const std::string& d : diagnostics_)
    if (d == message) return;  // dedup exact repeats
  diagnostics_.push_back(message);
}

bool Session::ok() const {
  std::lock_guard<std::mutex> guard(mu_);
  return diagnostics_.empty() && dropped_diagnostics_ == 0;
}

std::vector<std::string> Session::diagnostics() const {
  std::lock_guard<std::mutex> guard(mu_);
  return diagnostics_;
}

std::string Session::report_text() const {
  std::lock_guard<std::mutex> guard(mu_);
  std::ostringstream out;
  out << "verify session (seed=" << options_.seed
      << ", threads=" << options_.threads << "): ";
  if (diagnostics_.empty()) {
    out << "no violations\n";
    return out.str();
  }
  out << diagnostics_.size() + dropped_diagnostics_ << " violation(s)\n";
  for (const std::string& d : diagnostics_) out << "  * " << d << "\n";
  if (dropped_diagnostics_ > 0)
    out << "  (+" << dropped_diagnostics_ << " more dropped)\n";
  out << "replay: rerun with the same seed; stale-value choices and chaos "
         "schedules are pure functions of (seed, tid)\n";
  return out.str();
}

ScopedBind::ScopedBind(Session* session, int tid)
    : saved_session_(detail::tls_binding.session),
      saved_tid_(detail::tls_binding.tid) {
  if (session != nullptr) detail::tls_binding = {session, tid};
}

ScopedBind::~ScopedBind() {
  detail::tls_binding = {saved_session_, saved_tid_};
}

}  // namespace wasp::verify
