// Wing–Gong linearizability checking (Wing & Gong, JPDC'93) with bounded
// reordering search, plus the sequential reference specs of Wasp's
// concurrent containers.
//
// A concurrent run records a *history*: per operation, the invoking thread,
// kind, arguments, result, and two timestamps drawn from one global atomic
// counter (invocation and response). The checker searches for a permutation
// that (a) respects real-time order — an operation may linearize before
// another only if it did not begin after the other ended — and (b) replays
// legally against a sequential spec. Because each thread's operations are
// totally ordered, the search state is just a per-thread cursor tuple plus
// the spec state, memoized to keep the bounded search cheap on the short
// histories the harness generates.
//
// This header is build-flavor independent: histories recorded under the
// WASP_VERIFY weak-memory model and histories from plain hardware runs are
// checked identically.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <unordered_set>
#include <vector>

#include "support/padded.hpp"

namespace wasp::verify {

/// One completed operation in a history. `r`/`ok` encode the result;
/// interpretation is spec-specific.
struct Op {
  int tid = 0;
  int kind = 0;
  std::uint64_t a = 0;   ///< argument (key / value / pointer token)
  std::uint64_t b = 0;   ///< second argument
  std::uint64_t r = 0;   ///< result payload
  bool ok = true;        ///< result flag (e.g. try_pop success)
  std::uint64_t inv = 0; ///< invocation timestamp
  std::uint64_t res = 0; ///< response timestamp
};

/// Records a complete history from concurrent threads: call `begin` before
/// the operation, fill in the result, then `end`. Per-thread vectors keep
/// recording allocation-quiet; the only shared state is the timestamp
/// counter (intentionally *not* a checked atomic — the recorder must not
/// perturb the model under test).
class HistoryRecorder {
 public:
  explicit HistoryRecorder(int threads)
      : per_thread_(static_cast<std::size_t>(threads)) {}

  Op begin(int tid, int kind, std::uint64_t a = 0, std::uint64_t b = 0) {
    Op op;
    op.tid = tid;
    op.kind = kind;
    op.a = a;
    op.b = b;
    op.inv = clock_.fetch_add(1, std::memory_order_acq_rel);
    return op;
  }

  void end(Op op) {
    op.res = clock_.fetch_add(1, std::memory_order_acq_rel);
    per_thread_[static_cast<std::size_t>(op.tid)].value.push_back(op);
  }

  /// All operations, per-thread order preserved. Call after joining.
  [[nodiscard]] std::vector<std::vector<Op>> collect() const {
    std::vector<std::vector<Op>> out;
    out.reserve(per_thread_.size());
    for (const auto& p : per_thread_) out.push_back(p.value);
    return out;
  }

 private:
  std::atomic<std::uint64_t> clock_{0};
  std::vector<CachePadded<std::vector<Op>>> per_thread_;
};

struct LinearizeResult {
  bool ok = true;
  bool budget_exhausted = false;  ///< search aborted; verdict inconclusive
  std::string explanation;
};

/// Spec concept:
///   struct Spec {
///     using State = ...;                 // copyable, operator< or hashable
///     static State initial();
///     static bool apply(State&, const Op&);   // false = op illegal here
///     static std::string describe(const Op&); // for failure reports
///     static std::string key(const State&);   // memo key serialization
///   };
template <typename Spec>
LinearizeResult linearize(const std::vector<std::vector<Op>>& by_thread,
                          std::uint64_t node_budget = 4'000'000) {
  struct Node {
    std::vector<std::size_t> cursor;
    typename Spec::State state;
  };
  const std::size_t p = by_thread.size();
  std::vector<Node> stack;
  stack.push_back(Node{std::vector<std::size_t>(p, 0), Spec::initial()});
  std::unordered_set<std::string> seen;
  std::uint64_t nodes = 0;

  LinearizeResult result;
  while (!stack.empty()) {
    Node node = std::move(stack.back());
    stack.pop_back();
    if (++nodes > node_budget) {
      result.budget_exhausted = true;
      result.ok = true;  // inconclusive counts as pass; caller may log
      return result;
    }

    bool done = true;
    // An op may linearize next iff no other *pending* op responded before
    // it was invoked (within a thread, ops are already in order, so only
    // each thread's next op can be minimal).
    std::uint64_t min_res = ~std::uint64_t{0};
    for (std::size_t t = 0; t < p; ++t) {
      if (node.cursor[t] < by_thread[t].size()) {
        done = false;
        min_res = std::min(min_res, by_thread[t][node.cursor[t]].res);
      }
    }
    if (done) return result;  // full linearization found

    for (std::size_t t = 0; t < p; ++t) {
      if (node.cursor[t] >= by_thread[t].size()) continue;
      const Op& op = by_thread[t][node.cursor[t]];
      if (op.inv > min_res) continue;  // began after a pending op ended
      typename Spec::State next = node.state;
      if (!Spec::apply(next, op)) continue;
      Node child{node.cursor, std::move(next)};
      ++child.cursor[t];
      std::ostringstream memo;
      for (std::size_t i = 0; i < p; ++i) memo << child.cursor[i] << ",";
      memo << Spec::key(child.state);
      if (seen.insert(memo.str()).second) stack.push_back(std::move(child));
    }
  }

  // No linearization exists: build a report naming the full history.
  result.ok = false;
  std::ostringstream why;
  why << "history is not linearizable against " << Spec::name() << ":\n";
  for (std::size_t t = 0; t < p; ++t)
    for (const Op& op : by_thread[t])
      why << "  t" << t << " [" << op.inv << "," << op.res << "] "
          << Spec::describe(op) << "\n";
  result.explanation = why.str();
  return result;
}

// --- sequential reference specs ------------------------------------------

/// ChaseLevDeque<T*>: owner pushes/pops at the bottom (LIFO), thieves steal
/// from the top (FIFO). A null pop_bottom is legal only on an empty deque
/// (the owner loses the bottom race only when a thief took the last
/// element, so an empty linearization point always exists). A null steal is
/// an *abort* — thieves return null on lost races with the deque non-empty
/// by design — so it carries no sequential constraint; lost elements are
/// caught by the conservation check at quiescence instead.
struct DequeSpec {
  enum Kind { kPush = 0, kPopBottom = 1, kSteal = 2 };
  using State = std::deque<std::uint64_t>;

  static const char* name() { return "ChaseLevDeque"; }
  static State initial() { return {}; }

  static bool apply(State& s, const Op& op) {
    switch (op.kind) {
      case kPush:
        s.push_back(op.a);
        return true;
      case kPopBottom:
        if (!op.ok) return s.empty();
        if (s.empty() || s.back() != op.r) return false;
        s.pop_back();
        return true;
      case kSteal:
        if (!op.ok) return true;  // abort: no sequential constraint
        if (s.empty() || s.front() != op.r) return false;
        s.pop_front();
        return true;
      default:
        return false;
    }
  }

  static std::string describe(const Op& op) {
    std::ostringstream out;
    switch (op.kind) {
      case kPush: out << "push(" << op.a << ")"; break;
      case kPopBottom:
        out << "pop_bottom() -> " << (op.ok ? std::to_string(op.r) : "null");
        break;
      case kSteal:
        out << "steal() -> " << (op.ok ? std::to_string(op.r) : "null");
        break;
      default: out << "?"; break;
    }
    return out.str();
  }

  static std::string key(const State& s) {
    std::ostringstream out;
    for (std::uint64_t v : s) out << v << ".";
    return out.str();
  }
};

/// Relaxed priority queues (MultiQueue, StealingMultiQueue): a *bag* spec.
/// Pops must return an element that was pushed and not yet popped (kills
/// duplication and invention); pop-empty is always legal, because relaxed
/// queues may miss elements that are buffered elsewhere. Element loss is
/// caught separately by the conservation check at quiescence.
struct BagSpec {
  enum Kind { kPush = 0, kPop = 1 };
  using State = std::map<std::pair<std::uint64_t, std::uint64_t>, int>;

  static const char* name() { return "relaxed priority queue (bag)"; }
  static State initial() { return {}; }

  static bool apply(State& s, const Op& op) {
    const std::pair<std::uint64_t, std::uint64_t> e{op.a, op.b};
    switch (op.kind) {
      case kPush:
        ++s[e];
        return true;
      case kPop: {
        if (!op.ok) return true;  // relaxed: spurious empty is legal
        const std::pair<std::uint64_t, std::uint64_t> got{op.r, op.b};
        auto it = s.find(got);
        if (it == s.end()) return false;
        if (--it->second == 0) s.erase(it);
        return true;
      }
      default:
        return false;
    }
  }

  static std::string describe(const Op& op) {
    std::ostringstream out;
    if (op.kind == kPush)
      out << "push(" << op.a << "," << op.b << ")";
    else if (op.ok)
      out << "pop() -> (" << op.r << "," << op.b << ")";
    else
      out << "pop() -> empty";
    return out.str();
  }

  static std::string key(const State& s) {
    std::ostringstream out;
    for (const auto& [e, n] : s) out << e.first << ":" << e.second << "x" << n << ".";
    return out.str();
  }
};

/// ChunkPool/ChunkArena: get() hands out chunks, put() returns them. The
/// safety property is exclusive ownership — a chunk is never outstanding
/// twice, across *all* pools sharing the arena (chunks migrate on steal).
struct PoolSpec {
  enum Kind { kGet = 0, kPut = 1 };
  using State = std::set<std::uint64_t>;  ///< outstanding chunk tokens

  static const char* name() { return "ChunkPool"; }
  static State initial() { return {}; }

  static bool apply(State& s, const Op& op) {
    switch (op.kind) {
      case kGet:
        return s.insert(op.r).second;  // double allocation = not linearizable
      case kPut:
        return s.erase(op.a) == 1;
      default:
        return false;
    }
  }

  static std::string describe(const Op& op) {
    std::ostringstream out;
    if (op.kind == kGet) out << "get() -> " << op.r;
    else out << "put(" << op.a << ")";
    return out.str();
  }

  static std::string key(const State& s) {
    std::ostringstream out;
    for (std::uint64_t v : s) out << v << ".";
    return out.str();
  }
};

}  // namespace wasp::verify
