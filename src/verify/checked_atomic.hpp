// checked_atomic: the instrumentation shim between the concurrent layer and
// std::atomic.
//
// With WASP_VERIFY=OFF (the default), wasp::verify::atomic<T> is a
// zero-cost passthrough to std::atomic<T> and the annotation macros fold to
// no-ops — mirroring the chaos macros' cost model, so the benchmarking
// configuration compiles the exact bits the perf numbers come from.
//
// With WASP_VERIFY=ON and a verify::Session installed on the calling
// thread, every operation runs the happens-before model of context.hpp:
//
//  * stores append to a bounded per-object history carrying the release
//    clock (or the pending release-fence clock for relaxed stores);
//  * loads may return any admissible stale store — one not superseded by a
//    store the loading thread's vector clock already knows — chosen by a
//    seeded PRNG, and join the release clock on acquire;
//  * RMWs read the latest store (C11 atomicity) and continue release
//    sequences, so an acquire load reading a relaxed fetch_add still
//    synchronizes with the release store heading the sequence;
//  * seq_cst operations additionally synchronize through the session's SC
//    clock (a sound strengthening of C11's S order), and the model tracks
//    the total order S explicitly: seq_cst stores are stamped with their
//    S-position, seq_cst loads may not read past the newest S-store, and a
//    load after a seq_cst fence may not read past the newest S-store that
//    precedes the fence in S. This makes seq_cst -> acq_rel weakenings on
//    store/RMW sites observable as value-level staleness (the deque's
//    last-element CAS mutants CLD-86f63b/CLD-c4227a).
//    seq_cst *fences* get pure C11 S-membership semantics (no sc_clock
//    join): they floor values but never create happens-before by
//    themselves. With Session::Options::sc_reorder_window > 0 the floors
//    themselves are searched over admissible alternative choices of S
//    (see context.hpp).
//
// Plain (non-atomic) cells go through two tiers of instrumentation: the
// WASP_VERIFY_RD/WR macros race-check an access, and the
// plain_load/plain_store wrappers below additionally value-model the cell —
// a read missing its happens-before edge can return an admissible stale
// value from the cell's recorded history, so a broken publication protocol
// corrupts data in the simulation instead of only flagging a race.
//
// Every model store writes through to the underlying std::atomic, so
// unbound threads (and code running after the session ends) always see the
// latest value.
#pragma once

#include <atomic>
#include <cstdint>
#include <source_location>
#include <type_traits>
#include <utility>

#if defined(WASP_VERIFY_ENABLED) && WASP_VERIFY_ENABLED
#include <algorithm>
#include <cstring>
#include <mutex>
#include <vector>

#include "verify/context.hpp"
#include "verify/vector_clock.hpp"
#endif

namespace wasp::verify {

// TSan does not model fences and GCC warns (fatally, under WASP_WERROR)
// about every atomic_thread_fence in a -fsanitize=thread TU. The fences
// here order same-variable accesses whose surrounding seq_cst ops already
// give TSan a visible edge (see docs/CONCURRENCY.md, the deque's seq_cst
// fence pair CLD-5f7729/CLD-18faf2), so the
// known TSan blind spot is accepted and the warning silenced at this one
// choke point rather than at every call site.
inline void raw_thread_fence(std::memory_order order) noexcept {
#if defined(__GNUC__) && !defined(__clang__) && defined(__SANITIZE_THREAD__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wtsan"
  std::atomic_thread_fence(order);
#pragma GCC diagnostic pop
#else
  std::atomic_thread_fence(order);
#endif
}

#if defined(WASP_VERIFY_ENABLED) && WASP_VERIFY_ENABLED

template <typename T>
class atomic {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  atomic() noexcept : impl_{} {}
  constexpr atomic(T v) noexcept : impl_(v) {}  // NOLINT(google-explicit-constructor)
  ~atomic() { delete model_.load(std::memory_order_acquire); }

  atomic(const atomic&) = delete;
  atomic& operator=(const atomic&) = delete;

  T load(std::memory_order order,
         std::source_location loc = std::source_location::current()) const {
    int tid;
    Session* s = Session::bound(tid);
    if (s == nullptr) return impl_.load(order);
    schedule_point(tid);
    std::lock_guard<std::mutex> guard(s->mu());
    Model& m = model(s);
    auto& st = s->thread_state(tid);
    if (order == std::memory_order_seq_cst) st.clock.join(s->sc_clock());
    const std::size_t idx = admissible_pick(s, m, st, tid, order);
    const Store& chosen = m.hist[idx];
    m.last_read[static_cast<std::size_t>(tid)] = m.base + idx;
    s->bump_epoch(tid);
    if (chosen.has_rel) {
      if (order == std::memory_order_relaxed)
        st.pending_acquire.join(chosen.rel);
      else
        st.clock.join(chosen.rel);  // acquire / consume / seq_cst
    }
    if (order == std::memory_order_seq_cst) s->sc_clock().join(st.clock);
    (void)loc;
    return chosen.value;
  }

  void store(T v, std::memory_order order,
             std::source_location loc = std::source_location::current()) {
    int tid;
    Session* s = Session::bound(tid);
    if (s == nullptr) {
      impl_.store(v, order);
      return;
    }
    schedule_point(tid);
    std::lock_guard<std::mutex> guard(s->mu());
    Model& m = model(s);
    auto& st = s->thread_state(tid);
    if (order == std::memory_order_seq_cst) st.clock.join(s->sc_clock());
    append_store(s, m, st, tid, v, is_release(order), /*rmw=*/false,
                 /*sc=*/order == std::memory_order_seq_cst);
    if (order == std::memory_order_seq_cst) s->sc_clock().join(st.clock);
    (void)loc;
  }

  T exchange(T v, std::memory_order order,
             std::source_location loc = std::source_location::current()) {
    return rmw([v](T) { return v; }, order, loc).first;
  }

  bool compare_exchange_strong(
      T& expected, T desired, std::memory_order success,
      std::memory_order failure,
      std::source_location loc = std::source_location::current()) {
    int tid;
    Session* s = Session::bound(tid);
    if (s == nullptr)
      return impl_.compare_exchange_strong(expected, desired, success, failure);
    schedule_point(tid);
    std::lock_guard<std::mutex> guard(s->mu());
    Model& m = model(s);
    auto& st = s->thread_state(tid);
    const T latest = m.hist.back().value;
    if (!(latest == expected)) {
      // Failed CAS: a load of the latest value with the failure order
      // (reading latest, not stale, is a sound strengthening).
      if (failure == std::memory_order_seq_cst) st.clock.join(s->sc_clock());
      sync_read(s, m, st, tid, m.hist.size() - 1, failure);
      if (failure == std::memory_order_seq_cst) s->sc_clock().join(st.clock);
      expected = latest;
      return false;
    }
    if (success == std::memory_order_seq_cst) st.clock.join(s->sc_clock());
    sync_read(s, m, st, tid, m.hist.size() - 1, success);
    append_store(s, m, st, tid, desired, is_release(success), /*rmw=*/true,
                 /*sc=*/success == std::memory_order_seq_cst);
    if (success == std::memory_order_seq_cst) s->sc_clock().join(st.clock);
    (void)loc;
    return true;
  }

  bool compare_exchange_weak(
      T& expected, T desired, std::memory_order success,
      std::memory_order failure,
      std::source_location loc = std::source_location::current()) {
    // The model has no spurious failure; weak == strong here.
    return compare_exchange_strong(expected, desired, success, failure, loc);
  }

  template <typename U = T, typename = std::enable_if_t<std::is_integral_v<U>>>
  T fetch_add(T delta, std::memory_order order,
              std::source_location loc = std::source_location::current()) {
    return rmw([delta](T old) { return static_cast<T>(old + delta); }, order,
               loc)
        .first;
  }

  template <typename U = T, typename = std::enable_if_t<std::is_integral_v<U>>>
  T fetch_sub(T delta, std::memory_order order,
              std::source_location loc = std::source_location::current()) {
    return rmw([delta](T old) { return static_cast<T>(old - delta); }, order,
               loc)
        .first;
  }

 private:
  struct Store {
    T value{};
    VectorClock rel;     ///< release-sequence clock carried by this store
    bool has_rel = false;
    int tid = 0;
    std::uint32_t epoch = 0;  ///< writer's event counter at store time
    std::uint64_t sc_time = 0;  ///< position in S; 0 = not a seq_cst store
  };

  struct Model {
    std::uint64_t gen = 0;
    std::vector<Store> hist;   ///< back() = latest in modification order
    std::uint64_t base = 0;    ///< absolute index of hist[0]
    std::array<std::uint64_t, kMaxVerifyThreads> last_read{};
    // C11/C++11 release-sequence head (pre-P0982, the semantics this model
    // targets): a release store heads a sequence that continues through
    // *same-thread* stores and any-thread RMWs, and is broken by another
    // thread's plain store. rel_head accumulates the head clocks of the
    // current unbroken sequence so a continuing store can carry them.
    VectorClock rel_head;
    int rel_head_tid = -1;      ///< thread owning the current sequence
    bool has_rel_head = false;
  };

  static bool is_release(std::memory_order o) {
    return o == std::memory_order_release || o == std::memory_order_acq_rel ||
           o == std::memory_order_seq_cst;
  }

  /// Lazily (re)initializes the model for the current session generation,
  /// seeding the history with the underlying value as an initial store
  /// visible to every thread. Caller holds the session lock.
  Model& model(Session* s) const {
    Model* m = model_.load(std::memory_order_relaxed);
    if (m == nullptr) {
      m = new Model();
      model_.store(m, std::memory_order_release);
    }
    if (m->gen != s->generation()) {
      m->gen = s->generation();
      m->hist.clear();
      m->hist.push_back(Store{impl_.load(std::memory_order_relaxed),
                              VectorClock{}, false, 0, 0});
      m->base = 0;
      m->last_read.fill(0);
    }
    return *m;
  }

  /// Picks an admissible store index for a load by `tid`: one at least as
  /// new as (a) the newest store the thread's clock knows, (b) anything it
  /// read from this object before (coherence), and (c) the SC-order floor.
  ///
  /// The SC floor implements the [atomics.order] value rules over the
  /// model's total order S (the execution order of seq_cst operations
  /// under the session lock — a valid choice of S, so restricting reads by
  /// it never invents behavior). Each store has an S "publication time":
  /// its own slot if it is a seq_cst store, else the slot of the writer's
  /// earliest later seq_cst fence (sc_publish_time), else unpublished. A
  /// load may not read past the newest store published before the reader's
  /// horizon: the position of its last seq_cst fence, or all of S so far
  /// for a seq_cst load. Stores trimmed out of the history window only
  /// ever tighten these floors, so losing them is sound.
  std::size_t admissible_pick(Session* s, Model& m,
                              typename Session::ThreadState& st, int tid,
                              std::memory_order order) const {
    const std::size_t n = m.hist.size();
    std::uint64_t lo_abs = m.last_read[static_cast<std::size_t>(tid)];
    for (std::size_t i = n; i-- > 0;) {
      const Store& sto = m.hist[i];
      if (st.clock.knows(sto.tid, sto.epoch) || sto.epoch == 0) {
        lo_abs = std::max(lo_abs, m.base + i);
        break;
      }
    }
    const std::uint64_t horizon = order == std::memory_order_seq_cst
                                      ? ~std::uint64_t{0}
                                      : st.sc_fence_time;
    if (horizon != 0) {
      // Anchor the horizon in S: this load's floor-skips assume the
      // slot-order position of its fence, so exploration may no longer
      // slide earlier publishers past it (see Session::sc_note_horizon).
      if (horizon != ~std::uint64_t{0}) s->sc_note_horizon(horizon);
      for (std::size_t i = n; i-- > 0;) {
        const Store& sto = m.hist[i];
        std::uint64_t published = sto.sc_time;
        if (published == 0 && sto.epoch != 0)
          published = s->sc_publish_time(sto.tid, sto.epoch);
        if (published != 0 && s->sc_before(published, horizon)) {
          // SC exploration (Options::sc_reorder_window): a floor may be
          // dropped when some admissible S slides this publisher past the
          // reader's horizon — an older publisher can still floor, so keep
          // scanning instead of breaking.
          if (!s->sc_floor_is_firm(tid, static_cast<const void*>(this),
                                   published, horizon))
            continue;
          lo_abs = std::max(lo_abs, m.base + i);
          break;
        }
      }
    }
    const std::size_t lo = lo_abs > m.base
                               ? static_cast<std::size_t>(lo_abs - m.base)
                               : 0;
    return s->pick_index(tid, lo, n - 1);
  }

  /// Acquire-side bookkeeping for reading store `idx` with `order`.
  void sync_read(Session* s, Model& m, typename Session::ThreadState& st,
                 int tid, std::size_t idx, std::memory_order order) {
    const Store& sto = m.hist[idx];
    m.last_read[static_cast<std::size_t>(tid)] = m.base + idx;
    s->bump_epoch(tid);
    if (sto.has_rel) {
      const bool acq = order == std::memory_order_acquire ||
                       order == std::memory_order_consume ||
                       order == std::memory_order_acq_rel ||
                       order == std::memory_order_seq_cst;
      if (acq)
        st.clock.join(sto.rel);
      else
        st.pending_acquire.join(sto.rel);
    }
  }

  /// Appends a store with the correct release-clock payload and trims the
  /// history window. RMW stores continue the predecessor's release
  /// sequence. Seq_cst stores take a slot in S so SC-order floors apply.
  /// Writes through to the underlying atomic.
  void append_store(Session* s, Model& m, typename Session::ThreadState& st,
                    int tid, T v, bool release, bool rmw, bool sc) {
    const std::uint32_t epoch = s->bump_epoch(tid);
    Store sto{v, VectorClock{}, false, tid, epoch};
    if (sc)
      sto.sc_time = s->take_sc_slot(tid, static_cast<const void*>(this));
    if (release) {
      sto.rel = st.clock;
      sto.has_rel = true;
      // Heads a release sequence (C++11 rules; same-thread clocks are
      // monotone, so overwriting ⊇ joining the previous same-thread head).
      m.rel_head = st.clock;
      m.rel_head_tid = tid;
      m.has_rel_head = true;
    } else if (st.has_pending_release) {
      sto.rel = st.pending_release;
      sto.has_rel = true;
    }
    if (rmw && m.hist.back().has_rel) {
      sto.rel.join(m.hist.back().rel);  // release-sequence continuation
      sto.has_rel = true;
    }
    if (!release && !rmw) {
      if (m.has_rel_head && m.rel_head_tid == tid) {
        // C++11 [intro.races]: a store by the sequence's own thread
        // continues it — readers of this store synchronize with the head.
        sto.rel.join(m.rel_head);
        sto.has_rel = true;
      } else if (m.rel_head_tid != tid) {
        m.has_rel_head = false;  // another thread's plain store breaks it
      }
    }
    m.hist.push_back(sto);
    m.last_read[static_cast<std::size_t>(tid)] = m.base + m.hist.size() - 1;
    const auto cap =
        static_cast<std::size_t>(s->options().history_window);
    if (m.hist.size() > cap) {
      m.hist.erase(m.hist.begin());
      ++m.base;
    }
    impl_.store(v, std::memory_order_seq_cst);  // write-through
  }

  template <typename F>
  std::pair<T, bool> rmw(F&& f, std::memory_order order,
                         std::source_location loc) {
    int tid;
    Session* s = Session::bound(tid);
    if (s == nullptr) {
      // Passthrough RMW loop over the underlying atomic.
      T old = impl_.load(std::memory_order_relaxed);
      while (!impl_.compare_exchange_weak(old, f(old), order,
                                          std::memory_order_relaxed)) {
      }
      return {old, true};
    }
    schedule_point(tid);
    std::lock_guard<std::mutex> guard(s->mu());
    Model& m = model(s);
    auto& st = s->thread_state(tid);
    if (order == std::memory_order_seq_cst) st.clock.join(s->sc_clock());
    const T old = m.hist.back().value;  // RMWs read latest (C11 atomicity)
    sync_read(s, m, st, tid, m.hist.size() - 1, order);
    append_store(s, m, st, tid, f(old), is_release(order), /*rmw=*/true,
                 /*sc=*/order == std::memory_order_seq_cst);
    if (order == std::memory_order_seq_cst) s->sc_clock().join(st.clock);
    (void)loc;
    return {old, true};
  }

  mutable std::atomic<T> impl_;
  mutable std::atomic<Model*> model_{nullptr};
};

/// Instrumented replacement for std::atomic_thread_fence.
inline void thread_fence(
    std::memory_order order,
    std::source_location loc = std::source_location::current()) {
  int tid;
  if (Session* s = Session::bound(tid)) {
    schedule_point(tid);
    s->fence(tid, order);
    (void)loc;
    return;
  }
  raw_thread_fence(order);
}

/// Value-modeled read of a plain (non-atomic) cell: race-checked like
/// WASP_VERIFY_RD, and the returned value may be any admissible stale
/// recorded store when the reader lacks the happens-before edge (see
/// Session::on_plain_read_value). Unbound threads read the live value.
template <typename T>
[[nodiscard]] T plain_load(
    const T& cell, std::source_location loc = std::source_location::current()) {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8,
                "plain_load models word-sized trivially copyable cells");
  int tid;
  Session* s = Session::bound(tid);
  if (s == nullptr) return cell;
  schedule_point(tid);
  std::uint64_t fresh = 0;
  std::memcpy(&fresh, &cell, sizeof(T));
  const std::uint64_t bits = s->on_plain_read_value(
      tid, static_cast<const void*>(&cell), site_of(loc), fresh);
  T out{};
  std::memcpy(&out, &bits, sizeof(T));
  return out;
}

/// Value-modeled write of a plain cell: race-checked like WASP_VERIFY_WR,
/// recorded in the cell's store history, and written through.
template <typename T>
void plain_store(T& cell, T v,
                 std::source_location loc = std::source_location::current()) {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8,
                "plain_store models word-sized trivially copyable cells");
  int tid;
  if (Session* s = Session::bound(tid)) {
    schedule_point(tid);
    std::uint64_t old_bits = 0;
    std::uint64_t new_bits = 0;
    std::memcpy(&old_bits, &cell, sizeof(T));
    std::memcpy(&new_bits, &v, sizeof(T));
    s->on_plain_write_value(tid, static_cast<const void*>(&cell),
                            site_of(loc), old_bits, new_bits);
  }
  cell = v;  // write-through: unbound readers always see the live value
}

#else  // !WASP_VERIFY_ENABLED ------------------------------------------------

/// Zero-cost passthrough: identical layout and codegen to std::atomic<T>.
template <typename T>
class atomic {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  atomic() noexcept : impl_{} {}
  constexpr atomic(T v) noexcept : impl_(v) {}  // NOLINT(google-explicit-constructor)

  atomic(const atomic&) = delete;
  atomic& operator=(const atomic&) = delete;

  T load(std::memory_order order) const { return impl_.load(order); }
  void store(T v, std::memory_order order) { impl_.store(v, order); }
  T exchange(T v, std::memory_order order) { return impl_.exchange(v, order); }
  bool compare_exchange_strong(T& expected, T desired,
                               std::memory_order success,
                               std::memory_order failure) {
    return impl_.compare_exchange_strong(expected, desired, success, failure);
  }
  bool compare_exchange_weak(T& expected, T desired, std::memory_order success,
                             std::memory_order failure) {
    return impl_.compare_exchange_weak(expected, desired, success, failure);
  }
  template <typename U = T, typename = std::enable_if_t<std::is_integral_v<U>>>
  T fetch_add(T delta, std::memory_order order) {
    return impl_.fetch_add(delta, order);
  }
  template <typename U = T, typename = std::enable_if_t<std::is_integral_v<U>>>
  T fetch_sub(T delta, std::memory_order order) {
    return impl_.fetch_sub(delta, order);
  }

 private:
  std::atomic<T> impl_;
};

inline void thread_fence(std::memory_order order) {
  raw_thread_fence(order);
}

/// Zero-cost passthroughs for the plain-cell value-model entry points.
template <typename T>
[[nodiscard]] T plain_load(const T& cell) {
  return cell;
}

template <typename T>
void plain_store(T& cell, T v) {
  cell = v;
}

#endif  // WASP_VERIFY_ENABLED

}  // namespace wasp::verify

// Plain-access race-checker annotations. Mark the non-atomic shared cells
// whose publication the surrounding protocol is supposed to order; with
// verification off they disappear entirely.
#if defined(WASP_VERIFY_ENABLED) && WASP_VERIFY_ENABLED
#define WASP_VERIFY_RD(addr) \
  (::wasp::verify::plain_read(static_cast<const void*>(addr)))
#define WASP_VERIFY_WR(addr) \
  (::wasp::verify::plain_write(static_cast<const void*>(addr)))
#define WASP_VERIFY_RETIRE(base, bytes) \
  (::wasp::verify::plain_retire(static_cast<const void*>(base), (bytes)))
#else
#define WASP_VERIFY_RD(addr) ((void)0)
#define WASP_VERIFY_WR(addr) ((void)0)
#define WASP_VERIFY_RETIRE(base, bytes) ((void)0)
#endif
