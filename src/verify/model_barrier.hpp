// Sense-reversing barrier built from checked atomics, for harness code that
// phases work under the happens-before model. A pthread barrier (or raw
// std::atomic spin) would order the *real* execution but leave no edge in
// the model, so cross-phase plain accesses would be reported as races even
// when the protocol is correct. Built on verify::atomic, every arrival and
// phase flip is a model event — and, when a Scheduler is installed, a
// schedule point.
//
// This is harness vocabulary (tests, in-situ delta-stepping rounds), not a
// production barrier: production code uses SpinBarrier, which carries the
// same instrumentation via its own verify::atomic fields.
#pragma once

#include <atomic>
#include <thread>

#include "verify/checked_atomic.hpp"

namespace wasp::verify {

class ModelBarrier {
 public:
  explicit ModelBarrier(int n) : n_(n) {}

  ModelBarrier(const ModelBarrier&) = delete;
  ModelBarrier& operator=(const ModelBarrier&) = delete;

  void wait() {
    const int ph = phase_.load(std::memory_order_acquire);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) == n_ - 1) {
      arrived_.store(0, std::memory_order_relaxed);
      phase_.store(ph + 1, std::memory_order_release);
    } else {
      while (phase_.load(std::memory_order_acquire) == ph) {
        std::this_thread::yield();
      }
    }
  }

 private:
  const int n_;
  verify::atomic<int> arrived_{0};
  verify::atomic<int> phase_{0};
};

}  // namespace wasp::verify
