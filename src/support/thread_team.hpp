// Persistent fork-join worker team: the parallel runtime every SSSP
// implementation in this repository runs on (a minimal ParlayLib stand-in).
//
// A ThreadTeam owns `size() - 1` worker threads; the calling thread acts as
// participant 0.  `run(fn)` executes fn(tid) on every participant and blocks
// until all finish.  `parallel_for` provides dynamically scheduled loops via
// an atomic work counter.
//
// Workers block on a condition variable between jobs, so an idle team costs
// nothing — important on oversubscribed machines.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wasp {

/// Fixed-size fork-join thread team.
class ThreadTeam {
 public:
  /// Creates a team of `num_threads` participants (>= 1). Spawns
  /// `num_threads - 1` workers; the caller of run() is participant 0.
  /// When the machine exposes more than one CPU, workers are pinned
  /// round-robin across CPUs so NUMA tiering is meaningful.
  explicit ThreadTeam(int num_threads);
  ~ThreadTeam();

  ThreadTeam(const ThreadTeam&) = delete;
  ThreadTeam& operator=(const ThreadTeam&) = delete;

  /// Number of participants (including the caller).
  [[nodiscard]] int size() const { return num_threads_; }

  /// Runs fn(tid) for tid in [0, size()) and blocks until all return.
  /// Must not be called reentrantly from within a job.
  void run(const std::function<void(int)>& fn);

  /// Dynamically scheduled parallel loop over [begin, end): participants
  /// repeatedly claim `grain`-sized blocks and invoke body(lo, hi).
  void parallel_for(std::uint64_t begin, std::uint64_t end, std::uint64_t grain,
                    const std::function<void(std::uint64_t, std::uint64_t)>& body);

  /// CPU id participant `tid` is (logically) placed on.
  [[nodiscard]] int cpu_of(int tid) const { return cpu_of_[static_cast<std::size_t>(tid)]; }

  /// Lifetime job accounting, surfaced as gauges in MetricsSnapshot (the
  /// kTeamJobs / kTeamJobNs gauges): how many jobs this team has executed
  /// and the cumulative wall time spent inside run(). Written by the run()
  /// caller only; read them outside a job.
  [[nodiscard]] std::uint64_t jobs_run() const { return jobs_run_; }
  [[nodiscard]] std::uint64_t job_ns() const { return job_ns_; }

 private:
  void worker_loop(int tid);

  const int num_threads_;
  std::vector<std::thread> workers_;
  std::vector<int> cpu_of_;

  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::function<void(int)> job_;
  std::uint64_t epoch_ = 0;    // bumped per job; workers wait for a new epoch
  int pending_ = 0;            // workers still executing the current job
  bool shutdown_ = false;

  std::uint64_t jobs_run_ = 0;  // lifetime jobs executed (run() calls)
  std::uint64_t job_ns_ = 0;    // cumulative wall ns inside run()
};

/// Convenience: one-shot parallel_for on a temporary need-not-persist team.
/// Prefer a long-lived ThreadTeam in hot paths.
void parallel_for(int num_threads, std::uint64_t begin, std::uint64_t end,
                  std::uint64_t grain,
                  const std::function<void(std::uint64_t, std::uint64_t)>& body);

/// Number of hardware threads (>= 1).
int hardware_threads();

}  // namespace wasp
