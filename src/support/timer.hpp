// Monotonic wall-clock timing utilities used by the benchmark harness and by
// the instrumentation hooks (barrier wait time, queue-operation time).
#pragma once

#include <chrono>
#include <cstdint>

namespace wasp {

/// Simple monotonic stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Nanoseconds elapsed since construction or the last reset().
  [[nodiscard]] std::uint64_t nanoseconds() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                             start_)
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates time across disjoint start/stop intervals. Single-threaded;
/// instrumented code keeps one accumulator per thread (cache-padded).
class TimeAccumulator {
 public:
  void start() { timer_.reset(); }
  void stop() { total_ns_ += timer_.nanoseconds(); }

  [[nodiscard]] std::uint64_t total_ns() const { return total_ns_; }
  [[nodiscard]] double total_seconds() const { return 1e-9 * static_cast<double>(total_ns_); }
  void reset() { total_ns_ = 0; }

 private:
  Timer timer_;
  std::uint64_t total_ns_ = 0;
};

}  // namespace wasp
