#include "support/numa.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

#include "support/thread_team.hpp"

namespace wasp {

namespace {

// Parses a sysfs cpulist like "0-3,8,10-11" into CPU ids.
std::vector<int> parse_cpulist(const std::string& text) {
  std::vector<int> cpus;
  std::stringstream ss(text);
  std::string part;
  while (std::getline(ss, part, ',')) {
    if (part.empty()) continue;
    const auto dash = part.find('-');
    if (dash == std::string::npos) {
      cpus.push_back(std::stoi(part));
    } else {
      const int lo = std::stoi(part.substr(0, dash));
      const int hi = std::stoi(part.substr(dash + 1));
      for (int c = lo; c <= hi; ++c) cpus.push_back(c);
    }
  }
  return cpus;
}

bool read_file(const std::string& path, std::string& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::getline(in, out);
  return true;
}

}  // namespace

NumaTopology NumaTopology::flat(int num_cpus) {
  NumaTopology topo;
  topo.num_cpus_ = std::max(num_cpus, 1);
  topo.node_cpus_.resize(1);
  topo.node_of_cpu_.assign(static_cast<std::size_t>(topo.num_cpus_), 0);
  for (int c = 0; c < topo.num_cpus_; ++c) topo.node_cpus_[0].push_back(c);
  topo.distance_ = {10};
  return topo;
}

NumaTopology NumaTopology::synthetic(int sockets, int nodes_per_socket,
                                     int cpus_per_node) {
  NumaTopology topo;
  const int nodes = sockets * nodes_per_socket;
  topo.num_cpus_ = nodes * cpus_per_node;
  topo.node_cpus_.resize(static_cast<std::size_t>(nodes));
  topo.node_of_cpu_.resize(static_cast<std::size_t>(topo.num_cpus_));
  int cpu = 0;
  for (int n = 0; n < nodes; ++n) {
    for (int k = 0; k < cpus_per_node; ++k, ++cpu) {
      topo.node_cpus_[static_cast<std::size_t>(n)].push_back(cpu);
      topo.node_of_cpu_[static_cast<std::size_t>(cpu)] = n;
    }
  }
  topo.distance_.resize(static_cast<std::size_t>(nodes) * static_cast<std::size_t>(nodes));
  for (int a = 0; a < nodes; ++a) {
    for (int b = 0; b < nodes; ++b) {
      int d = 10;
      if (a != b) d = (a / nodes_per_socket == b / nodes_per_socket) ? 12 : 32;
      topo.distance_[static_cast<std::size_t>(a) * static_cast<std::size_t>(nodes) +
                     static_cast<std::size_t>(b)] = d;
    }
  }
  return topo;
}

NumaTopology NumaTopology::detect() {
  return detect_from("/sys/devices/system/node");
}

NumaTopology NumaTopology::detect_from(const std::string& base) {
  std::vector<std::vector<int>> node_cpus;
  for (int n = 0;; ++n) {
    std::string cpulist;
    if (!read_file(base + "/node" + std::to_string(n) + "/cpulist", cpulist)) break;
    node_cpus.push_back(parse_cpulist(cpulist));
  }
  if (node_cpus.empty()) return flat(hardware_threads());

  NumaTopology topo;
  topo.node_cpus_ = std::move(node_cpus);
  const int nodes = topo.num_nodes();
  int max_cpu = -1;
  for (const auto& cpus : topo.node_cpus_)
    for (int c : cpus) max_cpu = std::max(max_cpu, c);
  topo.num_cpus_ = max_cpu + 1;
  if (topo.num_cpus_ <= 0) return flat(hardware_threads());

  topo.node_of_cpu_.assign(static_cast<std::size_t>(topo.num_cpus_), 0);
  for (int n = 0; n < nodes; ++n)
    for (int c : topo.node_cpus_[static_cast<std::size_t>(n)])
      topo.node_of_cpu_[static_cast<std::size_t>(c)] = n;

  topo.distance_.assign(static_cast<std::size_t>(nodes) * static_cast<std::size_t>(nodes), 10);
  for (int n = 0; n < nodes; ++n) {
    std::string line;
    if (!read_file(base + "/node" + std::to_string(n) + "/distance", line)) continue;
    std::stringstream ss(line);
    for (int m = 0; m < nodes; ++m) {
      int d = 10;
      if (!(ss >> d)) break;
      topo.distance_[static_cast<std::size_t>(n) * static_cast<std::size_t>(nodes) +
                     static_cast<std::size_t>(m)] = d;
    }
  }
  return topo;
}

std::string NumaTopology::describe() const {
  std::ostringstream os;
  os << num_nodes() << " NUMA node(s), " << num_cpus() << " CPU(s)";
  return os.str();
}

VictimTiers::VictimTiers(const NumaTopology& topo,
                         const std::vector<int>& cpu_of_thread) {
  const int p = static_cast<int>(cpu_of_thread.size());
  tiers_.resize(static_cast<std::size_t>(p));
  distances_.resize(static_cast<std::size_t>(p));
  for (int t = 0; t < p; ++t) {
    const int my_node = topo.node_of_cpu(cpu_of_thread[static_cast<std::size_t>(t)]);
    // Group other threads by distance from the thief's node. The map is keyed
    // on distance, so tiers come out nearest-first by construction.
    std::map<int, std::vector<int>> by_distance;
    for (int u = 0; u < p; ++u) {
      if (u == t) continue;
      const int node = topo.node_of_cpu(cpu_of_thread[static_cast<std::size_t>(u)]);
      by_distance[topo.distance(my_node, node)].push_back(u);
    }
    auto& my_tiers = tiers_[static_cast<std::size_t>(t)];
    auto& my_dists = distances_[static_cast<std::size_t>(t)];
    for (auto& [dist, victims] : by_distance) {
      // Equal-distance victims span multiple nodes when the distance matrix
      // has ties (e.g. two sibling nodes of one socket). Raw thread-id order
      // interleaves those nodes under round-robin pinning; grouping by
      // (node, thread) lets a thief drain one remote node's deques before
      // pulling another node's cache lines.
      std::stable_sort(victims.begin(), victims.end(), [&](int a, int b) {
        const int na = topo.node_of_cpu(cpu_of_thread[static_cast<std::size_t>(a)]);
        const int nb = topo.node_of_cpu(cpu_of_thread[static_cast<std::size_t>(b)]);
        if (na != nb) return na < nb;
        return a < b;
      });
      // Rotate by thief id so colocated thieves probe distinct victims first.
      if (!victims.empty()) {
        const std::size_t shift =
            static_cast<std::size_t>(t) % victims.size();
        std::rotate(victims.begin(),
                    victims.begin() + static_cast<std::ptrdiff_t>(shift),
                    victims.end());
      }
      my_dists.push_back(dist);
      my_tiers.push_back(std::move(victims));
    }
  }
}

}  // namespace wasp
