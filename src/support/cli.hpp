// Minimal command-line option parser used by the examples and the benchmark
// harness. Supports `--name value`, `--name=value`, and boolean `--flag`.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace wasp {

/// Declarative option parser. Register options, then parse(argc, argv).
///
///   ArgParser args("fig05_heatmap", "Reproduces the Figure 5 heatmap");
///   args.add_int("threads", 8, "worker threads");
///   args.add_flag("verbose", "chatty output");
///   args.parse(argc, argv);            // exits with usage on --help / error
///   int t = args.get_int("threads");
class ArgParser {
 public:
  ArgParser(std::string program, std::string description);

  void add_int(const std::string& name, std::int64_t default_value,
               const std::string& help);
  void add_double(const std::string& name, double default_value,
                  const std::string& help);
  void add_string(const std::string& name, const std::string& default_value,
                  const std::string& help);
  void add_flag(const std::string& name, const std::string& help);

  /// Parses argv. On `--help` prints usage and exits(0); on an unknown or
  /// malformed option prints usage and exits(2).
  void parse(int argc, char** argv);

  [[nodiscard]] std::int64_t get_int(const std::string& name) const;
  [[nodiscard]] double get_double(const std::string& name) const;
  [[nodiscard]] const std::string& get_string(const std::string& name) const;
  [[nodiscard]] bool get_flag(const std::string& name) const;

  /// Usage text (also printed by --help).
  [[nodiscard]] std::string usage() const;

 private:
  enum class Kind { kInt, kDouble, kString, kFlag };
  struct Option {
    Kind kind;
    std::string value;  // textual; converted on get
    std::string default_value;
    std::string help;
  };

  const Option& find(const std::string& name, Kind kind) const;
  [[noreturn]] void fail(const std::string& message) const;

  std::string program_;
  std::string description_;
  std::map<std::string, Option> options_;
  std::vector<std::string> order_;
};

}  // namespace wasp
