// Cache-line padded wrapper used to keep per-thread hot data (counters,
// indices, flags) on private cache lines and avoid false sharing.
#pragma once

#include <cstddef>
#include <new>
#include <utility>

#include "support/types.hpp"

namespace wasp {

/// Wraps a T and pads it to a multiple of the cache-line size.
///
/// Use for elements of per-thread arrays that are written from different
/// threads, e.g. `std::vector<CachePadded<std::atomic<uint64_t>>>`.
template <typename T>
struct alignas(kCacheLineSize) CachePadded {
  T value{};

  CachePadded() = default;

  template <typename... Args>
  explicit CachePadded(Args&&... args) : value(std::forward<Args>(args)...) {}

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }

 private:
  // Pad the tail so sizeof is a cache-line multiple even when T is small.
  char pad_[(sizeof(T) % kCacheLineSize) == 0
                ? kCacheLineSize
                : kCacheLineSize - (sizeof(T) % kCacheLineSize)] = {};
};

}  // namespace wasp
