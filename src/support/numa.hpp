// NUMA topology discovery and victim-tier computation.
//
// Wasp's work-stealing protocol (paper §4.2, Algorithm 2) walks victims in
// tiers ordered by NUMA distance from the thief.  This module provides:
//
//  * NumaTopology — node/CPU layout plus the node distance matrix, read from
//    /sys/devices/system/node at runtime, or constructed synthetically.
//    Synthetic topologies let tests and benches exercise multi-tier stealing
//    on machines (like CI containers) that expose a single node.
//  * VictimTiers — for a concrete thread->CPU placement, the per-thief list
//    of victim thread ids grouped by increasing NUMA distance.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace wasp {

/// Immutable description of the machine's NUMA layout.
class NumaTopology {
 public:
  /// Reads the topology from sysfs; falls back to flat() on any failure.
  static NumaTopology detect();

  /// Reads a sysfs-shaped directory tree (node<i>/cpulist, node<i>/distance)
  /// rooted at `base`. Used by detect() with /sys/devices/system/node and by
  /// tests with synthetic trees. Falls back to flat() when `base` has no
  /// node0.
  static NumaTopology detect_from(const std::string& base);

  /// Single-node topology with `num_cpus` CPUs (distance matrix = {10}).
  static NumaTopology flat(int num_cpus);

  /// Synthetic topology: `sockets` sockets, `nodes_per_socket` NUMA nodes
  /// each, `cpus_per_node` CPUs per node. Distances: 10 within a node, 12
  /// across nodes of one socket, 32 across sockets — the shape of the
  /// paper's EPYC machine.
  static NumaTopology synthetic(int sockets, int nodes_per_socket,
                                int cpus_per_node);

  [[nodiscard]] int num_nodes() const { return static_cast<int>(node_cpus_.size()); }
  [[nodiscard]] int num_cpus() const { return num_cpus_; }

  /// NUMA node owning `cpu`.
  [[nodiscard]] int node_of_cpu(int cpu) const {
    return node_of_cpu_[static_cast<std::size_t>(cpu)];
  }

  /// ACPI-style distance between two nodes (10 = local).
  [[nodiscard]] int distance(int node_a, int node_b) const {
    return distance_[static_cast<std::size_t>(node_a) *
                         static_cast<std::size_t>(num_nodes()) +
                     static_cast<std::size_t>(node_b)];
  }

  /// CPUs belonging to `node`.
  [[nodiscard]] const std::vector<int>& cpus_of_node(int node) const {
    return node_cpus_[static_cast<std::size_t>(node)];
  }

  /// Human-readable summary (for logs / bench headers).
  [[nodiscard]] std::string describe() const;

 private:
  NumaTopology() = default;

  int num_cpus_ = 0;
  std::vector<std::vector<int>> node_cpus_;  // node -> cpu list
  std::vector<int> node_of_cpu_;             // cpu -> node
  std::vector<int> distance_;                // row-major num_nodes^2
};

/// Per-thief victim ordering: victim thread ids grouped into tiers of
/// strictly increasing NUMA distance. Tier 0 contains same-node threads,
/// and so on. Within a tier, equal-distance victims are grouped node by
/// node (so a thief exhausts one remote node's deques before touching the
/// next node's cache lines) and then rotated per thief so that thieves on
/// the same node do not all probe the same victim first.
class VictimTiers {
 public:
  /// `cpu_of_thread[t]` is the CPU thread t runs on (see ThreadTeam::cpu_of).
  VictimTiers(const NumaTopology& topo, const std::vector<int>& cpu_of_thread);

  /// Tiers for `thread`, nearest first. Each tier lists other thread ids.
  [[nodiscard]] const std::vector<std::vector<int>>& tiers(int thread) const {
    return tiers_[static_cast<std::size_t>(thread)];
  }

  /// NUMA distance of tier `tier` (an index into tiers(thread)) from the
  /// thief's node. Strictly increasing with the tier index.
  [[nodiscard]] int tier_distance(int thread, int tier) const {
    return distances_[static_cast<std::size_t>(thread)]
                     [static_cast<std::size_t>(tier)];
  }

  [[nodiscard]] int num_threads() const { return static_cast<int>(tiers_.size()); }

 private:
  std::vector<std::vector<std::vector<int>>> tiers_;
  std::vector<std::vector<int>> distances_;  // thread -> tier -> NUMA distance
};

}  // namespace wasp
