// Sense-reversing centralized barrier with an instrumentation hook.
//
// Used by the synchronous baselines (GAP-style delta-stepping, Julienne,
// delta*/rho-stepping).  The barrier optionally accumulates per-thread wait
// time so the Figure-1 experiment can report the barrier share of execution.
//
// The barrier spins briefly and then yields: on oversubscribed machines a
// pure spin barrier would starve the threads it is waiting for.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "support/padded.hpp"
#include "support/timer.hpp"
#include "verify/checked_atomic.hpp"

namespace wasp {

/// Centralized sense-reversing barrier for a fixed set of participants.
class SpinBarrier {
 public:
  explicit SpinBarrier(int num_threads)
      : num_threads_(num_threads), wait_ns_(static_cast<std::size_t>(num_threads)) {}

  SpinBarrier(const SpinBarrier&) = delete;
  SpinBarrier& operator=(const SpinBarrier&) = delete;

  /// Blocks until all participants arrive. `tid` identifies the caller and is
  /// only used to attribute wait time.
  void wait(int tid) {
    Timer t;
    // Sense-reversing barrier. The relaxed sense read is private pacing
    // state (only this thread compares against it); the acq_rel arrival
    // fetch_add makes every participant's pre-barrier writes visible to the
    // last arriver, whose release sense_ flip then publishes the whole
    // round to the acquire spin loops below. arrived_ resets relaxed: only
    // the flipper touches it between rounds.
    const bool my_sense = !sense_.load(std::memory_order_relaxed);
    if (arrived_.fetch_add(1, std::memory_order_acq_rel) == num_threads_ - 1) {
      arrived_.store(0, std::memory_order_relaxed);
      sense_.store(my_sense, std::memory_order_release);
    } else {
      int spins = 0;
      while (sense_.load(std::memory_order_acquire) != my_sense) {
        if (++spins > kSpinsBeforeYield) std::this_thread::yield();
      }
    }
    wait_ns_[static_cast<std::size_t>(tid)].value += t.nanoseconds();
  }

  /// Total nanoseconds thread `tid` has spent waiting at this barrier.
  [[nodiscard]] std::uint64_t wait_ns(int tid) const {
    return wait_ns_[static_cast<std::size_t>(tid)].value;
  }

  /// Sum of wait time across all threads, in nanoseconds.
  [[nodiscard]] std::uint64_t total_wait_ns() const {
    std::uint64_t total = 0;
    for (const auto& w : wait_ns_) total += w.value;
    return total;
  }

  void reset_wait_times() {
    for (auto& w : wait_ns_) w.value = 0;
  }

  [[nodiscard]] int num_threads() const { return num_threads_; }

 private:
  static constexpr int kSpinsBeforeYield = 64;

  const int num_threads_;
  // Checked atomics: the happens-before model (and the scheduler harness)
  // must see the barrier's phase edges, or a model-run delta-stepping round
  // would report every cross-phase access as racy. Zero-cost when
  // WASP_VERIFY=OFF.
  verify::atomic<int> arrived_{0};
  verify::atomic<bool> sense_{false};
  std::vector<CachePadded<std::uint64_t>> wait_ns_;
};

}  // namespace wasp
