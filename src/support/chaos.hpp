// Deterministic fault injection for the concurrent layer (the "chaos"
// subsystem).
//
// Wasp's correctness rests on a delicate steal/terminate protocol; the OS
// scheduler alone only explores a thin slice of its interleavings. This
// module defines *named injection points* inside the concurrent structures
// and the Wasp scheduler (steal failure, delayed `curr` publication, forced
// yields around contended CAS operations, chunk-pool allocation failure,
// spurious wakeup in the termination scan). A seeded ChaosEngine decides,
// per point visit, whether the fault fires; every firing decision comes from
// a per-thread PRNG stream derived only from (seed, tid), so a failing run
// is reproducible from its seed (exactly, for single-threaded runs; per
// thread, for parallel runs).
//
// Cost model:
//  * With the build option WASP_CHAOS=OFF (the default) the injection-point
//    macros below compile to constant no-ops — zero overhead, no branches.
//  * With WASP_CHAOS=ON each point costs one thread-local load + branch when
//    no engine is installed, and one PRNG draw when one is.
//
// The engine records every fired point as (tid, seq, point); tests print
// this trace (with the seed) when a validated run fails, and replaying the
// seed reproduces the identical per-thread injection sequence.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "support/padded.hpp"
#include "support/random.hpp"

namespace wasp::chaos {

/// The named injection points. Keep point_name() in sync.
enum class Point : std::uint8_t {
  kStealFail = 0,      ///< a deque/SMQ steal attempt is forced to fail
  kDelayCurrPublish,   ///< yield right before publishing a `curr` level
  kYieldBeforeCas,     ///< yield immediately before a contended CAS
  kYieldAfterCas,      ///< yield immediately after a CAS (won or lost)
  kChunkAllocFail,     ///< chunk-pool freelist treated as exhausted
  kSpuriousWakeup,     ///< termination scan pretends it saw work
  kRemoteFlushDelay,   ///< yield before publishing a remote relaxation batch
  kRemoteDrainDelay,   ///< yield before draining a fragment's remote queue
};
inline constexpr std::size_t kNumPoints = 8;

/// Stable short name of a point ("steal-fail", "delay-curr-publish", ...).
const char* point_name(Point p);

/// Per-point firing probabilities in units of 1/65536. A named preset
/// collection is what the chaos test grid iterates over.
struct Policy {
  std::array<std::uint16_t, kNumPoints> rate{};  // all zero = never fires
  const char* name = "off";

  [[nodiscard]] std::uint16_t rate_of(Point p) const {
    return rate[static_cast<std::size_t>(p)];
  }

  static Policy off();
  /// Every point fires with probability r/65536.
  static Policy uniform(std::uint16_t r);
  /// Heavy steal failures + CAS-adjacent yields (exercises Algorithm 2).
  static Policy steal_storm();
  /// Frequent chunk-pool allocation failures (exercises arena fallback).
  static Policy alloc_pressure();
  /// Delayed curr publication + spurious wakeups (exercises §4.3
  /// termination and the kStealingPriority race window).
  static Policy termination_fuzz();
};

/// The preset policies the chaos grids sweep (off + the four above).
std::vector<Policy> standard_policies();

/// One fired injection point. `seq` counts *visited* points on that thread,
/// so a trace identifies which visit fired, not just how many did.
struct Event {
  int tid;
  std::uint32_t seq;
  Point point;

  friend bool operator==(const Event&, const Event&) = default;
};

/// A seeded fault-injection engine for one run. Thread-safe: each thread
/// draws from its own PRNG stream and appends to its own event log, so
/// firing decisions on thread t are a pure function of (seed, t, number of
/// points previously visited by t).
class Engine {
 public:
  Engine(std::uint64_t seed, const Policy& policy, int max_threads,
         bool record = true);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Decides whether point `p` fires for thread `tid`; records it if so.
  bool fire(int tid, Point p);

  [[nodiscard]] std::uint64_t seed() const { return seed_; }
  [[nodiscard]] const Policy& policy() const { return policy_; }
  [[nodiscard]] int max_threads() const {
    return static_cast<int>(threads_.size());
  }

  /// Total fired events across all threads. Safe to call only when no
  /// thread is concurrently calling fire().
  [[nodiscard]] std::uint64_t fired_count() const;

  /// The fired events ordered by (tid, seq). Same quiescence requirement.
  [[nodiscard]] std::vector<Event> trace() const;

 private:
  struct PerThread {
    Xoshiro256 rng{1};
    std::uint32_t seq = 0;
    std::vector<Event> events;
  };

  std::uint64_t seed_;
  Policy policy_;
  bool record_;
  std::vector<CachePadded<PerThread>> threads_;
};

/// "t0#12:steal-fail t1#3:spurious-wakeup ..." — the replayable schedule.
std::string format_trace(const std::vector<Event>& events);

/// The failure report the chaos tests print: names the seed, policy, thread
/// count and the recorded injection sequence, plus reproduction
/// instructions. `what` is the validation error that triggered it.
std::string failure_report(const Engine& engine, const std::string& what);

namespace detail {
struct Binding {
  Engine* engine = nullptr;
  int tid = 0;
};
// constinit: statically initialized, so no TLS init-guard wrapper is emitted
// (the guard's lazy-init store is what UBSan would otherwise flag, and the
// wrapper call would tax every injection-point visit).
inline constinit thread_local Binding tls_binding{};
// lint:allow(raw-atomic): chaos sits below the verify model; an instrumented
// kill switch would recurse into the session from inside its own hooks.
inline constinit std::atomic<bool> g_enabled{true};  // watchdog kill switch
}  // namespace detail

/// Binds `engine` to the calling thread as logical thread `tid` for the
/// lifetime of the guard. Passing nullptr is a no-op (so callers can thread
/// an optional engine through unconditionally).
class ScopedInstall {
 public:
  ScopedInstall(Engine* engine, int tid) : saved_(detail::tls_binding) {
    if (engine != nullptr) detail::tls_binding = {engine, tid};
  }
  ~ScopedInstall() { detail::tls_binding = saved_; }

  ScopedInstall(const ScopedInstall&) = delete;
  ScopedInstall& operator=(const ScopedInstall&) = delete;

 private:
  detail::Binding saved_;
};

/// Process-wide kill switch: after disable_all(), every fire() returns
/// false regardless of installed engines. The bench watchdog flips this to
/// un-wedge a chaos-induced livelock before retrying.
void disable_all();
void enable_all();
[[nodiscard]] bool globally_enabled();

/// Consults the calling thread's installed engine. False when none.
inline bool fire(Point p) {
  detail::Binding& b = detail::tls_binding;
  if (b.engine == nullptr) return false;
  // Relaxed: the kill switch is advisory — observing it late only lets one
  // more harmless injection through (see disable_all in chaos.cpp).
  if (!detail::g_enabled.load(std::memory_order_relaxed)) return false;
  return b.engine->fire(b.tid, p);
}

/// fire() + std::this_thread::yield() when it fires.
inline void maybe_yield(Point p) {
  if (fire(p)) std::this_thread::yield();
}

/// True when an engine is installed on this thread (and not globally
/// disabled) — lets code skip setup work for chaos-only paths.
inline bool active() {
  // Relaxed: same advisory kill-switch read as fire().
  return detail::tls_binding.engine != nullptr &&
         detail::g_enabled.load(std::memory_order_relaxed);
}

}  // namespace wasp::chaos

// Injection-point hooks. With WASP_CHAOS=OFF these are compile-time
// constants: the enclosing `if (WASP_CHAOS_FAIL(...))` folds away entirely.
#if defined(WASP_CHAOS_ENABLED) && WASP_CHAOS_ENABLED
#define WASP_CHAOS_FAIL(point) (::wasp::chaos::fire(point))
#define WASP_CHAOS_YIELD(point) (::wasp::chaos::maybe_yield(point))
#else
#define WASP_CHAOS_FAIL(point) (false)
#define WASP_CHAOS_YIELD(point) ((void)0)
#endif
