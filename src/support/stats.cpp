#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace wasp {

double arithmetic_mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  return std::accumulate(xs.begin(), xs.end(), 0.0) / static_cast<double>(xs.size());
}

double geometric_mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double log_sum = 0.0;
  for (double x : xs) log_sum += std::log(x);
  return std::exp(log_sum / static_cast<double>(xs.size()));
}

double median(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> sorted = xs;
  std::sort(sorted.begin(), sorted.end());
  const std::size_t n = sorted.size();
  if (n % 2 == 1) return sorted[n / 2];
  return 0.5 * (sorted[n / 2 - 1] + sorted[n / 2]);
}

double minimum(const std::vector<double>& xs) {
  if (xs.empty()) return std::numeric_limits<double>::infinity();
  return *std::min_element(xs.begin(), xs.end());
}

double stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double mean = arithmetic_mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - mean) * (x - mean);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

}  // namespace wasp
