#include "support/chaos.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace wasp::chaos {

const char* point_name(Point p) {
  switch (p) {
    case Point::kStealFail: return "steal-fail";
    case Point::kDelayCurrPublish: return "delay-curr-publish";
    case Point::kYieldBeforeCas: return "yield-before-cas";
    case Point::kYieldAfterCas: return "yield-after-cas";
    case Point::kChunkAllocFail: return "chunk-alloc-fail";
    case Point::kSpuriousWakeup: return "spurious-wakeup";
    case Point::kRemoteFlushDelay: return "remote-flush-delay";
    case Point::kRemoteDrainDelay: return "remote-drain-delay";
  }
  return "unknown";
}

Policy Policy::off() { return Policy{}; }

Policy Policy::uniform(std::uint16_t r) {
  Policy p;
  p.rate.fill(r);
  p.name = "uniform";
  return p;
}

Policy Policy::steal_storm() {
  Policy p;
  p.name = "steal-storm";
  p.rate[static_cast<std::size_t>(Point::kStealFail)] = 16384;        // 25%
  p.rate[static_cast<std::size_t>(Point::kYieldBeforeCas)] = 4096;    // ~6%
  p.rate[static_cast<std::size_t>(Point::kYieldAfterCas)] = 4096;
  return p;
}

Policy Policy::alloc_pressure() {
  Policy p;
  p.name = "alloc-pressure";
  p.rate[static_cast<std::size_t>(Point::kChunkAllocFail)] = 8192;    // 12.5%
  p.rate[static_cast<std::size_t>(Point::kYieldBeforeCas)] = 1024;
  return p;
}

Policy Policy::termination_fuzz() {
  Policy p;
  p.name = "termination-fuzz";
  p.rate[static_cast<std::size_t>(Point::kDelayCurrPublish)] = 8192;
  p.rate[static_cast<std::size_t>(Point::kSpuriousWakeup)] = 16384;
  p.rate[static_cast<std::size_t>(Point::kStealFail)] = 4096;
  // Remote-queue delays stretch the publish->drain window the partitioned
  // termination extension must cover (in-flight accounting, docs/NUMA.md).
  p.rate[static_cast<std::size_t>(Point::kRemoteFlushDelay)] = 8192;
  p.rate[static_cast<std::size_t>(Point::kRemoteDrainDelay)] = 8192;
  return p;
}

std::vector<Policy> standard_policies() {
  return {Policy::off(), Policy::uniform(2048), Policy::steal_storm(),
          Policy::alloc_pressure(), Policy::termination_fuzz()};
}

Engine::Engine(std::uint64_t seed, const Policy& policy, int max_threads,
               bool record)
    : seed_(seed), policy_(policy), record_(record),
      threads_(static_cast<std::size_t>(std::max(max_threads, 1))) {
  // Each thread's stream depends only on (seed, tid): replaying the same
  // seed on the same logical thread reproduces the same decisions.
  for (std::size_t t = 0; t < threads_.size(); ++t)
    threads_[t].value.rng =
        Xoshiro256(hash_mix(seed ^ (0xC4A05ULL + (t << 17))));
}

bool Engine::fire(int tid, Point p) {
  if (tid < 0 || static_cast<std::size_t>(tid) >= threads_.size())
    throw std::out_of_range("chaos::Engine::fire: tid out of range");
  PerThread& me = threads_[static_cast<std::size_t>(tid)].value;
  const std::uint32_t seq = me.seq++;
  const std::uint16_t r = policy_.rate_of(p);
  if (r == 0) return false;  // disabled points consume no draw, so the
                             // off() policy costs one counter bump only
  const bool fired = (me.rng.next() & 0xFFFFu) < r;
  if (fired && record_) me.events.push_back(Event{tid, seq, p});
  return fired;
}

std::uint64_t Engine::fired_count() const {
  std::uint64_t total = 0;
  for (const auto& t : threads_) total += t.value.events.size();
  return total;
}

std::vector<Event> Engine::trace() const {
  std::vector<Event> all;
  for (const auto& t : threads_)
    all.insert(all.end(), t.value.events.begin(), t.value.events.end());
  std::sort(all.begin(), all.end(), [](const Event& a, const Event& b) {
    return a.tid != b.tid ? a.tid < b.tid : a.seq < b.seq;
  });
  return all;
}

std::string format_trace(const std::vector<Event>& events) {
  std::ostringstream os;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (i > 0) os << ' ';
    os << 't' << events[i].tid << '#' << events[i].seq << ':'
       << point_name(events[i].point);
  }
  return os.str();
}

std::string failure_report(const Engine& engine, const std::string& what) {
  std::ostringstream os;
  os << "chaos failure: " << what << "\n"
     << "  seed=" << engine.seed() << " policy=" << engine.policy().name
     << " threads=" << engine.max_threads() << "\n"
     << "  injected (" << engine.fired_count()
     << " events): " << format_trace(engine.trace()) << "\n"
     << "  reproduce: construct chaos::Engine(" << engine.seed()
     << ", Policy::" << engine.policy().name << ", " << engine.max_threads()
     << ") and re-run the same configuration; per-thread injection"
        " sequences are a pure function of (seed, tid).";
  return os.str();
}

// All g_enabled accesses are relaxed: the kill switch carries no payload —
// a late observation just means one more (harmless) injection fires, and
// fire() itself only reads per-thread state.
void disable_all() {
  detail::g_enabled.store(false, std::memory_order_relaxed);
}

void enable_all() {
  detail::g_enabled.store(true, std::memory_order_relaxed);  // relaxed: see above
}

bool globally_enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);  // see relaxed note above
}

}  // namespace wasp::chaos
