// Deterministic, fast pseudo-random number generation.
//
// SplitMix64 is used to seed and for one-shot hashing; Xoshiro256** is the
// general-purpose generator (fast, passes BigCrush, trivially seedable per
// thread).  Both are implemented from the public-domain reference algorithms.
#pragma once

#include <cstdint>

namespace wasp {

/// SplitMix64: a tiny 64-bit generator, mainly used to expand a single seed
/// into the larger state of Xoshiro256** and for stateless hashing.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Stateless mix of a 64-bit value (one SplitMix64 round). Useful to derive
/// independent per-thread or per-vertex seeds from a base seed.
inline std::uint64_t hash_mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Xoshiro256**: the workhorse uniform generator.
class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    // Lemire's multiply-shift rejection-free mapping; the tiny modulo bias is
    // irrelevant for workload generation.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) {
    return lo + next_below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace wasp
