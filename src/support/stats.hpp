// Small statistics helpers for the benchmark harness (the paper aggregates
// with the geometric mean throughout its evaluation).
#pragma once

#include <vector>

namespace wasp {

/// Arithmetic mean; 0 for an empty input.
double arithmetic_mean(const std::vector<double>& xs);

/// Geometric mean; 0 for an empty input. All inputs must be > 0.
double geometric_mean(const std::vector<double>& xs);

/// Median (average of the two middle elements for even sizes).
double median(const std::vector<double>& xs);

/// Minimum; +inf for an empty input.
double minimum(const std::vector<double>& xs);

/// Sample standard deviation; 0 for fewer than two elements.
double stddev(const std::vector<double>& xs);

}  // namespace wasp
