// Core scalar types shared by the whole library.
//
// Following the paper's methodology section, vertex identifiers and edge
// weights are 32-bit unsigned integers (the Wasp codebase is based on the GAP
// reference implementation).  Distances are 32-bit as well; kInfDist marks an
// unreached vertex.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace wasp {

/// Vertex identifier. Dense, 0-based.
using VertexId = std::uint32_t;

/// Edge weight. Non-negative; SSSP requires w >= 0.
using Weight = std::uint32_t;

/// Tentative shortest-path distance.
using Distance = std::uint32_t;

/// Index into the edge array of a CSR graph (64-bit: |E| may exceed 2^32).
using EdgeIndex = std::uint64_t;

/// Distance of an unreached vertex.
inline constexpr Distance kInfDist = std::numeric_limits<Distance>::max();

/// Invalid / sentinel vertex id.
inline constexpr VertexId kInvalidVertex = std::numeric_limits<VertexId>::max();

/// Overflow-safe relaxation arithmetic: dist + weight, clamped to kInfDist.
/// Plain `a + b` wraps on adversarial inputs (e.g. weights near 2^32, or an
/// unreached vertex's kInfDist leaking into an addition), which would let a
/// "shorter" wrapped distance win a CAS. Saturating at kInfDist keeps such
/// candidates non-improving, since relax requires a strict decrease.
[[nodiscard]] constexpr Distance saturating_add(Distance a, Weight b) {
  const std::uint64_t sum =
      static_cast<std::uint64_t>(a) + static_cast<std::uint64_t>(b);
  return sum >= static_cast<std::uint64_t>(kInfDist)
             ? kInfDist
             : static_cast<Distance>(sum);
}

/// Size of a destructive-interference-free block. Hard-coded to the common
/// x86 value; std::hardware_destructive_interference_size is not ABI-stable.
inline constexpr std::size_t kCacheLineSize = 64;

}  // namespace wasp
