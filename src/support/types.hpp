// Core scalar types shared by the whole library.
//
// Following the paper's methodology section, vertex identifiers and edge
// weights are 32-bit unsigned integers (the Wasp codebase is based on the GAP
// reference implementation).  Distances are 32-bit as well; kInfDist marks an
// unreached vertex.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace wasp {

/// Vertex identifier. Dense, 0-based.
using VertexId = std::uint32_t;

/// Edge weight. Non-negative; SSSP requires w >= 0.
using Weight = std::uint32_t;

/// Tentative shortest-path distance.
using Distance = std::uint32_t;

/// Index into the edge array of a CSR graph (64-bit: |E| may exceed 2^32).
using EdgeIndex = std::uint64_t;

/// Distance of an unreached vertex.
inline constexpr Distance kInfDist = std::numeric_limits<Distance>::max();

/// Invalid / sentinel vertex id.
inline constexpr VertexId kInvalidVertex = std::numeric_limits<VertexId>::max();

/// Size of a destructive-interference-free block. Hard-coded to the common
/// x86 value; std::hardware_destructive_interference_size is not ABI-stable.
inline constexpr std::size_t kCacheLineSize = 64;

}  // namespace wasp
