// Clang Thread Safety Analysis (TSA) annotations and an annotated mutex.
//
// TSA is a static lock-discipline checker built into clang
// (-Wthread-safety): it proves, per translation unit, that every read or
// write of a GUARDED_BY field happens with the named capability held, and
// that REQUIRES contracts on `_locked` helpers are honored at every call
// site. It complements the dynamic verify:: model — verify catches ordering
// bugs the schedule happens to expose; TSA catches *forgotten locks*
// everywhere, including paths no test runs.
//
// libstdc++'s std::mutex is not annotated, so TSA cannot see through
// std::lock_guard/std::unique_lock. We therefore provide:
//   * wasp::Mutex      — std::mutex wrapper declared as a TSA CAPABILITY,
//   * wasp::MutexLock  — scoped guard (SCOPED_CAPABILITY) that also
//                        satisfies BasicLockable, so it works with
//                        std::condition_variable_any::wait(lock).
//
// Under any non-clang compiler (or clang without the attribute) every macro
// expands to nothing and Mutex/MutexLock behave exactly like
// std::mutex/std::unique_lock — zero semantic or performance change.
// The analysis itself is run by the `clang-tsa` CMake preset and the
// tools/lint/tsa_check.py negative test (see docs/CONCURRENCY.md).
#pragma once

#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define WASP_TSA(x) __attribute__((x))
#endif
#endif
#ifndef WASP_TSA
#define WASP_TSA(x)  // expands to nothing outside clang
#endif

#define WASP_CAPABILITY(x) WASP_TSA(capability(x))
#define WASP_SCOPED_CAPABILITY WASP_TSA(scoped_lockable)
#define WASP_GUARDED_BY(x) WASP_TSA(guarded_by(x))
#define WASP_PT_GUARDED_BY(x) WASP_TSA(pt_guarded_by(x))
#define WASP_REQUIRES(...) WASP_TSA(requires_capability(__VA_ARGS__))
#define WASP_ACQUIRE(...) WASP_TSA(acquire_capability(__VA_ARGS__))
#define WASP_RELEASE(...) WASP_TSA(release_capability(__VA_ARGS__))
#define WASP_TRY_ACQUIRE(...) WASP_TSA(try_acquire_capability(__VA_ARGS__))
#define WASP_EXCLUDES(...) WASP_TSA(locks_excluded(__VA_ARGS__))
#define WASP_RETURN_CAPABILITY(x) WASP_TSA(lock_returned(x))
#define WASP_NO_THREAD_SAFETY_ANALYSIS WASP_TSA(no_thread_safety_analysis)

namespace wasp {

/// std::mutex with the TSA capability attribute, so GUARDED_BY(mu_) fields
/// are statically checked under clang.
class WASP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() WASP_ACQUIRE() { mu_.lock(); }
  void unlock() WASP_RELEASE() { mu_.unlock(); }
  bool try_lock() WASP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// Scoped lock for Mutex. Also BasicLockable (lock/unlock), which is what
/// std::condition_variable_any::wait(lock) needs — the cv releases and
/// re-acquires through these, so the capability is held again when wait
/// returns. (TSA does not model the transient release inside wait; the
/// predicate re-check loop around every wait keeps that sound.)
class WASP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) WASP_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() WASP_RELEASE() {
    if (held_) mu_.unlock();
  }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  // BasicLockable, for condition_variable_any. NO_THREAD_SAFETY_ANALYSIS:
  // the cv calls these through a template with no attribute context; from
  // TSA's view the capability never left, which matches how callers reason.
  void lock() WASP_NO_THREAD_SAFETY_ANALYSIS {
    mu_.lock();
    held_ = true;
  }
  void unlock() WASP_NO_THREAD_SAFETY_ANALYSIS {
    held_ = false;
    mu_.unlock();
  }

 private:
  Mutex& mu_;
  bool held_ = true;
};

}  // namespace wasp
