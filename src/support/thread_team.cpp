#include "support/thread_team.hpp"

#include <pthread.h>
#include <sched.h>

#include <atomic>
#include <chrono>
#include <stdexcept>

namespace wasp {

namespace {

void try_pin_to_cpu(std::thread::native_handle_type handle, int cpu) {
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  // Best-effort: pinning can fail in containers with restricted affinity
  // masks; the team works correctly either way.
  (void)pthread_setaffinity_np(handle, sizeof(set), &set);
}

}  // namespace

int hardware_threads() {
  const unsigned hc = std::thread::hardware_concurrency();
  return hc == 0 ? 1 : static_cast<int>(hc);
}

ThreadTeam::ThreadTeam(int num_threads) : num_threads_(num_threads) {
  if (num_threads < 1) throw std::invalid_argument("ThreadTeam: num_threads < 1");
  const int ncpu = hardware_threads();
  cpu_of_.resize(static_cast<std::size_t>(num_threads));
  for (int t = 0; t < num_threads; ++t) cpu_of_[static_cast<std::size_t>(t)] = t % ncpu;

  workers_.reserve(static_cast<std::size_t>(num_threads - 1));
  for (int t = 1; t < num_threads; ++t) {
    workers_.emplace_back([this, t] { worker_loop(t); });
    if (ncpu > 1) try_pin_to_cpu(workers_.back().native_handle(), cpu_of_[static_cast<std::size_t>(t)]);
  }
}

ThreadTeam::~ThreadTeam() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
    ++epoch_;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadTeam::worker_loop(int tid) {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    std::function<void(int)> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_start_.wait(lock, [&] { return shutdown_ || epoch_ != seen_epoch; });
      if (shutdown_) return;
      seen_epoch = epoch_;
      job = job_;  // copy: job_ may be replaced before we finish
    }
    job(tid);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (--pending_ == 0) cv_done_.notify_one();
    }
  }
}

void ThreadTeam::run(const std::function<void(int)>& fn) {
  const auto start = std::chrono::steady_clock::now();
  if (num_threads_ == 1) {
    fn(0);
  } else {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      job_ = fn;
      pending_ = num_threads_ - 1;
      ++epoch_;
    }
    cv_start_.notify_all();
    fn(0);
    std::unique_lock<std::mutex> lock(mutex_);
    cv_done_.wait(lock, [&] { return pending_ == 0; });
  }
  ++jobs_run_;
  job_ns_ += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

void ThreadTeam::parallel_for(
    std::uint64_t begin, std::uint64_t end, std::uint64_t grain,
    const std::function<void(std::uint64_t, std::uint64_t)>& body) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  if (num_threads_ == 1 || end - begin <= grain) {
    body(begin, end);
    return;
  }
  // lint:allow(raw-atomic): pure work-distribution counter on the
  // parallel_for hot path; run()'s launch/join edges order everything it
  // hands out, and instrumenting it would swamp the model with ticket
  // traffic on every loop in every algorithm.
  std::atomic<std::uint64_t> next{begin};
  run([&](int /*tid*/) {
    for (;;) {
      // relaxed: the ticket value itself carries no payload; see allow above.
      const std::uint64_t lo = next.fetch_add(grain, std::memory_order_relaxed);
      if (lo >= end) break;
      body(lo, std::min(lo + grain, end));
    }
  });
}

void parallel_for(int num_threads, std::uint64_t begin, std::uint64_t end,
                  std::uint64_t grain,
                  const std::function<void(std::uint64_t, std::uint64_t)>& body) {
  ThreadTeam team(num_threads);
  team.parallel_for(begin, end, grain, body);
}

}  // namespace wasp
