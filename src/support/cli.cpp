#include "support/cli.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace wasp {

ArgParser::ArgParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

void ArgParser::add_int(const std::string& name, std::int64_t default_value,
                        const std::string& help) {
  options_[name] = Option{Kind::kInt, std::to_string(default_value),
                          std::to_string(default_value), help};
  order_.push_back(name);
}

void ArgParser::add_double(const std::string& name, double default_value,
                           const std::string& help) {
  std::ostringstream os;
  os << default_value;
  options_[name] = Option{Kind::kDouble, os.str(), os.str(), help};
  order_.push_back(name);
}

void ArgParser::add_string(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  options_[name] = Option{Kind::kString, default_value, default_value, help};
  order_.push_back(name);
}

void ArgParser::add_flag(const std::string& name, const std::string& help) {
  options_[name] = Option{Kind::kFlag, "0", "0", help};
  order_.push_back(name);
}

void ArgParser::parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage().c_str(), stdout);
      std::exit(0);
    }
    if (arg.rfind("--", 0) != 0) fail("unexpected positional argument: " + arg);
    arg = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_value = true;
    }
    const auto it = options_.find(arg);
    if (it == options_.end()) fail("unknown option --" + arg);
    Option& opt = it->second;
    if (opt.kind == Kind::kFlag) {
      opt.value = has_value ? value : "1";
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) fail("option --" + arg + " needs a value");
      value = argv[++i];
    }
    opt.value = value;
  }
}

const ArgParser::Option& ArgParser::find(const std::string& name,
                                         Kind kind) const {
  const auto it = options_.find(name);
  if (it == options_.end() || it->second.kind != kind)
    throw std::logic_error("ArgParser: option not registered: " + name);
  return it->second;
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  return std::stoll(find(name, Kind::kInt).value);
}

double ArgParser::get_double(const std::string& name) const {
  return std::stod(find(name, Kind::kDouble).value);
}

const std::string& ArgParser::get_string(const std::string& name) const {
  return find(name, Kind::kString).value;
}

bool ArgParser::get_flag(const std::string& name) const {
  return find(name, Kind::kFlag).value != "0";
}

std::string ArgParser::usage() const {
  std::ostringstream os;
  os << program_ << " — " << description_ << "\n\nOptions:\n";
  for (const auto& name : order_) {
    const Option& opt = options_.at(name);
    os << "  --" << name;
    if (opt.kind != Kind::kFlag) os << " <value>";
    os << "\n      " << opt.help;
    if (opt.kind != Kind::kFlag) os << " (default: " << opt.default_value << ")";
    os << "\n";
  }
  os << "  --help\n      show this message\n";
  return os.str();
}

void ArgParser::fail(const std::string& message) const {
  std::fprintf(stderr, "%s: %s\n\n%s", program_.c_str(), message.c_str(),
               usage().c_str());
  std::exit(2);
}

}  // namespace wasp
