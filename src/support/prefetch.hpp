// Software-prefetch shim for the relaxation hot loops.
//
// SSSP on large graphs is memory-bound: the paper's profile (and the
// stepping-algorithms literature) attributes most wall-clock to cache misses
// on dist[] — the access pattern is data-dependent (edge targets), so the
// hardware prefetcher cannot help. The drain loops in Wasp, delta-stepping,
// and the MultiQueue/SMQ solvers know their next k targets well before
// relaxing them, and issue prefetches that far ahead
// (SsspOptions::prefetch_lookahead; 0 disables, results are identical either
// way).
#pragma once

namespace wasp {

/// Hints the read of the cache line containing `p` into all cache levels.
/// A no-op on compilers without __builtin_prefetch; never faults, so callers
/// may pass addresses they will not actually dereference.
inline void prefetch_read(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

}  // namespace wasp
