// Typed error hierarchy for input validation.
//
// Each class refines the std exception callers already caught before the
// types existed (parse failures were runtime_error, structural misuse was
// invalid_argument / out_of_range), so existing catch sites keep working
// while new callers can discriminate precisely.
#pragma once

#include <stdexcept>
#include <string>

namespace wasp {

/// Malformed, truncated, or oversized graph input (edge list, Matrix
/// Market, binary CSR, GAP .wsg). Messages carry the byte/line position and
/// expected-vs-actual quantities where applicable.
class GraphFormatError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Structurally inconsistent CSR arrays (non-monotone offsets, adjacency
/// size mismatch, destination id out of range).
class InvalidGraphError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// A source vertex outside [0, num_vertices).
class InvalidSourceError : public std::out_of_range {
 public:
  using std::out_of_range::out_of_range;
};

/// An invalid option combination passed to the SSSP front-end.
class InvalidOptionsError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

}  // namespace wasp
