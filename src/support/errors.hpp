// Typed error hierarchy for input validation.
//
// Each class refines the std exception callers already caught before the
// types existed (parse failures were runtime_error, structural misuse was
// invalid_argument / out_of_range), so existing catch sites keep working
// while new callers can discriminate precisely.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace wasp {

// Defined in support/cancel.hpp; forward-declared here so errors.hpp stays
// free of atomics headers (it is included by layers that never link the
// verify shim).
enum class CancelReason : std::uint32_t;

/// Malformed, truncated, or oversized graph input (edge list, Matrix
/// Market, binary CSR, GAP .wsg). Messages carry the byte/line position and
/// expected-vs-actual quantities where applicable.
class GraphFormatError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Structurally inconsistent CSR arrays (non-monotone offsets, adjacency
/// size mismatch, destination id out of range).
class InvalidGraphError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// A source vertex outside [0, num_vertices).
class InvalidSourceError : public std::out_of_range {
 public:
  using std::out_of_range::out_of_range;
};

/// An invalid option combination passed to the SSSP front-end.
class InvalidOptionsError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// A solve unwound early because its CancelToken fired (explicit request,
/// deadline expiry, or watchdog trip). The partial distance state is
/// discarded (epoch-bumped) before this is thrown, so the Solver stays
/// reusable. reason() discriminates why.
class SolveCancelledError : public std::runtime_error {
 public:
  SolveCancelledError(const std::string& msg, CancelReason reason)
      : std::runtime_error(msg), reason_(reason) {}
  [[nodiscard]] CancelReason reason() const noexcept { return reason_; }

 private:
  CancelReason reason_;
};

/// A second solve() was attempted on a Solver whose previous solve is
/// still running. Concurrent solves on one Solver would race on the
/// distance pool, the metrics registry, and the thread team; use one
/// Solver per in-flight query (QueryService does exactly this).
class SolverBusyError : public std::logic_error {
 public:
  using std::logic_error::logic_error;
};

/// The QueryService admission queue is past its high-watermark and the
/// incoming query outranks nothing it could shed. Callers should back off
/// and retry, lower their offered rate, or mark queries allow_stale.
class ServiceOverloadedError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

}  // namespace wasp
