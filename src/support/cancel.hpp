// Cooperative cancellation for in-flight SSSP runs.
//
// A CancelToken is a single atomic word the run's owner (service watchdog,
// bench harness, user code) flips and every worker polls at cheap
// boundaries: chunk drains and steal sweeps in Wasp, round tops in the
// synchronous algorithms, pop loops in the MultiQueue family. Workers never
// block on it — a cancelled run unwinds through the existing termination
// protocol (async workers publish idle priority and return from the team
// lambda; synchronous workers fold the flag into the round's shared `done`
// decision so everyone leaves at the same barrier).
//
// The token also carries an optional deadline. Low-frequency polling sites
// call poll(), which checks the flag and the clock and self-cancels with
// kDeadline when the budget is gone — so a deadline is enforced even when
// no external watchdog ever fires.
//
// Memory ordering: the cancel flag carries no data — the dispatching
// front-end re-checks the token after the team joins (an ordering point)
// and discards partial state by bumping the distance epoch. Polls are
// therefore relaxed loads; the cancel CAS uses acq_rel only so reason()
// observers on other threads see a settled value.
#pragma once

#include <chrono>
#include <cstdint>

#include "verify/checked_atomic.hpp"

namespace wasp {

/// Why a run was cancelled. First request wins; later requests are ignored.
enum class CancelReason : std::uint32_t {
  kNone = 0,      ///< not cancelled
  kUser = 1,      ///< explicit request (service shutdown, client abort)
  kDeadline = 2,  ///< per-query deadline/budget expired
  kWatchdog = 3,  ///< external watchdog tripped (bench harness budget)
};

/// Name of `r` ("none", "user", "deadline", "watchdog").
inline const char* to_string(CancelReason r) {
  switch (r) {
    case CancelReason::kNone: return "none";
    case CancelReason::kUser: return "user";
    case CancelReason::kDeadline: return "deadline";
    case CancelReason::kWatchdog: return "watchdog";
  }
  return "?";
}

/// One-shot cancellation flag + optional deadline for a single run.
///
/// Thread-safety: request_cancel() / cancel_requested() / poll() may be
/// called from any thread. arm() and set_deadline() are owner-side setup —
/// call them before the run starts (the front-end's team fork orders them
/// against worker polls).
class CancelToken {
 public:
  using Clock = std::chrono::steady_clock;

  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation with `reason`. The first caller wins; the call
  /// is idempotent and safe from any thread (including polling workers
  /// self-cancelling on deadline expiry).
  void request_cancel(CancelReason reason) noexcept {
    std::uint32_t expected = 0;
    // acq_rel CAS: settles the reason exactly once; acquire on failure is
    // unnecessary (losers don't read anything) so relaxed there.
    state_.compare_exchange_strong(
        expected, static_cast<std::uint32_t>(reason),
        std::memory_order_acq_rel, std::memory_order_relaxed);
  }

  /// Hot-path poll: has anyone requested cancellation? Relaxed load — the
  /// flag carries no data (see file comment); cost is one cached load.
  [[nodiscard]] bool cancel_requested() const noexcept {
    return state_.load(std::memory_order_relaxed) != 0;
  }

  /// Low-frequency poll: flag check plus deadline check. Self-cancels with
  /// kDeadline once the clock passes the armed deadline. Call at round
  /// tops, steal-sweep entries, and termination scans — anywhere a clock
  /// read is affordable.
  bool poll() noexcept {
    if (cancel_requested()) return true;
    if (deadline_ns_ != 0 && now_ns() >= deadline_ns_) {
      request_cancel(CancelReason::kDeadline);
      return true;
    }
    return false;
  }

  /// The settled reason (kNone while the run is live). Acquire pairs with
  /// the release half of the winning CAS in request_cancel().
  [[nodiscard]] CancelReason reason() const noexcept {
    return static_cast<CancelReason>(state_.load(std::memory_order_acquire));
  }

  /// Arms an absolute deadline; poll() self-cancels past it. Owner-side
  /// setup, before the run starts.
  void set_deadline(Clock::time_point deadline) noexcept {
    deadline_ns_ = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            deadline.time_since_epoch())
            .count());
  }

  /// Convenience: deadline = now + budget. A zero/negative budget arms
  /// nothing (no deadline).
  void set_budget(std::chrono::nanoseconds budget) noexcept {
    if (budget.count() > 0) set_deadline(Clock::now() + budget);
  }

  /// Re-arms the token for a fresh run: clears the flag and the deadline.
  /// Owner-side setup only — never call while a run is polling the token.
  void reset() noexcept {
    deadline_ns_ = 0;
    // relaxed: reset happens-before the next run's fork, which orders it
    // against that run's polls.
    state_.store(0, std::memory_order_relaxed);
  }

 private:
  [[nodiscard]] static std::uint64_t now_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            Clock::now().time_since_epoch())
            .count());
  }

  verify::atomic<std::uint32_t> state_{0};  // CancelReason; 0 = live
  std::uint64_t deadline_ns_ = 0;           // steady-clock ns; 0 = none
};

}  // namespace wasp
