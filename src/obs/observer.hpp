// RunObserver: run-lifecycle hooks for callers that want live progress
// rather than post-hoc snapshots — the bench watchdog uses it to tell a
// slow-but-progressing run from a livelocked one, and the chaos tests use it
// to assert lifecycle invariants under fault injection.
//
// Unlike the TraceRecorder this interface is NOT gated by WASP_OBS: it is
// product behavior (the watchdog depends on it). The algorithms only pay a
// pointer test per hook site when no observer is installed.
//
// Callbacks fire concurrently from any worker thread; implementations must
// be thread-safe and should be cheap (they run inside the measured region).
#pragma once

#include <cstdint>

namespace wasp::obs {

class RunObserver {
 public:
  virtual ~RunObserver() = default;

  /// A synchronous algorithm finished gathering round `round`;
  /// `frontier_size` is the frontier it is about to process. Fired by
  /// participant 0 once per round.
  virtual void on_round(std::uint64_t /*round*/,
                        std::uint64_t /*frontier_size*/) {}

  /// A Wasp worker issued steal() on a victim's deque. Fired per attempt,
  /// so the call count matches the steal_attempts counter.
  virtual void on_steal(int /*thief*/, int /*victim*/, bool /*success*/) {}

  /// Worker `tid` is leaving the run: its termination scan confirmed global
  /// quiescence (async algorithms) or the work loop drained (queue-based
  /// ones). Fired exactly once per worker.
  virtual void on_termination(int /*tid*/) {}

  /// Worker `tid` crossed a processed-vertices milestone (every few
  /// thousand vertices; granularity is an implementation detail).
  virtual void on_progress(int /*tid*/, std::uint64_t /*vertices_processed*/) {}
};

}  // namespace wasp::obs
