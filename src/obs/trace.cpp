#include "obs/trace.hpp"

#if defined(WASP_OBS_ENABLED) && WASP_OBS_ENABLED

#include <map>
#include <ostream>
#include <stdexcept>
#include <string>

namespace wasp::obs {

TraceRecorder::TraceRecorder(int threads, std::size_t capacity_per_thread)
    : capacity_(capacity_per_thread == 0 ? 1 : capacity_per_thread),
      epoch_(std::chrono::steady_clock::now()) {
  if (threads < 1)
    throw std::invalid_argument("TraceRecorder: threads must be >= 1");
  rings_.resize(static_cast<std::size_t>(threads));
  for (auto& r : rings_) r.value.buf.resize(capacity_);
}

std::uint64_t TraceRecorder::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
}

void TraceRecorder::record(int tid, EventKind kind, EventPhase phase,
                           std::uint64_t arg) {
  Ring& r = rings_[static_cast<std::size_t>(tid)].value;
  r.buf[r.head % capacity_] = TraceEvent{now_ns(), arg, kind, phase};
  ++r.head;
}

std::vector<TraceEvent> TraceRecorder::events(int tid) const {
  const Ring& r = rings_[static_cast<std::size_t>(tid)].value;
  std::vector<TraceEvent> out;
  const std::uint64_t n = r.head < capacity_ ? r.head : capacity_;
  out.reserve(static_cast<std::size_t>(n));
  const std::uint64_t first = r.head - n;
  for (std::uint64_t i = 0; i < n; ++i)
    out.push_back(r.buf[(first + i) % capacity_]);
  return out;
}

std::uint64_t TraceRecorder::dropped() const {
  std::uint64_t total = 0;
  for (const auto& r : rings_)
    if (r.value.head > capacity_) total += r.value.head - capacity_;
  return total;
}

void TraceRecorder::clear() {
  for (auto& r : rings_) r.value.head = 0;
  epoch_ = std::chrono::steady_clock::now();
}

namespace {

void emit_event(std::ostream& os, bool& first, const char* name, char ph,
                std::uint64_t ts_ns, int tid, std::uint64_t arg) {
  if (!first) os << ",\n";
  first = false;
  // Chrome trace timestamps are microseconds; keep ns resolution as a
  // fractional part.
  const std::uint64_t us = ts_ns / 1000;
  const std::uint64_t frac = ts_ns % 1000;
  os << "  {\"name\":\"" << name << "\",\"ph\":\"" << ph << "\",\"ts\":" << us
     << '.' << static_cast<char>('0' + frac / 100)
     << static_cast<char>('0' + (frac / 10) % 10)
     << static_cast<char>('0' + frac % 10) << ",\"pid\":0,\"tid\":" << tid
     << ",\"args\":{\"arg\":" << arg << '}';
  if (ph == 'i') os << ",\"s\":\"t\"";
  os << '}';
}

}  // namespace

void TraceRecorder::write_chrome_trace(std::ostream& os) const {
  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  for (int tid = 0; tid < threads(); ++tid) {
    const std::vector<TraceEvent> evs = events(tid);
    std::vector<EventKind> open;  // span stack for re-balancing
    std::uint64_t last_ts = 0;
    for (const TraceEvent& e : evs) {
      last_ts = e.ts_ns;
      switch (e.phase) {
        case EventPhase::kBegin:
          open.push_back(e.kind);
          emit_event(os, first, event_name(e.kind), 'B', e.ts_ns, tid, e.arg);
          break;
        case EventPhase::kEnd:
          // An end whose begin was overwritten by the ring is dropped.
          if (open.empty()) break;
          emit_event(os, first, event_name(open.back()), 'E', e.ts_ns, tid,
                     e.arg);
          open.pop_back();
          break;
        case EventPhase::kInstant:
          emit_event(os, first, event_name(e.kind), 'i', e.ts_ns, tid, e.arg);
          break;
      }
    }
    // Close spans still open at the end of the ring so B/E stay balanced.
    while (!open.empty()) {
      emit_event(os, first, event_name(open.back()), 'E', last_ts, tid, 0);
      open.pop_back();
    }
  }
  os << "\n]}\n";
}

void TraceRecorder::write_collapsed(std::ostream& os) const {
  // stack string -> inclusive nanoseconds.
  std::map<std::string, std::uint64_t> agg;
  for (int tid = 0; tid < threads(); ++tid) {
    const std::vector<TraceEvent> evs = events(tid);
    struct Open {
      EventKind kind;
      std::uint64_t ts_ns;
    };
    std::vector<Open> open;
    std::uint64_t last_ts = 0;
    const std::string root = "thread" + std::to_string(tid);
    const auto close_top = [&](std::uint64_t end_ts) {
      std::string stack = root;
      for (const Open& o : open) {
        stack += ';';
        stack += event_name(o.kind);
      }
      const std::uint64_t begin_ts = open.back().ts_ns;
      agg[stack] += end_ts >= begin_ts ? end_ts - begin_ts : 0;
      open.pop_back();
    };
    for (const TraceEvent& e : evs) {
      last_ts = e.ts_ns;
      if (e.phase == EventPhase::kBegin) {
        open.push_back(Open{e.kind, e.ts_ns});
      } else if (e.phase == EventPhase::kEnd && !open.empty()) {
        close_top(e.ts_ns);
      }
    }
    while (!open.empty()) close_top(last_ts);
  }
  for (const auto& [stack, ns] : agg) os << stack << ' ' << ns << '\n';
}

}  // namespace wasp::obs

#endif  // WASP_OBS_ENABLED
