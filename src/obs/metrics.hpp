// MetricsRegistry: the single instrumentation substrate every SSSP
// implementation reports through (replacing the per-algorithm ThreadCounters
// bags). One cache-padded MetricsShard per worker holds named counters,
// gauges, and log2-bucketed histograms; a run ends with snapshot(), from
// which SsspStats is computed as a compatibility view (stats_from_snapshot in
// sssp/common.hpp) and from which the bench figures read their breakdown
// columns.
//
// The registry is always compiled (it *is* the product's stats path);
// WASP_OBS gates only the TraceRecorder (trace.hpp). Shard mutators are
// annotated with the WASP_VERIFY plain-access race checker so a verify-build
// harness can prove the sharding discipline: each shard is written by exactly
// one thread, and snapshot() must be ordered after the workers by
// happens-before.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "support/padded.hpp"
#include "verify/checked_atomic.hpp"

namespace wasp::obs {

enum class CounterId : std::uint8_t {
  kRelaxations,        ///< edge relaxations attempted
  kUpdates,            ///< successful distance improvements
  kSteals,             ///< chunks successfully stolen
  kStealAttempts,      ///< steal() calls on victims' deques
  kStaleSkips,         ///< scheduled entries skipped as stale
  kVerticesProcessed,  ///< vertices (or chunk entries) settled/processed
  kRounds,             ///< synchronous steps (0 for async algorithms)
  kBucketAdvances,     ///< Wasp current-bucket advances
  kTerminationScans,   ///< Wasp idle/termination scan iterations
  kChunkAllocs,        ///< chunks taken from per-thread pools
  kBarrierNs,          ///< total barrier wait across threads
  kQueueOpNs,          ///< total locked MultiQueue operation time
  kStealNs,            ///< total time inside victim sweeps
  kIdleNs,             ///< total idle/termination-scan time
  kEpochSweeps,        ///< O(V) distance-array initializations this run
  kPrefetchIssued,     ///< software prefetches issued in relaxation loops
  // --- QueryService accounting (cumulative over the service lifetime; a
  // --- per-run solver registry never touches these) -----------------------
  kQueriesSubmitted,       ///< submit() calls accepted into the queue
  kQueriesServed,          ///< queries completed with fresh distances
  kQueriesServedStale,     ///< queries degraded to a cached same-source result
  kQueriesCancelled,       ///< queries cancelled by explicit request
  kQueriesDeadlineExpired, ///< queries cancelled/expired by their deadline
  kQueriesShed,            ///< queued queries evicted by admission control
  kQueriesRejected,        ///< submit() calls refused (ServiceOverloadedError)
  kQueriesCoalesced,       ///< submits merged into an queued same-source entry
  kQueriesFailed,          ///< queries exhausted their retry budget
  kQueryRetries,           ///< solve attempts beyond each query's first
  kSolverRebuilds,         ///< quarantined Solvers rebuilt off the hot path
  kWatchdogCancels,        ///< overdue runs cancelled by the service watchdog
  // --- incremental repair (graph/delta.hpp + sssp/incremental.hpp) ---------
  kRepairBatches,      ///< delta batches repaired incrementally (not full)
  kRepairConeVertices, ///< vertices invalidated into the increase cone
  kRepairSeedVertices, ///< warm seeds handed to wasp_sssp_seeded
  kGraphCompactions,   ///< VersionedGraph overlay compactions observed
  // --- partitioned execution (graph/partition.hpp + remote_queue.hpp).
  // --- A remote relaxation is counted once, at the sender, as BOTH
  // --- kRelaxations and kRemoteRelaxations; the receiver's application of
  // --- the record counts only kUpdates on improvement, so
  // --- remote_relaxations / relaxations is a true share in [0, 1]. --------
  kRemoteRelaxations,  ///< relaxations routed through a remote queue
  kRemoteBatches,      ///< remote batches published (flushes)
  kLocalSteals,        ///< successful steals from a same-NUMA-node victim
  kRemoteSteals,       ///< successful steals from a cross-node victim
};
inline constexpr std::size_t kNumCounters = 36;

enum class GaugeId : std::uint8_t {
  kMaxFrontier,  ///< largest synchronous-round frontier seen
  kTeamJobs,     ///< ThreadTeam jobs launched over the team's lifetime
  kTeamJobNs,    ///< cumulative wall time inside ThreadTeam::run
};
inline constexpr std::size_t kNumGauges = 3;

enum class HistId : std::uint8_t {
  kStealSweepNs,      ///< latency of one Wasp victim sweep
  kIdleScanNs,        ///< latency of one termination-scan iteration
  kRoundFrontier,     ///< frontier size per synchronous round
  kRemoteQueueDepth,  ///< records drained per remote-queue grab
};
inline constexpr std::size_t kNumHistograms = 4;
inline constexpr std::size_t kHistBuckets = 64;

const char* counter_name(CounterId id);
const char* gauge_name(GaugeId id);
const char* histogram_name(HistId id);

/// log2 bucketing: value 0 -> bucket 0, otherwise floor(log2(v)) + 1
/// (bucket b covers [2^(b-1), 2^b)), saturating at kHistBuckets - 1.
constexpr std::size_t hist_bucket(std::uint64_t v) {
  std::size_t b = 0;
  while (v != 0 && b + 1 < kHistBuckets) {
    ++b;
    v >>= 1;
  }
  return b;
}

/// Smallest value that lands in `bucket` (inclusive lower bound).
constexpr std::uint64_t hist_bucket_floor(std::size_t bucket) {
  return bucket == 0 ? 0 : std::uint64_t{1} << (bucket - 1);
}

/// One thread's slice of the registry: plain (non-atomic) slots, written
/// only by the owning thread. The verify annotations make that discipline
/// checkable; in normal builds inc() compiles to a single array add, the
/// same cost as the ThreadCounters fields it replaces.
class MetricsShard {
 public:
  void inc(CounterId id, std::uint64_t n = 1) {
    std::uint64_t& slot = counters_[static_cast<std::size_t>(id)];
    WASP_VERIFY_WR(&slot);
    slot += n;
  }

  [[nodiscard]] std::uint64_t counter(CounterId id) const {
    const std::uint64_t& slot = counters_[static_cast<std::size_t>(id)];
    WASP_VERIFY_RD(&slot);
    return slot;
  }

  void set_gauge(GaugeId id, std::uint64_t v) {
    std::uint64_t& slot = gauges_[static_cast<std::size_t>(id)];
    WASP_VERIFY_WR(&slot);
    slot = v;
  }

  [[nodiscard]] std::uint64_t gauge(GaugeId id) const {
    const std::uint64_t& slot = gauges_[static_cast<std::size_t>(id)];
    WASP_VERIFY_RD(&slot);
    return slot;
  }

  void observe(HistId id, std::uint64_t value) {
    std::uint64_t& slot =
        histograms_[static_cast<std::size_t>(id)][hist_bucket(value)];
    WASP_VERIFY_WR(&slot);
    ++slot;
  }

  [[nodiscard]] std::uint64_t hist_count(HistId id, std::size_t bucket) const {
    const std::uint64_t& slot =
        histograms_[static_cast<std::size_t>(id)][bucket];
    WASP_VERIFY_RD(&slot);
    return slot;
  }

  void reset();

 private:
  std::array<std::uint64_t, kNumCounters> counters_{};
  std::array<std::uint64_t, kNumGauges> gauges_{};
  std::array<std::array<std::uint64_t, kHistBuckets>, kNumHistograms>
      histograms_{};
};

/// Immutable copy of a registry's state at one point in time. Cheap to copy
/// around (a few KB); SsspResult carries one per run.
struct MetricsSnapshot {
  int threads = 0;
  double seconds = 0.0;  ///< parallel-phase wall time of the run
  std::array<std::uint64_t, kNumCounters> totals{};
  std::array<std::uint64_t, kNumGauges> gauges{};  ///< max across shards
  std::array<std::array<std::uint64_t, kHistBuckets>, kNumHistograms>
      histograms{};  ///< merged across shards
  std::vector<std::array<std::uint64_t, kNumCounters>> per_thread;

  [[nodiscard]] std::uint64_t counter(CounterId id) const {
    return totals[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] std::uint64_t gauge(GaugeId id) const {
    return gauges[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] std::uint64_t hist_count(HistId id, std::size_t bucket) const {
    return histograms[static_cast<std::size_t>(id)][bucket];
  }

  /// Full export: counters (total + per thread), gauges, histogram buckets.
  void write_json(std::ostream& os) const;
  /// Tabular export: "metric,thread,value" rows, per-thread plus "total".
  void write_csv(std::ostream& os) const;
};

/// Per-thread-sharded registry. shard(tid) is wait-free for the owner;
/// snapshot()/reset() must be ordered against worker writes by the caller
/// (in practice: called outside team.run()).
class MetricsRegistry {
 public:
  explicit MetricsRegistry(int threads);

  [[nodiscard]] int threads() const { return static_cast<int>(shards_.size()); }

  [[nodiscard]] MetricsShard& shard(int tid) {
    return shards_[static_cast<std::size_t>(tid)].value;
  }
  [[nodiscard]] const MetricsShard& shard(int tid) const {
    return shards_[static_cast<std::size_t>(tid)].value;
  }

  void set_elapsed_seconds(double s) { seconds_ = s; }
  [[nodiscard]] double elapsed_seconds() const { return seconds_; }

  /// Zeroes every shard (a run's entry point calls this so a registry can be
  /// reused across Solver::solve calls).
  void reset();

  [[nodiscard]] MetricsSnapshot snapshot() const;

 private:
  std::vector<CachePadded<MetricsShard>> shards_;
  double seconds_ = 0.0;
};

}  // namespace wasp::obs
