// Event taxonomy for the run-lifecycle trace recorder (docs/OBSERVABILITY.md).
//
// Kinds split into spans (paired begin/end, nest per thread) and instants
// (point events). The names below are what appears in the exported Chrome
// trace_event JSON and in collapsed flamegraph stacks, so they are part of
// the tooling contract checked by tools/trace_check.py.
#pragma once

#include <cstddef>
#include <cstdint>

namespace wasp::obs {

enum class EventKind : std::uint8_t {
  // Spans.
  kStealSweep,       ///< one Wasp victim sweep (Algorithm 2 outer loop)
  kTerminationScan,  ///< one Wasp idle/termination scan
  kRound,            ///< one synchronous round (bucket/step algorithms)
  // Instants.
  kStealAttempt,     ///< steal() issued on a victim deque (arg = victim tid)
  kStealSuccess,     ///< steal() returned a chunk (arg = victim tid)
  kBucketAdvance,    ///< Wasp worker advanced its current bucket (arg = prio)
  kRoundTransition,  ///< synchronous algorithm moved to a new round/bucket
  kChunkAlloc,       ///< chunk taken from the per-thread pool
};

inline constexpr std::size_t kNumEventKinds = 8;

constexpr const char* event_name(EventKind k) {
  switch (k) {
    case EventKind::kStealSweep: return "steal_sweep";
    case EventKind::kTerminationScan: return "termination_scan";
    case EventKind::kRound: return "round";
    case EventKind::kStealAttempt: return "steal_attempt";
    case EventKind::kStealSuccess: return "steal_success";
    case EventKind::kBucketAdvance: return "bucket_advance";
    case EventKind::kRoundTransition: return "round_transition";
    case EventKind::kChunkAlloc: return "chunk_alloc";
  }
  return "?";
}

/// Whether the kind opens/closes a span (vs. a point event).
constexpr bool is_span(EventKind k) {
  return k == EventKind::kStealSweep || k == EventKind::kTerminationScan ||
         k == EventKind::kRound;
}

enum class EventPhase : std::uint8_t { kBegin, kEnd, kInstant };

}  // namespace wasp::obs
