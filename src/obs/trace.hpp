// TraceRecorder: per-thread fixed-capacity event rings for run-lifecycle
// tracing (steal sweeps, termination scans, bucket/round transitions, chunk
// allocation). Exports Chrome trace_event JSON (load in Perfetto /
// chrome://tracing) and a collapsed-stack format for flamegraph tooling.
//
// Compile-time gating: with WASP_OBS=OFF (no WASP_OBS_ENABLED definition)
// this header provides an API-identical inline no-op stub and trace.cpp is
// not compiled, so OFF builds contain no recorder symbols and the
// trace_begin/trace_end/trace_instant helpers below compile to nothing —
// the zero-cost claim the release-noobs CI job guards with nm.
//
// Threading: record() is wait-free and touches only the calling thread's
// ring (rings are CachePadded). Export/clear are not synchronized against
// concurrent recording; call them outside the parallel phase.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <ostream>
#include <vector>

#include "obs/events.hpp"
#include "support/padded.hpp"

namespace wasp::obs {

struct TraceEvent {
  std::uint64_t ts_ns = 0;  ///< nanoseconds since the recorder's epoch
  std::uint64_t arg = 0;    ///< kind-specific payload (victim tid, prio, ...)
  EventKind kind{};
  EventPhase phase{};
};

#if defined(WASP_OBS_ENABLED) && WASP_OBS_ENABLED

class TraceRecorder {
 public:
  /// `capacity_per_thread` events are retained per ring; older events are
  /// overwritten (dropped() reports how many).
  explicit TraceRecorder(int threads,
                         std::size_t capacity_per_thread = std::size_t{1} << 14);

  static constexpr bool kEnabled = true;

  [[nodiscard]] int threads() const { return static_cast<int>(rings_.size()); }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  void record(int tid, EventKind kind, EventPhase phase, std::uint64_t arg = 0);

  void begin(int tid, EventKind kind, std::uint64_t arg = 0) {
    record(tid, kind, EventPhase::kBegin, arg);
  }
  void end(int tid, EventKind kind, std::uint64_t arg = 0) {
    record(tid, kind, EventPhase::kEnd, arg);
  }
  void instant(int tid, EventKind kind, std::uint64_t arg = 0) {
    record(tid, kind, EventPhase::kInstant, arg);
  }

  /// Events retained for `tid`, oldest first.
  [[nodiscard]] std::vector<TraceEvent> events(int tid) const;
  /// Events overwritten across all rings since construction/clear().
  [[nodiscard]] std::uint64_t dropped() const;

  void clear();

  /// Chrome trace_event JSON ({"traceEvents": [...]}). Span begin/ends are
  /// re-balanced per thread: orphan ends (their begin was overwritten) are
  /// dropped and unclosed begins are closed at the thread's last timestamp,
  /// so the output always loads cleanly.
  void write_chrome_trace(std::ostream& os) const;

  /// Collapsed stacks ("thread0;steal_sweep 12345" = inclusive ns), one
  /// line per unique span stack, for flamegraph.pl-style tooling.
  void write_collapsed(std::ostream& os) const;

 private:
  struct Ring {
    std::vector<TraceEvent> buf;
    std::uint64_t head = 0;  ///< total events recorded (not wrapped)
  };

  [[nodiscard]] std::uint64_t now_ns() const;

  std::size_t capacity_;
  std::vector<CachePadded<Ring>> rings_;
  std::chrono::steady_clock::time_point epoch_;
};

#else  // WASP_OBS disabled: API-identical zero-cost stub.

class TraceRecorder {
 public:
  explicit TraceRecorder(int = 1, std::size_t = 0) {}

  static constexpr bool kEnabled = false;

  [[nodiscard]] int threads() const { return 0; }
  [[nodiscard]] std::size_t capacity() const { return 0; }

  void record(int, EventKind, EventPhase, std::uint64_t = 0) {}
  void begin(int, EventKind, std::uint64_t = 0) {}
  void end(int, EventKind, std::uint64_t = 0) {}
  void instant(int, EventKind, std::uint64_t = 0) {}

  [[nodiscard]] std::vector<TraceEvent> events(int) const { return {}; }
  [[nodiscard]] std::uint64_t dropped() const { return 0; }
  void clear() {}

  void write_chrome_trace(std::ostream& os) const {
    os << "{\"traceEvents\":[]}\n";
  }
  void write_collapsed(std::ostream&) const {}
};

#endif  // WASP_OBS_ENABLED

/// Null-safe call-site helpers. Instrumented code holds a TraceRecorder*
/// (null = not tracing); these compile to nothing when WASP_OBS=OFF, so the
/// hot paths carry no test-and-call in the zero-cost configuration.
inline void trace_begin(TraceRecorder* t, int tid, EventKind kind,
                        std::uint64_t arg = 0) {
#if defined(WASP_OBS_ENABLED) && WASP_OBS_ENABLED
  if (t != nullptr) t->begin(tid, kind, arg);
#else
  (void)t; (void)tid; (void)kind; (void)arg;
#endif
}

inline void trace_end(TraceRecorder* t, int tid, EventKind kind,
                      std::uint64_t arg = 0) {
#if defined(WASP_OBS_ENABLED) && WASP_OBS_ENABLED
  if (t != nullptr) t->end(tid, kind, arg);
#else
  (void)t; (void)tid; (void)kind; (void)arg;
#endif
}

inline void trace_instant(TraceRecorder* t, int tid, EventKind kind,
                          std::uint64_t arg = 0) {
#if defined(WASP_OBS_ENABLED) && WASP_OBS_ENABLED
  if (t != nullptr) t->instant(tid, kind, arg);
#else
  (void)t; (void)tid; (void)kind; (void)arg;
#endif
}

}  // namespace wasp::obs
