#include "obs/metrics.hpp"

#include <ostream>
#include <stdexcept>

namespace wasp::obs {

const char* counter_name(CounterId id) {
  switch (id) {
    case CounterId::kRelaxations: return "relaxations";
    case CounterId::kUpdates: return "updates";
    case CounterId::kSteals: return "steals";
    case CounterId::kStealAttempts: return "steal_attempts";
    case CounterId::kStaleSkips: return "stale_skips";
    case CounterId::kVerticesProcessed: return "vertices_processed";
    case CounterId::kRounds: return "rounds";
    case CounterId::kBucketAdvances: return "bucket_advances";
    case CounterId::kTerminationScans: return "termination_scans";
    case CounterId::kChunkAllocs: return "chunk_allocs";
    case CounterId::kBarrierNs: return "barrier_ns";
    case CounterId::kQueueOpNs: return "queue_op_ns";
    case CounterId::kStealNs: return "steal_ns";
    case CounterId::kIdleNs: return "idle_ns";
    case CounterId::kEpochSweeps: return "epoch_sweeps";
    case CounterId::kPrefetchIssued: return "prefetch_issued";
    case CounterId::kQueriesSubmitted: return "queries_submitted";
    case CounterId::kQueriesServed: return "queries_served";
    case CounterId::kQueriesServedStale: return "queries_served_stale";
    case CounterId::kQueriesCancelled: return "queries_cancelled";
    case CounterId::kQueriesDeadlineExpired: return "queries_deadline_expired";
    case CounterId::kQueriesShed: return "queries_shed";
    case CounterId::kQueriesRejected: return "queries_rejected";
    case CounterId::kQueriesCoalesced: return "queries_coalesced";
    case CounterId::kQueriesFailed: return "queries_failed";
    case CounterId::kQueryRetries: return "query_retries";
    case CounterId::kSolverRebuilds: return "solver_rebuilds";
    case CounterId::kWatchdogCancels: return "watchdog_cancels";
    case CounterId::kRepairBatches: return "repair_batches";
    case CounterId::kRepairConeVertices: return "repair_cone_vertices";
    case CounterId::kRepairSeedVertices: return "repair_seed_vertices";
    case CounterId::kGraphCompactions: return "graph_compactions";
    case CounterId::kRemoteRelaxations: return "remote_relaxations";
    case CounterId::kRemoteBatches: return "remote_batches";
    case CounterId::kLocalSteals: return "local_steals";
    case CounterId::kRemoteSteals: return "remote_steals";
  }
  return "?";
}

const char* gauge_name(GaugeId id) {
  switch (id) {
    case GaugeId::kMaxFrontier: return "max_frontier";
    case GaugeId::kTeamJobs: return "team_jobs";
    case GaugeId::kTeamJobNs: return "team_job_ns";
  }
  return "?";
}

const char* histogram_name(HistId id) {
  switch (id) {
    case HistId::kStealSweepNs: return "steal_sweep_ns";
    case HistId::kIdleScanNs: return "idle_scan_ns";
    case HistId::kRoundFrontier: return "round_frontier";
    case HistId::kRemoteQueueDepth: return "remote_queue_depth";
  }
  return "?";
}

void MetricsShard::reset() {
  for (std::uint64_t& c : counters_) {
    WASP_VERIFY_WR(&c);
    c = 0;
  }
  for (std::uint64_t& g : gauges_) {
    WASP_VERIFY_WR(&g);
    g = 0;
  }
  for (auto& hist : histograms_) {
    for (std::uint64_t& b : hist) {
      WASP_VERIFY_WR(&b);
      b = 0;
    }
  }
}

MetricsRegistry::MetricsRegistry(int threads) {
  if (threads < 1)
    throw std::invalid_argument("MetricsRegistry: threads must be >= 1");
  shards_.resize(static_cast<std::size_t>(threads));
}

void MetricsRegistry::reset() {
  for (auto& s : shards_) s.value.reset();
  seconds_ = 0.0;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.threads = threads();
  snap.seconds = seconds_;
  snap.per_thread.resize(shards_.size());
  for (std::size_t t = 0; t < shards_.size(); ++t) {
    const MetricsShard& s = shards_[t].value;
    for (std::size_t c = 0; c < kNumCounters; ++c) {
      const std::uint64_t v = s.counter(static_cast<CounterId>(c));
      snap.per_thread[t][c] = v;
      snap.totals[c] += v;
    }
    for (std::size_t g = 0; g < kNumGauges; ++g) {
      const std::uint64_t v = s.gauge(static_cast<GaugeId>(g));
      if (v > snap.gauges[g]) snap.gauges[g] = v;
    }
    for (std::size_t h = 0; h < kNumHistograms; ++h)
      for (std::size_t b = 0; b < kHistBuckets; ++b)
        snap.histograms[h][b] += s.hist_count(static_cast<HistId>(h), b);
  }
  return snap;
}

void MetricsSnapshot::write_json(std::ostream& os) const {
  os << "{\"threads\":" << threads << ",\"seconds\":" << seconds
     << ",\"counters\":{";
  for (std::size_t c = 0; c < kNumCounters; ++c) {
    if (c != 0) os << ',';
    os << '"' << counter_name(static_cast<CounterId>(c)) << "\":" << totals[c];
  }
  os << "},\"per_thread\":[";
  for (std::size_t t = 0; t < per_thread.size(); ++t) {
    if (t != 0) os << ',';
    os << '{';
    for (std::size_t c = 0; c < kNumCounters; ++c) {
      if (c != 0) os << ',';
      os << '"' << counter_name(static_cast<CounterId>(c))
         << "\":" << per_thread[t][c];
    }
    os << '}';
  }
  os << "],\"gauges\":{";
  for (std::size_t g = 0; g < kNumGauges; ++g) {
    if (g != 0) os << ',';
    os << '"' << gauge_name(static_cast<GaugeId>(g)) << "\":" << gauges[g];
  }
  os << "},\"histograms\":{";
  for (std::size_t h = 0; h < kNumHistograms; ++h) {
    if (h != 0) os << ',';
    os << '"' << histogram_name(static_cast<HistId>(h)) << "\":[";
    // Trailing zero buckets are elided; bucket b covers
    // [hist_bucket_floor(b), hist_bucket_floor(b + 1)).
    std::size_t last = kHistBuckets;
    while (last > 0 && histograms[h][last - 1] == 0) --last;
    for (std::size_t b = 0; b < last; ++b) {
      if (b != 0) os << ',';
      os << histograms[h][b];
    }
    os << ']';
  }
  os << "}}";
}

void MetricsSnapshot::write_csv(std::ostream& os) const {
  os << "metric,thread,value\n";
  for (std::size_t c = 0; c < kNumCounters; ++c) {
    const char* name = counter_name(static_cast<CounterId>(c));
    for (std::size_t t = 0; t < per_thread.size(); ++t)
      os << name << ',' << t << ',' << per_thread[t][c] << '\n';
    os << name << ",total," << totals[c] << '\n';
  }
  for (std::size_t g = 0; g < kNumGauges; ++g)
    os << gauge_name(static_cast<GaugeId>(g)) << ",total," << gauges[g] << '\n';
}

}  // namespace wasp::obs
