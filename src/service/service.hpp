// wasp::service::QueryService — the resilient concurrent-query layer over a
// Solver fleet (ROADMAP item 1's "millions of users" front door).
//
// A QueryService owns a fixed pool of Solvers (one worker thread + team
// each) behind a bounded admission queue, and gives every query a
// robustness contract the bare Solver cannot:
//
//  * Deadlines — a per-query budget is armed on the query's CancelToken
//    (the polling sites in every parallel algorithm self-cancel past it)
//    AND enforced by a service watchdog thread that cancels overdue runs
//    and expires overdue queued entries, so a query never waits on a
//    budget it has already blown.
//  * Cooperative cancellation — an overdue or shed query unwinds through
//    the algorithms' own termination protocols within one polling
//    interval; the partial distance state is epoch-bumped away and the
//    Solver stays reusable.
//  * Admission control — past the queue high-watermark a new query either
//    evicts the lowest-priority queued entry (if it outranks one) or is
//    refused with ServiceOverloadedError. Same-source submits coalesce
//    onto one queued entry and share its future.
//  * Graceful degradation — a shed or queue-expired query marked
//    allow_stale is answered from a small same-source cache of previously
//    served distances (Outcome::kServedStale) instead of failing dry.
//  * Fault containment — a Solver whose run was deadline-cancelled or
//    threw a transient error is quarantined and rebuilt off the hot path;
//    transient failures retry with seeded, jittered exponential backoff,
//    capped per query.
//  * Live graph updates — update() applies a GraphDelta batch to a
//    VersionedGraph through an exclusive gate (new pickups pause, running
//    queries drain first, so no run ever observes a half-applied batch),
//    then repairs the cached stale answers to the new version instead of
//    dropping them (sssp/incremental.hpp). QueryRequest::min_graph_version
//    lets a client demand at-least-this-fresh answers.
//
// Accounting flows through an obs::MetricsRegistry (the kQueries* /
// kSolverRebuilds / kWatchdogCancels counters) plus a per-tenant table;
// bench/qps_service drives the whole contract under a seeded open-loop
// arrival stream. Semantics are documented in docs/ROBUSTNESS.md.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "graph/delta.hpp"
#include "graph/graph.hpp"
#include "obs/metrics.hpp"
#include "sssp/common.hpp"
#include "sssp/incremental.hpp"
#include "sssp/solver.hpp"
#include "support/cancel.hpp"
#include "support/random.hpp"
#include "support/thread_safety.hpp"

namespace wasp::service {

/// The service's wall clock (the one CancelToken deadlines are armed on).
using Clock = CancelToken::Clock;

/// How a query left the service. kServed / kServedStale carry distances;
/// the rest are terminal without a (fresh) answer.
enum class Outcome : std::uint8_t {
  kServed,           ///< solved within budget; dist is fresh
  kServedStale,      ///< degraded to a cached same-source result
  kCancelled,        ///< explicit cancel (service shutdown / user request)
  kDeadlineExpired,  ///< budget blown — queued too long or cancelled mid-run
  kShed,             ///< evicted from the queue by a higher-priority query
  kFailed,           ///< retry budget exhausted (or permanent input error)
};

/// Name of `o` ("served", "served_stale", "cancelled", ...).
const char* to_string(Outcome o);

/// One query, fully described. Designated-initializer friendly:
///
///   svc.submit(g, {.source = s, .priority = 2,
///                  .budget = std::chrono::milliseconds(5)});
///
/// validate() runs upfront in submit() (like SsspOptions::validate()), so a
/// malformed request throws there instead of resolving its future kFailed.
struct QueryRequest {
  VertexId source = 0;  ///< must be < g.num_vertices() (checked in submit)
  int priority = 0;     ///< higher wins queue order; lowest sheds first
  /// Absolute wall-clock deadline; Clock::time_point::max() = unbounded.
  /// The effective deadline is the tighter of this and submit-time + budget.
  Clock::time_point deadline = Clock::time_point::max();
  /// Wall-clock budget from submit() (queueing included); <= 0 uses the
  /// service default_budget (which may itself be "none").
  std::chrono::nanoseconds budget{0};
  std::string tenant = "default";  ///< accounting + shedding identity
  /// Smallest graph version this query may be answered against. Only
  /// meaningful for the VersionedGraph overloads (plain Graphs are version
  /// 0): submit() throws InvalidOptionsError when the graph is older, and a
  /// stale-cache hit is only served if it was computed at >= this version.
  std::uint64_t min_graph_version = 0;
  /// Permit a cached same-source answer when shed or expired in queue.
  bool allow_stale = false;

  /// Rejects a negative budget or an empty tenant with InvalidOptionsError.
  /// (source range and min_graph_version need the graph; submit checks
  /// them.)
  void validate() const;
};

/// Deprecated per-query knobs for the positional submit() shim below; new
/// code should pass a QueryRequest.
struct QueryOptions {
  std::string tenant = "default";  ///< accounting + shedding identity
  int priority = 0;                ///< higher wins queue order; lowest sheds
  /// Wall-clock budget from submit() (queueing included); <= 0 uses the
  /// service default_budget (which may itself be "none").
  std::chrono::nanoseconds budget{0};
  /// Permit a cached same-source answer when shed or expired in queue.
  bool allow_stale = false;
};

/// What a query's future resolves to. Never an exception: every accepted
/// query resolves with a typed Outcome (only submit() itself throws).
struct QueryResult {
  Outcome outcome = Outcome::kFailed;
  std::vector<Distance> dist;  ///< filled for kServed / kServedStale
  SsspStats stats;             ///< solver stats (kServed only)
  std::string error;           ///< what() of the terminal failure (kFailed)
  double queue_ms = 0.0;       ///< submit -> worker pickup (or terminal)
  double solve_ms = 0.0;       ///< worker pickup -> completion, all attempts
  int attempts = 0;            ///< solve attempts (retries = attempts - 1)
  /// Backoff slept before each retry, in submit order — exposed so tests
  /// can pin the seeded jitter sequence byte-for-byte.
  std::vector<std::uint64_t> backoff_ns;
  std::uint64_t query_id = 0;
  /// Graph version the answer reflects (0 for plain-Graph submits; for
  /// kServedStale, the version the cached answer was computed at).
  std::uint64_t graph_version = 0;

  [[nodiscard]] bool ok() const {
    return outcome == Outcome::kServed || outcome == Outcome::kServedStale;
  }
};

/// Service-wide configuration. `solver` is the per-Solver option block
/// (algorithm, threads-per-solver, chaos engine, ...).
struct ServiceConfig {
  SsspOptions solver;
  int num_solvers = 2;              ///< worker threads, one Solver each
  std::size_t queue_capacity = 64;  ///< admission high-watermark
  /// Budget applied when a query's own budget is <= 0; <= 0 = no deadline.
  std::chrono::nanoseconds default_budget{0};
  /// Watchdog tick. Overdue runs are cancelled at most one tick after the
  /// polling sites would have noticed themselves (belt and braces: the
  /// in-run deadline polls usually fire first).
  std::chrono::nanoseconds watchdog_interval{std::chrono::milliseconds(1)};
  int max_retries = 2;  ///< extra solve attempts per query on transient errors
  /// Base backoff before retry k: base << k plus jitter in [0, base),
  /// drawn from a per-worker PRNG seeded from `seed` (deterministic replay).
  std::chrono::nanoseconds retry_backoff{std::chrono::microseconds(200)};
  std::uint64_t seed = 0x5EEDULL;
  bool coalesce = true;  ///< merge same-(graph, source) queued submits
  /// Same-source stale-answer cache entries (FIFO eviction; 0 disables).
  std::size_t stale_cache_entries = 16;
  /// Test hook: invoked before solve attempt `attempt` (0-based) on the
  /// worker thread; a throw is treated as that attempt's transient failure.
  /// Production leaves this empty — it exists to pin the retry/backoff
  /// path deterministically in tests.
  std::function<void(int attempt)> inject_failure;

  /// Rejects nonsensical knobs (num_solvers < 1, queue_capacity < 1,
  /// max_retries < 0, watchdog_interval <= 0) with InvalidOptionsError and
  /// validates the nested solver options.
  void validate() const;
};

/// Per-tenant accounting (all monotonically increasing).
struct TenantStats {
  std::uint64_t submitted = 0;
  std::uint64_t served = 0;
  std::uint64_t served_stale = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t deadline_expired = 0;
  std::uint64_t shed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t failed = 0;
  std::uint64_t coalesced = 0;
};

/// Snapshot of the service's accounting state.
struct ServiceStats {
  TenantStats totals;
  std::map<std::string, TenantStats> tenants;
  std::uint64_t retries = 0;           ///< solve attempts beyond the first
  std::uint64_t solver_rebuilds = 0;   ///< quarantined Solvers rebuilt
  std::uint64_t watchdog_cancels = 0;  ///< overdue runs the watchdog killed
  std::size_t queue_depth = 0;         ///< queued (not running) right now
  std::size_t running = 0;             ///< queries being solved right now
};

/// The Solver-fleet query front door. Thread-safe: submit()/solve()/stats()
/// may be called concurrently from any thread.
class QueryService {
 public:
  /// Validates `config`, spawns num_solvers workers (each builds its own
  /// Solver on its own thread) and the watchdog.
  explicit QueryService(ServiceConfig config);
  /// Equivalent to shutdown().
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Enqueues a query. Returns a future that always resolves to a
  /// QueryResult (see Outcome). Validates `req` upfront: throws
  /// InvalidOptionsError on a malformed request, InvalidSourceError when
  /// req.source is out of range, ServiceOverloadedError when the queue is
  /// at capacity and the query outranks nothing, and std::logic_error after
  /// shutdown(). `g` must outlive the query.
  std::shared_future<QueryResult> submit(const Graph& g,
                                         const QueryRequest& req);

  /// Versioned front door: like above, but additionally throws
  /// InvalidOptionsError when vg.version() < req.min_graph_version.
  /// `vg` must only be mutated through update() once queries are in flight
  /// (update() holds the exclusive gate the workers respect); in exchange
  /// the answer is guaranteed to reflect vg's version at pickup time
  /// (QueryResult::graph_version).
  std::shared_future<QueryResult> submit(VersionedGraph& vg,
                                         const QueryRequest& req);

  /// Deprecated positional shim; forwards to the QueryRequest overload.
  std::shared_future<QueryResult> submit(const Graph& g, VertexId source,
                                         QueryOptions opt = {});

  /// Convenience: submit() and wait.
  QueryResult solve(const Graph& g, const QueryRequest& req);
  QueryResult solve(VersionedGraph& vg, const QueryRequest& req);
  /// Deprecated positional shim; forwards to the QueryRequest overload.
  QueryResult solve(const Graph& g, VertexId source, QueryOptions opt = {});

  /// Applies `batch` to `vg` through the exclusive update gate: new pickups
  /// pause, running queries drain, the batch is applied and any structural
  /// overlay compacted, and then — instead of dropping them — every cached
  /// stale answer for this graph is repaired to the new version through a
  /// service-owned IncrementalSolver (off the query hot path; the common
  /// hot (graph, source) pair repairs incrementally, the rest re-solve).
  /// Queued queries survive an update untouched; they run against the new
  /// version. Returns the new vg.version(). Throws whatever
  /// VersionedGraph::apply throws (validation errors leave the graph
  /// unchanged; see apply()'s contract for mid-batch resource failures)
  /// and std::logic_error after shutdown().
  std::uint64_t update(VersionedGraph& vg, const GraphDelta& batch);

  /// Cancels queued + running queries, waits for the fleet to drain, and
  /// rejects further submits. Idempotent.
  void shutdown();

  [[nodiscard]] ServiceStats stats() const;
  /// Cumulative service counters (the kQueries* block; per_thread[0] is the
  /// admission/watchdog shard, [1..num_solvers] the workers).
  [[nodiscard]] obs::MetricsSnapshot metrics() const;
  [[nodiscard]] const ServiceConfig& config() const { return config_; }

 private:
  struct Pending;
  using Entry = std::shared_ptr<Pending>;

  /// One stale-cache value: the distances plus the graph version they were
  /// computed at (0 for plain Graphs), so min_graph_version can filter.
  struct CachedAnswer {
    std::shared_ptr<const std::vector<Distance>> dist;
    std::uint64_t version = 0;
  };

  void worker_main(int wid);
  void watchdog_main();
  [[nodiscard]] std::unique_ptr<Solver> build_solver() const;
  QueryResult execute(Pending& q, int wid, std::unique_ptr<Solver>& solver,
                      Xoshiro256& rng, bool& quarantine);
  /// Exactly one of `g` / `vg` is non-null. The graph is resolved (and all
  /// vg reads happen) under mu_: update() mutates vg with mu_ held, so any
  /// unlocked access from the submit path would race it.
  std::shared_future<QueryResult> submit_impl(const Graph* g,
                                              const VersionedGraph* vg,
                                              QueryRequest req);
  /// Picks the best queued entry (highest priority, FIFO within). mu_ held
  /// (TSA-enforced via REQUIRES, like all *_locked helpers below).
  Entry pop_next_locked() WASP_REQUIRES(mu_);
  /// Resolves a queued entry without running it (shed / expired / shutdown),
  /// downgrading to the stale cache when allowed. mu_ held.
  void finish_unrun_locked(const Entry& e, Outcome outcome)
      WASP_REQUIRES(mu_);
  /// Tenant + counter accounting for a terminal outcome. mu_ held.
  void account_locked(const std::string& tenant, Outcome outcome)
      WASP_REQUIRES(mu_);
  void cache_store_locked(const Graph* g, VertexId source,
                          const std::vector<Distance>& dist,
                          std::uint64_t version) WASP_REQUIRES(mu_);
  /// A stale-cache hit for `q` satisfying its min_graph_version, or nullptr.
  [[nodiscard]] const CachedAnswer* cache_find_locked(const Pending& q) const
      WASP_REQUIRES(mu_);
  [[nodiscard]] bool any_running_locked() const WASP_REQUIRES(mu_);

  ServiceConfig config_;
  mutable Mutex mu_;  ///< TSA capability guarding all fields marked below
  /// _any variants: they wait through wasp::MutexLock (BasicLockable)
  /// because std::condition_variable demands a std::unique_lock<std::mutex>,
  /// which TSA cannot see through.
  std::condition_variable_any work_cv_;      ///< workers: queue or stop
  std::condition_variable_any watchdog_cv_;  ///< watchdog tick / stop
  std::condition_variable_any update_cv_;    ///< updaters: drain / gate free
  std::deque<Entry> queue_ WASP_GUARDED_BY(mu_);
  /// Slot per worker, null when idle.
  std::vector<Entry> running_ WASP_GUARDED_BY(mu_);
  bool stopping_ WASP_GUARDED_BY(mu_) = false;
  /// Exclusive update gate: while set, workers pause pickups and exactly
  /// one update() owns graph mutation + cache repair.
  bool update_active_ WASP_GUARDED_BY(mu_) = false;
  std::uint64_t next_id_ WASP_GUARDED_BY(mu_) = 1;

  /// Shard 0: admission/watchdog paths (all writes under mu_). Shards
  /// 1..num_solvers: one per worker thread (single-writer, no lock).
  mutable obs::MetricsRegistry registry_;
  std::map<std::string, TenantStats> tenants_ WASP_GUARDED_BY(mu_);

  /// Same-source stale cache, FIFO-evicted.
  std::map<std::pair<const Graph*, VertexId>, CachedAnswer> stale_
      WASP_GUARDED_BY(mu_);
  std::deque<std::pair<const Graph*, VertexId>> stale_order_
      WASP_GUARDED_BY(mu_);

  /// Service-owned repair solver for update()'s cache refresh, built
  /// lazily. Not mu_-guarded: touched only by the update() holder of the
  /// update_active_ gate, which is itself exclusive.
  std::unique_ptr<IncrementalSolver> repairer_;

  std::vector<std::thread> workers_;
  std::thread watchdog_;
};

}  // namespace wasp::service
