// wasp::service::QueryService — the resilient concurrent-query layer over a
// Solver fleet (ROADMAP item 1's "millions of users" front door).
//
// A QueryService owns a fixed pool of Solvers (one worker thread + team
// each) behind a bounded admission queue, and gives every query a
// robustness contract the bare Solver cannot:
//
//  * Deadlines — a per-query budget is armed on the query's CancelToken
//    (the polling sites in every parallel algorithm self-cancel past it)
//    AND enforced by a service watchdog thread that cancels overdue runs
//    and expires overdue queued entries, so a query never waits on a
//    budget it has already blown.
//  * Cooperative cancellation — an overdue or shed query unwinds through
//    the algorithms' own termination protocols within one polling
//    interval; the partial distance state is epoch-bumped away and the
//    Solver stays reusable.
//  * Admission control — past the queue high-watermark a new query either
//    evicts the lowest-priority queued entry (if it outranks one) or is
//    refused with ServiceOverloadedError. Same-source submits coalesce
//    onto one queued entry and share its future.
//  * Graceful degradation — a shed or queue-expired query marked
//    allow_stale is answered from a small same-source cache of previously
//    served distances (Outcome::kServedStale) instead of failing dry.
//  * Fault containment — a Solver whose run was deadline-cancelled or
//    threw a transient error is quarantined and rebuilt off the hot path;
//    transient failures retry with seeded, jittered exponential backoff,
//    capped per query.
//
// Accounting flows through an obs::MetricsRegistry (the kQueries* /
// kSolverRebuilds / kWatchdogCancels counters) plus a per-tenant table;
// bench/qps_service drives the whole contract under a seeded open-loop
// arrival stream. Semantics are documented in docs/ROBUSTNESS.md.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "graph/graph.hpp"
#include "obs/metrics.hpp"
#include "sssp/common.hpp"
#include "sssp/solver.hpp"
#include "support/cancel.hpp"
#include "support/random.hpp"
#include "support/thread_safety.hpp"

namespace wasp::service {

/// How a query left the service. kServed / kServedStale carry distances;
/// the rest are terminal without a (fresh) answer.
enum class Outcome : std::uint8_t {
  kServed,           ///< solved within budget; dist is fresh
  kServedStale,      ///< degraded to a cached same-source result
  kCancelled,        ///< explicit cancel (service shutdown / user request)
  kDeadlineExpired,  ///< budget blown — queued too long or cancelled mid-run
  kShed,             ///< evicted from the queue by a higher-priority query
  kFailed,           ///< retry budget exhausted (or permanent input error)
};

/// Name of `o` ("served", "served_stale", "cancelled", ...).
const char* to_string(Outcome o);

/// Per-query knobs for submit().
struct QueryOptions {
  std::string tenant = "default";  ///< accounting + shedding identity
  int priority = 0;                ///< higher wins queue order; lowest sheds
  /// Wall-clock budget from submit() (queueing included); <= 0 uses the
  /// service default_budget (which may itself be "none").
  std::chrono::nanoseconds budget{0};
  /// Permit a cached same-source answer when shed or expired in queue.
  bool allow_stale = false;
};

/// What a query's future resolves to. Never an exception: every accepted
/// query resolves with a typed Outcome (only submit() itself throws).
struct QueryResult {
  Outcome outcome = Outcome::kFailed;
  std::vector<Distance> dist;  ///< filled for kServed / kServedStale
  SsspStats stats;             ///< solver stats (kServed only)
  std::string error;           ///< what() of the terminal failure (kFailed)
  double queue_ms = 0.0;       ///< submit -> worker pickup (or terminal)
  double solve_ms = 0.0;       ///< worker pickup -> completion, all attempts
  int attempts = 0;            ///< solve attempts (retries = attempts - 1)
  /// Backoff slept before each retry, in submit order — exposed so tests
  /// can pin the seeded jitter sequence byte-for-byte.
  std::vector<std::uint64_t> backoff_ns;
  std::uint64_t query_id = 0;

  [[nodiscard]] bool ok() const {
    return outcome == Outcome::kServed || outcome == Outcome::kServedStale;
  }
};

/// Service-wide configuration. `solver` is the per-Solver option block
/// (algorithm, threads-per-solver, chaos engine, ...).
struct ServiceConfig {
  SsspOptions solver;
  int num_solvers = 2;              ///< worker threads, one Solver each
  std::size_t queue_capacity = 64;  ///< admission high-watermark
  /// Budget applied when a query's own budget is <= 0; <= 0 = no deadline.
  std::chrono::nanoseconds default_budget{0};
  /// Watchdog tick. Overdue runs are cancelled at most one tick after the
  /// polling sites would have noticed themselves (belt and braces: the
  /// in-run deadline polls usually fire first).
  std::chrono::nanoseconds watchdog_interval{std::chrono::milliseconds(1)};
  int max_retries = 2;  ///< extra solve attempts per query on transient errors
  /// Base backoff before retry k: base << k plus jitter in [0, base),
  /// drawn from a per-worker PRNG seeded from `seed` (deterministic replay).
  std::chrono::nanoseconds retry_backoff{std::chrono::microseconds(200)};
  std::uint64_t seed = 0x5EEDULL;
  bool coalesce = true;  ///< merge same-(graph, source) queued submits
  /// Same-source stale-answer cache entries (FIFO eviction; 0 disables).
  std::size_t stale_cache_entries = 16;
  /// Test hook: invoked before solve attempt `attempt` (0-based) on the
  /// worker thread; a throw is treated as that attempt's transient failure.
  /// Production leaves this empty — it exists to pin the retry/backoff
  /// path deterministically in tests.
  std::function<void(int attempt)> inject_failure;

  /// Rejects nonsensical knobs (num_solvers < 1, queue_capacity < 1,
  /// max_retries < 0, watchdog_interval <= 0) with InvalidOptionsError and
  /// validates the nested solver options.
  void validate() const;
};

/// Per-tenant accounting (all monotonically increasing).
struct TenantStats {
  std::uint64_t submitted = 0;
  std::uint64_t served = 0;
  std::uint64_t served_stale = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t deadline_expired = 0;
  std::uint64_t shed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t failed = 0;
  std::uint64_t coalesced = 0;
};

/// Snapshot of the service's accounting state.
struct ServiceStats {
  TenantStats totals;
  std::map<std::string, TenantStats> tenants;
  std::uint64_t retries = 0;           ///< solve attempts beyond the first
  std::uint64_t solver_rebuilds = 0;   ///< quarantined Solvers rebuilt
  std::uint64_t watchdog_cancels = 0;  ///< overdue runs the watchdog killed
  std::size_t queue_depth = 0;         ///< queued (not running) right now
  std::size_t running = 0;             ///< queries being solved right now
};

/// The Solver-fleet query front door. Thread-safe: submit()/solve()/stats()
/// may be called concurrently from any thread.
class QueryService {
 public:
  /// Validates `config`, spawns num_solvers workers (each builds its own
  /// Solver on its own thread) and the watchdog.
  explicit QueryService(ServiceConfig config);
  /// Equivalent to shutdown().
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Enqueues a query. Returns a future that always resolves to a
  /// QueryResult (see Outcome). Throws ServiceOverloadedError when the
  /// queue is at capacity and the query outranks nothing, and
  /// std::logic_error after shutdown(). `g` must outlive the query.
  std::shared_future<QueryResult> submit(const Graph& g, VertexId source,
                                         QueryOptions opt = {});

  /// Convenience: submit() and wait.
  QueryResult solve(const Graph& g, VertexId source, QueryOptions opt = {});

  /// Cancels queued + running queries, waits for the fleet to drain, and
  /// rejects further submits. Idempotent.
  void shutdown();

  [[nodiscard]] ServiceStats stats() const;
  /// Cumulative service counters (the kQueries* block; per_thread[0] is the
  /// admission/watchdog shard, [1..num_solvers] the workers).
  [[nodiscard]] obs::MetricsSnapshot metrics() const;
  [[nodiscard]] const ServiceConfig& config() const { return config_; }

 private:
  struct Pending;
  using Entry = std::shared_ptr<Pending>;
  using Clock = CancelToken::Clock;

  void worker_main(int wid);
  void watchdog_main();
  [[nodiscard]] std::unique_ptr<Solver> build_solver() const;
  QueryResult execute(Pending& q, int wid, std::unique_ptr<Solver>& solver,
                      Xoshiro256& rng, bool& quarantine);
  /// Picks the best queued entry (highest priority, FIFO within). mu_ held
  /// (TSA-enforced via REQUIRES, like all *_locked helpers below).
  Entry pop_next_locked() WASP_REQUIRES(mu_);
  /// Resolves a queued entry without running it (shed / expired / shutdown),
  /// downgrading to the stale cache when allowed. mu_ held.
  void finish_unrun_locked(const Entry& e, Outcome outcome)
      WASP_REQUIRES(mu_);
  /// Tenant + counter accounting for a terminal outcome. mu_ held.
  void account_locked(const std::string& tenant, Outcome outcome)
      WASP_REQUIRES(mu_);
  void cache_store_locked(const Graph* g, VertexId source,
                          const std::vector<Distance>& dist)
      WASP_REQUIRES(mu_);

  ServiceConfig config_;
  mutable Mutex mu_;  ///< TSA capability guarding all fields marked below
  /// _any variants: they wait through wasp::MutexLock (BasicLockable)
  /// because std::condition_variable demands a std::unique_lock<std::mutex>,
  /// which TSA cannot see through.
  std::condition_variable_any work_cv_;      ///< workers: queue or stop
  std::condition_variable_any watchdog_cv_;  ///< watchdog tick / stop
  std::deque<Entry> queue_ WASP_GUARDED_BY(mu_);
  /// Slot per worker, null when idle.
  std::vector<Entry> running_ WASP_GUARDED_BY(mu_);
  bool stopping_ WASP_GUARDED_BY(mu_) = false;
  std::uint64_t next_id_ WASP_GUARDED_BY(mu_) = 1;

  /// Shard 0: admission/watchdog paths (all writes under mu_). Shards
  /// 1..num_solvers: one per worker thread (single-writer, no lock).
  mutable obs::MetricsRegistry registry_;
  std::map<std::string, TenantStats> tenants_ WASP_GUARDED_BY(mu_);

  /// Same-source stale cache, FIFO-evicted.
  std::map<std::pair<const Graph*, VertexId>,
           std::shared_ptr<const std::vector<Distance>>>
      stale_ WASP_GUARDED_BY(mu_);
  std::deque<std::pair<const Graph*, VertexId>> stale_order_
      WASP_GUARDED_BY(mu_);

  std::vector<std::thread> workers_;
  std::thread watchdog_;
};

}  // namespace wasp::service
