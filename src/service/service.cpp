#include "service/service.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "support/errors.hpp"

namespace wasp::service {

namespace {

using CId = obs::CounterId;

double ms_between(CancelToken::Clock::time_point from,
                  CancelToken::Clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             to - from)
      .count();
}

}  // namespace

const char* to_string(Outcome o) {
  switch (o) {
    case Outcome::kServed: return "served";
    case Outcome::kServedStale: return "served_stale";
    case Outcome::kCancelled: return "cancelled";
    case Outcome::kDeadlineExpired: return "deadline_expired";
    case Outcome::kShed: return "shed";
    case Outcome::kFailed: return "failed";
  }
  return "?";
}

void QueryRequest::validate() const {
  if (budget.count() < 0)
    throw InvalidOptionsError("QueryRequest: budget must be >= 0");
  if (tenant.empty())
    throw InvalidOptionsError("QueryRequest: tenant must be non-empty");
}

void ServiceConfig::validate() const {
  if (num_solvers < 1)
    throw InvalidOptionsError("ServiceConfig: num_solvers must be >= 1");
  if (queue_capacity < 1)
    throw InvalidOptionsError("ServiceConfig: queue_capacity must be >= 1");
  if (max_retries < 0)
    throw InvalidOptionsError("ServiceConfig: max_retries must be >= 0");
  if (watchdog_interval.count() <= 0)
    throw InvalidOptionsError("ServiceConfig: watchdog_interval must be > 0");
  solver.validate();
}

/// One accepted query: identity, request knobs, timing anchors, the token
/// shared with the in-flight run, and the promise clients wait on.
struct QueryService::Pending {
  const Graph* graph = nullptr;
  /// Non-null for versioned submits; the worker stamps the run's version
  /// from it at pickup (safe: reads race with nothing — update() drains
  /// running queries and blocks pickups before mutating).
  const VersionedGraph* versioned = nullptr;
  QueryRequest req;
  Clock::time_point submitted;
  Clock::time_point deadline;  // Clock::time_point::max() when unbounded
  std::shared_ptr<CancelToken> token = std::make_shared<CancelToken>();
  std::promise<QueryResult> promise;
  std::shared_future<QueryResult> future;
  std::uint64_t id = 0;
  /// Graph version the run answers, stamped at worker pickup (0 for plain
  /// Graphs). Stable for the whole run: updates drain running queries.
  std::uint64_t run_version = 0;
};

QueryService::QueryService(ServiceConfig config)
    // validate() runs before any member depends on the knobs (the registry
    // ctor would otherwise throw its own error for num_solvers < 1).
    : config_((config.validate(), std::move(config))),
      running_(static_cast<std::size_t>(config_.num_solvers)),
      registry_(config_.num_solvers + 1) {
  workers_.reserve(static_cast<std::size_t>(config_.num_solvers));
  for (int w = 0; w < config_.num_solvers; ++w)
    workers_.emplace_back([this, w] { worker_main(w); });
  watchdog_ = std::thread([this] { watchdog_main(); });
}

QueryService::~QueryService() { shutdown(); }

std::unique_ptr<Solver> QueryService::build_solver() const {
  SsspOptions opt = config_.solver;
  opt.cancel = nullptr;  // installed per query
  return std::make_unique<Solver>(std::move(opt));
}

std::shared_future<QueryResult> QueryService::submit_impl(
    const Graph* graph, const VersionedGraph* vg, QueryRequest req) {
  req.validate();

  MutexLock lock(mu_);
  if (stopping_)
    throw std::logic_error("QueryService::submit: service is shut down");
  // Resolve the graph under mu_ and never earlier: update() phase 1 mutates
  // the VersionedGraph (apply + compact) with mu_ held, so an unlocked
  // flat()/num_vertices() read would race it. flat() (not graph()) on
  // purpose: submit never mutates, and the service contract routes all
  // mutation through update(), which always leaves vg compacted.
  const Graph& g = vg != nullptr ? vg->flat() : *graph;
  if (req.source >= g.num_vertices()) {
    std::ostringstream os;
    os << "QueryService::submit: source " << req.source
       << " out of range for graph with " << g.num_vertices() << " vertices";
    throw InvalidSourceError(os.str());
  }
  if (vg != nullptr && vg->version() < req.min_graph_version) {
    std::ostringstream os;
    os << "QueryService::submit: min_graph_version " << req.min_graph_version
       << " not yet reached (graph is at version " << vg->version() << ")";
    throw InvalidOptionsError(os.str());
  }
  obs::MetricsShard& adm = registry_.shard(0);

  const auto now = Clock::now();
  std::chrono::nanoseconds budget =
      req.budget.count() > 0 ? req.budget : config_.default_budget;
  Clock::time_point deadline =
      budget.count() > 0 ? now + budget : Clock::time_point::max();
  deadline = std::min(deadline, req.deadline);

  // Same-source coalescing: ride an already-queued entry and share its
  // future. The entry inherits the laxer deadline, the higher priority and
  // the rider's stale-answer permission, so no rider loses an answer it
  // would have gotten alone. (min_graph_version needs no merge: versions
  // only grow, so a check passed at submit holds for the shared answer.)
  if (config_.coalesce) {
    for (const Entry& e : queue_) {
      if (e->graph == &g && e->req.source == req.source) {
        adm.inc(CId::kQueriesCoalesced);
        tenants_[req.tenant].coalesced += 1;
        e->deadline = std::max(e->deadline, deadline);
        e->req.priority = std::max(e->req.priority, req.priority);
        e->req.allow_stale = e->req.allow_stale || req.allow_stale;
        e->req.min_graph_version =
            std::max(e->req.min_graph_version, req.min_graph_version);
        if (e->deadline == Clock::time_point::max()) {
          e->token->reset();  // safe: not running yet; drops the armed deadline
        } else {
          e->token->set_deadline(e->deadline);
        }
        return e->future;
      }
    }
  }

  // Admission control: past the high-watermark, either shed the worst
  // queued entry (if the newcomer outranks it) or refuse the newcomer.
  if (queue_.size() >= config_.queue_capacity) {
    auto victim = queue_.end();
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      // <= prefers the youngest among equally-low entries, so FIFO order
      // of the survivors is preserved.
      if (victim == queue_.end() ||
          (*it)->req.priority <= (*victim)->req.priority) {
        victim = it;
      }
    }
    if (victim != queue_.end() && (*victim)->req.priority < req.priority) {
      Entry shed = *victim;
      queue_.erase(victim);
      finish_unrun_locked(shed, Outcome::kShed);
    } else {
      adm.inc(CId::kQueriesRejected);
      tenants_[req.tenant].rejected += 1;
      std::ostringstream os;
      os << "QueryService::submit: queue full (" << queue_.size() << "/"
         << config_.queue_capacity << ") and priority " << req.priority
         << " outranks no queued query";
      throw ServiceOverloadedError(os.str());
    }
  }

  Entry e = std::make_shared<Pending>();
  e->graph = &g;
  e->versioned = vg;
  e->req = std::move(req);
  e->submitted = now;
  e->deadline = deadline;
  // Arm the token too: the run's own polling sites then enforce the budget
  // even between watchdog ticks.
  if (deadline != Clock::time_point::max()) e->token->set_deadline(deadline);
  e->id = next_id_++;
  e->future = e->promise.get_future().share();
  queue_.push_back(e);
  adm.inc(CId::kQueriesSubmitted);
  tenants_[e->req.tenant].submitted += 1;
  work_cv_.notify_one();
  return e->future;
}

std::shared_future<QueryResult> QueryService::submit(const Graph& g,
                                                     const QueryRequest& req) {
  return submit_impl(&g, nullptr, req);
}

std::shared_future<QueryResult> QueryService::submit(VersionedGraph& vg,
                                                     const QueryRequest& req) {
  // The flat-CSR resolution happens inside submit_impl under mu_ — doing it
  // here would race a concurrent update()'s apply/compact.
  return submit_impl(nullptr, &vg, req);
}

std::shared_future<QueryResult> QueryService::submit(const Graph& g,
                                                     VertexId source,
                                                     QueryOptions opt) {
  QueryRequest req;
  req.source = source;
  req.priority = opt.priority;
  req.budget = opt.budget;
  req.tenant = std::move(opt.tenant);
  req.allow_stale = opt.allow_stale;
  return submit_impl(&g, nullptr, std::move(req));
}

QueryResult QueryService::solve(const Graph& g, const QueryRequest& req) {
  return submit(g, req).get();
}

QueryResult QueryService::solve(VersionedGraph& vg, const QueryRequest& req) {
  return submit(vg, req).get();
}

QueryResult QueryService::solve(const Graph& g, VertexId source,
                                QueryOptions opt) {
  return submit(g, source, std::move(opt)).get();
}

std::uint64_t QueryService::update(VersionedGraph& vg,
                                   const GraphDelta& batch) {
  // Phase 1 (under mu_): take the exclusive gate, drain the running set,
  // apply + compact. Workers cannot pick up while update_active_ is set, so
  // nothing reads the CSR while apply() patches it or compact() replaces it.
  std::vector<VertexId> repair_sources;
  std::uint64_t version = 0;
  {
    MutexLock lock(mu_);
    while (!stopping_ && update_active_) update_cv_.wait(lock);
    if (stopping_)
      throw std::logic_error("QueryService::update: service is shut down");
    update_active_ = true;
    while (!stopping_ && any_running_locked()) update_cv_.wait(lock);
    if (stopping_) {
      update_active_ = false;
      throw std::logic_error("QueryService::update: service is shut down");
    }

    const std::uint64_t compactions_before = vg.compactions();
    try {
      version = vg.apply(batch);
      // Fold any structural overlay while the gate is exclusive.
      (void)vg.graph();
    } catch (...) {
      update_active_ = false;
      update_cv_.notify_all();
      work_cv_.notify_all();
      // Validation errors leave the graph unchanged; a mid-batch resource
      // failure bumps the version and invalidates the journal, so the
      // cached answers' older version stamps stay truthful either way.
      throw;
    }
    registry_.shard(0).inc(CId::kGraphCompactions,
                           vg.compactions() - compactions_before);

    const Graph* key = &vg.flat();
    for (const auto& [k, cached] : stale_) {
      (void)cached;
      if (k.first == key) repair_sources.push_back(k.second);
    }
  }

  // Phase 2 (gate held, mu_ released): repair the cached answers to the new
  // version instead of dropping them. vg is quiescent now — workers are
  // gated and concurrent updaters queue on the gate — so the repairer may
  // read it freely while submits and stats proceed under mu_.
  struct Repaired {
    VertexId source;
    std::shared_ptr<const std::vector<Distance>> dist;
    RepairStats stats;
  };
  std::vector<Repaired> repaired;
  repaired.reserve(repair_sources.size());
  try {
    for (const VertexId source : repair_sources) {
      if (repairer_ == nullptr) {
        SsspOptions opt = config_.solver;
        opt.cancel = nullptr;
        repairer_ = std::make_unique<IncrementalSolver>(std::move(opt));
      }
      const std::vector<Distance>& d = repairer_->solve(vg, source);
      repaired.push_back(
          {source, std::make_shared<const std::vector<Distance>>(d),
           repairer_->last_repair()});
    }
  } catch (...) {
    // A failed repair leaves the remaining entries at their old version
    // stamp — still served only to queries whose min_graph_version allows.
    MutexLock lock(mu_);
    update_active_ = false;
    update_cv_.notify_all();
    work_cv_.notify_all();
    throw;
  }

  // Phase 3 (under mu_): publish the repaired answers and release the gate.
  {
    MutexLock lock(mu_);
    obs::MetricsShard& adm = registry_.shard(0);
    const Graph* key = &vg.flat();
    for (Repaired& r : repaired) {
      auto it = stale_.find({key, r.source});
      if (it != stale_.end())  // still cached (no eviction races the gate)
        it->second = CachedAnswer{std::move(r.dist), version};
      if (!r.stats.full_solve) {
        adm.inc(CId::kRepairBatches, r.stats.batches);
        adm.inc(CId::kRepairConeVertices, r.stats.cone_vertices);
        adm.inc(CId::kRepairSeedVertices, r.stats.seed_vertices);
      }
    }
    update_active_ = false;
  }
  update_cv_.notify_all();
  work_cv_.notify_all();
  return version;
}

QueryService::Entry QueryService::pop_next_locked() {
  auto best = queue_.begin();
  for (auto it = std::next(queue_.begin()); it != queue_.end(); ++it) {
    if ((*it)->req.priority > (*best)->req.priority) best = it;
  }
  Entry e = *best;
  queue_.erase(best);
  return e;
}

bool QueryService::any_running_locked() const {
  for (const Entry& e : running_)
    if (e != nullptr) return true;
  return false;
}

const QueryService::CachedAnswer* QueryService::cache_find_locked(
    const Pending& q) const {
  auto hit = stale_.find({q.graph, q.req.source});
  if (hit == stale_.end()) return nullptr;
  // A cached answer older than the query's floor is not an answer at all.
  if (hit->second.version < q.req.min_graph_version) return nullptr;
  return &hit->second;
}

void QueryService::finish_unrun_locked(const Entry& e, Outcome outcome) {
  QueryResult r;
  r.query_id = e->id;
  r.queue_ms = ms_between(e->submitted, Clock::now());
  r.outcome = outcome;
  if (e->req.allow_stale) {
    if (const CachedAnswer* hit = cache_find_locked(*e)) {
      r.outcome = Outcome::kServedStale;
      r.dist = *hit->dist;
      r.graph_version = hit->version;
    }
  }
  // Counted after the stale downgrade: a shed query answered from the cache
  // is served_stale, not shed — one outcome, one counter.
  if (r.outcome == Outcome::kShed) registry_.shard(0).inc(CId::kQueriesShed);
  account_locked(e->req.tenant, r.outcome);
  e->promise.set_value(std::move(r));
}

void QueryService::account_locked(const std::string& tenant, Outcome outcome) {
  TenantStats& t = tenants_[tenant];
  obs::MetricsShard& adm = registry_.shard(0);
  switch (outcome) {
    case Outcome::kServed:
      t.served += 1;
      adm.inc(CId::kQueriesServed);
      break;
    case Outcome::kServedStale:
      t.served_stale += 1;
      adm.inc(CId::kQueriesServedStale);
      break;
    case Outcome::kCancelled:
      t.cancelled += 1;
      adm.inc(CId::kQueriesCancelled);
      break;
    case Outcome::kDeadlineExpired:
      t.deadline_expired += 1;
      adm.inc(CId::kQueriesDeadlineExpired);
      break;
    case Outcome::kShed:
      t.shed += 1;
      break;  // kQueriesShed counted at the shed site
    case Outcome::kFailed:
      t.failed += 1;
      adm.inc(CId::kQueriesFailed);
      break;
  }
}

void QueryService::cache_store_locked(const Graph* g, VertexId source,
                                      const std::vector<Distance>& dist,
                                      std::uint64_t version) {
  if (config_.stale_cache_entries == 0) return;
  const std::pair<const Graph*, VertexId> key{g, source};
  auto it = stale_.find(key);
  if (it == stale_.end() && stale_.size() >= config_.stale_cache_entries) {
    stale_.erase(stale_order_.front());
    stale_order_.pop_front();
  }
  if (it == stale_.end()) stale_order_.push_back(key);
  stale_[key] = CachedAnswer{
      std::make_shared<const std::vector<Distance>>(dist), version};
}

QueryResult QueryService::execute(Pending& q, int wid,
                                  std::unique_ptr<Solver>& solver,
                                  Xoshiro256& rng, bool& quarantine) {
  obs::MetricsShard& my = registry_.shard(wid + 1);
  QueryResult r;
  r.query_id = q.id;
  const auto start = Clock::now();
  r.queue_ms = ms_between(q.submitted, start);
  CancelToken& token = *q.token;

  for (int attempt = 0;; ++attempt) {
    r.attempts = attempt + 1;
    try {
      if (solver == nullptr) {
        // Rebuild after quarantine — this is the only construction on the
        // query path, and only ever after a previous attempt tore down.
        solver = build_solver();
        my.inc(CId::kSolverRebuilds);
      }
      if (config_.inject_failure) config_.inject_failure(attempt);
      solver->options().cancel = &token;
      SsspResult s = solver->solve(*q.graph, q.req.source);
      solver->options().cancel = nullptr;
      r.outcome = Outcome::kServed;
      r.dist = std::move(s.dist);
      r.stats = s.stats;
      r.graph_version = q.run_version;
      break;
    } catch (const SolveCancelledError& ex) {
      if (solver != nullptr) solver->options().cancel = nullptr;
      r.outcome = ex.reason() == CancelReason::kDeadline
                      ? Outcome::kDeadlineExpired
                      : Outcome::kCancelled;
      // A cancelled run unwound cooperatively, but its team just absorbed
      // an abnormal exit — quarantine and rebuild off this query's path.
      if (r.outcome == Outcome::kDeadlineExpired) quarantine = true;
      if (r.outcome == Outcome::kDeadlineExpired && q.req.allow_stale) {
        MutexLock lock(mu_);
        if (const CachedAnswer* hit = cache_find_locked(q)) {
          r.outcome = Outcome::kServedStale;
          r.dist = *hit->dist;
          r.graph_version = hit->version;
        }
      }
      break;
    } catch (const std::logic_error& ex) {
      // Permanent input/config error (InvalidSourceError, SolverBusyError,
      // ...): retrying cannot help.
      if (solver != nullptr) solver->options().cancel = nullptr;
      r.outcome = Outcome::kFailed;
      r.error = ex.what();
      break;
    } catch (const std::exception& ex) {
      // Transient failure (chaos-forced, injected): quarantine the Solver
      // immediately — its internal state is suspect — and retry on a fresh
      // one after a seeded, jittered backoff.
      solver.reset();
      if (attempt >= config_.max_retries || token.cancel_requested()) {
        r.outcome = Outcome::kFailed;
        r.error = ex.what();
        break;
      }
      my.inc(CId::kQueryRetries);
      const auto base =
          static_cast<std::uint64_t>(config_.retry_backoff.count());
      std::uint64_t backoff = base << attempt;
      if (base > 0) backoff += rng.next_below(base);  // jitter in [0, base)
      r.backoff_ns.push_back(backoff);
      if (backoff > 0)
        std::this_thread::sleep_for(std::chrono::nanoseconds(backoff));
    }
  }
  r.solve_ms = ms_between(start, Clock::now());
  return r;
}

void QueryService::worker_main(int wid) {
  std::unique_ptr<Solver> solver = build_solver();
  Xoshiro256 rng(hash_mix(config_.seed ^
                          (0x9E3779B97F4A7C15ULL *
                           static_cast<std::uint64_t>(wid + 1))));
  for (;;) {
    Entry e;
    {
      MutexLock lock(mu_);
      // Explicit predicate loop (not the lambda overload): TSA analyzes a
      // lambda body with no knowledge of the held capability, so the
      // guarded reads live here, where mu_ is provably held. Pickups also
      // pause while an update() owns the exclusive gate — a run must never
      // observe a half-applied batch.
      while (!stopping_ && (queue_.empty() || update_active_))
        work_cv_.wait(lock);
      if (queue_.empty()) return;  // stopping_ and drained
      e = pop_next_locked();
      running_[static_cast<std::size_t>(wid)] = e;
      if (e->versioned != nullptr) e->run_version = e->versioned->version();
    }

    QueryResult r;
    bool quarantine = false;
    if (e->token->poll()) {
      // Fired while queued (deadline between watchdog ticks, or shutdown):
      // resolve without running.
      r.query_id = e->id;
      r.queue_ms = ms_between(e->submitted, Clock::now());
      r.outcome = e->token->reason() == CancelReason::kDeadline
                      ? Outcome::kDeadlineExpired
                      : Outcome::kCancelled;
    } else {
      r = execute(*e, wid, solver, rng, quarantine);
    }

    {
      MutexLock lock(mu_);
      running_[static_cast<std::size_t>(wid)] = nullptr;
      if (r.outcome == Outcome::kServed)
        cache_store_locked(e->graph, e->req.source, r.dist, e->run_version);
      account_locked(e->req.tenant, r.outcome);
      // An update() may be waiting for the running set to drain.
      if (update_active_ && !any_running_locked()) update_cv_.notify_all();
    }
    e->promise.set_value(std::move(r));

    // Quarantine teardown happens after the promise resolved, so the
    // rebuild cost is off this query's critical path (the *next* query on
    // this worker pays it, counted as kSolverRebuilds in execute()).
    if (quarantine) solver.reset();
  }
}

void QueryService::watchdog_main() {
  MutexLock lock(mu_);
  while (!stopping_) {
    watchdog_cv_.wait_for(lock, config_.watchdog_interval);
    if (stopping_) break;
    const auto now = Clock::now();
    // Overdue running queries: cancel their tokens; the run unwinds at its
    // next polling site and the worker maps the reason to an outcome.
    for (const Entry& e : running_) {
      if (e != nullptr && now >= e->deadline &&
          !e->token->cancel_requested()) {
        e->token->request_cancel(CancelReason::kDeadline);
        registry_.shard(0).inc(CId::kWatchdogCancels);
      }
    }
    // Overdue queued queries: expire them without ever running.
    for (auto it = queue_.begin(); it != queue_.end();) {
      if (now >= (*it)->deadline) {
        Entry e = *it;
        it = queue_.erase(it);
        e->token->request_cancel(CancelReason::kDeadline);
        finish_unrun_locked(e, Outcome::kDeadlineExpired);
      } else {
        ++it;
      }
    }
  }
}

void QueryService::shutdown() {
  {
    MutexLock lock(mu_);
    if (stopping_) {
      // Already shut down (idempotent); fall through to the joins below,
      // which are no-ops on already-joined threads guarded by joinable().
    }
    stopping_ = true;
    // Resolve everything still queued and wave off everything running.
    for (const Entry& e : queue_) {
      e->token->request_cancel(CancelReason::kUser);
      finish_unrun_locked(e, Outcome::kCancelled);
    }
    queue_.clear();
    for (const Entry& e : running_) {
      if (e != nullptr) e->token->request_cancel(CancelReason::kUser);
    }
  }
  work_cv_.notify_all();
  watchdog_cv_.notify_all();
  update_cv_.notify_all();  // a blocked update() wakes and throws
  if (watchdog_.joinable()) watchdog_.join();
  for (std::thread& w : workers_)
    if (w.joinable()) w.join();
}

ServiceStats QueryService::stats() const {
  MutexLock lock(mu_);
  ServiceStats s;
  s.tenants = tenants_;
  for (const auto& [name, t] : s.tenants) {
    (void)name;
    s.totals.submitted += t.submitted;
    s.totals.served += t.served;
    s.totals.served_stale += t.served_stale;
    s.totals.cancelled += t.cancelled;
    s.totals.deadline_expired += t.deadline_expired;
    s.totals.shed += t.shed;
    s.totals.rejected += t.rejected;
    s.totals.failed += t.failed;
    s.totals.coalesced += t.coalesced;
  }
  const obs::MetricsSnapshot snap = registry_.snapshot();
  s.retries = snap.totals[static_cast<std::size_t>(CId::kQueryRetries)];
  s.solver_rebuilds =
      snap.totals[static_cast<std::size_t>(CId::kSolverRebuilds)];
  s.watchdog_cancels =
      snap.totals[static_cast<std::size_t>(CId::kWatchdogCancels)];
  s.queue_depth = queue_.size();
  for (const Entry& e : running_)
    if (e != nullptr) ++s.running;
  return s;
}

obs::MetricsSnapshot QueryService::metrics() const {
  MutexLock lock(mu_);
  return registry_.snapshot();
}

}  // namespace wasp::service
