#include "service/service.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

#include "support/errors.hpp"

namespace wasp::service {

namespace {

using CId = obs::CounterId;

double ms_between(CancelToken::Clock::time_point from,
                  CancelToken::Clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             to - from)
      .count();
}

}  // namespace

const char* to_string(Outcome o) {
  switch (o) {
    case Outcome::kServed: return "served";
    case Outcome::kServedStale: return "served_stale";
    case Outcome::kCancelled: return "cancelled";
    case Outcome::kDeadlineExpired: return "deadline_expired";
    case Outcome::kShed: return "shed";
    case Outcome::kFailed: return "failed";
  }
  return "?";
}

void ServiceConfig::validate() const {
  if (num_solvers < 1)
    throw InvalidOptionsError("ServiceConfig: num_solvers must be >= 1");
  if (queue_capacity < 1)
    throw InvalidOptionsError("ServiceConfig: queue_capacity must be >= 1");
  if (max_retries < 0)
    throw InvalidOptionsError("ServiceConfig: max_retries must be >= 0");
  if (watchdog_interval.count() <= 0)
    throw InvalidOptionsError("ServiceConfig: watchdog_interval must be > 0");
  solver.validate();
}

/// One accepted query: identity, knobs, timing anchors, the token shared
/// with the in-flight run, and the promise clients wait on.
struct QueryService::Pending {
  const Graph* graph = nullptr;
  VertexId source = 0;
  QueryOptions opt;
  Clock::time_point submitted;
  Clock::time_point deadline;  // Clock::time_point::max() when unbounded
  std::shared_ptr<CancelToken> token = std::make_shared<CancelToken>();
  std::promise<QueryResult> promise;
  std::shared_future<QueryResult> future;
  std::uint64_t id = 0;
};

QueryService::QueryService(ServiceConfig config)
    // validate() runs before any member depends on the knobs (the registry
    // ctor would otherwise throw its own error for num_solvers < 1).
    : config_((config.validate(), std::move(config))),
      running_(static_cast<std::size_t>(config_.num_solvers)),
      registry_(config_.num_solvers + 1) {
  workers_.reserve(static_cast<std::size_t>(config_.num_solvers));
  for (int w = 0; w < config_.num_solvers; ++w)
    workers_.emplace_back([this, w] { worker_main(w); });
  watchdog_ = std::thread([this] { watchdog_main(); });
}

QueryService::~QueryService() { shutdown(); }

std::unique_ptr<Solver> QueryService::build_solver() const {
  SsspOptions opt = config_.solver;
  opt.cancel = nullptr;  // installed per query
  return std::make_unique<Solver>(std::move(opt));
}

std::shared_future<QueryResult> QueryService::submit(const Graph& g,
                                                     VertexId source,
                                                     QueryOptions opt) {
  MutexLock lock(mu_);
  if (stopping_)
    throw std::logic_error("QueryService::submit: service is shut down");
  obs::MetricsShard& adm = registry_.shard(0);

  const auto now = Clock::now();
  std::chrono::nanoseconds budget =
      opt.budget.count() > 0 ? opt.budget : config_.default_budget;
  const Clock::time_point deadline =
      budget.count() > 0 ? now + budget : Clock::time_point::max();

  // Same-source coalescing: ride an already-queued entry and share its
  // future. The entry inherits the laxer deadline and the higher priority,
  // so no rider loses an answer it would have gotten alone.
  if (config_.coalesce) {
    for (const Entry& e : queue_) {
      if (e->graph == &g && e->source == source) {
        adm.inc(CId::kQueriesCoalesced);
        tenants_[opt.tenant].coalesced += 1;
        e->deadline = std::max(e->deadline, deadline);
        e->opt.priority = std::max(e->opt.priority, opt.priority);
        if (e->deadline == Clock::time_point::max()) {
          e->token->reset();  // safe: not running yet; drops the armed deadline
        } else {
          e->token->set_deadline(e->deadline);
        }
        return e->future;
      }
    }
  }

  // Admission control: past the high-watermark, either shed the worst
  // queued entry (if the newcomer outranks it) or refuse the newcomer.
  if (queue_.size() >= config_.queue_capacity) {
    auto victim = queue_.end();
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      // <= prefers the youngest among equally-low entries, so FIFO order
      // of the survivors is preserved.
      if (victim == queue_.end() ||
          (*it)->opt.priority <= (*victim)->opt.priority) {
        victim = it;
      }
    }
    if (victim != queue_.end() && (*victim)->opt.priority < opt.priority) {
      Entry shed = *victim;
      queue_.erase(victim);
      finish_unrun_locked(shed, Outcome::kShed);
    } else {
      adm.inc(CId::kQueriesRejected);
      tenants_[opt.tenant].rejected += 1;
      std::ostringstream os;
      os << "QueryService::submit: queue full (" << queue_.size() << "/"
         << config_.queue_capacity << ") and priority " << opt.priority
         << " outranks no queued query";
      throw ServiceOverloadedError(os.str());
    }
  }

  Entry e = std::make_shared<Pending>();
  e->graph = &g;
  e->source = source;
  e->opt = std::move(opt);
  e->submitted = now;
  e->deadline = deadline;
  // Arm the token too: the run's own polling sites then enforce the budget
  // even between watchdog ticks.
  if (deadline != Clock::time_point::max()) e->token->set_deadline(deadline);
  e->id = next_id_++;
  e->future = e->promise.get_future().share();
  queue_.push_back(e);
  adm.inc(CId::kQueriesSubmitted);
  tenants_[e->opt.tenant].submitted += 1;
  work_cv_.notify_one();
  return e->future;
}

QueryResult QueryService::solve(const Graph& g, VertexId source,
                                QueryOptions opt) {
  return submit(g, source, std::move(opt)).get();
}

QueryService::Entry QueryService::pop_next_locked() {
  auto best = queue_.begin();
  for (auto it = std::next(queue_.begin()); it != queue_.end(); ++it) {
    if ((*it)->opt.priority > (*best)->opt.priority) best = it;
  }
  Entry e = *best;
  queue_.erase(best);
  return e;
}

void QueryService::finish_unrun_locked(const Entry& e, Outcome outcome) {
  QueryResult r;
  r.query_id = e->id;
  r.queue_ms = ms_between(e->submitted, Clock::now());
  r.outcome = outcome;
  if (e->opt.allow_stale) {
    auto hit = stale_.find({e->graph, e->source});
    if (hit != stale_.end()) {
      r.outcome = Outcome::kServedStale;
      r.dist = *hit->second;
    }
  }
  if (outcome == Outcome::kShed) registry_.shard(0).inc(CId::kQueriesShed);
  account_locked(e->opt.tenant, r.outcome);
  e->promise.set_value(std::move(r));
}

void QueryService::account_locked(const std::string& tenant, Outcome outcome) {
  TenantStats& t = tenants_[tenant];
  obs::MetricsShard& adm = registry_.shard(0);
  switch (outcome) {
    case Outcome::kServed:
      t.served += 1;
      adm.inc(CId::kQueriesServed);
      break;
    case Outcome::kServedStale:
      t.served_stale += 1;
      adm.inc(CId::kQueriesServedStale);
      break;
    case Outcome::kCancelled:
      t.cancelled += 1;
      adm.inc(CId::kQueriesCancelled);
      break;
    case Outcome::kDeadlineExpired:
      t.deadline_expired += 1;
      adm.inc(CId::kQueriesDeadlineExpired);
      break;
    case Outcome::kShed:
      t.shed += 1;
      break;  // kQueriesShed counted at the shed site
    case Outcome::kFailed:
      t.failed += 1;
      adm.inc(CId::kQueriesFailed);
      break;
  }
}

void QueryService::cache_store_locked(const Graph* g, VertexId source,
                                      const std::vector<Distance>& dist) {
  if (config_.stale_cache_entries == 0) return;
  const std::pair<const Graph*, VertexId> key{g, source};
  auto it = stale_.find(key);
  if (it == stale_.end() && stale_.size() >= config_.stale_cache_entries) {
    stale_.erase(stale_order_.front());
    stale_order_.pop_front();
  }
  if (it == stale_.end()) stale_order_.push_back(key);
  stale_[key] = std::make_shared<const std::vector<Distance>>(dist);
}

QueryResult QueryService::execute(Pending& q, int wid,
                                  std::unique_ptr<Solver>& solver,
                                  Xoshiro256& rng, bool& quarantine) {
  obs::MetricsShard& my = registry_.shard(wid + 1);
  QueryResult r;
  r.query_id = q.id;
  const auto start = Clock::now();
  r.queue_ms = ms_between(q.submitted, start);
  CancelToken& token = *q.token;

  for (int attempt = 0;; ++attempt) {
    r.attempts = attempt + 1;
    try {
      if (solver == nullptr) {
        // Rebuild after quarantine — this is the only construction on the
        // query path, and only ever after a previous attempt tore down.
        solver = build_solver();
        my.inc(CId::kSolverRebuilds);
      }
      if (config_.inject_failure) config_.inject_failure(attempt);
      solver->options().cancel = &token;
      SsspResult s = solver->solve(*q.graph, q.source);
      solver->options().cancel = nullptr;
      r.outcome = Outcome::kServed;
      r.dist = std::move(s.dist);
      r.stats = s.stats;
      break;
    } catch (const SolveCancelledError& ex) {
      if (solver != nullptr) solver->options().cancel = nullptr;
      r.outcome = ex.reason() == CancelReason::kDeadline
                      ? Outcome::kDeadlineExpired
                      : Outcome::kCancelled;
      // A cancelled run unwound cooperatively, but its team just absorbed
      // an abnormal exit — quarantine and rebuild off this query's path.
      if (r.outcome == Outcome::kDeadlineExpired) quarantine = true;
      if (r.outcome == Outcome::kDeadlineExpired && q.opt.allow_stale) {
        MutexLock lock(mu_);
        auto hit = stale_.find({q.graph, q.source});
        if (hit != stale_.end()) {
          r.outcome = Outcome::kServedStale;
          r.dist = *hit->second;
        }
      }
      break;
    } catch (const std::logic_error& ex) {
      // Permanent input/config error (InvalidSourceError, SolverBusyError,
      // ...): retrying cannot help.
      if (solver != nullptr) solver->options().cancel = nullptr;
      r.outcome = Outcome::kFailed;
      r.error = ex.what();
      break;
    } catch (const std::exception& ex) {
      // Transient failure (chaos-forced, injected): quarantine the Solver
      // immediately — its internal state is suspect — and retry on a fresh
      // one after a seeded, jittered backoff.
      solver.reset();
      if (attempt >= config_.max_retries || token.cancel_requested()) {
        r.outcome = Outcome::kFailed;
        r.error = ex.what();
        break;
      }
      my.inc(CId::kQueryRetries);
      const auto base =
          static_cast<std::uint64_t>(config_.retry_backoff.count());
      std::uint64_t backoff = base << attempt;
      if (base > 0) backoff += rng.next_below(base);  // jitter in [0, base)
      r.backoff_ns.push_back(backoff);
      if (backoff > 0)
        std::this_thread::sleep_for(std::chrono::nanoseconds(backoff));
    }
  }
  r.solve_ms = ms_between(start, Clock::now());
  return r;
}

void QueryService::worker_main(int wid) {
  std::unique_ptr<Solver> solver = build_solver();
  Xoshiro256 rng(hash_mix(config_.seed ^
                          (0x9E3779B97F4A7C15ULL *
                           static_cast<std::uint64_t>(wid + 1))));
  for (;;) {
    Entry e;
    {
      MutexLock lock(mu_);
      // Explicit predicate loop (not the lambda overload): TSA analyzes a
      // lambda body with no knowledge of the held capability, so the
      // guarded reads live here, where mu_ is provably held.
      while (!stopping_ && queue_.empty()) work_cv_.wait(lock);
      if (queue_.empty()) return;  // stopping_ and drained
      e = pop_next_locked();
      running_[static_cast<std::size_t>(wid)] = e;
    }

    QueryResult r;
    bool quarantine = false;
    if (e->token->poll()) {
      // Fired while queued (deadline between watchdog ticks, or shutdown):
      // resolve without running.
      r.query_id = e->id;
      r.queue_ms = ms_between(e->submitted, Clock::now());
      r.outcome = e->token->reason() == CancelReason::kDeadline
                      ? Outcome::kDeadlineExpired
                      : Outcome::kCancelled;
    } else {
      r = execute(*e, wid, solver, rng, quarantine);
    }

    {
      MutexLock lock(mu_);
      running_[static_cast<std::size_t>(wid)] = nullptr;
      if (r.outcome == Outcome::kServed)
        cache_store_locked(e->graph, e->source, r.dist);
      account_locked(e->opt.tenant, r.outcome);
    }
    e->promise.set_value(std::move(r));

    // Quarantine teardown happens after the promise resolved, so the
    // rebuild cost is off this query's critical path (the *next* query on
    // this worker pays it, counted as kSolverRebuilds in execute()).
    if (quarantine) solver.reset();
  }
}

void QueryService::watchdog_main() {
  MutexLock lock(mu_);
  while (!stopping_) {
    watchdog_cv_.wait_for(lock, config_.watchdog_interval);
    if (stopping_) break;
    const auto now = Clock::now();
    // Overdue running queries: cancel their tokens; the run unwinds at its
    // next polling site and the worker maps the reason to an outcome.
    for (const Entry& e : running_) {
      if (e != nullptr && now >= e->deadline &&
          !e->token->cancel_requested()) {
        e->token->request_cancel(CancelReason::kDeadline);
        registry_.shard(0).inc(CId::kWatchdogCancels);
      }
    }
    // Overdue queued queries: expire them without ever running.
    for (auto it = queue_.begin(); it != queue_.end();) {
      if (now >= (*it)->deadline) {
        Entry e = *it;
        it = queue_.erase(it);
        e->token->request_cancel(CancelReason::kDeadline);
        finish_unrun_locked(e, Outcome::kDeadlineExpired);
      } else {
        ++it;
      }
    }
  }
}

void QueryService::shutdown() {
  {
    MutexLock lock(mu_);
    if (stopping_) {
      // Already shut down (idempotent); fall through to the joins below,
      // which are no-ops on already-joined threads guarded by joinable().
    }
    stopping_ = true;
    // Resolve everything still queued and wave off everything running.
    for (const Entry& e : queue_) {
      e->token->request_cancel(CancelReason::kUser);
      finish_unrun_locked(e, Outcome::kCancelled);
    }
    queue_.clear();
    for (const Entry& e : running_) {
      if (e != nullptr) e->token->request_cancel(CancelReason::kUser);
    }
  }
  work_cv_.notify_all();
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
  for (std::thread& w : workers_)
    if (w.joinable()) w.join();
}

ServiceStats QueryService::stats() const {
  MutexLock lock(mu_);
  ServiceStats s;
  s.tenants = tenants_;
  for (const auto& [name, t] : s.tenants) {
    (void)name;
    s.totals.submitted += t.submitted;
    s.totals.served += t.served;
    s.totals.served_stale += t.served_stale;
    s.totals.cancelled += t.cancelled;
    s.totals.deadline_expired += t.deadline_expired;
    s.totals.shed += t.shed;
    s.totals.rejected += t.rejected;
    s.totals.failed += t.failed;
    s.totals.coalesced += t.coalesced;
  }
  const obs::MetricsSnapshot snap = registry_.snapshot();
  s.retries = snap.totals[static_cast<std::size_t>(CId::kQueryRetries)];
  s.solver_rebuilds =
      snap.totals[static_cast<std::size_t>(CId::kSolverRebuilds)];
  s.watchdog_cancels =
      snap.totals[static_cast<std::size_t>(CId::kWatchdogCancels)];
  s.queue_depth = queue_.size();
  for (const Entry& e : running_)
    if (e != nullptr) ++s.running;
  return s;
}

obs::MetricsSnapshot QueryService::metrics() const {
  MutexLock lock(mu_);
  return registry_.snapshot();
}

}  // namespace wasp::service
