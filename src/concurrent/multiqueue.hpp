// Relaxed concurrent priority queue: the MultiQueue of Rihani, Sanders &
// Dementiev (SPAA'15) with the engineering refinements of Williams, Sanders
// & Dementiev (ESA'21) the paper benchmarks against (§2, §5):
//
//  * c*p spinlock-protected internal priority queues (c = 2 in the paper),
//    each an 8-ary min-heap,
//  * two-choice deletion: sample two queues, take from the one whose top has
//    the smaller key (peeked via a lock-free shadow of each queue's top),
//  * stickiness s: a thread keeps using its chosen queue for s consecutive
//    refills before re-sampling,
//  * per-thread insertion and deletion buffers of size b (b = 16) to batch
//    locked operations.
//
// Instrumented: time spent inside locked queue operations (buffer flushes
// and refills) is accumulated per thread; this is what Figure 2's
// "queue operations" share reports.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "concurrent/dary_heap.hpp"
#include "concurrent/spinlock.hpp"
#include "support/padded.hpp"
#include "support/random.hpp"
#include "support/timer.hpp"
#include "support/types.hpp"
#include "verify/checked_atomic.hpp"

namespace wasp {

/// MultiQueue of (Distance, VertexId) entries.
class MultiQueue {
 public:
  struct Config {
    int threads = 1;
    int c = 2;            ///< queues per thread
    int stickiness = 8;   ///< refills before re-sampling a queue
    int buffer_size = 16; ///< insertion/deletion buffer capacity
    std::uint64_t seed = 1;
  };

  explicit MultiQueue(const Config& config);

  MultiQueue(const MultiQueue&) = delete;
  MultiQueue& operator=(const MultiQueue&) = delete;

  /// Inserts an element (goes through the caller's insertion buffer).
  void push(int tid, Distance key, VertexId value);

  /// Pops an approximately-minimal element. Returns false when the structure
  /// appears empty from this thread's perspective (buffers flushed, sampled
  /// queues empty); with a quiescent structure and no concurrent pushes,
  /// false means truly empty.
  bool try_pop(int tid, Distance& key, VertexId& value);

  /// Flushes the caller's insertion buffer so its elements become stealable
  /// by other threads' pops.
  void flush(int tid);

  /// Elements currently buffered + queued (exact when quiescent).
  /// Occupancy statistic: staleness is inherent (the counter races with
  /// buffered pushes anyway), so relaxed is the honest order.
  [[nodiscard]] std::int64_t size_estimate() const {
    return size_.load(std::memory_order_relaxed);
  }

  /// Nanoseconds thread `tid` has spent inside locked queue operations.
  [[nodiscard]] std::uint64_t queue_op_ns(int tid) const {
    return per_thread_[static_cast<std::size_t>(tid)].value.queue_op_ns;
  }

  [[nodiscard]] int num_internal_queues() const {
    return static_cast<int>(queues_.size());
  }

 private:
  struct InternalQueue {
    SpinLock lock;
    DaryHeap<Distance, VertexId, 8> heap WASP_GUARDED_BY(lock);
    // Lock-free shadow of heap.top().key (kInfDist when empty), so the
    // two-choice comparison does not need the lock. Advisory: every decision
    // based on it is re-validated under `lock`, so relaxed accesses suffice
    // (docs/CONCURRENCY.md) — the lock itself is the load-bearing sync.
    verify::atomic<Distance> top_key{kInfDist};
  };

  struct Entry {
    Distance key;
    VertexId value;
  };

  struct PerThread {
    Xoshiro256 rng{1};
    std::vector<Entry> insert_buffer;
    std::vector<Entry> delete_buffer;  // ascending; consumed from the front
    std::size_t delete_cursor = 0;
    int sticky_queue = -1;
    int sticky_left = 0;
    std::uint64_t queue_op_ns = 0;
  };

  int pick_queue_two_choice(PerThread& me);
  bool refill(int tid, PerThread& me);

  Config config_;
  std::vector<CachePadded<InternalQueue>> queues_;
  std::vector<CachePadded<PerThread>> per_thread_;
  verify::atomic<std::int64_t> size_{0};
};

}  // namespace wasp
