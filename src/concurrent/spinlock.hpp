// Tiny test-and-test-and-set spinlock with yield backoff.
//
// Used where the paper's baselines use locks (the MultiQueue's per-queue
// locks, Galois/OBIM's global bags). Satisfies Lockable, so it composes with
// std::lock_guard per the Core Guidelines (CP.20: RAII, never plain
// lock()/unlock()).
//
// Memory-order map (docs/CONCURRENCY.md, mutants SL-*): the successful
// exchange must be acquire so the critical section happens-after the
// previous holder's unlock, and unlock must be release to publish the
// section's plain writes; the spin-wait load is only a contention probe.
#pragma once

#include <atomic>
#include <thread>

#include "verify/checked_atomic.hpp"

namespace wasp {

class SpinLock {
 public:
  void lock() noexcept {
    int spins = 0;
    for (;;) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) {
        if (++spins > kSpinsBeforeYield) {
          std::this_thread::yield();
          spins = 0;
        }
      }
    }
  }

  bool try_lock() noexcept {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { flag_.store(false, std::memory_order_release); }

 private:
  static constexpr int kSpinsBeforeYield = 64;
  verify::atomic<bool> flag_{false};
};

}  // namespace wasp
