// Tiny test-and-test-and-set spinlock with yield backoff.
//
// Used where the paper's baselines use locks (the MultiQueue's per-queue
// locks, Galois/OBIM's global bags). Satisfies Lockable, so it composes with
// std::lock_guard per the Core Guidelines (CP.20: RAII, never plain
// lock()/unlock()).
//
// Memory-order map (docs/CONCURRENCY.md, mutants SL-*): the successful
// exchange must be acquire so the critical section happens-after the
// previous holder's unlock, and unlock must be release to publish the
// section's plain writes; the spin-wait load is only a contention probe.
#pragma once

#include <atomic>
#include <thread>

#include "support/thread_safety.hpp"
#include "verify/checked_atomic.hpp"

namespace wasp {

class WASP_CAPABILITY("mutex") SpinLock {
 public:
  void lock() noexcept WASP_ACQUIRE() {
    int spins = 0;
    for (;;) {
      // Acquire on the winning exchange pairs with unlock()'s release store:
      // everything the previous holder wrote is visible to this one. The
      // spin-wait below reads relaxed — it takes no ownership, it only
      // watches for a plausible moment to retry the exchange.
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) {
        if (++spins > kSpinsBeforeYield) {
          std::this_thread::yield();
          spins = 0;
        }
      }
    }
  }

  bool try_lock() noexcept WASP_TRY_ACQUIRE(true) {
    // Relaxed peek is a contention filter only; the acquire exchange is the
    // real acquisition edge (same pairing as lock()).
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  // Release: publishes the critical section to the next acquire exchange.
  void unlock() noexcept WASP_RELEASE() {
    flag_.store(false, std::memory_order_release);
  }

 private:
  static constexpr int kSpinsBeforeYield = 64;
  verify::atomic<bool> flag_{false};
};

/// RAII guard for SpinLock, visible to TSA (std::lock_guard<SpinLock> is
/// not, because the standard library carries no annotations).
class WASP_SCOPED_CAPABILITY SpinGuard {
 public:
  explicit SpinGuard(SpinLock& lock) WASP_ACQUIRE(lock) : lock_(lock) {
    lock_.lock();
  }
  ~SpinGuard() WASP_RELEASE() { lock_.unlock(); }

  SpinGuard(const SpinGuard&) = delete;
  SpinGuard& operator=(const SpinGuard&) = delete;

 private:
  SpinLock& lock_;
};

}  // namespace wasp
