// Sequential d-ary min-heap.
//
// The paper's MultiQueue configuration uses 8-ary heaps ("an optimized
// MultiQueue implementation that uses 8-ary heaps", §5): a wide fan-out
// trades deeper sift-downs for fewer cache lines touched per operation.
// Also used by the reference sequential Dijkstra (d = 4).
#pragma once

#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

namespace wasp {

/// Min-heap over (Key, Value) pairs ordered by Key. D is the fan-out.
template <typename Key, typename Value, unsigned D = 8>
class DaryHeap {
  static_assert(D >= 2, "fan-out must be at least 2");

 public:
  struct Entry {
    Key key;
    Value value;
  };

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const { return heap_.size(); }

  /// Smallest key. Precondition: !empty().
  [[nodiscard]] const Entry& top() const {
    assert(!empty());
    return heap_.front();
  }

  void push(Key key, Value value) {
    heap_.push_back(Entry{key, value});
    sift_up(heap_.size() - 1);
  }

  /// Removes and returns the minimum entry. Precondition: !empty().
  Entry pop() {
    assert(!empty());
    Entry result = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    return result;
  }

  void clear() { heap_.clear(); }
  void reserve(std::size_t n) { heap_.reserve(n); }

 private:
  void sift_up(std::size_t i) {
    Entry e = heap_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / D;
      if (heap_[parent].key <= e.key) break;
      heap_[i] = heap_[parent];
      i = parent;
    }
    heap_[i] = e;
  }

  void sift_down(std::size_t i) {
    Entry e = heap_[i];
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t first_child = i * D + 1;
      if (first_child >= n) break;
      const std::size_t last_child = std::min(first_child + D, n);
      std::size_t best = first_child;
      for (std::size_t c = first_child + 1; c < last_child; ++c)
        if (heap_[c].key < heap_[best].key) best = c;
      if (e.key <= heap_[best].key) break;
      heap_[i] = heap_[best];
      i = best;
    }
    heap_[i] = e;
  }

  std::vector<Entry> heap_;
};

}  // namespace wasp
