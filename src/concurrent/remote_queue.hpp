// Batched remote relaxation queues for the partitioned Wasp engine.
//
// In partitioned execution (graph/partition.hpp, sssp/wasp_partitioned.cpp,
// docs/NUMA.md) a worker never CASes another fragment's distance shard.
// When a relaxation's target vertex lives in a different fragment, the
// {vertex, dist} record is buffered in a per-destination batch and, once the
// batch fills (or at a bucket boundary), published onto the destination
// fragment's inbound channel. Destination workers drain the channel at round
// boundaries and apply the records to their own shard. Cross-node traffic is
// thus a handful of cache lines per *batch* instead of a CAS ping-pong per
// *edge* — the libgrape-lite out_q_remote idea grafted onto Wasp's
// asynchronous protocol.
//
// Structure per destination fragment: a Treiber-style MPSC grab-all channel.
// Any worker may publish (multi-producer, lock-free CAS push); draining
// exchanges the whole list out at once, so concurrent grabbers get disjoint
// lists and no consumer lock is needed. There is no mutex-guarded shared
// state in this file — every shared word is a commented verify::atomic (the
// GUARDED_BY discipline of ROADMAP item 6 has nothing to bite on here by
// construction).
//
// Termination accounting: the network carries a global `in_flight` record
// counter (seq_cst). A batch's records are added BEFORE the batch is
// published and subtracted only AFTER the drainer has applied them, so a
// zero read — the true count, not a stale one, because every operation on
// the counter is seq_cst — means no published record anywhere awaits
// application. That reading gates the votes of the partitioned engine's
// quiescence barrier (see terminate() in wasp_partitioned.cpp for the full
// argument).
//
// Chaos: kRemoteFlushDelay fires before a publish, kRemoteDrainDelay before
// a drain — both stretch the publish->drain window the termination
// extension must tolerate. Drain loops poll cancellation in the driver
// (records are applied in bounded per-batch loops here, so the poll sits at
// batch granularity).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "support/chaos.hpp"
#include "support/padded.hpp"
#include "support/types.hpp"
#include "verify/checked_atomic.hpp"

namespace wasp {

/// One boundary relaxation crossing fragments: "lower dist[vertex] to dist".
struct RemoteRelax {
  VertexId vertex;
  Distance dist;
};

/// A fixed-capacity block of remote relaxations, linked intrusively on the
/// destination fragment's channel. Records and count are written only by the
/// producing worker before the batch is published and read only by the
/// draining worker after it grabs the list; the publish CAS (release) /
/// grab exchange (acquire) pair is the happens-before edge that makes those
/// plain accesses race-free. The verify build checks exactly that via the
/// plain-cell value model.
class RemoteBatch {
 public:
  static constexpr std::uint32_t kCapacity = 256;

  /// Appends a record; call only while unpublished. Returns true when the
  /// batch is full after the append (time to flush).
  bool append(VertexId v, Distance d) {
    WASP_VERIFY_WR(&records_[count_]);
    records_[count_] = RemoteRelax{v, d};
    ++count_;
    return count_ == kCapacity;
  }

  [[nodiscard]] std::uint32_t size() const { return count_; }

  /// Reads record i; call only after grabbing the batch from a channel.
  [[nodiscard]] RemoteRelax record(std::uint32_t i) const {
    WASP_VERIFY_RD(&records_[i]);
    return records_[i];
  }

  /// Intrusive link, written by the publisher between CAS attempts and read
  /// by the drainer after the acquire grab — same hb edge as the records.
  RemoteBatch* next = nullptr;

 private:
  std::uint32_t count_ = 0;
  RemoteRelax records_[kCapacity];
};

/// Frees a batch, first telling the verify model to drop race-tracking state
/// for its storage. operator delete hands the block back to the allocator,
/// whose internal synchronization orders the hand-off to the next operator
/// new — a real happens-before edge the plain-cell model cannot see. Without
/// the retire, a recycled batch address reports a false race between the old
/// drainer's record() reads and the new owner's append() writes. Every
/// RemoteBatch deletion must go through here.
inline void free_batch(RemoteBatch* batch) {
  WASP_VERIFY_RETIRE(batch, sizeof(RemoteBatch));
  delete batch;
}

/// The per-run relay fabric: one inbound MPSC channel per fragment plus the
/// global in-flight record counter.
class RemoteRelayNetwork {
 public:
  explicit RemoteRelayNetwork(int num_fragments)
      : heads_(static_cast<std::size_t>(num_fragments)) {
    for (auto& h : heads_) {
      // relaxed: pre-publication single-threaded init; the ThreadTeam fork
      // that starts the workers orders it.
      h.value.store(nullptr, std::memory_order_relaxed);
    }
  }

  RemoteRelayNetwork(const RemoteRelayNetwork&) = delete;
  RemoteRelayNetwork& operator=(const RemoteRelayNetwork&) = delete;

  /// Frees batches left on channels by a cancelled run. Runs after the team
  /// join — no concurrent publishers remain.
  ~RemoteRelayNetwork() {
    for (auto& h : heads_) {
      // relaxed: post-join teardown; the join ordered all publishes.
      RemoteBatch* b = h.value.load(std::memory_order_relaxed);
      while (b != nullptr) {
        RemoteBatch* next = b->next;
        free_batch(b);
        b = next;
      }
    }
  }

  [[nodiscard]] int num_fragments() const {
    return static_cast<int>(heads_.size());
  }

  /// Publishes a filled batch onto fragment `dst`'s inbound channel.
  /// Ownership transfers to whichever drainer grabs the list.
  void publish(int dst, RemoteBatch* batch) {
    WASP_CHAOS_YIELD(chaos::Point::kRemoteFlushDelay);
    // Records are accounted BEFORE the batch becomes grabbable: a scanner
    // must never observe an empty channel + zero counter while records
    // exist. seq_cst: the termination verdict needs the TRUE count — an
    // acquire load could legally return a stale zero from before this add,
    // letting a worker vote quiescent while records sit on a channel (see
    // terminate() in wasp_partitioned.cpp). The RMW also continues the
    // counter's release sequence, so readers inherit the records'
    // visibility.
    in_flight_.fetch_add(batch->size(), std::memory_order_seq_cst);

    auto& head = heads_[static_cast<std::size_t>(dst)].value;
    // Treiber push. relaxed initial load: the CAS below re-validates.
    RemoteBatch* old = head.load(std::memory_order_relaxed);
    do {
      batch->next = old;
      WASP_CHAOS_YIELD(chaos::Point::kYieldBeforeCas);
      // release on success: publishes records_, count_ and next to the
      // drainer's acquire exchange. relaxed on failure: retry re-reads.
    } while (!head.compare_exchange_weak(old, batch, std::memory_order_release,
                                         std::memory_order_relaxed));
    WASP_CHAOS_YIELD(chaos::Point::kYieldAfterCas);
  }

  /// Atomically takes fragment `frag`'s whole inbound list (newest first);
  /// nullptr when empty. Concurrent grabbers obtain disjoint lists. The
  /// caller owns (and must delete) the returned batches, and must call
  /// on_drained() with each batch's size after applying its records.
  [[nodiscard]] RemoteBatch* grab_all(int frag) {
    WASP_CHAOS_YIELD(chaos::Point::kRemoteDrainDelay);
    // acquire: pairs with the publish CAS release — after the exchange the
    // grabbed batches' plain records/count/next reads are hb-ordered.
    return heads_[static_cast<std::size_t>(frag)].value.exchange(
        nullptr, std::memory_order_acquire);
  }

  /// Advisory non-empty probe for fragment `frag`'s channel (drive the
  /// opportunistic drain / keep a termination sweep alive). relaxed: a
  /// stale answer only delays a drain by one iteration; grab_all() carries
  /// the real synchronization.
  [[nodiscard]] bool pending(int frag) const {
    return heads_[static_cast<std::size_t>(frag)].value.load(
               std::memory_order_relaxed) != nullptr;
  }

  /// Subtracts `records` applied records. Call only after the records have
  /// been relaxed into the destination shard. seq_cst: keeps the counter's
  /// modification order totally ordered with the verdict's load (below) so
  /// a zero read is current; the RMW chain accumulates every drainer's
  /// release clock, so a scanner reading zero also inherits those shard
  /// writes and each drainer's preceding busy board publication.
  void on_drained(std::uint32_t records) {
    in_flight_.fetch_sub(records, std::memory_order_seq_cst);
  }

  /// Published-but-not-yet-applied record count. seq_cst: with the seq_cst
  /// add/sub this load returns the CURRENT count — the quiescence barrier
  /// in wasp_partitioned.cpp votes only on a true zero, and a stale zero
  /// (legal for an acquire load) would unsoundly pass the verdict.
  [[nodiscard]] std::uint64_t in_flight() const {
    return in_flight_.load(std::memory_order_seq_cst);
  }

 private:
  std::vector<CachePadded<verify::atomic<RemoteBatch*>>> heads_;
  verify::atomic<std::uint64_t> in_flight_{0};
};

/// Per-worker outbound side: one open (unpublished) batch per destination
/// fragment, auto-flushed at `flush_threshold` records. Not thread-safe —
/// each worker owns exactly one.
class RemoteSender {
 public:
  RemoteSender(RemoteRelayNetwork& net, std::uint32_t flush_threshold)
      : net_(net),
        threshold_(flush_threshold == 0 ? 1
                   : flush_threshold > RemoteBatch::kCapacity
                       ? RemoteBatch::kCapacity
                       : flush_threshold),
        open_(static_cast<std::size_t>(net.num_fragments()), nullptr) {}

  RemoteSender(const RemoteSender&) = delete;
  RemoteSender& operator=(const RemoteSender&) = delete;

  /// Frees unpublished batches (non-empty only on cancelled runs; a normal
  /// run's terminate path flushes first).
  ~RemoteSender() {
    for (RemoteBatch* b : open_) {
      if (b != nullptr) free_batch(b);
    }
  }

  /// Buffers one record for fragment `dst`; publishes the open batch when it
  /// reaches the flush threshold. Returns true when a batch was published
  /// (callers count obs::CounterId::kRemoteBatches).
  bool send(int dst, VertexId v, Distance d) {
    RemoteBatch*& open = open_[static_cast<std::size_t>(dst)];
    if (open == nullptr) open = new RemoteBatch();
    open->append(v, d);
    if (open->size() < threshold_) return false;
    net_.publish(dst, open);
    open = nullptr;
    return true;
  }

  /// Publishes every non-empty open batch (bucket-boundary / pre-idle
  /// flush). Returns the number of batches published.
  int flush_all() {
    int published = 0;
    const int f_count = net_.num_fragments();
    for (int dst = 0; dst < f_count; ++dst) {
      RemoteBatch*& open = open_[static_cast<std::size_t>(dst)];
      if (open == nullptr || open->size() == 0) continue;
      net_.publish(dst, open);
      open = nullptr;
      ++published;
    }
    return published;
  }

 private:
  RemoteRelayNetwork& net_;
  const std::uint32_t threshold_;
  std::vector<RemoteBatch*> open_;
};

}  // namespace wasp
