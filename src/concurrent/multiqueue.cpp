#include "concurrent/multiqueue.hpp"

#include <algorithm>
#include <mutex>

namespace wasp {

MultiQueue::MultiQueue(const Config& config)
    : config_(config),
      queues_(static_cast<std::size_t>(config.threads) *
              static_cast<std::size_t>(config.c)),
      per_thread_(static_cast<std::size_t>(config.threads)) {
  for (int t = 0; t < config.threads; ++t) {
    auto& me = per_thread_[static_cast<std::size_t>(t)].value;
    me.rng = Xoshiro256(hash_mix(config.seed + static_cast<std::uint64_t>(t)));
    me.insert_buffer.reserve(static_cast<std::size_t>(config.buffer_size));
    me.delete_buffer.reserve(static_cast<std::size_t>(config.buffer_size));
  }
}

void MultiQueue::push(int tid, Distance key, VertexId value) {
  auto& me = per_thread_[static_cast<std::size_t>(tid)].value;
  me.insert_buffer.push_back(Entry{key, value});
  // Statistic only (see size_estimate); relaxed on purpose.
  size_.fetch_add(1, std::memory_order_relaxed);
  if (me.insert_buffer.size() >= static_cast<std::size_t>(config_.buffer_size))
    flush(tid);
}

void MultiQueue::flush(int tid) {
  auto& me = per_thread_[static_cast<std::size_t>(tid)].value;
  if (me.insert_buffer.empty()) return;
  Timer timer;
  const auto qi = static_cast<std::size_t>(me.rng.next_below(queues_.size()));
  InternalQueue& q = queues_[qi].value;
  {
    SpinGuard guard(q.lock);
    WASP_VERIFY_WR(&q.heap);
    for (const Entry& e : me.insert_buffer) q.heap.push(e.key, e.value);
    // Relaxed: top_key is a sampling hint; the heap itself is published by
    // the SpinLock release on unlock.
    q.top_key.store(q.heap.top().key, std::memory_order_relaxed);
  }
  me.insert_buffer.clear();
  me.queue_op_ns += timer.nanoseconds();
}

int MultiQueue::pick_queue_two_choice(PerThread& me) {
  const auto n = queues_.size();
  const auto a = static_cast<std::size_t>(me.rng.next_below(n));
  const auto b = static_cast<std::size_t>(me.rng.next_below(n));
  // Relaxed: two-choice sampling is advisory — a stale key only biases the
  // pick; the queue lock re-validates before anything is popped.
  const Distance ka = queues_[a].value.top_key.load(std::memory_order_relaxed);
  const Distance kb = queues_[b].value.top_key.load(std::memory_order_relaxed);
  return static_cast<int>(ka <= kb ? a : b);
}

bool MultiQueue::refill(int /*tid*/, PerThread& me) {
  Timer timer;
  // Try a bounded number of sampled queues before reporting empty; stale
  // entries make single-sample failures common.
  for (int attempt = 0; attempt < 2 * config_.c * config_.threads + 2; ++attempt) {
    int qi;
    if (me.sticky_left > 0 && me.sticky_queue >= 0) {
      qi = me.sticky_queue;
    } else {
      qi = pick_queue_two_choice(me);
      me.sticky_queue = qi;
      me.sticky_left = config_.stickiness;
    }
    --me.sticky_left;
    InternalQueue& q = queues_[static_cast<std::size_t>(qi)].value;
    // Advisory early-out: a stale non-inf value is re-validated under the
    // lock below; a stale inf just skips a queue this attempt.
    if (q.top_key.load(std::memory_order_relaxed) == kInfDist) {
      me.sticky_left = 0;  // empty queue: re-sample next time
      continue;
    }
    SpinGuard guard(q.lock);
    if (q.heap.empty()) {
      me.sticky_left = 0;
      continue;
    }
    WASP_VERIFY_WR(&q.heap);
    const auto batch = std::min<std::size_t>(
        static_cast<std::size_t>(config_.buffer_size), q.heap.size());
    me.delete_buffer.clear();
    me.delete_cursor = 0;
    for (std::size_t i = 0; i < batch; ++i) {
      const auto e = q.heap.pop();
      me.delete_buffer.push_back(Entry{e.key, e.value});
    }
    // Relaxed hint refresh under the queue lock (see push_flush).
    q.top_key.store(q.heap.empty() ? kInfDist : q.heap.top().key,
                    std::memory_order_relaxed);
    me.queue_op_ns += timer.nanoseconds();
    return true;
  }
  me.queue_op_ns += timer.nanoseconds();
  return false;
}

bool MultiQueue::try_pop(int tid, Distance& key, VertexId& value) {
  auto& me = per_thread_[static_cast<std::size_t>(tid)].value;
  if (me.delete_cursor >= me.delete_buffer.size()) {
    // Make our own pending insertions visible before declaring emptiness.
    flush(tid);
    if (!refill(tid, me)) return false;
  }
  const Entry e = me.delete_buffer[me.delete_cursor++];
  key = e.key;
  value = e.value;
  size_.fetch_sub(1, std::memory_order_relaxed);  // relaxed: stats only
  return true;
}

}  // namespace wasp
