// Lock-free growable Chase-Lev work-stealing deque (Chase & Lev, SPAA'05),
// with the C11 memory-order discipline of Lê, Pop, Cohen & Zappa Nardelli
// (PPoPP'13).
//
// This is Wasp's *current bucket* (paper §4.3): the owner pushes and pops
// chunk pointers at the bottom; thieves steal from the top. Contention only
// arises on the last element and is resolved with CAS. Growth is triggered
// by the owner and never blocks concurrent steals — retired ring buffers are
// kept alive until the deque is destroyed, so a thief holding a stale buffer
// pointer still reads valid memory (its CAS on `top` then fails or wins
// consistently).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "support/chaos.hpp"
#include "support/types.hpp"
#include "verify/checked_atomic.hpp"

namespace wasp {

/// Work-stealing deque of pointers. T must be a pointer type.
template <typename T>
class ChaseLevDeque {
  static_assert(std::is_pointer_v<T>, "ChaseLevDeque stores raw pointers");

 public:
  explicit ChaseLevDeque(std::uint64_t initial_capacity = 64) {
    auto* rb = new Ring(round_up_pow2(initial_capacity));
    // Relaxed: construction precedes any sharing; whatever hands the deque
    // to other threads provides the publication edge.
    buffer_.store(rb, std::memory_order_relaxed);
    retired_.emplace_back(rb);
  }

  ChaseLevDeque(const ChaseLevDeque&) = delete;
  ChaseLevDeque& operator=(const ChaseLevDeque&) = delete;
  ~ChaseLevDeque() = default;

  /// Owner-only: pushes an element at the bottom. Grows the ring if full;
  /// growth copies live elements and does not invalidate in-flight steals.
  void push_bottom(T item) {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_acquire);
    Ring* rb = buffer_.load(std::memory_order_relaxed);
    if (b - t >= static_cast<std::int64_t>(rb->capacity)) {
      rb = grow(rb, t, b);
    }
    rb->put(b, item);
    // Release store (not fence + relaxed store as in Lê et al.): equivalent
    // ordering — the slot write happens-before any thief that observes the
    // new bottom — but visible to TSan, which does not model fences. This is
    // the edge that orders the *payload's* non-atomic fields (e.g. a chunk's
    // intrusive `next`) between owner and thief.
    bottom_.store(b + 1, std::memory_order_release);
  }

  /// Owner-only: pops from the bottom (LIFO). Returns nullptr when empty.
  T pop_bottom() {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
    Ring* rb = buffer_.load(std::memory_order_relaxed);
    bottom_.store(b, std::memory_order_relaxed);
    verify::thread_fence(std::memory_order_seq_cst);
    std::int64_t t = top_.load(std::memory_order_relaxed);
    if (t > b) {
      // Deque was already empty; restore bottom.
      bottom_.store(b + 1, std::memory_order_relaxed);
      return nullptr;
    }
    T item = rb->get(b);
    if (t == b) {
      // Last element: race with thieves via CAS on top.
      WASP_CHAOS_YIELD(chaos::Point::kYieldBeforeCas);
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        item = nullptr;  // a thief got it
      }
      WASP_CHAOS_YIELD(chaos::Point::kYieldAfterCas);
      // Relaxed: restoring bottom after the last-element race publishes
      // nothing — the element's fate was already decided by the CAS on top.
      bottom_.store(b + 1, std::memory_order_relaxed);
    }
    return item;
  }

  /// Thief: steals from the top (FIFO). Returns nullptr when empty or when
  /// it loses a race (callers treat both as "nothing stolen").
  T steal() {
    if (WASP_CHAOS_FAIL(chaos::Point::kStealFail)) return nullptr;
    std::int64_t t = top_.load(std::memory_order_acquire);
    verify::thread_fence(std::memory_order_seq_cst);
    const std::int64_t b = bottom_.load(std::memory_order_acquire);
    if (t >= b) return nullptr;
    Ring* rb = buffer_.load(std::memory_order_consume);
    T item = rb->get(t);
    WASP_CHAOS_YIELD(chaos::Point::kYieldBeforeCas);
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_relaxed)) {
      WASP_CHAOS_YIELD(chaos::Point::kYieldAfterCas);
      return nullptr;
    }
    return item;
  }

  /// Racy size estimate (monitoring / tests only). Relaxed loads: the
  /// answer is stale the moment it is computed; no ordering required.
  [[nodiscard]] std::int64_t size_estimate() const {
    const std::int64_t b = bottom_.load(std::memory_order_relaxed);
    const std::int64_t t = top_.load(std::memory_order_relaxed);
    return b > t ? b - t : 0;
  }

  [[nodiscard]] bool empty_estimate() const { return size_estimate() == 0; }

 private:
  struct Ring {
    explicit Ring(std::uint64_t cap) : capacity(cap), mask(cap - 1),
                                       slots(new verify::atomic<T>[cap]) {
      // Declares the plain capacity/mask/slots-pointer initialization to
      // the race checker: a thief may only reach this ring through the
      // `buffer_` consume load (CLD-da1296), whose release edge (grow's
      // CLD-69c545 store) carries this construction. Weaken either side and
      // the get() below races with this write.
      WASP_VERIFY_WR(this);
    }
    const std::uint64_t capacity;
    const std::uint64_t mask;
    std::unique_ptr<verify::atomic<T>[]> slots;

    // Slot accesses are relaxed: the ordering of the *contents* rides the
    // bottom_/top_ protocol (bottom release store CLD-b192e9, steal's fence +
    // CAS); the slots only need to be atomic to make owner/thief cell
    // overlap defined.
    T get(std::int64_t i) const {
      WASP_VERIFY_RD(this);  // plain mask/slots-pointer read (see ctor)
      return slots[static_cast<std::uint64_t>(i) & mask].load(std::memory_order_relaxed);
    }
    void put(std::int64_t i, T item) {
      WASP_VERIFY_RD(this);  // plain mask/slots-pointer read (see ctor)
      // relaxed: contents ride the bottom_/top_ protocol (see get above)
      slots[static_cast<std::uint64_t>(i) & mask].store(item, std::memory_order_relaxed);
    }
  };

  static std::uint64_t round_up_pow2(std::uint64_t x) {
    std::uint64_t p = 1;
    while (p < x) p <<= 1;
    return p;
  }

  Ring* grow(Ring* old, std::int64_t t, std::int64_t b) {
    auto* bigger = new Ring(old->capacity * 2);
    for (std::int64_t i = t; i < b; ++i) bigger->put(i, old->get(i));
    // Release (CLD-69c545): carries the new ring's construction and the
    // copied slots to the thief's consume load of buffer_ (CLD-da1296).
    buffer_.store(bigger, std::memory_order_release);
    retired_.emplace_back(bigger);  // owner-only container; old stays alive
    return bigger;
  }

  alignas(kCacheLineSize) verify::atomic<std::int64_t> top_{0};
  alignas(kCacheLineSize) verify::atomic<std::int64_t> bottom_{0};
  alignas(kCacheLineSize) verify::atomic<Ring*> buffer_{nullptr};
  std::vector<std::unique_ptr<Ring>> retired_;  // owns all rings ever used
};

}  // namespace wasp
