// Stealing MultiQueue (SMQ) — the relaxed priority scheduler of Postnikova,
// Koval, Nadiradze & Alistarh (PPoPP'22), discussed in the paper's related
// work: each thread owns a *private* d-ary heap (no locks on the hot path)
// plus a small lock-protected *steal buffer* of its smallest extracted
// elements. A thread whose heap and buffer are empty steals a whole buffer
// batch from the better of two random victims.
//
// Included as an extension baseline: it brackets Wasp from the other side of
// the design space (priority-queue-shaped local storage + batched stealing,
// vs Wasp's bucket-shaped storage + priority-aware stealing).
//
// Memory-order map (docs/CONCURRENCY.md): the only load-bearing
// synchronization in this structure is `buffer_lock` — every cross-thread
// access to a steal buffer happens under it, and every unlocked read of
// `buffer_min` or `size_` is advisory (victim sampling, refill gating,
// occupancy monitoring) and re-validated under the lock before anything is
// taken. The mutation tester proved the previous acquire/release/acq_rel
// annotations on those advisory sites unnecessary (no harness could kill
// their weakening, and the re-validation argument shows why), so they are
// relaxed on purpose; do not "fix" them back without a killing schedule.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "concurrent/dary_heap.hpp"
#include "concurrent/spinlock.hpp"
#include "support/chaos.hpp"
#include "support/padded.hpp"
#include "support/random.hpp"
#include "support/types.hpp"
#include "verify/checked_atomic.hpp"

namespace wasp {

class StealingMultiQueue {
 public:
  struct Config {
    int threads = 1;
    int steal_batch = 8;  ///< steal-buffer capacity (b)
    std::uint64_t seed = 1;
  };

  explicit StealingMultiQueue(const Config& config)
      : config_(config), per_thread_(static_cast<std::size_t>(config.threads)) {
    for (int t = 0; t < config.threads; ++t) {
      auto& me = per_thread_[static_cast<std::size_t>(t)].value;
      me.rng = Xoshiro256(hash_mix(config.seed + static_cast<std::uint64_t>(t)));
      me.buffer.reserve(static_cast<std::size_t>(config.steal_batch));
    }
  }

  StealingMultiQueue(const StealingMultiQueue&) = delete;
  StealingMultiQueue& operator=(const StealingMultiQueue&) = delete;

  /// Inserts into the caller's private heap (and tops up its steal buffer —
  /// SMQ refills buffers on push/top occasions so there is always stealable
  /// work while the owner is busy).
  void push(int tid, Distance key, VertexId value) {
    auto& me = per_thread_[static_cast<std::size_t>(tid)].value;
    me.heap.push(key, value);
    // Occupancy statistic only (monitoring + driver idle loops, which
    // re-check under their own busy protocol): relaxed on purpose.
    size_.fetch_add(1, std::memory_order_relaxed);
    maybe_refill_buffer(me);
  }

  /// Pops the smaller of (own heap top, own buffer min); steals a batch from
  /// two-choice victims when both are empty. Returns false when nothing was
  /// found anywhere this attempt.
  bool try_pop(int tid, Distance& key, VertexId& value) {
    auto& me = per_thread_[static_cast<std::size_t>(tid)].value;
    // Fast path: private heap vs own buffer front. Own cell: never stale.
    const Distance buffer_min = me.buffer_min.load(std::memory_order_relaxed);
    if (!me.heap.empty() && me.heap.top().key <= buffer_min) {
      const auto e = me.heap.pop();
      key = e.key;
      value = e.value;
      size_.fetch_sub(1, std::memory_order_relaxed);  // relaxed: stats only
      maybe_refill_buffer(me);
      return true;
    }
    if (buffer_min != kInfDist && pop_own_buffer(me, key, value)) {
      size_.fetch_sub(1, std::memory_order_relaxed);  // relaxed: stats only
      return true;
    }
    if (!me.heap.empty()) {
      const auto e = me.heap.pop();
      key = e.key;
      value = e.value;
      size_.fetch_sub(1, std::memory_order_relaxed);  // relaxed: stats only
      return true;
    }
    return steal_batch(tid, me, key, value);
  }

  [[nodiscard]] std::int64_t size_estimate() const {
    // Relaxed: size_ is an advisory global-emptiness hint; termination has
    // its own protocol in the schedulers.
    return size_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    Distance key;
    VertexId value;
  };

  struct PerThread {
    Xoshiro256 rng{1};
    DaryHeap<Distance, VertexId, 4> heap;  // private: owner-only
    SpinLock buffer_lock;
    /// Ascending; thieves take the lot. Every access is under buffer_lock
    /// (TSA-enforced); buffer_min stays unguarded because its unlocked
    /// reads are the advisory sampling described above.
    std::vector<Entry> buffer WASP_GUARDED_BY(buffer_lock);
    verify::atomic<Distance> buffer_min{kInfDist};
  };

  /// Moves up to `steal_batch` smallest heap elements into the (empty)
  /// steal buffer so thieves have something to take.
  void maybe_refill_buffer(PerThread& me) {
    // Advisory gate: a stale non-inf value skips a refill that the next
    // push/pop occasion retries; a stale inf is re-validated below.
    if (me.buffer_min.load(std::memory_order_relaxed) != kInfDist) return;
    if (me.heap.empty()) return;
    SpinGuard guard(me.buffer_lock);
    if (!me.buffer.empty()) return;  // a thief raced us and left leftovers?
    WASP_VERIFY_WR(&me.buffer);
    const int batch = config_.steal_batch;
    for (int i = 0; i < batch && !me.heap.empty(); ++i) {
      const auto e = me.heap.pop();
      me.buffer.push_back(Entry{e.key, e.value});
    }
    // The buffer contents are published by the unlock (release); this hint
    // is only read unlocked for victim sampling, so relaxed suffices.
    me.buffer_min.store(me.buffer.front().key, std::memory_order_relaxed);
  }

  bool pop_own_buffer(PerThread& me, Distance& key, VertexId& value) {
    SpinGuard guard(me.buffer_lock);
    if (me.buffer.empty()) return false;
    WASP_VERIFY_WR(&me.buffer);
    key = me.buffer.front().key;
    value = me.buffer.front().value;
    me.buffer.erase(me.buffer.begin());
    // Relaxed: buffer_min is a sampling hint; the buffer itself is guarded
    // by buffer_lock, whose unlock publishes the new front.
    me.buffer_min.store(me.buffer.empty() ? kInfDist : me.buffer.front().key,
                        std::memory_order_relaxed);
    return true;
  }

  /// Two-choice batch steal: the victim with the smaller buffer_min loses
  /// its entire buffer to us; we consume one element and keep the rest in
  /// our own heap.
  bool steal_batch(int tid, PerThread& me, Distance& key, VertexId& value) {
    const int p = config_.threads;
    if (p <= 1) return false;
    if (WASP_CHAOS_FAIL(chaos::Point::kStealFail)) return false;
    WASP_CHAOS_YIELD(chaos::Point::kYieldBeforeCas);
    int a = static_cast<int>(me.rng.next_below(static_cast<std::uint64_t>(p - 1)));
    if (a >= tid) ++a;
    int b = static_cast<int>(me.rng.next_below(static_cast<std::uint64_t>(p - 1)));
    if (b >= tid) ++b;
    // Victim sampling is advisory (stale hints cost an extra attempt, never
    // correctness): the lock below re-validates before anything is taken.
    const Distance ka =
        per_thread_[static_cast<std::size_t>(a)].value.buffer_min.load(
            std::memory_order_relaxed);
    const Distance kb =
        per_thread_[static_cast<std::size_t>(b)].value.buffer_min.load(
            std::memory_order_relaxed);
    if (ka == kInfDist && kb == kInfDist) return false;
    PerThread& victim = per_thread_[static_cast<std::size_t>(ka <= kb ? a : b)].value;

    std::vector<Entry> batch;
    {
      SpinGuard guard(victim.buffer_lock);
      if (victim.buffer.empty()) return false;
      WASP_VERIFY_WR(&victim.buffer);
      batch.swap(victim.buffer);
      // Relaxed hint update; the enclosing buffer_lock orders the swap.
      victim.buffer_min.store(kInfDist, std::memory_order_relaxed);
    }
    key = batch.front().key;
    value = batch.front().value;
    size_.fetch_sub(1, std::memory_order_relaxed);  // relaxed: stats only
    for (std::size_t i = 1; i < batch.size(); ++i)
      me.heap.push(batch[i].key, batch[i].value);
    return true;
  }

  Config config_;
  std::vector<CachePadded<PerThread>> per_thread_;
  verify::atomic<std::int64_t> size_{0};
};

}  // namespace wasp
