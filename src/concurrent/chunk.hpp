// Chunks: the unit of batching and of work transfer in Wasp (paper §4.3).
//
// A chunk is a fixed-capacity ring buffer of vertices with
//  * a `priority` field recording the coarsened priority level (bucket
//    index) its vertices belong to,
//  * a `next` pointer so thread-local buckets can be linked lists of chunks,
//  * `range_begin`/`range_end` fields so a chunk can alternatively carry the
//    partial neighborhood of a single high-degree vertex (the neighborhood-
//    decomposition optimization, §4.4).
//
// The capacity is a compile-time template parameter; the paper uses 64 and
// reports Wasp is insensitive to the choice (§5.1) — the sensitivity bench
// verifies that claim with the explicit instantiations in wasp.cpp. `Chunk`
// is the default 64-vertex configuration.
//
// A chunk is only ever accessed by one thread at a time: the owner fills and
// drains it, and ownership transfers wholesale when a chunk is stolen from a
// Chase-Lev deque. Hence no atomics here.
//
// ChunkArena/ChunkPool implement recycling: chunks are carved from shared
// slabs (so they outlive thread-local pools and can migrate between threads)
// and returned to the *current* owner's freelist when drained.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "support/chaos.hpp"
#include "support/types.hpp"
#include "verify/checked_atomic.hpp"

namespace wasp {

/// Priority level value meaning "no work" (used by Wasp's `curr` protocol).
inline constexpr std::uint64_t kInfPriority = ~std::uint64_t{0};

template <std::uint32_t Capacity>
class BasicChunk {
  static_assert(Capacity >= 1, "chunk capacity must be positive");

 public:
  static constexpr std::uint32_t kCapacity = Capacity;

  [[nodiscard]] bool empty() const { return head_ == tail_; }
  [[nodiscard]] bool full() const { return tail_ - head_ == kCapacity; }
  [[nodiscard]] std::uint32_t size() const { return tail_ - head_; }

  /// Appends a vertex. Precondition: !full().
  ///
  /// The WASP_VERIFY annotations (here and below) declare the single-owner
  /// contract to the happens-before checker: whatever protocol hands a chunk
  /// between threads (a Chase-Lev deque, a pool) must carry an hb edge, or
  /// the checker reports the two access sites as a race.
  void push(VertexId v) {
    assert(!full());
    WASP_VERIFY_WR(this);
    slots_[tail_ % kCapacity] = v;
    ++tail_;
  }

  /// Removes and returns the most recently pushed vertex (LIFO: best
  /// locality for the owner). Precondition: !empty().
  VertexId pop() {
    assert(!empty());
    WASP_VERIFY_WR(this);
    --tail_;
    return slots_[tail_ % kCapacity];
  }

  /// Returns the vertex `depth` entries below the LIFO top without removing
  /// it (depth 0 is what the next pop() returns) — the drain loops peek past
  /// the current vertex to prefetch upcoming distance entries and adjacency
  /// offsets. Precondition: depth < size().
  [[nodiscard]] VertexId peek(std::uint32_t depth) const {
    assert(depth < size());
    WASP_VERIFY_RD(this);
    return slots_[(tail_ - 1 - depth) % kCapacity];
  }

  /// Removes and returns the oldest vertex (FIFO end of the ring).
  VertexId pop_front() {
    assert(!empty());
    WASP_VERIFY_WR(this);
    const VertexId v = slots_[head_ % kCapacity];
    ++head_;
    return v;
  }

  /// The priority/range fields are *value-modeled* (verify::plain_load /
  /// plain_store) rather than only race-checked: they are exactly the plain
  /// payload a thief consumes after a steal, so a missing hb edge on the
  /// handoff protocol shows up as a stale level/range value in the
  /// simulation, not just a race verdict.
  [[nodiscard]] std::uint64_t priority() const {
    return verify::plain_load(priority_);
  }
  void set_priority(std::uint64_t p) { verify::plain_store(priority_, p); }

  /// Turns this chunk into a single-vertex neighborhood-range chunk for
  /// edges [begin, end) of v's adjacency.
  void make_range(VertexId v, std::uint32_t begin, std::uint32_t end) {
    assert(empty());
    push(v);
    verify::plain_store(range_begin_, begin);
    verify::plain_store(range_end_, end);
  }

  /// True when the chunk carries a neighborhood sub-range rather than a set
  /// of whole vertices.
  [[nodiscard]] bool is_range() const {
    return verify::plain_load(range_begin_) != verify::plain_load(range_end_);
  }
  [[nodiscard]] std::uint32_t range_begin() const {
    return verify::plain_load(range_begin_);
  }
  [[nodiscard]] std::uint32_t range_end() const {
    return verify::plain_load(range_end_);
  }

  /// Returns the chunk to a pristine state for reuse.
  void reset() {
    WASP_VERIFY_WR(this);
    head_ = tail_ = 0;
    verify::plain_store(range_begin_, std::uint32_t{0});
    verify::plain_store(range_end_, std::uint32_t{0});
    verify::plain_store(priority_, std::uint64_t{0});
    next = nullptr;
  }

  /// Intrusive link used by the thread-local bucket lists.
  BasicChunk* next = nullptr;

 private:
  std::uint32_t head_ = 0;
  std::uint32_t tail_ = 0;
  std::uint32_t range_begin_ = 0;
  std::uint32_t range_end_ = 0;
  std::uint64_t priority_ = 0;
  VertexId slots_[kCapacity];
};

/// The paper's configuration: 64-vertex chunks.
using Chunk = BasicChunk<64>;

/// Shared slab owner. Thread-safe slab carving; slabs live until the arena
/// is destroyed, so chunk pointers stay valid across steals.
template <typename ChunkT>
class BasicChunkArena {
 public:
  /// Carves `count` fresh chunks and returns the first; the block is linked
  /// through ChunkT::next.
  ChunkT* allocate_block(std::uint32_t count) {
    auto slab = std::make_unique<ChunkT[]>(count);
    ChunkT* first = slab.get();
    for (std::uint32_t i = 0; i + 1 < count; ++i) slab[i].next = &slab[i + 1];
    slab[count - 1].next = nullptr;
    std::lock_guard<std::mutex> guard(mutex_);
    slabs_.push_back(std::move(slab));
    return first;
  }

  /// Number of slabs allocated so far (observability / tests).
  [[nodiscard]] std::size_t num_slabs() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return slabs_.size();
  }

 private:
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<ChunkT[]>> slabs_;
};

using ChunkArena = BasicChunkArena<Chunk>;

/// Per-thread freelist over a shared arena. Not thread-safe; one per worker.
template <typename ChunkT>
class BasicChunkPool {
 public:
  explicit BasicChunkPool(BasicChunkArena<ChunkT>& arena,
                          std::uint32_t block_size = 128)
      : arena_(&arena), block_size_(block_size) {}

  /// Returns a pristine chunk. Under chaos, kChunkAllocFail simulates an
  /// exhausted freelist: the pool abandons its (drained) free chunks to the
  /// arena and carves a fresh slab, exercising the allocation path and
  /// cross-thread chunk migration.
  ChunkT* get() {
    if (free_ == nullptr || WASP_CHAOS_FAIL(chaos::Point::kChunkAllocFail))
      free_ = arena_->allocate_block(block_size_);
    ChunkT* c = free_;
    free_ = c->next;
    c->reset();
    return c;
  }

  /// Recycles a drained chunk into this thread's freelist. The chunk may
  /// have been allocated by any thread (stolen chunks are recycled by the
  /// thief, per §4.3).
  void put(ChunkT* c) {
    c->next = free_;
    free_ = c;
  }

 private:
  BasicChunkArena<ChunkT>* arena_;
  ChunkT* free_ = nullptr;
  std::uint32_t block_size_;
};

using ChunkPool = BasicChunkPool<Chunk>;

}  // namespace wasp
