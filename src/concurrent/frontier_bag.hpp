// Cooperative frontier bag: the "lazy-batched" frontier store used by the
// Δ*-stepping / ρ-stepping baselines (Dong, Gu, Sun & Zhang, SPAA'21 use a
// parallel hash-bag; this is the same contract on a flat layout).
//
// Threads append to private segments with no synchronization. Between
// barriers, one thread computes offsets and every thread copies its own
// segment into a shared dense array. All methods are safe under that
// discipline only (documented per method).
#pragma once

#include <cstdint>
#include <vector>

#include "support/padded.hpp"
#include "support/types.hpp"
#include "verify/checked_atomic.hpp"

namespace wasp {

class FrontierBag {
 public:
  explicit FrontierBag(int threads)
      : locals_(static_cast<std::size_t>(threads)),
        offsets_(static_cast<std::size_t>(threads) + 1, 0) {}

  /// Appends to the caller's private segment. Concurrent across distinct
  /// tids. The WASP_VERIFY annotations encode the phase discipline: a
  /// segment is racy unless the barrier protocol orders inserts against the
  /// offset scan and the copy-out.
  void insert(int tid, VertexId v) {
    WASP_VERIFY_WR(&locals_[static_cast<std::size_t>(tid)].value);
    locals_[static_cast<std::size_t>(tid)].value.push_back(v);
  }

  /// Single-threaded (between barriers): computes per-thread offsets and
  /// returns the total element count.
  std::size_t compute_offsets() {
    std::size_t total = 0;
    for (std::size_t t = 0; t < locals_.size(); ++t) {
      WASP_VERIFY_RD(&locals_[t].value);
      offsets_[t] = total;
      total += locals_[t].value.size();
    }
    offsets_[locals_.size()] = total;
    return total;
  }

  /// Cooperative (after compute_offsets + barrier): copies the caller's
  /// segment into `out` at its offset and clears the segment. `out` must
  /// have room for compute_offsets() elements.
  void copy_out_and_clear(int tid, VertexId* out) {
    auto& local = locals_[static_cast<std::size_t>(tid)].value;
    WASP_VERIFY_WR(&local);
    VertexId* dst = out + offsets_[static_cast<std::size_t>(tid)];
    for (std::size_t i = 0; i < local.size(); ++i) dst[i] = local[i];
    local.clear();
  }

  /// Size of the caller's private segment.
  [[nodiscard]] std::size_t local_size(int tid) const {
    return locals_[static_cast<std::size_t>(tid)].value.size();
  }

  /// Direct access to a private segment (sampling for the ρ threshold).
  [[nodiscard]] const std::vector<VertexId>& local(int tid) const {
    return locals_[static_cast<std::size_t>(tid)].value;
  }

 private:
  std::vector<CachePadded<std::vector<VertexId>>> locals_;
  std::vector<std::size_t> offsets_;
};

}  // namespace wasp
