#include "graph/compressed.hpp"

#include "concurrent/dary_heap.hpp"

namespace wasp {

CompressedGraph CompressedGraph::compress(const Graph& g) {
  CompressedGraph cg;
  const VertexId n = g.num_vertices();
  cg.num_edges_ = g.num_edges();
  cg.undirected_ = g.is_undirected();
  cg.offsets_.resize(static_cast<std::size_t>(n) + 1);
  cg.degrees_.resize(n);
  cg.bytes_.reserve(static_cast<std::size_t>(g.num_edges()) * 3);

  for (VertexId v = 0; v < n; ++v) {
    cg.offsets_[v] = cg.bytes_.size();
    cg.degrees_[v] = g.out_degree(v);
    std::uint64_t prev = 0;
    bool first = true;
    for (const WEdge& e : g.out_neighbors(v)) {
      if (first) {
        encode_varint(zigzag(static_cast<std::int64_t>(e.dst) -
                             static_cast<std::int64_t>(v)),
                      cg.bytes_);
        first = false;
      } else {
        encode_varint(e.dst - prev, cg.bytes_);
      }
      prev = e.dst;
      encode_varint(e.w, cg.bytes_);
    }
  }
  cg.offsets_[n] = cg.bytes_.size();
  return cg;
}

Graph CompressedGraph::decompress() const {
  const VertexId n = num_vertices();
  std::vector<EdgeIndex> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (VertexId v = 0; v < n; ++v) offsets[v + 1] = offsets[v] + degrees_[v];
  AdjacencyVector adjacency(num_edges_);
  for (VertexId v = 0; v < n; ++v) {
    EdgeIndex cursor = offsets[v];
    for_each_out(v, [&](VertexId dst, Weight w) {
      adjacency[cursor++] = WEdge{dst, w};
    });
  }
  return Graph::from_csr(std::move(offsets), std::move(adjacency), undirected_);
}

std::vector<Distance> dijkstra_compressed(const CompressedGraph& g,
                                          VertexId source) {
  std::vector<Distance> dist(g.num_vertices(), kInfDist);
  DaryHeap<Distance, VertexId, 4> heap;
  dist[source] = 0;
  heap.push(0, source);
  while (!heap.empty()) {
    const auto [d, u] = heap.pop();
    if (d != dist[u]) continue;
    g.for_each_out(u, [&](VertexId v, Weight w) {
      const Distance nd = d + w;
      if (nd < dist[v]) {
        dist[v] = nd;
        heap.push(nd, v);
      }
    });
  }
  return dist;
}

}  // namespace wasp
