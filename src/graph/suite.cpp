#include "graph/suite.hpp"

#include <cmath>
#include <stdexcept>

#include "graph/algorithms.hpp"
#include "graph/generators.hpp"
#include "graph/weights.hpp"

namespace wasp::suite {

namespace {

// Default scale-1 sizes. Chosen so the whole suite builds and every SSSP
// implementation finishes in well under a second per trial on one core,
// while keeping each class's structural signature (diameter, skew, leaf
// fraction) intact.
constexpr std::uint32_t kGridSide = 320;       // road: 102k vertices, diam ~640
constexpr std::uint32_t kChains = 64;          // kmer: 64 chains x 2048
constexpr std::uint32_t kChainLen = 2048;
constexpr VertexId kStarN = 1 << 17;           // mawi: 131k vertices
constexpr int kRmatScale = 16;                 // 65k vertices
constexpr EdgeIndex kRmatEdges = 1 << 20;      // ~1M generated edges

std::uint32_t scaled_u32(std::uint32_t base, double scale) {
  return static_cast<std::uint32_t>(std::llround(base * std::sqrt(scale)));
}

int scaled_log2(int base, double scale) {
  // scale multiplies the vertex count, so add log2(scale) to the exponent.
  return base + static_cast<int>(std::llround(std::log2(std::max(scale, 0.05))));
}

}  // namespace

const char* abbr(GraphClass cls) {
  switch (cls) {
    case GraphClass::kFriendster: return "FT";
    case GraphClass::kKmer: return "KV";
    case GraphClass::kKron: return "KR";
    case GraphClass::kMawi: return "MW";
    case GraphClass::kMoliere: return "ML";
    case GraphClass::kOrkut: return "OK";
    case GraphClass::kRoadEu: return "EU";
    case GraphClass::kRoadUsa: return "USA";
    case GraphClass::kWebSk: return "SK";
    case GraphClass::kTwitter: return "TW";
    case GraphClass::kUk2007: return "UK7";
    case GraphClass::kUkUnion: return "UK6";
    case GraphClass::kUrand: return "UR";
    case GraphClass::kCircuit: return "CR";
    case GraphClass::kDelaunay: return "DL";
    case GraphClass::kHypercube: return "HC";
    case GraphClass::kKktPower: return "KP";
    case GraphClass::kNlpKkt: return "NL";
    case GraphClass::kRandReg: return "RR";
    case GraphClass::kSpielman: return "SM";
    case GraphClass::kStokes: return "ST";
    case GraphClass::kWebbase: return "WB";
  }
  return "?";
}

const char* describe(GraphClass cls) {
  switch (cls) {
    case GraphClass::kFriendster: return "Friendster-like social RMAT (directed)";
    case GraphClass::kKmer: return "Kmer-like chain forest (undirected)";
    case GraphClass::kKron: return "Kron-like RMAT (undirected)";
    case GraphClass::kMawi: return "Mawi-like star hub + leaves (undirected)";
    case GraphClass::kMoliere: return "Moliere-like dense network (undirected)";
    case GraphClass::kOrkut: return "Orkut-like preferential attachment (undirected)";
    case GraphClass::kRoadEu: return "Road-EU-like grid (undirected)";
    case GraphClass::kRoadUsa: return "Road-USA-like grid (undirected)";
    case GraphClass::kWebSk: return "sk-2005-like web RMAT (directed)";
    case GraphClass::kTwitter: return "Twitter-like social RMAT (directed)";
    case GraphClass::kUk2007: return "uk-2007-like web RMAT (undirected)";
    case GraphClass::kUkUnion: return "uk-union-like web RMAT (directed)";
    case GraphClass::kUrand: return "Urand-like Erdős–Rényi (undirected)";
    case GraphClass::kCircuit: return "Circuit5M-like small world";
    case GraphClass::kDelaunay: return "Delaunay-like mesh";
    case GraphClass::kHypercube: return "Hypercube";
    case GraphClass::kKktPower: return "Kkt-power-like small world";
    case GraphClass::kNlpKkt: return "Nlpkkt-like mesh";
    case GraphClass::kRandReg: return "Random-regular";
    case GraphClass::kSpielman: return "Spielman-like grid Laplacian";
    case GraphClass::kStokes: return "Stokes-like regular graph";
    case GraphClass::kWebbase: return "Webbase-like web RMAT (directed)";
  }
  return "?";
}

std::vector<GraphClass> main_suite() {
  return {GraphClass::kFriendster, GraphClass::kKmer,   GraphClass::kKron,
          GraphClass::kMawi,       GraphClass::kMoliere, GraphClass::kOrkut,
          GraphClass::kRoadEu,     GraphClass::kRoadUsa, GraphClass::kWebSk,
          GraphClass::kTwitter,    GraphClass::kUk2007,  GraphClass::kUkUnion,
          GraphClass::kUrand};
}

std::vector<GraphClass> core_suite() {
  return {GraphClass::kRoadUsa, GraphClass::kKmer, GraphClass::kMawi,
          GraphClass::kTwitter, GraphClass::kWebSk, GraphClass::kUrand,
          GraphClass::kOrkut};
}

std::vector<GraphClass> appendix_suite() {
  return {GraphClass::kCircuit, GraphClass::kDelaunay, GraphClass::kHypercube,
          GraphClass::kKktPower, GraphClass::kNlpKkt,  GraphClass::kRandReg,
          GraphClass::kSpielman, GraphClass::kStokes,  GraphClass::kWebbase};
}

GraphClass parse_abbr(const std::string& text) {
  std::string up;
  for (char c : text) up.push_back(static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
  for (const auto suites = {main_suite(), appendix_suite()}; const auto& s : suites)
    for (GraphClass cls : s)
      if (up == abbr(cls)) return cls;
  throw std::invalid_argument("unknown graph abbreviation: " + text);
}

Workload make(GraphClass cls, double scale, std::uint64_t seed) {
  const WeightScheme gapw = WeightScheme::gap();
  Graph g;
  switch (cls) {
    case GraphClass::kFriendster:
      g = gen::rmat(scaled_log2(kRmatScale, scale), static_cast<EdgeIndex>(kRmatEdges * scale),
                    0.57, 0.19, 0.19, gapw, seed, /*undirected=*/false);
      break;
    case GraphClass::kKmer:
      g = gen::chain_forest(scaled_u32(kChains, scale), scaled_u32(kChainLen, scale), gapw, seed);
      break;
    case GraphClass::kKron:
      g = gen::rmat(scaled_log2(kRmatScale, scale), static_cast<EdgeIndex>(kRmatEdges * scale),
                    0.57, 0.19, 0.19, gapw, seed, /*undirected=*/true);
      break;
    case GraphClass::kMawi:
      // Hub adjacent to 93% of vertices, ~1% of spokes branch (the rest are
      // degree-1 leaves) — the structure §5.1 highlights.
      g = gen::star_hub(static_cast<VertexId>(kStarN * scale), 0.93, 0.01, gapw, seed);
      break;
    case GraphClass::kMoliere:
      // Dense: average degree ~48 like Moliere's 220 scaled down.
      g = gen::rmat(scaled_log2(kRmatScale - 2, scale),
                    static_cast<EdgeIndex>(kRmatEdges * scale), 0.45, 0.22, 0.22,
                    gapw, seed, /*undirected=*/true);
      break;
    case GraphClass::kOrkut:
      g = gen::preferential_attachment(static_cast<VertexId>((1 << 15) * scale), 16, gapw, seed);
      break;
    case GraphClass::kRoadEu:
      g = gen::grid(scaled_u32(kGridSide * 2, scale), scaled_u32(kGridSide / 2, scale), gapw, seed);
      break;
    case GraphClass::kRoadUsa:
      g = gen::grid(scaled_u32(kGridSide, scale), scaled_u32(kGridSide, scale), gapw, seed);
      break;
    case GraphClass::kWebSk:
      g = gen::rmat(scaled_log2(kRmatScale, scale), static_cast<EdgeIndex>(kRmatEdges * scale),
                    0.65, 0.15, 0.15, gapw, seed, /*undirected=*/false);
      break;
    case GraphClass::kTwitter:
      g = gen::rmat(scaled_log2(kRmatScale, scale), static_cast<EdgeIndex>(kRmatEdges * scale),
                    0.57, 0.19, 0.19, gapw, seed ^ 0x7157ULL, /*undirected=*/false);
      break;
    case GraphClass::kUk2007:
      g = gen::rmat(scaled_log2(kRmatScale, scale), static_cast<EdgeIndex>(kRmatEdges * scale),
                    0.65, 0.15, 0.15, gapw, seed ^ 0x117ULL, /*undirected=*/true);
      break;
    case GraphClass::kUkUnion:
      g = gen::rmat(scaled_log2(kRmatScale, scale), static_cast<EdgeIndex>(kRmatEdges * scale),
                    0.62, 0.17, 0.17, gapw, seed ^ 0x116ULL, /*undirected=*/false);
      break;
    case GraphClass::kUrand:
      g = gen::erdos_renyi(static_cast<VertexId>((1 << 16) * scale), 16.0, gapw, seed);
      break;
    default: {
      // Appendix classes use the reviewers' weighting scheme: N(1, sqrt(V/E))
      // truncated to positives (Appendix A).
      const auto tn = [](VertexId v, EdgeIndex e) {
        return WeightScheme::truncated_normal(
            1.0, std::sqrt(static_cast<double>(v) / static_cast<double>(std::max<EdgeIndex>(e, 1))));
      };
      switch (cls) {
        case GraphClass::kCircuit:
          g = gen::small_world(static_cast<VertexId>((1 << 16) * scale), 5, 0.05,
                               tn(1 << 16, (1 << 16) * 10), seed);
          break;
        case GraphClass::kDelaunay:
          g = gen::mesh(scaled_u32(kGridSide, scale), scaled_u32(kGridSide, scale),
                        tn(kGridSide * kGridSide, kGridSide * kGridSide * 8ULL), seed);
          break;
        case GraphClass::kHypercube:
          g = gen::hypercube(scaled_log2(16, scale), tn(1 << 16, (1 << 16) * 16ULL), seed);
          break;
        case GraphClass::kKktPower:
          g = gen::small_world(static_cast<VertexId>((1 << 16) * scale), 3, 0.01,
                               tn(1 << 16, (1 << 16) * 6ULL), seed);
          break;
        case GraphClass::kNlpKkt:
          g = gen::mesh(scaled_u32(kGridSide * 2, scale), scaled_u32(kGridSide / 2, scale),
                        tn(kGridSide * kGridSide, kGridSide * kGridSide * 8ULL), seed);
          break;
        case GraphClass::kRandReg:
          g = gen::random_regular(static_cast<VertexId>((1 << 16) * scale), 16,
                                  tn(1 << 16, (1 << 16) * 16ULL), seed);
          break;
        case GraphClass::kSpielman:
          g = gen::grid(scaled_u32(kGridSide * 4, scale), scaled_u32(kGridSide / 4, scale),
                        tn(kGridSide * kGridSide, kGridSide * kGridSide * 4ULL), seed);
          break;
        case GraphClass::kStokes:
          g = gen::random_regular(static_cast<VertexId>((1 << 15) * scale), 30,
                                  tn(1 << 15, (1 << 15) * 30ULL), seed);
          break;
        case GraphClass::kWebbase:
          g = gen::rmat(scaled_log2(kRmatScale, scale), static_cast<EdgeIndex>(kRmatEdges * scale),
                        0.65, 0.15, 0.15, tn(1 << kRmatScale, kRmatEdges), seed ^ 0x3eb0ULL,
                        /*undirected=*/false);
          break;
        default:
          throw std::logic_error("suite::make: unhandled class");
      }
    }
  }
  Workload w;
  w.cls = cls;
  w.name = abbr(cls);
  w.graph = std::move(g);
  w.source = pick_source_in_largest_component(w.graph, seed ^ 0x50CEULL);
  return w;
}

}  // namespace wasp::suite
