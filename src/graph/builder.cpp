#include "graph/builder.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "graph/algorithms.hpp"
#include "graph/compressed.hpp"
#include "graph/delta.hpp"
#include "graph/io.hpp"
#include "support/errors.hpp"

namespace wasp {

namespace {

/// Edge list → sorted CSR; the former body of Graph::from_edges.
Graph build_from_edges(VertexId num_vertices, const std::vector<Edge>& edges,
                       bool undirected) {
  const std::size_t n = num_vertices;
  std::vector<EdgeIndex> offsets(n + 1, 0);

  // Pass 1: count out-degrees (both directions for undirected graphs).
  for (const Edge& e : edges) {
    if (e.src == e.dst) continue;  // drop self-loops
    if (e.src >= num_vertices || e.dst >= num_vertices)
      throw std::out_of_range("GraphBuilder: vertex id out of range");
    ++offsets[e.src + 1];
    if (undirected) ++offsets[e.dst + 1];
  }
  for (std::size_t v = 0; v < n; ++v) offsets[v + 1] += offsets[v];

  // Pass 2: scatter into the adjacency array.
  AdjacencyVector adjacency(offsets[n]);
  std::vector<EdgeIndex> cursor(offsets.begin(), offsets.end() - 1);
  for (const Edge& e : edges) {
    if (e.src == e.dst) continue;
    adjacency[cursor[e.src]++] = WEdge{e.dst, e.w};
    if (undirected) adjacency[cursor[e.dst]++] = WEdge{e.src, e.w};
  }

  // Sort each adjacency list by destination: deterministic layout, better
  // locality, and required by the bidirectional-relaxation tests.
  for (std::size_t v = 0; v < n; ++v) {
    std::sort(adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[v]),
              adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]),
              [](const WEdge& a, const WEdge& b) {
                return a.dst < b.dst || (a.dst == b.dst && a.w < b.w);
              });
  }

  return Graph::from_csr(std::move(offsets), std::move(adjacency), undirected);
}

}  // namespace

GraphBuilder& GraphBuilder::stage(Source s) {
  if (source_ != Source::kNone)
    throw InvalidGraphError(
        "GraphBuilder: a source is already staged (one source per build)");
  source_ = s;
  return *this;
}

void GraphBuilder::reset() { *this = GraphBuilder(); }

GraphBuilder& GraphBuilder::edges(VertexId num_vertices,
                                  std::vector<Edge> edges) {
  stage(Source::kEdges);
  num_vertices_ = num_vertices;
  edges_ = std::move(edges);
  return *this;
}

GraphBuilder& GraphBuilder::csr(std::vector<EdgeIndex> offsets,
                                AdjacencyVector adjacency) {
  stage(Source::kCsr);
  offsets_ = std::move(offsets);
  adjacency_ = std::move(adjacency);
  return *this;
}

GraphBuilder& GraphBuilder::graph(Graph g) {
  stage(Source::kGraph);
  graph_ = std::move(g);
  return *this;
}

GraphBuilder& GraphBuilder::edge_list_file(std::string path) {
  stage(Source::kEdgeListFile);
  path_ = std::move(path);
  return *this;
}

GraphBuilder& GraphBuilder::edge_list_stream(std::istream& in) {
  stage(Source::kEdgeListStream);
  stream_ = &in;
  return *this;
}

GraphBuilder& GraphBuilder::matrix_market_file(std::string path,
                                               double real_scale) {
  stage(Source::kMatrixMarketFile);
  path_ = std::move(path);
  real_scale_ = real_scale;
  return *this;
}

GraphBuilder& GraphBuilder::matrix_market_stream(std::istream& in,
                                                 double real_scale) {
  stage(Source::kMatrixMarketStream);
  stream_ = &in;
  real_scale_ = real_scale;
  return *this;
}

GraphBuilder& GraphBuilder::binary_file(std::string path) {
  stage(Source::kBinaryFile);
  path_ = std::move(path);
  return *this;
}

GraphBuilder& GraphBuilder::binary_stream(std::istream& in) {
  stage(Source::kBinaryStream);
  stream_ = &in;
  return *this;
}

GraphBuilder& GraphBuilder::gap_wsg_file(std::string path) {
  stage(Source::kGapWsgFile);
  path_ = std::move(path);
  return *this;
}

GraphBuilder& GraphBuilder::gap_wsg_stream(std::istream& in) {
  stage(Source::kGapWsgStream);
  stream_ = &in;
  return *this;
}

GraphBuilder& GraphBuilder::transpose_of(const Graph& g) {
  stage(Source::kTranspose);
  borrowed_ = &g;
  return *this;
}

GraphBuilder& GraphBuilder::decompress(const CompressedGraph& g) {
  stage(Source::kDecompress);
  compressed_ = &g;
  return *this;
}

GraphBuilder& GraphBuilder::undirected(bool undirected) {
  undirected_ = undirected;
  undirected_set_ = true;
  return *this;
}

Graph GraphBuilder::build() {
  const Source source = source_;
  const bool wants_direction = source == Source::kEdges ||
                               source == Source::kCsr ||
                               source == Source::kEdgeListFile ||
                               source == Source::kEdgeListStream;
  if (source == Source::kNone)
    throw InvalidGraphError("GraphBuilder::build: no source staged");
  if (undirected_set_ && !wants_direction)
    throw InvalidGraphError(
        "GraphBuilder::build: undirected() conflicts with a source that "
        "carries its own directedness");

  Graph result;
  switch (source) {
    case Source::kNone:
      break;  // unreachable: handled above
    case Source::kEdges:
      result = build_from_edges(num_vertices_, edges_, undirected_);
      break;
    case Source::kCsr:
      result = Graph::from_csr(std::move(offsets_), std::move(adjacency_),
                               undirected_);
      break;
    case Source::kGraph:
      result = std::move(graph_);
      break;
    case Source::kEdgeListFile:
      result = io::read_edge_list_file(path_, undirected_);
      break;
    case Source::kEdgeListStream:
      result = io::read_edge_list(*stream_, undirected_);
      break;
    case Source::kMatrixMarketFile:
      result = io::read_matrix_market_file(path_, real_scale_);
      break;
    case Source::kMatrixMarketStream:
      result = io::read_matrix_market(*stream_, real_scale_);
      break;
    case Source::kBinaryFile:
      result = io::read_binary_file(path_);
      break;
    case Source::kBinaryStream:
      result = io::read_binary(*stream_);
      break;
    case Source::kGapWsgFile:
      result = io::read_gap_wsg_file(path_);
      break;
    case Source::kGapWsgStream:
      result = io::read_gap_wsg(*stream_);
      break;
    case Source::kTranspose:
      result = transpose(*borrowed_);
      break;
    case Source::kDecompress:
      result = compressed_->decompress();
      break;
  }
  reset();
  return result;
}

VersionedGraph GraphBuilder::build_versioned() {
  return VersionedGraph(build());
}

// Thin deprecated shim: the edge-list construction logic moved into
// GraphBuilder; this keeps the (very many) existing call sites working.
Graph Graph::from_edges(VertexId num_vertices, const std::vector<Edge>& edges,
                        bool undirected) {
  return GraphBuilder()
      .edges(num_vertices, edges)
      .undirected(undirected)
      .build();
}

}  // namespace wasp
