// Weighted graph in Compressed Sparse Row form.
//
// This is the storage every SSSP implementation in the repository operates
// on: 32-bit vertex ids and weights (matching the paper's methodology), a
// 64-bit offset array so graphs with more than 2^32 directed edges are
// representable, and an `undirected` flag — undirected graphs store each
// edge in both directions, exactly like the paper's datasets ("every edge is
// counted twice in undirected graphs").
#pragma once

#include <cassert>
#include <new>
#include <span>
#include <vector>

#include "support/types.hpp"

namespace wasp {

/// Minimal cache-line-aligned allocator for the CSR adjacency storage. The
/// relaxation loops stream through adjacency blocks and prefetch a fixed
/// number of records ahead (see support/prefetch.hpp); starting the array on
/// a line boundary makes "8 interleaved WEdge records per 64-byte line"
/// exact, so a block prefetch never straddles an extra line.
template <typename T>
struct CacheAlignedAllocator {
  using value_type = T;
  static_assert(kCacheLineSize >= alignof(T));

  CacheAlignedAllocator() = default;
  template <typename U>
  constexpr CacheAlignedAllocator(const CacheAlignedAllocator<U>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{kCacheLineSize}));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    ::operator delete(p, n * sizeof(T), std::align_val_t{kCacheLineSize});
  }

  template <typename U>
  friend constexpr bool operator==(const CacheAlignedAllocator&,
                                   const CacheAlignedAllocator<U>&) noexcept {
    return true;
  }
};

/// A directed edge with an explicit source, used by builders and generators.
struct Edge {
  VertexId src;
  VertexId dst;
  Weight w;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Destination + weight pair as stored in the CSR adjacency array. The
/// interleaved record is the unit of the memory-traffic contract: relaxing
/// an edge reads target and weight from the same (half) cache line, where
/// parallel targets[]/weights[] arrays would cost two lines per edge.
struct WEdge {
  VertexId dst;
  Weight w;

  friend bool operator==(const WEdge&, const WEdge&) = default;
};
static_assert(sizeof(WEdge) == 8, "WEdge must stay two packed 32-bit words");

/// The CSR adjacency container: interleaved {dst, w} records, cache-line
/// aligned. Builders (generators, I/O, decompression, transpose) produce one
/// of these and hand it to Graph::from_csr.
using AdjacencyVector = std::vector<WEdge, CacheAlignedAllocator<WEdge>>;

/// Immutable CSR graph.
class Graph {
 public:
  Graph() = default;

  /// Builds a CSR graph from an edge list.
  ///
  /// Self-loops are dropped (the paper's edge set excludes u == v). When
  /// `undirected` is true every input edge {u,v} is stored as both (u,v) and
  /// (v,u) with the same weight; num_edges() then counts both directions.
  ///
  /// Deprecated shim: delegates to GraphBuilder (graph/builder.hpp), the one
  /// front door for construction — prefer
  /// GraphBuilder().edges(n, edges).undirected(u).build() in new code (it can
  /// move the edge vector and can finish with build_versioned()).
  static Graph from_edges(VertexId num_vertices, const std::vector<Edge>& edges,
                          bool undirected);

  /// Builds directly from CSR arrays (used by I/O and transpose). Validation
  /// lives here; GraphBuilder's csr() source routes through it.
  static Graph from_csr(std::vector<EdgeIndex> offsets, AdjacencyVector adjacency,
                        bool undirected);

  [[nodiscard]] VertexId num_vertices() const {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }

  /// Number of stored (directed) edges.
  [[nodiscard]] EdgeIndex num_edges() const {
    return offsets_.empty() ? 0 : offsets_.back();
  }

  [[nodiscard]] bool is_undirected() const { return undirected_; }

  [[nodiscard]] std::uint32_t out_degree(VertexId u) const {
    assert(u < num_vertices());
    return static_cast<std::uint32_t>(offsets_[u + 1] - offsets_[u]);
  }

  /// Outgoing adjacency of u as a contiguous span.
  [[nodiscard]] std::span<const WEdge> out_neighbors(VertexId u) const {
    assert(u < num_vertices());
    return {adjacency_.data() + offsets_[u],
            static_cast<std::size_t>(offsets_[u + 1] - offsets_[u])};
  }

  /// A sub-range [begin, end) of u's adjacency — the unit of work created by
  /// Wasp's neighborhood decomposition (paper §4.4).
  [[nodiscard]] std::span<const WEdge> out_neighbors(VertexId u, std::uint32_t begin,
                                                     std::uint32_t end) const {
    assert(begin <= end && end <= out_degree(u));
    return {adjacency_.data() + offsets_[u] + begin,
            static_cast<std::size_t>(end - begin)};
  }

  /// Raw CSR arrays, for serialization.
  [[nodiscard]] const std::vector<EdgeIndex>& offsets() const { return offsets_; }
  [[nodiscard]] const AdjacencyVector& adjacency() const { return adjacency_; }

  /// Typed access to the interleaved edge records for loops that index the
  /// adjacency directly (the prefetched relaxation pipelines):
  /// edge_data()[edge_offset(u) + j] is u's j-th outgoing edge.
  [[nodiscard]] const WEdge* edge_data() const { return adjacency_.data(); }
  [[nodiscard]] EdgeIndex edge_offset(VertexId u) const {
    assert(u < num_vertices());
    return offsets_[u];
  }
  /// Raw offsets pointer; prefetching offsets_data() + v warms the degree
  /// lookup of a vertex about to be drained from a chunk.
  [[nodiscard]] const EdgeIndex* offsets_data() const { return offsets_.data(); }

  /// Largest edge weight in the graph (0 for an edgeless graph). Useful for
  /// choosing delta sweeps.
  [[nodiscard]] Weight max_weight() const;

 private:
  // VersionedGraph (graph/delta.hpp) patches edge weights in place — the one
  // sanctioned mutation of a built CSR; it owns the version/journal bookkeeping
  // that makes that safe.
  friend class VersionedGraph;

  std::vector<EdgeIndex> offsets_;  // size n+1
  AdjacencyVector adjacency_;       // size num_edges()
  bool undirected_ = false;
};

}  // namespace wasp
