// GraphBuilder: the one front door for graph construction.
//
// The repo grew five independent construction styles — Graph::from_edges,
// the gen:: generators, the io:: loaders, transpose(), and
// CompressedGraph::decompress() — each returning a Graph through its own
// path. Dynamic graphs (graph/delta.hpp) need version/overlay plumbing on
// every one of those paths, so construction now converges here: pick exactly
// one source, optionally set options, and finish with either
//
//   build()           -> Graph           (the immutable CSR, as before)
//   build_versioned() -> VersionedGraph  (mutable, versioned, journaled)
//
// The old entry points remain as thin shims that delegate to this builder
// (Graph::from_edges) or feed it (generators via graph(), loaders via the
// *_file/*_stream sources), so no call site is forced to migrate at once —
// but new code should come through here.
//
// A builder is single-shot: build() consumes the staged source; reusing the
// object without staging a new source throws InvalidGraphError.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "support/types.hpp"

namespace wasp {

class CompressedGraph;
class VersionedGraph;

class GraphBuilder {
 public:
  GraphBuilder() = default;

  // --- sources (stage exactly one) ----------------------------------------

  /// Edge list → CSR: drops self-loops, symmetrizes when undirected(), sorts
  /// each adjacency list by (dst, w). This is the logic that used to live in
  /// Graph::from_edges.
  GraphBuilder& edges(VertexId num_vertices, std::vector<Edge> edges);

  /// Pre-built CSR arrays (validated by build(), exactly like
  /// Graph::from_csr).
  GraphBuilder& csr(std::vector<EdgeIndex> offsets, AdjacencyVector adjacency);

  /// Adopts an already-built Graph — the composition point for the gen::
  /// generators and any other producer: GraphBuilder().graph(gen::grid(...))
  /// .build_versioned().
  GraphBuilder& graph(Graph g);

  /// io:: loaders. The stream overloads keep a pointer to the stream, which
  /// must stay alive until build().
  GraphBuilder& edge_list_file(std::string path);
  GraphBuilder& edge_list_stream(std::istream& in);
  GraphBuilder& matrix_market_file(std::string path, double real_scale = 1.0);
  GraphBuilder& matrix_market_stream(std::istream& in, double real_scale = 1.0);
  GraphBuilder& binary_file(std::string path);
  GraphBuilder& binary_stream(std::istream& in);
  GraphBuilder& gap_wsg_file(std::string path);
  GraphBuilder& gap_wsg_stream(std::istream& in);

  /// Transpose of an existing graph (in-edges become out-edges). `g` must
  /// stay alive until build().
  GraphBuilder& transpose_of(const Graph& g);

  /// Decompression of a byte-compressed graph. `g` must stay alive until
  /// build().
  GraphBuilder& decompress(const CompressedGraph& g);

  // --- options -------------------------------------------------------------

  /// Marks the result undirected. Valid for the edges/csr/edge-list sources
  /// (which do not carry directedness themselves); build() throws for the
  /// self-describing sources (binary, wsg, matrix market, graph(), transpose,
  /// decompress).
  GraphBuilder& undirected(bool undirected = true);

  // --- terminals -----------------------------------------------------------

  /// Builds the immutable CSR graph. Throws InvalidGraphError when no source
  /// is staged, on option/source conflicts, and on whatever the underlying
  /// source validation throws. Consumes the staged source.
  [[nodiscard]] Graph build();

  /// build(), wrapped as a version-1 VersionedGraph.
  [[nodiscard]] VersionedGraph build_versioned();

 private:
  enum class Source {
    kNone,
    kEdges,
    kCsr,
    kGraph,
    kEdgeListFile,
    kEdgeListStream,
    kMatrixMarketFile,
    kMatrixMarketStream,
    kBinaryFile,
    kBinaryStream,
    kGapWsgFile,
    kGapWsgStream,
    kTranspose,
    kDecompress,
  };

  GraphBuilder& stage(Source s);
  void reset();

  Source source_ = Source::kNone;
  bool undirected_ = false;
  bool undirected_set_ = false;

  VertexId num_vertices_ = 0;
  std::vector<Edge> edges_;
  std::vector<EdgeIndex> offsets_;
  AdjacencyVector adjacency_;
  Graph graph_;
  std::string path_;
  std::istream* stream_ = nullptr;
  double real_scale_ = 1.0;
  const Graph* borrowed_ = nullptr;
  const CompressedGraph* compressed_ = nullptr;
};

}  // namespace wasp
