#include "graph/delta.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <sstream>
#include <utility>

#include "graph/builder.hpp"
#include "support/errors.hpp"

namespace wasp {

namespace {

/// Arcs a logical update expands to: (u,v) always, plus (v,u) on undirected
/// graphs (every edge is stored in both directions, as in from_edges).
struct ArcPair {
  VertexId a_src, a_dst;
  bool mirrored;
  VertexId b_src, b_dst;
};

ArcPair expand(const EdgeUpdate& op, bool undirected) {
  return {op.src, op.dst, undirected, op.dst, op.src};
}

}  // namespace

std::uint64_t VersionedGraph::Uid::next() {
  // lint:allow(raw-atomic): pure id generator outside the verify-modelled
  // engine; no data is published through it.
  static std::atomic<std::uint64_t> counter{0};
  // relaxed: uniqueness only — each caller needs a distinct value, nothing
  // else is ordered against the increment.
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

VersionedGraph::VersionedGraph(Graph base)
    : flat_(std::move(base)),
      overlay_index_(flat_.num_vertices(), kNoOverlay),
      live_edges_(flat_.num_edges()) {}

void VersionedGraph::validate_batch(const GraphDelta& delta) const {
  // Dry run: check every op against the graph state *plus the batch's own
  // staged structural changes*, so apply() either applies the whole batch or
  // throws with the graph untouched.
  std::map<std::pair<VertexId, VertexId>, std::int64_t> staged;
  const VertexId n = num_vertices();
  auto arc_count = [&](VertexId u, VertexId v) {
    std::int64_t count = 0;
    for (const WEdge& e : out_neighbors(u))
      if (e.dst == v) ++count;
    auto it = staged.find({u, v});
    if (it != staged.end()) count += it->second;
    return count;
  };
  for (const EdgeUpdate& op : delta.ops()) {
    if (op.src >= n || op.dst >= n) {
      std::ostringstream os;
      os << "VersionedGraph::apply: edge (" << op.src << ", " << op.dst
         << ") out of range [0, " << n << ")";
      throw InvalidGraphError(os.str());
    }
    if (op.src == op.dst) {
      std::ostringstream os;
      os << "VersionedGraph::apply: self-loop on vertex " << op.src
         << " (the edge set excludes u == v, as in Graph::from_edges)";
      throw InvalidGraphError(os.str());
    }
    switch (op.op) {
      case EdgeUpdate::Op::kSetWeight:
      case EdgeUpdate::Op::kErase: {
        if (arc_count(op.src, op.dst) <= 0) {
          std::ostringstream os;
          os << "VersionedGraph::apply: "
             << (op.op == EdgeUpdate::Op::kErase ? "erase" : "set_weight")
             << " on missing edge (" << op.src << ", " << op.dst << ")";
          throw InvalidGraphError(os.str());
        }
        if (op.op == EdgeUpdate::Op::kErase) {
          const std::int64_t gone = arc_count(op.src, op.dst);
          staged[{op.src, op.dst}] -= gone;
          if (is_undirected()) staged[{op.dst, op.src}] -= gone;
        }
        break;
      }
      case EdgeUpdate::Op::kInsert:
        staged[{op.src, op.dst}] += 1;
        if (is_undirected()) staged[{op.dst, op.src}] += 1;
        break;
    }
  }
}

std::vector<WEdge>& VersionedGraph::overlay_for(VertexId u) {
  if (overlay_index_[u] == kNoOverlay) {
    overlay_index_[u] = static_cast<std::uint32_t>(overlay_.size());
    const std::span<const WEdge> base = flat_.out_neighbors(u);
    overlay_.emplace_back(base.begin(), base.end());
    ++overlay_live_;
  }
  return overlay_[overlay_index_[u]];
}

std::size_t VersionedGraph::apply_arc(EdgeUpdate::Op op, VertexId u,
                                      VertexId v, Weight w) {
  switch (op) {
    case EdgeUpdate::Op::kSetWeight: {
      // In place: weight-only changes never dirty the overlay. Every
      // parallel (u, v) arc collapses to the one new weight, so the sorted-
      // by-(dst, w) layout from_edges produced stays sorted.
      std::size_t touched = 0;
      WEdge* edges;
      std::size_t count;
      if (overlay_index_[u] != kNoOverlay) {
        auto& list = overlay_[overlay_index_[u]];
        edges = list.data();
        count = list.size();
      } else {
        edges = flat_.adjacency_.data() + flat_.offsets_[u];
        count = static_cast<std::size_t>(flat_.out_degree(u));
      }
      for (std::size_t i = 0; i < count; ++i) {
        if (edges[i].dst == v && edges[i].w != w) {
          effects_.push_back({u, v, edges[i].w, w, true, true});
          edges[i].w = w;
          ++touched;
        }
      }
      return touched;
    }
    case EdgeUpdate::Op::kInsert: {
      std::vector<WEdge>& list = overlay_for(u);
      const WEdge rec{v, w};
      // Sorted insertion keeps the overlaid list in the (dst, w) order a
      // from_edges rebuild would produce, so compaction round-trips exactly.
      auto pos = std::lower_bound(
          list.begin(), list.end(), rec, [](const WEdge& a, const WEdge& b) {
            return a.dst < b.dst || (a.dst == b.dst && a.w < b.w);
          });
      list.insert(pos, rec);
      effects_.push_back({u, v, 0, w, false, true});
      ++live_edges_;
      return 1;
    }
    case EdgeUpdate::Op::kErase: {
      std::vector<WEdge>& list = overlay_for(u);
      std::size_t touched = 0;
      for (auto it = list.begin(); it != list.end();) {
        if (it->dst == v) {
          effects_.push_back({u, v, it->w, 0, true, false});
          it = list.erase(it);
          ++touched;
          --live_edges_;
        } else {
          ++it;
        }
      }
      return touched;
    }
  }
  return 0;
}

std::uint64_t VersionedGraph::apply(const GraphDelta& delta) {
  if (delta.empty()) return version_;  // no-op: no bump, no journal entry
  validate_batch(delta);

  std::size_t touched = 0;
  try {
    for (const EdgeUpdate& op : delta.ops()) {
      const ArcPair arcs = expand(op, is_undirected());
      touched += apply_arc(op.op, arcs.a_src, arcs.a_dst, op.w);
      if (arcs.mirrored)
        touched += apply_arc(op.op, arcs.b_src, arcs.b_dst, op.w);
    }
  } catch (...) {
    // Validation already passed, so only a resource failure (bad_alloc from
    // overlay or journal growth) lands here — with the batch half-applied.
    // Bump the version and raise the journal floor past every older
    // binding: a warm consumer must never mistake the mutated arcs for its
    // bound version, and with the journal gone it is forced to a full
    // solve against the graph as it now is.
    ++version_;
    journal_floor_ = version_;
    effects_.clear();
    batch_ends_.clear();
    throw;
  }
  effects_applied_ += touched;
  ++version_;
  batch_ends_.emplace_back(version_, effects_.size());
  trim_journal();
  return version_;
}

void VersionedGraph::compact() {
  if (!dirty()) return;
  const VertexId n = num_vertices();
  std::vector<EdgeIndex> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (VertexId u = 0; u < n; ++u)
    offsets[u + 1] = offsets[u] + out_neighbors(u).size();
  AdjacencyVector adjacency(offsets[n]);
  for (VertexId u = 0; u < n; ++u) {
    const std::span<const WEdge> list = out_neighbors(u);
    std::copy(list.begin(), list.end(), adjacency.begin() +
              static_cast<std::ptrdiff_t>(offsets[u]));
  }
  // Through the one construction front door (GraphBuilder), so the flat
  // rebuild revalidates exactly like every other producer.
  flat_ = GraphBuilder()
              .csr(std::move(offsets), std::move(adjacency))
              .undirected(is_undirected())
              .build();
  overlay_.clear();
  std::fill(overlay_index_.begin(), overlay_index_.end(), kNoOverlay);
  overlay_live_ = 0;
  ++compactions_;
}

VersionedGraph::JournalView VersionedGraph::journal_since(
    std::uint64_t since) const {
  JournalView view;
  if (since > version_ || since < journal_floor_) return view;  // ok = false
  view.ok = true;
  if (since == version_) return view;  // nothing newer; empty span
  // First batch with version > since: its effects start where the previous
  // batch ended.
  std::size_t start = 0;
  for (const auto& [version, end] : batch_ends_) {
    if (version > since) break;
    start = end;
  }
  view.effects = {effects_.data() + start, effects_.size() - start};
  return view;
}

void VersionedGraph::trim_journal() {
  if (effects_.size() <= journal_limit_) return;
  // Drop whole batches from the front until the remainder fits. A single
  // batch larger than the cap is dropped too — the floor then rises to the
  // current version and only catch-up from HEAD stays possible.
  std::size_t drop = 0;
  while (drop < batch_ends_.size() &&
         effects_.size() - (drop == 0 ? 0 : batch_ends_[drop - 1].second) >
             journal_limit_) {
    ++drop;
  }
  if (drop == 0) return;
  const std::size_t drop_effects = batch_ends_[drop - 1].second;
  journal_floor_ = batch_ends_[drop - 1].first;
  effects_.erase(effects_.begin(),
                 effects_.begin() + static_cast<std::ptrdiff_t>(drop_effects));
  batch_ends_.erase(batch_ends_.begin(),
                    batch_ends_.begin() + static_cast<std::ptrdiff_t>(drop));
  for (auto& [version, end] : batch_ends_) end -= drop_effects;
}

}  // namespace wasp
