#include "graph/contraction.hpp"

#include "graph/builder.hpp"

#include <stdexcept>

namespace wasp {

PendantContraction PendantContraction::contract(const Graph& g, VertexId keep) {
  if (!g.is_undirected())
    throw std::invalid_argument(
        "PendantContraction: only undirected graphs have well-defined "
        "pendant trees");
  const VertexId n = g.num_vertices();
  PendantContraction pc;
  pc.in_core_.assign(n, 1);

  // Effective degrees shrink as neighbours are eliminated; a classic
  // peeling: seed the worklist with degree-1 vertices and cascade.
  // Multi-edges to the same neighbour count individually, so a vertex
  // joined to the core by two parallel edges is (conservatively) kept.
  std::vector<std::uint32_t> degree(n);
  for (VertexId v = 0; v < n; ++v) degree[v] = g.out_degree(v);

  std::vector<VertexId> worklist;
  for (VertexId v = 0; v < n; ++v)
    if (degree[v] == 1 && v != keep) worklist.push_back(v);

  while (!worklist.empty()) {
    const VertexId v = worklist.back();
    worklist.pop_back();
    if (pc.in_core_[v] == 0 || degree[v] != 1) continue;
    // Find the single surviving neighbour.
    VertexId parent = kInvalidVertex;
    Weight w = 0;
    for (const WEdge& e : g.out_neighbors(v)) {
      if (pc.in_core_[e.dst] != 0) {
        parent = e.dst;
        w = e.w;
        break;
      }
    }
    if (parent == kInvalidVertex) continue;  // defensive; cannot happen
    pc.in_core_[v] = 0;
    pc.order_.push_back(Eliminated{v, parent, w});
    if (--degree[parent] == 1 && parent != keep) worklist.push_back(parent);
  }

  // Rebuild the core CSR: edges with both endpoints surviving.
  std::vector<Edge> core_edges;
  core_edges.reserve(static_cast<std::size_t>(g.num_edges() / 2));
  for (VertexId u = 0; u < n; ++u) {
    if (pc.in_core_[u] == 0) continue;
    for (const WEdge& e : g.out_neighbors(u)) {
      if (e.dst > u || pc.in_core_[e.dst] == 0) continue;
      // emit each undirected edge once (u > dst side)
      core_edges.push_back(Edge{u, e.dst, e.w});
    }
  }
  // Handle u < dst pairs missed above: the loop emits when dst < u only, so
  // pairs with u < dst are emitted from the other endpoint. Self-pairs are
  // impossible (no self-loops).
  pc.core_ = GraphBuilder()
                 .edges(n, std::move(core_edges))
                 .undirected(true)
                 .build();
  return pc;
}

void PendantContraction::expand(std::vector<Distance>& dist) const {
  // Reverse elimination order: a vertex's parent was eliminated later (or is
  // in the core), so its distance is already final.
  for (auto it = order_.rbegin(); it != order_.rend(); ++it) {
    dist[it->v] = dist[it->parent] == kInfDist ? kInfDist
                                               : dist[it->parent] + it->w;
  }
}

}  // namespace wasp
