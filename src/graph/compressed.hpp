// Byte-compressed CSR adjacency (GBBS-style varint delta encoding).
//
// The paper's motivation notes that shared-memory machines "through
// compression techniques accommodate most publicly available real-world
// graphs" (citing GBBS). This module provides that substrate: adjacency
// lists stored as zig-zag varint deltas (first destination relative to the
// source vertex, subsequent destinations as gaps — lists are sorted), with
// weights varint-encoded inline.
//
// Typical footprint on our generated suites is 40-60% of the raw 8-byte
// WEdge array. Iteration is via a callback to keep the decoder tight.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "support/types.hpp"

namespace wasp {

class CompressedGraph {
 public:
  /// Compresses an existing CSR graph (adjacency lists must be sorted by
  /// destination, which Graph::from_edges guarantees).
  static CompressedGraph compress(const Graph& g);

  [[nodiscard]] VertexId num_vertices() const {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }
  [[nodiscard]] EdgeIndex num_edges() const { return num_edges_; }
  [[nodiscard]] bool is_undirected() const { return undirected_; }

  [[nodiscard]] std::uint32_t out_degree(VertexId v) const {
    return degrees_[v];
  }

  /// Invokes fn(dst, weight) for every out-edge of v, in ascending dst.
  template <typename Fn>
  void for_each_out(VertexId v, Fn&& fn) const {
    const std::uint8_t* p = bytes_.data() + offsets_[v];
    const std::uint32_t degree = degrees_[v];
    std::uint64_t prev = 0;
    for (std::uint32_t i = 0; i < degree; ++i) {
      if (i == 0) {
        // First destination: zig-zag delta against the source id.
        const std::uint64_t zz = decode_varint(p);
        const std::int64_t delta = unzigzag(zz);
        prev = static_cast<std::uint64_t>(static_cast<std::int64_t>(v) + delta);
      } else {
        prev += decode_varint(p);  // sorted: gaps are non-negative
      }
      const auto w = static_cast<Weight>(decode_varint(p));
      fn(static_cast<VertexId>(prev), w);
    }
  }

  /// Reconstructs the uncompressed graph (exact round-trip).
  [[nodiscard]] Graph decompress() const;

  /// Compressed adjacency bytes (excludes the offset/degree arrays).
  [[nodiscard]] std::size_t adjacency_bytes() const { return bytes_.size(); }

  /// Total footprint including offsets and degrees.
  [[nodiscard]] std::size_t byte_size() const {
    return bytes_.size() + offsets_.size() * sizeof(std::uint64_t) +
           degrees_.size() * sizeof(std::uint32_t);
  }

  /// Raw adjacency bytes of the uncompressed equivalent, for ratio reports.
  [[nodiscard]] std::size_t uncompressed_bytes() const {
    return static_cast<std::size_t>(num_edges_) * sizeof(WEdge) +
           offsets_.size() * sizeof(EdgeIndex);
  }

 private:
  static std::uint64_t zigzag(std::int64_t x) {
    return (static_cast<std::uint64_t>(x) << 1) ^
           static_cast<std::uint64_t>(x >> 63);
  }
  static std::int64_t unzigzag(std::uint64_t z) {
    return static_cast<std::int64_t>(z >> 1) ^ -static_cast<std::int64_t>(z & 1);
  }
  static void encode_varint(std::uint64_t x, std::vector<std::uint8_t>& out) {
    while (x >= 0x80) {
      out.push_back(static_cast<std::uint8_t>(x) | 0x80);
      x >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(x));
  }
  static std::uint64_t decode_varint(const std::uint8_t*& p) {
    std::uint64_t x = 0;
    int shift = 0;
    for (;;) {
      const std::uint8_t byte = *p++;
      x |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
      if ((byte & 0x80) == 0) return x;
      shift += 7;
    }
  }

  std::vector<std::uint64_t> offsets_;   // byte offset per vertex (+ end)
  std::vector<std::uint32_t> degrees_;
  std::vector<std::uint8_t> bytes_;
  EdgeIndex num_edges_ = 0;
  bool undirected_ = false;
};

/// Sequential Dijkstra directly over the compressed adjacency — demonstrates
/// that algorithms can consume the compressed form without decompressing.
std::vector<Distance> dijkstra_compressed(const CompressedGraph& g,
                                          VertexId source);

}  // namespace wasp
