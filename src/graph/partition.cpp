#include "graph/partition.hpp"

#include <algorithm>
#include <cassert>

#include "support/thread_team.hpp"

namespace wasp {

namespace {

/// Fills fragment `frag` from the global CSR: rebased offsets, adjacency
/// slice, boundary bitmap, cut-edge count. Runs on the worker chosen for
/// first-touch placement (or on the calling thread in serial builds).
void fill_fragment(const Graph& g, GraphPartition::Fragment& frag) {
  const std::vector<EdgeIndex>& offsets = g.offsets();
  const VertexId len = frag.num_vertices();
  const EdgeIndex edge_begin = len == 0 ? 0 : offsets[frag.begin];
  const EdgeIndex edge_end = len == 0 ? 0 : offsets[frag.end];
  const EdgeIndex local_edges = edge_end - edge_begin;

  frag.offsets.resize(static_cast<std::size_t>(len) + 1);
  frag.offsets[0] = 0;
  for (VertexId v = 0; v < len; ++v) {
    frag.offsets[static_cast<std::size_t>(v) + 1] =
        offsets[frag.begin + v + 1] - edge_begin;
  }

  frag.adjacency.resize(static_cast<std::size_t>(local_edges));
  const WEdge* global_edges = g.edge_data();
  std::copy(global_edges + edge_begin, global_edges + edge_end,
            frag.adjacency.data());

  frag.boundary.assign(static_cast<std::size_t>(len), 0);
  frag.cut_edges = 0;
  for (VertexId v = 0; v < len; ++v) {
    const EdgeIndex lo = frag.offsets[v];
    const EdgeIndex hi = frag.offsets[static_cast<std::size_t>(v) + 1];
    for (EdgeIndex e = lo; e < hi; ++e) {
      const VertexId dst = frag.adjacency[static_cast<std::size_t>(e)].dst;
      if (dst < frag.begin || dst >= frag.end) {
        frag.boundary[v] = 1;
        ++frag.cut_edges;
      }
    }
  }
}

}  // namespace

GraphPartition GraphPartition::build(const Graph& g, const NumaTopology& topo,
                                     int num_fragments, ThreadTeam* team) {
  const VertexId n = g.num_vertices();
  const EdgeIndex m = g.num_edges();

  int want = num_fragments > 0 ? num_fragments : topo.num_nodes();
  want = std::max(want, 1);
  if (n > 0) want = std::min(want, static_cast<int>(std::min<VertexId>(n, 1u << 16)));
  const int f_count = want;

  GraphPartition part;
  part.num_vertices_ = n;
  part.starts_.resize(static_cast<std::size_t>(f_count) + 1);
  part.starts_[0] = 0;
  part.starts_[static_cast<std::size_t>(f_count)] = n;

  // Edge-balanced contiguous split: boundary f is the first vertex whose
  // cumulative edge count reaches m * f / F. Monotonicity of offsets makes
  // the starts non-decreasing; vertex-count split is the m == 0 fallback.
  const std::vector<EdgeIndex>& offsets = g.offsets();
  for (int f = 1; f < f_count; ++f) {
    if (m == 0 || n == 0) {
      part.starts_[static_cast<std::size_t>(f)] = static_cast<VertexId>(
          (static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(f)) /
          static_cast<std::uint64_t>(f_count));
    } else {
      const EdgeIndex target =
          (m * static_cast<EdgeIndex>(f)) / static_cast<EdgeIndex>(f_count);
      const auto it = std::lower_bound(offsets.begin(), offsets.end() - 1, target);
      part.starts_[static_cast<std::size_t>(f)] =
          static_cast<VertexId>(it - offsets.begin());
    }
    // Keep starts monotone even for degenerate degree distributions (one
    // vertex owning most edges); empty fragments are legal.
    part.starts_[static_cast<std::size_t>(f)] =
        std::max(part.starts_[static_cast<std::size_t>(f)],
                 part.starts_[static_cast<std::size_t>(f) - 1]);
  }

  part.fragments_.resize(static_cast<std::size_t>(f_count));
  const int nodes = std::max(topo.num_nodes(), 1);
  for (int f = 0; f < f_count; ++f) {
    Fragment& frag = part.fragments_[static_cast<std::size_t>(f)];
    frag.index = f;
    frag.node = f % nodes;
    frag.begin = part.starts_[static_cast<std::size_t>(f)];
    frag.end = part.starts_[static_cast<std::size_t>(f) + 1];
  }

  if (team != nullptr && team->size() > 1) {
    // First-touch placement: worker (f mod p) allocates and writes fragment
    // f's arrays, so with round-robin pinning the pages land on the node
    // that fragment's workers run on. Workers touch disjoint fragments; the
    // team join publishes everything to the caller.
    ThreadTeam& t = *team;
    const int p = t.size();
    t.run([&](int tid) {
      for (int f = tid; f < f_count; f += p) {
        fill_fragment(g, part.fragments_[static_cast<std::size_t>(f)]);
      }
    });
  } else {
    for (int f = 0; f < f_count; ++f) {
      fill_fragment(g, part.fragments_[static_cast<std::size_t>(f)]);
    }
  }

  part.cut_edges_ = 0;
  for (const Fragment& frag : part.fragments_) part.cut_edges_ += frag.cut_edges;
  return part;
}

int GraphPartition::owner_of(VertexId v) const {
  assert(v < num_vertices_);
  // upper_bound over starts_[1..F] gives the first range start strictly
  // greater than v; its predecessor index is the owning fragment.
  const auto it = std::upper_bound(starts_.begin() + 1, starts_.end(), v);
  return static_cast<int>(it - starts_.begin()) - 1;
}

}  // namespace wasp
