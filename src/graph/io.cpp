#include "graph/io.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "graph/algorithms.hpp"
#include "graph/builder.hpp"
#include "support/errors.hpp"

namespace wasp::io {

namespace {

constexpr char kMagic[4] = {'W', 'S', 'P', 'G'};
constexpr std::uint32_t kVersion = 1;

// Header fields claiming more payload than this many bytes are rejected as
// corrupt rather than attempted: a truncated or garbage header must fail
// with a precise message, not an allocation of petabytes.
constexpr std::uint64_t kMaxPayloadBytes = 1ULL << 44;  // 16 TiB

[[noreturn]] void parse_error(const std::string& what) {
  throw GraphFormatError("graph I/O: " + what);
}

/// Reads exactly `bytes` at logical stream position `offset`, reporting
/// expected-vs-actual byte counts on short reads.
void read_exact(std::istream& in, char* dst, std::uint64_t bytes,
                std::uint64_t offset, const char* what) {
  in.read(dst, static_cast<std::streamsize>(bytes));
  const std::uint64_t got =
      in ? bytes : static_cast<std::uint64_t>(std::max<std::streamsize>(
                       in.gcount(), 0));
  if (got != bytes) {
    std::ostringstream os;
    os << "truncated " << what << " at byte offset " << offset << ": expected "
       << bytes << " bytes, got " << got;
    parse_error(os.str());
  }
}

std::ifstream open_in(const std::string& path, std::ios::openmode mode) {
  std::ifstream in(path, mode);
  if (!in) parse_error("cannot open " + path);
  return in;
}

std::ofstream open_out(const std::string& path, std::ios::openmode mode) {
  std::ofstream out(path, mode);
  if (!out) parse_error("cannot open " + path + " for writing");
  return out;
}

}  // namespace

void write_edge_list(const Graph& g, std::ostream& out) {
  out << "# wasp edge list: " << g.num_vertices() << " vertices, "
      << g.num_edges() << " directed edges, "
      << (g.is_undirected() ? "undirected" : "directed") << "\n";
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    for (const WEdge& e : g.out_neighbors(u)) {
      // Undirected graphs store both directions; emit each edge once.
      if (g.is_undirected() && e.dst < u) continue;
      out << u << ' ' << e.dst << ' ' << e.w << '\n';
    }
  }
}

void write_edge_list_file(const Graph& g, const std::string& path) {
  auto out = open_out(path, std::ios::out);
  write_edge_list(g, out);
}

Graph read_edge_list(std::istream& in, bool undirected) {
  std::vector<Edge> edges;
  VertexId max_vertex = 0;
  std::string line;
  std::uint64_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    // istream happily wraps negative text into unsigned values; reject the
    // sign before it can alias a huge id or weight.
    if (line.find('-') != std::string::npos) {
      std::ostringstream os;
      os << "line " << lineno << ": negative value in edge line: " << line;
      parse_error(os.str());
    }
    std::istringstream ls(line);
    std::uint64_t u = 0;
    std::uint64_t v = 0;
    std::uint64_t w = 1;
    if (!(ls >> u >> v)) {
      std::ostringstream os;
      os << "line " << lineno << ": malformed edge line: " << line;
      parse_error(os.str());
    }
    ls >> w;  // optional third column
    if (u > kInvalidVertex - 1 || v > kInvalidVertex - 1) {
      std::ostringstream os;
      os << "line " << lineno << ": vertex id exceeds 32 bits: " << line;
      parse_error(os.str());
    }
    if (w > std::numeric_limits<Weight>::max()) {
      std::ostringstream os;
      os << "line " << lineno << ": weight exceeds 32 bits: " << line;
      parse_error(os.str());
    }
    edges.push_back({static_cast<VertexId>(u), static_cast<VertexId>(v),
                     static_cast<Weight>(w)});
    max_vertex = std::max({max_vertex, static_cast<VertexId>(u),
                           static_cast<VertexId>(v)});
  }
  const VertexId n = edges.empty() ? 0 : max_vertex + 1;
  return GraphBuilder().edges(n, std::move(edges)).undirected(undirected).build();
}

Graph read_edge_list_file(const std::string& path, bool undirected) {
  auto in = open_in(path, std::ios::in);
  return read_edge_list(in, undirected);
}

Graph read_matrix_market(std::istream& in, double real_scale) {
  std::string line;
  if (!std::getline(in, line)) parse_error("empty Matrix Market stream");
  if (line.rfind("%%MatrixMarket", 0) != 0)
    parse_error("missing %%MatrixMarket banner");
  std::istringstream banner(line);
  std::string tag, object, format, field, symmetry;
  banner >> tag >> object >> format >> field >> symmetry;
  if (object != "matrix" || format != "coordinate")
    parse_error("only coordinate matrices are supported");
  const bool pattern = field == "pattern";
  const bool real = field == "real" || field == "double";
  const bool symmetric = symmetry == "symmetric";

  // Skip comments; first non-comment line is "rows cols nnz".
  do {
    if (!std::getline(in, line)) parse_error("truncated header");
  } while (!line.empty() && line[0] == '%');
  std::istringstream sizes(line);
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  std::uint64_t nnz = 0;
  if (!(sizes >> rows >> cols >> nnz)) parse_error("malformed size line");
  const std::uint64_t n64 = std::max(rows, cols);
  if (n64 > kInvalidVertex) parse_error("matrix too large for 32-bit ids");

  std::vector<Edge> edges;
  // Trust nnz only as a hint: a corrupt size line must not trigger a huge
  // allocation before the (truncation-checked) entry loop catches it.
  edges.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(nnz, 1u << 20)));
  for (std::uint64_t i = 0; i < nnz; ++i) {
    do {
      if (!std::getline(in, line)) parse_error("truncated entries");
    } while (line.empty() || line[0] == '%');
    std::istringstream es(line);
    std::uint64_t r = 0;
    std::uint64_t c = 0;
    if (!(es >> r >> c)) parse_error("malformed entry: " + line);
    if (r == 0 || c == 0) parse_error("Matrix Market indices are 1-based");
    if (r > rows || c > cols) {
      std::ostringstream os;
      os << "entry " << (i + 1) << " of " << nnz << " out of range (" << r
         << ", " << c << ") for a " << rows << "x" << cols
         << " matrix: " << line;
      parse_error(os.str());
    }
    Weight w = 1;
    if (!pattern) {
      double value = 1.0;
      if (!(es >> value)) parse_error("missing value: " + line);
      if (!real && value < 0.0)
        parse_error("negative weight (SSSP requires w >= 0): " + line);
      if (real) {
        const double scaled = std::round(std::abs(value) * real_scale);
        w = scaled < 1.0 ? Weight{1} : static_cast<Weight>(scaled);
      } else {
        const double a = std::abs(value);
        w = a < 1.0 ? Weight{1} : static_cast<Weight>(a);
      }
    }
    edges.push_back({static_cast<VertexId>(r - 1), static_cast<VertexId>(c - 1), w});
  }
  return GraphBuilder()
      .edges(static_cast<VertexId>(n64), std::move(edges))
      .undirected(symmetric)
      .build();
}

Graph read_matrix_market_file(const std::string& path, double real_scale) {
  auto in = open_in(path, std::ios::in);
  return read_matrix_market(in, real_scale);
}

void write_binary(const Graph& g, std::ostream& out) {
  out.write(kMagic, sizeof(kMagic));
  const std::uint32_t version = kVersion;
  const std::uint32_t undirected = g.is_undirected() ? 1 : 0;
  const std::uint64_t n = g.num_vertices();
  const std::uint64_t m = g.num_edges();
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  out.write(reinterpret_cast<const char*>(&undirected), sizeof(undirected));
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(&m), sizeof(m));
  out.write(reinterpret_cast<const char*>(g.offsets().data()),
            static_cast<std::streamsize>(g.offsets().size() * sizeof(EdgeIndex)));
  out.write(reinterpret_cast<const char*>(g.adjacency().data()),
            static_cast<std::streamsize>(g.adjacency().size() * sizeof(WEdge)));
  if (!out) parse_error("binary write failed");
}

void write_binary_file(const Graph& g, const std::string& path) {
  auto out = open_out(path, std::ios::out | std::ios::binary);
  write_binary(g, out);
}

Graph read_binary(std::istream& in) {
  char magic[4];
  read_exact(in, magic, sizeof(magic), 0, "magic");
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0)
    parse_error("bad magic (not a wasp binary graph)");
  std::uint32_t version = 0;
  std::uint32_t undirected = 0;
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  read_exact(in, reinterpret_cast<char*>(&version), sizeof(version), 4,
             "version field");
  read_exact(in, reinterpret_cast<char*>(&undirected), sizeof(undirected), 8,
             "undirected flag");
  read_exact(in, reinterpret_cast<char*>(&n), sizeof(n), 12, "vertex count");
  read_exact(in, reinterpret_cast<char*>(&m), sizeof(m), 20, "edge count");
  if (version != kVersion) {
    std::ostringstream os;
    os << "unsupported version " << version << " (expected " << kVersion << ")";
    parse_error(os.str());
  }
  if (undirected > 1) parse_error("undirected flag must be 0 or 1");
  if (n > kInvalidVertex) {
    std::ostringstream os;
    os << "header claims " << n << " vertices, exceeding the 32-bit id limit "
       << kInvalidVertex;
    parse_error(os.str());
  }
  if ((n + 1) * sizeof(EdgeIndex) > kMaxPayloadBytes ||
      m * sizeof(WEdge) > kMaxPayloadBytes) {
    std::ostringstream os;
    os << "oversized header: n=" << n << ", m=" << m
       << " would require more than " << kMaxPayloadBytes
       << " payload bytes; header is corrupt";
    parse_error(os.str());
  }
  std::vector<EdgeIndex> offsets(n + 1);
  AdjacencyVector adjacency(m);
  const std::uint64_t offsets_bytes = offsets.size() * sizeof(EdgeIndex);
  read_exact(in, reinterpret_cast<char*>(offsets.data()), offsets_bytes, 28,
             "offset array");
  read_exact(in, reinterpret_cast<char*>(adjacency.data()),
             adjacency.size() * sizeof(WEdge), 28 + offsets_bytes,
             "adjacency array");
  return Graph::from_csr(std::move(offsets), std::move(adjacency),
                         undirected != 0);
}

Graph read_binary_file(const std::string& path) {
  auto in = open_in(path, std::ios::in | std::ios::binary);
  return read_binary(in);
}

void write_gap_wsg(const Graph& g, std::ostream& out) {
  const bool directed = !g.is_undirected();
  const std::int64_t m = static_cast<std::int64_t>(g.num_edges());
  const std::int64_t n = static_cast<std::int64_t>(g.num_vertices());
  out.write(reinterpret_cast<const char*>(&directed), sizeof(directed));
  out.write(reinterpret_cast<const char*>(&m), sizeof(m));
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));

  const auto write_csr = [&out](const Graph& graph) {
    // Offsets are int64 in GAP; ours already are.
    static_assert(sizeof(EdgeIndex) == sizeof(std::int64_t));
    out.write(reinterpret_cast<const char*>(graph.offsets().data()),
              static_cast<std::streamsize>(graph.offsets().size() *
                                           sizeof(EdgeIndex)));
    // WEdge is {int32 dst, int32 w} — GAP's NodeWeight layout.
    out.write(reinterpret_cast<const char*>(graph.adjacency().data()),
              static_cast<std::streamsize>(graph.adjacency().size() *
                                           sizeof(WEdge)));
  };
  write_csr(g);
  if (directed) write_csr(transpose(g));
  if (!out) parse_error("wsg write failed");
}

void write_gap_wsg_file(const Graph& g, const std::string& path) {
  auto out = open_out(path, std::ios::out | std::ios::binary);
  write_gap_wsg(g, out);
}

Graph read_gap_wsg(std::istream& in) {
  bool directed = false;
  std::int64_t m = 0;
  std::int64_t n = 0;
  read_exact(in, reinterpret_cast<char*>(&directed), sizeof(directed), 0,
             "wsg directed flag");
  read_exact(in, reinterpret_cast<char*>(&m), sizeof(m), 1, "wsg edge count");
  read_exact(in, reinterpret_cast<char*>(&n), sizeof(n), 9, "wsg vertex count");
  if (m < 0 || n < 0 || n > static_cast<std::int64_t>(kInvalidVertex)) {
    std::ostringstream os;
    os << "bad wsg header: m=" << m << ", n=" << n
       << " (negative or exceeding the 32-bit id limit)";
    parse_error(os.str());
  }
  if ((static_cast<std::uint64_t>(n) + 1) * sizeof(EdgeIndex) >
          kMaxPayloadBytes ||
      static_cast<std::uint64_t>(m) * sizeof(WEdge) > kMaxPayloadBytes) {
    std::ostringstream os;
    os << "oversized wsg header: n=" << n << ", m=" << m
       << " would require more than " << kMaxPayloadBytes
       << " payload bytes; header is corrupt";
    parse_error(os.str());
  }
  std::vector<EdgeIndex> offsets(static_cast<std::size_t>(n) + 1);
  AdjacencyVector adjacency(static_cast<std::size_t>(m));
  const std::uint64_t offsets_bytes = offsets.size() * sizeof(EdgeIndex);
  read_exact(in, reinterpret_cast<char*>(offsets.data()), offsets_bytes, 17,
             "wsg offset array");
  read_exact(in, reinterpret_cast<char*>(adjacency.data()),
             adjacency.size() * sizeof(WEdge), 17 + offsets_bytes,
             "wsg adjacency array");
  // Directed files carry the in-edge CSR next; our Graph only stores the
  // out view, so it is skipped.
  return Graph::from_csr(std::move(offsets), std::move(adjacency), !directed);
}

Graph read_gap_wsg_file(const std::string& path) {
  auto in = open_in(path, std::ios::in | std::ios::binary);
  return read_gap_wsg(in);
}

}  // namespace wasp::io
