// Pendant-tree contraction — the preprocessing generalization of the
// paper's leaf-pruning optimization (§4.4 notes the leaf check "could be
// avoided through a fast preprocessing step on the graph", citing the
// authors' follow-up work).
//
// Leaf pruning removes *single* degree-1 vertices from scheduling. Whole
// pendant trees (trees hanging off the 2-core by a single attachment edge)
// can be removed the same way: the shortest path to any tree vertex is the
// shortest path to its attachment point plus the unique tree path. We
// iteratively eliminate degree-1 vertices of an undirected graph, run SSSP
// on the remaining core, and expand distances back down the trees in one
// linear sweep.
//
// On graphs like Mawi (99% of the hub's neighbours are leaves) or road
// networks with service spurs, this shrinks the SSSP instance substantially.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "support/types.hpp"

namespace wasp {

/// The result of contracting all pendant trees of an undirected graph.
class PendantContraction {
 public:
  /// Contracts `g` (must be undirected). `keep` is never eliminated — pass
  /// the SSSP source so expansion stays a pure downward sweep.
  static PendantContraction contract(const Graph& g, VertexId keep);

  /// The core graph: same vertex ids; eliminated vertices are isolated.
  [[nodiscard]] const Graph& core() const { return core_; }

  /// True when `v` survived contraction.
  [[nodiscard]] bool in_core(VertexId v) const { return in_core_[v] != 0; }

  /// Number of eliminated (pendant-tree) vertices.
  [[nodiscard]] std::uint64_t num_eliminated() const { return order_.size(); }

  /// Completes a core distance vector to the full graph: fills every
  /// eliminated vertex with dist[parent] + w in reverse elimination order
  /// (parents are finalized before children). `dist` must hold valid SSSP
  /// distances for the core from a core source.
  void expand(std::vector<Distance>& dist) const;

 private:
  struct Eliminated {
    VertexId v;       // the removed vertex
    VertexId parent;  // its last remaining neighbour at elimination time
    Weight w;         // weight of the attachment edge
  };

  Graph core_;
  std::vector<std::uint8_t> in_core_;
  std::vector<Eliminated> order_;  // elimination order (leaves first)
};

}  // namespace wasp
