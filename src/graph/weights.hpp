// Edge-weight assignment schemes.
//
// The paper uses two schemes:
//  * The GAP Benchmarking Suite scheme — uniformly distributed integers in
//    [1, 255] — for all graphs without natural weights (§5 Datasets).
//  * The reviewers' scheme from Appendix A — a normal distribution with mean
//    1 and sigma sqrt(|V|/|E|), truncated to exclude negatives, scaled to
//    integers — for the additional datasets (Figure 9 / Table 4).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "support/random.hpp"
#include "support/types.hpp"

namespace wasp {

/// A distribution over edge weights. Value-type and cheap to copy.
class WeightScheme {
 public:
  /// GAP scheme: uniform integers in [1, 255].
  static WeightScheme gap() { return uniform(1, 255); }

  /// Uniform integers in [lo, hi].
  static WeightScheme uniform(Weight lo, Weight hi);

  /// All weights 1 (turns SSSP into BFS; useful in tests).
  static WeightScheme unit() { return uniform(1, 1); }

  /// Appendix-A scheme: N(mean, sigma) truncated to (0, inf), scaled by
  /// `scale` and rounded to an integer >= 1.
  static WeightScheme truncated_normal(double mean, double sigma,
                                       double scale = 1000.0);

  /// Draws one weight.
  [[nodiscard]] Weight sample(Xoshiro256& rng) const;

 private:
  enum class Kind { kUniform, kTruncatedNormal };
  Kind kind_ = Kind::kUniform;
  Weight lo_ = 1;
  Weight hi_ = 255;
  double mean_ = 1.0;
  double sigma_ = 1.0;
  double scale_ = 1000.0;
};

/// Overwrites the weight of every edge in `edges`, deterministically from
/// `seed`.
void assign_weights(std::vector<Edge>& edges, const WeightScheme& scheme,
                    std::uint64_t seed);

}  // namespace wasp
