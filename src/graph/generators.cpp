#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "graph/builder.hpp"

namespace wasp::gen {

namespace {

Graph finish(VertexId n, std::vector<Edge>& edges, const WeightScheme& ws,
             std::uint64_t seed, bool undirected) {
  assign_weights(edges, ws, hash_mix(seed ^ 0x5eedULL));
  return GraphBuilder()
      .edges(n, std::move(edges))
      .undirected(undirected)
      .build();
}

}  // namespace

Graph grid(std::uint32_t rows, std::uint32_t cols, const WeightScheme& ws,
           std::uint64_t seed) {
  const VertexId n = rows * cols;
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(2) * n);
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      const VertexId v = r * cols + c;
      if (c + 1 < cols) edges.push_back({v, v + 1, 0});
      if (r + 1 < rows) edges.push_back({v, v + cols, 0});
    }
  }
  return finish(n, edges, ws, seed, /*undirected=*/true);
}

Graph mesh(std::uint32_t rows, std::uint32_t cols, const WeightScheme& ws,
           std::uint64_t seed) {
  const VertexId n = rows * cols;
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(4) * n);
  for (std::uint32_t r = 0; r < rows; ++r) {
    for (std::uint32_t c = 0; c < cols; ++c) {
      const VertexId v = r * cols + c;
      if (c + 1 < cols) edges.push_back({v, v + 1, 0});
      if (r + 1 < rows) edges.push_back({v, v + cols, 0});
      if (r + 1 < rows && c + 1 < cols) edges.push_back({v, v + cols + 1, 0});
      if (r + 1 < rows && c > 0) edges.push_back({v, v + cols - 1, 0});
    }
  }
  return finish(n, edges, ws, seed, /*undirected=*/true);
}

Graph chain_forest(std::uint32_t num_chains, std::uint32_t chain_len,
                   const WeightScheme& ws, std::uint64_t seed) {
  if (chain_len < 2) throw std::invalid_argument("chain_forest: chain_len < 2");
  const VertexId n = num_chains * chain_len;
  Xoshiro256 rng(seed);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) + num_chains);
  for (std::uint32_t ch = 0; ch < num_chains; ++ch) {
    const VertexId base = ch * chain_len;
    for (std::uint32_t i = 0; i + 1 < chain_len; ++i)
      edges.push_back({base + i, base + i + 1, 0});
  }
  // Cross-link consecutive chains at random positions so the graph is
  // connected (the paper picks sources in the largest component anyway, but
  // a connected instance makes per-run work comparable).
  for (std::uint32_t ch = 0; ch + 1 < num_chains; ++ch) {
    const VertexId u = ch * chain_len + static_cast<VertexId>(rng.next_below(chain_len));
    const VertexId v =
        (ch + 1) * chain_len + static_cast<VertexId>(rng.next_below(chain_len));
    edges.push_back({u, v, 0});
  }
  return finish(n, edges, ws, seed, /*undirected=*/true);
}

Graph star_hub(VertexId n, double hub_fraction, double branch_fraction,
               const WeightScheme& ws, std::uint64_t seed) {
  if (n < 2) throw std::invalid_argument("star_hub: n < 2");
  Xoshiro256 rng(seed);
  const VertexId hub = 0;
  const VertexId hub_degree =
      std::max<VertexId>(1, static_cast<VertexId>(hub_fraction * (n - 1)));
  std::vector<Edge> edges;
  edges.reserve(hub_degree + static_cast<VertexId>(branch_fraction * hub_degree) * 3 + n / 16);
  // Hub spokes: vertices 1..hub_degree.
  for (VertexId v = 1; v <= hub_degree; ++v) edges.push_back({hub, v, 0});
  // A small fraction of spoke endpoints branch out further (Mawi: ~1% of the
  // hub's neighbours are not leaves).
  const VertexId branching =
      static_cast<VertexId>(branch_fraction * hub_degree);
  for (VertexId i = 0; i < branching; ++i) {
    const VertexId u = 1 + static_cast<VertexId>(rng.next_below(hub_degree));
    for (int k = 0; k < 3; ++k) {
      const VertexId v = 1 + static_cast<VertexId>(rng.next_below(n - 1));
      if (v != u) edges.push_back({u, v, 0});
    }
  }
  // Vertices beyond the hub neighbourhood form a sparse random background so
  // they are reachable.
  for (VertexId v = hub_degree + 1; v < n; ++v) {
    const VertexId u = 1 + static_cast<VertexId>(rng.next_below(hub_degree));
    edges.push_back({u, v, 0});
  }
  return finish(n, edges, ws, seed, /*undirected=*/true);
}

Graph erdos_renyi(VertexId n, double avg_degree, const WeightScheme& ws,
                  std::uint64_t seed) {
  Xoshiro256 rng(seed);
  const EdgeIndex m = static_cast<EdgeIndex>(avg_degree * n / 2.0);
  std::vector<Edge> edges;
  edges.reserve(m);
  for (EdgeIndex i = 0; i < m; ++i) {
    const auto u = static_cast<VertexId>(rng.next_below(n));
    const auto v = static_cast<VertexId>(rng.next_below(n));
    if (u != v) edges.push_back({u, v, 0});
  }
  return finish(n, edges, ws, seed, /*undirected=*/true);
}

Graph rmat(int scale, EdgeIndex num_edges, double a, double b, double c,
           const WeightScheme& ws, std::uint64_t seed, bool undirected) {
  if (scale < 1 || scale > 31) throw std::invalid_argument("rmat: bad scale");
  const VertexId n = VertexId{1} << scale;
  Xoshiro256 rng(seed);
  std::vector<Edge> edges;
  edges.reserve(num_edges);
  for (EdgeIndex i = 0; i < num_edges; ++i) {
    VertexId u = 0;
    VertexId v = 0;
    for (int level = 0; level < scale; ++level) {
      // Slightly perturbed quadrant probabilities (standard R-MAT noise)
      // avoid exact self-similarity artifacts.
      const double noise = 0.9 + 0.2 * rng.next_double();
      const double pa = a * noise;
      const double pb = b * noise;
      const double pc = c * noise;
      const double sum = pa + pb + pc + (1.0 - a - b - c) * noise;
      const double r = rng.next_double() * sum;
      u <<= 1;
      v <<= 1;
      if (r < pa) {
        // top-left quadrant: no bits set
      } else if (r < pa + pb) {
        v |= 1;
      } else if (r < pa + pb + pc) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u != v) edges.push_back({u, v, 0});
  }
  return finish(n, edges, ws, seed, undirected);
}

Graph random_regular(VertexId n, int k, const WeightScheme& ws,
                     std::uint64_t seed) {
  if (k < 1) throw std::invalid_argument("random_regular: k < 1");
  Xoshiro256 rng(seed);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(k) / 2);
  std::vector<VertexId> perm(n);
  std::iota(perm.begin(), perm.end(), VertexId{0});
  // k/2 random permutation matchings: v -- perm[v]; each contributes ~2 to
  // every degree. Collisions/self-loops are dropped, so degrees are ~k.
  const int rounds = std::max(1, k / 2);
  for (int round = 0; round < rounds; ++round) {
    for (VertexId i = n; i > 1; --i) {
      const auto j = static_cast<VertexId>(rng.next_below(i));
      std::swap(perm[i - 1], perm[j]);
    }
    for (VertexId v = 0; v < n; ++v)
      if (v != perm[v]) edges.push_back({v, perm[v], 0});
  }
  return finish(n, edges, ws, seed, /*undirected=*/true);
}

Graph hypercube(int dims, const WeightScheme& ws, std::uint64_t seed) {
  if (dims < 1 || dims > 30) throw std::invalid_argument("hypercube: bad dims");
  const VertexId n = VertexId{1} << dims;
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(dims) / 2);
  for (VertexId v = 0; v < n; ++v) {
    for (int d = 0; d < dims; ++d) {
      const VertexId u = v ^ (VertexId{1} << d);
      if (v < u) edges.push_back({v, u, 0});
    }
  }
  return finish(n, edges, ws, seed, /*undirected=*/true);
}

Graph small_world(VertexId n, int k, double rewire_p, const WeightScheme& ws,
                  std::uint64_t seed) {
  if (k < 1) throw std::invalid_argument("small_world: k < 1");
  Xoshiro256 rng(seed);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(k));
  for (VertexId v = 0; v < n; ++v) {
    for (int j = 1; j <= k; ++j) {
      VertexId u = (v + static_cast<VertexId>(j)) % n;
      if (rng.next_double() < rewire_p) {
        u = static_cast<VertexId>(rng.next_below(n));
        if (u == v) continue;
      }
      edges.push_back({v, u, 0});
    }
  }
  return finish(n, edges, ws, seed, /*undirected=*/true);
}

Graph preferential_attachment(VertexId n, int m, const WeightScheme& ws,
                              std::uint64_t seed) {
  if (m < 1) throw std::invalid_argument("preferential_attachment: m < 1");
  if (n <= static_cast<VertexId>(m))
    throw std::invalid_argument("preferential_attachment: n <= m");
  Xoshiro256 rng(seed);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * static_cast<std::size_t>(m));
  // `targets` holds one entry per edge endpoint; sampling it uniformly is
  // sampling vertices proportionally to degree.
  std::vector<VertexId> endpoints;
  endpoints.reserve(2 * edges.capacity());
  // Seed clique over the first m+1 vertices.
  for (VertexId u = 0; u <= static_cast<VertexId>(m); ++u) {
    for (VertexId v = u + 1; v <= static_cast<VertexId>(m); ++v) {
      edges.push_back({u, v, 0});
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  for (VertexId v = static_cast<VertexId>(m) + 1; v < n; ++v) {
    for (int j = 0; j < m; ++j) {
      const VertexId u = endpoints[rng.next_below(endpoints.size())];
      if (u == v) continue;
      edges.push_back({v, u, 0});
      endpoints.push_back(v);
      endpoints.push_back(u);
    }
  }
  return finish(n, edges, ws, seed, /*undirected=*/true);
}

}  // namespace wasp::gen
