#include "graph/graph.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "support/errors.hpp"

namespace wasp {

// Graph::from_edges lives in builder.cpp as a thin shim over GraphBuilder —
// the edge-list construction logic moved there so every construction style
// shares one front door.

Graph Graph::from_csr(std::vector<EdgeIndex> offsets, AdjacencyVector adjacency,
                      bool undirected) {
  if (offsets.empty() || offsets.front() != 0 || offsets.back() != adjacency.size())
    throw InvalidGraphError("Graph::from_csr: malformed offsets");
  if (offsets.size() - 1 > static_cast<std::size_t>(kInvalidVertex))
    throw InvalidGraphError("Graph::from_csr: too many vertices for 32-bit ids");
  const std::size_t n = offsets.size() - 1;
  for (std::size_t v = 0; v < n; ++v) {
    if (offsets[v] > offsets[v + 1]) {
      std::ostringstream os;
      os << "Graph::from_csr: offsets decrease at vertex " << v << " ("
         << offsets[v] << " > " << offsets[v + 1] << ")";
      throw InvalidGraphError(os.str());
    }
  }
  for (std::size_t i = 0; i < adjacency.size(); ++i) {
    if (adjacency[i].dst >= n) {
      std::ostringstream os;
      os << "Graph::from_csr: adjacency[" << i << "].dst = "
         << adjacency[i].dst << " out of range [0, " << n << ")";
      throw InvalidGraphError(os.str());
    }
  }
  Graph g;
  g.offsets_ = std::move(offsets);
  g.adjacency_ = std::move(adjacency);
  g.undirected_ = undirected;
  return g;
}

Weight Graph::max_weight() const {
  Weight w = 0;
  for (const WEdge& e : adjacency_) w = std::max(w, e.w);
  return w;
}

}  // namespace wasp
