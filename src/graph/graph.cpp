#include "graph/graph.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "support/errors.hpp"

namespace wasp {

Graph Graph::from_edges(VertexId num_vertices, const std::vector<Edge>& edges,
                        bool undirected) {
  const std::size_t n = num_vertices;
  std::vector<EdgeIndex> offsets(n + 1, 0);

  // Pass 1: count out-degrees (both directions for undirected graphs).
  for (const Edge& e : edges) {
    if (e.src == e.dst) continue;  // drop self-loops
    if (e.src >= num_vertices || e.dst >= num_vertices)
      throw std::out_of_range("Graph::from_edges: vertex id out of range");
    ++offsets[e.src + 1];
    if (undirected) ++offsets[e.dst + 1];
  }
  for (std::size_t v = 0; v < n; ++v) offsets[v + 1] += offsets[v];

  // Pass 2: scatter into the adjacency array.
  AdjacencyVector adjacency(offsets[n]);
  std::vector<EdgeIndex> cursor(offsets.begin(), offsets.end() - 1);
  for (const Edge& e : edges) {
    if (e.src == e.dst) continue;
    adjacency[cursor[e.src]++] = WEdge{e.dst, e.w};
    if (undirected) adjacency[cursor[e.dst]++] = WEdge{e.src, e.w};
  }

  // Sort each adjacency list by destination: deterministic layout, better
  // locality, and required by the bidirectional-relaxation tests.
  for (std::size_t v = 0; v < n; ++v) {
    std::sort(adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[v]),
              adjacency.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]),
              [](const WEdge& a, const WEdge& b) {
                return a.dst < b.dst || (a.dst == b.dst && a.w < b.w);
              });
  }

  return from_csr(std::move(offsets), std::move(adjacency), undirected);
}

Graph Graph::from_csr(std::vector<EdgeIndex> offsets, AdjacencyVector adjacency,
                      bool undirected) {
  if (offsets.empty() || offsets.front() != 0 || offsets.back() != adjacency.size())
    throw InvalidGraphError("Graph::from_csr: malformed offsets");
  if (offsets.size() - 1 > static_cast<std::size_t>(kInvalidVertex))
    throw InvalidGraphError("Graph::from_csr: too many vertices for 32-bit ids");
  const std::size_t n = offsets.size() - 1;
  for (std::size_t v = 0; v < n; ++v) {
    if (offsets[v] > offsets[v + 1]) {
      std::ostringstream os;
      os << "Graph::from_csr: offsets decrease at vertex " << v << " ("
         << offsets[v] << " > " << offsets[v + 1] << ")";
      throw InvalidGraphError(os.str());
    }
  }
  for (std::size_t i = 0; i < adjacency.size(); ++i) {
    if (adjacency[i].dst >= n) {
      std::ostringstream os;
      os << "Graph::from_csr: adjacency[" << i << "].dst = "
         << adjacency[i].dst << " out of range [0, " << n << ")";
      throw InvalidGraphError(os.str());
    }
  }
  Graph g;
  g.offsets_ = std::move(offsets);
  g.adjacency_ = std::move(adjacency);
  g.undirected_ = undirected;
  return g;
}

Weight Graph::max_weight() const {
  Weight w = 0;
  for (const WEdge& e : adjacency_) w = std::max(w, e.w);
  return w;
}

}  // namespace wasp
