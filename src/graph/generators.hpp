// Synthetic graph generators.
//
// The paper evaluates on 13 public graphs (Table 1) plus 9 additional ones
// (Table 4).  This container cannot host multi-billion-edge downloads, so the
// benchmark harness substitutes structural scale models produced by the
// generators below (see DESIGN.md §1).  Each generator reproduces the
// structural property that drives the paper's per-graph behaviour:
//
//   grid / mesh            -> Road-USA / Road-EU / Delaunay (large diameter,
//                             degree <= 4 resp. 8)
//   chain_forest           -> Kmer-v1r (very long induced paths, low degree)
//   star_hub               -> Mawi (one hub adjacent to ~93% of V, ~99% of
//                             which are degree-1 leaves)
//   erdos_renyi            -> Urand (uniform degrees, small diameter)
//   rmat                   -> Twitter / Friendster / sk-2005 / Kron / uk-*
//                             (skewed degrees, small diameter; skew set by
//                             the quadrant probabilities)
//   random_regular         -> Random-regular (Table 4)
//   hypercube              -> Hypercube (Table 4)
//   small_world            -> Kkt-power-like (Table 4; local structure plus
//                             long-range shortcuts)
//   preferential_attachment-> Orkut-like dense social core
//
// All generators are deterministic in their seed.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "graph/weights.hpp"

namespace wasp::gen {

/// 4-connected rows x cols grid; undirected. Road-network model.
Graph grid(std::uint32_t rows, std::uint32_t cols, const WeightScheme& ws,
           std::uint64_t seed);

/// 8-connected grid (adds diagonals); undirected. Delaunay-mesh model.
Graph mesh(std::uint32_t rows, std::uint32_t cols, const WeightScheme& ws,
           std::uint64_t seed);

/// `num_chains` disjoint paths of `chain_len` vertices each, plus sparse
/// random cross-links so the graph has one large component; undirected.
/// Kmer model: huge diameter, average degree ~2.
Graph chain_forest(std::uint32_t num_chains, std::uint32_t chain_len,
                   const WeightScheme& ws, std::uint64_t seed);

/// Star-like Mawi model: vertex 0 is a hub adjacent to `hub_fraction` of all
/// vertices; a `branch_fraction` of the hub's neighbours receive extra random
/// edges, the rest stay degree-1 leaves. Undirected.
Graph star_hub(VertexId n, double hub_fraction, double branch_fraction,
               const WeightScheme& ws, std::uint64_t seed);

/// Erdős–Rényi G(n, m) with m = n*avg_degree/2 undirected edges. Urand model.
Graph erdos_renyi(VertexId n, double avg_degree, const WeightScheme& ws,
                  std::uint64_t seed);

/// R-MAT generator: 2^scale vertices, `num_edges` generated (directed) edges
/// with quadrant probabilities (a, b, c, 1-a-b-c). `undirected` symmetrizes.
/// Kron/Twitter/web model depending on parameters.
Graph rmat(int scale, EdgeIndex num_edges, double a, double b, double c,
           const WeightScheme& ws, std::uint64_t seed, bool undirected);

/// Approximately k-regular undirected graph on n vertices (permutation
/// matchings; collisions and self-loops dropped, so degrees are ~k).
Graph random_regular(VertexId n, int k, const WeightScheme& ws,
                     std::uint64_t seed);

/// `dims`-dimensional hypercube: 2^dims vertices, degree = dims; undirected.
Graph hypercube(int dims, const WeightScheme& ws, std::uint64_t seed);

/// Watts–Strogatz-style small world: ring with k nearest neighbours per
/// side, each edge rewired with probability p. Undirected. Power-grid model.
Graph small_world(VertexId n, int k, double rewire_p, const WeightScheme& ws,
                  std::uint64_t seed);

/// Barabási–Albert preferential attachment, m edges per new vertex;
/// undirected. Dense social-core model.
Graph preferential_attachment(VertexId n, int m, const WeightScheme& ws,
                              std::uint64_t seed);

}  // namespace wasp::gen
