#include "graph/weights.hpp"

#include <cmath>

namespace wasp {

WeightScheme WeightScheme::uniform(Weight lo, Weight hi) {
  WeightScheme s;
  s.kind_ = Kind::kUniform;
  s.lo_ = lo;
  s.hi_ = hi;
  return s;
}

WeightScheme WeightScheme::truncated_normal(double mean, double sigma,
                                            double scale) {
  WeightScheme s;
  s.kind_ = Kind::kTruncatedNormal;
  s.mean_ = mean;
  s.sigma_ = sigma;
  s.scale_ = scale;
  return s;
}

Weight WeightScheme::sample(Xoshiro256& rng) const {
  if (kind_ == Kind::kUniform) {
    return static_cast<Weight>(rng.next_in(lo_, hi_));
  }
  // Box-Muller, resampling until the draw is positive (truncation).
  for (;;) {
    const double u1 = rng.next_double();
    const double u2 = rng.next_double();
    if (u1 <= 0.0) continue;
    const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    const double value = mean_ + sigma_ * z;
    if (value <= 0.0) continue;
    const double scaled = std::round(value * scale_);
    return scaled < 1.0 ? Weight{1} : static_cast<Weight>(scaled);
  }
}

void assign_weights(std::vector<Edge>& edges, const WeightScheme& scheme,
                    std::uint64_t seed) {
  Xoshiro256 rng(seed);
  for (Edge& e : edges) e.w = scheme.sample(rng);
}

}  // namespace wasp
