// Sequential graph utilities that back the SSSP implementations and the
// benchmark methodology:
//
//  * connected components + largest-component source selection (the paper
//    starts every trial from a random vertex inside the largest component),
//  * the leaf bitmap for Wasp's leaf-pruning optimization (§4.4),
//  * transpose (in-neighbour view for directed graphs),
//  * BFS hop distances and degree statistics (tests, dataset tables).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "support/types.hpp"

namespace wasp {

/// Component label per vertex plus component sizes. For directed graphs the
/// labelling is over the underlying undirected structure (weakly connected).
struct ComponentInfo {
  std::vector<VertexId> label;       // vertex -> component id (dense, 0-based)
  std::vector<VertexId> size;        // component id -> #vertices
  VertexId largest = 0;              // id of the largest component
};

/// Computes (weakly) connected components with union-find.
ComponentInfo connected_components(const Graph& g);

/// Picks a deterministic pseudo-random vertex inside the largest (weakly)
/// connected component — the paper's source-selection rule.
VertexId pick_source_in_largest_component(const Graph& g, std::uint64_t seed);

/// Per-vertex "trivial shortest-path-tree leaf" bitmap (paper §4.4): a leaf's
/// distance can never improve another vertex, so Wasp relaxes it once and
/// never schedules it.  A vertex is marked when it has no out-edges, or — in
/// undirected graphs — when its degree is 1 (its only neighbour is the vertex
/// that relaxed it).
std::vector<std::uint8_t> compute_leaf_bitmap(const Graph& g);

/// Transposed graph (in-edges become out-edges). For undirected graphs this
/// returns a copy.
Graph transpose(const Graph& g);

/// Hop distances from `source` (kInfDist for unreachable vertices).
std::vector<Distance> bfs_hops(const Graph& g, VertexId source);

/// Summary degree statistics (dataset tables, test assertions).
struct DegreeStats {
  std::uint32_t min = 0;
  std::uint32_t max = 0;
  double avg = 0.0;
  VertexId num_isolated = 0;  // out-degree-0 vertices
};
DegreeStats degree_stats(const Graph& g);

}  // namespace wasp
