// Graph serialization.
//
// Three formats, mirroring the paper artifact's conversion pipeline:
//  * text edge lists ("u v w" per line, '#'/'%' comments) — the exchange
//    format most public datasets ship in,
//  * Matrix Market coordinate files (the SuiteSparse format the artifact
//    converts from),
//  * a binary CSR container ("WSPG" magic) — the fast load format, the
//    analogue of GAP/GBBS binary graphs.
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace wasp::io {

/// Writes "u v w" lines prefixed by a header comment.
void write_edge_list(const Graph& g, std::ostream& out);
void write_edge_list_file(const Graph& g, const std::string& path);

/// Reads an edge list. Lines starting with '#' or '%' are skipped; a missing
/// third column means weight 1. Vertex count is 1 + max id seen.
Graph read_edge_list(std::istream& in, bool undirected);
Graph read_edge_list_file(const std::string& path, bool undirected);

/// Reads a Matrix Market coordinate file (integer/real/pattern, general or
/// symmetric). Real weights are scaled by `real_scale` and rounded to >= 1,
/// the paper's treatment of the Moliere float weights.
Graph read_matrix_market(std::istream& in, double real_scale = 1.0);
Graph read_matrix_market_file(const std::string& path, double real_scale = 1.0);

/// Binary CSR container. Round-trips exactly.
void write_binary(const Graph& g, std::ostream& out);
void write_binary_file(const Graph& g, const std::string& path);
Graph read_binary(std::istream& in);
Graph read_binary_file(const std::string& path);

/// GAP Benchmarking Suite serialized weighted graph (.wsg) — the format the
/// paper's artifact converts every dataset into. Layout (all little-endian,
/// as written by GAP's builder): bool directed; int64 num_edges; int64
/// num_nodes; out_offsets int64[n+1]; out_neighbors {int32 dst, int32 w}[m];
/// and, for directed graphs, the same pair of arrays for in-edges.
void write_gap_wsg(const Graph& g, std::ostream& out);
void write_gap_wsg_file(const Graph& g, const std::string& path);
Graph read_gap_wsg(std::istream& in);
Graph read_gap_wsg_file(const std::string& path);

}  // namespace wasp::io
