#include "graph/algorithms.hpp"

#include <algorithm>
#include <deque>
#include <numeric>

#include "support/random.hpp"

namespace wasp {

namespace {

/// Union-find with path halving and union by size.
class UnionFind {
 public:
  explicit UnionFind(VertexId n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), VertexId{0});
  }

  VertexId find(VertexId x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  void unite(VertexId a, VertexId b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    if (size_[a] < size_[b]) std::swap(a, b);
    parent_[b] = a;
    size_[a] += size_[b];
  }

 private:
  std::vector<VertexId> parent_;
  std::vector<VertexId> size_;
};

}  // namespace

ComponentInfo connected_components(const Graph& g) {
  const VertexId n = g.num_vertices();
  UnionFind uf(n);
  for (VertexId u = 0; u < n; ++u)
    for (const WEdge& e : g.out_neighbors(u)) uf.unite(u, e.dst);

  ComponentInfo info;
  info.label.assign(n, kInvalidVertex);
  VertexId next_id = 0;
  std::vector<VertexId> root_to_id(n, kInvalidVertex);
  for (VertexId v = 0; v < n; ++v) {
    const VertexId root = uf.find(v);
    if (root_to_id[root] == kInvalidVertex) {
      root_to_id[root] = next_id++;
      info.size.push_back(0);
    }
    info.label[v] = root_to_id[root];
    ++info.size[root_to_id[root]];
  }
  info.largest = static_cast<VertexId>(
      std::max_element(info.size.begin(), info.size.end()) - info.size.begin());
  return info;
}

VertexId pick_source_in_largest_component(const Graph& g, std::uint64_t seed) {
  const ComponentInfo info = connected_components(g);
  const VertexId n = g.num_vertices();
  Xoshiro256 rng(seed);
  // Rejection-sample; the largest component covers most vertices on every
  // workload we generate, so this terminates almost immediately.
  for (int attempt = 0; attempt < 1 << 20; ++attempt) {
    const auto v = static_cast<VertexId>(rng.next_below(n));
    if (info.label[v] == info.largest && g.out_degree(v) > 0) return v;
  }
  // Degenerate fallback: linear scan.
  for (VertexId v = 0; v < n; ++v)
    if (info.label[v] == info.largest) return v;
  return 0;
}

std::vector<std::uint8_t> compute_leaf_bitmap(const Graph& g) {
  const VertexId n = g.num_vertices();
  std::vector<std::uint8_t> leaf(n, 0);
  for (VertexId v = 0; v < n; ++v) {
    const std::uint32_t deg = g.out_degree(v);
    if (deg == 0 || (g.is_undirected() && deg == 1)) leaf[v] = 1;
  }
  return leaf;
}

Graph transpose(const Graph& g) {
  const VertexId n = g.num_vertices();
  std::vector<EdgeIndex> offsets(static_cast<std::size_t>(n) + 1, 0);
  for (VertexId u = 0; u < n; ++u)
    for (const WEdge& e : g.out_neighbors(u)) ++offsets[e.dst + 1];
  for (VertexId v = 0; v < n; ++v) offsets[v + 1] += offsets[v];
  AdjacencyVector adjacency(g.num_edges());
  std::vector<EdgeIndex> cursor(offsets.begin(), offsets.end() - 1);
  for (VertexId u = 0; u < n; ++u)
    for (const WEdge& e : g.out_neighbors(u))
      adjacency[cursor[e.dst]++] = WEdge{u, e.w};
  return Graph::from_csr(std::move(offsets), std::move(adjacency),
                         g.is_undirected());
}

std::vector<Distance> bfs_hops(const Graph& g, VertexId source) {
  std::vector<Distance> hops(g.num_vertices(), kInfDist);
  std::deque<VertexId> queue;
  hops[source] = 0;
  queue.push_back(source);
  while (!queue.empty()) {
    const VertexId u = queue.front();
    queue.pop_front();
    for (const WEdge& e : g.out_neighbors(u)) {
      if (hops[e.dst] == kInfDist) {
        hops[e.dst] = hops[u] + 1;
        queue.push_back(e.dst);
      }
    }
  }
  return hops;
}

DegreeStats degree_stats(const Graph& g) {
  DegreeStats stats;
  const VertexId n = g.num_vertices();
  if (n == 0) return stats;
  stats.min = g.out_degree(0);
  for (VertexId v = 0; v < n; ++v) {
    const std::uint32_t d = g.out_degree(v);
    stats.min = std::min(stats.min, d);
    stats.max = std::max(stats.max, d);
    if (d == 0) ++stats.num_isolated;
  }
  stats.avg = n == 0 ? 0.0
                     : static_cast<double>(g.num_edges()) / static_cast<double>(n);
  return stats;
}

}  // namespace wasp
