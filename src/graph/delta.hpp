// Versioned mutable graphs: the batched delta-update API (ROADMAP item 2).
//
// A VersionedGraph wraps the immutable CSR `Graph` with the three things a
// dynamic workload needs:
//
//  * GraphDelta — a batch of edge updates (weight changes, inserts, erases)
//    applied atomically by apply(), which bumps a monotonically increasing
//    version(). Weight changes are patched *in place* into the interleaved
//    WEdge CSR (one pass over the source vertex's list — no rebuild, no
//    allocation);
//    structural changes (insert/erase) go to a per-vertex overlay that
//    replaces the touched vertex's adjacency until compact() folds the
//    overlay back into a flat CSR.
//  * A journal of normalized per-arc effects (ArcEffect: old/new weight per
//    directed arc), so an incremental solver (sssp/incremental.hpp) can
//    catch its warm distance state up from any version the journal still
//    reaches — in time proportional to the affected cone, not the graph.
//  * Compaction on demand: graph() returns the flat CSR view every SSSP
//    engine consumes, compacting first when the overlay is dirty. Between
//    structural batches graph() is free; weight-only streams (the road-
//    traffic case) never compact at all.
//
// Thread-safety: apply()/compact()/graph() are writer-side calls — they must
// be exclusive with readers (no query may be traversing the CSR). The
// service layer (service::QueryService::update) provides that gate; direct
// users must fence updates against queries themselves. Const accessors are
// safe under concurrent reads.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "support/types.hpp"

namespace wasp {

/// One requested edge update. `w` is ignored for kErase.
struct EdgeUpdate {
  enum class Op : std::uint8_t {
    kSetWeight,  ///< set the weight of every existing (src, dst) arc
    kInsert,     ///< add a new (src, dst) arc (parallel arcs allowed)
    kErase,      ///< remove every (src, dst) arc
  };
  Op op = Op::kSetWeight;
  VertexId src = 0;
  VertexId dst = 0;
  Weight w = 0;

  friend bool operator==(const EdgeUpdate&, const EdgeUpdate&) = default;
};

/// A batch of edge updates, applied atomically by VersionedGraph::apply().
/// On undirected graphs each logical update touches both stored arcs; the
/// batch names the logical edge once. Build order is application order.
class GraphDelta {
 public:
  /// Changes the weight of an existing edge (every parallel (u,v) arc).
  /// apply() throws InvalidGraphError if the edge does not exist.
  GraphDelta& set_weight(VertexId u, VertexId v, Weight w) {
    ops_.push_back({EdgeUpdate::Op::kSetWeight, u, v, w});
    return *this;
  }

  /// Adds a new edge. Parallel edges are allowed (as in Graph::from_edges);
  /// self-loops are rejected at apply() like from_edges drops them.
  GraphDelta& insert(VertexId u, VertexId v, Weight w) {
    ops_.push_back({EdgeUpdate::Op::kInsert, u, v, w});
    return *this;
  }

  /// Removes every (u, v) arc. apply() throws InvalidGraphError if none
  /// exists.
  GraphDelta& erase(VertexId u, VertexId v) {
    ops_.push_back({EdgeUpdate::Op::kErase, u, v, 0});
    return *this;
  }

  [[nodiscard]] bool empty() const { return ops_.empty(); }
  [[nodiscard]] std::size_t size() const { return ops_.size(); }
  void clear() { ops_.clear(); }
  [[nodiscard]] const std::vector<EdgeUpdate>& ops() const { return ops_; }

 private:
  std::vector<EdgeUpdate> ops_;
};

/// One applied, normalized, *directed* effect in the journal. Undirected
/// updates journal both arcs. The incremental solver classifies each effect
/// as a decrease (seed relaxation from src) or an increase (invalidate dst's
/// downstream cone) by comparing old_w and new_w.
struct ArcEffect {
  VertexId src = 0;
  VertexId dst = 0;
  Weight old_w = 0;  ///< meaningful when existed
  Weight new_w = 0;  ///< meaningful when exists
  bool existed = true;  ///< false for an inserted arc
  bool exists = true;   ///< false for an erased arc

  /// A relaxation through this arc can only have gotten cheaper (insert or
  /// weight decrease) — repair seeds src.
  [[nodiscard]] bool is_decrease() const {
    return (!existed && exists) || (existed && exists && new_w < old_w);
  }
  /// A shortest path through this arc may have been destroyed (erase or
  /// weight increase) — repair invalidates dst's cone.
  [[nodiscard]] bool is_increase() const {
    return (existed && !exists) || (existed && exists && new_w > old_w);
  }
};

/// A mutable graph: flat interleaved-WEdge CSR + per-vertex overlay +
/// monotonically increasing version + effect journal. See file comment.
class VersionedGraph {
 public:
  /// Wraps `base` as version 1.
  explicit VersionedGraph(Graph base);

  VersionedGraph(const VersionedGraph&) = delete;
  VersionedGraph& operator=(const VersionedGraph&) = delete;
  VersionedGraph(VersionedGraph&&) = default;
  VersionedGraph& operator=(VersionedGraph&&) = default;

  /// Current version; bumped by exactly 1 per applied batch.
  [[nodiscard]] std::uint64_t version() const { return version_; }

  /// Process-unique identity of this graph object: assigned at
  /// construction from a monotonic counter, transferred by move (the
  /// moved-from husk gets a fresh one), never reused. Warm consumers
  /// (sssp/incremental.hpp) bind this — not the address — so a different
  /// VersionedGraph reconstructed at a recycled heap address can never
  /// pass for the one they answered.
  [[nodiscard]] std::uint64_t uid() const { return uid_.value; }

  /// Applies `delta` as one batch: weight changes in place, structural
  /// changes to the overlay. Bumps and returns the new version. Throws
  /// InvalidGraphError (edge missing / self-loop / id out of range) with
  /// the graph unchanged — validation runs before the first mutation. A
  /// resource failure mid-batch (bad_alloc) can leave the batch partially
  /// applied; the graph then still bumps version() and invalidates the
  /// whole journal, so warm consumers never replay against the torn state
  /// and instead full-solve the graph as it now is.
  std::uint64_t apply(const GraphDelta& delta);

  /// The flat CSR view every solver consumes; compacts first when dirty.
  /// Writer-side (may mutate); the address of the returned Graph is stable
  /// across compactions.
  [[nodiscard]] const Graph& graph() {
    if (dirty()) compact();
    return flat_;
  }

  /// The flat CSR view when the overlay is known clean (readers on the
  /// query path use this; asserts !dirty()).
  [[nodiscard]] const Graph& flat() const {
    assert(!dirty());
    return flat_;
  }

  /// True while insert/erase effects are staged in the overlay (weight-only
  /// batches never dirty the graph).
  [[nodiscard]] bool dirty() const { return overlay_live_ != 0; }

  /// Folds the overlay back into a flat CSR (O(n + m) copy through the
  /// GraphBuilder plumbing). No-op when clean; does not change version().
  void compact();

  // --- two-level read view (overlay-aware; valid even while dirty) --------

  [[nodiscard]] VertexId num_vertices() const { return flat_.num_vertices(); }
  /// Stored (directed) arcs, overlay included.
  [[nodiscard]] EdgeIndex num_edges() const { return live_edges_; }
  [[nodiscard]] bool is_undirected() const { return flat_.is_undirected(); }

  /// Outgoing adjacency of u: the overlay replacement when u is overlaid,
  /// the flat CSR otherwise.
  [[nodiscard]] std::span<const WEdge> out_neighbors(VertexId u) const {
    assert(u < num_vertices());
    if (!overlay_.empty() && overlay_index_[u] != kNoOverlay) {
      const auto& list = overlay_[overlay_index_[u]];
      return {list.data(), list.size()};
    }
    return flat_.out_neighbors(u);
  }

  // --- journal ------------------------------------------------------------

  /// Arc effects applied by versions (since, version()] in application
  /// order, or std::nullopt-like empty failure when the journal has been
  /// trimmed past `since` (the caller must fall back to a full solve).
  /// `ok` distinguishes "nothing happened" from "journal lost".
  struct JournalView {
    bool ok = false;
    std::span<const ArcEffect> effects;
  };
  [[nodiscard]] JournalView journal_since(std::uint64_t since) const;

  /// Oldest version the journal can still replay *from* (journal_since(v)
  /// succeeds for v >= journal_floor()).
  [[nodiscard]] std::uint64_t journal_floor() const { return journal_floor_; }

  /// Caps the journal at roughly `max_effects` arc effects; older batches
  /// are dropped and journal_floor() rises. Default 1 << 22.
  void set_journal_limit(std::size_t max_effects) {
    journal_limit_ = max_effects;
    trim_journal();
  }

  // --- observability (mirrored into MetricsRegistry by the consumers) -----

  /// Overlay compactions performed over this graph's lifetime.
  [[nodiscard]] std::uint64_t compactions() const { return compactions_; }
  /// Directed arc effects applied over this graph's lifetime.
  [[nodiscard]] std::uint64_t arc_effects_applied() const {
    return effects_applied_;
  }

 private:
  static constexpr std::uint32_t kNoOverlay = 0xFFFFFFFFu;

  /// Move-aware wrapper for uid(): the defaulted VersionedGraph moves
  /// transfer the identity with the content, and the moved-from object is
  /// re-stamped so no two graphs ever share a uid.
  struct Uid {
    Uid() : value(next()) {}
    Uid(Uid&& other) noexcept : value(std::exchange(other.value, next())) {}
    Uid& operator=(Uid&& other) noexcept {
      value = std::exchange(other.value, next());
      return *this;
    }
    static std::uint64_t next();
    std::uint64_t value;
  };

  /// Copies u's adjacency into the overlay (first structural touch) and
  /// returns the mutable list.
  std::vector<WEdge>& overlay_for(VertexId u);
  /// Applies one directed-arc update, journaling its effects into
  /// `effects_`. Returns the number of arcs touched.
  std::size_t apply_arc(EdgeUpdate::Op op, VertexId u, VertexId v, Weight w);
  void validate_batch(const GraphDelta& delta) const;
  void trim_journal();

  Graph flat_;  ///< member (stable address); weights patched in place
  /// Sparse per-vertex overlay: overlay_index_[u] indexes overlay_, or
  /// kNoOverlay. An overlaid vertex's full adjacency lives in overlay_.
  std::vector<std::uint32_t> overlay_index_;
  std::vector<std::vector<WEdge>> overlay_;
  std::size_t overlay_live_ = 0;  ///< overlaid vertices (0 = clean)

  std::uint64_t version_ = 1;
  EdgeIndex live_edges_ = 0;

  // Journal: flat effect array + per-batch (version, end index) fenceposts.
  std::vector<ArcEffect> effects_;
  std::vector<std::pair<std::uint64_t, std::size_t>> batch_ends_;
  std::uint64_t journal_floor_ = 1;
  std::size_t journal_limit_ = std::size_t{1} << 22;

  std::uint64_t compactions_ = 0;
  std::uint64_t effects_applied_ = 0;
  Uid uid_;
};

}  // namespace wasp
