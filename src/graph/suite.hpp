// The benchmark workload suite: a structural scale model of every dataset in
// the paper's Table 1 (main evaluation) and Table 4 (appendix), produced by
// the generators in generators.hpp.
//
// `make(cls, scale, seed)` builds the graph and selects the trial source the
// way the paper does (a pseudo-random vertex in the largest component).
// `scale` multiplies the default vertex count: 1.0 gives instances sized to
// finish quickly on a small machine while preserving each class's structure;
// larger machines can pass --scale 8 or more to the bench binaries.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "support/types.hpp"

namespace wasp::suite {

/// One per dataset class of the paper's evaluation.
enum class GraphClass {
  // Table 1 analogues.
  kFriendster,  // FT  directed social RMAT
  kKmer,        // KV  chain forest
  kKron,        // KR  undirected Kronecker-style RMAT
  kMawi,        // MW  star hub + leaves
  kMoliere,     // ML  dense semantic network
  kOrkut,       // OK  dense social (preferential attachment)
  kRoadEu,      // EU  grid road network
  kRoadUsa,     // USA grid road network
  kWebSk,       // SK  directed web crawl (deep skew RMAT)
  kTwitter,     // TW  directed social RMAT
  kUk2007,      // UK7 undirected web crawl
  kUkUnion,     // UK6 directed web crawl
  kUrand,       // UR  Erdős–Rényi
  // Table 4 / Figure 9 analogues (truncated-normal weights).
  kCircuit,     // CR  circuit-like small world
  kDelaunay,    // DL  mesh
  kHypercube,   // HC  hypercube
  kKktPower,    // KP  power-grid small world
  kNlpKkt,      // NL  large stiff mesh
  kRandReg,     // RR  random regular
  kSpielman,    // SM  grid Laplacian
  kStokes,      // ST  semiconductor-sim regular graph
  kWebbase,     // WB  directed web crawl
};

/// Abbreviation used in the paper's tables (FT, KV, ...).
const char* abbr(GraphClass cls);

/// Longer human-readable name, e.g. "Friendster-like RMAT (directed)".
const char* describe(GraphClass cls);

/// Main-evaluation classes in the paper's Table 1 order.
std::vector<GraphClass> main_suite();

/// A reduced main suite covering each structural family once — the default
/// for the slower experiments (delta sweeps, scaling).
std::vector<GraphClass> core_suite();

/// Appendix classes (Table 4) in order.
std::vector<GraphClass> appendix_suite();

/// A generated workload: the graph plus the trial source vertex.
struct Workload {
  GraphClass cls;
  std::string name;
  Graph graph;
  VertexId source = 0;
};

/// Builds the scale model for `cls`.
Workload make(GraphClass cls, double scale, std::uint64_t seed);

/// Parses an abbreviation ("USA", case-insensitive) back to a class;
/// throws std::invalid_argument on unknown names.
GraphClass parse_abbr(const std::string& abbr);

}  // namespace wasp::suite
