// NUMA-aware graph partitioning: contiguous vertex-range fragments of the
// global CSR, one (or more) per NUMA node.
//
// The partitioned Wasp engine (sssp/wasp_partitioned.cpp, docs/NUMA.md) keeps
// the asynchronous deque protocol *inside* a fragment and exchanges boundary
// relaxations through batched remote queues (concurrent/remote_queue.hpp)
// instead of CAS traffic on remote cache lines. This module owns the static
// side of that design:
//
//  * splitting [0, n) into F contiguous vertex ranges balanced by edge count
//    (binary search over the global offset array), F defaulting to the
//    topology's node count;
//  * slicing each fragment's CSR rows into fragment-local storage — offsets
//    rebased to the fragment (offsets[0] == 0) with destination ids kept
//    GLOBAL, so a relaxation can route any edge by owner without a remap
//    table;
//  * inner/boundary classification: a local vertex is `boundary` when at
//    least one of its out-edges leaves the fragment's vertex range;
//  * first-touch placement: when a ThreadTeam is supplied, fragment f's
//    arrays are *filled* (hence paged in) by team worker f mod p. With
//    workers pinned round-robin across nodes this lands each fragment's
//    slice on (or near) the node that will run it; on a 1-node box it is a
//    deterministic no-op, which is what the synthetic-topology tests rely on.
//
// The split is deliberately contiguous (libgrape-lite's fragment model, GBBS'
// partition-friendly CSR): owner lookup is a binary search over F+1 range
// starts, and local<->global id translation is a subtraction.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "support/numa.hpp"

namespace wasp {

class ThreadTeam;

/// Immutable partition of a Graph into contiguous vertex-range fragments.
class GraphPartition {
 public:
  /// One fragment: the CSR rows of global vertices [begin, end), rebased so
  /// the fragment is self-contained for row lookup while edge destinations
  /// stay global.
  struct Fragment {
    int index = 0;       ///< Fragment id in [0, num_fragments()).
    int node = 0;        ///< NUMA node this fragment is assigned to.
    VertexId begin = 0;  ///< First global vertex id owned by this fragment.
    VertexId end = 0;    ///< One past the last owned global vertex id.

    /// Rebased row offsets: size (end - begin) + 1, offsets.front() == 0,
    /// offsets.back() == local edge count.
    std::vector<EdgeIndex> offsets;
    /// This fragment's slice of the interleaved {dst, w} records. Destination
    /// ids are GLOBAL vertex ids.
    AdjacencyVector adjacency;
    /// boundary[v - begin] != 0 iff v has an out-edge whose destination lies
    /// outside [begin, end).
    std::vector<std::uint8_t> boundary;
    /// Out-edges leaving the fragment's vertex range.
    EdgeIndex cut_edges = 0;

    [[nodiscard]] VertexId num_vertices() const { return end - begin; }
    [[nodiscard]] EdgeIndex num_edges() const {
      return offsets.empty() ? 0 : offsets.back();
    }
    [[nodiscard]] bool owns(VertexId global_v) const {
      return global_v >= begin && global_v < end;
    }
    [[nodiscard]] std::uint32_t out_degree(VertexId global_u) const {
      const VertexId lu = global_u - begin;
      return static_cast<std::uint32_t>(offsets[lu + 1] - offsets[lu]);
    }
    [[nodiscard]] EdgeIndex edge_offset(VertexId global_u) const {
      return offsets[global_u - begin];
    }
    [[nodiscard]] const WEdge* edge_data() const { return adjacency.data(); }
    [[nodiscard]] bool is_boundary(VertexId global_u) const {
      return boundary[global_u - begin] != 0;
    }
  };

  /// Builds a partition of `g` into `num_fragments` fragments (0 = one per
  /// NUMA node of `topo`; always clamped to [1, max(n, 1)]). Ranges are
  /// edge-balanced; fragment f is assigned to node f mod topo.num_nodes().
  /// When `team` is non-null, fragment arrays are filled in parallel by
  /// worker (f mod team size) for first-touch placement.
  static GraphPartition build(const Graph& g, const NumaTopology& topo,
                              int num_fragments = 0, ThreadTeam* team = nullptr);

  [[nodiscard]] int num_fragments() const {
    return static_cast<int>(fragments_.size());
  }
  [[nodiscard]] const Fragment& fragment(int f) const {
    return fragments_[static_cast<std::size_t>(f)];
  }
  [[nodiscard]] VertexId num_vertices() const { return num_vertices_; }

  /// Fragment owning global vertex `v` (binary search over range starts).
  [[nodiscard]] int owner_of(VertexId v) const;

  /// First global vertex of fragment f; starts()[num_fragments()] == n.
  [[nodiscard]] const std::vector<VertexId>& starts() const { return starts_; }

  /// Total out-edges crossing fragment boundaries, summed over fragments.
  [[nodiscard]] EdgeIndex num_cut_edges() const { return cut_edges_; }

 private:
  GraphPartition() = default;

  std::vector<Fragment> fragments_;
  std::vector<VertexId> starts_;  // size num_fragments() + 1
  VertexId num_vertices_ = 0;
  EdgeIndex cut_edges_ = 0;
};

}  // namespace wasp
