#include "sssp/smq_dijkstra.hpp"

#include <atomic>
#include <thread>

#include "concurrent/stealing_multiqueue.hpp"
#include "support/timer.hpp"

namespace wasp {

SsspResult smq_dijkstra(const Graph& g, VertexId source, int steal_batch,
                        std::uint64_t seed, ThreadTeam& team,
                        chaos::Engine* chaos) {
  const int p = team.size();
  AtomicDistances dist(g.num_vertices());
  dist.store(source, 0);

  StealingMultiQueue::Config config;
  config.threads = p;
  config.steal_batch = steal_batch;
  config.seed = seed;
  StealingMultiQueue smq(config);
  smq.push(0, 0, source);

  std::vector<CachePadded<ThreadCounters>> counters(static_cast<std::size_t>(p));
  std::atomic<int> busy{0};

  Timer timer;
  team.run([&](int tid) {
    chaos::ScopedInstall chaos_guard(chaos, tid);
    auto& my = counters[static_cast<std::size_t>(tid)].value;
    for (;;) {
      Distance d = 0;
      VertexId u = 0;
      // Same visibility protocol as mq_dijkstra: busy is raised before the
      // pop, so size==0 observed by others implies busy>0 while any element
      // is mid-processing.
      busy.fetch_add(1, std::memory_order_acq_rel);
      if (smq.try_pop(tid, d, u)) {
        if (d != dist.load(u)) ++my.stale_skips;
        if (d == dist.load(u)) {  // stale check
          ++my.vertices_processed;
          for (const WEdge& e : g.out_neighbors(u)) {
            ++my.relaxations;
            const Distance nd = saturating_add(d, e.w);
            if (dist.relax_to(e.dst, nd)) {
              ++my.updates;
              smq.push(tid, nd, e.dst);
            }
          }
        }
        busy.fetch_sub(1, std::memory_order_acq_rel);
        continue;
      }
      busy.fetch_sub(1, std::memory_order_acq_rel);
      if (smq.size_estimate() == 0 && busy.load(std::memory_order_acquire) == 0)
        break;
      std::this_thread::yield();
    }
  });

  SsspResult result;
  result.stats.seconds = timer.seconds();
  accumulate_counters(counters, result.stats);
  result.dist = dist.snapshot();
  return result;
}

}  // namespace wasp
