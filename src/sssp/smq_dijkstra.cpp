#include "sssp/smq_dijkstra.hpp"

#include <atomic>
#include <thread>

#include "concurrent/stealing_multiqueue.hpp"
#include "support/prefetch.hpp"
#include "support/thread_team.hpp"
#include "support/timer.hpp"
#include "verify/checked_atomic.hpp"

namespace wasp {

SsspResult smq_dijkstra(const Graph& g, VertexId source, int steal_batch,
                        std::uint64_t seed, RunContext& ctx) {
  using CId = obs::CounterId;
  const int p = ctx.team.size();
  AtomicDistances& dist = ctx.distances(g.num_vertices());
  dist.store(source, 0);

  StealingMultiQueue::Config config;
  config.threads = p;
  config.steal_batch = steal_batch;
  config.seed = seed;
  StealingMultiQueue smq(config);
  smq.push(0, 0, source);

  verify::atomic<int> busy{0};
  const std::uint32_t lookahead = ctx.prefetch_lookahead;

  Timer timer;
  ctx.team.run([&](int tid) {
    chaos::ScopedInstall chaos_guard(ctx.chaos, tid);
    obs::MetricsShard& my = ctx.metrics.shard(tid);
    std::uint64_t progress = 0;
    for (;;) {
      // Cancellation point (async: each thread leaves independently;
      // pending entries are abandoned with the run-local queue).
      if (ctx.stop_requested()) break;
      Distance d = 0;
      VertexId u = 0;
      // Same visibility protocol as mq_dijkstra: busy is raised before the
      // pop, so size==0 observed by others implies busy>0 while any element
      // is mid-processing.
      busy.fetch_add(1, std::memory_order_acq_rel);
      if (smq.try_pop(tid, d, u)) {
        if (d != dist.load(u)) my.inc(CId::kStaleSkips);
        if (d == dist.load(u)) {  // stale check
          my.inc(CId::kVerticesProcessed);
          ++progress;
          if ((progress & 0xFFFu) == 0) {
            if (ctx.observer != nullptr) ctx.observer->on_progress(tid, progress);
            // Deadline poll at the observer cadence (see mq_dijkstra).
            (void)ctx.poll_cancel();
          }
          // Indexed drain so edge j can prefetch the dist entry of edge
          // j + lookahead's target (the only data-dependent miss here).
          const WEdge* edges = g.edge_data() + g.edge_offset(u);
          const std::uint32_t deg = g.out_degree(u);
          for (std::uint32_t j = 0; j < deg; ++j) {
            if (lookahead != 0 && j + lookahead < deg)
              prefetch_read(dist.prefetch_addr(edges[j + lookahead].dst));
            const WEdge& e = edges[j];
            my.inc(CId::kRelaxations);
            const Distance nd = saturating_add(d, e.w);
            if (dist.relax_to(e.dst, nd)) {
              my.inc(CId::kUpdates);
              smq.push(tid, nd, e.dst);
            }
          }
          if (lookahead != 0 && deg > lookahead)
            my.inc(CId::kPrefetchIssued, deg - lookahead);
        }
        // acq_rel: orders this pop's pushes before the drop, so a scanner
        // reading busy == 0 (acquire) also sees the new entries.
        busy.fetch_sub(1, std::memory_order_acq_rel);
        continue;
      }
      busy.fetch_sub(1, std::memory_order_acq_rel);  // acq_rel: as above
      my.inc(CId::kTerminationScans);
      // Idle scans also check the deadline (see mq_dijkstra).
      (void)ctx.poll_cancel();
      // Acquire: pairs with the acq_rel drops so in-flight pushes are seen.
      if (smq.size_estimate() == 0 && busy.load(std::memory_order_acquire) == 0) {
        if (ctx.observer != nullptr) ctx.observer->on_termination(tid);
        break;
      }
      std::this_thread::yield();
    }
  });

  SsspResult result;
  finalize_result(ctx, timer.seconds(), result);
  result.dist = dist.snapshot();
  return result;
}

}  // namespace wasp
