// Incremental SSSP repair over versioned graphs (the Ramalingam–Reps-style
// counterpart to graph/delta.hpp).
//
// An IncrementalSolver binds to one (VersionedGraph, source) pair and keeps
// the epoch-versioned tentative-distance array of its last answer *warm*.
// When the graph moves forward by a batch, solve() replays the journal
// instead of recomputing:
//
//  1. Classification. Every journaled ArcEffect is either a decrease
//     (insert / weight drop — some path may have gotten cheaper; the arc's
//     source becomes a relaxation seed) or an increase (erase / weight rise
//     — distances that rode the arc may be invalid).
//  2. Cone invalidation. For each increase whose arc was admissible under
//     the warm distances (dist[u] + old_w <= dist[v], the conservative
//     parent predicate from paths.hpp), the head v starts a cone walk:
//     every vertex reachable from it through admissible arcs may have
//     depended on the changed arc. The whole cone is reset to infinity —
//     over-approximation is safe (extra recompute), under-approximation is
//     not (a stale too-small bound would poison monotone relaxation).
//  3. Seeding. The repair frontier is the cone's in-boundary (intact
//     vertices with an arc into the cone) plus every decrease source. By
//     the warm-start argument in wasp.hpp, relaxing from exactly this set
//     converges to the same fixed point as a cold solve.
//  4. Repair. wasp_sssp_seeded runs the normal work-stealing engine over
//     the warm array — no epoch bump, so untouched vertices cost nothing —
//     in work proportional to the cone, not the graph.
//
// Anything that breaks the warm contract (first query, source change,
// journal trimmed past our version, the underlying solver used for another
// query in between, a graph swap) falls back to a full solve through the
// owned wasp::Solver; last_repair().full_solve records which path ran.
//
// Correctness anchor (tests/test_incremental.cpp): distances after every
// batch are bit-identical to a from-scratch solve.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/delta.hpp"
#include "graph/graph.hpp"
#include "sssp/common.hpp"
#include "sssp/solver.hpp"

namespace wasp {

/// What the last solve() did, for observability and tests. The same numbers
/// feed the kRepair* counters in the solver's MetricsRegistry.
struct RepairStats {
  bool full_solve = true;          ///< fell back to a from-scratch solve
  std::uint64_t batches = 0;       ///< versions caught up by the repair
  std::uint64_t effects = 0;       ///< journaled arc effects replayed
  std::uint64_t cone_vertices = 0; ///< vertices invalidated to infinity
  std::uint64_t seed_vertices = 0; ///< warm seeds handed to the engine
  double seconds = 0.0;            ///< parallel-phase time of the last run
};

class IncrementalSolver {
 public:
  /// Validates options and spawns the owned Solver's team. The incremental
  /// path always repairs with the Wasp engine (options.delta and
  /// options.wasp apply); options.algo governs only the full-solve
  /// fallback.
  explicit IncrementalSolver(SsspOptions options);

  IncrementalSolver(const IncrementalSolver&) = delete;
  IncrementalSolver& operator=(const IncrementalSolver&) = delete;

  /// Exact distances for (vg.graph(), source) at vg's current version.
  /// Compacts vg when dirty (the engine consumes the flat CSR), then either
  /// repairs the warm state through the journal or re-solves from scratch.
  /// The returned reference stays valid until the next solve() call.
  ///
  /// Cancellation: options().cancel is polled inside the cone walk and by
  /// the engine; a fired token discards the warm state (epoch bump) and
  /// throws SolveCancelledError, leaving the solver reusable.
  const std::vector<Distance>& solve(VersionedGraph& vg, VertexId source);

  /// Distances of the last solve() (empty before the first).
  [[nodiscard]] const std::vector<Distance>& distances() const {
    return dist_;
  }

  [[nodiscard]] const RepairStats& last_repair() const { return last_; }

  /// The owned Solver (team, metrics, options). Using it directly for other
  /// queries is allowed — the next solve() detects the cold pool via the
  /// epoch stamp and falls back to a full solve.
  [[nodiscard]] Solver& solver() { return solver_; }
  [[nodiscard]] SsspOptions& options() { return solver_.options(); }

 private:
  /// True when the warm array still holds our last answer for (vg, source).
  [[nodiscard]] bool warm_for(const VersionedGraph& vg, VertexId source);

  void full_solve(const Graph& g, VertexId source);
  void repair(VersionedGraph& vg, const Graph& g, VertexId source,
              std::span<const ArcEffect> effects);

  /// In-neighbour view for the cone's boundary walk: the graph itself when
  /// undirected, a cached structural transpose otherwise (rebuilt only when
  /// a compaction signals structural change — weight patches leave the
  /// in-arc structure intact).
  const Graph& in_view(const VersionedGraph& vg, const Graph& g);

  Solver solver_;

  // Warm-state binding: which (graph, source, version) the pool's distance
  // array answers, plus the epoch stamp that proves nobody bumped it since.
  // The uid — not the address — is the graph's identity: allocator reuse
  // can reconstruct a different VersionedGraph at the same address.
  const VersionedGraph* bound_graph_ = nullptr;
  std::uint64_t bound_uid_ = 0;
  VertexId bound_source_ = kInvalidVertex;
  std::uint64_t bound_version_ = 0;
  std::uint32_t bound_epoch_ = 0;
  std::uint64_t seen_compactions_ = 0;

  std::vector<Distance> dist_;  ///< last exact snapshot (mirrors the array)

  // Scratch reused across repairs (sized to the graph on first use).
  std::vector<std::uint8_t> in_cone_;
  std::vector<VertexId> cone_;
  std::vector<VertexId> seeds_;
  std::vector<std::uint8_t> seeded_;

  Graph transpose_;  ///< structural in-arc cache for directed graphs
  bool transpose_valid_ = false;

  RepairStats last_;
};

}  // namespace wasp
