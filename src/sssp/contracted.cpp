#include "sssp/contracted.hpp"

#include "sssp/sssp.hpp"
#include "support/timer.hpp"

namespace wasp {

ContractedResult run_sssp_contracted(const Graph& g, VertexId source,
                                     const SsspOptions& options) {
  ContractedResult out;
  Timer pre;
  const PendantContraction pc = PendantContraction::contract(g, source);
  out.preprocess_seconds = pre.seconds();
  out.eliminated_vertices = pc.num_eliminated();

  // With the whole pendant structure gone, the per-vertex leaf bitmap is
  // redundant work for the core solve.
  SsspOptions core_options = options;
  core_options.wasp.leaf_pruning = false;
  out.result = run_sssp(pc.core(), source, core_options);

  Timer post;
  pc.expand(out.result.dist);
  out.preprocess_seconds += post.seconds();
  return out;
}

}  // namespace wasp
