#include "sssp/obim.hpp"

#include <atomic>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <thread>

#include "concurrent/spinlock.hpp"
#include "support/padded.hpp"
#include "support/thread_team.hpp"
#include "support/timer.hpp"
#include "verify/checked_atomic.hpp"

namespace wasp {

namespace {

using CId = obs::CounterId;

constexpr std::uint64_t kInfLevel = ~std::uint64_t{0};

using ObimChunk = std::vector<VertexId>;
using ChunkPtr = std::unique_ptr<ObimChunk>;

/// Lock-protected global bag list, one per priority level, with a
/// monotonically self-repairing minimum-level hint.
class GlobalBags {
 public:
  void push_chunk(std::uint64_t level, ChunkPtr chunk) {
    ensure_level(level);
    {
      std::shared_lock<std::shared_mutex> structure(resize_mutex_);
      Level& slot = *levels_[level];
      SpinGuard guard(slot.lock);
      slot.chunks.push_back(std::move(chunk));
      // Release: count is read lock-free by best_level()'s acquire scan —
      // a reader that sees count > 0 must also see a poppable chunk vector
      // (finalized by the SpinLock release, but the scan takes no lock).
      slot.count.fetch_add(1, std::memory_order_release);
    }
    // Lower the hint if this level is better than the recorded minimum.
    // acq_rel on success pairs with best_level()'s acquire load; acquire on
    // failure so the retry loop re-observes `seen` coherently.
    std::uint64_t seen = min_hint_.load(std::memory_order_relaxed);
    while (level < seen &&
           !min_hint_.compare_exchange_weak(seen, level,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
    }
  }

  /// Smallest level that currently appears non-empty (kInfLevel when none).
  std::uint64_t best_level() {
    std::shared_lock<std::shared_mutex> structure(resize_mutex_);
    // Acquire pair of push_chunk's releases: the hint and per-level counts
    // are scanned lock-free; see the count comment above.
    const std::uint64_t start = min_hint_.load(std::memory_order_acquire);
    for (std::uint64_t l = start; l < levels_.size(); ++l) {
      if (levels_[l]->count.load(std::memory_order_acquire) > 0) return l;
    }
    return kInfLevel;
  }

  /// Pops one chunk from `level`; empty pointer when it lost the race.
  ChunkPtr pop_chunk(std::uint64_t level) {
    std::shared_lock<std::shared_mutex> structure(resize_mutex_);
    if (level >= levels_.size()) return nullptr;
    Level& slot = *levels_[level];
    SpinGuard guard(slot.lock);
    if (slot.chunks.empty()) return nullptr;
    ChunkPtr chunk = std::move(slot.chunks.back());
    slot.chunks.pop_back();
    // Release: keeps the count's decrement ordered after the pop for the
    // lock-free scan (same pairing as push_chunk).
    slot.count.fetch_sub(1, std::memory_order_release);
    return chunk;
  }

 private:
  struct Level {
    SpinLock lock;
    std::vector<ChunkPtr> chunks WASP_GUARDED_BY(lock);
    verify::atomic<std::int64_t> count{0};  // lock-free scan shadow
  };

  void ensure_level(std::uint64_t level) {
    {
      std::shared_lock<std::shared_mutex> structure(resize_mutex_);
      if (level < levels_.size()) return;
    }
    std::unique_lock<std::shared_mutex> structure(resize_mutex_);
    std::size_t cap = levels_.empty() ? 64 : levels_.size();
    while (cap <= level) cap *= 2;
    while (levels_.size() < cap) levels_.push_back(std::make_unique<Level>());
  }

  std::shared_mutex resize_mutex_;
  std::vector<std::unique_ptr<Level>> levels_;
  verify::atomic<std::uint64_t> min_hint_{0};
};

/// Thread-local per-level fill chunks with a min-level hint.
struct LocalBags {
  std::vector<ChunkPtr> fill;   // level -> partially filled chunk (or null)
  std::uint64_t min_hint = kInfLevel;

  ObimChunk* at(std::uint64_t level) {
    if (level >= fill.size()) {
      std::size_t cap = fill.empty() ? 64 : fill.size();
      while (cap <= level) cap *= 2;
      fill.resize(cap);
    }
    if (!fill[level]) fill[level] = std::make_unique<ObimChunk>();
    return fill[level].get();
  }

  /// Smallest level with pending local vertices.
  std::uint64_t best_level() {
    for (std::uint64_t l = min_hint; l < fill.size(); ++l) {
      if (fill[l] && !fill[l]->empty()) {
        min_hint = l;
        return l;
      }
    }
    min_hint = kInfLevel;
    return kInfLevel;
  }
};

}  // namespace

SsspResult obim_sssp(const Graph& g, VertexId source, Weight delta,
                     std::uint32_t chunk_size, RunContext& ctx) {
  AtomicDistances& dist = ctx.distances(g.num_vertices());
  dist.store(source, 0);

  GlobalBags global;
  // Vertices in the system (local bags + global bags + being processed).
  verify::atomic<std::int64_t> pending{0};

  {
    auto seed_chunk = std::make_unique<ObimChunk>();
    seed_chunk->push_back(source);
    // Relaxed: pre-run seeding; the team launch publishes it.
    pending.store(1, std::memory_order_relaxed);
    global.push_chunk(0, std::move(seed_chunk));
  }

  Timer timer;
  ctx.team.run([&](int tid) {
    obs::MetricsShard& my = ctx.metrics.shard(tid);
    LocalBags local;
    std::uint64_t curr = kInfLevel;
    std::uint64_t progress = 0;

    const auto push_update = [&](VertexId v, Distance nd) {
      const std::uint64_t level = static_cast<std::uint64_t>(nd) / delta;
      ObimChunk* chunk = local.at(level);
      chunk->push_back(v);
      // acq_rel: raising pending before the vertex becomes poppable pairs
      // with the scan's acquire — a scanner seeing pending == 0 cannot have
      // missed an in-flight vertex.
      pending.fetch_add(1, std::memory_order_acq_rel);
      local.min_hint = std::min(local.min_hint, level);
      if (chunk->size() >= chunk_size) {
        // Excess vertices go into the global bags (paper §2).
        auto full = std::make_unique<ObimChunk>();
        full.swap(local.fill[level]);
        global.push_chunk(level, std::move(full));
      }
    };

    const auto process = [&](VertexId u, std::uint64_t level) {
      const Distance du = dist.load(u);
      if (static_cast<std::uint64_t>(du) <
          level * static_cast<std::uint64_t>(delta)) {
        my.inc(CId::kStaleSkips);
      }
      if (static_cast<std::uint64_t>(du) >=
          level * static_cast<std::uint64_t>(delta)) {
        my.inc(CId::kVerticesProcessed);
        ++progress;
        if ((progress & 0xFFFu) == 0) {
          if (ctx.observer != nullptr) ctx.observer->on_progress(tid, progress);
          // Deadline poll at the observer cadence; the loop-top poll exits.
          (void)ctx.poll_cancel();
        }
        for (const WEdge& e : g.out_neighbors(u)) {
          my.inc(CId::kRelaxations);
          const Distance nd = saturating_add(du, e.w);
          if (dist.relax_to(e.dst, nd)) {
            my.inc(CId::kUpdates);
            push_update(e.dst, nd);
          }
        }
      }
      // acq_rel: the drop is ordered after this vertex's pushes, so the
      // termination scan's acquire read cannot see 0 early.
      pending.fetch_sub(1, std::memory_order_acq_rel);
    };

    for (;;) {
      // Cancellation point (async: threads leave independently; abandoned
      // local/global chunks die with the run-local bag structures, and the
      // `pending` count is simply left non-zero — every peer also polls).
      if (ctx.stop_requested()) break;
      // Drain the local bag at the current level first (thread-local work,
      // no synchronization — OBIM's fast path).
      if (curr != kInfLevel && curr < local.fill.size() && local.fill[curr] &&
          !local.fill[curr]->empty()) {
        ObimChunk* chunk = local.fill[curr].get();
        const VertexId u = chunk->back();
        chunk->pop_back();
        process(u, curr);
        continue;
      }
      // Synchronize with the global structure: work on the best level
      // available locally or globally.
      const std::uint64_t best_local = local.best_level();
      const std::uint64_t best_global = global.best_level();
      if (best_local == kInfLevel && best_global == kInfLevel) {
        my.inc(CId::kTerminationScans);
        // Idle scans also check the deadline (see mq_dijkstra).
        (void)ctx.poll_cancel();
        // Acquire: pairs with the acq_rel pending updates above.
        if (pending.load(std::memory_order_acquire) == 0) {
          if (ctx.observer != nullptr) ctx.observer->on_termination(tid);
          break;
        }
        std::this_thread::yield();
        continue;
      }
      if (best_global < best_local) {
        if (ChunkPtr stolen = global.pop_chunk(best_global)) {
          curr = best_global;
          while (!stolen->empty()) {
            const VertexId u = stolen->back();
            stolen->pop_back();
            process(u, curr);
          }
          continue;
        }
        continue;  // lost the race; retry selection
      }
      curr = best_local;
    }
  });

  SsspResult result;
  finalize_result(ctx, timer.seconds(), result);
  result.dist = dist.snapshot();
  return result;
}

}  // namespace wasp
