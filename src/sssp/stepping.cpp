#include "sssp/stepping.hpp"

#include <algorithm>
#include <atomic>
#include <stdexcept>
#include <utility>

#include "concurrent/dary_heap.hpp"
#include "concurrent/frontier_bag.hpp"
#include "support/padded.hpp"
#include "support/random.hpp"
#include "support/spin_barrier.hpp"
#include "support/thread_team.hpp"
#include "support/timer.hpp"
#include "verify/checked_atomic.hpp"
#include "verify/scheduler.hpp"

namespace wasp {

namespace {

using CId = obs::CounterId;

constexpr std::size_t kSparseLimit = 64;   // super-sparse round cut-off
constexpr std::uint64_t kPullDivisor = 20; // pull when frontier degree > |E|/20
constexpr std::size_t kSampleSize = 256;   // rho threshold estimation sample

}  // namespace

std::vector<Distance> compute_radii(const Graph& g, std::uint32_t k,
                                    ThreadTeam& team) {
  const VertexId n = g.num_vertices();
  std::vector<Distance> radii(n, 0);
  team.parallel_for(0, n, 64, [&](std::uint64_t lo, std::uint64_t hi) {
    // Truncated local Dijkstra: pop at most k settled vertices.
    DaryHeap<Distance, VertexId, 4> heap;
    std::vector<std::pair<VertexId, Distance>> settled;
    for (std::uint64_t vi = lo; vi < hi; ++vi) {
      const auto v = static_cast<VertexId>(vi);
      heap.clear();
      settled.clear();
      heap.push(0, v);
      Distance radius = 0;
      std::uint32_t found = 0;
      while (!heap.empty() && found <= k) {
        const auto [d, u] = heap.pop();
        bool seen = false;
        for (const auto& [su, sd] : settled)
          if (su == u) seen = true;
        if (seen) continue;
        settled.emplace_back(u, d);
        radius = d;
        ++found;
        if (found > k) break;
        for (const WEdge& e : g.out_neighbors(u)) {
          if (settled.size() + heap.size() > 8 * k) break;  // bound the probe
          heap.push(saturating_add(d, e.w), e.dst);
        }
      }
      radii[vi] = radius;
    }
  });
  return radii;
}

SsspResult stepping_sssp(const Graph& g, VertexId source, SteppingKind kind,
                         Weight delta, std::uint64_t rho,
                         bool direction_optimize, RunContext& ctx,
                         const std::vector<Distance>* radii) {
  if (kind == SteppingKind::kRadius && radii == nullptr)
    throw std::invalid_argument("radius-stepping needs precomputed radii");
  const int p = ctx.team.size();
  const VertexId n = g.num_vertices();
  AtomicDistances& dist = ctx.distances(g.num_vertices());
  dist.store(source, 0);

  std::vector<CachePadded<Distance>> local_min(static_cast<std::size_t>(p));
  std::vector<CachePadded<Distance>> local_rmin(static_cast<std::size_t>(p));
  FrontierBag bag(p);
  std::vector<verify::atomic<std::uint8_t>> in_frontier(n);
  // Relaxed init: precedes the team launch, which publishes the vector.
  for (auto& f : in_frontier) f.store(0, std::memory_order_relaxed);

  std::vector<VertexId> frontier{source};
  in_frontier[source].store(1, std::memory_order_relaxed);  // pre-run, as above
  verify::atomic<std::size_t> cursor{0};
  SpinBarrier barrier(p);
  Distance threshold = kInfDist;
  Distance settled_bound = 0;  // everything below this is final
  bool pull_round = false;
  bool done = false;
  std::uint64_t rounds = 0;
  Xoshiro256 sample_rng(0x5a11e57ULL);

  // Inserts v into the next frontier unless it is already pending.
  // acq_rel dedup flag: pairs with relax_to's release so whoever wins the
  // flag also sees the improved distance (same pairing as bellman_ford).
  const auto enqueue = [&](int tid, VertexId v) {
    if (in_frontier[v].exchange(1, std::memory_order_acq_rel) == 0)
      bag.insert(tid, v);
  };

  Timer timer;
  ctx.team.run([&](int tid) {
    verify::ScopedSchedule schedule_guard(tid);
    obs::MetricsShard& my = ctx.metrics.shard(tid);

    const auto relax_out = [&](VertexId u, Distance du) {
      my.inc(CId::kVerticesProcessed);
      for (const WEdge& e : g.out_neighbors(u)) {
        my.inc(CId::kRelaxations);
        if (dist.relax_to(e.dst, saturating_add(du, e.w))) {
          my.inc(CId::kUpdates);
          enqueue(tid, e.dst);
        }
      }
    };

    while (!done) {
      // --- Phase 1 (thread 0): choose the round threshold. ---------------
      // Frontier minimum: cooperative partition scan.
      {
        const std::size_t chunk = (frontier.size() + p - 1) / p;
        const std::size_t lo = std::min(frontier.size(), chunk * static_cast<std::size_t>(tid));
        const std::size_t hi = std::min(frontier.size(), lo + chunk);
        Distance m = kInfDist;
        Distance rm = kInfDist;  // min of dist(v) + r_k(v) for radius rule
        for (std::size_t i = lo; i < hi; ++i) {
          const Distance d = dist.load(frontier[i]);
          m = std::min(m, d);
          if (kind == SteppingKind::kRadius) {
            const Distance r = (*radii)[frontier[i]];
            if (d != kInfDist) rm = std::min(rm, d + r);
          }
        }
        local_min[static_cast<std::size_t>(tid)].value = m;
        local_rmin[static_cast<std::size_t>(tid)].value = rm;
      }
      barrier.wait(tid);
      if (tid == 0) {
        Distance fmin = kInfDist;
        for (int t = 0; t < p; ++t)
          fmin = std::min(fmin, local_min[static_cast<std::size_t>(t)].value);
        // Settled-bound invariant (non-negative weights): every vertex with
        // distance <= the current frontier minimum is final — any improving
        // path would have to pass through a frontier vertex of distance
        // >= fmin. The round *threshold* is NOT a settled bound (vertices in
        // (fmin, threshold] may still improve), so pull rounds key off fmin.
        if (fmin != kInfDist)
          settled_bound = std::max(settled_bound, fmin);
        if (kind == SteppingKind::kDeltaStar) {
          threshold = fmin >= kInfDist - delta ? kInfDist : fmin + delta;
        } else if (kind == SteppingKind::kRadius) {
          Distance rmin = kInfDist;
          for (int t = 0; t < p; ++t)
            rmin = std::min(rmin, local_rmin[static_cast<std::size_t>(t)].value);
          // Progress guarantee: at least the minimum-distance vertex passes.
          threshold = std::max(rmin, fmin);
        } else if (frontier.size() <= rho) {
          threshold = kInfDist;  // whole frontier fits in one batch
        } else {
          // Estimate the rho-th smallest frontier distance from a sample.
          Distance sample[kSampleSize];
          for (std::size_t i = 0; i < kSampleSize; ++i)
            sample[i] = dist.load(frontier[sample_rng.next_below(frontier.size())]);
          std::sort(sample, sample + kSampleSize);
          const auto idx = static_cast<std::size_t>(
              std::min<std::uint64_t>(kSampleSize - 1,
                                      kSampleSize * rho / frontier.size()));
          threshold = std::max(sample[idx], fmin);
        }
        // Direction decision (push unless the sub-threshold frontier is
        // dense and the graph is undirected).
        pull_round = false;
        if (direction_optimize && g.is_undirected() &&
            frontier.size() > kSparseLimit) {
          std::uint64_t degree_sum = 0;
          for (const VertexId v : frontier) degree_sum += g.out_degree(v);
          pull_round = degree_sum > g.num_edges() / kPullDivisor;
        }
        // Relaxed: the barrier below publishes the reset to the team.
        cursor.store(0, std::memory_order_relaxed);
      }
      barrier.wait(tid);

      // --- Phase 2: process. ---------------------------------------------
      if (frontier.size() <= kSparseLimit && !frontier.empty()) {
        // Super-sparse rounds: thread 0 runs threshold rounds sequentially
        // until the frontier grows, skipping all parallel machinery — the
        // optimization that keeps Δ*/ρ-stepping competitive on road graphs.
        if (tid == 0) {
          std::vector<VertexId> seq(frontier.begin(), frontier.end());
          std::vector<VertexId> next_seq;
          // poll_cancel (not just the flag): the sequential drain can run
          // many rounds between barriers, so it checks the deadline itself.
          while (!ctx.poll_cancel() && !seq.empty() &&
                 seq.size() <= kSparseLimit) {
            Distance fmin = kInfDist;
            Distance rmin = kInfDist;
            for (const VertexId u : seq) {
              const Distance d = dist.load(u);
              fmin = std::min(fmin, d);
              if (kind == SteppingKind::kRadius && d != kInfDist)
                rmin = std::min(rmin, d + (*radii)[u]);
            }
            Distance t_seq;
            if (kind == SteppingKind::kDeltaStar) {
              t_seq = fmin >= kInfDist - delta ? kInfDist : fmin + delta;
            } else if (kind == SteppingKind::kRadius) {
              t_seq = std::max(rmin, fmin);
            } else {
              t_seq = kInfDist;  // tiny frontier: take everything
            }
            next_seq.clear();
            for (const VertexId u : seq) {
              const Distance du = dist.load(u);
              if (du > t_seq) {
                next_seq.push_back(u);
                continue;
              }
              // acq_rel: dedup-flag pairing, see enqueue above.
              in_frontier[u].exchange(0, std::memory_order_acq_rel);
              my.inc(CId::kVerticesProcessed);
              for (const WEdge& e : g.out_neighbors(u)) {
                my.inc(CId::kRelaxations);
                if (dist.relax_to(e.dst, saturating_add(du, e.w))) {
                  my.inc(CId::kUpdates);
                  // acq_rel: dedup-flag pairing, see enqueue above.
                  if (in_frontier[e.dst].exchange(1, std::memory_order_acq_rel) == 0)
                    next_seq.push_back(e.dst);
                }
              }
            }
            seq.swap(next_seq);
            ++rounds;
          }
          // Hand any remainder back to the parallel path.
          for (const VertexId u : seq) bag.insert(0, u);
        }
      } else if (pull_round) {
        // Frontier vertices above the threshold are deferred; the rest are
        // consumed (their out-edges are covered by the pulls below).
        for (;;) {
          // Cancellation point: drop unclaimed blocks; Phase 3 folds the
          // token into `done` so all threads exit at the same barrier.
          if (ctx.stop_requested()) break;
          const std::size_t i = cursor.fetch_add(64, std::memory_order_relaxed);
          if (i >= frontier.size()) break;
          const std::size_t hi = std::min(i + 64, frontier.size());
          for (std::size_t k = i; k < hi; ++k) {
            const VertexId u = frontier[k];
            // acq_rel: dedup-flag pairing, see enqueue above.
            in_frontier[u].exchange(0, std::memory_order_acq_rel);
            if (dist.load(u) > threshold) enqueue(tid, u);
          }
        }
        barrier.wait(tid);
        // Relaxed: bracketed by barriers, which publish the reset.
        if (tid == 0) cursor.store(0, std::memory_order_relaxed);
        barrier.wait(tid);
        // Pull into every vertex that is not yet settled.
        for (;;) {
          // Cancellation point (see the defer loop above).
          if (ctx.stop_requested()) break;
          // Relaxed ticket: index-only payload; the barrier published data.
          const std::size_t blk = cursor.fetch_add(512, std::memory_order_relaxed);
          if (blk >= n) break;
          const std::size_t end = std::min<std::size_t>(blk + 512, n);
          for (std::size_t vi = blk; vi < end; ++vi) {
            const auto v = static_cast<VertexId>(vi);
            if (dist.load(v) <= settled_bound) continue;
            Distance best = dist.load(v);
            for (const WEdge& e : g.out_neighbors(v)) {
              my.inc(CId::kRelaxations);
              const Distance du = dist.load(e.dst);
              const Distance through = saturating_add(du, e.w);
              if (through < best) best = through;
            }
            if (dist.relax_to(v, best)) {
              my.inc(CId::kUpdates);
              enqueue(tid, v);
            }
          }
        }
      } else {
        for (;;) {
          // Cancellation point (see the defer loop above).
          if (ctx.stop_requested()) break;
          // Relaxed ticket: index-only payload; the barrier published data.
          const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
          if (i >= frontier.size()) break;
          const VertexId u = frontier[i];
          // acq_rel: dedup-flag pairing, see enqueue above.
          in_frontier[u].exchange(0, std::memory_order_acq_rel);
          const Distance du = dist.load(u);
          if (du > threshold) {
            enqueue(tid, u);  // defer to a later round
            continue;
          }
          relax_out(u, du);
        }
      }
      barrier.wait(tid);

      // --- Phase 3: gather the next frontier. ----------------------------
      if (tid == 0) {
        const std::size_t processed = frontier.size();
        const std::size_t total = bag.compute_offsets();
        frontier.resize(total);
        // Relaxed: the barrier below publishes the reset to the team.
        cursor.store(0, std::memory_order_relaxed);
        // Round-top deadline/cancel poll (tid 0 only, so all threads agree).
        done = total == 0 || ctx.poll_cancel();
        ++rounds;
        my.observe(obs::HistId::kRoundFrontier, processed);
        obs::trace_instant(ctx.trace, tid, obs::EventKind::kRoundTransition,
                           total);
        if (ctx.observer != nullptr) ctx.observer->on_round(rounds, processed);
      }
      barrier.wait(tid);
      if (done) break;
      bag.copy_out_and_clear(tid, frontier.data());
      barrier.wait(tid);
    }
  });

  const double seconds = timer.seconds();
  ctx.metrics.shard(0).inc(CId::kRounds, rounds);
  ctx.metrics.shard(0).inc(CId::kBarrierNs, barrier.total_wait_ns());
  SsspResult result;
  finalize_result(ctx, seconds, result);
  result.dist = dist.snapshot();
  return result;
}

}  // namespace wasp
