// Wasp — Work-Stealing Shortest Path (the paper's contribution, §4).
//
// Architecture per thread (Figure 3):
//  * a list of thread-local buckets, one per coarsened priority level,
//    implemented as linked stacks of chunks (cheap, unsynchronized),
//  * the *current bucket*: a lock-free Chase-Lev deque of chunks holding the
//    priority level the thread is working on, stealable by other threads,
//  * a single thread-local buffer chunk batching both pushes and pops into
//    the current bucket (§4.3: one shared buffer chunk beats split
//    push/pop chunks),
//  * a shared atomic `curr` publishing the thread's current priority level.
//
// Execution (Algorithm 1) is fully asynchronous: a thread drains its current
// bucket, then *steals higher-priority chunks* (Algorithm 2: victims walked
// in NUMA tiers, stealing only from threads whose `curr` is at least as good
// as the best local bucket), and only when no better work exists anywhere
// does it advance to its next local bucket — this is the "priority drifting
// only when high-priority work is not available" principle.
//
// Optimizations (§4.4): neighborhood decomposition (high-degree adjacency
// split into stealable range chunks), leaf pruning (precomputed bitmap), and
// bidirectional relaxation (pull-before-push for small undirected
// neighborhoods).
//
// Termination: a thread with no work publishes curr = infinity and scans all
// `curr` values (§4.3). We close the classic steal/terminate race with an
// intermediate kStealingPriority state: a thief is never INF while it holds
// a freshly stolen chunk, so "all threads INF" really means no work exists.
#pragma once

#include <span>

#include "graph/graph.hpp"
#include "sssp/common.hpp"
#include "support/thread_team.hpp"

namespace wasp {

/// Runs Wasp with bucket width `delta` and the given configuration. The
/// chaos engine installed on workers is config.chaos, falling back to
/// ctx.chaos. Knobs must satisfy SsspOptions::validate() (delta >= 1,
/// chunk_capacity in {16,32,64,128,256}).
SsspResult wasp_sssp(const Graph& g, VertexId source, Weight delta,
                     const WaspConfig& config, RunContext& ctx);

/// Warm-start multi-source variant backing incremental repair
/// (sssp/incremental.hpp): instead of seeding one source at distance 0 into
/// an all-infinity array, the caller pre-loads ctx.dist with valid *upper
/// bounds* (kInfDist for invalidated vertices) and names the frontier —
/// every vertex whose current bound may improve a neighbour. The engine
/// relaxes monotonically from the seeds exactly like a cold run relaxes
/// from the source, so it converges to the same fixed point: exact
/// distances, in work proportional to the region the seeds reach with
/// improvements, not the graph.
///
/// Contract: ctx.dist must be non-null, sized to g.num_vertices(), and hold
/// admissible bounds (never below the true distance). Seeds with an
/// infinite bound are skipped (nothing can relax from them — and their
/// bucket level would be meaningless). An empty (or all-infinite) seed set
/// returns the current bounds unchanged. Same knob contract as wasp_sssp.
SsspResult wasp_sssp_seeded(const Graph& g, std::span<const VertexId> seeds,
                            Weight delta, const WaspConfig& config,
                            RunContext& ctx);

/// Partitioned execution mode (ROADMAP item 4, docs/NUMA.md): the CSR is
/// split into per-NUMA-node fragments (graph/partition.hpp), each with its
/// own distance shard and fragment-local deque protocol; boundary
/// relaxations cross fragments only through batched remote queues
/// (concurrent/remote_queue.hpp), and the termination scan extends the
/// double-scan protocol with an in-flight remote-record confirmation and
/// a quiescence barrier: no worker exits until every worker's scan passes
/// simultaneously (an exited worker could otherwise strand its fragment's
/// inbound channel).
/// Converges to the same exact-distance fixed point as wasp_sssp — the
/// partition correctness suite pins bit-identical results. Reached through
/// dispatch_sssp by setting options.wasp.partition.enabled; knobs beyond
/// WaspConfig: config.partition (fragment count, flush threshold).
/// Bidirectional relaxation is disabled inside fragments (it would read
/// remote shards); all other §4.4 optimizations apply unchanged.
SsspResult wasp_sssp_partitioned(const Graph& g, VertexId source, Weight delta,
                                 const WaspConfig& config, RunContext& ctx);

}  // namespace wasp
