// Shared machinery for every SSSP implementation: the atomic tentative-
// distance array, the CAS edge-relaxation primitive (paper Algorithm 1,
// relax()), per-thread instrumentation counters, and the option/result types
// of the unified front-end in sssp.hpp.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "support/chaos.hpp"
#include "support/numa.hpp"
#include "support/padded.hpp"
#include "support/types.hpp"

namespace wasp {

/// Tentative-distance array with atomic CAS updates.
class AtomicDistances {
 public:
  explicit AtomicDistances(std::size_t n)
      : n_(n), dist_(std::make_unique<std::atomic<Distance>[]>(n)) {
    for (std::size_t i = 0; i < n; ++i)
      dist_[i].store(kInfDist, std::memory_order_relaxed);
  }

  [[nodiscard]] std::size_t size() const { return n_; }

  [[nodiscard]] Distance load(VertexId v) const {
    return dist_[v].load(std::memory_order_relaxed);
  }

  void store(VertexId v, Distance d) {
    dist_[v].store(d, std::memory_order_relaxed);
  }

  /// The relax() primitive of Algorithm 1 (lines 1-8): lowers dist[v] to
  /// `candidate` with a CAS loop. Returns true when this call achieved a
  /// strict improvement (the caller then reschedules v). Success publishes
  /// with release semantics so a scheduler flag written afterwards carries
  /// visibility of the new distance.
  /// Candidates must come from saturating_add (see types.hpp): kInfDist can
  /// never win the strict-decrease test, so wrapped sums cannot corrupt the
  /// array.
  bool relax_to(VertexId v, Distance candidate) {
    Distance old = dist_[v].load(std::memory_order_relaxed);
    while (candidate < old) {
      WASP_CHAOS_YIELD(chaos::Point::kYieldBeforeCas);
      if (dist_[v].compare_exchange_weak(old, candidate,
                                         std::memory_order_release,
                                         std::memory_order_relaxed)) {
        return true;
      }
      WASP_CHAOS_YIELD(chaos::Point::kYieldAfterCas);
      // `old` reloaded by the failed CAS; loop re-checks the improvement.
    }
    return false;
  }

  /// Copies distances out (result snapshot; call after the parallel phase).
  [[nodiscard]] std::vector<Distance> snapshot() const {
    std::vector<Distance> out(n_);
    for (std::size_t i = 0; i < n_; ++i)
      out[i] = dist_[i].load(std::memory_order_relaxed);
    return out;
  }

 private:
  std::size_t n_;
  std::unique_ptr<std::atomic<Distance>[]> dist_;
};

/// Per-thread instrumentation, cache-padded; summed into SsspStats.
struct ThreadCounters {
  std::uint64_t relaxations = 0;    ///< edge relaxations attempted
  std::uint64_t updates = 0;        ///< successful distance improvements
  std::uint64_t steals = 0;         ///< chunks successfully stolen
  std::uint64_t steal_attempts = 0; ///< steal() calls on victims' deques
  std::uint64_t vertices_processed = 0;
  std::uint64_t stale_skips = 0;    ///< scheduled entries skipped as stale
  std::uint64_t steal_ns = 0;       ///< time inside victim sweeps
  std::uint64_t idle_ns = 0;        ///< time idling in termination scans
};

/// Which algorithm the front-end dispatches to.
enum class Algorithm {
  kDijkstra,       ///< sequential reference (binary/d-ary heap)
  kBellmanFord,    ///< round-synchronous frontier Bellman-Ford
  kDeltaStepping,  ///< GAP-style synchronous delta-stepping (+bucket fusion)
  kJulienne,       ///< GBBS-style centralized bucketing delta-stepping
  kDeltaStar,      ///< Dong et al. Δ*-stepping (threshold = min + Δ)
  kRhoStepping,    ///< Dong et al. ρ-stepping (threshold = ρ-th smallest)
  kRadiusStepping, ///< Blelloch et al. radius-stepping (extension baseline)
  kMqDijkstra,     ///< parallel Dijkstra over the MultiQueue
  kSmqDijkstra,    ///< parallel Dijkstra over the Stealing MultiQueue (ext.)
  kObim,           ///< Galois-style asynchronous delta-stepping (OBIM)
  kWasp,           ///< the paper's contribution
};

/// Parse/print helpers ("wasp", "gap", "gbbs", "dstar", "rho", "mq",
/// "galois", "dijkstra", "bf").
const char* algorithm_name(Algorithm a);
Algorithm parse_algorithm(const std::string& name);

/// Victim-selection policy of Wasp's work-stealing (the §4.2 ablation).
enum class StealPolicy {
  kPriorityNuma,  ///< the paper's protocol (Algorithm 2)
  kRandom,        ///< traditional random victim, `steal_retries` attempts
  kTwoChoice,     ///< MultiQueue-like: two random victims, steal the better
};

/// Wasp-specific knobs (paper §4.3-4.4 defaults).
struct WaspConfig {
  bool leaf_pruning = true;
  bool bidirectional_relaxation = true;
  bool neighborhood_decomposition = true;
  std::uint32_t theta = 1u << 20;  ///< neighborhood-decomposition threshold
  StealPolicy steal_policy = StealPolicy::kPriorityNuma;
  int steal_retries = 8;  ///< victim attempts for kRandom / kTwoChoice
  /// Chunk capacity in vertices; a compile-time property of the shipped
  /// instantiations (16, 32, 64, 128, 256). The paper uses 64 and reports
  /// insensitivity to the choice (§5.1).
  std::uint32_t chunk_capacity = 64;
  /// Synthetic NUMA topology override for tests/benches; empty = detect().
  std::shared_ptr<const NumaTopology> topology;
  /// Fault-injection engine installed on every worker for this run (tests
  /// only; null = no injection). Effective only in WASP_CHAOS builds.
  chaos::Engine* chaos = nullptr;
};

/// Options for run_sssp().
struct SsspOptions {
  Algorithm algo = Algorithm::kWasp;
  int threads = 1;
  Weight delta = 1;  ///< Δ (bucket width) for all Δ-based algorithms

  WaspConfig wasp;

  // Dong et al. stepping knobs.
  std::uint64_t rho = 1u << 14;     ///< ρ for ρ-stepping
  bool direction_optimize = true;   ///< pull step on huge frontiers
  // Radius-stepping knob.
  std::uint32_t radius_k = 16;      ///< k for the r_k(v) preprocessing
  // GAP knobs.
  bool bucket_fusion = true;
  // MultiQueue knobs.
  int mq_c = 2;
  int mq_stickiness = 8;
  int mq_buffer = 16;
  // Stealing-MultiQueue knob.
  int smq_steal_batch = 8;
  // Galois/OBIM knobs.
  std::uint32_t obim_chunk_size = 128;

  std::uint64_t seed = 0x5EEDULL;

  /// Fault-injection engine threaded to the workers of chaos-aware
  /// algorithms (Wasp, SMQ-Dijkstra, delta-stepping). Null = no injection.
  chaos::Engine* chaos = nullptr;
  /// Re-validate the CSR arrays (O(n + m)) before dispatch; the front-end
  /// always performs the O(1) source/threads/shape checks.
  bool paranoid_checks = false;
};

/// Instrumentation totals for one run.
struct SsspStats {
  double seconds = 0.0;            ///< parallel-phase wall time
  std::uint64_t relaxations = 0;
  std::uint64_t updates = 0;
  std::uint64_t steals = 0;
  std::uint64_t steal_attempts = 0;
  std::uint64_t stale_skips = 0;   ///< redundant scheduling (priority drift)
  std::uint64_t rounds = 0;        ///< synchronous steps (0 for async)
  std::uint64_t barrier_ns = 0;    ///< total barrier wait across threads
  std::uint64_t queue_op_ns = 0;   ///< total locked MultiQueue op time
  std::uint64_t steal_ns = 0;      ///< total time in Wasp victim sweeps
  std::uint64_t idle_ns = 0;       ///< total Wasp idle/termination-scan time
};

/// Distances plus stats.
struct SsspResult {
  std::vector<Distance> dist;
  SsspStats stats;
};

/// Sums an array of per-thread counters into `stats`.
void accumulate_counters(const std::vector<CachePadded<ThreadCounters>>& counters,
                         SsspStats& stats);

}  // namespace wasp
