// Shared machinery for every SSSP implementation: the atomic tentative-
// distance array, the CAS edge-relaxation primitive (paper Algorithm 1,
// relax()), the run-lifecycle context every parallel algorithm executes
// under (RunContext: team + metrics + optional trace/observer/chaos), and
// the option/result types of the unified front-end in sssp.hpp.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/trace.hpp"
#include "support/cancel.hpp"
#include "support/chaos.hpp"
#include "support/numa.hpp"
#include "support/types.hpp"
#include "verify/checked_atomic.hpp"

namespace wasp {

class ThreadTeam;

/// Tentative-distance array with atomic CAS updates, epoch-versioned so a
/// pooled array re-initializes in O(1) between solves instead of O(V).
///
/// Each entry packs {epoch tag : high 32, distance : low 32} into one
/// 64-bit atomic word. An entry whose tag differs from the array's current
/// epoch is logically kInfDist — so new_epoch() invalidates every entry
/// without touching memory. The tag is 32 bits wide; when it wraps (once
/// per 2^32 solves) a full O(V) sweep re-stamps the array, because entries
/// stale since tag-space-ago would otherwise read as live again.
///
/// The epoch is mutated only between parallel phases (by the dispatching
/// thread, ordered against workers by ThreadTeam fork/join), so workers
/// read a stable plain value and all same-run CAS traffic carries one tag:
/// the packed compare-exchange is exactly the old 32-bit distance CAS with
/// a constant prefix.
class AtomicDistances {
 public:
  explicit AtomicDistances(std::size_t n)
      : n_(n), dist_(std::make_unique<verify::atomic<std::uint64_t>[]>(n)) {
    sweep();
  }

  [[nodiscard]] std::size_t size() const { return n_; }

  /// Relaxed: distance reads are admissibly stale — every algorithm
  /// re-validates (stale-skip check or CAS), and cross-thread visibility of
  /// the *final* values rides the scheduler's own edges (barriers, steals).
  [[nodiscard]] Distance load(VertexId v) const {
    return decode(dist_[v].load(std::memory_order_relaxed));
  }

  /// Relaxed: pre-run seeding; the team launch publishes it.
  void store(VertexId v, Distance d) {
    dist_[v].store(pack(d), std::memory_order_relaxed);
  }

  /// The relax() primitive of Algorithm 1 (lines 1-8): lowers dist[v] to
  /// `candidate` with a CAS loop. Returns true when this call achieved a
  /// strict improvement (the caller then reschedules v). Success publishes
  /// with release semantics so a scheduler flag written afterwards carries
  /// visibility of the new distance.
  /// Candidates must come from saturating_add (see types.hpp): kInfDist can
  /// never win the strict-decrease test, so wrapped sums cannot corrupt the
  /// array. A stale-epoch entry decodes to kInfDist and the CAS compares
  /// the full packed word, so overwriting it is exactly the inf-entry case.
  bool relax_to(VertexId v, Distance candidate) {
    std::uint64_t old = dist_[v].load(std::memory_order_relaxed);
    while (candidate < decode(old)) {
      WASP_CHAOS_YIELD(chaos::Point::kYieldBeforeCas);
      // Release on success: an acq_rel frontier-flag exchange that reads
      // our flag write also sees this improved distance (bellman_ford's
      // dedup pairing). Relaxed on failure: the loop re-reads `old` and
      // the monotone-min argument needs no ordering.
      if (dist_[v].compare_exchange_weak(old, pack(candidate),
                                         std::memory_order_release,
                                         std::memory_order_relaxed)) {
        return true;
      }
      WASP_CHAOS_YIELD(chaos::Point::kYieldAfterCas);
      // `old` reloaded by the failed CAS; loop re-checks the improvement.
    }
    return false;
  }

  /// Copies distances out (result snapshot; call after the parallel phase).
  /// Relaxed: called after the team joins, which orders all writes.
  [[nodiscard]] std::vector<Distance> snapshot() const {
    std::vector<Distance> out(n_);
    for (std::size_t i = 0; i < n_; ++i)
      out[i] = decode(dist_[i].load(std::memory_order_relaxed));
    return out;
  }

  /// O(1) logical reset of every entry to kInfDist. Call between parallel
  /// phases only. Returns true when the tag wrapped and an O(V) sweep ran.
  bool new_epoch() {
    ++epoch_;
    if (epoch_ != 0) return false;
    sweep();
    return true;
  }

  [[nodiscard]] std::uint32_t epoch() const { return epoch_; }

  /// Test hook: jumps the tag (e.g. to 0xFFFFFFFF to force a wrap on the
  /// next new_epoch) and re-stamps the array as all-kInfDist under it.
  void debug_set_epoch(std::uint32_t e) {
    epoch_ = e;
    sweep();
  }

  /// Address of v's packed entry, for software prefetch ahead of load()/
  /// relax_to() (prefetch.hpp).
  [[nodiscard]] const void* prefetch_addr(VertexId v) const {
    return &dist_[v];
  }

 private:
  [[nodiscard]] std::uint64_t pack(Distance d) const {
    return (static_cast<std::uint64_t>(epoch_) << 32) | d;
  }
  [[nodiscard]] Distance decode(std::uint64_t word) const {
    return (word >> 32) == epoch_ ? static_cast<Distance>(word) : kInfDist;
  }
  // Relaxed: sweep runs between parallel phases (no concurrent access).
  void sweep() {
    for (std::size_t i = 0; i < n_; ++i)
      dist_[i].store(pack(kInfDist), std::memory_order_relaxed);
  }

  std::size_t n_;
  // Starts at 1, never 0: a freshly value-initialized atomic entry holds the
  // all-zero word, and under epoch 0 that word would decode as a LIVE
  // {tag 0, distance 0} — a ghost zero that beats every candidate and
  // silently defeats relax_to(). A reader racing the constructing thread's
  // sweep (partitioned shards are built by fragment leaders inside the
  // parallel phase; the stale-read verify model exercises exactly this) must
  // instead decode the zero word as a tag mismatch, i.e. kInfDist, which the
  // monotone CAS handles harmlessly.
  std::uint32_t epoch_ = 1;
  std::unique_ptr<verify::atomic<std::uint64_t>[]> dist_;
};

/// Reusable tentative-distance storage for repeat queries. Not thread-safe:
/// acquire() runs between parallel phases (the front-end calls it before
/// handing workers the array). Solver owns one so repeated solve() calls
/// skip the O(V) fill; the plain run_sssp overloads use a per-call pool.
class DistancePool {
 public:
  /// Returns an array of `n` logically-kInfDist entries. The fast path is
  /// an O(1) epoch bump; first use, a size change, and a tag wrap each cost
  /// one O(n) initialization, counted in sweeps().
  AtomicDistances& acquire(std::size_t n) {
    if (dist_ == nullptr || dist_->size() != n) {
      dist_ = std::make_unique<AtomicDistances>(n);
      ++sweeps_;
    } else if (dist_->new_epoch()) {
      ++sweeps_;
    }
    return *dist_;
  }

  /// O(n) initializations performed so far (the epoch_sweeps counter reports
  /// the per-run delta).
  [[nodiscard]] std::uint64_t sweeps() const { return sweeps_; }

  /// The held array, null before the first acquire (test/debug access).
  [[nodiscard]] AtomicDistances* current() { return dist_.get(); }

 private:
  std::unique_ptr<AtomicDistances> dist_;
  std::uint64_t sweeps_ = 0;
};

/// Which algorithm the front-end dispatches to.
enum class Algorithm {
  kDijkstra,       ///< sequential reference (binary/d-ary heap)
  kBellmanFord,    ///< round-synchronous frontier Bellman-Ford
  kDeltaStepping,  ///< GAP-style synchronous delta-stepping (+bucket fusion)
  kJulienne,       ///< GBBS-style centralized bucketing delta-stepping
  kDeltaStar,      ///< Dong et al. Δ*-stepping (threshold = min + Δ)
  kRhoStepping,    ///< Dong et al. ρ-stepping (threshold = ρ-th smallest)
  kRadiusStepping, ///< Blelloch et al. radius-stepping (extension baseline)
  kMqDijkstra,     ///< parallel Dijkstra over the MultiQueue
  kSmqDijkstra,    ///< parallel Dijkstra over the Stealing MultiQueue (ext.)
  kObim,           ///< Galois-style asynchronous delta-stepping (OBIM)
  kWasp,           ///< the paper's contribution
};

/// The Algorithm <-> name mapping lives in one table (common.cpp): the CLI,
/// the bench labels, and the error messages all read from it.
/// Canonical name of `a` ("wasp", "gap", "gbbs", ...).
const char* to_string(Algorithm a);
/// Back-compat alias for to_string().
inline const char* algorithm_name(Algorithm a) { return to_string(a); }
/// Parses a canonical name or its documented alias ("bf"/"bellman-ford",
/// "gap"/"delta", ...); throws std::invalid_argument listing the accepted
/// names otherwise.
Algorithm parse_algorithm(std::string_view name);
/// "dijkstra|bf|gap|..." — every canonical name, for CLI help text.
std::string algorithm_list();

/// Victim-selection policy of Wasp's work-stealing (the §4.2 ablation).
enum class StealPolicy {
  kPriorityNuma,  ///< the paper's protocol (Algorithm 2)
  kRandom,        ///< traditional random victim, `steal_retries` attempts
  kTwoChoice,     ///< MultiQueue-like: two random victims, steal the better
};

/// Wasp-specific knobs (paper §4.3-4.4 defaults).
struct WaspConfig {
  bool leaf_pruning = true;
  bool bidirectional_relaxation = true;
  bool neighborhood_decomposition = true;
  std::uint32_t theta = 1u << 20;  ///< neighborhood-decomposition threshold
  StealPolicy steal_policy = StealPolicy::kPriorityNuma;
  int steal_retries = 8;  ///< victim attempts for kRandom / kTwoChoice
  /// Chunk capacity in vertices; a compile-time property of the shipped
  /// instantiations (16, 32, 64, 128, 256). The paper uses 64 and reports
  /// insensitivity to the choice (§5.1).
  std::uint32_t chunk_capacity = 64;
  /// Synthetic NUMA topology override for tests/benches; empty = detect().
  /// Solver fills this in once at construction so repeated solve() calls
  /// skip re-detection.
  std::shared_ptr<const NumaTopology> topology;
  /// Fault-injection engine installed on every worker for this run (tests
  /// only; null = no injection). Effective only in WASP_CHAOS builds.
  chaos::Engine* chaos = nullptr;

  /// Partitioned execution mode (ROADMAP item 4, docs/NUMA.md): split the
  /// CSR into per-NUMA-node fragments, run the deque protocol inside each
  /// fragment, and route boundary relaxations through batched remote queues
  /// instead of CAS traffic on remote cache lines.
  struct Partition {
    bool enabled = false;
    /// Fragment count; 0 = one per NUMA node of `topology` (clamped to the
    /// thread count by the driver so every fragment has a worker).
    int num_fragments = 0;
    /// Records buffered per destination before a batch is published, in
    /// [1, 256] (256 is RemoteBatch::kCapacity). Smaller = lower boundary
    /// latency, larger = fewer cross-node lines per record.
    std::uint32_t flush_threshold = 64;
  };
  Partition partition;
};

/// Dong et al. stepping knobs (Δ*-, ρ-, radius-stepping).
struct SteppingOptions {
  std::uint64_t rho = 1u << 14;    ///< ρ for ρ-stepping
  bool direction_optimize = true;  ///< pull step on huge frontiers (also
                                   ///< honored by Julienne)
  std::uint32_t radius_k = 16;     ///< k for the r_k(v) preprocessing
};

/// GAP delta-stepping knobs.
struct GapOptions {
  bool bucket_fusion = true;
};

/// MultiQueue knobs.
struct MqOptions {
  int c = 2;           ///< queues per thread
  int stickiness = 8;  ///< operations before re-picking queues
  int buffer = 16;     ///< per-thread insertion buffer
};

/// Stealing-MultiQueue knob.
struct SmqOptions {
  int steal_batch = 8;
};

/// Galois/OBIM knob.
struct ObimOptions {
  std::uint32_t chunk_size = 128;
};

/// Options for run_sssp() / Solver. Per-algorithm knobs are nested; the
/// top level keeps only what every algorithm shares (algo, threads, Δ,
/// seed) and the run-lifecycle hooks.
struct SsspOptions {
  Algorithm algo = Algorithm::kWasp;
  int threads = 1;
  Weight delta = 1;  ///< Δ (bucket width) for all Δ-based algorithms

  WaspConfig wasp;
  SteppingOptions stepping;
  GapOptions gap;
  MqOptions mq;
  SmqOptions smq;
  ObimOptions obim;

  std::uint64_t seed = 0x5EEDULL;

  /// Software-prefetch lookahead, in edges, for the relaxation loops of
  /// Wasp, delta-stepping, and the MultiQueue/SMQ solvers: while relaxing
  /// edge j the worker prefetches the distance entry of edge j+k's target
  /// (and, in chunk drains, the next vertex's adjacency offsets). 0
  /// disables. Purely a performance knob — results are bit-identical at any
  /// setting. See docs/PERFORMANCE.md for tuning.
  std::uint32_t prefetch_lookahead = 4;

  /// Fault-injection engine threaded to the workers of chaos-aware
  /// algorithms (Wasp, SMQ-Dijkstra, delta-stepping). Null = no injection.
  chaos::Engine* chaos = nullptr;
  /// Cooperative cancellation/deadline token (null = not cancellable).
  /// Polled at cheap boundaries by every parallel algorithm; a fired token
  /// makes the front-end discard the partial run (epoch bump) and throw
  /// SolveCancelledError. Must outlive the run. The sequential Dijkstra
  /// reference checks it only at entry — see docs/ROBUSTNESS.md for the
  /// per-algorithm granularity.
  CancelToken* cancel = nullptr;
  /// Run-lifecycle hooks (null = none): live callbacks and the event-ring
  /// recorder. Both must outlive the run; the observer must be thread-safe.
  obs::RunObserver* observer = nullptr;
  obs::TraceRecorder* trace = nullptr;
  /// Re-validate the CSR arrays (O(n + m)) before dispatch; the front-end
  /// always performs the O(1) source/threads/shape checks.
  bool paranoid_checks = false;

  /// Rejects out-of-range knobs with InvalidOptionsError (delta == 0,
  /// threads < 1, mq.c < 1, wasp.chunk_capacity outside the shipped
  /// {16,32,64,128,256} instantiations, negative smq.steal_batch, ...).
  /// Called once at the run_sssp/Solver front door; the algorithms assume
  /// validated knobs.
  void validate() const;
};

/// Instrumentation totals for one run — a compatibility view computed from
/// the MetricsSnapshot (stats_from_snapshot below), kept so pre-registry
/// callers and the bench tables read the totals they always did.
struct SsspStats {
  double seconds = 0.0;            ///< parallel-phase wall time
  std::uint64_t relaxations = 0;
  std::uint64_t updates = 0;
  std::uint64_t steals = 0;
  std::uint64_t steal_attempts = 0;
  std::uint64_t stale_skips = 0;   ///< redundant scheduling (priority drift)
  std::uint64_t rounds = 0;        ///< synchronous steps (0 for async)
  std::uint64_t barrier_ns = 0;    ///< total barrier wait across threads
  std::uint64_t queue_op_ns = 0;   ///< total locked MultiQueue op time
  std::uint64_t steal_ns = 0;      ///< total time in Wasp victim sweeps
  std::uint64_t idle_ns = 0;       ///< total Wasp idle/termination-scan time
};

/// Projects a registry snapshot onto the legacy stats view.
SsspStats stats_from_snapshot(const obs::MetricsSnapshot& snap);

/// Distances plus instrumentation (stats is the legacy view of metrics).
struct SsspResult {
  std::vector<Distance> dist;
  SsspStats stats;
  obs::MetricsSnapshot metrics;
};

/// Everything a parallel SSSP implementation runs under. The front-end
/// (run_sssp / Solver::solve) assembles one per run; the algorithm resets
/// ctx.metrics at entry and reports exclusively through it.
struct RunContext {
  ThreadTeam& team;
  obs::MetricsRegistry& metrics;  ///< must have >= team.size() shards
  obs::TraceRecorder* trace = nullptr;
  obs::RunObserver* observer = nullptr;
  chaos::Engine* chaos = nullptr;
  /// Pool the front-end acquires ctx.dist from (null = per-call pool;
  /// Solver points this at its owned pool to amortize the O(V) fill).
  DistancePool* pool = nullptr;
  /// This run's tentative-distance array, acquired (all-kInfDist) by
  /// dispatch_sssp; the parallel algorithms use it instead of allocating.
  AtomicDistances* dist = nullptr;
  /// options.prefetch_lookahead, copied here by dispatch_sssp.
  std::uint32_t prefetch_lookahead = 0;
  /// options.cancel, copied here by dispatch_sssp (null = not cancellable).
  CancelToken* cancel = nullptr;

  /// Hot-path cancellation poll (relaxed flag load; see cancel.hpp). Safe
  /// from any worker.
  [[nodiscard]] bool stop_requested() const {
    return cancel != nullptr && cancel->cancel_requested();
  }

  /// Low-frequency poll that also checks the token's deadline (one clock
  /// read). Use at round tops, steal-sweep entries, and termination scans.
  [[nodiscard]] bool poll_cancel() const {
    return cancel != nullptr && cancel->poll();
  }

  /// The run's distance array: what dispatch_sssp acquired, or — for direct
  /// algorithm calls that bypass the front door (tests, microbenches) — `n`
  /// logically-kInfDist entries acquired here from a context-owned pool.
  [[nodiscard]] AtomicDistances& distances(std::size_t n) {
    if (dist == nullptr || dist->size() != n) {
      if (pool == nullptr) {
        if (!owned_pool) owned_pool = std::make_unique<DistancePool>();
        pool = owned_pool.get();
      }
      dist = &pool->acquire(n);
    }
    return *dist;
  }

  /// Fallback pool for the direct-call path of distances(); the front door
  /// never touches it.
  std::unique_ptr<DistancePool> owned_pool = nullptr;
};

/// Shared run epilogue: records the team gauges and the elapsed time into
/// the registry, snapshots it into `result.metrics`, and fills the legacy
/// `result.stats` view.
void finalize_result(RunContext& ctx, double seconds, SsspResult& result);

}  // namespace wasp
