// Partitioned Wasp (ROADMAP item 4, docs/NUMA.md): fragment-local frontiers
// with batched remote relaxation queues.
//
// The graph is split into per-NUMA-node fragments (graph/partition.hpp).
// Inside a fragment, today's asynchronous deque protocol runs unchanged:
// thread-local buckets, a stealable current-bucket deque, `curr` publication,
// NUMA-tiered stealing — except victims are restricted to the fragment's own
// workers, so steal CAS traffic never crosses a node boundary. Each fragment
// owns a private distance shard (first-touched by its leader); a relaxation
// whose target lives in another fragment becomes a {vertex, dist} record in a
// batched remote queue (concurrent/remote_queue.hpp) instead of a CAS on a
// remote cache line. Batches are published when full and at bucket
// boundaries; destination workers drain their fragment's channel at round
// boundaries and inside termination sweeps.
//
// Termination extends the §4.3 double-scan with a quiescence barrier: a
// passing scan (every board slot idle, zero in-flight records, stable
// epoch) casts a revocable VOTE instead of exiting, and workers leave
// together once all p votes are in. Flat wasp tolerates a worker exiting on
// a stale verdict — the remaining workers finish the work and the team join
// covers completion — but a partitioned worker's early exit would strand
// its fragment's inbound channel (no other member drains it), hanging the
// survivors. The barrier makes that impossible: a sweep revokes its vote
// first, so a voted worker provably holds no work, and a published batch
// keeps its publisher unvoted until every record is applied — a full vote
// count is therefore true global quiescence (argument at terminate()).
//
// The fixed point is the same exact-distance solution as flat wasp_sssp
// (monotone relaxation converges regardless of routing); the partition suite
// pins bit-identical snapshots across synthetic topologies and chaos
// schedules. Bidirectional relaxation is disabled (it would read remote
// shards); leaf pruning and neighborhood decomposition apply unchanged.
#include "sssp/wasp.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <memory>
#include <thread>
#include <vector>

#include "concurrent/chase_lev_deque.hpp"
#include "concurrent/chunk.hpp"
#include "concurrent/remote_queue.hpp"
#include "graph/algorithms.hpp"
#include "graph/partition.hpp"
#include "sssp/curr_board.hpp"
#include "support/errors.hpp"
#include "support/prefetch.hpp"
#include "support/random.hpp"
#include "support/thread_team.hpp"
#include "support/timer.hpp"
#include "verify/checked_atomic.hpp"
#include "verify/scheduler.hpp"

namespace wasp {

namespace {

using CId = obs::CounterId;
using EK = obs::EventKind;

/// Same role as in wasp.cpp: a thief holding freshly stolen or freshly
/// drained remote work is never board-idle.
constexpr std::uint64_t kStealingPriority = kInfPriority - 1;

/// Sentinel neighbour range meaning "the whole adjacency list".
constexpr std::uint32_t kFullRange = ~std::uint32_t{0};

/// Thread-local bucket list (identical to wasp.cpp's; the partitioned worker
/// is a separate instantiation so the flat engine's internals stay private).
template <typename ChunkT>
struct BucketList {
  std::vector<ChunkT*> head;
  std::uint64_t min_hint = kInfPriority;

  ChunkT*& at(std::uint64_t level) {
    if (level >= head.size()) {
      const std::size_t cap = std::max<std::size_t>(
          64, std::bit_ceil(static_cast<std::size_t>(level) + 1));
      head.resize(cap, nullptr);
    }
    return head[level];
  }

  std::uint64_t min_non_empty() {
    for (std::uint64_t l = min_hint; l < head.size(); ++l) {
      if (head[l] != nullptr) {
        min_hint = l;
        return l;
      }
    }
    min_hint = kInfPriority;
    return kInfPriority;
  }
};

/// Run-wide shared state. The curr board, steal epoch, and relay network are
/// global (termination is a whole-run property); deques, victim tiers, and
/// distance shards are per-fragment.
template <typename ChunkT>
struct PartShared {
  const Graph& graph;
  const GraphPartition& part;
  Weight delta;
  const WaspConfig& config;
  RunContext& ctx;
  const std::vector<std::uint8_t>* leaf;  // null when leaf pruning is off
  int num_workers;
  CurrBoard curr;  ///< one global board over all workers of all fragments
  std::vector<std::unique_ptr<ChaseLevDeque<ChunkT*>>> deques;  // per worker
  BasicChunkArena<ChunkT> arena;
  RemoteRelayNetwork net;  ///< per-fragment inbound channels + in-flight count
  /// Per-fragment distance shards, constructed by each fragment's leader in
  /// the placement phase (the constructor's sweep is the first touch).
  std::vector<std::unique_ptr<AtomicDistances>> shards;
  std::vector<int> frag_of;                ///< worker -> fragment
  std::vector<std::vector<int>> members;   ///< fragment -> worker tids
  std::vector<int> local_idx;              ///< worker -> index in its members
  std::vector<int> node_of;                ///< worker -> NUMA node
  /// Victim tiers per fragment, over that fragment's members only (indices
  /// are member-local; translate through `members`).
  std::vector<std::unique_ptr<VictimTiers>> frag_tiers;
  /// Same role as WaspShared::steal_epoch: bumped before any termination-mode
  /// sweep (steal or remote drain) can move work behind a scan.
  verify::atomic<std::uint64_t> steal_epoch{0};
  /// Quiescence barrier (terminate()): the number of workers whose latest
  /// scan passed and who have not swept since. Exit requires quiesced == p.
  verify::atomic<std::uint32_t> quiesced{0};

  PartShared(const Graph& g, const GraphPartition& part_, Weight delta_,
             const WaspConfig& cfg, RunContext& ctx_,
             const std::vector<std::uint8_t>* leaf_, int p)
      : graph(g), part(part_), delta(delta_), config(cfg), ctx(ctx_),
        leaf(leaf_), num_workers(p), curr(p),
        deques(static_cast<std::size_t>(p)), net(part_.num_fragments()),
        shards(static_cast<std::size_t>(part_.num_fragments())) {
    for (auto& d : deques) d = std::make_unique<ChaseLevDeque<ChunkT*>>();
  }
};

/// Per-thread worker: Algorithms 1 and 2 scoped to one fragment, plus the
/// remote send/drain obligations.
template <typename ChunkT>
class PartWorker {
 public:
  PartWorker(PartShared<ChunkT>& shared, int tid)
      : s_(shared), tid_(tid),
        frag_(shared.frag_of[static_cast<std::size_t>(tid)]),
        fragment_(shared.part.fragment(frag_)),
        dist_(*shared.shards[static_cast<std::size_t>(frag_)]),
        pool_(shared.arena), my_(shared.ctx.metrics.shard(tid)),
        rng_(hash_mix(0xA5B5ULL + static_cast<std::uint64_t>(tid))),
        deque_(shared.deques[static_cast<std::size_t>(tid)].get()),
        sender_(shared.net, shared.config.partition.flush_threshold),
        lookahead_(shared.ctx.prefetch_lookahead) {
    buffer_ = alloc_chunk();
  }

  /// Seeds the source into this worker's current bucket. Called on one
  /// worker of the source's fragment before run(); the driver pre-published
  /// this worker busy at level 0. The seed worker is its fragment's leader,
  /// so this store is sequenced after the shard's constructor sweep on the
  /// same logical thread — it must happen here, on a team worker, not on
  /// the driver thread: the verify model only records stores from bound
  /// threads, and peers that read a stale kInfDist are harmless (the CAS
  /// relax path is monotone and this worker schedules the source itself).
  void seed(VertexId source) {
    dist_.store(source - fragment_.begin, 0);
    buffer_->set_priority(0);
    buffer_->push(source);
    publish_curr(0);
  }

  /// The main work loop: flat wasp's Algorithm 1 plus outbound flushes and
  /// inbound drains at bucket boundaries.
  void run() {
    for (;;) {
      // Cancellation point: abandon local buckets (arena-owned) and any
      // published-but-undrained inbound batches (freed by the network's
      // teardown); publishing kInfPriority lets peers reach all-idle.
      if (s_.ctx.stop_requested()) {
        publish_curr(kInfPriority);
        return;
      }
      drain_current_bucket();
      // Bucket boundary: publish open outbound batches so neighbour
      // fragments see our boundary relaxations, then pick up theirs.
      flush_outbound();
      // Guard: a pristine worker (board slot still kInfPriority, nothing
      // published since launch) must not schedule drained records here — a
      // scanner could reach its all-idle verdict while this worker holds
      // the fresh work. The first terminate() sweep drains instead, under
      // kStealingPriority and an epoch bump.
      //
      // When the drain schedules anything, restart the iteration: a record
      // whose level equals curr_cache_ lands in buffer_, which
      // min_non_empty() below cannot see — falling through could reach
      // terminate() holding live work whose in-flight accounting is already
      // settled, and the quiescence barrier would (soundly, by its own
      // lights) let every worker exit with the re-expansion lost.
      if (curr_cache_ != kInfPriority && drain_inbound() > 0) continue;

      const std::uint64_t next = buckets_.min_non_empty();
      if (try_steal_and_process(next)) continue;

      if (next != kInfPriority) {
        my_.inc(CId::kBucketAdvances);
        obs::trace_instant(s_.ctx.trace, tid_, EK::kBucketAdvance, next);
        publish_curr(next);
        pour_bucket(next);
        continue;
      }
      if (terminate()) return;
    }
  }

 private:
  ChunkT* alloc_chunk() {
    my_.inc(CId::kChunkAllocs);
    obs::trace_instant(s_.ctx.trace, tid_, EK::kChunkAlloc);
    return pool_.get();
  }

  // --- fragment-local distance shard --------------------------------------
  // All shard accesses translate the GLOBAL vertex id to the fragment-local
  // index; chunks, queues, and the leaf bitmap speak global ids throughout.

  [[nodiscard]] Distance shard_load(VertexId global_v) const {
    return dist_.load(global_v - fragment_.begin);
  }
  bool shard_relax(VertexId global_v, Distance candidate) {
    return dist_.relax_to(global_v - fragment_.begin, candidate);
  }

  // --- current bucket ----------------------------------------------------

  void publish_curr(std::uint64_t level) {
    curr_cache_ = level;
    // Chaos: widen the decide->publish window kStealingPriority protects.
    WASP_CHAOS_YIELD(chaos::Point::kDelayCurrPublish);
    s_.curr.publish(tid_, level);  // release (curr_board.hpp)
  }

  bool pop_current(VertexId& u, std::uint64_t& prio, std::uint32_t& begin,
                   std::uint32_t& end) {
    if (buffer_->empty()) {
      ChunkT* refill = deque_->pop_bottom();
      if (refill == nullptr) return false;
      pool_.put(buffer_);
      buffer_ = refill;
    }
    prio = buffer_->priority();
    if (buffer_->is_range()) {
      begin = buffer_->range_begin();
      end = buffer_->range_end();
      u = buffer_->pop();
      buffer_->reset();  // range chunks hold exactly one vertex
    } else {
      begin = 0;
      end = kFullRange;
      u = buffer_->pop();
      // Chunk-drain lookahead against the fragment-local arrays.
      if (lookahead_ != 0 && !buffer_->empty()) {
        const VertexId ahead =
            buffer_->peek(std::min(lookahead_ - 1, buffer_->size() - 1));
        prefetch_read(dist_.prefetch_addr(ahead - fragment_.begin));
        prefetch_read(fragment_.offsets.data() + (ahead - fragment_.begin));
        my_.inc(CId::kPrefetchIssued, 2);
      }
    }
    return true;
  }

  void drain_current_bucket() {
    VertexId u;
    std::uint64_t prio;
    std::uint32_t begin, end;
    while (pop_current(u, prio, begin, end)) {
      // Cancellation point (one relaxed load per pop), as in flat wasp.
      if (s_.ctx.stop_requested()) return;
      if (is_stale(u, prio)) {
        my_.inc(CId::kStaleSkips);
        continue;
      }
      process_neighborhood(u, prio, begin, end);
    }
  }

  [[nodiscard]] bool is_stale(VertexId u, std::uint64_t prio) const {
    return static_cast<std::uint64_t>(shard_load(u)) <
           prio * static_cast<std::uint64_t>(s_.delta);
  }

  // --- pushing updates ---------------------------------------------------

  void push_to_buckets(VertexId v, std::uint64_t level) {
    if (level == curr_cache_) {
      if (buffer_->full()) {
        deque_->push_bottom(buffer_);
        buffer_ = alloc_chunk();
      }
      if (buffer_->empty()) buffer_->set_priority(level);
      buffer_->push(v);
      return;
    }
    ChunkT*& head = buckets_.at(level);
    if (head == nullptr || head->full()) {
      ChunkT* fresh = alloc_chunk();
      fresh->set_priority(level);
      fresh->next = head;
      head = fresh;
    }
    head->push(v);
    buckets_.min_hint = std::min(buckets_.min_hint, level);
  }

  void push_chunk(ChunkT* c, std::uint64_t level) {
    c->set_priority(level);
    if (level == curr_cache_) {
      deque_->push_bottom(c);
      return;
    }
    ChunkT*& head = buckets_.at(level);
    c->next = head;
    head = c;
    buckets_.min_hint = std::min(buckets_.min_hint, level);
  }

  // --- relaxation --------------------------------------------------------

  void process_neighborhood(VertexId u, std::uint64_t prio, std::uint32_t begin,
                            std::uint32_t end) {
    const std::uint32_t degree = fragment_.out_degree(u);
    if (end == kFullRange) {
      end = degree;
      // Neighborhood decomposition (§4.4) over the fragment-local row.
      if (s_.config.neighborhood_decomposition && degree > s_.config.theta) {
        for (std::uint32_t lo = s_.config.theta; lo < degree;
             lo += s_.config.theta) {
          ChunkT* slice = alloc_chunk();
          slice->make_range(u, lo, std::min(lo + s_.config.theta, degree));
          push_chunk(slice, prio);
        }
        end = s_.config.theta;
      }
    }
    // No bidirectional relaxation here: pulling through in-edges would read
    // neighbour distances that may live in remote shards.

    const Distance du = shard_load(u);
    my_.inc(CId::kVerticesProcessed);
    ++progress_;
    if ((progress_ & 0xFFFu) == 0) {
      if (s_.ctx.observer != nullptr)
        s_.ctx.observer->on_progress(tid_, progress_);
      // Deadline poll at the observer cadence, as in flat wasp.
      (void)s_.ctx.poll_cancel();
    }

    const WEdge* edges = fragment_.edge_data() + fragment_.edge_offset(u);
    for (std::uint32_t j = begin; j < end; ++j) {
      if (lookahead_ != 0 && j + lookahead_ < end) {
        const VertexId target = edges[j + lookahead_].dst;
        if (fragment_.owns(target))
          prefetch_read(dist_.prefetch_addr(target - fragment_.begin));
      }
      const WEdge& e = edges[j];
      my_.inc(CId::kRelaxations);
      const Distance nd = saturating_add(du, e.w);
      if (fragment_.owns(e.dst)) {
        if (shard_relax(e.dst, nd)) {
          my_.inc(CId::kUpdates);
          // Leaf pruning (§4.4): update the distance, never schedule.
          if (s_.leaf != nullptr && (*s_.leaf)[e.dst]) continue;
          push_to_buckets(e.dst, static_cast<std::uint64_t>(nd) / s_.delta);
        }
      } else {
        // Boundary edge: defer to the owner through its remote queue. No
        // stale filter here beyond saturation — the receiver's relax CAS is
        // the arbiter (its shard may already hold something better).
        my_.inc(CId::kRemoteRelaxations);
        if (sender_.send(s_.part.owner_of(e.dst), e.dst, nd))
          my_.inc(CId::kRemoteBatches);
      }
    }
    if (lookahead_ != 0 && end - begin > lookahead_)
      my_.inc(CId::kPrefetchIssued, end - begin - lookahead_);
  }

  // --- remote queues ------------------------------------------------------

  /// Publishes every open outbound batch (bucket boundary / pre-idle).
  void flush_outbound() {
    const int published = sender_.flush_all();
    if (published > 0)
      my_.inc(CId::kRemoteBatches, static_cast<std::uint64_t>(published));
  }

  /// Grabs this fragment's inbound channel and applies the records to the
  /// local shard, scheduling improvements into the local buckets. Returns
  /// the number of vertices scheduled. Caller contract (termination
  /// soundness): this worker's board slot must not read kInfPriority while
  /// the call can schedule work — run() calls it under a real level,
  /// terminate() under kStealingPriority.
  std::uint64_t drain_inbound() {
    if (!s_.net.pending(frag_)) return 0;
    RemoteBatch* batch = s_.net.grab_all(frag_);
    if (batch == nullptr) return 0;  // a peer member grabbed it first
    std::uint64_t scheduled = 0;
    std::uint64_t grabbed = 0;
    bool cancelled = false;
    while (batch != nullptr) {
      RemoteBatch* next_batch = batch->next;
      const std::uint32_t count = batch->size();
      grabbed += count;
      // Cancellation point at batch granularity: a cancelled drain still
      // frees every grabbed batch and settles the in-flight accounting.
      cancelled = cancelled || s_.ctx.stop_requested();
      if (!cancelled) {
        for (std::uint32_t i = 0; i < count; ++i) {
          const RemoteRelax r = batch->record(i);
          if (shard_relax(r.vertex, r.dist)) {
            my_.inc(CId::kUpdates);
            if (s_.leaf != nullptr && (*s_.leaf)[r.vertex]) continue;
            push_to_buckets(r.vertex,
                            static_cast<std::uint64_t>(r.dist) / s_.delta);
            ++scheduled;
          } else {
            my_.inc(CId::kStaleSkips);
          }
        }
      }
      // Subtract only now: the records are applied (or the run is being
      // cancelled and the verdict no longer matters). The termination
      // scan's zero-in-flight leg relies on this ordering.
      s_.net.on_drained(count);
      free_batch(batch);
      batch = next_batch;
    }
    my_.observe(obs::HistId::kRemoteQueueDepth, grabbed);
    return scheduled;
  }

  // --- work stealing (fragment-local) -------------------------------------

  /// As flat wasp's sweep, but victims come only from this fragment's
  /// members — stealing never crosses a fragment (hence, with aligned
  /// placement, never a NUMA node).
  bool try_steal_and_process(std::uint64_t next) {
    // Deadline poll at sweep entry, as in flat wasp.
    (void)s_.ctx.poll_cancel();
    const std::vector<int>& members =
        s_.members[static_cast<std::size_t>(frag_)];
    if (members.size() <= 1) return false;
    ChunkT* stolen[64];
    int count = 0;
    obs::trace_begin(s_.ctx.trace, tid_, EK::kStealSweep, next);
    Timer steal_timer;
    switch (s_.config.steal_policy) {
      case StealPolicy::kPriorityNuma:
        count = steal_priority_numa(next, stolen);
        break;
      case StealPolicy::kRandom:
        count = steal_random(stolen);
        break;
      case StealPolicy::kTwoChoice:
        count = steal_two_choice(stolen);
        break;
    }
    const std::uint64_t sweep_ns = steal_timer.nanoseconds();
    my_.inc(CId::kStealNs, sweep_ns);
    my_.observe(obs::HistId::kStealSweepNs, sweep_ns);
    obs::trace_end(s_.ctx.trace, tid_, EK::kStealSweep,
                   static_cast<std::uint64_t>(count));
    if (count == 0) return false;

    std::uint64_t best = kInfPriority;
    for (int i = 0; i < count; ++i)
      best = std::min(best, stolen[i]->priority());
    publish_curr(best);

    for (int i = 0; i < count; ++i) {
      ChunkT* c = stolen[i];
      const std::uint64_t prio = c->priority();
      const bool range = c->is_range();
      const std::uint32_t rb = c->range_begin();
      const std::uint32_t re = c->range_end();
      while (!c->empty()) {
        if (s_.ctx.stop_requested()) {
          c->reset();
          break;
        }
        const VertexId u = c->pop();
        if (is_stale(u, prio)) {
          my_.inc(CId::kStaleSkips);
          continue;
        }
        if (range) {
          process_neighborhood(u, prio, rb, re);
        } else {
          process_neighborhood(u, prio, 0, kFullRange);
        }
      }
      c->reset();
      pool_.put(c);
    }
    return true;
  }

  /// One successful steal from a fragment member (usually same-node; a
  /// membership fix-up can place a worker off its fragment's node).
  void record_steal(int victim) {
    my_.inc(CId::kSteals);
    my_.inc(s_.node_of[static_cast<std::size_t>(victim)] ==
                    s_.node_of[static_cast<std::size_t>(tid_)]
                ? CId::kLocalSteals
                : CId::kRemoteSteals);
  }

  int steal_priority_numa(std::uint64_t next, ChunkT** out) {
    const std::vector<int>& members =
        s_.members[static_cast<std::size_t>(frag_)];
    const VictimTiers& tiers = *s_.frag_tiers[static_cast<std::size_t>(frag_)];
    const int me = s_.local_idx[static_cast<std::size_t>(tid_)];
    int count = 0;
    for (const auto& tier : tiers.tiers(me)) {
      for (const int lv : tier) {
        const int t = members[static_cast<std::size_t>(lv)];
        my_.inc(CId::kStealAttempts);
        obs::trace_instant(s_.ctx.trace, tid_, EK::kStealAttempt,
                           static_cast<std::uint64_t>(t));
        const std::uint64_t victim_curr = s_.curr.probe(t);  // acquire
        if (victim_curr > next) {
          notify_steal(t, false);
          continue;
        }
        ChunkT* c = s_.deques[static_cast<std::size_t>(t)]->steal();
        notify_steal(t, c != nullptr);
        if (c != nullptr) {
          record_steal(t);
          out[count++] = c;
          if (count == 64) return count;
        }
      }
      if (count > 0) return count;
    }
    return count;
  }

  void notify_steal(int victim, bool success) {
    if (success)
      obs::trace_instant(s_.ctx.trace, tid_, EK::kStealSuccess,
                         static_cast<std::uint64_t>(victim));
    if (s_.ctx.observer != nullptr)
      s_.ctx.observer->on_steal(tid_, victim, success);
  }

  /// Random victim among fragment members (§4.2 ablation, scoped).
  int steal_random(ChunkT** out) {
    const std::vector<int>& members =
        s_.members[static_cast<std::size_t>(frag_)];
    const int m = static_cast<int>(members.size());
    const int me = s_.local_idx[static_cast<std::size_t>(tid_)];
    for (int attempt = 0; attempt <= s_.config.steal_retries; ++attempt) {
      int lv = static_cast<int>(
          rng_.next_below(static_cast<std::uint64_t>(m - 1)));
      if (lv >= me) ++lv;
      const int t = members[static_cast<std::size_t>(lv)];
      my_.inc(CId::kStealAttempts);
      obs::trace_instant(s_.ctx.trace, tid_, EK::kStealAttempt,
                         static_cast<std::uint64_t>(t));
      ChunkT* c = s_.deques[static_cast<std::size_t>(t)]->steal();
      notify_steal(t, c != nullptr);
      if (c != nullptr) {
        record_steal(t);
        out[0] = c;
        return 1;
      }
    }
    return 0;
  }

  /// Two-choice victim among fragment members (§4.2 ablation, scoped).
  int steal_two_choice(ChunkT** out) {
    const std::vector<int>& members =
        s_.members[static_cast<std::size_t>(frag_)];
    const int m = static_cast<int>(members.size());
    const int me = s_.local_idx[static_cast<std::size_t>(tid_)];
    for (int attempt = 0; attempt <= s_.config.steal_retries; ++attempt) {
      int a = static_cast<int>(
          rng_.next_below(static_cast<std::uint64_t>(m - 1)));
      if (a >= me) ++a;
      int b = static_cast<int>(
          rng_.next_below(static_cast<std::uint64_t>(m - 1)));
      if (b >= me) ++b;
      const int ta = members[static_cast<std::size_t>(a)];
      const int tb = members[static_cast<std::size_t>(b)];
      const std::uint64_t ca = s_.curr.probe(ta);  // acquire (curr_board.hpp)
      const std::uint64_t cb = s_.curr.probe(tb);  // acquire (curr_board.hpp)
      const int t = ca <= cb ? ta : tb;
      my_.inc(CId::kStealAttempts);
      obs::trace_instant(s_.ctx.trace, tid_, EK::kStealAttempt,
                         static_cast<std::uint64_t>(t));
      ChunkT* c = s_.deques[static_cast<std::size_t>(t)]->steal();
      notify_steal(t, c != nullptr);
      if (c != nullptr) {
        record_steal(t);
        out[0] = c;
        return 1;
      }
    }
    return 0;
  }

  // --- termination (§4.3 double-scan + quiescence barrier) -----------------

  /// Flat wasp's double-scan, hardened into a barrier. A passing scan casts
  /// a VOTE (seq_cst increment of s_.quiesced) rather than returning; the
  /// worker keeps scanning — and keeps draining its fragment's channel —
  /// until all p votes are in. A sweep revokes the vote before touching any
  /// work source.
  ///
  /// Why the barrier: flat wasp survives a worker exiting on a stale-read
  /// verdict — the work it missed is still reachable by the survivors, who
  /// finish it before the team join. Here an exited worker's fragment may
  /// receive records afterwards with no remaining member to drain them:
  /// distances stay wrong and in_flight never returns to zero, hanging the
  /// survivors. So nobody leaves until everybody can.
  ///
  /// Exit soundness: quiesced == p (the true count — every vote, revoke,
  /// and the exit load are seq_cst) at any instant implies no work exists
  /// anywhere at that instant.
  ///  - Local work: a voted worker holds none. Voting requires this
  ///    worker's own buckets, deque, buffer, and open batches empty (facts
  ///    it knows exactly about itself — run() flushes and drains to
  ///    exhaustion before calling terminate(), and a sweep that acquires
  ///    work revokes first, then returns to run()).
  ///  - Remote work: in_flight counts every record from before its batch is
  ///    grabbable until after it is applied (remote_queue.hpp, all seq_cst).
  ///    Batches are published only while processing, i.e. by unvoted
  ///    workers, and such a worker re-votes only after a scan reads the
  ///    true in_flight == 0 — which requires its batch already applied and
  ///    subtracted. An outstanding record therefore keeps its publisher
  ///    unvoted, so a full count also rules out channel backlogs and
  ///    half-drained grabs.
  ///
  /// The scan verdict (all board slots idle, in-flight zero, stable steal
  /// epoch) gates the vote, not the exit, so the acquire board/epoch reads
  /// only affect vote churn, never correctness. The in-flight read sits
  /// before the board scan on purpose: the counter's seq_cst RMW chain
  /// carries each drainer's release clock, and every drain is sequenced
  /// after that drainer's busy publication (kStealingPriority in sweeps, a
  /// real level in run()), so a scanner that reads the true zero cannot
  /// then see a worker still busy with drained records as idle.
  bool terminate() {
    const int p = s_.num_workers;
    bool sweep = true;  // sweep on entry; afterwards only when work is seen
    bool voted = false;
    obs::trace_begin(s_.ctx.trace, tid_, EK::kTerminationScan);
    for (;;) {
      // Cancellation point (with deadline check), as in flat wasp. The vote
      // is not revoked: every worker observes the same sticky stop flag and
      // exits, so the count is never read again.
      if (s_.ctx.poll_cancel()) {
        publish_curr(kInfPriority);
        obs::trace_end(s_.ctx.trace, tid_, EK::kTerminationScan, 1);
        return true;
      }
      if (sweep) {
        if (voted) {
          // Revoke BEFORE stealing or draining: the exit argument needs
          // "voted implies holding no work" at every instant, so the
          // seq_cst decrement must precede any chance of acquiring work.
          s_.quiesced.fetch_sub(1, std::memory_order_seq_cst);
          voted = false;
        }
        // acq_rel: orders this sweep's steal/drain between the double-scan's
        // acquire reads, invalidating any scan it raced with (wasp.cpp has
        // the base argument; the drain is a new way to move work).
        s_.steal_epoch.fetch_add(1, std::memory_order_acq_rel);
        publish_curr(kStealingPriority);
        if (try_steal_and_process(kInfPriority)) {
          obs::trace_end(s_.ctx.trace, tid_, EK::kTerminationScan, 0);
          return false;
        }
        if (drain_inbound() > 0) {
          // Fresh remote work landed in our buckets (under
          // kStealingPriority, so no scanner saw us idle meanwhile); let
          // run() advance to it.
          obs::trace_end(s_.ctx.trace, tid_, EK::kTerminationScan, 0);
          return false;
        }
        publish_curr(kInfPriority);
      }

      my_.inc(CId::kTerminationScans);
      Timer idle_timer;
      // Acquire epoch reads bracket the scan (§4.3 double-scan).
      const std::uint64_t epoch_before =
          s_.steal_epoch.load(std::memory_order_acquire);
      // True in-flight count first — see the function comment for why this
      // read precedes the board scan. seq_cst (remote_queue.hpp).
      const std::uint64_t in_flight = s_.net.in_flight();
      bool all_idle = true;
      bool someone_working = false;
      for (int t = 0; t < p; ++t) {
        const std::uint64_t c = s_.curr.scan(t);  // acquire (curr_board.hpp)
        if (c != kInfPriority) all_idle = false;
        if (c < kStealingPriority) someone_working = true;
      }
      // Acquire: closes the double-scan bracket (see epoch_before).
      const std::uint64_t epoch_after =
          s_.steal_epoch.load(std::memory_order_acquire);

      if (all_idle && in_flight == 0 && epoch_before == epoch_after) {
        // Chaos: distrust the verdict and force one more sweep (which also
        // exercises the revoke path once this worker has voted).
        if (WASP_CHAOS_FAIL(chaos::Point::kSpuriousWakeup)) {
          sweep = true;
          record_idle(idle_timer.nanoseconds());
          continue;
        }
        if (!voted) {
          // seq_cst: the exit load below must observe true counts.
          s_.quiesced.fetch_add(1, std::memory_order_seq_cst);
          voted = true;
        }
        // seq_cst: the barrier. All p voted at this instant => quiescent.
        if (s_.quiesced.load(std::memory_order_seq_cst) ==
            static_cast<std::uint32_t>(p)) {
          record_idle(idle_timer.nanoseconds());
          obs::trace_end(s_.ctx.trace, tid_, EK::kTerminationScan, 1);
          if (s_.ctx.observer != nullptr)
            s_.ctx.observer->on_termination(tid_);
          return true;
        }
        // Not everyone is done; keep scanning (and draining) as a lame
        // duck. No sweep needed unless the checks below say otherwise.
      }
      // Re-sweep when a worker holds real-priority work, or when our own
      // fragment's channel has batches to drain (pending() is advisory —
      // relaxed — but a miss only delays one yield-iteration, and the
      // vote gate above keeps the exit sound regardless).
      sweep = someone_working || s_.net.pending(frag_);
      std::this_thread::yield();
      record_idle(idle_timer.nanoseconds());
    }
  }

  void record_idle(std::uint64_t ns) {
    my_.inc(CId::kIdleNs, ns);
    my_.observe(obs::HistId::kIdleScanNs, ns);
  }

  // --- bucket advance ----------------------------------------------------

  void pour_bucket(std::uint64_t level) {
    ChunkT* c = buckets_.head[level];
    buckets_.head[level] = nullptr;
    while (c != nullptr) {
      ChunkT* next_chunk = c->next;
      c->next = nullptr;
      deque_->push_bottom(c);
      c = next_chunk;
    }
  }

  PartShared<ChunkT>& s_;
  const int tid_;
  const int frag_;
  const GraphPartition::Fragment& fragment_;
  AtomicDistances& dist_;  ///< this fragment's shard (local indices)
  BasicChunkPool<ChunkT> pool_;
  obs::MetricsShard& my_;
  Xoshiro256 rng_;
  ChaseLevDeque<ChunkT*>* deque_;
  RemoteSender sender_;
  ChunkT* buffer_ = nullptr;
  BucketList<ChunkT> buckets_;
  std::uint64_t curr_cache_ = kInfPriority;
  std::uint64_t progress_ = 0;
  const std::uint32_t lookahead_;
};

template <typename ChunkT>
SsspResult wasp_sssp_partitioned_impl(const Graph& g, VertexId source,
                                      Weight delta, const WaspConfig& config,
                                      RunContext& ctx) {
  const int p = ctx.team.size();
  const VertexId n = g.num_vertices();

  std::vector<std::uint8_t> leaf_bitmap;
  if (config.leaf_pruning) leaf_bitmap = compute_leaf_bitmap(g);

  std::shared_ptr<const NumaTopology> topo = config.topology;
  if (!topo) topo = std::make_shared<NumaTopology>(NumaTopology::detect());
  std::vector<int> cpu_of(static_cast<std::size_t>(p));
  std::vector<int> node_of(static_cast<std::size_t>(p));
  for (int t = 0; t < p; ++t) {
    cpu_of[static_cast<std::size_t>(t)] = ctx.team.cpu_of(t) % topo->num_cpus();
    node_of[static_cast<std::size_t>(t)] =
        topo->node_of_cpu(cpu_of[static_cast<std::size_t>(t)]);
  }

  // Every fragment needs at least one member worker (it alone drains its
  // inbound channel), so the fragment count is capped by the team size.
  const int want = config.partition.num_fragments > 0
                       ? config.partition.num_fragments
                       : topo->num_nodes();
  const int f_want = std::clamp(want, 1, p);
  GraphPartition part =
      GraphPartition::build(g, *topo, f_want, p > 1 ? &ctx.team : nullptr);
  const int f_count = part.num_fragments();

  PartShared<ChunkT> shared(g, part, delta, config, ctx,
                            config.leaf_pruning ? &leaf_bitmap : nullptr, p);

  // Worker -> fragment membership: node affinity first (a worker joins the
  // fragment assigned to its NUMA node, folded mod f_count), then a
  // deterministic fix-up moves workers out of the largest group until every
  // fragment has at least one member (feasible since f_count <= p).
  shared.frag_of.resize(static_cast<std::size_t>(p));
  shared.members.assign(static_cast<std::size_t>(f_count), {});
  for (int t = 0; t < p; ++t) {
    const int f = node_of[static_cast<std::size_t>(t)] % f_count;
    shared.frag_of[static_cast<std::size_t>(t)] = f;
    shared.members[static_cast<std::size_t>(f)].push_back(t);
  }
  for (int f = 0; f < f_count; ++f) {
    while (shared.members[static_cast<std::size_t>(f)].empty()) {
      int big = 0;
      for (int o = 1; o < f_count; ++o) {
        if (shared.members[static_cast<std::size_t>(o)].size() >
            shared.members[static_cast<std::size_t>(big)].size())
          big = o;
      }
      const int moved = shared.members[static_cast<std::size_t>(big)].back();
      shared.members[static_cast<std::size_t>(big)].pop_back();
      shared.members[static_cast<std::size_t>(f)].push_back(moved);
      shared.frag_of[static_cast<std::size_t>(moved)] = f;
    }
  }
  shared.local_idx.resize(static_cast<std::size_t>(p));
  for (int f = 0; f < f_count; ++f) {
    const auto& ms = shared.members[static_cast<std::size_t>(f)];
    for (std::size_t i = 0; i < ms.size(); ++i)
      shared.local_idx[static_cast<std::size_t>(ms[i])] = static_cast<int>(i);
  }
  shared.node_of = node_of;

  // Fragment-local victim tiers, over each fragment's member CPUs.
  shared.frag_tiers.resize(static_cast<std::size_t>(f_count));
  for (int f = 0; f < f_count; ++f) {
    const auto& ms = shared.members[static_cast<std::size_t>(f)];
    std::vector<int> member_cpus;
    member_cpus.reserve(ms.size());
    for (const int t : ms)
      member_cpus.push_back(cpu_of[static_cast<std::size_t>(t)]);
    shared.frag_tiers[static_cast<std::size_t>(f)] =
        std::make_unique<VictimTiers>(*topo, member_cpus);
  }

  // Placement phase: each fragment's leader (member 0) constructs its
  // distance shard — the constructor's kInfDist sweep is the first touch,
  // so the shard's pages land on the leader's node. The team join publishes
  // the shard pointers to every worker of the solve phase.
  ctx.team.run([&](int tid) {
    verify::ScopedSchedule schedule_guard(tid);
    if (shared.local_idx[static_cast<std::size_t>(tid)] == 0) {
      const int f = shared.frag_of[static_cast<std::size_t>(tid)];
      shared.shards[static_cast<std::size_t>(f)] =
          std::make_unique<AtomicDistances>(
              part.fragment(f).num_vertices());
    }
  });

  // Pre-publish the seed worker (the source fragment's leader) busy at
  // level 0 so no worker can pass the termination check before the seed is
  // planted; the dist[source] = 0 store itself happens in seed(), on the
  // worker (see the comment there).
  const int source_frag = part.owner_of(source);
  const int seed_worker =
      shared.members[static_cast<std::size_t>(source_frag)].front();
  shared.curr.publish(seed_worker, 0);

  chaos::Engine* chaos = config.chaos != nullptr ? config.chaos : ctx.chaos;
  Timer timer;
  ctx.team.run([&](int tid) {
    verify::ScopedSchedule schedule_guard(tid);
    chaos::ScopedInstall chaos_guard(chaos, tid);
    PartWorker<ChunkT> worker(shared, tid);
    if (tid == seed_worker) worker.seed(source);
    worker.run();
  });
  SsspResult result;
  finalize_result(ctx, timer.seconds(), result);
  result.dist.resize(n);
  for (int f = 0; f < f_count; ++f) {
    const GraphPartition::Fragment& frag = part.fragment(f);
    const AtomicDistances& shard =
        *shared.shards[static_cast<std::size_t>(f)];
    for (VertexId v = 0; v < frag.num_vertices(); ++v)
      result.dist[frag.begin + v] = shard.load(v);
  }
  return result;
}

}  // namespace

SsspResult wasp_sssp_partitioned(const Graph& g, VertexId source, Weight delta,
                                 const WaspConfig& config, RunContext& ctx) {
  switch (config.chunk_capacity) {
    case 16:
      return wasp_sssp_partitioned_impl<BasicChunk<16>>(g, source, delta,
                                                        config, ctx);
    case 32:
      return wasp_sssp_partitioned_impl<BasicChunk<32>>(g, source, delta,
                                                        config, ctx);
    case 64:
      return wasp_sssp_partitioned_impl<BasicChunk<64>>(g, source, delta,
                                                        config, ctx);
    case 128:
      return wasp_sssp_partitioned_impl<BasicChunk<128>>(g, source, delta,
                                                         config, ctx);
    case 256:
      return wasp_sssp_partitioned_impl<BasicChunk<256>>(g, source, delta,
                                                         config, ctx);
    default:
      throw InvalidOptionsError(
          "wasp_sssp_partitioned: chunk_capacity must be one of 16, 32, 64, "
          "128, 256");
  }
}

}  // namespace wasp
