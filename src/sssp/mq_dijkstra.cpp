#include "sssp/mq_dijkstra.hpp"

#include <atomic>
#include <thread>

#include "concurrent/multiqueue.hpp"
#include "support/prefetch.hpp"
#include "support/thread_team.hpp"
#include "support/timer.hpp"
#include "verify/checked_atomic.hpp"

namespace wasp {

SsspResult mq_dijkstra(const Graph& g, VertexId source, int c, int stickiness,
                       int buffer_size, std::uint64_t seed, RunContext& ctx) {
  using CId = obs::CounterId;
  const int p = ctx.team.size();
  AtomicDistances& dist = ctx.distances(g.num_vertices());
  dist.store(source, 0);

  MultiQueue::Config config;
  config.threads = p;
  config.c = c;
  config.stickiness = stickiness;
  config.buffer_size = buffer_size;
  config.seed = seed;
  MultiQueue mq(config);
  mq.push(0, 0, source);
  mq.flush(0);

  // Threads currently holding popped work; termination needs the queue empty
  // AND nobody mid-processing (a processor may push more work).
  verify::atomic<int> busy{0};

  const std::uint32_t lookahead = ctx.prefetch_lookahead;

  Timer timer;
  ctx.team.run([&](int tid) {
    obs::MetricsShard& my = ctx.metrics.shard(tid);
    std::uint64_t progress = 0;
    for (;;) {
      // Cancellation point (async: each thread leaves independently; pending
      // queue entries are simply abandoned with the run-local MultiQueue).
      if (ctx.stop_requested()) break;
      Distance d = 0;
      VertexId u = 0;
      // Raise `busy` before popping: a thread that pops the queue's last
      // element decrements the size counter after this increment, so any
      // thread observing size == 0 also observes busy > 0 and cannot
      // terminate while work is in flight. acq_rel: the increment/decrement
      // pair orders each pop's pushes before a scanner's acquire read.
      busy.fetch_add(1, std::memory_order_acq_rel);
      if (mq.try_pop(tid, d, u)) {
        // Stale check: a better path was found after this entry was pushed.
        if (d != dist.load(u)) my.inc(CId::kStaleSkips);
        if (d == dist.load(u)) {
          my.inc(CId::kVerticesProcessed);
          ++progress;
          if ((progress & 0xFFFu) == 0) {
            if (ctx.observer != nullptr) ctx.observer->on_progress(tid, progress);
            // Deadline poll at the observer cadence; a fired deadline
            // self-cancels and the loop-top poll exits.
            (void)ctx.poll_cancel();
          }
          // Indexed drain so edge j can prefetch the dist entry of edge
          // j + lookahead's target (the only data-dependent miss here).
          const WEdge* edges = g.edge_data() + g.edge_offset(u);
          const std::uint32_t deg = g.out_degree(u);
          for (std::uint32_t j = 0; j < deg; ++j) {
            if (lookahead != 0 && j + lookahead < deg)
              prefetch_read(dist.prefetch_addr(edges[j + lookahead].dst));
            const WEdge& e = edges[j];
            my.inc(CId::kRelaxations);
            const Distance nd = saturating_add(d, e.w);
            if (dist.relax_to(e.dst, nd)) {
              my.inc(CId::kUpdates);
              mq.push(tid, nd, e.dst);
            }
          }
          if (lookahead != 0 && deg > lookahead)
            my.inc(CId::kPrefetchIssued, deg - lookahead);
        }
        mq.flush(tid);
        // acq_rel: the flushed pushes are ordered before this drop, so a
        // scanner reading busy == 0 (acquire) also sees the new entries.
        busy.fetch_sub(1, std::memory_order_acq_rel);
        continue;
      }
      busy.fetch_sub(1, std::memory_order_acq_rel);  // acq_rel: as above
      my.inc(CId::kTerminationScans);
      // Idle scans also check the deadline (a starved thread may otherwise
      // only spin on the flag while peers keep the queue non-empty).
      (void)ctx.poll_cancel();
      // Acquire: pairs with the acq_rel drops so in-flight pushes are seen.
      if (mq.size_estimate() == 0 && busy.load(std::memory_order_acquire) == 0) {
        if (ctx.observer != nullptr) ctx.observer->on_termination(tid);
        break;
      }
      std::this_thread::yield();
    }
  });

  const double seconds = timer.seconds();
  for (int t = 0; t < p; ++t)
    ctx.metrics.shard(0).inc(CId::kQueueOpNs, mq.queue_op_ns(t));
  SsspResult result;
  finalize_result(ctx, seconds, result);
  result.dist = dist.snapshot();
  return result;
}

}  // namespace wasp
