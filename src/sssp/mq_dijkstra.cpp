#include "sssp/mq_dijkstra.hpp"

#include <atomic>
#include <thread>

#include "concurrent/multiqueue.hpp"
#include "support/timer.hpp"

namespace wasp {

SsspResult mq_dijkstra(const Graph& g, VertexId source, int c, int stickiness,
                       int buffer_size, std::uint64_t seed, ThreadTeam& team) {
  const int p = team.size();
  AtomicDistances dist(g.num_vertices());
  dist.store(source, 0);

  MultiQueue::Config config;
  config.threads = p;
  config.c = c;
  config.stickiness = stickiness;
  config.buffer_size = buffer_size;
  config.seed = seed;
  MultiQueue mq(config);
  mq.push(0, 0, source);
  mq.flush(0);

  std::vector<CachePadded<ThreadCounters>> counters(static_cast<std::size_t>(p));
  // Threads currently holding popped work; termination needs the queue empty
  // AND nobody mid-processing (a processor may push more work).
  std::atomic<int> busy{0};

  Timer timer;
  team.run([&](int tid) {
    auto& my = counters[static_cast<std::size_t>(tid)].value;
    for (;;) {
      Distance d = 0;
      VertexId u = 0;
      // Raise `busy` before popping: a thread that pops the queue's last
      // element decrements the size counter after this increment, so any
      // thread observing size == 0 also observes busy > 0 and cannot
      // terminate while work is in flight.
      busy.fetch_add(1, std::memory_order_acq_rel);
      if (mq.try_pop(tid, d, u)) {
        // Stale check: a better path was found after this entry was pushed.
        if (d != dist.load(u)) ++my.stale_skips;
        if (d == dist.load(u)) {
          ++my.vertices_processed;
          for (const WEdge& e : g.out_neighbors(u)) {
            ++my.relaxations;
            const Distance nd = saturating_add(d, e.w);
            if (dist.relax_to(e.dst, nd)) {
              ++my.updates;
              mq.push(tid, nd, e.dst);
            }
          }
        }
        mq.flush(tid);
        busy.fetch_sub(1, std::memory_order_acq_rel);
        continue;
      }
      busy.fetch_sub(1, std::memory_order_acq_rel);
      if (mq.size_estimate() == 0 && busy.load(std::memory_order_acquire) == 0)
        break;
      std::this_thread::yield();
    }
  });

  SsspResult result;
  result.stats.seconds = timer.seconds();
  for (int t = 0; t < p; ++t) result.stats.queue_op_ns += mq.queue_op_ns(t);
  accumulate_counters(counters, result.stats);
  result.dist = dist.snapshot();
  return result;
}

}  // namespace wasp
