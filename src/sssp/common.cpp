#include "sssp/common.hpp"

#include <stdexcept>

namespace wasp {

const char* algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::kDijkstra: return "dijkstra";
    case Algorithm::kBellmanFord: return "bf";
    case Algorithm::kDeltaStepping: return "gap";
    case Algorithm::kJulienne: return "gbbs";
    case Algorithm::kDeltaStar: return "dstar";
    case Algorithm::kRhoStepping: return "rho";
    case Algorithm::kRadiusStepping: return "radius";
    case Algorithm::kMqDijkstra: return "mq";
    case Algorithm::kSmqDijkstra: return "smq";
    case Algorithm::kObim: return "galois";
    case Algorithm::kWasp: return "wasp";
  }
  return "?";
}

Algorithm parse_algorithm(const std::string& name) {
  if (name == "dijkstra") return Algorithm::kDijkstra;
  if (name == "bf" || name == "bellman-ford") return Algorithm::kBellmanFord;
  if (name == "gap" || name == "delta") return Algorithm::kDeltaStepping;
  if (name == "gbbs" || name == "julienne") return Algorithm::kJulienne;
  if (name == "dstar" || name == "delta-star") return Algorithm::kDeltaStar;
  if (name == "rho" || name == "rho-stepping") return Algorithm::kRhoStepping;
  if (name == "radius" || name == "radius-stepping") return Algorithm::kRadiusStepping;
  if (name == "mq" || name == "multiqueue") return Algorithm::kMqDijkstra;
  if (name == "smq" || name == "stealing-multiqueue") return Algorithm::kSmqDijkstra;
  if (name == "galois" || name == "obim") return Algorithm::kObim;
  if (name == "wasp") return Algorithm::kWasp;
  throw std::invalid_argument("unknown algorithm: " + name);
}

void accumulate_counters(const std::vector<CachePadded<ThreadCounters>>& counters,
                         SsspStats& stats) {
  for (const auto& c : counters) {
    stats.relaxations += c.value.relaxations;
    stats.updates += c.value.updates;
    stats.steals += c.value.steals;
    stats.steal_attempts += c.value.steal_attempts;
    stats.stale_skips += c.value.stale_skips;
    stats.steal_ns += c.value.steal_ns;
    stats.idle_ns += c.value.idle_ns;
  }
}

}  // namespace wasp
