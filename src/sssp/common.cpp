#include "sssp/common.hpp"

#include <sstream>

#include "support/errors.hpp"
#include "support/thread_team.hpp"

namespace wasp {

namespace {

/// The one Algorithm <-> name table. `alias` is the accepted long form
/// (null = none); canonical names are what the CLI and bench labels print.
struct AlgorithmEntry {
  Algorithm algo;
  const char* name;
  const char* alias;
};

constexpr AlgorithmEntry kAlgorithms[] = {
    {Algorithm::kDijkstra, "dijkstra", nullptr},
    {Algorithm::kBellmanFord, "bf", "bellman-ford"},
    {Algorithm::kDeltaStepping, "gap", "delta"},
    {Algorithm::kJulienne, "gbbs", "julienne"},
    {Algorithm::kDeltaStar, "dstar", "delta-star"},
    {Algorithm::kRhoStepping, "rho", "rho-stepping"},
    {Algorithm::kRadiusStepping, "radius", "radius-stepping"},
    {Algorithm::kMqDijkstra, "mq", "multiqueue"},
    {Algorithm::kSmqDijkstra, "smq", "stealing-multiqueue"},
    {Algorithm::kObim, "galois", "obim"},
    {Algorithm::kWasp, "wasp", nullptr},
};

}  // namespace

const char* to_string(Algorithm a) {
  for (const AlgorithmEntry& e : kAlgorithms)
    if (e.algo == a) return e.name;
  return "?";
}

Algorithm parse_algorithm(std::string_view name) {
  for (const AlgorithmEntry& e : kAlgorithms) {
    if (name == e.name) return e.algo;
    if (e.alias != nullptr && name == e.alias) return e.algo;
  }
  throw std::invalid_argument("unknown algorithm: " + std::string(name) +
                              " (expected one of " + algorithm_list() + ")");
}

std::string algorithm_list() {
  std::string out;
  for (const AlgorithmEntry& e : kAlgorithms) {
    if (!out.empty()) out += '|';
    out += e.name;
  }
  return out;
}

void SsspOptions::validate() const {
  const auto fail = [](const std::string& what) {
    throw InvalidOptionsError("SsspOptions: " + what);
  };
  if (threads < 1) fail("threads must be >= 1");
  if (delta == 0) fail("delta must be >= 1 (zero-width buckets never drain)");
  if (wasp.theta == 0) fail("wasp.theta must be >= 1");
  if (wasp.steal_retries < 0) fail("wasp.steal_retries must be >= 0");
  switch (wasp.chunk_capacity) {
    case 16: case 32: case 64: case 128: case 256:
      break;
    default: {
      std::ostringstream os;
      os << "wasp.chunk_capacity must be one of 16, 32, 64, 128, 256 (got "
         << wasp.chunk_capacity << ")";
      fail(os.str());
    }
  }
  if (wasp.partition.num_fragments < 0) {
    fail("wasp.partition.num_fragments must be >= 0 (0 = one per NUMA node)");
  }
  if (wasp.partition.flush_threshold < 1 ||
      wasp.partition.flush_threshold > 256) {
    fail("wasp.partition.flush_threshold must be in [1, 256]");
  }
  if (stepping.rho == 0) fail("stepping.rho must be >= 1");
  if (stepping.radius_k == 0) fail("stepping.radius_k must be >= 1");
  if (mq.c < 1) fail("mq.c must be >= 1");
  if (mq.stickiness < 1) fail("mq.stickiness must be >= 1");
  if (mq.buffer < 1) fail("mq.buffer must be >= 1");
  if (smq.steal_batch < 0) fail("smq.steal_batch must be >= 0");
  if (obim.chunk_size == 0) fail("obim.chunk_size must be >= 1");
  if (prefetch_lookahead > 256) {
    // Past a few dozen entries the prefetches evict each other before use;
    // a huge value is a typo, not a tuning choice.
    fail("prefetch_lookahead must be <= 256 (0 disables)");
  }
}

SsspStats stats_from_snapshot(const obs::MetricsSnapshot& snap) {
  using obs::CounterId;
  SsspStats stats;
  stats.seconds = snap.seconds;
  stats.relaxations = snap.counter(CounterId::kRelaxations);
  stats.updates = snap.counter(CounterId::kUpdates);
  stats.steals = snap.counter(CounterId::kSteals);
  stats.steal_attempts = snap.counter(CounterId::kStealAttempts);
  stats.stale_skips = snap.counter(CounterId::kStaleSkips);
  stats.rounds = snap.counter(CounterId::kRounds);
  stats.barrier_ns = snap.counter(CounterId::kBarrierNs);
  stats.queue_op_ns = snap.counter(CounterId::kQueueOpNs);
  stats.steal_ns = snap.counter(CounterId::kStealNs);
  stats.idle_ns = snap.counter(CounterId::kIdleNs);
  return stats;
}

void finalize_result(RunContext& ctx, double seconds, SsspResult& result) {
  obs::MetricsShard& s0 = ctx.metrics.shard(0);
  s0.set_gauge(obs::GaugeId::kTeamJobs, ctx.team.jobs_run());
  s0.set_gauge(obs::GaugeId::kTeamJobNs, ctx.team.job_ns());
  ctx.metrics.set_elapsed_seconds(seconds);
  result.metrics = ctx.metrics.snapshot();
  result.stats = stats_from_snapshot(result.metrics);
}

}  // namespace wasp
