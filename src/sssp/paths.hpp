// Shortest-path tree utilities layered on top of a distance vector: parent
// extraction, path queries, and batched multi-source runs (the repeated-SSSP
// pattern of betweenness/closeness workloads the paper's introduction
// motivates).
//
// All functions work from the *distances* alone (plus the graph): any vertex
// v's parent is an in-neighbour u with dist[u] + w(u,v) == dist[v], which
// always exists for a valid SSSP fixed point. This keeps the hot SSSP loops
// free of parent bookkeeping.
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "sssp/common.hpp"

namespace wasp {

/// Parent of every vertex in one shortest-path tree (kInvalidVertex for the
/// source and for unreachable vertices). O(|E|) via the transpose.
std::vector<VertexId> shortest_path_tree(const Graph& g, VertexId source,
                                         const std::vector<Distance>& dist);

/// The vertices of one shortest path source -> target (inclusive), or empty
/// when target is unreachable. O(path length * in-degree) — no transpose
/// needed for undirected graphs; directed graphs pass the transpose.
std::vector<VertexId> extract_path(const Graph& g, VertexId source,
                                   VertexId target,
                                   const std::vector<Distance>& dist);

/// Result of a batched run: one distance vector per source.
struct BatchResult {
  std::vector<SsspResult> runs;
  double total_seconds = 0.0;
};

/// Runs SSSP from every vertex in `sources`, reusing one thread team across
/// runs (thread creation amortized, as in the benchmark harness).
BatchResult run_sssp_batch(const Graph& g, const std::vector<VertexId>& sources,
                           const SsspOptions& options);

/// Closeness centrality of `v` given its SSSP distances:
/// (reached - 1) / sum of distances; 0 when nothing is reached.
double closeness_centrality(const std::vector<Distance>& dist, VertexId v);

/// Number of vertices within `budget` of the source (excluding the source).
std::uint64_t reach_within(const std::vector<Distance>& dist, VertexId source,
                           Distance budget);

}  // namespace wasp
