// wasp::Solver — the amortizing handle over the SSSP front-end.
//
// run_sssp() builds a thread team, detects the NUMA topology, and allocates
// a metrics registry per call; a production caller answering many queries
// pays all of that once by holding a Solver:
//
//   wasp::SsspOptions opt;
//   opt.algo = wasp::Algorithm::kWasp;
//   opt.threads = 8;
//   opt.delta = 16;
//   wasp::Solver solver(opt);              // validates, spawns, detects
//   solver.enable_trace();                 // optional: event rings per thread
//   for (auto [g, src] : queries)
//     wasp::SsspResult r = solver.solve(*g, src);
//   solver.last_metrics().write_json(std::cout);
//
// The Solver owns the ThreadTeam, the (shared) NumaTopology, the
// MetricsRegistry, and an optional TraceRecorder, and carries the observer
// and chaos-engine pointers through every solve. Options other than
// `threads` may be adjusted between solves via options().
#pragma once

#include <cstddef>
#include <memory>

#include "graph/graph.hpp"
#include "obs/metrics.hpp"
#include "obs/observer.hpp"
#include "obs/trace.hpp"
#include "sssp/common.hpp"
#include "support/thread_team.hpp"

namespace wasp {

class Solver {
 public:
  /// Validates `options`, spawns the worker team, and resolves the NUMA
  /// topology (options.wasp.topology is filled in when empty, so repeated
  /// solve() calls never re-detect). Throws InvalidOptionsError on bad
  /// knobs.
  explicit Solver(SsspOptions options);

  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  /// Runs options().algo from `source` on the owned team. Re-validates
  /// options (they are mutable between solves) and resets the registry, so
  /// each result's metrics cover exactly one run.
  ///
  /// A Solver runs ONE solve at a time: the team, distance pool, and
  /// registry are per-run state with no internal synchronization.
  /// Overlapping calls from a second thread throw SolverBusyError instead
  /// of racing silently — hold one Solver per in-flight query (the
  /// service::QueryService fleet does exactly this). A solve cancelled via
  /// options().cancel throws SolveCancelledError after discarding the
  /// partial distances; the Solver remains reusable.
  SsspResult solve(const Graph& g, VertexId source);

  /// Same, overriding the algorithm for this call only (the bench harness
  /// sweeps algorithms over one team this way).
  SsspResult solve(const Graph& g, VertexId source, Algorithm algo);

  /// Mutable between solves; `threads` is fixed at construction (the team
  /// size wins). validate() runs again at the next solve().
  [[nodiscard]] SsspOptions& options() { return options_; }
  [[nodiscard]] const SsspOptions& options() const { return options_; }

  [[nodiscard]] ThreadTeam& team() { return team_; }
  [[nodiscard]] obs::MetricsRegistry& metrics() { return metrics_; }
  /// The owned epoch-versioned distance pool every solve() draws from; a
  /// repeat query on the same graph pays an O(1) epoch bump instead of the
  /// O(V) infinity fill (the epoch_sweeps counter reports which happened).
  [[nodiscard]] DistancePool& distances() { return pool_; }
  /// Snapshot taken by the most recent solve() (empty before the first).
  [[nodiscard]] const obs::MetricsSnapshot& last_metrics() const {
    return last_metrics_;
  }

  /// Installs a run observer for subsequent solves (null to remove).
  /// Takes precedence over options().observer.
  void set_observer(obs::RunObserver* observer) { observer_ = observer; }

  /// Creates (or returns) the owned per-thread trace recorder; subsequent
  /// solves record into it. With WASP_OBS=OFF this is the no-op stub.
  obs::TraceRecorder& enable_trace(
      std::size_t events_per_thread = std::size_t{1} << 14);
  /// The owned recorder, or null when enable_trace was never called.
  [[nodiscard]] obs::TraceRecorder* trace() { return trace_.get(); }

 private:
  SsspOptions options_;
  obs::MetricsRegistry metrics_;
  DistancePool pool_;
  std::unique_ptr<obs::TraceRecorder> trace_;
  obs::RunObserver* observer_ = nullptr;
  obs::MetricsSnapshot last_metrics_;
  /// Re-entrancy guard: 1 while a solve is in flight (see solve() docs).
  verify::atomic<std::uint32_t> busy_{0};
  // Declared last so it is destroyed first: the destructor joins the
  // workers, so no worker can still be touching the registry, pool, or
  // recorder above when they are freed.
  ThreadTeam team_;
};

}  // namespace wasp
