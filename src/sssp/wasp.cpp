#include "sssp/wasp.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <stdexcept>
#include <thread>

#include "concurrent/chase_lev_deque.hpp"
#include "concurrent/chunk.hpp"
#include "graph/algorithms.hpp"
#include "sssp/curr_board.hpp"
#include "support/errors.hpp"
#include "support/padded.hpp"
#include "support/prefetch.hpp"
#include "support/random.hpp"
#include "support/thread_team.hpp"
#include "support/timer.hpp"
#include "verify/checked_atomic.hpp"
#include "verify/scheduler.hpp"

namespace wasp {

namespace {

using CId = obs::CounterId;
using EK = obs::EventKind;

/// `curr` value of a thread that is out of local work and sweeping victims.
/// Distinct from kInfPriority so a thief holding a freshly stolen chunk can
/// never be mistaken for an idle thread by the termination scan.
constexpr std::uint64_t kStealingPriority = kInfPriority - 1;

/// Sentinel neighbour range meaning "the whole adjacency list".
constexpr std::uint32_t kFullRange = ~std::uint32_t{0};

/// Thread-local bucket list: level -> linked stack of chunks, the head chunk
/// partially filled. Grown by power-of-two rounding (§4.3).
template <typename ChunkT>
struct BucketList {
  std::vector<ChunkT*> head;
  std::uint64_t min_hint = kInfPriority;

  ChunkT*& at(std::uint64_t level) {
    if (level >= head.size()) {
      // Grow geometrically from the *requested* level, not by doubling the
      // current size: a weight outlier landing in a sparse high bucket
      // resizes straight to bit_ceil(level+1) instead of walking there.
      const std::size_t cap = std::max<std::size_t>(
          64, std::bit_ceil(static_cast<std::size_t>(level) + 1));
      head.resize(cap, nullptr);
    }
    return head[level];
  }

  /// Smallest level holding vertices; updates the scan hint.
  std::uint64_t min_non_empty() {
    for (std::uint64_t l = min_hint; l < head.size(); ++l) {
      if (head[l] != nullptr) {
        min_hint = l;
        return l;
      }
    }
    min_hint = kInfPriority;
    return kInfPriority;
  }
};

/// Everything shared between the worker lambdas of one run. Owns the deques
/// so a finished worker's current bucket stays probeable by late thieves.
/// Templated on the chunk type so the sensitivity bench can instantiate
/// Wasp at several chunk capacities (the paper's default is 64, §4.3).
template <typename ChunkT>
struct WaspShared {
  const Graph& graph;
  AtomicDistances& dist;
  Weight delta;
  const WaspConfig& config;
  RunContext& ctx;  ///< metrics shards, trace recorder, observer
  const std::vector<std::uint8_t>* leaf;  // null when leaf pruning is off
  CurrBoard curr;  ///< per-worker published levels (sssp/curr_board.hpp)
  std::vector<std::unique_ptr<ChaseLevDeque<ChunkT*>>> deques;
  VictimTiers tiers;
  std::vector<int> node_of;  ///< worker -> NUMA node (steal-locality counters)
  BasicChunkArena<ChunkT> arena;
  /// Bumped whenever a thread enters a termination-mode steal sweep; the
  /// double-scan termination check needs it to detect work migrating behind
  /// a scan (see WaspWorker::terminate).
  verify::atomic<std::uint64_t> steal_epoch{0};

  WaspShared(const Graph& g, AtomicDistances& d, Weight delta_,
             const WaspConfig& cfg, RunContext& ctx_,
             const std::vector<std::uint8_t>* leaf_, int p,
             const NumaTopology& topo, const std::vector<int>& cpu_of)
      : graph(g), dist(d), delta(delta_), config(cfg), ctx(ctx_), leaf(leaf_),
        curr(p), deques(static_cast<std::size_t>(p)), tiers(topo, cpu_of),
        node_of(static_cast<std::size_t>(p)) {
    for (auto& d_ : deques) d_ = std::make_unique<ChaseLevDeque<ChunkT*>>();
    for (int t = 0; t < p; ++t)
      node_of[static_cast<std::size_t>(t)] =
          topo.node_of_cpu(cpu_of[static_cast<std::size_t>(t)]);
  }
};

/// Per-thread worker implementing Algorithms 1 and 2.
template <typename ChunkT>
class WaspWorker {
 public:
  WaspWorker(WaspShared<ChunkT>& shared, int tid)
      : s_(shared), tid_(tid), pool_(shared.arena),
        my_(shared.ctx.metrics.shard(tid)),
        rng_(hash_mix(0xA5B5ULL + static_cast<std::uint64_t>(tid))),
        deque_(shared.deques[static_cast<std::size_t>(tid)].get()),
        lookahead_(shared.ctx.prefetch_lookahead) {
    buffer_ = alloc_chunk();
  }

  /// Seeds the source vertex into this worker's current bucket (called on
  /// one worker before run()).
  void seed(VertexId source) {
    buffer_->set_priority(0);
    buffer_->push(source);
    publish_curr(0);
  }

  /// Seeds this worker's round-robin share of a warm multi-source frontier
  /// (wasp_sssp_seeded): seeds[i] with i % team_size == tid, pushed at the
  /// coarsened level of its pre-loaded distance. Called before run(), like
  /// seed(); the dispatcher pre-published the same minimum level on the
  /// board, so the termination scan cannot fire before these land.
  void seed_warm(std::span<const VertexId> seeds) {
    const int p = s_.tiers.num_threads();
    std::uint64_t min_level = kInfPriority;
    for (std::size_t i = static_cast<std::size_t>(tid_); i < seeds.size();
         i += static_cast<std::size_t>(p)) {
      const Distance d = s_.dist.load(seeds[i]);
      if (d == kInfDist) continue;  // nothing can relax from an inf bound
      const auto level = static_cast<std::uint64_t>(d) / s_.delta;
      push_to_buckets(seeds[i], level);
      min_level = std::min(min_level, level);
    }
    if (min_level != kInfPriority) publish_curr(min_level);
  }

  /// The main work loop (Algorithm 1, work_stealing_shortest_path).
  void run() {
    for (;;) {
      // Cancellation point: abandon unprocessed buckets (arena-owned, freed
      // with the run) and leave through the normal idle path. Publishing
      // kInfPriority lets peers still inside terminate() reach the all-idle
      // verdict even before their own poll fires.
      if (s_.ctx.stop_requested()) {
        publish_curr(kInfPriority);
        return;
      }
      drain_current_bucket();

      // Current bucket is empty: try to find higher-priority work elsewhere
      // before touching lower-priority local buckets (Algorithm 1, L22).
      const std::uint64_t next = buckets_.min_non_empty();
      if (try_steal_and_process(next)) continue;

      if (next != kInfPriority) {
        // Advance to the next local bucket (L29-32): move its chunks into
        // the work-stealing deque.
        my_.inc(CId::kBucketAdvances);
        obs::trace_instant(s_.ctx.trace, tid_, EK::kBucketAdvance, next);
        publish_curr(next);
        pour_bucket(next);
        continue;
      }
      if (terminate()) return;
    }
  }

 private:
  /// Every chunk-pool allocation goes through here so the alloc rate is
  /// observable (kChunkAllocs + trace instants).
  ChunkT* alloc_chunk() {
    my_.inc(CId::kChunkAllocs);
    obs::trace_instant(s_.ctx.trace, tid_, EK::kChunkAlloc);
    return pool_.get();
  }

  // --- current bucket ----------------------------------------------------

  void publish_curr(std::uint64_t level) {
    curr_cache_ = level;
    // Chaos: widen the window between deciding a level and publishing it —
    // the interval the kStealingPriority state exists to protect.
    WASP_CHAOS_YIELD(chaos::Point::kDelayCurrPublish);
    s_.curr.publish(tid_, level);  // release (curr_board.hpp)
  }

  /// Pops one vertex from the buffer chunk, refilling it from the deque
  /// when empty (popped chunks are recycled as the buffer, §4.3).
  bool pop_current(VertexId& u, std::uint64_t& prio, std::uint32_t& begin,
                   std::uint32_t& end) {
    if (buffer_->empty()) {
      ChunkT* refill = deque_->pop_bottom();
      if (refill == nullptr) return false;
      pool_.put(buffer_);
      buffer_ = refill;
    }
    prio = buffer_->priority();
    if (buffer_->is_range()) {
      begin = buffer_->range_begin();
      end = buffer_->range_end();
      u = buffer_->pop();
      buffer_->reset();  // range chunks hold exactly one vertex
    } else {
      begin = 0;
      end = kFullRange;
      u = buffer_->pop();
      // Chunk-drain lookahead: the LIFO order of the remaining entries is
      // already decided, so warm the distance entry and adjacency offsets
      // of the vertex we will drain `lookahead_` pops from now.
      if (lookahead_ != 0 && !buffer_->empty()) {
        const VertexId ahead =
            buffer_->peek(std::min(lookahead_ - 1, buffer_->size() - 1));
        prefetch_read(s_.dist.prefetch_addr(ahead));
        prefetch_read(s_.graph.offsets_data() + ahead);
        my_.inc(CId::kPrefetchIssued, 2);
      }
    }
    return true;
  }

  void drain_current_bucket() {
    VertexId u;
    std::uint64_t prio;
    std::uint32_t begin, end;
    while (pop_current(u, prio, begin, end)) {
      // Cancellation point (one relaxed load per pop): leftover entries in
      // the buffer/deque are simply dropped — run() exits next iteration.
      if (s_.ctx.stop_requested()) return;
      if (is_stale(u, prio)) {
        my_.inc(CId::kStaleSkips);
        continue;
      }
      process_neighborhood(u, prio, begin, end);
    }
  }

  /// Algorithm 1 line 20: skip entries superseded by a better path.
  [[nodiscard]] bool is_stale(VertexId u, std::uint64_t prio) const {
    return static_cast<std::uint64_t>(s_.dist.load(u)) <
           prio * static_cast<std::uint64_t>(s_.delta);
  }

  // --- pushing updates ---------------------------------------------------

  /// Algorithm 1, push_to_buckets: current-level vertices go to the current
  /// bucket (buffer -> deque), others to the thread-local bucket list.
  void push_to_buckets(VertexId v, std::uint64_t level) {
    if (level == curr_cache_) {
      if (buffer_->full()) {
        deque_->push_bottom(buffer_);
        buffer_ = alloc_chunk();
      }
      if (buffer_->empty()) buffer_->set_priority(level);
      buffer_->push(v);
      return;
    }
    ChunkT*& head = buckets_.at(level);
    if (head == nullptr || head->full()) {
      ChunkT* fresh = alloc_chunk();
      fresh->set_priority(level);
      fresh->next = head;
      head = fresh;
    }
    head->push(v);
    buckets_.min_hint = std::min(buckets_.min_hint, level);
  }

  /// Pushes a pre-built chunk (range chunks from neighborhood
  /// decomposition). Current-level chunks go straight to the deque so other
  /// threads can steal slices of the big neighborhood immediately.
  void push_chunk(ChunkT* c, std::uint64_t level) {
    c->set_priority(level);
    if (level == curr_cache_) {
      deque_->push_bottom(c);
      return;
    }
    ChunkT*& head = buckets_.at(level);
    c->next = head;
    head = c;
    buckets_.min_hint = std::min(buckets_.min_hint, level);
  }

  // --- relaxation (Algorithm 1 lines 1-15 + §4.4 optimizations) ----------

  void process_neighborhood(VertexId u, std::uint64_t prio, std::uint32_t begin,
                            std::uint32_t end) {
    const Graph& g = s_.graph;
    const std::uint32_t degree = g.out_degree(u);
    if (end == kFullRange) {
      end = degree;
      // Neighborhood decomposition (§4.4): split a huge adjacency into
      // theta-sized range chunks; we keep the first range, the rest become
      // stealable single-vertex chunks at the same priority.
      if (s_.config.neighborhood_decomposition && degree > s_.config.theta) {
        for (std::uint32_t lo = s_.config.theta; lo < degree;
             lo += s_.config.theta) {
          ChunkT* slice = alloc_chunk();
          slice->make_range(u, lo, std::min(lo + s_.config.theta, degree));
          push_chunk(slice, prio);
        }
        end = s_.config.theta;
      }
    }

    Distance du = s_.dist.load(u);

    // Bidirectional relaxation (§4.4): for small undirected neighborhoods,
    // pull a potentially better distance for u before pushing.
    if (s_.config.bidirectional_relaxation && g.is_undirected() &&
        degree <= 8 && begin == 0) {
      Distance best = du;
      for (const WEdge& e : g.out_neighbors(u)) {
        my_.inc(CId::kRelaxations);
        const Distance dn = s_.dist.load(e.dst);
        const Distance through = saturating_add(dn, e.w);
        if (through < best) best = through;
      }
      if (best < du) {
        if (s_.dist.relax_to(u, best)) my_.inc(CId::kUpdates);
        du = s_.dist.load(u);
      }
    }

    my_.inc(CId::kVerticesProcessed);
    ++progress_;
    if ((progress_ & 0xFFFu) == 0) {
      if (s_.ctx.observer != nullptr)
        s_.ctx.observer->on_progress(tid_, progress_);
      // Deadline poll at the observer cadence (one clock read per 4096
      // vertices); a fired deadline self-cancels the token and the next
      // stop_requested() poll unwinds the worker.
      (void)s_.ctx.poll_cancel();
    }
    // Indexed drain over the interleaved records so edge j can prefetch the
    // dist entry of edge j + lookahead's target (the data-dependent miss).
    const WEdge* edges = s_.graph.edge_data() + g.edge_offset(u);
    for (std::uint32_t j = begin; j < end; ++j) {
      if (lookahead_ != 0 && j + lookahead_ < end)
        prefetch_read(s_.dist.prefetch_addr(edges[j + lookahead_].dst));
      const WEdge& e = edges[j];
      my_.inc(CId::kRelaxations);
      const Distance nd = saturating_add(du, e.w);
      if (s_.dist.relax_to(e.dst, nd)) {
        my_.inc(CId::kUpdates);
        // Leaf pruning (§4.4): a shortest-path-tree leaf can never improve
        // another vertex; update its distance but never schedule it.
        if (s_.leaf != nullptr && (*s_.leaf)[e.dst]) continue;
        push_to_buckets(e.dst, static_cast<std::uint64_t>(nd) / s_.delta);
      }
    }
    if (lookahead_ != 0 && end - begin > lookahead_)
      my_.inc(CId::kPrefetchIssued, end - begin - lookahead_);
  }

  // --- work stealing (Algorithm 2 + §4.2 ablation policies) --------------

  /// Attempts to steal chunks with priority at least as good as `next`.
  /// On success, publishes curr = best stolen priority, processes all stolen
  /// chunks immediately (stolen chunks are never re-exposed, §4.1), and
  /// returns true.
  bool try_steal_and_process(std::uint64_t next) {
    // Deadline poll at sweep entry: steal storms never process a vertex, so
    // without this a livelocked sweep loop would only notice an external
    // cancel, not its own expired budget.
    (void)s_.ctx.poll_cancel();
    ChunkT* stolen[64];
    int count = 0;
    obs::trace_begin(s_.ctx.trace, tid_, EK::kStealSweep, next);
    Timer steal_timer;
    switch (s_.config.steal_policy) {
      case StealPolicy::kPriorityNuma:
        count = steal_priority_numa(next, stolen);
        break;
      case StealPolicy::kRandom:
        count = steal_random(stolen);
        break;
      case StealPolicy::kTwoChoice:
        count = steal_two_choice(stolen);
        break;
    }
    const std::uint64_t sweep_ns = steal_timer.nanoseconds();
    my_.inc(CId::kStealNs, sweep_ns);
    my_.observe(obs::HistId::kStealSweepNs, sweep_ns);
    obs::trace_end(s_.ctx.trace, tid_, EK::kStealSweep,
                   static_cast<std::uint64_t>(count));
    if (count == 0) return false;

    std::uint64_t best = kInfPriority;
    for (int i = 0; i < count; ++i)
      best = std::min(best, stolen[i]->priority());
    publish_curr(best);  // Algorithm 1 line 23

    for (int i = 0; i < count; ++i) {
      ChunkT* c = stolen[i];
      const std::uint64_t prio = c->priority();
      const bool range = c->is_range();
      const std::uint32_t rb = c->range_begin();
      const std::uint32_t re = c->range_end();
      while (!c->empty()) {
        // Cancellation point: stop processing but keep recycling the stolen
        // chunks (they are never re-exposed) so ownership stays tidy.
        if (s_.ctx.stop_requested()) {
          c->reset();
          break;
        }
        const VertexId u = c->pop();
        if (is_stale(u, prio)) {
          my_.inc(CId::kStaleSkips);
          continue;
        }
        if (range) {
          process_neighborhood(u, prio, rb, re);
        } else {
          process_neighborhood(u, prio, 0, kFullRange);
        }
      }
      c->reset();
      pool_.put(c);  // stolen chunks are recycled by the thief (§4.3)
    }
    return true;
  }

  /// The paper's protocol (Algorithm 2): walk NUMA tiers nearest-first;
  /// within a tier, steal one chunk from every victim whose current
  /// priority level is at least as good as our best local bucket; stop at
  /// the first tier that yields anything.
  int steal_priority_numa(std::uint64_t next, ChunkT** out) {
    int count = 0;
    for (const auto& tier : s_.tiers.tiers(tid_)) {
      for (const int t : tier) {
        my_.inc(CId::kStealAttempts);
        obs::trace_instant(s_.ctx.trace, tid_, EK::kStealAttempt,
                           static_cast<std::uint64_t>(t));
        const std::uint64_t victim_curr = s_.curr.probe(t);  // acquire
        if (victim_curr > next) {
          notify_steal(t, false);
          continue;
        }
        ChunkT* c = s_.deques[static_cast<std::size_t>(t)]->steal();
        notify_steal(t, c != nullptr);
        if (c != nullptr) {
          my_.inc(CId::kSteals);
          count_steal_locality(t);
          out[count++] = c;
          if (count == 64) return count;
        }
      }
      if (count > 0) return count;
    }
    return count;
  }

  /// Steal-locality accounting (exported by bench/fig06_scaling): a steal
  /// is local when thief and victim workers are pinned to the same NUMA
  /// node of the run's topology.
  void count_steal_locality(int victim) {
    my_.inc(s_.node_of[static_cast<std::size_t>(victim)] ==
                    s_.node_of[static_cast<std::size_t>(tid_)]
                ? CId::kLocalSteals
                : CId::kRemoteSteals);
  }

  /// Observer + trace notification for one victim probe. The call count
  /// matches the kStealAttempts counter exactly (tests rely on it).
  void notify_steal(int victim, bool success) {
    if (success)
      obs::trace_instant(s_.ctx.trace, tid_, EK::kStealSuccess,
                         static_cast<std::uint64_t>(victim));
    if (s_.ctx.observer != nullptr)
      s_.ctx.observer->on_steal(tid_, victim, success);
  }

  /// Traditional random-victim stealing (§4.2 ablation): up to
  /// steal_retries+1 random victims, taking any available chunk.
  int steal_random(ChunkT** out) {
    const int p = s_.tiers.num_threads();
    if (p <= 1) return 0;
    for (int attempt = 0; attempt <= s_.config.steal_retries; ++attempt) {
      int t = static_cast<int>(rng_.next_below(static_cast<std::uint64_t>(p - 1)));
      if (t >= tid_) ++t;
      my_.inc(CId::kStealAttempts);
      obs::trace_instant(s_.ctx.trace, tid_, EK::kStealAttempt,
                         static_cast<std::uint64_t>(t));
      ChunkT* c = s_.deques[static_cast<std::size_t>(t)]->steal();
      notify_steal(t, c != nullptr);
      if (c != nullptr) {
        my_.inc(CId::kSteals);
        count_steal_locality(t);
        out[0] = c;
        return 1;
      }
    }
    return 0;
  }

  /// MultiQueue-like two-choice stealing (§4.2 ablation): sample two
  /// victims, steal from the one with the better current priority.
  int steal_two_choice(ChunkT** out) {
    const int p = s_.tiers.num_threads();
    if (p <= 1) return 0;
    for (int attempt = 0; attempt <= s_.config.steal_retries; ++attempt) {
      int a = static_cast<int>(rng_.next_below(static_cast<std::uint64_t>(p - 1)));
      if (a >= tid_) ++a;
      int b = static_cast<int>(rng_.next_below(static_cast<std::uint64_t>(p - 1)));
      if (b >= tid_) ++b;
      const std::uint64_t ca = s_.curr.probe(a);  // acquire (curr_board.hpp)
      const std::uint64_t cb = s_.curr.probe(b);  // acquire (curr_board.hpp)
      const int t = ca <= cb ? a : b;
      my_.inc(CId::kStealAttempts);
      obs::trace_instant(s_.ctx.trace, tid_, EK::kStealAttempt,
                         static_cast<std::uint64_t>(t));
      ChunkT* c = s_.deques[static_cast<std::size_t>(t)]->steal();
      notify_steal(t, c != nullptr);
      if (c != nullptr) {
        my_.inc(CId::kSteals);
        count_steal_locality(t);
        out[0] = c;
        return 1;
      }
    }
    return 0;
  }

  // --- termination (§4.3) -------------------------------------------------

  /// Called with no local work anywhere. Returns true when the whole
  /// computation is finished.
  ///
  /// Correctness argument: work always resides with a thread whose `curr`
  /// is not kInfPriority (workers publish a real level before exposing or
  /// processing work, and kStealingPriority before sweeping). The only way
  /// work crosses from a not-yet-scanned thread to an already-scanned one
  /// is a termination-mode steal, and every such sweep increments
  /// steal_epoch *before* it can steal. Hence "epoch stable across a scan
  /// that saw every thread idle" proves no work existed during the scan.
  bool terminate() {
    const int p = s_.tiers.num_threads();
    bool sweep = true;  // sweep on entry; afterwards only when work is seen
    obs::trace_begin(s_.ctx.trace, tid_, EK::kTerminationScan);
    for (;;) {
      // Cancellation point (with deadline check — idle scans are exactly
      // where an overdue run spins): leave as if terminated; peers observe
      // us idle and exit through their own polls or a genuine verdict.
      if (s_.ctx.poll_cancel()) {
        publish_curr(kInfPriority);
        obs::trace_end(s_.ctx.trace, tid_, EK::kTerminationScan, 1);
        return true;
      }
      if (sweep) {
        // acq_rel: the epoch bump orders this sweep's steal between the
        // double-scan's acquire reads (below), invalidating any scan that
        // it raced with.
        s_.steal_epoch.fetch_add(1, std::memory_order_acq_rel);
        publish_curr(kStealingPriority);
        if (try_steal_and_process(kInfPriority)) {
          obs::trace_end(s_.ctx.trace, tid_, EK::kTerminationScan, 0);
          return false;
        }
        publish_curr(kInfPriority);
      }

      my_.inc(CId::kTerminationScans);
      Timer idle_timer;
      // Acquire epoch reads bracket the scan: any sweep-steal that bumps
      // the epoch between them invalidates this scan (§4.3 double-scan).
      const std::uint64_t epoch_before =
          s_.steal_epoch.load(std::memory_order_acquire);
      bool all_idle = true;
      bool someone_working = false;
      for (int t = 0; t < p; ++t) {
        const std::uint64_t c = s_.curr.scan(t);  // acquire (curr_board.hpp)
        if (c != kInfPriority) all_idle = false;
        if (c < kStealingPriority) someone_working = true;
      }
      // Acquire: closes the double-scan bracket (see epoch_before).
      const std::uint64_t epoch_after =
          s_.steal_epoch.load(std::memory_order_acquire);

      if (all_idle && epoch_before == epoch_after) {
        // Chaos: a spurious wakeup distrusts the double-scan verdict and
        // forces one more sweep; termination must still be reached once the
        // injected doubt stops firing.
        if (WASP_CHAOS_FAIL(chaos::Point::kSpuriousWakeup)) {
          sweep = true;
          record_idle(idle_timer.nanoseconds());
          continue;
        }
        record_idle(idle_timer.nanoseconds());
        obs::trace_end(s_.ctx.trace, tid_, EK::kTerminationScan, 1);
        if (s_.ctx.observer != nullptr) s_.ctx.observer->on_termination(tid_);
        return true;
      }
      // Re-sweep only when a thread holds real-priority work; if only
      // thieves remain, stay idle and let the epoch settle.
      sweep = someone_working;
      std::this_thread::yield();
      record_idle(idle_timer.nanoseconds());
    }
  }

  void record_idle(std::uint64_t ns) {
    my_.inc(CId::kIdleNs, ns);
    my_.observe(obs::HistId::kIdleScanNs, ns);
  }

  // --- bucket advance ----------------------------------------------------

  /// Algorithm 1 line 32: moves all chunks of bucket `level` into the
  /// current-bucket deque.
  void pour_bucket(std::uint64_t level) {
    ChunkT* c = buckets_.head[level];
    buckets_.head[level] = nullptr;
    while (c != nullptr) {
      ChunkT* next_chunk = c->next;
      c->next = nullptr;
      deque_->push_bottom(c);
      c = next_chunk;
    }
  }

  WaspShared<ChunkT>& s_;
  const int tid_;
  BasicChunkPool<ChunkT> pool_;
  obs::MetricsShard& my_;
  Xoshiro256 rng_;
  ChaseLevDeque<ChunkT*>* deque_;
  ChunkT* buffer_ = nullptr;
  BucketList<ChunkT> buckets_;
  std::uint64_t curr_cache_ = kInfPriority;
  std::uint64_t progress_ = 0;
  const std::uint32_t lookahead_;  ///< SsspOptions::prefetch_lookahead
};

}  // namespace

template <typename ChunkT>
SsspResult wasp_sssp_impl(const Graph& g, VertexId source, Weight delta,
                          const WaspConfig& config, RunContext& ctx) {
  const int p = ctx.team.size();

  std::vector<std::uint8_t> leaf_bitmap;
  if (config.leaf_pruning) leaf_bitmap = compute_leaf_bitmap(g);

  std::shared_ptr<const NumaTopology> topo = config.topology;
  if (!topo) topo = std::make_shared<NumaTopology>(NumaTopology::detect());
  std::vector<int> cpu_of(static_cast<std::size_t>(p));
  for (int t = 0; t < p; ++t)
    cpu_of[static_cast<std::size_t>(t)] = ctx.team.cpu_of(t) % topo->num_cpus();

  AtomicDistances& dist = ctx.distances(g.num_vertices());
  dist.store(source, 0);

  WaspShared<ChunkT> shared(g, dist, delta, config, ctx,
                            config.leaf_pruning ? &leaf_bitmap : nullptr, p,
                            *topo, cpu_of);
  // Pre-publish worker 0 as busy at level 0 so no other worker can pass the
  // termination check before the source is seeded (same release site as
  // every in-run publication — the board owns the ordering).
  shared.curr.publish(0, 0);

  chaos::Engine* chaos = config.chaos != nullptr ? config.chaos : ctx.chaos;
  Timer timer;
  ctx.team.run([&](int tid) {
    verify::ScopedSchedule schedule_guard(tid);
    chaos::ScopedInstall chaos_guard(chaos, tid);
    WaspWorker<ChunkT> worker(shared, tid);
    if (tid == 0) worker.seed(source);
    worker.run();
  });

  SsspResult result;
  finalize_result(ctx, timer.seconds(), result);
  result.dist = dist.snapshot();
  return result;
}

template <typename ChunkT>
SsspResult wasp_sssp_seeded_impl(const Graph& g,
                                 std::span<const VertexId> seeds, Weight delta,
                                 const WaspConfig& config, RunContext& ctx) {
  const int p = ctx.team.size();

  std::vector<std::uint8_t> leaf_bitmap;
  if (config.leaf_pruning) leaf_bitmap = compute_leaf_bitmap(g);

  std::shared_ptr<const NumaTopology> topo = config.topology;
  if (!topo) topo = std::make_shared<NumaTopology>(NumaTopology::detect());
  std::vector<int> cpu_of(static_cast<std::size_t>(p));
  for (int t = 0; t < p; ++t)
    cpu_of[static_cast<std::size_t>(t)] = ctx.team.cpu_of(t) % topo->num_cpus();

  // Warm start: the caller pre-loaded ctx.dist; distances() with a matching
  // size hands the same array back untouched (no epoch bump, no seeding).
  AtomicDistances& dist = ctx.distances(g.num_vertices());

  // Per-worker minimum seed level, computed up front so every seeded worker
  // can be pre-published busy before the team launches — the multi-source
  // analogue of the classic path's `curr.publish(0, 0)`: no worker may pass
  // the termination scan before the seeds land.
  std::vector<std::uint64_t> min_level(static_cast<std::size_t>(p),
                                       kInfPriority);
  bool any_seed = false;
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const Distance d = dist.load(seeds[i]);
    if (d == kInfDist) continue;
    auto& slot = min_level[i % static_cast<std::size_t>(p)];
    slot = std::min(slot, static_cast<std::uint64_t>(d) / delta);
    any_seed = true;
  }
  if (!any_seed) {
    // Nothing to repair: report the warm bounds as-is, zero parallel work.
    SsspResult result;
    finalize_result(ctx, 0.0, result);
    result.dist = dist.snapshot();
    return result;
  }

  WaspShared<ChunkT> shared(g, dist, delta, config, ctx,
                            config.leaf_pruning ? &leaf_bitmap : nullptr, p,
                            *topo, cpu_of);
  for (int t = 0; t < p; ++t) {
    if (min_level[static_cast<std::size_t>(t)] != kInfPriority)
      shared.curr.publish(t, min_level[static_cast<std::size_t>(t)]);
  }

  chaos::Engine* chaos = config.chaos != nullptr ? config.chaos : ctx.chaos;
  Timer timer;
  ctx.team.run([&](int tid) {
    verify::ScopedSchedule schedule_guard(tid);
    chaos::ScopedInstall chaos_guard(chaos, tid);
    WaspWorker<ChunkT> worker(shared, tid);
    worker.seed_warm(seeds);
    worker.run();
  });

  SsspResult result;
  finalize_result(ctx, timer.seconds(), result);
  result.dist = dist.snapshot();
  return result;
}

SsspResult wasp_sssp(const Graph& g, VertexId source, Weight delta,
                     const WaspConfig& config, RunContext& ctx) {
  // The chunk capacity is a compile-time property (paper §4.3: "chosen at
  // compilation time"); dispatch to the instantiations we ship.
  switch (config.chunk_capacity) {
    case 16:
      return wasp_sssp_impl<BasicChunk<16>>(g, source, delta, config, ctx);
    case 32:
      return wasp_sssp_impl<BasicChunk<32>>(g, source, delta, config, ctx);
    case 64:
      return wasp_sssp_impl<BasicChunk<64>>(g, source, delta, config, ctx);
    case 128:
      return wasp_sssp_impl<BasicChunk<128>>(g, source, delta, config, ctx);
    case 256:
      return wasp_sssp_impl<BasicChunk<256>>(g, source, delta, config, ctx);
    default:
      throw InvalidOptionsError(
          "wasp_sssp: chunk_capacity must be one of 16, 32, 64, 128, 256");
  }
}

SsspResult wasp_sssp_seeded(const Graph& g, std::span<const VertexId> seeds,
                            Weight delta, const WaspConfig& config,
                            RunContext& ctx) {
  if (ctx.dist == nullptr || ctx.dist->size() != g.num_vertices())
    throw InvalidOptionsError(
        "wasp_sssp_seeded: ctx.dist must be pre-loaded with warm bounds "
        "sized to the graph");
  switch (config.chunk_capacity) {
    case 16:
      return wasp_sssp_seeded_impl<BasicChunk<16>>(g, seeds, delta, config,
                                                   ctx);
    case 32:
      return wasp_sssp_seeded_impl<BasicChunk<32>>(g, seeds, delta, config,
                                                   ctx);
    case 64:
      return wasp_sssp_seeded_impl<BasicChunk<64>>(g, seeds, delta, config,
                                                   ctx);
    case 128:
      return wasp_sssp_seeded_impl<BasicChunk<128>>(g, seeds, delta, config,
                                                    ctx);
    case 256:
      return wasp_sssp_seeded_impl<BasicChunk<256>>(g, seeds, delta, config,
                                                    ctx);
    default:
      throw InvalidOptionsError(
          "wasp_sssp_seeded: chunk_capacity must be one of 16, 32, 64, 128, "
          "256");
  }
}

}  // namespace wasp
