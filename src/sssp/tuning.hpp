// Delta selection heuristics.
//
// The paper stresses that a good Δ "is impossible to know without executing
// the algorithm" and that this limits Δ-stepping's practicality — while for
// Wasp, Δ=1 on skewed-degree graphs is a safe estimate within ~20% of
// optimal (§5, Figure 4). This module encodes that observation as a cheap
// structural heuristic, so library users get a sensible default without a
// tuning sweep, plus the sweep itself for when they want optimality.
#pragma once

#include "graph/graph.hpp"
#include "sssp/common.hpp"

namespace wasp {

/// Structural signals the heuristic keys off.
struct GraphProfile {
  double avg_degree = 0.0;
  std::uint32_t max_degree = 0;
  Weight max_weight = 0;
  bool low_degree = false;  ///< road/kmer-like: avg degree below ~4.5
  bool skewed = false;      ///< max degree far above average
};

/// One O(|V| + sampling) pass over the graph.
GraphProfile profile_graph(const Graph& g);

/// Suggested Δ for the given algorithm on this graph:
///  * Wasp: 1 on skewed/small-diameter graphs (the paper's safe estimate),
///    coarse (~4 * max weight) on low-degree graphs where parallelism must
///    be created by coarsening;
///  * synchronous steppers: coarse buckets everywhere, coarser still on
///    low-degree graphs;
///  * delta-free algorithms (Dijkstra, Bellman-Ford, MQ/SMQ): 1.
Weight suggest_delta(Algorithm algo, const Graph& g);
Weight suggest_delta(Algorithm algo, const GraphProfile& profile);

}  // namespace wasp
