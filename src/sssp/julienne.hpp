// GBBS-style synchronous delta-stepping over a Julienne bucketing structure
// (Dhulipala, Blelloch & Shun, SPAA'17): a bounded window of "open" buckets
// (GBBS's default is 32) plus an overflow bucket that is re-bucketed when
// the window is exhausted.  Rounds are bulk-synchronous with no bucket
// fusion — which is exactly why this baseline collapses on road graphs in
// the paper (Figure 5, >30x slower than Wasp).
//
// Includes the direction-optimizing pull step GBBS applies on very dense
// frontiers (the optimization that saves it on Mawi, §5.1).
#pragma once

#include "graph/graph.hpp"
#include "sssp/common.hpp"
#include "support/thread_team.hpp"

namespace wasp {

/// Runs GBBS/Julienne-style delta-stepping (delta >= 1).
/// `direction_optimize` enables the pull step on dense frontiers of
/// undirected graphs.
SsspResult julienne_sssp(const Graph& g, VertexId source, Weight delta,
                         bool direction_optimize, RunContext& ctx);

}  // namespace wasp
