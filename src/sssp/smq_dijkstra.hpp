// Parallel Dijkstra over the Stealing MultiQueue (extension baseline; see
// concurrent/stealing_multiqueue.hpp). Same driver loop as mq_dijkstra, with
// private heaps + batched stealing instead of shared lock-protected queues.
#pragma once

#include "graph/graph.hpp"
#include "sssp/common.hpp"
#include "support/thread_team.hpp"

namespace wasp {

/// Runs SMQ-based parallel Dijkstra with steal batches of `steal_batch`.
/// ctx.chaos (optional) installs a fault-injection engine on every worker.
SsspResult smq_dijkstra(const Graph& g, VertexId source, int steal_batch,
                        std::uint64_t seed, RunContext& ctx);

}  // namespace wasp
