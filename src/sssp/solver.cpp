#include "sssp/solver.hpp"

#include <utility>

#include "sssp/sssp.hpp"
#include "support/errors.hpp"
#include "support/numa.hpp"

namespace wasp {

namespace {

SsspOptions validated(SsspOptions options) {
  options.validate();
  return options;
}

}  // namespace

Solver::Solver(SsspOptions options)
    : options_(validated(std::move(options))),
      metrics_(options_.threads),
      team_(options_.threads) {
  if (!options_.wasp.topology) {
    options_.wasp.topology =
        std::make_shared<const NumaTopology>(NumaTopology::detect());
  }
}

SsspResult Solver::solve(const Graph& g, VertexId source) {
  // Re-entrancy guard. acquire pairs with the release in BusyGuard so the
  // winner of a later exchange sees everything the previous solve wrote.
  if (busy_.exchange(1, std::memory_order_acquire) != 0) {
    throw SolverBusyError(
        "Solver::solve: a solve is already in flight on this Solver; "
        "concurrent solves need one Solver each (see solver.hpp)");
  }
  struct BusyGuard {
    verify::atomic<std::uint32_t>& flag;
    // Release: publishes this solve's state to the next solve's acquire
    // exchange on busy_ (the reuse guard above).
    ~BusyGuard() { flag.store(0, std::memory_order_release); }
  } guard{busy_};
  RunContext ctx{team_, metrics_,
                 trace_ ? trace_.get() : options_.trace,
                 observer_ != nullptr ? observer_ : options_.observer,
                 options_.chaos};
  ctx.pool = &pool_;
  SsspResult result = detail::dispatch_sssp(g, source, options_, ctx);
  last_metrics_ = result.metrics;
  return result;
}

SsspResult Solver::solve(const Graph& g, VertexId source, Algorithm algo) {
  const Algorithm saved = options_.algo;
  options_.algo = algo;
  try {
    SsspResult result = solve(g, source);
    options_.algo = saved;
    return result;
  } catch (...) {
    options_.algo = saved;
    throw;
  }
}

obs::TraceRecorder& Solver::enable_trace(std::size_t events_per_thread) {
  if (!trace_) {
    trace_ = std::make_unique<obs::TraceRecorder>(options_.threads,
                                                  events_per_thread);
  }
  return *trace_;
}

}  // namespace wasp
