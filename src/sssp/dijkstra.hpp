// Sequential Dijkstra — the correctness reference for every parallel
// implementation, and the work-efficiency baseline of Figure 8 (its
// relaxation count is "the theoretical minimum number of relaxations" the
// priority-drift analysis normalizes against).
#pragma once

#include "graph/graph.hpp"
#include "sssp/common.hpp"

namespace wasp {

/// Dijkstra with a 4-ary heap and lazy deletion.
SsspResult dijkstra(const Graph& g, VertexId source);

}  // namespace wasp
