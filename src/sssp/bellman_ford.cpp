#include "sssp/bellman_ford.hpp"

#include <atomic>

#include "concurrent/frontier_bag.hpp"
#include "support/spin_barrier.hpp"
#include "support/thread_team.hpp"
#include "support/timer.hpp"
#include "verify/checked_atomic.hpp"

namespace wasp {

SsspResult bellman_ford(const Graph& g, VertexId source, RunContext& ctx) {
  using CId = obs::CounterId;
  const int p = ctx.team.size();
  AtomicDistances& dist = ctx.distances(g.num_vertices());
  dist.store(source, 0);

  std::vector<VertexId> frontier{source};
  FrontierBag next(p);
  SpinBarrier barrier(p);
  // Deduplicates frontier insertions within a round: a vertex improved many
  // times per round is still processed once next round.
  std::vector<verify::atomic<std::uint8_t>> in_next(g.num_vertices());
  // Relaxed init: precedes the team launch, which publishes the vector.
  for (auto& f : in_next) f.store(0, std::memory_order_relaxed);
  verify::atomic<std::size_t> cursor{0};
  std::uint64_t rounds = 0;
  bool cancelled = false;  // written by tid 0 pre-barrier, read post-barrier

  Timer timer;
  ctx.team.run([&](int tid) {
    obs::MetricsShard& my = ctx.metrics.shard(tid);
    for (;;) {
      // Dynamic claim over the current frontier.
      for (;;) {
        // Cancellation point: drop unclaimed entries; the round decision
        // below makes every thread leave at the same barrier.
        if (ctx.stop_requested()) break;
        // Relaxed ticket: the index itself is the only payload, and the
        // frontier contents were published by the round barrier.
        const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= frontier.size()) break;
        const VertexId u = frontier[i];
        // acq_rel exchanges on the dedup flag pair with relax_to's release:
        // either the updater sees our cleared flag and re-inserts u, or we
        // synchronize with its flag write and read the improved distance.
        in_next[u].exchange(0, std::memory_order_acq_rel);
        const Distance du = dist.load(u);
        for (const WEdge& e : g.out_neighbors(u)) {
          my.inc(CId::kRelaxations);
          if (dist.relax_to(e.dst, saturating_add(du, e.w))) {
            my.inc(CId::kUpdates);
            // acq_rel: same dedup-flag pairing as the clear above.
            if (in_next[e.dst].exchange(1, std::memory_order_acq_rel) == 0)
              next.insert(tid, e.dst);
          }
        }
      }
      barrier.wait(tid);
      if (tid == 0) {
        const std::size_t processed = frontier.size();
        const std::size_t total = next.compute_offsets();
        frontier.resize(total);
        // Relaxed: the barrier below publishes the reset to the team.
        cursor.store(0, std::memory_order_relaxed);
        // Round-top deadline/cancel poll (tid 0 only, so all threads agree).
        cancelled = ctx.poll_cancel();
        ++rounds;
        my.observe(obs::HistId::kRoundFrontier, processed);
        obs::trace_instant(ctx.trace, tid, obs::EventKind::kRoundTransition,
                           total);
        if (ctx.observer != nullptr) ctx.observer->on_round(rounds, processed);
      }
      barrier.wait(tid);
      if (frontier.empty() || cancelled) break;
      next.copy_out_and_clear(tid, frontier.data());
      barrier.wait(tid);
    }
  });

  const double seconds = timer.seconds();
  ctx.metrics.shard(0).inc(CId::kRounds, rounds);
  ctx.metrics.shard(0).inc(CId::kBarrierNs, barrier.total_wait_ns());
  SsspResult result;
  finalize_result(ctx, seconds, result);
  result.dist = dist.snapshot();
  return result;
}

}  // namespace wasp
