// GAP-style synchronous delta-stepping (Meyer & Sanders' algorithm as
// engineered in the GAP Benchmarking Suite): thread-local bins, a shared
// frontier array processed in bulk-synchronous steps, and the bucket-fusion
// optimization of Zhang et al. (CGO'20) that lets a thread keep processing
// its own small current-bin contents within a step.
//
// Barrier wait time is instrumented per thread — the Figure 1 breakdown.
#pragma once

#include "graph/graph.hpp"
#include "sssp/common.hpp"
#include "support/thread_team.hpp"

namespace wasp {

/// Runs GAP-style delta-stepping with bucket width `delta` (>= 1) on
/// ctx.team. `bucket_fusion` toggles the GraphIt/GAP bucket-fusion
/// optimization; ctx.chaos (optional) installs a fault-injection engine on
/// every worker.
SsspResult delta_stepping(const Graph& g, VertexId source, Weight delta,
                          bool bucket_fusion, RunContext& ctx);

}  // namespace wasp
