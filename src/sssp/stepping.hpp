// The stepping algorithms of Dong, Gu, Sun & Zhang (SPAA'21): each
// bulk-synchronous round extracts and processes every frontier vertex whose
// tentative distance is below a threshold.
//
//  * Δ*-stepping: threshold = (current frontier minimum) + Δ — like
//    Δ-stepping but with a sliding window instead of fixed bucket edges.
//  * ρ-stepping: threshold chosen (by sampling) so that about ρ vertices
//    fall below it each round.
//
// Both use the lazy-batched frontier (FrontierBag) and the two optimizations
// the paper attributes to them: super-sparse rounds (tiny frontiers are
// processed sequentially, skipping parallel overhead and cutting barrier
// cost on road graphs) and the direction-optimizing pull step on dense
// frontiers of undirected graphs (their Mawi lifeline).
#pragma once

#include "graph/graph.hpp"
#include "sssp/common.hpp"
#include "support/thread_team.hpp"

namespace wasp {

/// Threshold rule selector for stepping_sssp.
enum class SteppingKind {
  kDeltaStar,  ///< threshold = frontier min + delta
  kRho,        ///< threshold = estimated rho-th smallest frontier distance
  kRadius,     ///< threshold = min over frontier of dist(v) + r_k(v)
               ///< (radius-stepping, Blelloch et al. SPAA'16 — related work)
};

/// Runs Δ*-stepping (delta = window width, >= 1), ρ-stepping (rho = batch
/// size, >= 1) or radius-stepping (radii = per-vertex k-radius from
/// compute_radii; required for kRadius, ignored otherwise).
SsspResult stepping_sssp(const Graph& g, VertexId source, SteppingKind kind,
                         Weight delta, std::uint64_t rho,
                         bool direction_optimize, RunContext& ctx,
                         const std::vector<Distance>* radii = nullptr);

/// Radius-stepping preprocessing: r_k(v) = distance from v to its k-th
/// nearest out-neighbour, computed by a truncated local Dijkstra per vertex
/// (parallelized over vertices).
std::vector<Distance> compute_radii(const Graph& g, std::uint32_t k,
                                    ThreadTeam& team);

}  // namespace wasp
