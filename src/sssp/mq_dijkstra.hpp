// Parallel Dijkstra over the relaxed MultiQueue (paper §2, §3): threads
// independently pop approximately-minimal (distance, vertex) pairs, skip
// stale ones, relax out-edges, and push improved vertices back.  The queue's
// locked-operation time is surfaced in the stats (Figure 2's breakdown).
#pragma once

#include "graph/graph.hpp"
#include "sssp/common.hpp"
#include "support/thread_team.hpp"

namespace wasp {

/// Runs MultiQueue-based parallel Dijkstra. `c`, `stickiness` and
/// `buffer_size` mirror the paper's MultiQueue configuration (c = 2, b = 16,
/// stickiness tuned per graph).
SsspResult mq_dijkstra(const Graph& g, VertexId source, int c, int stickiness,
                       int buffer_size, std::uint64_t seed, RunContext& ctx);

}  // namespace wasp
