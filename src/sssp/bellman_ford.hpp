// Frontier-based parallel Bellman-Ford: a simple round-synchronous baseline
// (every active vertex relaxes all out-edges each round).  Not part of the
// paper's comparison set, but a useful correctness cross-check and the
// natural "maximum priority drift" endpoint of the design space Wasp
// navigates.
#pragma once

#include "graph/graph.hpp"
#include "sssp/common.hpp"
#include "support/thread_team.hpp"

namespace wasp {

/// Parallel frontier Bellman-Ford on ctx.team (sequential when size()==1).
SsspResult bellman_ford(const Graph& g, VertexId source, RunContext& ctx);

}  // namespace wasp
