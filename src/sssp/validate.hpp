// Result validation: compares a parallel run's distances against the
// sequential Dijkstra reference and against the local SSSP optimality
// conditions (no relaxable edge remains; every finite distance is witnessed
// by an in-edge).
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "support/types.hpp"

namespace wasp {

/// Compares `got` against `expected` element-wise; on mismatch fills
/// `message` with the first offending vertex and returns false.
bool distances_equal(const std::vector<Distance>& expected,
                     const std::vector<Distance>& got, std::string* message);

/// Checks the SSSP fixed-point conditions directly on the graph:
///  * dist[source] == 0,
///  * no edge (u, v) with dist[u] + w < dist[v] (no relaxable edge),
///  * every reached v != source has an in-edge achieving its distance.
/// O(|E|); does not need a reference run. Fills `message` on failure.
bool validate_sssp(const Graph& g, VertexId source,
                   const std::vector<Distance>& dist, std::string* message);

}  // namespace wasp
