#include "sssp/incremental.hpp"

#include <sstream>
#include <utility>

#include "graph/algorithms.hpp"
#include "graph/builder.hpp"
#include "sssp/wasp.hpp"
#include "support/errors.hpp"

namespace wasp {

namespace {

using CId = obs::CounterId;

[[noreturn]] void throw_cancelled(const CancelToken& token) {
  std::ostringstream os;
  os << "IncrementalSolver::solve: solve cancelled ("
     << to_string(token.reason()) << ")";
  throw SolveCancelledError(os.str(), token.reason());
}

}  // namespace

IncrementalSolver::IncrementalSolver(SsspOptions options)
    : solver_(std::move(options)) {}

bool IncrementalSolver::warm_for(const VersionedGraph& vg, VertexId source) {
  if (bound_graph_ != &vg || bound_source_ != source) return false;
  // Same address is not same graph: a different VersionedGraph rebuilt at a
  // recycled heap address can line up on version and size. The
  // process-unique uid (never reused) is the identity check.
  if (bound_uid_ != vg.uid()) return false;
  // The warm contract needs the pool's array to still be *our* array: same
  // size, and the epoch stamp untouched since our last answer (any other
  // query through the solver bumps it).
  AtomicDistances* d = solver_.distances().current();
  return d != nullptr && d->size() == vg.num_vertices() &&
         d->epoch() == bound_epoch_ && dist_.size() == vg.num_vertices();
}

const Graph& IncrementalSolver::in_view(const VersionedGraph& vg,
                                        const Graph& g) {
  if (vg.is_undirected()) return g;  // out-arcs mirror in-arcs
  if (!transpose_valid_) {
    transpose_ = GraphBuilder().transpose_of(g).build();
    transpose_valid_ = true;
  }
  return transpose_;
}

const std::vector<Distance>& IncrementalSolver::solve(VersionedGraph& vg,
                                                      VertexId source) {
  // uid, not address: the transpose cache below must also survive (only)
  // the graph object it was built from.
  const bool same_binding = bound_graph_ == &vg && bound_uid_ == vg.uid() &&
                            bound_source_ == source;
  const bool warm = warm_for(vg, source);

  // graph() folds any staged structural overlay back into the flat CSR the
  // engine consumes; the compaction count tells us the in-arc structure
  // changed (weight-only batches never compact).
  const Graph& g = vg.graph();
  if (!same_binding || vg.compactions() != seen_compactions_)
    transpose_valid_ = false;

  bool repaired = false;
  if (warm && bound_version_ == vg.version()) {
    // Nothing changed since our last answer — the warm snapshot IS current.
    last_ = RepairStats{};
    last_.full_solve = false;
    repaired = true;
  } else if (warm) {
    const VersionedGraph::JournalView jv = vg.journal_since(bound_version_);
    if (jv.ok) {
      repair(vg, g, source, jv.effects);
      repaired = true;
    }
    // !jv.ok: the journal was trimmed past our version — full solve below.
  }
  if (!repaired) full_solve(g, source);

  bound_graph_ = &vg;
  bound_uid_ = vg.uid();
  bound_source_ = source;
  bound_version_ = vg.version();
  seen_compactions_ = vg.compactions();
  return dist_;
}

void IncrementalSolver::full_solve(const Graph& g, VertexId source) {
  SsspResult result = solver_.solve(g, source);
  dist_ = std::move(result.dist);
  last_ = RepairStats{};
  last_.full_solve = true;
  last_.seconds = result.stats.seconds;

  // Bind the warm state only when the solve actually went through the
  // pooled atomic array (the sequential Dijkstra reference keeps its own
  // plain vector — its "warm" pool content would be a stale lie).
  AtomicDistances* d = solver_.distances().current();
  if (solver_.options().algo != Algorithm::kDijkstra && d != nullptr &&
      d->size() == g.num_vertices()) {
    bound_epoch_ = d->epoch();
  } else {
    bound_graph_ = nullptr;  // unbindable: every solve stays a full solve
  }
}

void IncrementalSolver::repair(VersionedGraph& vg, const Graph& g,
                               VertexId source,
                               std::span<const ArcEffect> effects) {
  SsspOptions& opts = solver_.options();
  opts.validate();
  CancelToken* cancel = opts.cancel;
  AtomicDistances& dist = *solver_.distances().current();

  // Any exit that leaves the atomic array half-mutated (cancel, engine
  // failure) must poison the warm state, or the next solve would repair on
  // top of garbage.
  auto discard_warm = [&] {
    dist.new_epoch();
    bound_graph_ = nullptr;
  };
  if (cancel != nullptr && cancel->poll()) {
    discard_warm();
    throw_cancelled(*cancel);
  }

  obs::MetricsRegistry& registry = solver_.metrics();
  registry.reset();
  obs::MetricsShard& shard = registry.shard(0);
  shard.inc(CId::kGraphCompactions, vg.compactions() - seen_compactions_);

  const VertexId n = g.num_vertices();
  in_cone_.assign(n, 0);
  seeded_.assign(n, 0);
  cone_.clear();
  seeds_.clear();

  // 1. Classify effects. Decrease sources seed relaxation; admissible
  // increase heads start the invalidation cone. The <= (not ==) parent
  // predicate is deliberately conservative: across multi-batch catch-up an
  // effect's old_w need not be the weight the warm distances settled
  // against, and over-invalidation is the safe direction.
  for (const ArcEffect& e : effects) {
    if (e.is_decrease() && dist_[e.src] != kInfDist && !seeded_[e.src]) {
      seeded_[e.src] = 1;
      seeds_.push_back(e.src);
    }
    if (e.is_increase() && e.dst != source && !in_cone_[e.dst] &&
        dist_[e.src] != kInfDist && dist_[e.dst] != kInfDist &&
        saturating_add(dist_[e.src], e.old_w) <= dist_[e.dst]) {
      in_cone_[e.dst] = 1;
      cone_.push_back(e.dst);
    }
  }

  // 2. Cone walk: everything reachable through admissible arcs (under the
  // warm distances) may have depended on a changed arc. dist_ still holds
  // the warm values — the atomic array is only invalidated after the walk.
  std::uint64_t walked = 0;
  for (std::size_t i = 0; i < cone_.size(); ++i) {
    // Cancellation point for the repair loop: a big cone is the only
    // sequential phase here that can run long.
    if ((++walked & 0xFFFu) == 0 && cancel != nullptr && cancel->poll()) {
      discard_warm();
      throw_cancelled(*cancel);
    }
    const VertexId x = cone_[i];
    const Distance dx = dist_[x];
    for (const WEdge& e : g.out_neighbors(x)) {
      if (in_cone_[e.dst] || e.dst == source) continue;
      const Distance dy = dist_[e.dst];
      if (dy == kInfDist) continue;
      if (saturating_add(dx, e.w) <= dy) {
        in_cone_[e.dst] = 1;
        cone_.push_back(e.dst);
      }
    }
  }

  // 3. Boundary seeds: intact in-neighbours of the cone re-derive its
  // distances. O(sum of cone in-degrees) via the structural in-arc view.
  const Graph& rin = in_view(vg, g);
  for (const VertexId c : cone_) {
    if ((++walked & 0xFFFu) == 0 && cancel != nullptr && cancel->poll()) {
      discard_warm();
      throw_cancelled(*cancel);
    }
    for (const WEdge& e : rin.out_neighbors(c)) {
      const VertexId u = e.dst;  // in-neighbour of c
      if (in_cone_[u] || seeded_[u] || dist_[u] == kInfDist) continue;
      seeded_[u] = 1;
      seeds_.push_back(u);
    }
  }

  // 4. Invalidate the cone and repair from the seeds with the normal
  // engine. No epoch bump: untouched vertices keep their warm entries.
  for (const VertexId c : cone_) dist.store(c, kInfDist);

  const std::uint64_t batches = vg.version() - bound_version_;
  shard.inc(CId::kRepairBatches, batches);
  shard.inc(CId::kRepairConeVertices, cone_.size());
  shard.inc(CId::kRepairSeedVertices, seeds_.size());

  RunContext ctx{solver_.team(), registry,
                 solver_.trace() != nullptr ? solver_.trace() : opts.trace,
                 opts.observer, opts.chaos};
  ctx.pool = &solver_.distances();
  ctx.dist = &dist;
  ctx.prefetch_lookahead = opts.prefetch_lookahead;
  ctx.cancel = cancel;
  WaspConfig cfg = opts.wasp;
  if (cfg.chaos == nullptr) cfg.chaos = ctx.chaos;

  SsspResult result;
  try {
    result = wasp_sssp_seeded(g, seeds_, opts.delta, cfg, ctx);
  } catch (...) {
    discard_warm();
    throw;
  }
  if (cancel != nullptr && cancel->cancel_requested()) {
    discard_warm();
    throw_cancelled(*cancel);
  }

  dist_ = std::move(result.dist);
  bound_epoch_ = dist.epoch();
  last_ = RepairStats{};
  last_.full_solve = false;
  last_.batches = batches;
  last_.effects = effects.size();
  last_.cone_vertices = cone_.size();
  last_.seed_vertices = seeds_.size();
  last_.seconds = result.stats.seconds;
}

}  // namespace wasp
