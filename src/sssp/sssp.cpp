#include "sssp/sssp.hpp"

#include <sstream>

#include "support/errors.hpp"

#include "sssp/bellman_ford.hpp"
#include "sssp/delta_stepping.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/julienne.hpp"
#include "sssp/mq_dijkstra.hpp"
#include "sssp/obim.hpp"
#include "sssp/smq_dijkstra.hpp"
#include "sssp/stepping.hpp"
#include "sssp/wasp.hpp"

namespace wasp {

namespace {

/// Rejects inputs no algorithm can run on, with typed errors, before any
/// worker thread is involved. The O(1) checks run always; the O(n + m) CSR
/// scan runs only with options.paranoid_checks (Graph::from_csr already
/// validates at construction, so this re-scan is for callers that bypassed
/// it or mutated buffers underneath).
void check_inputs(const Graph& g, VertexId source, const SsspOptions& options) {
  if (g.num_vertices() == 0)
    throw InvalidGraphError("run_sssp: graph has no vertices");
  if (source >= g.num_vertices()) {
    std::ostringstream os;
    os << "run_sssp: source " << source << " out of range [0, "
       << g.num_vertices() << ")";
    throw InvalidSourceError(os.str());
  }
  if (!options.paranoid_checks) return;
  const auto& offsets = g.offsets();
  const auto& adjacency = g.adjacency();
  for (std::size_t v = 0; v + 1 < offsets.size(); ++v) {
    if (offsets[v] > offsets[v + 1]) {
      std::ostringstream os;
      os << "run_sssp: CSR offsets decrease at vertex " << v << " ("
         << offsets[v] << " > " << offsets[v + 1] << ")";
      throw InvalidGraphError(os.str());
    }
  }
  for (std::size_t i = 0; i < adjacency.size(); ++i) {
    if (adjacency[i].dst >= g.num_vertices()) {
      std::ostringstream os;
      os << "run_sssp: adjacency[" << i << "].dst = " << adjacency[i].dst
         << " out of range [0, " << g.num_vertices() << ")";
      throw InvalidGraphError(os.str());
    }
  }
}

/// Throws the typed cancellation outcome for a token that has fired.
[[noreturn]] void throw_cancelled(const CancelToken& token) {
  const CancelReason reason = token.reason();
  std::ostringstream os;
  os << "run_sssp: solve cancelled (" << to_string(reason) << ")";
  throw SolveCancelledError(os.str(), reason);
}

}  // namespace

namespace detail {

SsspResult dispatch_sssp(const Graph& g, VertexId source,
                         const SsspOptions& options, RunContext& ctx) {
  options.validate();
  check_inputs(g, source, options);
  ctx.metrics.reset();
  ctx.cancel = options.cancel;
  // Pre-fired token (or an already-expired deadline): reject before any
  // worker or distance array is touched.
  if (ctx.cancel != nullptr && ctx.cancel->poll()) throw_cancelled(*ctx.cancel);
  if (options.algo == Algorithm::kDijkstra) {
    // The sequential reference keeps its own plain distance vector; don't
    // charge it a pooled-array acquisition. It is also not cancellable
    // mid-run: no worker polls, so the token was only checked above.
    return dijkstra(g, source);
  }
  DistancePool local_pool;
  DistancePool& pool = ctx.pool != nullptr ? *ctx.pool : local_pool;
  const std::uint64_t sweeps_before = pool.sweeps();
  ctx.dist = &pool.acquire(g.num_vertices());
  ctx.prefetch_lookahead = options.prefetch_lookahead;
  ctx.metrics.shard(0).inc(obs::CounterId::kEpochSweeps,
                           pool.sweeps() - sweeps_before);
  SsspResult result = [&]() -> SsspResult {
  switch (options.algo) {
    case Algorithm::kDijkstra:
      return dijkstra(g, source);
    case Algorithm::kBellmanFord:
      return bellman_ford(g, source, ctx);
    case Algorithm::kDeltaStepping:
      return delta_stepping(g, source, options.delta, options.gap.bucket_fusion,
                            ctx);
    case Algorithm::kJulienne:
      return julienne_sssp(g, source, options.delta,
                           options.stepping.direction_optimize, ctx);
    case Algorithm::kDeltaStar:
      return stepping_sssp(g, source, SteppingKind::kDeltaStar, options.delta,
                           options.stepping.rho,
                           options.stepping.direction_optimize, ctx);
    case Algorithm::kRhoStepping:
      return stepping_sssp(g, source, SteppingKind::kRho, options.delta,
                           options.stepping.rho,
                           options.stepping.direction_optimize, ctx);
    case Algorithm::kRadiusStepping: {
      // Preprocessing (the r_k radii) is part of radius-stepping's contract;
      // its cost is excluded from stats.seconds like the baselines' graph
      // loading, but callers wanting end-to-end cost can time this call.
      const std::vector<Distance> radii =
          compute_radii(g, options.stepping.radius_k, ctx.team);
      return stepping_sssp(g, source, SteppingKind::kRadius, options.delta,
                           options.stepping.rho,
                           options.stepping.direction_optimize, ctx, &radii);
    }
    case Algorithm::kMqDijkstra:
      return mq_dijkstra(g, source, options.mq.c, options.mq.stickiness,
                         options.mq.buffer, options.seed, ctx);
    case Algorithm::kSmqDijkstra:
      return smq_dijkstra(g, source, options.smq.steal_batch, options.seed,
                          ctx);
    case Algorithm::kWasp: {
      WaspConfig cfg = options.wasp;
      if (cfg.chaos == nullptr) cfg.chaos = ctx.chaos;
      if (cfg.partition.enabled)
        return wasp_sssp_partitioned(g, source, options.delta, cfg, ctx);
      return wasp_sssp(g, source, options.delta, cfg, ctx);
    }
    case Algorithm::kObim:
      return obim_sssp(g, source, options.delta, options.obim.chunk_size, ctx);
  }
  return dijkstra(g, source);  // unreachable
  }();
  // The team has joined by now, so every worker's polls happened-before
  // this check. A fired token means the distance array holds a partial
  // relaxation — bump its epoch so the pooled state is logically all-inf
  // again (the Solver stays reusable) and surface the typed outcome.
  if (ctx.cancel != nullptr && ctx.cancel->cancel_requested()) {
    ctx.dist->new_epoch();
    throw_cancelled(*ctx.cancel);
  }
  return result;
}

}  // namespace detail

SsspResult run_sssp(const Graph& g, VertexId source, const SsspOptions& options,
                    ThreadTeam& team) {
  obs::MetricsRegistry metrics(team.size());
  RunContext ctx{team, metrics, options.trace, options.observer,
                 options.chaos};
  return detail::dispatch_sssp(g, source, options, ctx);
}

SsspResult run_sssp(const Graph& g, VertexId source,
                    const SsspOptions& options) {
  // Validate before spinning up the team so a bad threads count raises
  // InvalidOptionsError (not ThreadTeam's bare invalid_argument).
  options.validate();
  ThreadTeam team(options.threads);
  return run_sssp(g, source, options, team);
}

}  // namespace wasp
