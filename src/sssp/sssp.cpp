#include "sssp/sssp.hpp"

#include "sssp/bellman_ford.hpp"
#include "sssp/delta_stepping.hpp"
#include "sssp/dijkstra.hpp"
#include "sssp/julienne.hpp"
#include "sssp/mq_dijkstra.hpp"
#include "sssp/obim.hpp"
#include "sssp/smq_dijkstra.hpp"
#include "sssp/stepping.hpp"
#include "sssp/wasp.hpp"

namespace wasp {

SsspResult run_sssp(const Graph& g, VertexId source, const SsspOptions& options,
                    ThreadTeam& team) {
  switch (options.algo) {
    case Algorithm::kDijkstra:
      return dijkstra(g, source);
    case Algorithm::kBellmanFord:
      return bellman_ford(g, source, team);
    case Algorithm::kDeltaStepping:
      return delta_stepping(g, source, options.delta, options.bucket_fusion,
                            team);
    case Algorithm::kJulienne:
      return julienne_sssp(g, source, options.delta, options.direction_optimize,
                           team);
    case Algorithm::kDeltaStar:
      return stepping_sssp(g, source, SteppingKind::kDeltaStar, options.delta,
                           options.rho, options.direction_optimize, team);
    case Algorithm::kRhoStepping:
      return stepping_sssp(g, source, SteppingKind::kRho, options.delta,
                           options.rho, options.direction_optimize, team);
    case Algorithm::kRadiusStepping: {
      // Preprocessing (the r_k radii) is part of radius-stepping's contract;
      // its cost is excluded from stats.seconds like the baselines' graph
      // loading, but callers wanting end-to-end cost can time this call.
      const std::vector<Distance> radii =
          compute_radii(g, options.radius_k, team);
      return stepping_sssp(g, source, SteppingKind::kRadius, options.delta,
                           options.rho, options.direction_optimize, team,
                           &radii);
    }
    case Algorithm::kMqDijkstra:
      return mq_dijkstra(g, source, options.mq_c, options.mq_stickiness,
                         options.mq_buffer, options.seed, team);
    case Algorithm::kSmqDijkstra:
      return smq_dijkstra(g, source, options.smq_steal_batch, options.seed,
                          team);
    case Algorithm::kObim:
      return obim_sssp(g, source, options.delta, options.obim_chunk_size, team);
    case Algorithm::kWasp:
      return wasp_sssp(g, source, options.delta, options.wasp, team);
  }
  return dijkstra(g, source);  // unreachable
}

SsspResult run_sssp(const Graph& g, VertexId source, const SsspOptions& options) {
  ThreadTeam team(options.threads);
  return run_sssp(g, source, options, team);
}

}  // namespace wasp
