#include "sssp/validate.hpp"

#include <sstream>

#include "graph/algorithms.hpp"

namespace wasp {

bool distances_equal(const std::vector<Distance>& expected,
                     const std::vector<Distance>& got, std::string* message) {
  if (expected.size() != got.size()) {
    if (message != nullptr) {
      std::ostringstream os;
      os << "size mismatch: expected " << expected.size() << ", got "
         << got.size();
      *message = os.str();
    }
    return false;
  }
  for (std::size_t v = 0; v < expected.size(); ++v) {
    if (expected[v] != got[v]) {
      if (message != nullptr) {
        std::ostringstream os;
        os << "vertex " << v << ": expected " << expected[v] << ", got "
           << got[v];
        *message = os.str();
      }
      return false;
    }
  }
  return true;
}

bool validate_sssp(const Graph& g, VertexId source,
                   const std::vector<Distance>& dist, std::string* message) {
  const auto fail = [&](const std::string& why) {
    if (message != nullptr) *message = why;
    return false;
  };
  if (dist.size() != g.num_vertices()) return fail("distance array size mismatch");
  if (dist[source] != 0) return fail("dist[source] != 0");

  // No relaxable edge may remain.
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    if (dist[u] == kInfDist) continue;
    for (const WEdge& e : g.out_neighbors(u)) {
      if (saturating_add(dist[u], e.w) < dist[e.dst]) {
        std::ostringstream os;
        os << "relaxable edge (" << u << " -> " << e.dst << "): " << dist[u]
           << " + " << e.w << " < " << dist[e.dst];
        return fail(os.str());
      }
    }
  }

  // Every finite distance must be witnessed by an in-edge (checked via the
  // transpose so directed graphs are handled).
  const Graph gt = transpose(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (v == source || dist[v] == kInfDist) continue;
    bool witnessed = false;
    for (const WEdge& e : gt.out_neighbors(v)) {
      if (dist[e.dst] != kInfDist && saturating_add(dist[e.dst], e.w) == dist[v]) {
        witnessed = true;
        break;
      }
    }
    if (!witnessed) {
      std::ostringstream os;
      os << "vertex " << v << " has distance " << dist[v]
         << " but no in-edge achieves it";
      return fail(os.str());
    }
  }
  return true;
}

}  // namespace wasp
