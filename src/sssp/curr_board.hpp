// CurrBoard: the curr-level publication protocol of the Wasp engine
// (paper §4.2/§4.3, Algorithm 1 line 23 / Algorithm 2).
//
// One cache-padded slot per worker advertises the priority level whose
// chunks that worker currently exposes in its Chase-Lev deque. Thieves read
// the board twice over: steal policies *probe* it to pick victims whose
// level is at least as good as their best local bucket, and the
// termination protocol *scans* it for the all-idle verdict.
//
// Extracted from wasp.cpp so the protocol's freshness contract is a
// testable unit: the release/acquire pair below is exactly what guarantees
// a thief that observed a published level can steal the chunks pushed
// before it (tests/test_verify.cpp WaspCurrProtocol — the publish() site is
// a deterministically killed mutant, see docs/CONCURRENCY.md).
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "concurrent/chunk.hpp"  // kInfPriority
#include "support/padded.hpp"
#include "verify/checked_atomic.hpp"

namespace wasp {

class CurrBoard {
 public:
  /// Slots start at kInfPriority ("no work"), the idle state the
  /// termination scan looks for. Relaxed: construction precedes the team
  /// launch, which carries the edge to every worker.
  explicit CurrBoard(int threads)
      : slots_(static_cast<std::size_t>(threads)) {
    for (auto& s : slots_)
      s.value.store(kInfPriority, std::memory_order_relaxed);
  }

  CurrBoard(const CurrBoard&) = delete;
  CurrBoard& operator=(const CurrBoard&) = delete;

  /// Publishes the level whose chunks `tid` is now exposing. Release: the
  /// chunks (and their plain priority/range fields) were pushed to the
  /// deque *before* the level is claimed, and this store is what carries
  /// them to a thief whose probe() reads it — the probe-then-steal
  /// freshness contract the WaspCurrProtocol tests pin down.
  void publish(int tid, std::uint64_t level) {
    slots_[static_cast<std::size_t>(tid)].value.store(
        level, std::memory_order_release);
  }

  /// Steal-policy read of a victim's published level (Algorithm 2 gate and
  /// the two-choice policy). Acquire: reads-from publish(), so a thief
  /// that saw the level also sees the deque state pushed before it. The
  /// acquire is the published order of the probe-then-steal contract, but
  /// it is advisory: steal() re-synchronizes through the deque's own
  /// bottom release/acquire edge, so a weakened probe costs at most a
  /// spurious empty steal (waived mutant CURR-c05129, docs/CONCURRENCY.md).
  [[nodiscard]] std::uint64_t probe(int victim) const {
    return slots_[static_cast<std::size_t>(victim)].value.load(
        std::memory_order_acquire);
  }

  /// Termination-scan read (§4.3 double-scan). Acquire: pairs with
  /// publish() so a scanner that observes a worker idle is ordered after
  /// that worker's last real-level activity; the double-scan epoch check
  /// tolerates staleness here (see WaspWorker::terminate).
  [[nodiscard]] std::uint64_t scan(int t) const {
    return slots_[static_cast<std::size_t>(t)].value.load(
        std::memory_order_acquire);
  }

  [[nodiscard]] int size() const { return static_cast<int>(slots_.size()); }

 private:
  std::vector<CachePadded<verify::atomic<std::uint64_t>>> slots_;
};

}  // namespace wasp
