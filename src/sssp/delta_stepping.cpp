#include "sssp/delta_stepping.hpp"

#include <atomic>
#include <limits>

#include "support/padded.hpp"
#include "support/prefetch.hpp"
#include "support/spin_barrier.hpp"
#include "support/thread_team.hpp"
#include "support/timer.hpp"
#include "verify/checked_atomic.hpp"
#include "verify/scheduler.hpp"

namespace wasp {

namespace {

using CId = obs::CounterId;

constexpr std::uint64_t kInfBin = std::numeric_limits<std::uint64_t>::max();

/// A thread's bin array: bin i holds vertices with coarsened distance i.
/// Grown on demand (power-of-two rounding like the paper's bucket vector).
struct LocalBins {
  std::vector<std::vector<VertexId>> bins;

  std::vector<VertexId>& at(std::uint64_t bin) {
    if (bin >= bins.size()) {
      std::size_t cap = bins.empty() ? 64 : bins.size();
      while (cap <= bin) cap *= 2;
      bins.resize(cap);
    }
    return bins[bin];
  }

  [[nodiscard]] std::uint64_t min_non_empty(std::uint64_t from) const {
    for (std::uint64_t b = from; b < bins.size(); ++b)
      if (!bins[b].empty()) return b;
    return kInfBin;
  }
};

// GAP's bucket-fusion bound: a thread keeps draining its own current bin
// within a step while it stays below this size.
constexpr std::size_t kFusionLimit = 1u << 12;

}  // namespace

SsspResult delta_stepping(const Graph& g, VertexId source, Weight delta,
                          bool bucket_fusion, RunContext& ctx) {
  const int p = ctx.team.size();
  AtomicDistances& dist = ctx.distances(g.num_vertices());
  dist.store(source, 0);
  const std::uint32_t lookahead = ctx.prefetch_lookahead;

  std::vector<CachePadded<LocalBins>> bins(static_cast<std::size_t>(p));
  std::vector<CachePadded<std::uint64_t>> local_min(static_cast<std::size_t>(p));
  std::vector<CachePadded<std::uint64_t>> local_size(static_cast<std::size_t>(p));
  std::vector<CachePadded<std::uint64_t>> local_offset(static_cast<std::size_t>(p));

  std::vector<VertexId> frontier{source};
  verify::atomic<std::size_t> cursor{0};
  std::uint64_t curr_bin = 0;
  std::uint64_t rounds = 0;
  bool done = false;
  SpinBarrier barrier(p);

  Timer timer;
  ctx.team.run([&](int tid) {
    verify::ScopedSchedule schedule_guard(tid);
    chaos::ScopedInstall chaos_guard(ctx.chaos, tid);
    auto& my_bins = bins[static_cast<std::size_t>(tid)].value;
    obs::MetricsShard& my = ctx.metrics.shard(tid);

    // Relaxes u's out-edges; improved vertices land in this thread's bins.
    const auto process_vertex = [&](VertexId u) {
      const Distance du = dist.load(u);
      // Stale check (a better path moved u to an earlier bin already):
      // Algorithm 1 line 20, distance[u] >= delta * prio.
      if (static_cast<std::uint64_t>(du) <
          curr_bin * static_cast<std::uint64_t>(delta)) {
        my.inc(CId::kStaleSkips);
        return;
      }
      my.inc(CId::kVerticesProcessed);
      // Indexed drain so edge j can prefetch the dist entry of edge
      // j + lookahead's target (the only data-dependent miss here).
      const WEdge* edges = g.edge_data() + g.edge_offset(u);
      const std::uint32_t deg = g.out_degree(u);
      for (std::uint32_t j = 0; j < deg; ++j) {
        if (lookahead != 0 && j + lookahead < deg)
          prefetch_read(dist.prefetch_addr(edges[j + lookahead].dst));
        const WEdge& e = edges[j];
        my.inc(CId::kRelaxations);
        const Distance nd = saturating_add(du, e.w);
        if (dist.relax_to(e.dst, nd)) {
          my.inc(CId::kUpdates);
          my_bins.at(nd / delta).push_back(e.dst);
        }
      }
      if (lookahead != 0 && deg > lookahead)
        my.inc(CId::kPrefetchIssued, deg - lookahead);
    };

    while (!done) {
      // Bulk-process the shared frontier (the current bin's vertices).
      for (;;) {
        // Cancellation point (relaxed poll per claimed vertex): unclaimed
        // frontier entries are simply dropped; the round's reduction below
        // folds the token into the shared `done` decision so every thread
        // leaves at the same barrier.
        if (ctx.stop_requested()) break;
        const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= frontier.size()) break;
        process_vertex(frontier[i]);
      }

      // Bucket fusion: keep draining our own current bin while it is small,
      // saving whole synchronous steps (GAP's optimization for
      // large-diameter graphs).
      if (bucket_fusion) {
        std::vector<VertexId> fused;
        while (!ctx.stop_requested() && curr_bin < my_bins.bins.size() &&
               !my_bins.bins[curr_bin].empty() &&
               my_bins.bins[curr_bin].size() <= kFusionLimit) {
          fused.swap(my_bins.bins[curr_bin]);
          // The fused drain knows its whole work list up front: warm the
          // distance entry and adjacency offsets of the vertex `lookahead`
          // slots ahead while processing this one.
          for (std::size_t i = 0; i < fused.size(); ++i) {
            if (lookahead != 0 && i + lookahead < fused.size()) {
              const VertexId ahead = fused[i + lookahead];
              prefetch_read(dist.prefetch_addr(ahead));
              prefetch_read(g.offsets_data() + ahead);
            }
            process_vertex(fused[i]);
          }
          if (lookahead != 0 && fused.size() > lookahead)
            my.inc(CId::kPrefetchIssued, 2 * (fused.size() - lookahead));
          fused.clear();
        }
      }

      barrier.wait(tid);

      // Cooperative gather of the next bin into the shared frontier.
      local_min[static_cast<std::size_t>(tid)].value =
          my_bins.min_non_empty(curr_bin);
      barrier.wait(tid);
      if (tid == 0) {
        std::uint64_t next = kInfBin;
        for (int t = 0; t < p; ++t)
          next = std::min(next, local_min[static_cast<std::size_t>(t)].value);
        curr_bin = next;
        // Round-top deadline/cancel poll, folded into the shared `done`
        // decision by tid 0 alone so all threads agree on it.
        done = next == kInfBin || ctx.poll_cancel();
        ++rounds;
        // One on_round per synchronous step, with the frontier this step just
        // processed (call count == stats.rounds; tests rely on it).
        my.observe(obs::HistId::kRoundFrontier, frontier.size());
        obs::trace_instant(ctx.trace, tid, obs::EventKind::kRoundTransition,
                           next == kInfBin ? 0 : next);
        if (ctx.observer != nullptr)
          ctx.observer->on_round(rounds, frontier.size());
      }
      barrier.wait(tid);
      if (done) break;

      local_size[static_cast<std::size_t>(tid)].value =
          curr_bin < my_bins.bins.size() ? my_bins.bins[curr_bin].size() : 0;
      barrier.wait(tid);
      if (tid == 0) {
        std::uint64_t total = 0;
        for (int t = 0; t < p; ++t) {
          local_offset[static_cast<std::size_t>(t)].value = total;
          total += local_size[static_cast<std::size_t>(t)].value;
        }
        frontier.resize(total);
        // Relaxed: the barrier below publishes the reset to the team.
        cursor.store(0, std::memory_order_relaxed);
      }
      barrier.wait(tid);
      if (curr_bin < my_bins.bins.size()) {
        auto& bin = my_bins.bins[curr_bin];
        VertexId* out =
            frontier.data() + local_offset[static_cast<std::size_t>(tid)].value;
        for (std::size_t i = 0; i < bin.size(); ++i) out[i] = bin[i];
        bin.clear();
      }
      barrier.wait(tid);
    }
  });

  const double seconds = timer.seconds();
  ctx.metrics.shard(0).inc(CId::kRounds, rounds);
  ctx.metrics.shard(0).inc(CId::kBarrierNs, barrier.total_wait_ns());
  SsspResult result;
  finalize_result(ctx, seconds, result);
  result.dist = dist.snapshot();
  return result;
}

}  // namespace wasp
