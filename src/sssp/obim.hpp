// Galois-style asynchronous delta-stepping on an OBIM-like scheduler
// (Lenharth, Nguyen & Pingali, Euro-Par'15; Nguyen et al., SOSP'13):
// vertices are grouped into priority levels (coarsened distance / delta);
// each thread works out of thread-local per-level chunk bags, full chunks
// overflow into lock-protected global per-level bags, and a thread whose
// local work at its current level runs out synchronizes with the global
// structure to find the highest-priority available bag.
//
// The chunk size is the tuning parameter the paper highlights for Galois
// (§5, Baselines Configuration: 128 vertices, with large impact on
// skewed-degree graphs).
#pragma once

#include "graph/graph.hpp"
#include "sssp/common.hpp"
#include "support/thread_team.hpp"

namespace wasp {

/// Runs OBIM-style asynchronous delta-stepping with the given chunk size
/// (delta >= 1, chunk_size >= 1).
SsspResult obim_sssp(const Graph& g, VertexId source, Weight delta,
                     std::uint32_t chunk_size, RunContext& ctx);

}  // namespace wasp
