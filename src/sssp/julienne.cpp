#include "sssp/julienne.hpp"

#include <atomic>
#include <limits>

#include "support/padded.hpp"
#include "support/spin_barrier.hpp"
#include "support/thread_team.hpp"
#include "support/timer.hpp"
#include "verify/checked_atomic.hpp"

namespace wasp {

namespace {

using CId = obs::CounterId;

constexpr std::uint64_t kInfBin = std::numeric_limits<std::uint64_t>::max();
constexpr std::uint64_t kOpenBuckets = 32;  // GBBS default bucket count
constexpr std::uint64_t kPullDivisor = 20;  // pull when frontier degree > |E|/20

/// Per-thread staging: a window of open buckets relative to `base`, plus an
/// overflow list for updates falling beyond the window.
struct Staging {
  std::vector<VertexId> open[kOpenBuckets];
  std::vector<VertexId> overflow;
};

}  // namespace

SsspResult julienne_sssp(const Graph& g, VertexId source, Weight delta,
                         bool direction_optimize, RunContext& ctx) {
  const int p = ctx.team.size();
  const VertexId n = g.num_vertices();
  AtomicDistances& dist = ctx.distances(g.num_vertices());
  dist.store(source, 0);

  std::vector<CachePadded<Staging>> staging(static_cast<std::size_t>(p));
  std::vector<CachePadded<std::uint64_t>> reduce(static_cast<std::size_t>(p));
  std::vector<CachePadded<std::uint64_t>> sizes(static_cast<std::size_t>(p));
  std::vector<CachePadded<std::uint64_t>> offsets(static_cast<std::size_t>(p));

  std::vector<VertexId> frontier{source};
  verify::atomic<std::size_t> cursor{0};
  std::uint64_t base = 0;      // bucket id of open slot 0
  std::uint64_t curr_bin = 0;  // absolute bucket id being processed
  std::uint64_t rounds = 0;
  bool done = false;
  bool pull_round = false;
  SpinBarrier barrier(p);

  const auto bin_of = [delta](Distance d) {
    return static_cast<std::uint64_t>(d) / delta;
  };

  Timer timer;
  ctx.team.run([&](int tid) {
    auto& my_staging = staging[static_cast<std::size_t>(tid)].value;
    obs::MetricsShard& my = ctx.metrics.shard(tid);

    const auto stage_update = [&](VertexId v, Distance nd) {
      const std::uint64_t bin = bin_of(nd);
      const std::uint64_t rel = bin - base;  // bin >= base always holds
      if (rel < kOpenBuckets) {
        my_staging.open[rel].push_back(v);
      } else {
        my_staging.overflow.push_back(v);
      }
    };

    while (!done) {
      if (pull_round) {
        // Direction-optimized round: every unsettled vertex pulls from its
        // neighbours. Parallelizing over destinations splits high-degree
        // sources (the Mawi hub) across threads.
        const std::uint64_t lower = curr_bin * static_cast<std::uint64_t>(delta);
        for (;;) {
          // Cancellation point: drop unclaimed blocks; the reduce below
          // folds the token into `done` so all threads exit together.
          if (ctx.stop_requested()) break;
          // Relaxed ticket: index-only payload; the barrier published data.
          const std::size_t blk = cursor.fetch_add(512, std::memory_order_relaxed);
          if (blk >= n) break;
          const std::size_t end = std::min<std::size_t>(blk + 512, n);
          for (std::size_t vi = blk; vi < end; ++vi) {
            const auto v = static_cast<VertexId>(vi);
            if (static_cast<std::uint64_t>(dist.load(v)) <= lower) continue;
            Distance best = dist.load(v);
            for (const WEdge& e : g.out_neighbors(v)) {
              my.inc(CId::kRelaxations);
              const Distance du = dist.load(e.dst);
              const Distance through = saturating_add(du, e.w);
              if (through < best) best = through;
            }
            if (dist.relax_to(v, best)) {
              my.inc(CId::kUpdates);
              stage_update(v, best);
            }
          }
        }
      } else {
        for (;;) {
          // Cancellation point (see the pull branch above).
          if (ctx.stop_requested()) break;
          // Relaxed ticket (see the pull branch above).
          const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
          if (i >= frontier.size()) break;
          const VertexId u = frontier[i];
          const Distance du = dist.load(u);
          if (static_cast<std::uint64_t>(du) <
              curr_bin * static_cast<std::uint64_t>(delta)) {
            my.inc(CId::kStaleSkips);
            continue;
          }
          my.inc(CId::kVerticesProcessed);
          for (const WEdge& e : g.out_neighbors(u)) {
            my.inc(CId::kRelaxations);
            const Distance nd = saturating_add(du, e.w);
            if (dist.relax_to(e.dst, nd)) {
              my.inc(CId::kUpdates);
              stage_update(e.dst, nd);
            }
          }
        }
      }
      barrier.wait(tid);

      // next_bucket(): find the smallest non-empty open bucket; if the whole
      // window is empty, re-bucket the overflow.
      std::uint64_t my_min = kInfBin;
      for (std::uint64_t r = curr_bin >= base ? curr_bin - base : 0;
           r < kOpenBuckets; ++r) {
        if (!my_staging.open[r].empty()) {
          my_min = base + r;
          break;
        }
      }
      reduce[static_cast<std::size_t>(tid)].value = my_min;
      barrier.wait(tid);
      if (tid == 0) {
        std::uint64_t next = kInfBin;
        for (int t = 0; t < p; ++t)
          next = std::min(next, reduce[static_cast<std::size_t>(t)].value);
        curr_bin = next;
        // Round-top deadline/cancel poll (tid 0 only): a fired token ends
        // the run at the barrier below, before the overflow/gather phases.
        done = ctx.poll_cancel();
        ++rounds;
        my.observe(obs::HistId::kRoundFrontier, frontier.size());
        obs::trace_instant(ctx.trace, tid, obs::EventKind::kRoundTransition,
                           next == kInfBin ? 0 : next);
        if (ctx.observer != nullptr)
          ctx.observer->on_round(rounds, frontier.size());
      }
      barrier.wait(tid);
      if (done) break;

      if (curr_bin == kInfBin) {
        // Window empty: re-bucket overflow (if any). New base is the
        // smallest current bucket among overflow entries.
        std::uint64_t omin = kInfBin;
        for (const VertexId v : my_staging.overflow)
          omin = std::min(omin, bin_of(dist.load(v)));
        reduce[static_cast<std::size_t>(tid)].value = omin;
        barrier.wait(tid);
        if (tid == 0) {
          std::uint64_t nb = kInfBin;
          for (int t = 0; t < p; ++t)
            nb = std::min(nb, reduce[static_cast<std::size_t>(t)].value);
          base = nb;
          done = nb == kInfBin;
        }
        barrier.wait(tid);
        if (done) break;
        // Redistribute this thread's overflow against the new base.
        std::vector<VertexId> old_overflow;
        old_overflow.swap(my_staging.overflow);
        for (const VertexId v : old_overflow) {
          const std::uint64_t rel = bin_of(dist.load(v)) - base;
          if (rel < kOpenBuckets) {
            my_staging.open[rel].push_back(v);
          } else {
            my_staging.overflow.push_back(v);
          }
        }
        barrier.wait(tid);
        if (tid == 0) curr_bin = base;  // retry bucket search next loop
        // Publish an empty frontier so the next iteration is a no-op
        // processing phase followed by a fresh bucket search.
        if (tid == 0) {
          frontier.clear();
          cursor.store(0, std::memory_order_relaxed);
          pull_round = false;
        }
        barrier.wait(tid);
        continue;
      }

      // Gather the chosen bucket into the shared frontier.
      const std::uint64_t rel = curr_bin - base;
      sizes[static_cast<std::size_t>(tid)].value = my_staging.open[rel].size();
      barrier.wait(tid);
      if (tid == 0) {
        std::uint64_t total = 0;
        for (int t = 0; t < p; ++t) {
          offsets[static_cast<std::size_t>(t)].value = total;
          total += sizes[static_cast<std::size_t>(t)].value;
        }
        frontier.resize(total);
        // Relaxed: the barrier below publishes the reset to the team.
        cursor.store(0, std::memory_order_relaxed);
      }
      barrier.wait(tid);
      {
        auto& bucket = my_staging.open[rel];
        VertexId* out = frontier.data() + offsets[static_cast<std::size_t>(tid)].value;
        for (std::size_t i = 0; i < bucket.size(); ++i) out[i] = bucket[i];
        bucket.clear();
      }
      barrier.wait(tid);
      if (tid == 0) {
        // Decide push vs pull for the next processing phase.
        pull_round = false;
        if (direction_optimize && g.is_undirected()) {
          std::uint64_t degree_sum = 0;
          for (const VertexId v : frontier) degree_sum += g.out_degree(v);
          pull_round = degree_sum > g.num_edges() / kPullDivisor;
        }
        // Relaxed: barrier-published reset, as above.
        cursor.store(0, std::memory_order_relaxed);
      }
      barrier.wait(tid);
    }
  });

  const double seconds = timer.seconds();
  ctx.metrics.shard(0).inc(CId::kRounds, rounds);
  ctx.metrics.shard(0).inc(CId::kBarrierNs, barrier.total_wait_ns());
  SsspResult result;
  finalize_result(ctx, seconds, result);
  result.dist = dist.snapshot();
  return result;
}

}  // namespace wasp
