#include "sssp/dijkstra.hpp"

#include "concurrent/dary_heap.hpp"
#include "support/timer.hpp"

namespace wasp {

SsspResult dijkstra(const Graph& g, VertexId source) {
  Timer timer;
  SsspResult result;
  result.dist.assign(g.num_vertices(), kInfDist);
  DaryHeap<Distance, VertexId, 4> heap;
  heap.reserve(1024);

  result.dist[source] = 0;
  heap.push(0, source);
  std::uint64_t relaxations = 0;
  std::uint64_t processed = 0;
  while (!heap.empty()) {
    const auto [d, u] = heap.pop();
    if (d != result.dist[u]) continue;  // stale entry (lazy deletion)
    ++processed;
    for (const WEdge& e : g.out_neighbors(u)) {
      ++relaxations;
      const Distance candidate = saturating_add(d, e.w);
      if (candidate < result.dist[e.dst]) {
        result.dist[e.dst] = candidate;
        heap.push(candidate, e.dst);
      }
    }
  }
  // The sequential reference still reports through the metrics pipeline so
  // every SsspResult carries a snapshot, whatever the algorithm.
  obs::MetricsRegistry metrics(1);
  obs::MetricsShard& shard = metrics.shard(0);
  shard.inc(obs::CounterId::kRelaxations, relaxations);
  shard.inc(obs::CounterId::kVerticesProcessed, processed);
  metrics.set_elapsed_seconds(timer.seconds());
  result.metrics = metrics.snapshot();
  result.stats = stats_from_snapshot(result.metrics);
  return result;
}

}  // namespace wasp
