#include "sssp/dijkstra.hpp"

#include "concurrent/dary_heap.hpp"
#include "support/timer.hpp"

namespace wasp {

SsspResult dijkstra(const Graph& g, VertexId source) {
  Timer timer;
  SsspResult result;
  result.dist.assign(g.num_vertices(), kInfDist);
  DaryHeap<Distance, VertexId, 4> heap;
  heap.reserve(1024);

  result.dist[source] = 0;
  heap.push(0, source);
  std::uint64_t relaxations = 0;
  while (!heap.empty()) {
    const auto [d, u] = heap.pop();
    if (d != result.dist[u]) continue;  // stale entry (lazy deletion)
    for (const WEdge& e : g.out_neighbors(u)) {
      ++relaxations;
      const Distance candidate = saturating_add(d, e.w);
      if (candidate < result.dist[e.dst]) {
        result.dist[e.dst] = candidate;
        heap.push(candidate, e.dst);
      }
    }
  }
  result.stats.relaxations = relaxations;
  result.stats.seconds = timer.seconds();
  return result;
}

}  // namespace wasp
