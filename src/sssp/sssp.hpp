// Unified SSSP front-end: one call dispatching to any of the eleven
// implementations (Wasp, the six paper baselines, two related-work extension
// baselines — radius-stepping and the Stealing MultiQueue — and two
// references), all returning the same SsspResult.
//
//   #include "sssp/sssp.hpp"
//   wasp::SsspOptions opt;
//   opt.algo = wasp::Algorithm::kWasp;
//   opt.threads = 8;
//   opt.delta = 1;
//   wasp::SsspResult r = wasp::run_sssp(graph, source, opt);
//
// Per-algorithm knobs are nested (opt.stepping.rho, opt.mq.c, ...); options
// are validated once at this front door (SsspOptions::validate()).
//
// Callers that amortize worker-thread creation, NUMA detection, and metrics
// allocation across many runs should use wasp::Solver (sssp/solver.hpp);
// the ThreadTeam overload below remains for callers that only share a team.
#pragma once

#include "graph/graph.hpp"
#include "sssp/common.hpp"
#include "support/thread_team.hpp"

namespace wasp {

/// Runs the algorithm selected by `options.algo` on an internally created
/// thread team of `options.threads` workers.
SsspResult run_sssp(const Graph& g, VertexId source, const SsspOptions& options);

/// Same, on a caller-provided team (team.size() overrides options.threads).
SsspResult run_sssp(const Graph& g, VertexId source, const SsspOptions& options,
                    ThreadTeam& team);

namespace detail {
/// The shared dispatch behind both run_sssp overloads and Solver::solve:
/// validates inputs and options, then runs options.algo under `ctx`
/// (ctx.metrics needs >= ctx.team.size() shards; it is reset here).
SsspResult dispatch_sssp(const Graph& g, VertexId source,
                         const SsspOptions& options, RunContext& ctx);
}  // namespace detail

}  // namespace wasp
