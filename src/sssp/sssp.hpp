// Unified SSSP front-end: one call dispatching to any of the eleven
// implementations (Wasp, the six paper baselines, two related-work extension
// baselines — radius-stepping and the Stealing MultiQueue — and two
// references), all returning the same SsspResult.  This is the library's
// primary public API:
//
//   #include "sssp/sssp.hpp"
//   wasp::SsspOptions opt;
//   opt.algo = wasp::Algorithm::kWasp;
//   opt.threads = 8;
//   opt.delta = 1;
//   wasp::SsspResult r = wasp::run_sssp(graph, source, opt);
//
// A ThreadTeam overload is provided for callers that amortize worker-thread
// creation across many runs (the benchmark harness does).
#pragma once

#include "graph/graph.hpp"
#include "sssp/common.hpp"
#include "support/thread_team.hpp"

namespace wasp {

/// Runs the algorithm selected by `options.algo` on an internally created
/// thread team of `options.threads` workers.
SsspResult run_sssp(const Graph& g, VertexId source, const SsspOptions& options);

/// Same, on a caller-provided team (team.size() overrides options.threads).
SsspResult run_sssp(const Graph& g, VertexId source, const SsspOptions& options,
                    ThreadTeam& team);

}  // namespace wasp
