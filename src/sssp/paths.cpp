#include "sssp/paths.hpp"

#include <algorithm>

#include "graph/algorithms.hpp"
#include "sssp/sssp.hpp"
#include "support/timer.hpp"

namespace wasp {

std::vector<VertexId> shortest_path_tree(const Graph& g, VertexId source,
                                         const std::vector<Distance>& dist) {
  std::vector<VertexId> parent(g.num_vertices(), kInvalidVertex);
  // One pass over all edges: u is a valid parent of v when the edge is
  // tight. Prefer the smallest-id parent for determinism.
  for (VertexId u = 0; u < g.num_vertices(); ++u) {
    if (dist[u] == kInfDist) continue;
    for (const WEdge& e : g.out_neighbors(u)) {
      if (e.dst == source || dist[e.dst] == kInfDist) continue;
      if (dist[u] + e.w == dist[e.dst] &&
          (parent[e.dst] == kInvalidVertex || u < parent[e.dst])) {
        parent[e.dst] = u;
      }
    }
  }
  parent[source] = kInvalidVertex;
  return parent;
}

std::vector<VertexId> extract_path(const Graph& g, VertexId source,
                                   VertexId target,
                                   const std::vector<Distance>& dist) {
  if (dist[target] == kInfDist) return {};
  // Walk backwards along tight edges. For directed graphs the in-neighbours
  // come from the transpose; undirected graphs are their own transpose.
  const Graph* back = &g;
  Graph gt;
  if (!g.is_undirected()) {
    gt = transpose(g);
    back = &gt;
  }
  std::vector<VertexId> reversed{target};
  VertexId v = target;
  while (v != source) {
    VertexId best = kInvalidVertex;
    for (const WEdge& e : back->out_neighbors(v)) {
      if (dist[e.dst] != kInfDist && dist[e.dst] + e.w == dist[v]) {
        if (best == kInvalidVertex || e.dst < best) best = e.dst;
      }
    }
    if (best == kInvalidVertex) return {};  // inconsistent distances
    reversed.push_back(best);
    v = best;
  }
  std::reverse(reversed.begin(), reversed.end());
  return reversed;
}

BatchResult run_sssp_batch(const Graph& g, const std::vector<VertexId>& sources,
                           const SsspOptions& options) {
  BatchResult batch;
  batch.runs.reserve(sources.size());
  ThreadTeam team(options.threads);
  Timer timer;
  for (const VertexId s : sources)
    batch.runs.push_back(run_sssp(g, s, options, team));
  batch.total_seconds = timer.seconds();
  return batch;
}

double closeness_centrality(const std::vector<Distance>& dist, VertexId v) {
  std::uint64_t reached = 0;
  double sum = 0.0;
  for (std::size_t u = 0; u < dist.size(); ++u) {
    if (u == v || dist[u] == kInfDist) continue;
    ++reached;
    sum += dist[u];
  }
  return sum > 0.0 ? static_cast<double>(reached) / sum : 0.0;
}

std::uint64_t reach_within(const std::vector<Distance>& dist, VertexId source,
                           Distance budget) {
  std::uint64_t reach = 0;
  for (std::size_t v = 0; v < dist.size(); ++v) {
    if (v == source || dist[v] == kInfDist) continue;
    if (dist[v] <= budget) ++reach;
  }
  return reach;
}

}  // namespace wasp
