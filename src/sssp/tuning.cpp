#include "sssp/tuning.hpp"

#include <algorithm>

namespace wasp {

GraphProfile profile_graph(const Graph& g) {
  GraphProfile p;
  const VertexId n = g.num_vertices();
  if (n == 0) return p;
  for (VertexId v = 0; v < n; ++v)
    p.max_degree = std::max(p.max_degree, g.out_degree(v));
  p.avg_degree = static_cast<double>(g.num_edges()) / static_cast<double>(n);
  p.max_weight = std::max<Weight>(g.max_weight(), 1);
  p.low_degree = p.avg_degree < 4.5;
  p.skewed = p.max_degree > 16.0 * std::max(p.avg_degree, 1.0);
  return p;
}

Weight suggest_delta(Algorithm algo, const GraphProfile& profile) {
  const auto coarse = [&](std::uint64_t factor) {
    const std::uint64_t d = static_cast<std::uint64_t>(profile.max_weight) * factor;
    return static_cast<Weight>(std::min<std::uint64_t>(d, 1u << 30));
  };
  switch (algo) {
    case Algorithm::kDijkstra:
    case Algorithm::kBellmanFord:
    case Algorithm::kMqDijkstra:
    case Algorithm::kSmqDijkstra:
      return 1;
    case Algorithm::kWasp:
      // Figure 4 / §5: Δ=1 is reliably good except when parallelism itself
      // is scarce (low-degree graphs) — there, coarsen.
      return profile.low_degree ? coarse(4) : 1;
    case Algorithm::kObim:
      return profile.low_degree ? coarse(16) : 16;
    default:
      // Synchronous steppers: buckets must hold enough parallel work to
      // amortize a barrier.
      return profile.low_degree ? coarse(32) : 64;
  }
}

Weight suggest_delta(Algorithm algo, const Graph& g) {
  return suggest_delta(algo, profile_graph(g));
}

}  // namespace wasp
