// SSSP with pendant-tree contraction: contract, solve on the core with any
// algorithm, expand — exact distances with (potentially) much less parallel
// work. The preprocessing-based generalization of Wasp's leaf pruning.
#pragma once

#include "graph/contraction.hpp"
#include "sssp/common.hpp"

namespace wasp {

/// Runs `options.algo` on the pendant-contracted core of the undirected
/// graph `g` and expands the distances back to all vertices. The returned
/// stats cover the core solve; `preprocess_seconds` reports contraction +
/// expansion cost separately so callers can amortize it across runs.
struct ContractedResult {
  SsspResult result;
  double preprocess_seconds = 0.0;
  std::uint64_t eliminated_vertices = 0;
};

ContractedResult run_sssp_contracted(const Graph& g, VertexId source,
                                     const SsspOptions& options);

}  // namespace wasp
