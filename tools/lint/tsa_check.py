#!/usr/bin/env python3
"""Clang Thread Safety Analysis gate.

Three checks, all under ``-Wthread-safety -Werror=thread-safety``:

  1. *Real sources stay clean* — the annotated translation units
     (service, multiqueue, obim) compile warning-free, so every
     GUARDED_BY / REQUIRES contract in the repo is honored.
  2. *Positive fixture* — tools/lint/testdata/tsa_clean.cpp compiles,
     proving the annotations do not false-positive on correct code.
  3. *Negative fixture* — tools/lint/testdata/tsa_violation.cpp FAILS to
     compile. This is the self-test of the gate itself: if the deliberate
     violations slide through, the analysis is silently off (macro
     expansion, flag, or toolchain problem) and we exit non-zero.

Exit codes: 0 = all checks passed, 1 = a check failed,
77 = no clang++ on PATH (ctest SKIP_RETURN_CODE; the GCC-only container
skips, CI installs clang and runs it for real).
"""

from __future__ import annotations

import shutil
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[2]

# TUs whose annotations guard real concurrent state. Compiled syntax-only:
# no objects, no link, just the analysis.
REAL_SOURCES = [
    "src/service/service.cpp",
    "src/concurrent/multiqueue.cpp",
    "src/sssp/obim.cpp",
]

BASE_FLAGS = [
    "-std=c++20",
    "-fsyntax-only",
    "-Wthread-safety",
    "-Werror=thread-safety",
    f"-I{REPO / 'src'}",
]


def find_clang() -> str | None:
    """Newest clang++ on PATH (plain name first, then versioned)."""
    candidates = ["clang++"] + [f"clang++-{v}" for v in range(25, 13, -1)]
    for name in candidates:
        if shutil.which(name):
            return name
    return None


def compile_tu(clang: str, tu: Path) -> subprocess.CompletedProcess:
    return subprocess.run(
        [clang, *BASE_FLAGS, str(tu)],
        capture_output=True,
        text=True,
        cwd=REPO,
    )


def main() -> int:
    clang = find_clang()
    if clang is None:
        print("tsa_check: no clang++ on PATH; skipping (exit 77)")
        return 77

    failures = 0

    for rel in REAL_SOURCES + ["tools/lint/testdata/tsa_clean.cpp"]:
        proc = compile_tu(clang, REPO / rel)
        if proc.returncode != 0:
            failures += 1
            print(f"tsa_check: FAIL  {rel} (expected clean):")
            print(proc.stderr)
        else:
            print(f"tsa_check: ok    {rel}")

    violation = "tools/lint/testdata/tsa_violation.cpp"
    proc = compile_tu(clang, REPO / violation)
    if proc.returncode == 0:
        failures += 1
        print(f"tsa_check: FAIL  {violation} compiled cleanly — the")
        print("  deliberate lock-discipline violations were not diagnosed,")
        print("  so -Wthread-safety is not actually analyzing anything.")
    elif "thread-safety" not in proc.stderr and "-Wthread-safety" not in proc.stderr:
        failures += 1
        print(f"tsa_check: FAIL  {violation} failed for the wrong reason")
        print("  (expected thread-safety diagnostics):")
        print(proc.stderr)
    else:
        diags = proc.stderr.count("error:")
        print(f"tsa_check: ok    {violation} rejected ({diags} diagnostics)")

    if failures:
        print(f"tsa_check: {failures} check(s) failed  [{clang}]")
        return 1
    print(f"tsa_check: all checks passed  [{clang}]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
